(* netform: command-line front end for the bilateral/unilateral connection
   game library.

   Subcommands:
     stability    exact BCG stable window / UCG Nash set for a graph
     named        list the built-in graph gallery with invariants
     enumerate    equilibrium counts over all connected topologies
     sweep        Figures 2 & 3 (tables + ASCII plots + optional CSV)
     dynamics     run improving-path / best-response dynamics
     annotate     export the equilibrium atlas (graph6 + exact regions)
     experiments  run the full E1-E20 reproduction suite *)

open Cmdliner
module Graph = Nf_graph.Graph
module Rat = Nf_util.Rat
open Netform

let setup_logs () =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ())

(* ---------------- shared argument parsing ---------------- *)

let named_graphs = Nf_analysis.Parse.named_graphs

let graph_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Nf_analysis.Parse.graph_of_spec s) in
  let print ppf g = Format.pp_print_string ppf (Nf_graph.Graph6.encode g) in
  Arg.conv (parse, print)

let alpha_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Nf_analysis.Parse.alpha_of_string s) in
  Arg.conv (parse, fun ppf a -> Format.pp_print_string ppf (Rat.to_string a))

let graph_arg =
  Arg.(
    required
    & pos 0 (some graph_conv) None
    & info [] ~docv:"GRAPH" ~doc:"A gallery name (see $(b,netform named)) or a graph6 string.")

let n_arg default =
  Arg.(value & opt int default & info [ "n" ] ~docv:"N" ~doc:"Number of players.")

(* ---------------- stability ---------------- *)

let stability graph =
  setup_logs ();
  Printf.printf "graph: %s\n" (Nf_graph.Pp.summary graph);
  Printf.printf "BCG pairwise-stable alpha set: %s\n"
    (Nf_util.Interval.to_string (Bcg.stable_alpha_set graph));
  Printf.printf "  paper interval (alpha_min, alpha_max]: %s\n"
    (Nf_util.Interval.to_string (Bcg.stability_interval graph));
  Printf.printf "  link convex: %b\n" (Convexity.is_link_convex graph);
  let n = Graph.order graph in
  if n <= 12 && Graph.size graph <= 20 then
    Printf.printf "UCG Nash alpha set: %s\n"
      (Nf_util.Interval.Union.to_string (Ucg.nash_alpha_set graph))
  else Printf.printf "UCG Nash alpha set: (skipped: graph too large for orientation search)\n";
  0

let stability_cmd =
  Cmd.v
    (Cmd.info "stability" ~doc:"Exact stability/Nash link-cost regions of a graph")
    Term.(const stability $ graph_arg)

(* ---------------- named ---------------- *)

let named () =
  setup_logs ();
  List.iter
    (fun (name, g) -> Printf.printf "%-18s %s\n" name (Nf_graph.Pp.summary g))
    named_graphs;
  0

let named_cmd =
  Cmd.v (Cmd.info "named" ~doc:"List built-in graphs") Term.(const named $ const ())

(* ---------------- enumerate ---------------- *)

let enumerate n alpha =
  setup_logs ();
  let bcg = Nf_analysis.Equilibria.bcg_stable_graphs ~n ~alpha in
  Printf.printf "connected isomorphism classes on %d vertices: %d\n" n
    (Nf_enum.Unlabeled.count_connected n);
  Printf.printf "BCG pairwise stable at alpha=%s: %d\n" (Rat.to_string alpha)
    (List.length bcg);
  let bcg_summary = Poa.summarize Cost.Bcg ~alpha:(Rat.to_float alpha) bcg in
  Format.printf "  %a@." Poa.pp_summary bcg_summary;
  if n <= 7 then begin
    let ucg = Nf_analysis.Equilibria.ucg_nash_graphs ~n ~alpha in
    Printf.printf "UCG Nash graphs at alpha=%s: %d\n" (Rat.to_string alpha) (List.length ucg);
    let ucg_summary = Poa.summarize Cost.Ucg ~alpha:(Rat.to_float alpha) ucg in
    Format.printf "  %a@." Poa.pp_summary ucg_summary
  end
  else Printf.printf "UCG: skipped for n > 7 (orientation search cost)\n";
  0

let alpha_opt =
  Arg.(
    value
    & opt alpha_conv (Rat.of_int 2)
    & info [ "a"; "alpha" ] ~docv:"ALPHA" ~doc:"Link cost (integer, dyadic or p/q).")

let enumerate_cmd =
  Cmd.v
    (Cmd.info "enumerate" ~doc:"Count equilibrium topologies exhaustively")
    Term.(const enumerate $ n_arg 6 $ alpha_opt)

(* ---------------- sweep ---------------- *)

let sweep n csv =
  setup_logs ();
  let points = Nf_analysis.Figures.sweep ~n () in
  print_string (Nf_analysis.Figures.figure2_table points);
  print_newline ();
  print_string (Nf_analysis.Figures.figure2_plot points);
  print_newline ();
  print_string (Nf_analysis.Figures.figure3_table points);
  print_newline ();
  print_string (Nf_analysis.Figures.figure3_plot points);
  (match csv with
  | Some path ->
    let oc = open_out path in
    output_string oc (Nf_analysis.Figures.to_csv points);
    close_out oc;
    Printf.printf "\nwrote %s\n" path
  | None -> ());
  0

let csv_opt =
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Write CSV data.")

let sweep_cmd =
  Cmd.v
    (Cmd.info "sweep" ~doc:"Reproduce Figures 2 and 3 (average PoA / links vs link cost)")
    Term.(const sweep $ n_arg 6 $ csv_opt)

(* ---------------- dynamics ---------------- *)

let dynamics game_str n alpha seed steps =
  setup_logs ();
  let rng = Nf_util.Prng.create seed in
  (match String.lowercase_ascii game_str with
  | "bcg" ->
    let start = Nf_graph.Random_graph.connected_gnp rng n 0.3 in
    Printf.printf "start: %s\n" (Graph.to_string start);
    let outcome = Nf_dynamics.Bcg_dynamics.run ~alpha ~rng ~max_steps:steps start in
    List.iter
      (fun move ->
        match move with
        | Nf_dynamics.Bcg_dynamics.Add (i, j) -> Printf.printf "  + link %d-%d\n" i j
        | Nf_dynamics.Bcg_dynamics.Delete (i, j) -> Printf.printf "  - link %d-%d (severed by %d)\n" i j i)
      outcome.Nf_dynamics.Bcg_dynamics.trace;
    Printf.printf "final (%s after %d moves): %s\n"
      (if outcome.Nf_dynamics.Bcg_dynamics.converged then "pairwise stable" else "step cap hit")
      outcome.Nf_dynamics.Bcg_dynamics.steps
      (Graph.to_string outcome.Nf_dynamics.Bcg_dynamics.final)
  | "ucg" ->
    let outcome = Nf_dynamics.Ucg_dynamics.run_random ~alpha ~rng (Nf_dynamics.Ucg_dynamics.empty n) in
    Printf.printf "from the empty profile, %d best-response rounds (%s):\n"
      outcome.Nf_dynamics.Ucg_dynamics.rounds
      (if outcome.Nf_dynamics.Ucg_dynamics.converged then "Nash" else "cycling; cap hit");
    Printf.printf "final: %s\n"
      (Graph.to_string outcome.Nf_dynamics.Ucg_dynamics.final.Nf_dynamics.Ucg_dynamics.graph)
  | other -> Printf.printf "unknown game %S: use bcg or ucg\n" other);
  0

let dynamics_cmd =
  let game = Arg.(value & pos 0 string "bcg" & info [] ~docv:"GAME" ~doc:"bcg or ucg") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED") in
  let steps = Arg.(value & opt int 10000 & info [ "max-steps" ] ~docv:"K") in
  Cmd.v
    (Cmd.info "dynamics" ~doc:"Run improving-path (BCG) or best-response (UCG) dynamics")
    Term.(const dynamics $ game $ n_arg 8 $ alpha_opt $ seed $ steps)

(* ---------------- annotate ---------------- *)

let annotate n out with_ucg =
  setup_logs ();
  let with_ucg = Option.value ~default:(n <= 7) with_ucg in
  Logs.info (fun m -> m "annotating %d connected classes on %d vertices (ucg=%b)"
                (Nf_enum.Unlabeled.count_connected n) n with_ucg);
  let entries = Nf_analysis.Dataset.build ~with_ucg n in
  (match out with
  | Some path ->
    Nf_analysis.Dataset.save ~path entries;
    Printf.printf "wrote %d annotated classes to %s\n" (List.length entries) path
  | None -> print_string (Nf_analysis.Dataset.to_csv entries));
  0

let annotate_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output CSV.")
  in
  let with_ucg =
    Arg.(
      value
      & opt (some bool) None
      & info [ "ucg" ] ~docv:"BOOL" ~doc:"Include UCG Nash sets (default: n <= 7).")
  in
  Cmd.v
    (Cmd.info "annotate"
       ~doc:"Export the equilibrium atlas: every connected class with its exact regions")
    Term.(const annotate $ n_arg 6 $ out $ with_ucg)

(* ---------------- experiments ---------------- *)

let experiments n only out =
  setup_logs ();
  let results = Nf_analysis.Experiments.run_all ~n () in
  let results =
    match only with
    | None -> results
    | Some id ->
      List.filter
        (fun r -> String.lowercase_ascii r.Nf_analysis.Experiments.id = String.lowercase_ascii id)
        results
  in
  print_string (Nf_analysis.Experiments.render_all results);
  (match out with
  | Some dir ->
    let points = Nf_analysis.Figures.sweep ~n () in
    let written = Nf_analysis.Report.write_all ~dir ~results ~points () in
    Printf.printf "\nwrote %d artifacts under %s\n" (List.length written) dir
  | None -> ());
  if List.for_all (fun r -> r.Nf_analysis.Experiments.ok) results then 0 else 1

let only_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "only" ] ~docv:"ID" ~doc:"Run a single experiment (e.g. E6).")

let out_dir_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"DIR" ~doc:"Write per-experiment artifacts into a directory.")

let experiments_cmd =
  Cmd.v
    (Cmd.info "experiments" ~doc:"Run the full paper-reproduction suite (E1-E20)")
    Term.(const experiments $ n_arg 6 $ only_opt $ out_dir_opt)

let main_cmd =
  Cmd.group
    (Cmd.info "netform" ~version:"1.0.0"
       ~doc:"Bilateral vs unilateral network formation (Corbo & Parkes, PODC 2005)")
    [
      stability_cmd; named_cmd; enumerate_cmd; sweep_cmd; dynamics_cmd; annotate_cmd;
      experiments_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
