(* netform: command-line front end for the bilateral/unilateral connection
   game library.

   Subcommands:
     stability    exact BCG stable window / UCG Nash set for a graph
     named        list the built-in graph gallery with invariants
     games        list the registered game instances (--game values)
     enumerate    equilibrium counts over all connected topologies
     sweep        Figures 2 & 3, or any one game's sweep via --game
     dynamics     run improving-path / best-response dynamics (--game)
     mc-poa       Monte-Carlo PoA estimate at large n (seeded, CSV)
     annotate     export the equilibrium atlas (graph6 + exact regions)
     experiments  run the full E1-E22 reproduction suite
     store        persistent equilibrium-atlas store (build | resume |
                  query | verify | export | merge | shards), classic or
                  --game stores; build accepts --shard I/K and merge
                  reassembles the volumes byte-identically

   Every game-generic subcommand resolves --game through
   Netform.Game_registry, so a newly registered game is reachable from
   all of them with no CLI changes. *)

open Cmdliner
module Graph = Nf_graph.Graph
module Rat = Nf_util.Rat
open Netform

let setup_logs () =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ())

(* every subcommand accepts --jobs; it replaces the default domain pool
   before any sweep starts, overriding NETFORM_JOBS.  --jobs 1 is the
   exact sequential path: no domains are spawned and all library entry
   points degrade to plain left-to-right code. *)
let jobs_opt =
  let pos_int =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | Some _ | None -> Error (`Msg "JOBS must be a positive integer")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(
    value
    & opt (some pos_int) None
    & info [ "j"; "jobs" ]
        ~docv:"N"
        ~doc:
          "Width of the domain pool used for parallel sweeps (default: the \
           $(b,NETFORM_JOBS) environment variable, else the machine's core count). \
           $(b,--jobs 1) forces the exact sequential path.")

let setup jobs =
  setup_logs ();
  Option.iter Nf_util.Pool.set_default_jobs jobs

(* sweep-shaped subcommands accept --no-orbit-quotient: it forces every
   annotator onto the plain per-pair loops, exactly as if every graph were
   rigid.  Same effect as NETFORM_NO_ORBIT_QUOTIENT=1; useful for A/B
   checks (the outputs must be byte-identical) and timing comparisons. *)
let no_orbit_quotient_opt =
  Arg.(
    value & flag
    & info [ "no-orbit-quotient" ]
        ~doc:
          "Disable the automorphism-orbit quotient: evaluate every edge toggle instead of \
           one representative per orbit.  Results are identical either way; this exists \
           for verification and benchmarking.  Equivalent to setting \
           $(b,NETFORM_NO_ORBIT_QUOTIENT=1).")

let setup_quotient no_quotient =
  if no_quotient then Nf_iso.Symmetry.set_quotient_enabled false

(* ---------------- shared argument parsing ---------------- *)

let named_graphs = Nf_analysis.Parse.named_graphs

let graph_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Nf_analysis.Parse.graph_of_spec s) in
  let print ppf g = Format.pp_print_string ppf (Nf_graph.Graph6.encode g) in
  Arg.conv (parse, print)

let alpha_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Nf_analysis.Parse.alpha_of_string s) in
  Arg.conv (parse, fun ppf a -> Format.pp_print_string ppf (Rat.to_string a))

let graph_arg =
  Arg.(
    required
    & pos 0 (some graph_conv) None
    & info [] ~docv:"GRAPH" ~doc:"A gallery name (see $(b,netform named)) or a graph6 string.")

let n_arg default =
  Arg.(value & opt int default & info [ "n" ] ~docv:"N" ~doc:"Number of players.")

(* ---------------- stability ---------------- *)

let stability jobs graph =
  setup jobs;
  Printf.printf "graph: %s\n" (Nf_graph.Pp.summary graph);
  Printf.printf "BCG pairwise-stable alpha set: %s\n"
    (Nf_util.Interval.to_string (Bcg.stable_alpha_set graph));
  Printf.printf "  paper interval (alpha_min, alpha_max]: %s\n"
    (Nf_util.Interval.to_string (Bcg.stability_interval graph));
  Printf.printf "  link convex: %b\n" (Convexity.is_link_convex graph);
  let n = Graph.order graph in
  if n <= 12 && Graph.size graph <= 20 then
    Printf.printf "UCG Nash alpha set: %s\n"
      (Nf_util.Interval.Union.to_string (Ucg.nash_alpha_set graph))
  else Printf.printf "UCG Nash alpha set: (skipped: graph too large for orientation search)\n";
  0

let stability_cmd =
  Cmd.v
    (Cmd.info "stability" ~doc:"Exact stability/Nash link-cost regions of a graph")
    Term.(const stability $ jobs_opt $ graph_arg)

(* ---------------- named ---------------- *)

let named () =
  setup_logs ();
  List.iter
    (fun (name, g) -> Printf.printf "%-18s %s\n" name (Nf_graph.Pp.summary g))
    named_graphs;
  0

let named_cmd =
  Cmd.v (Cmd.info "named" ~doc:"List built-in graphs") Term.(const named $ const ())

(* ---------------- games ---------------- *)

let games names_only =
  setup_logs ();
  if names_only then List.iter print_endline (Game_registry.names ())
  else
    List.iter
      (fun (Game.Any (module G) as packed) ->
        let region =
          match G.region_kind with
          | Game.Region.Interval -> "interval"
          | Game.Region.Union -> "union"
        in
        Printf.printf "%-14s tag=%-2d region=%-8s dynamics=%-5b %s\n" G.name G.schema_tag
          region (Game.has_moves packed) G.describe)
      (Game_registry.all ());
  0

let games_cmd =
  let names_only =
    Arg.(value & flag & info [ "names" ] ~doc:"Print bare names only (for scripting).")
  in
  Cmd.v
    (Cmd.info "games" ~doc:"List the registered game instances usable as --game values")
    Term.(const games $ names_only)

let game_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "game" ] ~docv:"GAME"
        ~doc:"Run for this registered game only (see $(b,netform games)).")

(* ---------------- enumerate ---------------- *)

let enumerate jobs n alpha =
  setup jobs;
  let bcg = Nf_analysis.Equilibria.bcg_stable_graphs ~n ~alpha in
  Printf.printf "connected isomorphism classes on %d vertices: %d\n" n
    (Nf_enum.Unlabeled.count_connected n);
  Printf.printf "BCG pairwise stable at alpha=%s: %d\n" (Rat.to_string alpha)
    (List.length bcg);
  let bcg_summary = Poa.summarize Cost.Bcg ~alpha:(Rat.to_float alpha) bcg in
  Format.printf "  %a@." Poa.pp_summary bcg_summary;
  if n <= 7 then begin
    let ucg = Nf_analysis.Equilibria.ucg_nash_graphs ~n ~alpha in
    Printf.printf "UCG Nash graphs at alpha=%s: %d\n" (Rat.to_string alpha) (List.length ucg);
    let ucg_summary = Poa.summarize Cost.Ucg ~alpha:(Rat.to_float alpha) ucg in
    Format.printf "  %a@." Poa.pp_summary ucg_summary
  end
  else Printf.printf "UCG: skipped for n > 7 (orientation search cost)\n";
  0

let alpha_opt =
  Arg.(
    value
    & opt alpha_conv (Rat.of_int 2)
    & info [ "a"; "alpha" ] ~docv:"ALPHA" ~doc:"Link cost (integer, dyadic or p/q).")

let enumerate_cmd =
  Cmd.v
    (Cmd.info "enumerate" ~doc:"Count equilibrium topologies exhaustively")
    Term.(const enumerate $ jobs_opt $ n_arg 6 $ alpha_opt)

(* ---------------- sweep ---------------- *)

let write_csv ~path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.printf "\nwrote %s\n" path

(* one game's sweep (--game): the game's own alpha convention and cost
   model, from a fresh annotation or served from a store *)
let sweep_one_game ~name ~n ~csv ~store =
  let packed = Game_registry.find_exn name in
  let points =
    match store with
    | Some path ->
      let index = Nf_store.Index.load ~path in
      Printf.printf "(sweep served from %s: game=%s, n=%d, %d classes)\n\n" path
        (Nf_store.Index.game index) (Nf_store.Index.n index) (Nf_store.Index.length index);
      Nf_analysis.Figures.sweep_game_via packed
        ~stable:(fun ~alpha -> Nf_store.Query.game_stable_graphs index ~game:name ~alpha)
        ()
    | None -> Nf_analysis.Figures.sweep_game packed ~n ()
  in
  print_string (Nf_analysis.Figures.game_table points);
  print_newline ();
  print_string (Nf_analysis.Figures.game_plot points);
  Option.iter (fun path -> write_csv ~path (Nf_analysis.Figures.game_csv points)) csv

let sweep jobs no_quotient n game csv store =
  setup jobs;
  setup_quotient no_quotient;
  match game with
  | Some name ->
    sweep_one_game ~name ~n ~csv ~store;
    0
  | None ->
    let points =
      match store with
      | Some path ->
        (* warm path: the annotation is read from the atlas store, never
           recomputed; only the PoA summaries run here *)
        let index = Nf_store.Index.load ~path in
        Printf.printf "(figures served from %s: n=%d, %d classes)\n\n" path
          (Nf_store.Index.n index) (Nf_store.Index.length index);
        Nf_store.Query.figure_points index ()
      | None -> Nf_analysis.Figures.sweep ~n ()
    in
    print_string (Nf_analysis.Figures.figure2_table points);
    print_newline ();
    print_string (Nf_analysis.Figures.figure2_plot points);
    print_newline ();
    print_string (Nf_analysis.Figures.figure3_table points);
    print_newline ();
    print_string (Nf_analysis.Figures.figure3_plot points);
    Option.iter (fun path -> write_csv ~path (Nf_analysis.Figures.to_csv points)) csv;
    0

let csv_opt =
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Write CSV data.")

let store_src_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"STORE"
        ~doc:
          "Serve the figure curves from an equilibrium-atlas store (see $(b,netform store \
           build)) instead of recomputing the annotation; $(b,-n) is ignored.")

let sweep_cmd =
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Reproduce Figures 2 and 3 (average PoA / links vs link cost), or sweep a single \
          registered game with $(b,--game)")
    Term.(
      const sweep $ jobs_opt $ no_orbit_quotient_opt $ n_arg 6 $ game_opt $ csv_opt
      $ store_src_opt)

(* ---------------- dynamics ---------------- *)

let dynamics jobs game_str n alpha seed steps =
  setup jobs;
  let rng = Nf_util.Prng.create seed in
  match String.lowercase_ascii game_str with
  | "ucg" ->
    (* the UCG has no graph-local moves: its dynamics are best-response
       over full strategy profiles, a separate loop *)
    let outcome = Nf_dynamics.Ucg_dynamics.run_random ~alpha ~rng (Nf_dynamics.Ucg_dynamics.empty n) in
    Printf.printf "from the empty profile, %d best-response rounds (%s):\n"
      outcome.Nf_dynamics.Ucg_dynamics.rounds
      (if outcome.Nf_dynamics.Ucg_dynamics.converged then "Nash" else "cycling; cap hit");
    Printf.printf "final: %s\n"
      (Graph.to_string outcome.Nf_dynamics.Ucg_dynamics.final.Nf_dynamics.Ucg_dynamics.graph);
    0
  | name -> (
    match Game_registry.find name with
    | None ->
      Printf.eprintf "unknown game %S: one of %s\n" name
        (String.concat ", " (Game_registry.names ()));
      1
    | Some packed when not (Game.has_moves packed) ->
      Printf.eprintf "game %S has no improving-path dynamics\n" name;
      1
    | Some packed ->
      let start =
        Nf_graph.Random_graph.connected_gnp rng n
          (if n > 62 then Nf_dynamics.Mc_poa.default_init_p n else 0.3)
      in
      (* past the one-word order, edge lists and per-move traces flood the
         terminal: print graphs as order/size summaries instead *)
      let show g =
        if n > 62 then Printf.sprintf "graph(n=%d, m=%d)" (Graph.order g) (Graph.size g)
        else Graph.to_string g
      in
      Printf.printf "start: %s\n" (show start);
      let outcome = Nf_dynamics.Game_dynamics.run packed ~alpha ~rng ~max_steps:steps start in
      if n <= 62 then
        List.iter
          (fun move ->
            match move with
            | Game.Add (i, j) -> Printf.printf "  + link %d-%d\n" i j
            | Game.Delete (i, j) -> Printf.printf "  - link %d-%d (severed by %d)\n" i j i)
          outcome.Nf_dynamics.Game_dynamics.trace;
      Printf.printf "final (%s after %d moves): %s\n"
        (if outcome.Nf_dynamics.Game_dynamics.converged then "stable" else "step cap hit")
        outcome.Nf_dynamics.Game_dynamics.steps
        (show outcome.Nf_dynamics.Game_dynamics.final);
      0)

let dynamics_cmd =
  let game =
    Arg.(
      value
      & pos 0 string "bcg"
      & info [] ~docv:"GAME"
          ~doc:"A registered game with improving-path dynamics (see $(b,netform games)), or ucg.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED") in
  let steps = Arg.(value & opt int 10000 & info [ "max-steps" ] ~docv:"K") in
  Cmd.v
    (Cmd.info "dynamics"
       ~doc:"Run improving-path dynamics for any registered game, or UCG best response")
    Term.(const dynamics $ jobs_opt $ game $ n_arg 8 $ alpha_opt $ seed $ steps)

(* ---------------- mc-poa ---------------- *)

let mc_poa jobs n alpha trials seed factor init_p csv =
  setup jobs;
  if n < 2 then begin
    Printf.eprintf "mc-poa: need -n >= 2\n";
    1
  end
  else begin
    let results =
      Nf_dynamics.Mc_poa.run ?init_p ~max_evals_factor:factor ~n ~alpha ~trials ~seed ()
    in
    print_string
      (Nf_dynamics.Mc_poa.summary_to_string
         (Nf_dynamics.Mc_poa.summarize ~n ~alpha results));
    (match csv with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Nf_dynamics.Mc_poa.to_csv ~n ~alpha results);
      close_out oc;
      Printf.printf "wrote %s\n" path);
    0
  end

let mc_poa_cmd =
  let trials =
    Arg.(value & opt int 4 & info [ "trials" ] ~docv:"T" ~doc:"Number of seeded trials.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED") in
  let factor =
    Arg.(
      value & opt int 60
      & info [ "max-evals-factor" ] ~docv:"F"
          ~doc:
            "Per-trial evaluation budget, as a multiple of C(n,2) pair slots; a trial \
             still churning past it is reported unconverged.")
  in
  let init_p =
    Arg.(
      value
      & opt (some float) None
      & info [ "init-p" ] ~docv:"P"
          ~doc:
            "Edge density of the connected G(n,p) initial graphs (default \
             (ln n + 1)/n, just above the connectivity threshold).")
  in
  Cmd.v
    (Cmd.info "mc-poa"
       ~doc:
         "Monte-Carlo price-of-anarchy estimate for the BCG at large n: seeded random \
          starts, randomized better-response walks to pairwise stability, exact-rational \
          social cost against the star/clique optimum, reported next to the paper's \
          O(min(sqrt(alpha), n/sqrt(alpha))) bound.  Fixed seed implies byte-identical \
          CSV output whatever $(b,--jobs) is.")
    Term.(
      const mc_poa $ jobs_opt $ n_arg 128 $ alpha_opt $ trials $ seed $ factor $ init_p
      $ csv_opt)

(* ---------------- annotate ---------------- *)

(* the single-game atlas CSV (--game): same graph6/n/m prefix as the
   classic Dataset CSV, one region column named after the game *)
let game_atlas_csv ~name entries =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "graph6,n,m,%s_stable\n" name);
  List.iter
    (fun (g, region) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%d,%s\n" (Nf_graph.Graph6.encode g) (Graph.order g)
           (Graph.size g) region))
    entries;
  Buffer.contents buf

let annotate jobs no_quotient n game out with_ucg =
  setup jobs;
  setup_quotient no_quotient;
  match game with
  | Some name ->
    if Option.is_some with_ucg then
      invalid_arg "annotate: pass either --game or --ucg, not both";
    let packed = Game_registry.find_exn name in
    Logs.info (fun m ->
        m "annotating %d connected classes on %d vertices (game=%s)"
          (Nf_enum.Unlabeled.count_connected n) n name);
    let csv = game_atlas_csv ~name (Nf_analysis.Equilibria.annotated_regions packed n) in
    (match out with
    | Some path ->
      let oc = open_out path in
      output_string oc csv;
      close_out oc;
      Printf.printf "wrote %s atlas for n=%d to %s\n" name n path
    | None -> print_string csv);
    0
  | None ->
    let with_ucg = Option.value ~default:(n <= 7) with_ucg in
    Logs.info (fun m -> m "annotating %d connected classes on %d vertices (ucg=%b)"
                  (Nf_enum.Unlabeled.count_connected n) n with_ucg);
    let entries = Nf_analysis.Dataset.build ~with_ucg n in
    (match out with
    | Some path ->
      Nf_analysis.Dataset.save ~path entries;
      Printf.printf "wrote %d annotated classes to %s\n" (List.length entries) path
    | None -> print_string (Nf_analysis.Dataset.to_csv entries));
    0

let annotate_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output CSV.")
  in
  let with_ucg =
    Arg.(
      value
      & opt (some bool) None
      & info [ "ucg" ] ~docv:"BOOL" ~doc:"Include UCG Nash sets (default: n <= 7).")
  in
  Cmd.v
    (Cmd.info "annotate"
       ~doc:"Export the equilibrium atlas: every connected class with its exact regions")
    Term.(
      const annotate $ jobs_opt $ no_orbit_quotient_opt $ n_arg 6 $ game_opt $ out
      $ with_ucg)

(* ---------------- experiments ---------------- *)

let experiments jobs n game only out store =
  setup jobs;
  let results =
    match game with
    | Some name -> [ Nf_analysis.Experiments.game_sweep ~game:name ~n () ]
    | None -> Nf_analysis.Experiments.run_all ~n ()
  in
  let results =
    match only with
    | None -> results
    | Some id ->
      List.filter
        (fun r -> String.lowercase_ascii r.Nf_analysis.Experiments.id = String.lowercase_ascii id)
        results
  in
  print_string (Nf_analysis.Experiments.render_all results);
  (match out with
  | Some dir ->
    let points =
      match store with
      | Some path -> Nf_store.Query.figure_points (Nf_store.Index.load ~path) ()
      | None -> Nf_analysis.Figures.sweep ~n ()
    in
    let written = Nf_analysis.Report.write_all ~dir ~results ~points () in
    Printf.printf "\nwrote %d artifacts under %s\n" (List.length written) dir
  | None -> ());
  if List.for_all (fun r -> r.Nf_analysis.Experiments.ok) results then 0 else 1

let only_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "only" ] ~docv:"ID" ~doc:"Run a single experiment (e.g. E6).")

let out_dir_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"DIR" ~doc:"Write per-experiment artifacts into a directory.")

let experiments_cmd =
  Cmd.v
    (Cmd.info "experiments"
       ~doc:
         "Run the full paper-reproduction suite (E1-E22), or one game's sweep experiment \
          with $(b,--game)")
    Term.(
      const experiments $ jobs_opt $ n_arg 6 $ game_opt $ only_opt $ out_dir_opt
      $ store_src_opt)

(* ---------------- store ---------------- *)

let store_path_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"STORE" ~doc:"Path of the equilibrium-atlas store file.")

let report_line line = Printf.eprintf "%s\n%!" line

let shard_string = function
  | None -> ""
  | Some (i, k) -> Printf.sprintf " shard=%d/%d" i k

let print_outcome verb (o : Nf_store.Build.outcome) =
  Printf.printf "%s %s: n=%d game=%s ucg=%b%s, %d classes in %d chunks (%d resumed) in %.2fs\n"
    verb o.Nf_store.Build.path o.Nf_store.Build.n o.Nf_store.Build.game
    o.Nf_store.Build.with_ucg (shard_string o.Nf_store.Build.shard) o.Nf_store.Build.records
    o.Nf_store.Build.chunks o.Nf_store.Build.resumed_records o.Nf_store.Build.seconds

(* --shard I/K: which slice of the k-way split this process builds *)
let shard_conv =
  let parse s =
    match String.split_on_char '/' s with
    | [ i; k ] -> (
      match (int_of_string_opt i, int_of_string_opt k) with
      | Some i, Some k when 1 <= i && i <= k && k <= Nf_store.Layout.max_shards -> Ok (i, k)
      | Some _, Some _ ->
        Error
          (`Msg
             (Printf.sprintf "SHARD must satisfy 1 <= I <= K <= %d" Nf_store.Layout.max_shards))
      | _ -> Error (`Msg "SHARD must be I/K (e.g. 2/4)"))
    | _ -> Error (`Msg "SHARD must be I/K (e.g. 2/4)")
  in
  Arg.conv (parse, fun ppf (i, k) -> Format.fprintf ppf "%d/%d" i k)

let store_build jobs no_quotient n out game with_ucg shard chunk force quiet =
  setup jobs;
  setup_quotient no_quotient;
  let report = if quiet then ignore else report_line in
  match Nf_store.Build.build ?game ?with_ucg ?shard ~chunk ~force ~report ~path:out ~n () with
  | outcome ->
    print_outcome "built" outcome;
    0
  | exception Failure msg ->
    Printf.eprintf "error: %s\n" msg;
    1
  | exception Invalid_argument msg ->
    Printf.eprintf "error: %s\n" msg;
    1

let store_build_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"STORE" ~doc:"Store file to create.")
  in
  let with_ucg =
    Arg.(
      value
      & opt (some bool) None
      & info [ "ucg" ] ~docv:"BOOL" ~doc:"Include UCG Nash sets (default: n <= 7).")
  in
  let chunk =
    Arg.(
      value
      & opt int 512
      & info [ "chunk" ] ~docv:"K"
          ~doc:"Classes per chunk: the append/recovery granularity and the pool fan-out unit.")
  in
  let shard =
    Arg.(
      value
      & opt (some shard_conv) None
      & info [ "shard" ] ~docv:"I/K"
          ~doc:
            "Build only shard $(i,I) of a $(i,K)-way split of the enumeration stream.  The \
             $(i,K) volumes (same $(b,-n), $(b,--game) and $(b,--chunk) throughout) can be \
             built by independent processes or machines; $(b,netform store merge) reassembles \
             them into a store byte-identical to a single-process build.")
  in
  let force = Arg.(value & flag & info [ "force" ] ~doc:"Overwrite an existing store.") in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No per-chunk progress lines.") in
  Cmd.v
    (Cmd.info "build" ~doc:"Annotate every connected class on N vertices into a store")
    Term.(
      const store_build $ jobs_opt $ no_orbit_quotient_opt $ n_arg 6 $ out $ game_opt
      $ with_ucg $ shard $ chunk $ force $ quiet)

let store_resume jobs out quiet =
  setup jobs;
  let report = if quiet then ignore else report_line in
  match Nf_store.Build.resume ~report ~path:out () with
  | outcome ->
    print_outcome "resumed" outcome;
    0
  | exception Failure msg ->
    Printf.eprintf "error: %s\n" msg;
    1

let store_resume_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"STORE"
          ~doc:"Store file whose interrupted build ($(i,STORE).part) should be continued.")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No per-chunk progress lines.") in
  Cmd.v
    (Cmd.info "resume"
       ~doc:"Continue a build killed mid-sweep from the last complete chunk (byte-identical)")
    Term.(const store_resume $ jobs_opt $ out $ quiet)

let store_verify path =
  setup_logs ();
  match Nf_store.Reader.verify ~path with
  | Ok scan ->
    let h = scan.Nf_store.Reader.header in
    Printf.printf
      "%s: ok (schema %d, n=%d, game=%s%s, %d classes in %d chunks of %d, all CRCs valid)\n"
      path Nf_store.Layout.schema_version h.Nf_store.Layout.n
      (Nf_store.Build.game_of_content h.Nf_store.Layout.content)
      (shard_string h.Nf_store.Layout.shard)
      scan.Nf_store.Reader.records scan.Nf_store.Reader.chunks h.Nf_store.Layout.chunk_size;
    0
  | Error msg ->
    Printf.eprintf "%s: CORRUPT: %s\n" path msg;
    1

let store_verify_cmd =
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Strict integrity check: header/chunk/footer CRCs, record parses, totals")
    Term.(const store_verify $ store_path_arg)

let store_query jobs path alpha game figures csv list_graphs =
  setup jobs;
  let index = Nf_store.Index.load ~path in
  Printf.printf "%s: n=%d, %d annotated classes, game=%s\n" path (Nf_store.Index.n index)
    (Nf_store.Index.length index) (Nf_store.Index.game index);
  (match alpha with
  | Some alpha ->
    let name = String.lowercase_ascii game in
    let (Game.Any (module G)) = Game_registry.find_exn name in
    let graphs = Nf_store.Query.game_stable_graphs index ~game:name ~alpha in
    Printf.printf "%s equilibria at alpha=%s: %d\n" (String.uppercase_ascii name)
      (Rat.to_string alpha) (List.length graphs);
    Format.printf "  %a@." Poa.pp_summary
      (Poa.summarize G.cost_model ~alpha:(Rat.to_float alpha) graphs);
    if list_graphs then
      List.iter (fun g -> print_endline (Nf_graph.Graph6.encode g)) graphs
  | None -> ());
  if figures then begin
    (* classic dual stores serve the paper's Figure 2/3 pair; a
       single-game store serves its own game's curves *)
    match Nf_store.Index.content index with
    | Nf_store.Layout.Classic { with_ucg = true } ->
      let points = Nf_store.Query.figure_points index () in
      print_newline ();
      print_string (Nf_analysis.Figures.figure2_table points);
      print_newline ();
      print_string (Nf_analysis.Figures.figure2_plot points);
      print_newline ();
      print_string (Nf_analysis.Figures.figure3_table points);
      print_newline ();
      print_string (Nf_analysis.Figures.figure3_plot points);
      Option.iter (fun file -> write_csv ~path:file (Nf_analysis.Figures.to_csv points)) csv
    | Nf_store.Layout.Classic { with_ucg = false } | Nf_store.Layout.Game _ ->
      let points = Nf_store.Query.game_figure_points index () in
      print_newline ();
      print_string (Nf_analysis.Figures.game_table points);
      print_newline ();
      print_string (Nf_analysis.Figures.game_plot points);
      Option.iter (fun file -> write_csv ~path:file (Nf_analysis.Figures.game_csv points)) csv
  end;
  0

let store_query_cmd =
  let alpha =
    Arg.(
      value
      & opt (some alpha_conv) None
      & info [ "a"; "alpha" ] ~docv:"ALPHA" ~doc:"Report the equilibrium set at this link cost.")
  in
  let game =
    Arg.(
      value
      & opt string "bcg"
      & info [ "game" ] ~docv:"GAME"
          ~doc:"The registered game to query (must match the store's annotations).")
  in
  let figures =
    Arg.(value & flag & info [ "figures" ] ~doc:"Regenerate the Figure 2/3 series from the store.")
  in
  let list_graphs =
    Arg.(value & flag & info [ "list" ] ~doc:"Print the graph6 of each equilibrium class.")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Serve alpha-queries and figure curves from a store, with no recomputation")
    Term.(
      const store_query $ jobs_opt $ store_path_arg $ alpha $ game $ figures $ csv_opt
      $ list_graphs)

let store_export jobs path out =
  setup jobs;
  let index = Nf_store.Index.load ~path in
  let csv = Nf_store.Query.to_csv index in
  (match out with
  | Some file ->
    let oc = open_out file in
    output_string oc csv;
    close_out oc;
    Printf.printf "wrote %d annotated classes to %s\n" (Nf_store.Index.length index) file
  | None -> print_string csv);
  0

let store_export_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output CSV (default: stdout).")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Dump a store as the annotate-compatible CSV atlas (byte-identical to Dataset.to_csv)")
    Term.(const store_export $ jobs_opt $ store_path_arg $ out)

let store_merge dir out force streaming quiet =
  setup_logs ();
  let report = if quiet then ignore else report_line in
  match Nf_store.Merge.merge_dir ~force ~streaming ~report ~dir ~out () with
  | o ->
    Printf.printf "merged %d shards into %s: n=%d game=%s, %d classes in %d chunks in %.2fs\n"
      o.Nf_store.Merge.shards o.Nf_store.Merge.path o.Nf_store.Merge.n o.Nf_store.Merge.game
      o.Nf_store.Merge.records o.Nf_store.Merge.chunks o.Nf_store.Merge.seconds;
    0
  | exception Failure msg ->
    Printf.eprintf "error: %s\n" msg;
    1

let store_merge_cmd =
  let dir =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"Directory holding the K shard volumes of one split.")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"STORE" ~doc:"Canonical store file to write.")
  in
  let force = Arg.(value & flag & info [ "force" ] ~doc:"Overwrite an existing store.") in
  let streaming =
    Arg.(
      value & flag
      & info [ "streaming" ]
          ~doc:
            "Constant-memory merge: verify and re-chunk each volume straight off its input \
             channel, one decoded chunk resident at a time, instead of loading whole volumes \
             as strings.  The output bytes are identical either way.")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No per-volume progress lines.") in
  Cmd.v
    (Cmd.info "merge"
       ~doc:
         "Reassemble a directory of verified shard volumes into one canonical store, \
          byte-identical to a single-process build")
    Term.(const store_merge $ dir $ out $ force $ streaming $ quiet)

let store_shards path =
  setup_logs ();
  if Sys.file_exists path && Sys.is_directory path then begin
    match Nf_store.Merge.volumes ~dir:path with
    | [] ->
      Printf.printf "%s: no shard volumes\n" path;
      1
    | vols ->
      List.iter
        (fun (p, h) ->
          let i, k = Option.get h.Nf_store.Layout.shard in
          Printf.printf "%s: shard %d/%d n=%d game=%s chunk=%d\n" p i k h.Nf_store.Layout.n
            (Nf_store.Build.game_of_content h.Nf_store.Layout.content)
            h.Nf_store.Layout.chunk_size)
        vols;
      (match Nf_store.Merge.family vols with
      | _ ->
        Printf.printf "complete %d-way family: ready to merge\n" (List.length vols);
        0
      | exception Failure msg ->
        Printf.printf "incomplete family: %s\n" msg;
        1)
  end
  else
    match Nf_store.Reader.scan ~path with
    | scan ->
      let h = scan.Nf_store.Reader.header in
      (match h.Nf_store.Layout.shard with
      | Some (i, k) ->
        Printf.printf "%s: shard %d/%d n=%d game=%s chunk=%d (%d classes in %d chunks)\n" path i
          k h.Nf_store.Layout.n
          (Nf_store.Build.game_of_content h.Nf_store.Layout.content)
          h.Nf_store.Layout.chunk_size scan.Nf_store.Reader.records scan.Nf_store.Reader.chunks
      | None ->
        Printf.printf "%s: whole store (unsharded) n=%d game=%s chunk=%d (%d classes)\n" path
          h.Nf_store.Layout.n
          (Nf_store.Build.game_of_content h.Nf_store.Layout.content)
          h.Nf_store.Layout.chunk_size scan.Nf_store.Reader.records);
      0
    | exception Nf_store.Layout.Corrupt msg ->
      Printf.eprintf "%s: CORRUPT: %s\n" path msg;
      1
    | exception Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      1

let store_shards_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"STORE"
          ~doc:"A store file (whole or one shard volume), or a directory of shard volumes.")
  in
  Cmd.v
    (Cmd.info "shards"
       ~doc:
         "Show shard metadata: which slice a volume holds, or whether a directory forms a \
          complete mergeable family")
    Term.(const store_shards $ path)

let store_cmd =
  Cmd.group
    (Cmd.info "store"
       ~doc:
         "Persistent, crash-resumable equilibrium-atlas store: build once (optionally sharded \
          across processes), query the annotation forever")
    [
      store_build_cmd; store_resume_cmd; store_query_cmd; store_verify_cmd; store_export_cmd;
      store_merge_cmd; store_shards_cmd;
    ]

(* ---------------- serve / query ---------------- *)

module Serve = Nf_serve

let serve_run jobs path socket port cache_chunks quiet =
  setup jobs;
  match (socket, port) with
  | Some _, Some _ ->
    Printf.eprintf "error: pass either --socket or --port, not both\n";
    1
  | socket, port -> (
    let addr =
      match (socket, port) with
      | _, Some p -> Serve.Server.Tcp p
      | Some s, None -> Serve.Server.Unix_socket s
      | None, None -> Serve.Server.Unix_socket (path ^ ".sock")
    in
    let report = if quiet then ignore else report_line in
    match Serve.Server.serve ?cache_chunks ~report ~addr ~path () with
    | () -> 0
    | exception Nf_store.Layout.Corrupt msg ->
      Printf.eprintf "error: %s\n" msg;
      1
    | exception Failure msg ->
      Printf.eprintf "error: %s\n" msg;
      1
    | exception Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "error: %s: %s %s\n" (Unix.error_message e) fn arg;
      1)

let serve_cmd =
  let store =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"STORE" ~doc:"Store file or shard directory to serve.")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix socket to listen on (default: $(i,STORE).sock).")
  in
  let port =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~docv:"P" ~doc:"TCP port to listen on (binds 127.0.0.1 only).")
  in
  let cache_chunks =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-chunks" ] ~docv:"K"
          ~doc:"Decoded-chunk cache bound of the mmap read path (default 64; 0 disables).")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No start/shutdown lines.") in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-running atlas query daemon: mmap-backed reads, per-game alpha-interval \
          indexes, line-delimited JSON protocol (stable-at | entry | figure-points | export \
          | stats | health | shutdown); clean SIGINT/SIGTERM shutdown")
    Term.(const serve_run $ jobs_opt $ store $ socket $ port $ cache_chunks $ quiet)

(* the one output convention shared by the in-process and --remote
   paths: stable-at prints one graph6 per line, entry prints `id N` then
   one `LABEL REGION` line per column, figures/export print the CSV —
   so `cmp` between the two modes IS the served-vs-Query parity check *)
let emit_csv ~csv text =
  match csv with
  | Some file ->
    let oc = open_out file in
    output_string oc text;
    close_out oc;
    Printf.eprintf "wrote %s\n" file
  | None -> print_string text

let query_local ~path ~game ~op ~csv =
  let index = Nf_store.Index.load ~path in
  let game =
    match game with
    | Some g -> g
    | None -> (
      match Nf_store.Index.content index with
      | Nf_store.Layout.Classic _ -> "bcg"
      | Nf_store.Layout.Game _ -> Nf_store.Index.game index)
  in
  match op with
  | `Stable_at alpha ->
    List.iter
      (fun g -> print_endline (Nf_graph.Graph6.encode g))
      (Nf_store.Query.game_stable_graphs index ~game ~alpha);
    0
  | `Entry g6 -> (
    let entries = Nf_store.Index.entries index in
    let found = ref None in
    Array.iteri
      (fun i r -> if !found = None && r.Nf_store.Layout.graph6 = g6 then found := Some (i, r))
      entries;
    match !found with
    | None ->
      Printf.eprintf "error: no record for graph6 %S\n" g6;
      1
    | Some (i, r) ->
      Printf.printf "id %d\n" i;
      List.iter
        (fun (k, v) -> Printf.printf "%s %s\n" k v)
        (Serve.Service.region_strings_of ~content:(Nf_store.Index.content index) r);
      0)
  | `Figures ->
    let text =
      match Nf_store.Index.content index with
      | Nf_store.Layout.Classic { with_ucg = true } ->
        Nf_analysis.Figures.to_csv (Nf_store.Query.figure_points index ())
      | Nf_store.Layout.Classic { with_ucg = false } | Nf_store.Layout.Game _ ->
        Nf_analysis.Figures.game_csv (Nf_store.Query.game_figure_points index ())
    in
    emit_csv ~csv text;
    0
  | `Export ->
    emit_csv ~csv (Nf_store.Query.to_csv index);
    0
  | `Stats ->
    Printf.printf "n %d\ngame %s\nrecords %d\n" (Nf_store.Index.n index)
      (Nf_store.Index.game index) (Nf_store.Index.length index);
    0
  | `Health | `Shutdown ->
    Printf.eprintf "error: this operation needs a daemon (pass --remote ADDR)\n";
    1

let query_remote ~addr ~game ~op ~csv =
  let client = Serve.Client.connect addr in
  Fun.protect ~finally:(fun () -> Serve.Client.close client) @@ fun () ->
  let req =
    match op with
    | `Stable_at alpha -> Serve.Protocol.Stable_at { game; alpha }
    | `Entry g6 -> Serve.Protocol.Entry { graph6 = g6 }
    | `Figures -> Serve.Protocol.Figure_points { grid = None }
    | `Export -> Serve.Protocol.Export
    | `Stats -> Serve.Protocol.Stats
    | `Health -> Serve.Protocol.Health
    | `Shutdown -> Serve.Protocol.Shutdown
  in
  let resp = Serve.Client.request client req in
  if not (Serve.Protocol.response_ok resp) then begin
    Printf.eprintf "error: %s\n" (Serve.Protocol.response_error resp);
    1
  end
  else
    let malformed () =
      Printf.eprintf "error: malformed response\n";
      1
    in
    let str_list j = List.filter_map Serve.Json.to_str (Option.value ~default:[] (Serve.Json.to_list j)) in
    match op with
    | `Stable_at _ -> (
      match Serve.Json.member "graphs" resp with
      | Some gs ->
        List.iter print_endline (str_list gs);
        0
      | None -> malformed ())
    | `Entry _ -> (
      match (Serve.Json.member "id" resp, Serve.Json.member "regions" resp) with
      | Some (Serve.Json.Int i), Some (Serve.Json.Obj kvs) ->
        Printf.printf "id %d\n" i;
        List.iter
          (fun (k, v) ->
            match Serve.Json.to_str v with Some s -> Printf.printf "%s %s\n" k s | None -> ())
          kvs;
        0
      | _ -> malformed ())
    | `Figures | `Export -> (
      match Option.bind (Serve.Json.member "csv" resp) Serve.Json.to_str with
      | Some text ->
        emit_csv ~csv text;
        0
      | None -> malformed ())
    | `Stats | `Health -> (
      match resp with
      | Serve.Json.Obj kvs ->
        List.iter
          (fun (k, v) ->
            if k <> "ok" && k <> "op" then
              match v with
              | Serve.Json.Int i -> Printf.printf "%s %d\n" k i
              | Serve.Json.Str s -> Printf.printf "%s %s\n" k s
              | v -> Printf.printf "%s %s\n" k (Serve.Json.to_string v))
          kvs;
        0
      | _ -> malformed ())
    | `Shutdown ->
      print_endline "server shutting down";
      0

let query_run jobs target remote game stable_at entry figures export stats health shutdown csv =
  setup jobs;
  let ops =
    List.concat
      [
        (match stable_at with Some a -> [ `Stable_at a ] | None -> []);
        (match entry with Some g -> [ `Entry g ] | None -> []);
        (if figures then [ `Figures ] else []);
        (if export then [ `Export ] else []);
        (if stats then [ `Stats ] else []);
        (if health then [ `Health ] else []);
        (if shutdown then [ `Shutdown ] else []);
      ]
  in
  match ops with
  | [] ->
    Printf.eprintf
      "error: pick one operation (--stable-at, --entry, --figures, --export, --stats, \
       --health, --shutdown)\n";
    1
  | _ :: _ :: _ ->
    Printf.eprintf "error: pick exactly one operation\n";
    1
  | [ op ] -> (
    let run () =
      if remote then query_remote ~addr:target ~game ~op ~csv
      else query_local ~path:target ~game ~op ~csv
    in
    match run () with
    | code -> code
    | exception Nf_store.Layout.Corrupt msg ->
      Printf.eprintf "error: %s\n" msg;
      1
    | exception Invalid_argument msg ->
      Printf.eprintf "error: %s\n" msg;
      1
    | exception Failure msg ->
      Printf.eprintf "error: %s\n" msg;
      1
    | exception Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
    | exception Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "error: %s: %s %s\n" (Unix.error_message e) fn arg;
      1)

let query_cmd =
  let target =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TARGET"
          ~doc:
            "A store file or shard directory; with $(b,--remote), a daemon address (a unix \
             socket path, or $(i,HOST:PORT)).")
  in
  let remote =
    Arg.(
      value & flag
      & info [ "remote" ]
          ~doc:
            "Send the query to a running $(b,netform serve) daemon instead of answering \
             in-process.  Outputs are byte-identical between the two modes.")
  in
  let game =
    Arg.(
      value
      & opt (some string) None
      & info [ "game" ] ~docv:"GAME"
          ~doc:
            "Game column to query (default: bcg on a classic store, the store's own game \
             otherwise).")
  in
  let stable_at =
    Arg.(
      value
      & opt (some alpha_conv) None
      & info [ "stable-at" ] ~docv:"ALPHA"
          ~doc:"Print the graph6 of every class stable at this exact link cost, one per line.")
  in
  let entry =
    Arg.(
      value
      & opt (some string) None
      & info [ "entry" ] ~docv:"G6" ~doc:"Look up one stored class by its graph6 string.")
  in
  let figures =
    Arg.(value & flag & info [ "figures" ] ~doc:"Print the figure-sweep CSV for the store.")
  in
  let export =
    Arg.(value & flag & info [ "export" ] ~doc:"Print the full atlas CSV (like store export).")
  in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print store/daemon statistics.") in
  let health = Arg.(value & flag & info [ "health" ] ~doc:"Daemon liveness check (--remote).") in
  let shutdown =
    Arg.(value & flag & info [ "shutdown" ] ~doc:"Ask the daemon to shut down cleanly (--remote).")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "One atlas query, answered in-process from a store, or by a $(b,netform serve) \
          daemon with $(b,--remote) — byte-identical either way")
    Term.(
      const query_run $ jobs_opt $ target $ remote $ game $ stable_at $ entry $ figures
      $ export $ stats $ health $ shutdown $ csv_opt)

let main_cmd =
  Cmd.group
    (Cmd.info "netform" ~version:"1.0.0"
       ~doc:"Bilateral vs unilateral network formation (Corbo & Parkes, PODC 2005)")
    [
      stability_cmd; named_cmd; games_cmd; enumerate_cmd; sweep_cmd; dynamics_cmd;
      mc_poa_cmd; annotate_cmd; experiments_cmd; store_cmd; serve_cmd; query_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
