(* Quickstart: the library in one sitting.

   Builds a few graphs, computes player and social costs in both games,
   asks the central question of the paper — which topologies are stable,
   and at what price — and prints the answers.

   Run with: dune exec examples/quickstart.exe *)

module Graph = Nf_graph.Graph
module Rat = Nf_util.Rat
open Netform

let section title =
  Printf.printf "\n--- %s ---\n" title

let () =
  section "1. Graphs";
  (* vertices are 0..n-1; edges are undirected and persistent *)
  let star = Nf_named.Families.star 6 in
  let cycle = Nf_named.Families.cycle 6 in
  let ad_hoc = Graph.of_edges 6 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0); (0, 3) ] in
  List.iter
    (fun (name, g) -> Printf.printf "%-8s %s\n" name (Nf_graph.Pp.summary g))
    [ ("star", star); ("cycle", cycle); ("ad hoc", ad_hoc) ];

  section "2. Costs (eq. 1 and eq. 4)";
  let alpha = 2.0 in
  Printf.printf "alpha = %.1f\n" alpha;
  Printf.printf "star:  center pays %.1f, a leaf pays %.1f; social cost %.1f\n"
    (Cost.player_cost ~alpha star 0)
    (Cost.player_cost ~alpha star 1)
    (Cost.social_cost Cost.Bcg ~alpha star);
  Printf.printf "cycle: each player pays %.1f; social cost %.1f\n"
    (Cost.player_cost ~alpha cycle 0)
    (Cost.social_cost Cost.Bcg ~alpha cycle);

  section "3. Stability in the bilateral game (pairwise stability)";
  List.iter
    (fun (name, g) ->
      Printf.printf "%-8s stable link costs: %s\n" name
        (Nf_util.Interval.to_string (Bcg.stable_alpha_set g)))
    [ ("star", star); ("cycle", cycle); ("ad hoc", ad_hoc) ];

  section "4. Nash in the unilateral game";
  List.iter
    (fun (name, g) ->
      Printf.printf "%-8s Nash link costs: %s\n" name
        (Nf_util.Interval.Union.to_string (Ucg.nash_alpha_set g)))
    [ ("star", star); ("cycle", cycle) ];

  section "5. Price of anarchy";
  let a = Rat.of_int 2 in
  List.iter
    (fun (name, g) ->
      if Bcg.is_pairwise_stable ~alpha:a g then
        Printf.printf "%-8s is stable at alpha=2 with PoA %.3f\n" name
          (Poa.price_of_anarchy Cost.Bcg ~alpha:2.0 g)
      else Printf.printf "%-8s is not stable at alpha=2\n" name)
    [ ("star", star); ("cycle", cycle); ("ad hoc", ad_hoc) ];

  section "6. Dynamics: reaching a stable network";
  let rng = Nf_util.Prng.create 42 in
  let outcome = Nf_dynamics.Bcg_dynamics.run ~alpha:a ~rng (Nf_named.Families.path 6) in
  Printf.printf "improving path from P6: %d moves, converged=%b\nfinal: %s\n"
    outcome.Nf_dynamics.Bcg_dynamics.steps outcome.Nf_dynamics.Bcg_dynamics.converged
    (Graph.to_string outcome.Nf_dynamics.Bcg_dynamics.final)
