(* P2P overlay formation under churn: the unilateral game as a protocol.

   In an unstructured overlay a peer opens connections unilaterally (the
   other side merely accepts the TCP connection) and pays the maintenance
   cost itself — Fabrikant et al.'s unilateral connection game.  This
   example runs best-response "maintenance ticks" while peers churn
   (leave and rejoin with no links) and reports how the overlay heals,
   what shape it settles into at different connection costs, and how far
   from optimal it ends up.

   Run with: dune exec examples/p2p_overlay.exe *)

module Graph = Nf_graph.Graph
module Rat = Nf_util.Rat
module Prng = Nf_util.Prng
module Dyn = Nf_dynamics.Ucg_dynamics
open Netform

let n = 10
let churn_events = 12

let shape g =
  if Graph.is_complete g then "full mesh"
  else if Nf_graph.Props.is_star g then "star"
  else if Nf_graph.Props.is_tree g then "tree"
  else
    Printf.sprintf "m=%d diam=%s" (Graph.size g)
      (Nf_util.Ext_int.to_string (Nf_graph.Apsp.diameter g))

(* one churn event: a random peer drops out (loses all links, its
   purchases and others' purchases towards it) and rejoins cold *)
let churn rng state =
  let victim = Prng.int rng n in
  let graph =
    Nf_util.Bitset.fold
      (fun j acc -> Graph.remove_edge acc victim j)
      (Graph.neighbors state.Dyn.graph victim)
      state.Dyn.graph
  in
  let owned = Array.map (Nf_util.Bitset.remove victim) state.Dyn.owned in
  owned.(victim) <- Nf_util.Bitset.empty;
  ({ Dyn.graph; owned }, victim)

let run_scenario alpha =
  let rng = Prng.create 7 in
  Printf.printf "\nconnection cost alpha = %s\n" (Rat.to_string alpha);
  let state = ref (Dyn.empty n) in
  (* bootstrap: everyone best-responds from nothing *)
  let boot = Dyn.run_random ~alpha ~rng !state in
  state := boot.Dyn.final;
  Printf.printf "  bootstrap: %d rounds -> %s\n" boot.Dyn.rounds (shape !state.Dyn.graph);
  let healed = ref 0 in
  for _ = 1 to churn_events do
    let after_churn, victim = churn rng !state in
    let outcome = Dyn.run_random ~alpha ~rng after_churn in
    state := outcome.Dyn.final;
    if Nf_graph.Connectivity.is_connected !state.Dyn.graph then incr healed
    else Printf.printf "  ! overlay stayed partitioned after peer %d churned\n" victim
  done;
  let g = !state.Dyn.graph in
  Printf.printf "  after %d churn events: healed %d/%d, final %s\n" churn_events !healed
    churn_events (shape g);
  Printf.printf "  nash=%b  PoA=%.4f  avg path len=%.2f\n"
    (Dyn.is_nash ~alpha !state)
    (Poa.price_of_anarchy Cost.Ucg ~alpha:(Rat.to_float alpha) g)
    (Nf_graph.Apsp.average_distance g)

let () =
  Printf.printf "Unstructured P2P overlay, %d peers, churn + best-response maintenance\n" n;
  Printf.printf "=====================================================================\n";
  List.iter
    (fun (num, den) -> run_scenario (Rat.make num den))
    [ (1, 2); (3, 2); (4, 1); (12, 1) ];
  Printf.printf
    "\nTakeaway: below alpha=1 peers mesh fully; past it the overlay collapses\n\
     into hub-and-spoke shapes.  Best-response maintenance re-connects the\n\
     overlay after every churn event — the selfish protocol is self-healing,\n\
     at a bounded price of anarchy (Figure 2 of the paper quantifies it).\n"
