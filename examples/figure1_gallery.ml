(* Figure 1 gallery walk-through.

   For every graph in the paper's Figure 1 this example prints the
   textbook invariants, the exact window of link costs for which the
   graph is pairwise stable in the bilateral game, the price paid for
   that stability, and — for the smaller graphs — whether the unilateral
   game would ever support them as Nash networks.

   Run with: dune exec examples/figure1_gallery.exe *)

module Graph = Nf_graph.Graph
module Interval = Nf_util.Interval
module Rat = Nf_util.Rat
open Netform

let () =
  print_endline "The Figure 1 gallery: stable network shapes of the bilateral game";
  print_endline "==================================================================";
  List.iter
    (fun name ->
      let g = List.assoc name Nf_named.Gallery.all in
      Printf.printf "\n%s\n%s\n" name (String.make (String.length name) '-');
      Printf.printf "  %s\n" (Nf_graph.Pp.summary g);
      (match Nf_named.Moore.moore_ratio g with
      | Some r -> Printf.printf "  moore ratio %.3f%s\n" r (if r = 1.0 then " (Moore graph!)" else "")
      | None -> ());
      let set = Bcg.stable_alpha_set g in
      Printf.printf "  pairwise stable for alpha in %s\n" (Interval.to_string set);
      Printf.printf "  link convex: %b\n" (Convexity.is_link_convex g);
      (match Interval.bounds set with
      | Some (Interval.Finite lo, _, Interval.Finite hi, _) ->
        let mid = Rat.to_float (Rat.div (Rat.add lo hi) (Rat.of_int 2)) in
        Printf.printf "  at alpha=%.2f: social cost %.1f, PoA %.4f\n" mid
          (Cost.social_cost Cost.Bcg ~alpha:mid g)
          (Poa.price_of_anarchy Cost.Bcg ~alpha:mid g)
      | Some (Interval.Finite lo, _, Interval.Pos_inf, _) ->
        let a = Rat.to_float lo +. 1.0 in
        Printf.printf "  at alpha=%.2f: social cost %.1f, PoA %.4f\n" a
          (Cost.social_cost Cost.Bcg ~alpha:a g)
          (Poa.price_of_anarchy Cost.Bcg ~alpha:a g)
      | Some _ | None -> ());
      if Graph.order g <= 10 && Graph.size g <= 15 then
        Printf.printf "  UCG Nash alpha set: %s\n"
          (Nf_util.Interval.Union.to_string (Ucg.nash_alpha_set g)))
    [ "petersen"; "mcgee"; "octahedron"; "clebsch"; "hoffman-singleton"; "star8" ];
  print_endline "";
  print_endline "Contrast (section 4.1): two cubic 20-vertex graphs the sketch treats alike";
  List.iter
    (fun name ->
      let g = List.assoc name Nf_named.Gallery.all in
      Printf.printf "  %-13s stable for alpha in %-8s link convex: %b\n" name
        (Interval.to_string (Bcg.stable_alpha_set g))
        (Convexity.is_link_convex g))
    [ "desargues"; "dodecahedron" ]
