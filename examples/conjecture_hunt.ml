(* Hunting the paper's conjecture.

   Section 4.3 conjectures that every Nash graph of the unilateral game
   is pairwise stable in the bilateral game at the same link cost.  This
   example replays the hunt that refutes it: sweep all connected
   topologies on six vertices, compare each graph's exact UCG Nash
   α-set with its exact BCG stable α-set, and dissect the first
   counterexample move by move.

   Run with: dune exec examples/conjecture_hunt.exe *)

module Graph = Nf_graph.Graph
module Rat = Nf_util.Rat
module Interval = Nf_util.Interval
open Netform

let () =
  let n = 6 in
  Printf.printf "Conjecture: UCG Nash graphs are BCG pairwise stable at the same alpha.\n";
  Printf.printf "Sweeping all %d connected topologies on %d vertices...\n\n"
    (Nf_enum.Unlabeled.count_connected n) n;
  let counterexamples = ref [] in
  let nash_count = ref 0 in
  List.iter
    (fun g ->
      let nash = Ucg.nash_alpha_set g in
      if not (Interval.Union.is_empty nash) then begin
        incr nash_count;
        let stable = Bcg.stable_alpha_set g in
        let contained =
          List.for_all (fun piece -> Interval.subset piece stable) (Interval.Union.to_list nash)
        in
        if not contained then counterexamples := (g, nash, stable) :: !counterexamples
      end)
    (Nf_enum.Unlabeled.connected_graphs n);
  Printf.printf "%d classes are UCG-Nash for some alpha; %d violate the conjecture.\n\n"
    !nash_count
    (List.length !counterexamples);
  match List.rev !counterexamples with
  | [] -> print_endline "No counterexample at this size."
  | (g, nash, stable) :: _ ->
    Printf.printf "First counterexample:\n  %s\n" (Graph.to_string g);
    Printf.printf "  UCG Nash alpha set:   %s\n" (Interval.Union.to_string nash);
    Printf.printf "  BCG stable alpha set: %s\n\n" (Interval.to_string stable);
    (* pick a Nash alpha outside the stable set and dissect *)
    let alpha =
      match Interval.Union.to_list nash with
      | piece :: _ -> (
        match Interval.bounds piece with
        | Some (Interval.Finite lo, _, _, _) -> lo
        | _ -> Rat.of_int 2)
      | [] -> Rat.of_int 2
    in
    Printf.printf "Dissection at alpha = %s:\n" (Rat.to_string alpha);
    Printf.printf "  UCG: is Nash graph?       %b\n" (Ucg.is_nash_graph ~alpha g);
    Printf.printf "  BCG: pairwise stable?     %b\n" (Bcg.is_pairwise_stable ~alpha g);
    (match Bcg.improving_deletion ~alpha g with
    | Some (i, j) ->
      Printf.printf "  destabilizing move: player %d severs link %d-%d\n" i i j;
      (match Bcg.severance_loss g i j with
      | Nf_util.Ext_int.Fin loss ->
        Printf.printf
          "    severing costs %d in distance but saves alpha = %s in link cost\n" loss
          (Rat.to_string alpha)
      | Nf_util.Ext_int.Inf -> ())
    | None -> (
      match Bcg.improving_addition ~alpha g with
      | Some (i, j) -> Printf.printf "  destabilizing move: add link %d-%d\n" i j
      | None -> ()));
    Printf.printf
      "\nWhy the conjecture fails: in the unilateral game the tolerated edge is paid\n\
       for by the OTHER endpoint, so keeping it is free; bilaterally both ends pay\n\
       alpha, and the less interested one cuts.  (Prop 5 survives for trees: there\n\
       every severance disconnects, so nobody ever cuts.)\n"
