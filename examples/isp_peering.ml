(* ISP peering: the paper's motivating scenario for bilateral consent.

   Autonomous systems peer only by mutual agreement (a BGP session needs
   configuration at both ends), and both sides carry the interconnect
   cost — exactly the bilateral connection game.  This example models a
   small internet exchange of n ISPs:

   1. each ISP wants low hop-count to every other network (the distance
      term) but ports/cross-connects cost money (the α term);
   2. peering agreements form and dissolve along improving paths;
   3. we watch how the resulting topology — and the welfare lost to
      selfishness — changes as interconnect prices rise.

   Run with: dune exec examples/isp_peering.exe *)

module Graph = Nf_graph.Graph
module Rat = Nf_util.Rat
module Prng = Nf_util.Prng
module Dyn = Nf_dynamics.Bcg_dynamics
open Netform

let n = 9

let describe g =
  Printf.sprintf "%d peering links, diameter %s, max degree %d"
    (Graph.size g)
    (Nf_util.Ext_int.to_string (Nf_graph.Apsp.diameter g))
    (Nf_graph.Props.max_degree g)

let () =
  Printf.printf "An internet exchange with %d ISPs\n" n;
  Printf.printf "=================================\n\n";
  Printf.printf
    "Interconnect price sweep: from free cross-connects to premium ports.\n\
     Each row: improving-path dynamics from a sparse random topology until\n\
     no ISP wants to add or drop a peering session.\n\n";
  let rng = Prng.create 2005 in
  let table =
    Nf_util.Table.create
      [ "price (alpha)"; "moves"; "stable topology"; "social cost"; "PoA" ]
  in
  List.iter
    (fun (num, den) ->
      let alpha = Rat.make num den in
      let alpha_f = Rat.to_float alpha in
      let seed_topology = Nf_graph.Random_graph.connected_gnp rng n 0.25 in
      let outcome = Dyn.run ~alpha ~rng seed_topology in
      let g = outcome.Dyn.final in
      Nf_util.Table.add_row table
        [
          Rat.to_string alpha;
          string_of_int outcome.Dyn.steps;
          describe g;
          Printf.sprintf "%.1f" (Cost.social_cost Cost.Bcg ~alpha:alpha_f g);
          Printf.sprintf "%.4f" (Poa.price_of_anarchy Cost.Bcg ~alpha:alpha_f g);
        ])
    [ (1, 2); (1, 1); (2, 1); (4, 1); (8, 1); (16, 1); (32, 1) ];
  Nf_util.Table.print table;

  Printf.printf
    "\nReading the table: cheap ports produce a full mesh (everyone peers with\n\
     everyone, socially optimal); as prices rise the exchange thins out into\n\
     sparse hub-like topologies, and a welfare gap opens and persists — the\n\
     price of selfish peering.\n\n";

  (* compare the same market under a unilateral rule: an ISP can buy
     transit to anyone without consent (the UCG) *)
  Printf.printf "Same market, unilateral transit purchases instead of consented peering:\n";
  let alpha = Rat.of_int 4 in
  let outcome = Nf_dynamics.Ucg_dynamics.run_random ~alpha ~rng (Nf_dynamics.Ucg_dynamics.empty n) in
  let g = outcome.Nf_dynamics.Ucg_dynamics.final.Nf_dynamics.Ucg_dynamics.graph in
  Printf.printf "  alpha=4: best-response rounds=%d, %s\n"
    outcome.Nf_dynamics.Ucg_dynamics.rounds (describe g);
  Printf.printf "  PoA %.4f (a single buyer per link coordinates better at high prices)\n"
    (Poa.price_of_anarchy Cost.Ucg ~alpha:4.0 g);

  (* how much worse can consented peering get? exhaustive worst case *)
  Printf.printf "\nWorst stable exchange over ALL topologies (n=6, exhaustive):\n";
  List.iter
    (fun (num, den) ->
      let alpha = Rat.make num den in
      let stable = Nf_analysis.Equilibria.bcg_stable_graphs ~n:6 ~alpha in
      let summary = Poa.summarize Cost.Bcg ~alpha:(Rat.to_float alpha) stable in
      Printf.printf "  alpha=%-4s equilibria=%-3d worst PoA=%.4f avg PoA=%.4f\n"
        (Rat.to_string alpha) summary.Poa.count summary.Poa.worst summary.Poa.average)
    [ (1, 2); (2, 1); (4, 1); (8, 1) ]
