(* Benchmark & reproduction harness.

   Running this executable does two things:

   1. prints every table and figure of the paper's evaluation (the E1-E22
      reproduction suite from nf_analysis.Experiments) — the "rows and
      series the paper reports";
   2. times the computation behind each artifact with Bechamel, one
      Test.make per table/figure, plus the substrate kernels they rest on
      (BFS, canonical labeling, enumeration, stability intervals, Nash
      orientation search).

   Besides the Bechamel text report, the per-test estimates are written as
   machine-readable JSON (BENCH_<timestamp>.json, or the path given by
   NETFORM_BENCH_JSON) so the perf trajectory is tracked across PRs.

   Environment:
     NETFORM_BENCH_N     players for the exhaustive experiments (default 6)
     NETFORM_BENCH_SKIP_EXPERIMENTS=1   timing runs only
     NETFORM_BENCH_QUICK=1              minimal quota (the ci.sh smoke pass)
     NETFORM_BENCH_JSON  path for the JSON report (default BENCH_<timestamp>.json)
     NETFORM_BENCH_STORE_N  players for the store cold/warm pair (default 7; 6 in quick mode)
     NETFORM_JOBS        domain-pool width for the parallel sweeps

   The JSON report carries provenance (git commit, jobs width, OCaml
   version) so the perf trajectory stays interpretable across machines
   and checkouts. *)

open Bechamel
open Toolkit

let bench_n =
  match Sys.getenv_opt "NETFORM_BENCH_N" with
  | Some s -> (try max 4 (min 7 (int_of_string s)) with _ -> 6)
  | None -> 6

let quick = Sys.getenv_opt "NETFORM_BENCH_QUICK" = Some "1"

(* ---------------- part 1: reproduce the paper ---------------- *)

let print_experiments () =
  Printf.printf "netform reproduction suite (n=%d)\n" bench_n;
  Printf.printf "=================================\n\n%!";
  let results = Nf_analysis.Experiments.run_all ~n:bench_n () in
  print_string (Nf_analysis.Experiments.render_all results);
  let failed = List.filter (fun r -> not r.Nf_analysis.Experiments.ok) results in
  if failed = [] then Printf.printf "\nall experiment self-checks passed\n%!"
  else
    Printf.printf "\nFAILED self-checks: %s\n%!"
      (String.concat ", " (List.map (fun r -> r.Nf_analysis.Experiments.id) failed))

(* ---------------- part 2: timing ---------------- *)

module Families = Nf_named.Families
module Gallery = Nf_named.Gallery
module Rat = Nf_util.Rat
open Netform

(* per-table/figure kernels (smaller sizes: timing, not reproduction) *)
let experiment_tests =
  [
    Test.make ~name:"fig1_gallery_stable_sets" (Staged.stage (fun () ->
        List.map
          (fun g -> Bcg.stable_alpha_set g)
          [ Gallery.petersen; Gallery.octahedron; Gallery.clebsch ]));
    Test.make ~name:"fig2_fig3_sweep_n5" (Staged.stage (fun () ->
        Nf_analysis.Equilibria.clear_cache ();
        Nf_analysis.Figures.sweep ~n:5 ()));
    Test.make ~name:"lemma4_exhaustive_n5" (Staged.stage (fun () ->
        Nf_analysis.Experiments.e4_lemma4 ~n:5 ()));
    Test.make ~name:"lemma5_exhaustive_n5" (Staged.stage (fun () ->
        Nf_analysis.Experiments.e5_lemma5 ~n:5 ()));
    Test.make ~name:"lemma6_cycle_windows" (Staged.stage (fun () ->
        Nf_analysis.Experiments.e6_lemma6_cycles ~max_n:12 ()));
    Test.make ~name:"prop3_moore_windows" (Staged.stage (fun () ->
        (Bcg.stable_alpha_set Gallery.petersen, Bcg.stable_alpha_set Gallery.mcgee)));
    Test.make ~name:"prop4_worst_poa_n6" (Staged.stage (fun () ->
        let annotated = Nf_analysis.Equilibria.bcg_annotated 6 in
        List.map
          (fun alpha ->
            List.filter (fun (_, set) -> Nf_util.Interval.mem alpha set) annotated)
          Nf_analysis.Sweep.paper_grid));
    Test.make ~name:"prop5_tree_nash_sets_n7" (Staged.stage (fun () ->
        List.map Ucg.nash_alpha_set (Nf_enum.Trees.unlabeled_trees 7)));
    Test.make ~name:"foot5_cycle_nash_sets" (Staged.stage (fun () ->
        List.map (fun n -> Ucg.nash_alpha_set (Families.cycle n)) [ 5; 6; 7 ]));
    Test.make ~name:"foot7_petersen_nash_set" (Staged.stage (fun () ->
        Ucg.nash_alpha_set Gallery.petersen));
    Test.make ~name:"desargues_link_convexity" (Staged.stage (fun () ->
        Convexity.link_convexity_gap Gallery.desargues));
    Test.make ~name:"eq5_bound_check_n5" (Staged.stage (fun () ->
        Nf_analysis.Experiments.e13_eq5_bound ~n:5 ()));
    Test.make ~name:"transfers_stable_set_petersen" (Staged.stage (fun () ->
        Transfers.stable_alpha_set Gallery.petersen));
    Test.make ~name:"prop2_witness_gallery" (Staged.stage (fun () ->
        List.map (fun (_, g) -> Convexity.witness_alpha g) Gallery.all));
    Test.make ~name:"meta_digraph_n4" (Staged.stage (fun () ->
        Nf_dynamics.Meta.analyze ~alpha:(Rat.of_int 2) ~n:4));
    Test.make ~name:"shape_census_n6" (Staged.stage (fun () ->
        Nf_analysis.Shapes.census
          (Nf_analysis.Equilibria.bcg_stable_graphs ~n:6 ~alpha:(Rat.of_int 2))));
    Test.make ~name:"distance_utilities_windows" (Staged.stage (fun () ->
        List.map
          (fun p -> Distance_utility.stable_alpha_set p Gallery.petersen)
          [ Distance_utility.linear; Distance_utility.quadratic;
            Distance_utility.hop_capped 2 ]));
    Test.make ~name:"bcg_scaling_annotate_n6" (Staged.stage (fun () ->
        Nf_analysis.Equilibria.clear_cache ();
        Nf_analysis.Equilibria.bcg_annotated 6));
    Test.make ~name:"sampled_n10_one_row" (Staged.stage (fun () ->
        let rng = Nf_util.Prng.create 7 in
        Nf_dynamics.Bcg_dynamics.sample_stable ~alpha:(Rat.of_int 4) ~rng ~n:10 ~attempts:20));
    Test.make ~name:"proper_n4_one_epsilon" (Staged.stage (fun () ->
        Proper.analyze Cost.Bcg ~alpha:2.0
          ~target:(Strategy.of_graph_bcg (Families.star 4))
          ~epsilons:[ 0.05 ] ()));
    Test.make ~name:"stochastic_stability_n4" (Staged.stage (fun () ->
        Nf_dynamics.Stochastic.analyze ~alpha:(Rat.of_int 2) ~n:4));
  ]

(* substrate kernels *)
let kernel_tests =
  let rng = Nf_util.Prng.create 99 in
  let random_graph = Nf_graph.Random_graph.connected_gnp rng 40 0.1 in
  [
    Test.make ~name:"bfs_distance_sum_n40" (Staged.stage (fun () ->
        Nf_graph.Bfs.distance_sum random_graph 0));
    Test.make ~name:"apsp_wiener_hoffman_singleton" (Staged.stage (fun () ->
        Nf_graph.Apsp.wiener Gallery.hoffman_singleton));
    Test.make ~name:"girth_mcgee" (Staged.stage (fun () -> Nf_graph.Girth.girth Gallery.mcgee));
    Test.make ~name:"canonical_form_petersen" (Staged.stage (fun () ->
        Nf_iso.Canon.canonical_form Gallery.petersen));
    Test.make ~name:"canonical_form_random_n12" (Staged.stage (fun () ->
        let g = Nf_graph.Random_graph.gnp (Nf_util.Prng.create 3) 12 0.4 in
        Nf_iso.Canon.canonical_form g));
    Test.make ~name:"enumerate_unlabeled_n6" (Staged.stage (fun () ->
        Nf_enum.Unlabeled.clear_cache ();
        Nf_enum.Unlabeled.count_all 6));
    (* the perf-trajectory record for the canonical-augmentation engine:
       cold full enumerations at n=7/8, and a streaming smoke at n=9 (the
       first 2000 classes off a warm n=8 parent level; a full n=9 pass
       belongs in ci.sh, not in a timing loop) *)
    Test.make ~name:"enumerate_all_n7_cold" (Staged.stage (fun () ->
        Nf_enum.Unlabeled.clear_cache ();
        Nf_enum.Unlabeled.count_all 7));
    Test.make ~name:"enumerate_all_n8_cold" (Staged.stage (fun () ->
        Nf_enum.Unlabeled.clear_cache ();
        Nf_enum.Unlabeled.count_all 8));
    Test.make ~name:"enumerate_stream_n9_smoke" (Staged.stage (fun () ->
        ignore (Nf_enum.Unlabeled.all_graphs 8);
        let seen = ref 0 in
        (try
           Nf_enum.Unlabeled.iter_graphs 9 (fun _ ->
               incr seen;
               if !seen >= 2000 then raise Exit)
         with Exit -> ());
        !seen));
    Test.make ~name:"stable_alpha_set_petersen" (Staged.stage (fun () ->
        Bcg.stable_alpha_set Gallery.petersen));
    (* the batched-kernel annotation trajectory: stability intervals for
       every connected class at n=7/8 (the enumeration cache warms on the
       first iteration and is never cleared here, so these rows time the
       annotation sweep itself) *)
    Test.make ~name:"bcg_annotate_n7" (Staged.stage (fun () ->
        Nf_analysis.Equilibria.clear_cache ();
        Nf_analysis.Equilibria.bcg_annotated 7));
    Test.make ~name:"bcg_annotate_n8" (Staged.stage (fun () ->
        Nf_analysis.Equilibria.clear_cache ();
        Nf_analysis.Equilibria.bcg_annotated 8));
    (* same sweep with the orbit quotient pinned on (DESIGN.md §11): kept
       as its own row so the quotiented trajectory stays tracked even if
       the process default ever changes *)
    Test.make ~name:"bcg_annotate_orbit_n8" (Staged.stage (fun () ->
        Nf_iso.Symmetry.set_quotient_enabled true;
        Nf_analysis.Equilibria.clear_cache ();
        Nf_analysis.Equilibria.bcg_annotated 8));
    Test.make ~name:"is_pairwise_stable_clebsch" (Staged.stage (fun () ->
        Bcg.is_pairwise_stable ~alpha:(Rat.of_int 2) Gallery.clebsch));
    Test.make ~name:"nash_alpha_set_c7" (Staged.stage (fun () ->
        Ucg.nash_alpha_set (Families.cycle 7)));
    Test.make ~name:"ucg_best_response_star10" (Staged.stage (fun () ->
        Ucg.best_response ~alpha:(Rat.of_int 2) (Families.star 10) 1
          ~owned:Nf_util.Bitset.empty));
    Test.make ~name:"bcg_dynamics_run_n8" (Staged.stage (fun () ->
        let rng = Nf_util.Prng.create 5 in
        Nf_dynamics.Bcg_dynamics.run ~alpha:(Rat.of_int 2) ~rng
          (Nf_graph.Random_graph.connected_gnp rng 8 0.3)));
    Test.make ~name:"graph6_roundtrip_n30" (Staged.stage (fun () ->
        let g = Nf_graph.Random_graph.gnp (Nf_util.Prng.create 11) 30 0.3 in
        Nf_graph.Graph6.decode (Nf_graph.Graph6.encode g)));
    (* the multi-word BFS trajectory: full APSP distance sums over a
       4-word slab (n=256 at the mc-poa default density) — the inner-loop
       cost every large-n Monte-Carlo move evaluation rests on *)
    (let g256 =
       Nf_graph.Random_graph.gnp (Nf_util.Prng.create 256)
         256 (Nf_dynamics.Mc_poa.default_init_p 256)
     in
     Test.make ~name:"all_sums_n256" (Staged.stage (fun () ->
         Nf_graph.Kernel.with_loaded g256 Nf_graph.Kernel.all_distance_sums)));
  ]

(* registry-driven games: the extension game's full annotation sweep
   exercises the generic Equilibria cache + Game kernel path end to
   end — the trajectory row for everything that is NOT the classic
   bcg/ucg pair *)
let game_tests =
  [
    Test.make ~name:"weighted_bcg_annotate_n6" (Staged.stage (fun () ->
        Nf_analysis.Equilibria.clear_cache ();
        Nf_analysis.Equilibria.annotated Game_registry.weighted_bcg 6));
  ]

(* ---------------- store cold/warm trajectory ---------------- *)

(* The nf_store acceptance record: a one-shot timed cold build (the full
   annotation sweep into a fresh store) against a warm figure
   regeneration from that store (index load + Query.figure_points over
   the paper grid).  One-shot wall-clock rather than a Bechamel staged
   loop because the cold build at n=7 runs for ~10s, far past any
   sensible quota; a single run is plenty to witness the cold/warm
   ratio. *)
let store_n =
  match Sys.getenv_opt "NETFORM_BENCH_STORE_N" with
  | Some s -> (try max 4 (min 7 (int_of_string s)) with _ -> if quick then 6 else 7)
  | None -> if quick then 6 else 7

let store_rows () =
  let path = Filename.temp_file "netform_bench_store" ".nfs" in
  let path8 = Filename.temp_file "netform_bench_store8" ".nfs" in
  let shard_dir = Filename.temp_file "netform_bench_shards" "" in
  Sys.remove shard_dir;
  Sys.mkdir shard_dir 0o700;
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ path; path ^ ".part"; path8; path8 ^ ".part" ];
      if Sys.file_exists shard_dir then begin
        Array.iter
          (fun name -> Sys.remove (Filename.concat shard_dir name))
          (Sys.readdir shard_dir);
        Sys.rmdir shard_dir
      end)
    (fun () ->
      let outcome, cold =
        time (fun () -> Nf_store.Build.build ~path ~n:store_n ~force:true ())
      in
      let points, warm =
        time (fun () ->
            let index = Nf_store.Index.load ~path in
            Nf_store.Query.figure_points index ())
      in
      assert (points <> []);
      Printf.printf
        "\nstore trajectory: n=%d, %d classes; cold build %.2fs, warm figures %.4fs (%.0fx)\n%!"
        store_n outcome.Nf_store.Build.records cold warm (cold /. warm);
      (* the n=8 trajectory row the batched kernel unlocked: a full cold
         build (BCG intervals only — the default with_ucg cutoff is n<=7)
         over all 11117 connected classes, cheap enough to run even in the
         quick ci smoke *)
      let outcome8, cold8 =
        time (fun () -> Nf_store.Build.build ~path:path8 ~n:8 ~force:true ())
      in
      Printf.printf "store n=8 smoke: %d classes; cold build %.2fs\n%!"
        outcome8.Nf_store.Build.records cold8;
      (* the sharded-build acceptance row: a k=4 BCG-only n=7 build run
         shard by shard in this one process, then merged — timed end to
         end against a single-process build of the same parameters, with
         the byte-identity acceptance asserted on every bench run *)
      let single = Filename.concat shard_dir "single.nfs" in
      let merged = Filename.concat shard_dir "merged.nfs" in
      let _, single_t =
        time (fun () -> Nf_store.Build.build ~game:"bcg" ~path:single ~n:7 ~force:true ())
      in
      let read_all p = In_channel.with_open_bin p In_channel.input_all in
      let k = 4 in
      let _, sharded_t =
        time (fun () ->
            for i = 1 to k do
              ignore
                (Nf_store.Build.build ~game:"bcg" ~shard:(i, k)
                   ~path:(Filename.concat shard_dir (Printf.sprintf "shard%d.nfs" i))
                   ~n:7 ~force:true ())
            done;
            ignore (Nf_store.Merge.merge_dir ~dir:shard_dir ~out:merged ()))
      in
      assert (read_all single = read_all merged);
      Printf.printf
        "store sharded n=7 (bcg): single build %.2fs, %d shards + merge %.2fs, bytes identical\n%!"
        single_t k sharded_t;
      (* the nf_serve acceptance rows, off the stores already built above.

         warm_query_n7: a live daemon on a unix socket over the n=7
         BCG-only store, timed per stable-at round trip (client JSON line
         -> pool dispatch -> α-index stab -> response line) with the
         index already warm.  interval_index_n8: the α-interval index
         over all 11117 n=8 classes — mmap streaming pass + build + 1000
         stabbing queries, one-shot end to end. *)
      let sock = Filename.temp_file "netform_bench_serve" ".sock" in
      Sys.remove sock;
      let server =
        Domain.spawn (fun () ->
            Nf_serve.Server.serve ~report:ignore
              ~addr:(Nf_serve.Server.Unix_socket sock) ~path:single ())
      in
      let rec await tries =
        if tries = 0 then failwith "bench: serve socket never appeared"
        else if not (Sys.file_exists sock) then begin
          Unix.sleepf 0.05;
          await (tries - 1)
        end
      in
      await 200;
      let client = Nf_serve.Client.connect sock in
      let alphas = Array.of_list Nf_analysis.Sweep.paper_grid in
      let round_trip i =
        let alpha = alphas.(i mod Array.length alphas) in
        let resp =
          Nf_serve.Client.request client
            (Nf_serve.Protocol.Stable_at { game = None; alpha })
        in
        assert (Nf_serve.Protocol.response_ok resp)
      in
      (* first pass builds the daemon's α-index; then time warm trips *)
      round_trip 0;
      let reqs = 200 in
      let (), served_t = time (fun () -> for i = 1 to reqs do round_trip i done) in
      ignore (Nf_serve.Client.request client Nf_serve.Protocol.Shutdown);
      Nf_serve.Client.close client;
      Domain.join server;
      let warm_query = served_t /. float_of_int reqs in
      Printf.printf "serve n=7 (bcg): %d warm stable-at round trips, %.0f ns each\n%!" reqs
        (warm_query *. 1e9);
      let (), index8_t =
        time (fun () ->
            let m = Nf_serve.Mmap_reader.open_store ~path:path8 () in
            let count = Nf_serve.Mmap_reader.length m in
            let regions = Array.make count [] in
            Nf_serve.Mmap_reader.iter m (fun i r -> regions.(i) <- [ r.Nf_store.Layout.bcg ]);
            let idx = Nf_serve.Alpha_index.build ~count ~pieces:(Array.get regions) in
            let eps = Nf_serve.Alpha_index.endpoints idx in
            assert (Array.length eps > 0);
            let hits = ref 0 in
            for i = 0 to 999 do
              let alpha = eps.(i mod Array.length eps) in
              hits := !hits + List.length (Nf_serve.Alpha_index.stable_at idx ~alpha)
            done;
            assert (!hits > 0);
            Nf_serve.Mmap_reader.close m)
      in
      Printf.printf
        "serve n=8: mmap pass + alpha-index build + 1000 endpoint stabs in %.3fs\n%!" index8_t;
      [ (Printf.sprintf "netform/store/cold_build_n%d" store_n, Some (cold *. 1e9));
        (Printf.sprintf "netform/store/warm_figures_n%d" store_n, Some (warm *. 1e9));
        ("netform/store/cold_build_n8_smoke", Some (cold8 *. 1e9));
        ("netform/store/sharded_build_n7", Some (sharded_t *. 1e9));
        ("netform/serve/warm_query_n7", Some (warm_query *. 1e9));
        ("netform/serve/interval_index_n8", Some (index8_t *. 1e9)) ])

(* ---------------- large-n dynamics trajectory ---------------- *)

(* The multi-word kernel acceptance row: one seeded Monte-Carlo trial at
   n=128 (a 3-word slab) run end to end — G(n,p) init, the randomized
   better-response walk to pairwise stability, exact social cost of the
   converged state.  One-shot wall clock for the same reason as the store
   rows: a single trial runs for ~0.5s, far past any sensible Bechamel
   quota. *)
let dynamics_rows () =
  let t0 = Unix.gettimeofday () in
  let trials = Nf_dynamics.Mc_poa.run ~n:128 ~alpha:(Rat.of_int 2) ~trials:1 ~seed:1 () in
  let dt = Unix.gettimeofday () -. t0 in
  let t = List.hd trials in
  assert t.Nf_dynamics.Mc_poa.converged;
  Printf.printf "\nmc-poa n=128 smoke: %d evals, %d moves, converged in %.2fs\n%!"
    t.Nf_dynamics.Mc_poa.evals t.Nf_dynamics.Mc_poa.moves dt;
  [ ("netform/dynamics/mc_poa_n128_smoke", Some (dt *. 1e9)) ]

(* ---------------- machine-readable report ---------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_path () =
  match Sys.getenv_opt "NETFORM_BENCH_JSON" with
  | Some path -> path
  | None ->
    let tm = Unix.localtime (Unix.time ()) in
    Printf.sprintf "BENCH_%04d%02d%02d_%02d%02d%02d.json" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let git_commit () =
  match Unix.open_process_in "git rev-parse HEAD 2>/dev/null" with
  | exception _ -> None
  | ic ->
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    (match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> Some line
    | _ -> None)

let write_json path rows =
  match open_out path with
  | exception Sys_error msg ->
    (* an unwritable report path must not discard the timings just printed *)
    Printf.eprintf "warning: could not write JSON report: %s\n%!" msg
  | oc ->
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"schema\": \"netform-bench/1\",\n";
  Printf.fprintf oc "  \"unix_time\": %.0f,\n" (Unix.time ());
  Printf.fprintf oc "  \"bench_n\": %d,\n" bench_n;
  Printf.fprintf oc "  \"jobs\": %d,\n" (Nf_util.Pool.default_jobs ());
  Printf.fprintf oc "  \"git_commit\": %s,\n"
    (match git_commit () with
    | Some h -> Printf.sprintf "\"%s\"" (json_escape h)
    | None -> "null");
  Printf.fprintf oc "  \"ocaml_version\": \"%s\",\n" (json_escape Sys.ocaml_version);
  Printf.fprintf oc "  \"results\": [\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun k (name, estimate) ->
      Printf.fprintf oc "    { \"name\": \"%s\", \"ns_per_run\": %s }%s\n" (json_escape name)
        (match estimate with
        | Some e -> Printf.sprintf "%.1f" e
        | None -> "null")
        (if k < last then "," else ""))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "\nwrote %s\n%!" path

let run_benchmarks () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  (* NETFORM_BENCH_QUICK=1: the ci.sh smoke pass — each staged kernel still
     runs (so the JSON perf record has every row) but with a minimal quota *)
  let cfg =
    if quick then Benchmark.cfg ~limit:25 ~quota:(Time.second 0.05) ~stabilize:false ()
    else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let grouped =
    Test.make_grouped ~name:"netform"
      [
        Test.make_grouped ~name:"experiments" experiment_tests;
        Test.make_grouped ~name:"kernels" kernel_tests;
        Test.make_grouped ~name:"games" game_tests;
      ]
  in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "\nbenchmarks (monotonic clock, ns/run)\n";
  Printf.printf "------------------------------------\n";
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  let rows =
    List.map
      (fun (name, ols) ->
        match Analyze.OLS.estimates ols with
        | Some [ estimate ] -> (name, Some estimate)
        | Some _ | None -> (name, None))
      rows
  in
  let rows = rows @ store_rows () @ dynamics_rows () in
  List.iter
    (fun (name, estimate) ->
      match estimate with
      | Some estimate -> Printf.printf "%-55s %14.0f ns/run\n" name estimate
      | None -> Printf.printf "%-55s (no estimate)\n" name)
    rows;
  write_json (json_path ()) rows

let () =
  if Sys.getenv_opt "NETFORM_BENCH_SKIP_EXPERIMENTS" = None then print_experiments ();
  run_benchmarks ()
