(* Tests for nf_iso: refinement, canonical labeling, isomorphism,
   automorphism counting, AHU tree encoding. *)

open Nf_iso
module Graph = Nf_graph.Graph
module Prng = Nf_util.Prng
module Random_graph = Nf_graph.Random_graph

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let graph = Alcotest.testable Graph.pp Graph.equal

let path n = Graph.of_edges n (List.init (n - 1) (fun i -> (i, i + 1)))
let cycle n = Graph.add_edge (path n) 0 (n - 1)
let star n = Graph.of_edges n (List.init (n - 1) (fun i -> (0, i + 1)))

let complete n =
  let g = ref (Graph.empty n) in
  Nf_util.Subset.iter_pairs n (fun i j -> g := Graph.add_edge !g i j);
  !g

let petersen =
  Graph.of_edges 10
    [
      (0, 1); (1, 2); (2, 3); (3, 4); (4, 0);
      (5, 7); (7, 9); (9, 6); (6, 8); (8, 5);
      (0, 5); (1, 6); (2, 7); (3, 8); (4, 9);
    ]

let random_relabel rng g =
  let n = Graph.order g in
  let perm = Array.init n Fun.id in
  Prng.shuffle rng perm;
  Graph.relabel g perm

(* ---------------- Refine ---------------- *)

let test_degree_partition () =
  let p = Refine.degree_partition (star 5) in
  check_int "two cells" 2 (List.length p);
  check (Alcotest.list (Alcotest.list Alcotest.int)) "center first" [ [ 0 ]; [ 1; 2; 3; 4 ] ] p

let test_refine_path () =
  (* Path on 4: degree split {1,1},{2,2}; refinement cannot split further
     (each end vertex sees one degree-2 vertex, each middle sees one end and
     one middle). *)
  let p = Refine.refine (path 4) (Refine.degree_partition (path 4)) in
  check_int "cells" 2 (List.length p);
  (* Path on 5: middle vertex separates from the other two degree-2s. *)
  let p5 = Refine.refine (path 5) (Refine.degree_partition (path 5)) in
  check_int "cells on p5" 3 (List.length p5)

let test_refine_regular_no_split () =
  let p = Refine.refine (cycle 6) (Refine.unit_partition 6) in
  check_int "cycle stays one cell" 1 (List.length p)

let test_individualize () =
  let p = [ [ 0 ]; [ 1; 2; 3 ] ] in
  let p' = Refine.individualize p ~cell:(List.nth p 1) 2 in
  check (Alcotest.list (Alcotest.list Alcotest.int)) "split out" [ [ 0 ]; [ 2 ]; [ 1; 3 ] ] p';
  check_bool "discrete" true (Refine.is_discrete [ [ 1 ]; [ 0 ] ]);
  check_bool "not discrete" false (Refine.is_discrete p)

(* ---------------- Canon ---------------- *)

let test_canonical_invariance () =
  let rng = Prng.create 31 in
  let fixtures = [ path 6; cycle 7; star 8; petersen; complete 5 ] in
  List.iter
    (fun g ->
      let expected = Canon.canonical_form g in
      for _ = 1 to 10 do
        let h = random_relabel rng g in
        check graph "same canonical form" expected (Canon.canonical_form h)
      done)
    fixtures

let test_non_isomorphic_distinguished () =
  (* same degree sequence, not isomorphic: C6 vs two triangles *)
  let c6 = cycle 6 in
  let two_triangles = Graph.of_edges 6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3) ] in
  check_bool "distinguished" false (Canon.is_isomorphic c6 two_triangles);
  (* K_{3,3} vs prism: both 3-regular on 6 vertices *)
  let k33 = Graph.of_edges 6 [ (0, 3); (0, 4); (0, 5); (1, 3); (1, 4); (1, 5); (2, 3); (2, 4); (2, 5) ] in
  let prism = Graph.of_edges 6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3); (0, 3); (1, 4); (2, 5) ] in
  check_bool "k33 vs prism" false (Canon.is_isomorphic k33 prism);
  check_bool "prism vs prism relabeled" true
    (Canon.is_isomorphic prism (random_relabel (Prng.create 4) prism))

let test_isomorphism_witness () =
  let rng = Prng.create 77 in
  for _ = 1 to 50 do
    let g = Random_graph.gnp rng (3 + Prng.int rng 8) 0.5 in
    let h = random_relabel rng g in
    match Canon.isomorphism g h with
    | None -> Alcotest.fail "isomorphic graphs not matched"
    | Some perm -> check graph "witness maps g to h" h (Graph.relabel g perm)
  done

let test_isomorphism_none () =
  check_bool "different sizes" true (Canon.isomorphism (path 4) (cycle 4) = None);
  check_bool "different orders" true (Canon.isomorphism (path 4) (path 5) = None)

let test_automorphism_counts () =
  check_int "path 4: 2" 2 (Canon.automorphism_count (path 4));
  check_int "cycle 5: dihedral 10" 10 (Canon.automorphism_count (cycle 5));
  check_int "star 5: 4! = 24" 24 (Canon.automorphism_count (star 5));
  check_int "K4: 24" 24 (Canon.automorphism_count (complete 4));
  check_int "K5: 120" 120 (Canon.automorphism_count (complete 5));
  check_int "petersen: 120" 120 (Canon.automorphism_count petersen);
  check_int "empty graph on 0: 1" 1 (Canon.automorphism_count (Graph.empty 0));
  (* spider at vertex 2 with legs of lengths 1, 2 and 3: no symmetry *)
  check_int "asymmetric tree" 1
    (Canon.automorphism_count
       (Graph.of_edges 7 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (2, 6) ]))

let test_canonical_complete_fast () =
  (* The orbit pruning must tame the n! blowup on vertex-transitive
     graphs; a K9 canonical form should be instant. *)
  let g = complete 9 in
  check graph "K9 canonical is itself" g (Canon.canonical_form g)

let test_canonical_key_matches_form () =
  let g = petersen in
  check Alcotest.string "key = graph6 of form"
    (Nf_graph.Graph6.encode (Canon.canonical_form g))
    (Canon.canonical_key g)

(* ---------------- Canon.full: automorphism generators ---------------- *)

let is_automorphism g gen =
  let n = Graph.order g in
  Array.length gen = n
  && List.sort_uniq compare (Array.to_list gen) = List.init n Fun.id
  && (let ok = ref true in
      Nf_util.Subset.iter_pairs n (fun i j ->
          if Graph.has_edge g i j <> Graph.has_edge g gen.(i) gen.(j) then ok := false);
      !ok)

(* close the generator set under composition (BFS on the Cayley graph); the
   groups under test are small, so the full element list is affordable *)
let group_closure n generators =
  let key p = String.init n (fun i -> Char.chr p.(i)) in
  let seen = Hashtbl.create 64 in
  let identity = Array.init n Fun.id in
  Hashtbl.add seen (key identity) identity;
  let queue = Queue.create () in
  Queue.add identity queue;
  while not (Queue.is_empty queue) do
    let p = Queue.pop queue in
    List.iter
      (fun gen ->
        let q = Array.init n (fun v -> gen.(p.(v))) in
        let k = key q in
        if not (Hashtbl.mem seen k) then begin
          Hashtbl.add seen k q;
          Queue.add q queue
        end)
      generators
  done;
  Hashtbl.fold (fun _ p acc -> p :: acc) seen []

let full_fixtures () =
  let module Unlabeled = Nf_enum.Unlabeled in
  List.concat_map Unlabeled.all_graphs [ 3; 4; 5 ]
  @ [ petersen; cycle 6; star 7; complete 6; path 7 ]

let test_full_matches_canonical () =
  List.iter
    (fun g ->
      let f = Canon.full g in
      check graph "form = canonical_form" (Canon.canonical_form g) f.Canon.form;
      check graph "perm realizes form" f.Canon.form (Graph.relabel g f.Canon.perm))
    (full_fixtures ())

let test_full_generators_are_automorphisms () =
  List.iter
    (fun g ->
      List.iter
        (fun gen ->
          check_bool "generator preserves adjacency" true (is_automorphism g gen))
        (Canon.full g).Canon.generators)
    (full_fixtures ())

let test_full_generators_complete () =
  (* the exposed generators must generate the FULL automorphism group:
     closure order = backtracking count, and the union-find orbits must
     match the closure's orbit partition exactly.  Canonical augmentation
     is sound only under both. *)
  List.iter
    (fun g ->
      let n = Graph.order g in
      let f = Canon.full g in
      let closure = group_closure n f.Canon.generators in
      check_int "closure order = automorphism count"
        (Canon.automorphism_count g) (List.length closure);
      let same_orbit u v = List.exists (fun p -> p.(u) = v) closure in
      Nf_util.Subset.iter_pairs n (fun u v ->
          check_bool "orbit partition matches closure"
            (same_orbit u v)
            (f.Canon.orbits.(u) = f.Canon.orbits.(v)));
      (* orbit–stabilizer: |orbit(v)| * |Stab(v)| = |Aut| for every vertex *)
      for v = 0 to n - 1 do
        let orbit_size =
          let c = ref 0 in
          Array.iter (fun r -> if r = f.Canon.orbits.(v) then incr c) f.Canon.orbits;
          !c
        in
        let stab_size = List.length (List.filter (fun p -> p.(v) = v) closure) in
        check_int "orbit-stabilizer identity"
          (List.length closure) (orbit_size * stab_size)
      done)
    (full_fixtures ())

let test_orbits_of_generators_basic () =
  (* one 3-cycle and a fixed point *)
  let orbits = Canon.orbits_of_generators 4 [ [| 1; 2; 0; 3 |] ] in
  check_bool "0~1" true (orbits.(0) = orbits.(1));
  check_bool "1~2" true (orbits.(1) = orbits.(2));
  check_bool "3 fixed" false (orbits.(3) = orbits.(0));
  let trivial = Canon.orbits_of_generators 3 [] in
  check_int "no generators: all singletons" 3
    (List.length (List.sort_uniq compare (Array.to_list trivial)))

(* ---------------- Symmetry: edge orbits for the quotient ---------------- *)

(* orbit sizes as a sorted list, independent of which pair represents each
   orbit *)
let orbit_sizes (eo : Symmetry.edge_orbits) =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun r -> Hashtbl.replace tbl r (1 + Option.value ~default:0 (Hashtbl.find_opt tbl r)))
    eo.Symmetry.orbit_of_pair;
  List.sort compare (Hashtbl.fold (fun _ s acc -> s :: acc) tbl [])

let test_edge_orbits_complete () =
  (* K_n: every pair is an edge and Aut = S_n acts transitively on pairs —
     one orbit, found by both detection tiers *)
  List.iter
    (fun n ->
      let g = complete n in
      List.iter
        (fun sym ->
          let eo = Symmetry.edge_orbits sym in
          check_int "K_n: one orbit" 1 (Array.length eo.Symmetry.reps);
          check (Alcotest.list Alcotest.int) "K_n: orbit covers all pairs"
            [ n * (n - 1) / 2 ] (orbit_sizes eo))
        [ Symmetry.detect_full g; Symmetry.detect_twins g ])
    [ 4; 5; 6; 7 ]

let test_edge_orbits_cycle () =
  (* C_n under the dihedral group: pairs are classified by their cycle
     distance 1..⌊n/2⌋ *)
  List.iter
    (fun n ->
      let eo = Symmetry.edge_orbits (Symmetry.detect_full (cycle n)) in
      check_int "C_n: floor(n/2) orbits" (n / 2) (Array.length eo.Symmetry.reps))
    [ 4; 5; 6; 7; 8 ]

let test_edge_orbits_petersen () =
  (* edge-transitive and co-edge-transitive: the 15 edges form one orbit and
     the 30 non-edges the other *)
  let sym = Symmetry.detect_full petersen in
  let eo = Symmetry.edge_orbits sym in
  check_int "petersen: two orbits" 2 (Array.length eo.Symmetry.reps);
  check (Alcotest.list Alcotest.int) "petersen: orbit sizes" [ 15; 30 ] (orbit_sizes eo);
  (* the size-15 orbit is the edge orbit *)
  Array.iter
    (fun r ->
      let size = Array.fold_left (fun acc o -> if o = r then acc + 1 else acc) 0
          eo.Symmetry.orbit_of_pair in
      let j = ref 1 in
      while (!j * (!j - 1)) / 2 + !j <= r do incr j done;
      let i = r - (!j * (!j - 1)) / 2 in
      check_bool "size 15 iff edge" (size = 15) (Graph.has_edge petersen i !j))
    eo.Symmetry.reps

let test_edge_orbits_hypercube () =
  (* Q_3: pairs split by Hamming distance — 12 edges, 12 face diagonals,
     4 antipodal pairs *)
  let q3 = Nf_named.Families.hypercube 3 in
  let eo = Symmetry.edge_orbits (Symmetry.detect_full q3) in
  check_int "Q3: three orbits" 3 (Array.length eo.Symmetry.reps);
  check (Alcotest.list Alcotest.int) "Q3: orbit sizes" [ 4; 12; 12 ] (orbit_sizes eo)

let test_edge_orbits_rigid () =
  (* asymmetric spider: trivial group, every pair its own orbit — the rigid
     fast path's precondition *)
  let spider = Graph.of_edges 7 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (2, 6) ] in
  List.iter
    (fun sym ->
      check_bool "spider: trivial subgroup" true (Symmetry.is_trivial sym);
      let eo = Symmetry.edge_orbits sym in
      check_int "spider: all pairs are reps" 21 (Array.length eo.Symmetry.reps);
      Array.iteri
        (fun t r -> check_int "spider: orbit_of_pair is the identity" t r)
        eo.Symmetry.orbit_of_pair)
    [ Symmetry.detect_full spider; Symmetry.detect_twins spider ]

let test_twin_partition_star () =
  (* star 5: the four leaves are twins; classes/second drive the O(1)
     representative test used by the class scans *)
  let sym = Symmetry.detect_twins (star 5) in
  (match Symmetry.twin_partition sym with
  | None -> Alcotest.fail "star: twin witness expected"
  | Some (classes, second) ->
    check (Alcotest.array Alcotest.int) "star: leaf class" [| 0; 1; 1; 1; 1 |] classes;
    check_int "star: second leaf" 2 second.(1));
  let eo = Symmetry.edge_orbits sym in
  check (Alcotest.list Alcotest.int) "star: spokes and leaf pairs" [ 4; 6 ] (orbit_sizes eo);
  (* the twin subgroup here is the full group: same partition *)
  check (Alcotest.list Alcotest.int) "star: twins match full group" [ 4; 6 ]
    (orbit_sizes (Symmetry.edge_orbits (Symmetry.detect_full (star 5))))

let test_symmetry_self_check_gallery () =
  (* orbit-stabilizer armor on the named gallery (plus twin-rich families),
     for both detection tiers, against the independent backtracking counter *)
  let fixtures =
    List.filter (fun (_, g) -> Graph.order g <= 30) Nf_named.Gallery.all
    @ [
        ("k6", complete 6);
        ("k34", Nf_named.Families.complete_bipartite 3 4);
        ("wheel6", Nf_named.Families.wheel 6);
        ("star7", star 7);
      ]
  in
  List.iter
    (fun (name, g) ->
      Symmetry.self_check g (Symmetry.detect_full g);
      Symmetry.self_check g (Symmetry.detect_twins g);
      check_bool (name ^ ": checked") true true)
    fixtures

let test_generators_match_twin_witness () =
  (* materialized star transpositions must generate exactly the witnessed
     product of class-symmetric groups: closure order = ∏ |class|! *)
  let fixtures = [ star 6; complete 5; Nf_named.Families.complete_bipartite 2 3 ] in
  List.iter
    (fun g ->
      let sym = Symmetry.detect_twins g in
      match Symmetry.twin_partition sym with
      | None -> Alcotest.fail "twin witness expected"
      | Some (classes, _) ->
        let n = Graph.order g in
        let fact k = let r = ref 1 in for i = 2 to k do r := !r * i done; !r in
        let expected = ref 1 in
        for c = 0 to n - 1 do
          let size = Array.fold_left (fun acc x -> if x = c then acc + 1 else acc) 0 classes in
          if size > 0 then expected := !expected * fact size
        done;
        check_int "closure order = product of class factorials" !expected
          (List.length (group_closure n (Symmetry.generators sym))))
    fixtures

let prop_twin_orbits_refine_full =
  (* soundness of the cheap tier on random graphs: every twin-orbit lies
     inside one full-group orbit, and self_check holds *)
  QCheck.Test.make ~name:"twin orbits refine full orbits" ~count:120
    (QCheck.make
       ~print:(fun (s, n, p) -> Printf.sprintf "seed=%d n=%d p=%.2f" s n p)
       QCheck.Gen.(triple (int_bound 100000) (int_range 2 9) (float_range 0.0 1.0)))
    (fun (seed, n, p) ->
      let rng = Prng.create seed in
      let g = Random_graph.gnp rng n p in
      let twins = Symmetry.detect_twins g in
      let full = Symmetry.detect_full g in
      Symmetry.self_check g twins;
      Symmetry.self_check g full;
      let et = (Symmetry.edge_orbits twins).Symmetry.orbit_of_pair in
      let ef = (Symmetry.edge_orbits full).Symmetry.orbit_of_pair in
      let ok = ref true in
      Array.iteri (fun t r -> if ef.(t) <> ef.(r) then ok := false) et;
      !ok)

(* ---------------- AHU ---------------- *)

let test_centers () =
  check (Alcotest.list Alcotest.int) "path 5 center" [ 2 ] (Ahu.centers (path 5));
  check (Alcotest.list Alcotest.int) "path 4 centers" [ 1; 2 ] (Ahu.centers (path 4));
  check (Alcotest.list Alcotest.int) "star center" [ 0 ] (Ahu.centers (star 7));
  check (Alcotest.list Alcotest.int) "single" [ 0 ] (Ahu.centers (Graph.empty 1));
  check (Alcotest.list Alcotest.int) "k2" [ 0; 1 ] (Ahu.centers (complete 2))

let test_ahu_iso_trees () =
  let rng = Prng.create 13 in
  for _ = 1 to 100 do
    let t = Random_graph.tree rng (2 + Prng.int rng 12) in
    let t' = random_relabel rng t in
    check_bool "relabel same encoding" true (Ahu.equal_trees t t')
  done

let test_ahu_distinguishes () =
  (* two non-isomorphic trees on 5 vertices: path vs star vs chair *)
  let chair = Graph.of_edges 5 [ (0, 1); (1, 2); (2, 3); (2, 4) ] in
  check_bool "path vs star" false (Ahu.equal_trees (path 5) (star 5));
  check_bool "path vs chair" false (Ahu.equal_trees (path 5) chair);
  check_bool "star vs chair" false (Ahu.equal_trees (star 5) chair)

let test_ahu_agrees_with_canon () =
  let rng = Prng.create 21 in
  for _ = 1 to 100 do
    let t1 = Random_graph.tree rng (2 + Prng.int rng 9) in
    let t2 = Random_graph.tree rng (Graph.order t1) in
    check_bool "ahu agrees with canon"
      (Canon.is_isomorphic t1 t2) (Ahu.equal_trees t1 t2)
  done

let test_ahu_rejects_non_tree () =
  Alcotest.check_raises "cycle rejected" (Invalid_argument "Ahu.encode: not a tree")
    (fun () -> ignore (Ahu.encode (cycle 4)))

(* property: canonical form invariant under random relabeling *)

let prop_canonical_invariant =
  QCheck.Test.make ~name:"canonical form relabel-invariant" ~count:150
    (QCheck.make
       ~print:(fun (s, n, p) -> Printf.sprintf "seed=%d n=%d p=%.2f" s n p)
       QCheck.Gen.(triple (int_bound 100000) (int_range 1 9) (float_range 0.0 1.0)))
    (fun (seed, n, p) ->
      let rng = Prng.create seed in
      let g = Random_graph.gnp rng n p in
      let h = random_relabel rng g in
      Graph.equal (Canon.canonical_form g) (Canon.canonical_form h))

let prop_canonical_is_isomorphic =
  QCheck.Test.make ~name:"canonical form is isomorphic to input" ~count:150
    (QCheck.make
       ~print:(fun (s, n, p) -> Printf.sprintf "seed=%d n=%d p=%.2f" s n p)
       QCheck.Gen.(triple (int_bound 100000) (int_range 1 9) (float_range 0.0 1.0)))
    (fun (seed, n, p) ->
      let rng = Prng.create seed in
      let g = Random_graph.gnp rng n p in
      let c = Canon.canonical_form g in
      Graph.order c = Graph.order g
      && Graph.size c = Graph.size g
      && Canon.is_isomorphic c g)

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "nf_iso"
    [
      ( "refine",
        [
          Alcotest.test_case "degree partition" `Quick test_degree_partition;
          Alcotest.test_case "refine path" `Quick test_refine_path;
          Alcotest.test_case "regular no split" `Quick test_refine_regular_no_split;
          Alcotest.test_case "individualize" `Quick test_individualize;
        ] );
      ( "canon",
        [
          Alcotest.test_case "invariance" `Quick test_canonical_invariance;
          Alcotest.test_case "distinguishes" `Quick test_non_isomorphic_distinguished;
          Alcotest.test_case "witness" `Quick test_isomorphism_witness;
          Alcotest.test_case "no witness" `Quick test_isomorphism_none;
          Alcotest.test_case "automorphism counts" `Quick test_automorphism_counts;
          Alcotest.test_case "complete graph fast" `Quick test_canonical_complete_fast;
          Alcotest.test_case "key consistency" `Quick test_canonical_key_matches_form;
        ] );
      ( "canon-full",
        [
          Alcotest.test_case "matches canonical" `Quick test_full_matches_canonical;
          Alcotest.test_case "generators sound" `Quick test_full_generators_are_automorphisms;
          Alcotest.test_case "generators complete" `Quick test_full_generators_complete;
          Alcotest.test_case "orbits basic" `Quick test_orbits_of_generators_basic;
        ] );
      ( "symmetry",
        [
          Alcotest.test_case "complete" `Quick test_edge_orbits_complete;
          Alcotest.test_case "cycle" `Quick test_edge_orbits_cycle;
          Alcotest.test_case "petersen" `Quick test_edge_orbits_petersen;
          Alcotest.test_case "hypercube" `Quick test_edge_orbits_hypercube;
          Alcotest.test_case "rigid" `Quick test_edge_orbits_rigid;
          Alcotest.test_case "twin partition" `Quick test_twin_partition_star;
          Alcotest.test_case "self-check gallery" `Quick test_symmetry_self_check_gallery;
          Alcotest.test_case "twin generators" `Quick test_generators_match_twin_witness;
        ] );
      ( "ahu",
        [
          Alcotest.test_case "centers" `Quick test_centers;
          Alcotest.test_case "relabel invariance" `Quick test_ahu_iso_trees;
          Alcotest.test_case "distinguishes" `Quick test_ahu_distinguishes;
          Alcotest.test_case "agrees with canon" `Quick test_ahu_agrees_with_canon;
          Alcotest.test_case "rejects non-tree" `Quick test_ahu_rejects_non_tree;
        ] );
      ( "properties",
        [
          qcheck prop_canonical_invariant;
          qcheck prop_canonical_is_isomorphic;
          qcheck prop_twin_orbits_refine_full;
        ] );
    ]
