(* Tests for nf_graph: graph kernel, BFS/APSP, connectivity, girth,
   structural predicates, graph6, Prüfer, random models. *)

open Nf_graph
module Bitset = Nf_util.Bitset
module Ext_int = Nf_util.Ext_int
module Prng = Nf_util.Prng

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let ext = Alcotest.testable Ext_int.pp Ext_int.equal
let graph = Alcotest.testable Graph.pp Graph.equal

(* small fixtures *)
let path n = Graph.of_edges n (List.init (n - 1) (fun i -> (i, i + 1)))
let cycle n = Graph.add_edge (path n) 0 (n - 1)
let star n = Graph.of_edges n (List.init (n - 1) (fun i -> (0, i + 1)))

let complete n =
  let g = ref (Graph.empty n) in
  Nf_util.Subset.iter_pairs n (fun i j -> g := Graph.add_edge !g i j);
  !g

let petersen =
  Graph.of_edges 10
    [
      (0, 1); (1, 2); (2, 3); (3, 4); (4, 0);
      (5, 7); (7, 9); (9, 6); (6, 8); (8, 5);
      (0, 5); (1, 6); (2, 7); (3, 8); (4, 9);
    ]

(* ---------------- Graph kernel ---------------- *)

let test_empty () =
  let g = Graph.empty 5 in
  check_int "order" 5 (Graph.order g);
  check_int "size" 0 (Graph.size g);
  check_bool "no edge" false (Graph.has_edge g 0 1);
  check_bool "is empty graph" true (Graph.is_empty_graph g)

let test_add_remove () =
  let g = Graph.add_edge (Graph.empty 4) 1 3 in
  check_bool "edge present" true (Graph.has_edge g 1 3);
  check_bool "symmetric" true (Graph.has_edge g 3 1);
  check_int "size" 1 (Graph.size g);
  let g2 = Graph.add_edge g 1 3 in
  check_int "idempotent add" 1 (Graph.size g2);
  let g3 = Graph.remove_edge g2 3 1 in
  check_int "removed" 0 (Graph.size g3);
  (* persistence: the original is untouched *)
  check_int "persistent" 1 (Graph.size g2);
  Alcotest.check_raises "loop rejected" (Invalid_argument "Graph.add_edge: loop")
    (fun () -> ignore (Graph.add_edge g 2 2))

let test_toggle () =
  let g = Graph.empty 3 in
  let g1 = Graph.toggle_edge g 0 1 in
  check_bool "toggled on" true (Graph.has_edge g1 0 1);
  let g2 = Graph.toggle_edge g1 0 1 in
  check_bool "toggled off" false (Graph.has_edge g2 0 1)

let test_edges_listing () =
  let g = Graph.of_edges 4 [ (2, 1); (0, 3); (0, 1) ] in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "sorted i<j edges"
    [ (0, 1); (0, 3); (1, 2) ]
    (Graph.edges g);
  check_int "non-edges count" 3 (List.length (Graph.non_edges g));
  check_int "degree 0" 2 (Graph.degree g 0);
  check (Alcotest.list Alcotest.int) "neighbors" [ 1; 3 ]
    (Bitset.elements (Graph.neighbors g 0))

let test_complement () =
  let g = path 4 in
  let c = Graph.complement g in
  check_int "complement size" 3 (Graph.size c);
  check_bool "0-1 gone" false (Graph.has_edge c 0 1);
  check_bool "0-2 present" true (Graph.has_edge c 0 2);
  check graph "double complement" g (Graph.complement c)

let test_add_vertex () =
  let g = Graph.add_vertex (path 3) (Bitset.of_list [ 0; 2 ]) in
  check_int "order" 4 (Graph.order g);
  check_bool "new edges" true (Graph.has_edge g 3 0 && Graph.has_edge g 3 2);
  check_bool "old preserved" true (Graph.has_edge g 0 1 && Graph.has_edge g 1 2)

let test_relabel () =
  let g = Graph.of_edges 3 [ (0, 1) ] in
  let h = Graph.relabel g [| 2; 0; 1 |] in
  check_bool "mapped edge" true (Graph.has_edge h 2 0);
  check_int "size preserved" 1 (Graph.size h)

let test_induced () =
  let g = cycle 5 in
  let sub = Graph.induced g [ 0; 1; 2 ] in
  check_int "induced order" 3 (Graph.order sub);
  check_int "induced size" 2 (Graph.size sub)

let test_union () =
  let a = Graph.of_edges 4 [ (0, 1) ]
  and b = Graph.of_edges 4 [ (1, 2) ] in
  check_int "union size" 2 (Graph.size (Graph.union a b))

(* ---------------- BFS / APSP ---------------- *)

let test_bfs_path () =
  let g = path 5 in
  let d = Bfs.distances g 0 in
  check (Alcotest.array Alcotest.int) "path distances" [| 0; 1; 2; 3; 4 |] d;
  check ext "distance sum" (Ext_int.Fin 10) (Bfs.distance_sum g 0);
  check ext "middle sum" (Ext_int.Fin 6) (Bfs.distance_sum g 2);
  check ext "eccentricity" (Ext_int.Fin 4) (Bfs.eccentricity g 0)

let test_bfs_disconnected () =
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  check ext "inf sum" Ext_int.Inf (Bfs.distance_sum g 0);
  check ext "inf distance" Ext_int.Inf (Bfs.distance g 0 2);
  check (Alcotest.list Alcotest.int) "reachable" [ 0; 1 ]
    (Bitset.elements (Bfs.reachable g 0))

let test_apsp_petersen () =
  (* The Petersen graph: diameter 2, girth 5, 3-regular, distance sum per
     vertex = 3*1 + 6*2 = 15. *)
  check ext "diameter" (Ext_int.Fin 2) (Apsp.diameter petersen);
  check ext "radius" (Ext_int.Fin 2) (Apsp.radius petersen);
  check ext "wiener" (Ext_int.Fin 150) (Apsp.wiener petersen);
  check ext "girth" (Ext_int.Fin 5) (Girth.girth petersen)

let test_apsp_star () =
  let g = star 6 in
  check ext "diameter" (Ext_int.Fin 2) (Apsp.diameter g);
  check ext "radius" (Ext_int.Fin 1) (Apsp.radius g);
  (* star on n: 2(n-1) center pairs at 1 + (n-1)(n-2) leaf pairs at 2 *)
  check ext "wiener" (Ext_int.Fin (10 + 40)) (Apsp.wiener g)

let test_average_distance () =
  check (Alcotest.float 1e-9) "complete avg" 1.0 (Apsp.average_distance (complete 5));
  check_bool "disconnected avg" true
    (Apsp.average_distance (Graph.of_edges 3 [ (0, 1) ]) = infinity)

(* ---------------- Connectivity ---------------- *)

let test_connected () =
  check_bool "path connected" true (Connectivity.is_connected (path 6));
  check_bool "empty graph on 3" false (Connectivity.is_connected (Graph.empty 3));
  check_bool "order zero" true (Connectivity.is_connected (Graph.empty 0));
  check_bool "single vertex" true (Connectivity.is_connected (Graph.empty 1))

let test_components () =
  let g = Graph.of_edges 6 [ (0, 1); (1, 2); (4, 5) ] in
  let comps = Connectivity.components g in
  check_int "three components" 3 (List.length comps);
  check_int "count" 3 (Connectivity.component_count g)

let test_bridges () =
  let g = Graph.of_edges 5 [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4) ] in
  check_bool "tree edge is bridge" true (Connectivity.is_bridge g 2 3);
  check_bool "cycle edge is not" false (Connectivity.is_bridge g 0 1);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "bridges" [ (2, 3); (3, 4) ] (Connectivity.bridges g);
  check_bool "every cycle edge non-bridge" true
    (Connectivity.bridges (cycle 5) = [])

let test_cut_vertex () =
  let g = Graph.of_edges 5 [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4) ] in
  check_bool "cut vertex" true (Connectivity.is_cut_vertex g 2);
  check_bool "not cut" false (Connectivity.is_cut_vertex g 0);
  check_bool "star center cut" true (Connectivity.is_cut_vertex (star 5) 0)

(* ---------------- Girth ---------------- *)

let test_girth_cases () =
  check ext "triangle" (Ext_int.Fin 3) (Girth.girth (complete 4));
  check ext "c5" (Ext_int.Fin 5) (Girth.girth (cycle 5));
  check ext "tree inf" Ext_int.Inf (Girth.girth (star 7));
  check_bool "tree acyclic" true (Girth.is_acyclic (path 5));
  (* C4 with a chord has girth 3 *)
  let chord = Graph.add_edge (cycle 4) 0 2 in
  check ext "chorded c4" (Ext_int.Fin 3) (Girth.girth chord);
  (* two disjoint cycles: girth is the smaller *)
  let two = Graph.of_edges 9 [ (0,1);(1,2);(2,0); (3,4);(4,5);(5,6);(6,7);(7,8);(8,3) ] in
  check ext "min across components" (Ext_int.Fin 3) (Girth.girth two)

(* ---------------- Props ---------------- *)

let test_degree_sequence () =
  check (Alcotest.list Alcotest.int) "star degrees" [ 4; 1; 1; 1; 1 ]
    (Props.degree_sequence (star 5));
  check_int "max" 4 (Props.max_degree (star 5));
  check_int "min" 1 (Props.min_degree (star 5))

let test_regularity () =
  check (Alcotest.option Alcotest.int) "cycle 2-regular" (Some 2) (Props.regularity (cycle 6));
  check (Alcotest.option Alcotest.int) "star irregular" None (Props.regularity (star 5));
  check (Alcotest.option Alcotest.int) "petersen cubic" (Some 3) (Props.regularity petersen)

let test_shape_predicates () =
  check_bool "path is tree" true (Props.is_tree (path 6));
  check_bool "cycle not tree" false (Props.is_tree (cycle 6));
  check_bool "star is star" true (Props.is_star (star 8));
  check_bool "path not star" false (Props.is_star (path 5));
  check_bool "k2 is star" true (Props.is_star (complete 2));
  check_bool "cycle is cycle" true (Props.is_cycle (cycle 7));
  check_bool "path is path" true (Props.is_path (path 7));
  check_bool "cycle not path" false (Props.is_path (cycle 7));
  check_bool "forest" true (Props.is_forest (Graph.of_edges 5 [ (0, 1); (2, 3) ]));
  check_bool "bipartite c6" true (Props.is_bipartite (cycle 6));
  check_bool "not bipartite c5" false (Props.is_bipartite (cycle 5));
  check_bool "diameter at most" true (Props.has_diameter_at_most petersen 2);
  check_bool "diameter not within 1" false (Props.has_diameter_at_most petersen 1)

let test_strongly_regular () =
  (* Petersen is srg(10,3,0,1) *)
  check
    (Alcotest.option (Alcotest.pair (Alcotest.pair Alcotest.int Alcotest.int)
                        (Alcotest.pair Alcotest.int Alcotest.int)))
    "petersen srg"
    (Some ((10, 3), (0, 1)))
    (Option.map (fun (a, b, c, d) -> ((a, b), (c, d))) (Props.strongly_regular_params petersen));
  check_bool "c5 srg(5,2,0,1)" true
    (Props.strongly_regular_params (cycle 5) = Some (5, 2, 0, 1));
  check_bool "c6 not srg" false (Props.is_strongly_regular (cycle 6));
  check_bool "complete excluded" false (Props.is_strongly_regular (complete 5));
  check_bool "path not srg" false (Props.is_strongly_regular (path 4))

(* ---------------- Graph6 ---------------- *)

let test_graph6_known () =
  (* Known encodings from the format spec / nauty docs. *)
  check Alcotest.string "K4 encodes" "C~" (Graph6.encode (complete 4));
  check graph "K4 round trip" (complete 4) (Graph6.decode "C~");
  check Alcotest.string "empty5" "D??" (Graph6.encode (Graph.empty 5))

let test_graph6_roundtrip_random () =
  let rng = Prng.create 99 in
  for _ = 1 to 200 do
    let n = 1 + Prng.int rng 14 in
    let g = Random_graph.gnp rng n 0.4 in
    check graph "roundtrip" g (Graph6.decode (Graph6.encode g))
  done

let test_graph6_rejects_malformed () =
  let rejects what s =
    check_bool what true
      (match Graph6.decode s with exception Invalid_argument _ -> true | _ -> false)
  in
  rejects "empty string" "";
  rejects "order byte below range" "\x3e";
  rejects "truncated body" "C";
  rejects "overlong body" "C~~";
  rejects "body byte below 63" "C\x20";
  rejects "body byte above 126" "C\x7f";
  (* n=5 has 10 adjacency bits in 2 bytes, so the last 2 bits are padding;
     '@' = 64 puts a 1 in them *)
  rejects "nonzero padding bits" "D?@"

(* ---------------- multi-word orders (n > 62) ---------------- *)

let test_large_graph_ops () =
  let n = 130 in
  let g =
    Graph.build n (fun add ->
        for i = 0 to n - 2 do
          add i (i + 1)
        done;
        add 0 (n - 1);
        add 0 100)
  in
  check_int "order" n (Graph.order g);
  check_int "words" 3 (Graph.words g);
  check_int "size" (n + 1) (Graph.size g);
  check_bool "edge across words" true (Graph.has_edge g 0 100);
  check_bool "edge 0-(n-1)" true (Graph.has_edge g 0 (n - 1));
  check_int "degree 0" 3 (Graph.degree g 0);
  let g' = Graph.remove_edge g 0 100 in
  check_int "remove across words" n (Graph.size g');
  check_bool "removed" false (Graph.has_edge g' 0 100);
  (* iter_neighbors ascending, matching degree *)
  let nbrs = ref [] in
  Graph.iter_neighbors g 0 (fun v -> nbrs := v :: !nbrs);
  check (Alcotest.list Alcotest.int) "neighbors of 0" [ 1; 100; n - 1 ] (List.rev !nbrs);
  (* relabel / induced survive word boundaries *)
  let rev = Array.init n (fun v -> n - 1 - v) in
  let rg = Graph.relabel g rev in
  check_bool "relabel keeps edges" true (Graph.has_edge rg (n - 1) (n - 2));
  check_int "relabel keeps size" (Graph.size g) (Graph.size rg);
  let sub = Graph.induced g (List.init 70 Fun.id) in
  check_int "induced order" 70 (Graph.order sub);
  check_int "induced size" 69 (Graph.size sub);
  (* complement: size C(n,2) - m, no self loops *)
  let comp = Graph.complement g in
  check_int "complement size" ((n * (n - 1) / 2) - Graph.size g) (Graph.size comp);
  check_bool "complement flips" true (Graph.has_edge comp 0 50);
  check_bool "no self loop" false (Graph.has_edge comp 5 5);
  (* connectivity + BFS at large order *)
  check_bool "cycle connected" true (Connectivity.is_connected g);
  check ext "apsp diameter finite" (Apsp.diameter g) (Apsp.diameter g);
  let dist = Bfs.distances g 0 in
  check_int "wraparound distance" 1 dist.(n - 1)

let test_twin_rows_equal_large () =
  (* a 70-vertex star: all leaves are twins, hub is not *)
  let g = Graph.of_edges 70 (List.init 69 (fun i -> (0, i + 1))) in
  check_bool "leaves 1,2 twins" true (Graph.twin_rows_equal g 1 2);
  check_bool "leaves across words" true (Graph.twin_rows_equal g 1 69);
  check_bool "hub vs leaf" false (Graph.twin_rows_equal g 0 1);
  (* adjacent twins: a 64-clique's vertices are twins modulo the pair *)
  let k = 64 in
  let clique =
    Graph.build k (fun add -> Nf_util.Subset.iter_pairs k (fun i j -> add i j))
  in
  check_bool "clique adjacent twins" true (Graph.twin_rows_equal clique 62 63);
  let broken = Graph.remove_edge clique 0 63 in
  check_bool "broken twin" false (Graph.twin_rows_equal broken 62 63)

let test_graph6_multibyte () =
  check_int "max_order" 258047 Graph6.max_order;
  (* 63 is the first 4-byte-header order; its empty encoding is '~' + the
     18-bit big-endian order + body *)
  let e63 = Graph6.encode (Graph.empty 63) in
  check_bool "header starts with ~" true (e63.[0] = '~');
  check graph "empty 63 roundtrip" (Graph.empty 63) (Graph6.decode e63);
  let rng = Prng.create 0x67366d77 in
  List.iter
    (fun n ->
      let g = Random_graph.gnp rng n (3.0 /. float_of_int n) in
      check graph "multibyte roundtrip" g (Graph6.decode (Graph6.encode g)))
    [ 63; 64; 65; 100; 129 ];
  (* a non-canonical multi-byte header for a small order must not decode *)
  let small = Graph6.encode (Graph.empty 5) in
  let forged =
    "~" ^ String.init 3 (fun i -> Char.chr (63 + (if i = 2 then 5 else 0)))
    ^ String.sub small 1 (String.length small - 1)
  in
  check_bool "non-canonical multibyte header rejected" true
    (match Graph6.decode forged with exception Invalid_argument _ -> true | _ -> false);
  (* '~~' (6-byte header form) is beyond max_order: rejected *)
  check_bool "6-byte header rejected" true
    (match Graph6.decode "~~??????" with exception Invalid_argument _ -> true | _ -> false)

let test_large_order_error_messages () =
  Alcotest.check_raises "add_vertex past one word"
    (Invalid_argument "Graph.add_vertex: resulting order 63 > 62 (augmentation is \
                       one-word only)")
    (fun () -> ignore (Graph.add_vertex (Graph.empty 62) Bitset.empty));
  Alcotest.check_raises "components past one word"
    (Invalid_argument
       "Connectivity.components: order 63 > 62 (one-word bitset components)")
    (fun () -> ignore (Connectivity.components (Graph.empty 63)));
  (* constructing an order > max_order graph means an ~8.6 GB slab, so the
     encode-side ceiling is pinned by value here and exercised via the
     decode-side '~~' rejection in [test_graph6_multibyte] *)
  check_int "graph6 max order" 258047 Graph6.max_order

let prop_large_random_roundtrip =
  QCheck.Test.make ~name:"gnp at 63..200 graph6 roundtrip + degree sum" ~count:30
    QCheck.(pair (int_range 63 200) (int_bound 10000))
    (fun (n, seed) ->
      let rng = Prng.create (seed + n) in
      let g = Random_graph.gnp rng n (2.0 /. float_of_int n) in
      let degree_sum = ref 0 in
      for v = 0 to n - 1 do
        degree_sum := !degree_sum + Graph.degree g v
      done;
      !degree_sum = 2 * Graph.size g && Graph.equal g (Graph6.decode (Graph6.encode g)))

(* ---------------- Prüfer ---------------- *)

let test_prufer_known () =
  (* code [3;3;3;4] on 6 vertices: star-ish tree *)
  let t = Trees_prufer.decode 6 [| 3; 3; 3; 4 |] in
  check_int "tree size" 5 (Graph.size t);
  check_bool "is tree" true (Props.is_tree t);
  check (Alcotest.array Alcotest.int) "re-encode" [| 3; 3; 3; 4 |] (Trees_prufer.encode t)

let test_prufer_roundtrip () =
  let rng = Prng.create 5 in
  for _ = 1 to 300 do
    let n = 3 + Prng.int rng 12 in
    let code = Array.init (n - 2) (fun _ -> Prng.int rng n) in
    let t = Trees_prufer.decode n code in
    check_bool "decodes to tree" true (Props.is_tree t);
    check (Alcotest.array Alcotest.int) "roundtrip" code (Trees_prufer.encode t)
  done

(* ---------------- Random graphs ---------------- *)

let test_random_models () =
  let rng = Prng.create 2024 in
  let g = Random_graph.gnm rng 10 15 in
  check_int "gnm edge count" 15 (Graph.size g);
  let t = Random_graph.tree rng 12 in
  check_bool "random tree is tree" true (Props.is_tree t);
  let c = Random_graph.connected_gnp rng 9 0.15 in
  check_bool "connected_gnp connected" true (Connectivity.is_connected c);
  let p0 = Random_graph.gnp rng 8 0.0 in
  check_int "p=0 empty" 0 (Graph.size p0);
  let p1 = Random_graph.gnp rng 8 1.1 in
  check_int "p>=1 complete" 28 (Graph.size p1)

(* ---------------- Pp ---------------- *)

let contains ~needle haystack =
  let nl = String.length needle
  and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_pp_outputs () =
  let dot = Pp.to_dot (path 3) in
  check_bool "dot has edge" true (contains ~needle:"0 -- 1" dot)

let test_summary () =
  let s = Pp.summary petersen in
  check_bool "mentions srg" true (contains ~needle:"srg(10,3,0,1)" s)

(* property tests *)

let graph_arbitrary =
  QCheck.make
    ~print:(fun (seed, n, p) -> Printf.sprintf "seed=%d n=%d p=%.2f" seed n p)
    QCheck.Gen.(triple (int_bound 100000) (int_range 1 12) (float_range 0.0 1.0))

let graph_of (seed, n, p) = Random_graph.gnp (Prng.create seed) n p

let prop_distance_symmetric =
  QCheck.Test.make ~name:"distances symmetric" ~count:200 graph_arbitrary (fun params ->
      let g = graph_of params in
      let n = Graph.order g in
      let d = Apsp.all_distances g in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if d.(i).(j) <> d.(j).(i) then ok := false
        done
      done;
      !ok)

let prop_triangle_inequality =
  QCheck.Test.make ~name:"triangle inequality" ~count:200 graph_arbitrary (fun params ->
      let g = graph_of params in
      let n = Graph.order g in
      let d = Apsp.all_distances g in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          for k = 0 to n - 1 do
            if d.(i).(j) >= 0 && d.(j).(k) >= 0 && d.(i).(k) >= 0 then
              if d.(i).(k) > d.(i).(j) + d.(j).(k) then ok := false
          done
        done
      done;
      !ok)

let prop_handshake =
  QCheck.Test.make ~name:"degree sum = 2m" ~count:300 graph_arbitrary (fun params ->
      let g = graph_of params in
      let total = List.fold_left ( + ) 0 (Props.degree_sequence g) in
      total = 2 * Graph.size g)

let prop_graph6_roundtrip =
  QCheck.Test.make ~name:"graph6 roundtrip" ~count:300 graph_arbitrary (fun params ->
      let g = graph_of params in
      Graph.equal g (Graph6.decode (Graph6.encode g)))

let prop_graph6_strict_inverse =
  (* decode accepts exactly encode's image: an arbitrary byte string
     either fails to decode or re-encodes to itself *)
  QCheck.Test.make ~name:"graph6 decode is a strict inverse" ~count:500
    QCheck.(string_of_size Gen.(int_range 0 12))
    (fun s ->
      match Graph6.decode s with
      | exception Invalid_argument _ -> true
      | g -> Graph6.encode g = s)

let prop_graph6_truncations_rejected =
  QCheck.Test.make ~name:"graph6 truncations rejected" ~count:300 graph_arbitrary
    (fun params ->
      let s = Graph6.encode (graph_of params) in
      List.for_all
        (fun cut ->
          match Graph6.decode (String.sub s 0 cut) with
          | exception Invalid_argument _ -> true
          | _ -> false)
        (List.init (String.length s) Fun.id))

let prop_graph6_out_of_range_byte_rejected =
  QCheck.Test.make ~name:"graph6 unprintable corruption rejected" ~count:300
    QCheck.(pair graph_arbitrary (pair small_nat (Gen.int_range 0 62 |> make)))
    (fun (params, (pos, bad)) ->
      let s = Graph6.encode (graph_of params) in
      String.length s < 2
      ||
      let pos = 1 + (pos mod (String.length s - 1)) in
      let b = Bytes.of_string s in
      (* every byte value outside 63..126 must be rejected, wherever it lands *)
      Bytes.set b pos (Char.chr bad);
      match Graph6.decode (Bytes.to_string b) with
      | exception Invalid_argument _ -> true
      | _ -> false)

let prop_bridges_are_acyclic_edges =
  QCheck.Test.make ~name:"bridge iff not on a cycle" ~count:150 graph_arbitrary
    (fun params ->
      let g = graph_of params in
      List.for_all
        (fun (i, j) ->
          (* an edge is a bridge iff no cycle contains it, i.e. removing it
             kills all i-j paths *)
          let is_bridge = Connectivity.is_bridge g i j in
          let on_cycle =
            Nf_util.Bitset.mem j (Bfs.reachable (Graph.remove_edge g i j) i)
          in
          is_bridge = not on_cycle)
        (Graph.edges g))

let prop_eccentricity_bounds =
  QCheck.Test.make ~name:"radius <= eccentricity <= diameter" ~count:150 graph_arbitrary
    (fun params ->
      let g = graph_of params in
      let diameter = Apsp.diameter g
      and radius = Apsp.radius g in
      List.for_all
        (fun v ->
          let e = Bfs.eccentricity g v in
          Ext_int.(radius <= e) && Ext_int.(e <= diameter))
        (List.init (Graph.order g) Fun.id))

let prop_complement_involution =
  QCheck.Test.make ~name:"complement involution" ~count:300 graph_arbitrary
    (fun params ->
      let g = graph_of params in
      Graph.equal g (Graph.complement (Graph.complement g)))

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "nf_graph"
    [
      ( "kernel",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "add/remove" `Quick test_add_remove;
          Alcotest.test_case "toggle" `Quick test_toggle;
          Alcotest.test_case "edge listing" `Quick test_edges_listing;
          Alcotest.test_case "complement" `Quick test_complement;
          Alcotest.test_case "add_vertex" `Quick test_add_vertex;
          Alcotest.test_case "relabel" `Quick test_relabel;
          Alcotest.test_case "induced" `Quick test_induced;
          Alcotest.test_case "union" `Quick test_union;
        ] );
      ( "bfs/apsp",
        [
          Alcotest.test_case "path distances" `Quick test_bfs_path;
          Alcotest.test_case "disconnected" `Quick test_bfs_disconnected;
          Alcotest.test_case "petersen metrics" `Quick test_apsp_petersen;
          Alcotest.test_case "star metrics" `Quick test_apsp_star;
          Alcotest.test_case "average distance" `Quick test_average_distance;
        ] );
      ( "connectivity",
        [
          Alcotest.test_case "connected" `Quick test_connected;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "bridges" `Quick test_bridges;
          Alcotest.test_case "cut vertices" `Quick test_cut_vertex;
        ] );
      ("girth", [ Alcotest.test_case "cases" `Quick test_girth_cases ]);
      ( "props",
        [
          Alcotest.test_case "degree sequence" `Quick test_degree_sequence;
          Alcotest.test_case "regularity" `Quick test_regularity;
          Alcotest.test_case "shapes" `Quick test_shape_predicates;
          Alcotest.test_case "strongly regular" `Quick test_strongly_regular;
        ] );
      ( "graph6",
        [
          Alcotest.test_case "known" `Quick test_graph6_known;
          Alcotest.test_case "random roundtrip" `Quick test_graph6_roundtrip_random;
          Alcotest.test_case "rejects malformed" `Quick test_graph6_rejects_malformed;
        ] );
      ( "multiword",
        [
          Alcotest.test_case "large graph ops" `Quick test_large_graph_ops;
          Alcotest.test_case "twin rows past 62" `Quick test_twin_rows_equal_large;
          Alcotest.test_case "graph6 multibyte" `Quick test_graph6_multibyte;
          Alcotest.test_case "error messages name limits" `Quick
            test_large_order_error_messages;
          QCheck_alcotest.to_alcotest prop_large_random_roundtrip;
        ] );
      ( "prufer",
        [
          Alcotest.test_case "known" `Quick test_prufer_known;
          Alcotest.test_case "roundtrip" `Quick test_prufer_roundtrip;
        ] );
      ("random", [ Alcotest.test_case "models" `Quick test_random_models ]);
      ( "pp",
        [
          Alcotest.test_case "dot" `Quick test_pp_outputs;
          Alcotest.test_case "summary" `Quick test_summary;
        ] );
      ( "properties",
        [
          qcheck prop_distance_symmetric;
          qcheck prop_triangle_inequality;
          qcheck prop_handshake;
          qcheck prop_graph6_roundtrip;
          qcheck prop_graph6_strict_inverse;
          qcheck prop_graph6_truncations_rejected;
          qcheck prop_graph6_out_of_range_byte_rejected;
          qcheck prop_bridges_are_acyclic_edges;
          qcheck prop_eccentricity_bounds;
          qcheck prop_complement_involution;
        ] );
    ]
