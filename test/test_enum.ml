(* Tests for nf_enum: labeled iteration, isomorphism-free enumeration
   against OEIS, tree enumeration, Prüfer coverage. *)

module Graph = Nf_graph.Graph
module Labeled = Nf_enum.Labeled
module Unlabeled = Nf_enum.Unlabeled
module Trees = Nf_enum.Trees
module Counts = Nf_enum.Counts
module Canon = Nf_iso.Canon

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------- Labeled ---------------- *)

let test_labeled_counts () =
  check_int "n=3 all" 8 (Labeled.count_all 3);
  check_int "n=4 all" 64 (Labeled.count_all 4);
  (* labeled connected graph counts (OEIS A001187) *)
  check_int "n=3 connected" 4 (Labeled.count_connected 3);
  check_int "n=4 connected" 38 (Labeled.count_connected 4);
  check_int "n=5 connected" 728 (Labeled.count_connected 5)

let test_labeled_mask_roundtrip () =
  for mask = 0 to 63 do
    let g = Labeled.graph_of_mask 4 mask in
    check_int "mask roundtrip" mask (Labeled.mask_of_graph g)
  done

let test_labeled_rejects_large () =
  Alcotest.check_raises "n=8 rejected"
    (Invalid_argument "Labeled.iter_all: order out of range") (fun () ->
      Labeled.iter_all 8 ignore)

(* ---------------- Unlabeled vs OEIS ---------------- *)

let test_unlabeled_counts_oeis () =
  (* n <= 7 exercises the reference enumerator, n = 8 the
     canonical-augmentation engine *)
  for n = 0 to 8 do
    check_int
      (Printf.sprintf "A000088(%d)" n)
      (Option.get (Counts.graphs n))
      (Unlabeled.count_all n);
    check_int
      (Printf.sprintf "A001349(%d)" n)
      (Option.get (Counts.connected_graphs n))
      (Unlabeled.count_connected n)
  done

let test_unlabeled_counts_n9_streaming () =
  (* the raised order ceiling: stream level 9 off the augmentation engine
     (never materialized) and check both OEIS oracles in one pass *)
  let all, connected =
    Unlabeled.fold_graphs 9
      (fun (a, c) g ->
        (a + 1, if Nf_graph.Connectivity.is_connected g then c + 1 else c))
      (0, 0)
  in
  check_int "A000088(9)" (Option.get (Counts.graphs 9)) all;
  check_int "A001349(9)" (Option.get (Counts.connected_graphs 9)) connected

(* ---------------- canonical augmentation vs reference ---------------- *)

let canonical_keys graphs = List.sort compare (List.map Canon.canonical_key graphs)

let test_augmentation_parity_reference () =
  (* the augmentation engine must produce exactly the classes of the
     reference (canonize + dedup) enumerator, level by level, through n=7 *)
  for n = 1 to 7 do
    Alcotest.(check (list string))
      (Printf.sprintf "classes at n=%d" n)
      (canonical_keys (Unlabeled.all_graphs n))
      (canonical_keys (Unlabeled.augmentation_level (Unlabeled.all_graphs (n - 1))))
  done

let test_augmentation_distinct_n8 () =
  (* exactly-once generation: beyond the count matching the oracle, no two
     representatives at n=8 may share a canonical form *)
  let keys = canonical_keys (Unlabeled.all_graphs 8) in
  check_int "pairwise distinct classes" (Option.get (Counts.graphs 8))
    (List.length (List.sort_uniq compare keys))

(* ---------------- streaming API ---------------- *)

let test_fold_matches_all_graphs () =
  List.iter
    (fun n ->
      let folded = List.rev (Unlabeled.fold_graphs n (fun acc g -> g :: acc) []) in
      check_bool
        (Printf.sprintf "fold order n=%d" n)
        true
        (List.for_all2 Graph.equal (Unlabeled.all_graphs n) folded))
    [ 0; 4; 6; 7 ]

let test_iter_connected_chunked () =
  List.iter
    (fun chunk ->
      let streamed = ref [] in
      let max_seen = ref 0 in
      Unlabeled.iter_connected_chunked ~chunk 6 (fun arr ->
          max_seen := max !max_seen (Array.length arr);
          check_bool "chunk within bound" true (Array.length arr <= chunk && Array.length arr > 0);
          Array.iter (fun g -> streamed := g :: !streamed) arr);
      let streamed = List.rev !streamed in
      let expected = Unlabeled.connected_graphs 6 in
      check_int "same count" (List.length expected) (List.length streamed);
      check_bool "same graphs in same order" true (List.for_all2 Graph.equal expected streamed))
    [ 1; 7; 100; 1000 ];
  Alcotest.check_raises "chunk=0 rejected"
    (Invalid_argument "Unlabeled.iter_connected_chunked: chunk < 1") (fun () ->
      Unlabeled.iter_connected_chunked ~chunk:0 3 ignore)

(* ---------------- sharded streaming ---------------- *)

let shard_stream ?chunk ~shard n =
  let acc = ref [] in
  Unlabeled.iter_connected_sharded ?chunk ~shard n (fun arr ->
      Array.iter (fun g -> acc := g :: !acc) arr);
  List.rev !acc

(* the partition contract: for every k, the multiset union of the k
   shard streams is exactly the unsharded connected stream, the shards
   are pairwise disjoint, and k = 1 preserves the order bit-for-bit *)
let test_shard_partition_contract () =
  for n = 3 to 7 do
    let whole = Unlabeled.connected_graphs n in
    let whole_keys = List.sort compare (List.map Graph.adjacency_key whole) in
    List.iter
      (fun k ->
        let shards = List.init k (fun j -> shard_stream ~chunk:5 ~shard:(j + 1, k) n) in
        (* exhaustive: the concatenation covers every class exactly once *)
        let union_keys =
          List.sort compare (List.concat_map (List.map Graph.adjacency_key) shards)
        in
        check_bool (Printf.sprintf "union n=%d k=%d" n k) true (union_keys = whole_keys);
        (* disjoint: no key may appear in two shards *)
        let seen = Hashtbl.create 256 in
        List.iteri
          (fun j shard ->
            List.iter
              (fun g ->
                let key = Graph.adjacency_key g in
                (match Hashtbl.find_opt seen key with
                | Some j' ->
                  Alcotest.failf "n=%d k=%d: class in shards %d and %d" n k (j' + 1) (j + 1)
                | None -> ());
                Hashtbl.add seen key j)
              shard)
          shards;
        (* concatenation preserves the unsharded stream order — the
           property store merges rest on *)
        check_bool
          (Printf.sprintf "concat order n=%d k=%d" n k)
          true
          (List.for_all2 Graph.equal whole (List.concat shards));
        (* shard_total is exact below the streaming boundary *)
        List.iteri
          (fun j shard ->
            check_int
              (Printf.sprintf "shard_total n=%d %d/%d" n (j + 1) k)
              (List.length shard)
              (Option.get (Unlabeled.shard_total ~shard:(j + 1, k) n)))
          shards)
      [ 1; 2; 3; 5 ];
    check_bool
      (Printf.sprintf "k=1 identical n=%d" n)
      true
      (List.for_all2 Graph.equal whole (shard_stream ~shard:(1, 1) n))
  done

let test_shard_guards () =
  List.iter
    (fun shard ->
      check_bool "bad shard rejected" true
        (match Unlabeled.iter_connected_sharded ~shard 4 ignore with
        | exception Invalid_argument _ -> true
        | _ -> false))
    [ (0, 2); (3, 2); (1, 0); (-1, 3) ];
  check_bool "chunk < 1 rejected" true
    (match Unlabeled.iter_connected_sharded ~chunk:0 ~shard:(1, 2) 4 ignore with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* above the streaming boundary the split runs over parent ranges; one
   n=9 pass per shard proves the contract at scale: the counts sum to
   the oracle AND the distinct canonical representatives also reach it,
   which together force disjointness and exhaustiveness *)
let test_shard_partition_n9 () =
  let k = 4 in
  let seen = Hashtbl.create (1 lsl 18) in
  let total = ref 0 in
  for i = 1 to k do
    Unlabeled.iter_connected_sharded ~chunk:4096 ~shard:(i, k) 9 (fun arr ->
        total := !total + Array.length arr;
        Array.iter (fun g -> Hashtbl.replace seen (Graph.adjacency_key g) ()) arr)
  done;
  check_int "A001349(9) as multiset" (Option.get (Counts.connected_graphs 9)) !total;
  check_int "A001349(9) as set" (Option.get (Counts.connected_graphs 9)) (Hashtbl.length seen)

(* full-scale smoke (minutes of CPU): stream all of n=10 through a
   sharded split and hit the OEIS oracle.  Opt-in via
   NETFORM_COUNTS_FULL=1; ci.sh runs it in its full leg. *)
let test_shard_count_n10_full () =
  if Sys.getenv_opt "NETFORM_COUNTS_FULL" <> Some "1" then ()
  else begin
    let k = 4 in
    let total = ref 0 in
    for i = 1 to k do
      Unlabeled.iter_connected_sharded ~chunk:8192 ~shard:(i, k) 10 (fun arr ->
          total := !total + Array.length arr)
    done;
    check_int "A001349(10)" (Option.get (Counts.connected_graphs 10)) !total
  end

let test_unlabeled_all_canonical_distinct () =
  let graphs = Unlabeled.all_graphs 6 in
  let keys = List.map Graph.adjacency_key graphs in
  check_int "pairwise distinct representatives"
    (List.length keys)
    (List.length (List.sort_uniq compare keys));
  List.iter
    (fun g ->
      check_bool "representative is canonical" true
        (Graph.equal g (Canon.canonical_form g)))
    graphs

let test_unlabeled_agrees_with_labeled () =
  (* each labeled graph on 5 vertices must be isomorphic to exactly one
     enumerated representative *)
  let reps = Unlabeled.all_graphs 5 in
  let key_set = Hashtbl.create 64 in
  List.iter (fun g -> Hashtbl.add key_set (Graph.adjacency_key g) ()) reps;
  Labeled.iter_all 5 (fun g ->
      let key = Graph.adjacency_key (Canon.canonical_form g) in
      check_bool "labeled graph covered" true (Hashtbl.mem key_set key))

(* ---------------- Trees ---------------- *)

let test_tree_counts_oeis () =
  for n = 1 to 10 do
    check_int
      (Printf.sprintf "A000055(%d)" n)
      (Option.get (Counts.trees n))
      (Trees.count_unlabeled n)
  done

let test_trees_are_trees () =
  List.iter
    (fun t -> check_bool "is tree" true (Nf_graph.Props.is_tree t))
    (Trees.unlabeled_trees 8)

let test_trees_distinct () =
  let trees = Trees.unlabeled_trees 9 in
  let keys = List.map Nf_iso.Ahu.encode trees in
  check_int "distinct encodings" (List.length keys) (List.length (List.sort_uniq compare keys))

let test_labeled_trees_cayley () =
  let count n =
    let c = ref 0 in
    Trees.iter_labeled_trees n (fun t ->
        check_bool "labeled tree is tree" true (Nf_graph.Props.is_tree t);
        incr c);
    !c
  in
  check_int "cayley n=4" 16 (count 4);
  check_int "cayley n=5" 125 (count 5);
  check_int "cayley n=6" 1296 (count 6);
  check_int "count_labeled" 16807 (Trees.count_labeled 7)

let test_labeled_trees_hit_all_classes () =
  (* Prüfer enumeration must cover every isomorphism class. *)
  let seen = Hashtbl.create 16 in
  Trees.iter_labeled_trees 6 (fun t -> Hashtbl.replace seen (Nf_iso.Ahu.encode t) ());
  check_int "all 6 classes" 6 (Hashtbl.length seen)

let () =
  Alcotest.run "nf_enum"
    [
      ( "labeled",
        [
          Alcotest.test_case "counts" `Quick test_labeled_counts;
          Alcotest.test_case "mask roundtrip" `Quick test_labeled_mask_roundtrip;
          Alcotest.test_case "rejects large" `Quick test_labeled_rejects_large;
        ] );
      ( "unlabeled",
        [
          Alcotest.test_case "OEIS counts" `Slow test_unlabeled_counts_oeis;
          Alcotest.test_case "OEIS counts n=9 (streaming)" `Slow test_unlabeled_counts_n9_streaming;
          Alcotest.test_case "distinct canonical" `Quick test_unlabeled_all_canonical_distinct;
          Alcotest.test_case "labeled coverage" `Quick test_unlabeled_agrees_with_labeled;
        ] );
      ( "augmentation",
        [
          Alcotest.test_case "parity with reference" `Slow test_augmentation_parity_reference;
          Alcotest.test_case "distinct at n=8" `Slow test_augmentation_distinct_n8;
          Alcotest.test_case "fold order" `Quick test_fold_matches_all_graphs;
          Alcotest.test_case "connected chunks" `Quick test_iter_connected_chunked;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "partition contract" `Quick test_shard_partition_contract;
          Alcotest.test_case "guards" `Quick test_shard_guards;
          Alcotest.test_case "partition at n=9" `Slow test_shard_partition_n9;
          Alcotest.test_case "n=10 count (NETFORM_COUNTS_FULL)" `Quick test_shard_count_n10_full;
        ] );
      ( "trees",
        [
          Alcotest.test_case "OEIS counts" `Quick test_tree_counts_oeis;
          Alcotest.test_case "all are trees" `Quick test_trees_are_trees;
          Alcotest.test_case "distinct" `Quick test_trees_distinct;
          Alcotest.test_case "cayley" `Quick test_labeled_trees_cayley;
          Alcotest.test_case "class coverage" `Quick test_labeled_trees_hit_all_classes;
        ] );
    ]
