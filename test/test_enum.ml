(* Tests for nf_enum: labeled iteration, isomorphism-free enumeration
   against OEIS, tree enumeration, Prüfer coverage. *)

module Graph = Nf_graph.Graph
module Labeled = Nf_enum.Labeled
module Unlabeled = Nf_enum.Unlabeled
module Trees = Nf_enum.Trees
module Counts = Nf_enum.Counts
module Canon = Nf_iso.Canon

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------- Labeled ---------------- *)

let test_labeled_counts () =
  check_int "n=3 all" 8 (Labeled.count_all 3);
  check_int "n=4 all" 64 (Labeled.count_all 4);
  (* labeled connected graph counts (OEIS A001187) *)
  check_int "n=3 connected" 4 (Labeled.count_connected 3);
  check_int "n=4 connected" 38 (Labeled.count_connected 4);
  check_int "n=5 connected" 728 (Labeled.count_connected 5)

let test_labeled_mask_roundtrip () =
  for mask = 0 to 63 do
    let g = Labeled.graph_of_mask 4 mask in
    check_int "mask roundtrip" mask (Labeled.mask_of_graph g)
  done

let test_labeled_rejects_large () =
  Alcotest.check_raises "n=8 rejected"
    (Invalid_argument "Labeled.iter_all: order out of range") (fun () ->
      Labeled.iter_all 8 ignore)

(* ---------------- Unlabeled vs OEIS ---------------- *)

let test_unlabeled_counts_oeis () =
  for n = 0 to 7 do
    check_int
      (Printf.sprintf "A000088(%d)" n)
      (Option.get (Counts.graphs n))
      (Unlabeled.count_all n);
    check_int
      (Printf.sprintf "A001349(%d)" n)
      (Option.get (Counts.connected_graphs n))
      (Unlabeled.count_connected n)
  done

let test_unlabeled_all_canonical_distinct () =
  let graphs = Unlabeled.all_graphs 6 in
  let keys = List.map Graph.adjacency_key graphs in
  check_int "pairwise distinct representatives"
    (List.length keys)
    (List.length (List.sort_uniq compare keys));
  List.iter
    (fun g ->
      check_bool "representative is canonical" true
        (Graph.equal g (Canon.canonical_form g)))
    graphs

let test_unlabeled_agrees_with_labeled () =
  (* each labeled graph on 5 vertices must be isomorphic to exactly one
     enumerated representative *)
  let reps = Unlabeled.all_graphs 5 in
  let key_set = Hashtbl.create 64 in
  List.iter (fun g -> Hashtbl.add key_set (Graph.adjacency_key g) ()) reps;
  Labeled.iter_all 5 (fun g ->
      let key = Graph.adjacency_key (Canon.canonical_form g) in
      check_bool "labeled graph covered" true (Hashtbl.mem key_set key))

(* ---------------- Trees ---------------- *)

let test_tree_counts_oeis () =
  for n = 1 to 10 do
    check_int
      (Printf.sprintf "A000055(%d)" n)
      (Option.get (Counts.trees n))
      (Trees.count_unlabeled n)
  done

let test_trees_are_trees () =
  List.iter
    (fun t -> check_bool "is tree" true (Nf_graph.Props.is_tree t))
    (Trees.unlabeled_trees 8)

let test_trees_distinct () =
  let trees = Trees.unlabeled_trees 9 in
  let keys = List.map Nf_iso.Ahu.encode trees in
  check_int "distinct encodings" (List.length keys) (List.length (List.sort_uniq compare keys))

let test_labeled_trees_cayley () =
  let count n =
    let c = ref 0 in
    Trees.iter_labeled_trees n (fun t ->
        check_bool "labeled tree is tree" true (Nf_graph.Props.is_tree t);
        incr c);
    !c
  in
  check_int "cayley n=4" 16 (count 4);
  check_int "cayley n=5" 125 (count 5);
  check_int "cayley n=6" 1296 (count 6);
  check_int "count_labeled" 16807 (Trees.count_labeled 7)

let test_labeled_trees_hit_all_classes () =
  (* Prüfer enumeration must cover every isomorphism class. *)
  let seen = Hashtbl.create 16 in
  Trees.iter_labeled_trees 6 (fun t -> Hashtbl.replace seen (Nf_iso.Ahu.encode t) ());
  check_int "all 6 classes" 6 (Hashtbl.length seen)

let () =
  Alcotest.run "nf_enum"
    [
      ( "labeled",
        [
          Alcotest.test_case "counts" `Quick test_labeled_counts;
          Alcotest.test_case "mask roundtrip" `Quick test_labeled_mask_roundtrip;
          Alcotest.test_case "rejects large" `Quick test_labeled_rejects_large;
        ] );
      ( "unlabeled",
        [
          Alcotest.test_case "OEIS counts" `Slow test_unlabeled_counts_oeis;
          Alcotest.test_case "distinct canonical" `Quick test_unlabeled_all_canonical_distinct;
          Alcotest.test_case "labeled coverage" `Quick test_unlabeled_agrees_with_labeled;
        ] );
      ( "trees",
        [
          Alcotest.test_case "OEIS counts" `Quick test_tree_counts_oeis;
          Alcotest.test_case "all are trees" `Quick test_trees_are_trees;
          Alcotest.test_case "distinct" `Quick test_trees_distinct;
          Alcotest.test_case "cayley" `Quick test_labeled_trees_cayley;
          Alcotest.test_case "class coverage" `Quick test_labeled_trees_hit_all_classes;
        ] );
    ]
