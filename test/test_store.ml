(* Tests for nf_store: CRC32, the binary layout codecs, tolerant scan
   vs strict verify, crash-resume byte parity, and query/export parity
   with the live nf_analysis sweep. *)

module Rat = Nf_util.Rat
module Interval = Nf_util.Interval
module Pool = Nf_util.Pool
module Graph = Nf_graph.Graph
module Graph6 = Nf_graph.Graph6
open Nf_store

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let interval = Alcotest.testable Interval.pp Interval.equal
let graph = Alcotest.testable Graph.pp Graph.equal

(* --- fixtures ----------------------------------------------------------- *)

let temp_store () =
  let path = Filename.temp_file "nf_store_test" ".nfs" in
  Sys.remove path;
  path

let cleanup path =
  List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ path; Writer.part_path path ]

let with_store ?with_ucg ?(chunk = 4) n f =
  let path = temp_store () in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      let outcome = Build.build ?with_ucg ~chunk ~path ~n () in
      f path outcome)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let raises_invalid what f =
  check_bool what true (match f () with exception Invalid_argument _ -> true | _ -> false)

let raises_corrupt what f =
  check_bool what true (match f () with exception Layout.Corrupt _ -> true | _ -> false)

(* --- CRC32 -------------------------------------------------------------- *)

let test_crc32_vectors () =
  (* standard check values for the IEEE 802.3 / zlib polynomial *)
  check_int "empty" 0 (Crc32.string "");
  check_int "123456789" 0xCBF43926 (Crc32.string "123456789");
  check_int "a" 0xE8B7BE43 (Crc32.string "a")

let test_crc32_compose () =
  let s = "the quick brown fox jumps over the lazy dog" in
  let whole = Crc32.string s in
  for cut = 0 to String.length s do
    let left = Crc32.sub s ~pos:0 ~len:cut in
    let joined = Crc32.update left s ~pos:cut ~len:(String.length s - cut) in
    check_int "split point" whole joined
  done;
  raises_invalid "bad range" (fun () -> Crc32.sub s ~pos:0 ~len:(String.length s + 1))

(* --- layout codecs ------------------------------------------------------ *)

let test_header_roundtrip () =
  List.iter
    (fun h ->
      let s = Layout.encode_header h in
      check_int "header size" Layout.header_size (String.length s);
      let h' = Layout.decode_header s in
      check_int "n" h.Layout.n h'.Layout.n;
      check_bool "content" true (h.Layout.content = h'.Layout.content);
      check_int "chunk size" h.Layout.chunk_size h'.Layout.chunk_size;
      check_bool "shard" true (h.Layout.shard = h'.Layout.shard))
    [
      { Layout.n = 1; content = Layout.classic ~with_ucg:false; chunk_size = 1; shard = None };
      { Layout.n = 7; content = Layout.classic ~with_ucg:true; chunk_size = 512; shard = None };
      {
        Layout.n = 62;
        content = Layout.classic ~with_ucg:false;
        chunk_size = 100_000;
        shard = None;
      };
      { Layout.n = 5; content = Layout.Game { tag = 2; union = false }; chunk_size = 8; shard = None };
      {
        Layout.n = 5;
        content = Layout.Game { tag = 0xBEEF; union = true };
        chunk_size = 8;
        shard = None;
      };
      { Layout.n = 7; content = Layout.classic ~with_ucg:true; chunk_size = 512; shard = Some (1, 2) };
      {
        Layout.n = 9;
        content = Layout.Game { tag = 2; union = false };
        chunk_size = 512;
        shard = Some (16, 16);
      };
      { Layout.n = 6; content = Layout.classic ~with_ucg:false; chunk_size = 8; shard = Some (3, 5) };
    ];
  raises_invalid "n out of range" (fun () ->
      Layout.encode_header
        { Layout.n = 63; content = Layout.classic ~with_ucg:false; chunk_size = 1; shard = None });
  raises_invalid "chunk out of range" (fun () ->
      Layout.encode_header
        { Layout.n = 5; content = Layout.classic ~with_ucg:false; chunk_size = 0; shard = None });
  raises_invalid "tag out of range" (fun () ->
      Layout.encode_header
        {
          Layout.n = 5;
          content = Layout.Game { tag = 0x10000; union = false };
          chunk_size = 1;
          shard = None;
        });
  let good =
    Layout.encode_header
      { Layout.n = 5; content = Layout.classic ~with_ucg:true; chunk_size = 8; shard = None }
  in
  raises_corrupt "bad magic" (fun () -> Layout.decode_header ("X" ^ String.sub good 1 23));
  raises_corrupt "short" (fun () -> Layout.decode_header (String.sub good 0 10))

(* the flags byte layout is a compatibility contract: classic stores keep
   their original 0/1 values, game stores set bit 1 and carry the schema
   tag in bits 8..23 *)
let test_content_flags_contract () =
  check_int "classic bcg" 0 (Layout.flags_of_content (Layout.classic ~with_ucg:false));
  check_int "classic dual" 1 (Layout.flags_of_content (Layout.classic ~with_ucg:true));
  check_int "game interval" (0x2 lor (3 lsl 8))
    (Layout.flags_of_content (Layout.Game { tag = 3; union = false }));
  check_int "game union" (0x2 lor 0x4 lor (1 lsl 8))
    (Layout.flags_of_content (Layout.Game { tag = 1; union = true }));
  List.iter
    (fun flags ->
      check_bool "roundtrip" true
        (Layout.flags_of_content (Layout.content_of_flags flags) = flags))
    [ 0; 1; 0x2; 0x6; 0x2 lor (7 lsl 8); 0x6 lor (0xFFFF lsl 8) ];
  (* unknown bits must be rejected, not ignored *)
  List.iter
    (fun flags ->
      raises_corrupt "unknown bits" (fun () -> ignore (Layout.content_of_flags flags)))
    [ 2 lor 1; 4; 8; 0x2 lor 0x8; 0x2 lor (1 lsl 24); 1 lsl 8 ]

(* shard metadata rides in flag bits 24..31, append-only: an unsharded
   header encodes them as zero, so every pre-shard store byte is
   untouched (the golden md5 tests below pin that), and the codecs
   roundtrip every legal (i, k) while rejecting malformed bit patterns *)
let test_shard_flags_contract () =
  check_int "unsharded" 0 (Layout.shard_flag_bits None);
  check_bool "zero decodes to None" true (Layout.shard_of_flags 0 = None);
  check_int "1/2" (1 lsl 28) (Layout.shard_flag_bits (Some (1, 2)));
  check_int "16/16" ((15 lsl 24) lor (15 lsl 28)) (Layout.shard_flag_bits (Some (16, 16)));
  for k = 2 to Layout.max_shards do
    for i = 1 to k do
      let bits = Layout.shard_flag_bits (Some (i, k)) in
      check_bool "only bits 24..31" true (bits land 0xFFFFFF = 0);
      check_bool "roundtrip" true (Layout.shard_of_flags bits = Some (i, k))
    done
  done;
  List.iter
    (fun s -> raises_invalid "bad shard" (fun () -> ignore (Layout.shard_flag_bits (Some s))))
    [ (0, 2); (3, 2); (1, 1); (1, 17); (1, 0) ];
  (* an index nibble without a count nibble, or index > count, is corrupt *)
  List.iter
    (fun bits -> raises_corrupt "bad shard bits" (fun () -> ignore (Layout.shard_of_flags bits)))
    [ 1 lsl 24; 3 lsl 24; (2 lsl 24) lor (1 lsl 28) ]

let sample_records with_ucg =
  let mk g bcg ucg =
    { Layout.graph6 = Graph6.encode g;
      bcg;
      ucg = (if with_ucg then Some ucg else None) }
  in
  let path4 = Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  let k3 = Graph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
  [|
    mk path4 Interval.empty Interval.Union.empty;
    mk k3
      (Interval.make ~lo:(Interval.Finite (Rat.make 1 2)) ~lo_closed:true
         ~hi:(Interval.Finite (Rat.of_int 3)) ~hi_closed:false)
      (Interval.Union.of_list
         [
           Interval.make ~lo:(Interval.Finite Rat.zero) ~lo_closed:false
             ~hi:(Interval.Finite Rat.one) ~hi_closed:true;
           Interval.make ~lo:(Interval.Finite (Rat.of_int 5)) ~lo_closed:true ~hi:Interval.Pos_inf
             ~hi_closed:false;
         ]);
    mk (Graph.empty 1)
      (Interval.make ~lo:Interval.Neg_inf ~lo_closed:false ~hi:Interval.Pos_inf ~hi_closed:false)
      (Interval.Union.of_list
         [ Interval.make ~lo:(Interval.Finite (Rat.make (-7) 3)) ~lo_closed:true
             ~hi:(Interval.Finite (Rat.make (-1) 3)) ~hi_closed:true ]);
  |]

let check_records_equal expected actual =
  check_int "record count" (Array.length expected) (Array.length actual);
  Array.iteri
    (fun k e ->
      let a = actual.(k) in
      check_string "graph6" e.Layout.graph6 a.Layout.graph6;
      Alcotest.check interval "bcg" e.Layout.bcg a.Layout.bcg;
      match (e.Layout.ucg, a.Layout.ucg) with
      | None, None -> ()
      | Some u, Some v -> check_bool "ucg" true (Interval.Union.equal u v)
      | _ -> Alcotest.fail "ucg presence mismatch")
    expected

let test_chunk_roundtrip () =
  List.iter
    (fun with_ucg ->
      let content = Layout.classic ~with_ucg in
      let records = sample_records with_ucg in
      let frame = Layout.encode_chunk ~index:3 ~content records in
      let index, records', next = Layout.decode_chunk ~content frame ~pos:0 in
      check_int "index" 3 index;
      check_int "frame consumed" (String.length frame) next;
      check_records_equal records records')
    [ false; true ];
  (* game-store contents reuse the same record bodies: an interval-game
     chunk is byte-identical to a classic no-ucg chunk over the same
     records, a union-game chunk carries only the union *)
  let interval_game = Layout.Game { tag = 2; union = false } in
  check_string "interval-game frame = classic frame"
    (Layout.encode_chunk ~index:0 ~content:(Layout.classic ~with_ucg:false)
       (sample_records false))
    (Layout.encode_chunk ~index:0 ~content:interval_game (sample_records false));
  let union_game = Layout.Game { tag = 9; union = true } in
  let union_records =
    Array.map (fun r -> { r with Layout.bcg = Interval.empty }) (sample_records true)
  in
  let frame = Layout.encode_chunk ~index:1 ~content:union_game union_records in
  let _, records', _ = Layout.decode_chunk ~content:union_game frame ~pos:0 in
  check_records_equal union_records records';
  (* records must agree with the header's content *)
  raises_invalid "ucg payload contradicts flag" (fun () ->
      Layout.encode_chunk ~index:0 ~content:(Layout.classic ~with_ucg:false)
        (sample_records true));
  raises_invalid "union payload contradicts interval-game content" (fun () ->
      Layout.encode_chunk ~index:0 ~content:interval_game (sample_records true));
  raises_invalid "missing union payload in union-game content" (fun () ->
      Layout.encode_chunk ~index:0 ~content:union_game (sample_records false))

let test_footer_roundtrip () =
  let s = Layout.encode_footer ~chunks:7 ~records:1044 in
  check_int "footer size" Layout.footer_size (String.length s);
  let chunks, records, next = Layout.decode_footer s ~pos:0 in
  check_int "chunks" 7 chunks;
  check_int "records" 1044 records;
  check_int "consumed" Layout.footer_size next;
  check_bool "footer magic peek" true (Layout.is_footer_at s 0);
  check_bool "not footer" false (Layout.is_footer_at "CHNK" 0)

(* --- build / load round trip ------------------------------------------- *)

let test_build_roundtrip () =
  with_store 5 (fun path outcome ->
      check_int "all classes" 21 outcome.Build.records;
      check_int "chunk fan-out" 6 outcome.Build.chunks;
      check_int "fresh build resumes nothing" 0 outcome.Build.resumed_records;
      let index = Index.load ~path in
      check_int "n" 5 (Index.n index);
      check_bool "ucg present" true (Index.with_ucg index);
      check_int "length" 21 (Index.length index);
      (* entry-for-entry parity with the live annotation *)
      let expected = Nf_analysis.Dataset.build 5 in
      List.iteri
        (fun k e ->
          let r = (Index.entries index).(k) in
          Alcotest.check graph "graph" e.Nf_analysis.Dataset.graph (Index.graphs index).(k);
          check_string "graph6" (Graph6.encode e.Nf_analysis.Dataset.graph) r.Layout.graph6;
          Alcotest.check interval "bcg" e.Nf_analysis.Dataset.bcg_stable r.Layout.bcg;
          check_bool "ucg" true
            (Interval.Union.equal
               (Option.get e.Nf_analysis.Dataset.ucg_nash)
               (Option.get r.Layout.ucg)))
        expected)

let test_build_guards () =
  raises_invalid "n too large" (fun () -> Build.build ~path:"/tmp/never.nfs" ~n:12 ());
  raises_invalid "chunk < 1" (fun () -> Build.build ~chunk:0 ~path:"/tmp/never.nfs" ~n:4 ());
  with_store 4 (fun path _ ->
      check_bool "existing path refused" true
        (match Build.build ~path ~n:4 () with exception Failure _ -> true | _ -> false);
      (* --force overwrites *)
      let outcome = Build.build ~force:true ~path ~n:4 () in
      check_int "rebuilt" 6 outcome.Build.records)

let test_resume_nothing () =
  check_bool "no part file" true
    (match Build.resume ~path:"/tmp/nf_store_absent.nfs" () with
    | exception Failure _ -> true
    | _ -> false)

(* --- scan / verify / corruption ---------------------------------------- *)

let test_scan_tolerates_truncation () =
  with_store 5 (fun path _ ->
      let bytes = read_file path in
      let full = Reader.scan_string bytes in
      check_bool "full store complete" true full.Reader.complete;
      check_int "full records" 21 full.Reader.records;
      (* any truncation strictly inside the data yields a valid,
         incomplete prefix with only whole chunks *)
      let len = String.length bytes in
      for cut = Layout.header_size to len - 1 do
        let scan = Reader.scan_string (String.sub bytes 0 cut) in
        check_bool "truncated not complete" false scan.Reader.complete;
        check_bool "prefix within cut" true (scan.Reader.data_end <= cut);
        check_bool "chunk prefix" true (scan.Reader.chunks <= full.Reader.chunks)
      done;
      (* loading an incomplete store must fail loudly *)
      let part = Writer.part_path path in
      write_file part (String.sub bytes 0 (len - 1));
      raises_corrupt "load incomplete" (fun () -> Reader.load ~path:part))

let test_verify_detects_any_flip () =
  with_store 4 ~chunk:2 (fun path _ ->
      let bytes = read_file path in
      (match Reader.verify_string bytes with
      | Ok scan ->
        check_bool "intact verifies" true scan.Reader.complete;
        check_int "intact records" 6 scan.Reader.records
      | Error msg -> Alcotest.failf "intact store rejected: %s" msg);
      (* a single flipped bit anywhere in the file must be caught *)
      let corrupted = Bytes.of_string bytes in
      for k = 0 to Bytes.length corrupted - 1 do
        let orig = Bytes.get corrupted k in
        Bytes.set corrupted k (Char.chr (Char.code orig lxor 0x01));
        (match Reader.verify_string (Bytes.to_string corrupted) with
        | Ok _ -> Alcotest.failf "flip at byte %d not detected" k
        | Error _ -> ());
        Bytes.set corrupted k orig
      done)

let test_verify_rejects_trailing_garbage () =
  with_store 4 (fun path _ ->
      let bytes = read_file path in
      match Reader.verify_string (bytes ^ "x") with
      | Ok _ -> Alcotest.fail "trailing garbage not detected"
      | Error _ -> ())

(* --- crash-resume byte parity ------------------------------------------ *)

let test_resume_byte_parity () =
  with_store 5 (fun path _ ->
      let pristine = read_file path in
      let len = String.length pristine in
      (* cut points: just past the header, inside the first chunk, at a
         chunk boundary (the scan of a 2/3 cut lands on one), and one
         byte short of complete *)
      List.iter
        (fun cut ->
          let resumed_path = temp_store () in
          Fun.protect
            ~finally:(fun () -> cleanup resumed_path)
            (fun () ->
              write_file (Writer.part_path resumed_path) (String.sub pristine 0 cut);
              let outcome = Build.resume ~path:resumed_path () in
              check_int "all records present" 21 outcome.Build.records;
              check_bool "carry-over consistent" true
                (outcome.Build.resumed_records >= 0
                && outcome.Build.resumed_records <= 21);
              check_string "byte identical" pristine (read_file resumed_path)))
        [ Layout.header_size; Layout.header_size + 7; len / 3; 2 * len / 3; len - 1 ])

let test_resume_after_kill_mid_chunk () =
  (* interrupting an actual writer (not a synthetic truncation): abort
     after two chunks, then resume and compare against an uninterrupted
     build *)
  with_store 5 (fun path _ ->
      let pristine = read_file path in
      let resumed_path = temp_store () in
      Fun.protect
        ~finally:(fun () -> cleanup resumed_path)
        (fun () ->
          let header =
            { Layout.n = 5; content = Layout.classic ~with_ucg:true; chunk_size = 4; shard = None }
          in
          let w = Writer.create ~path:resumed_path ~header in
          let full = Reader.scan_string pristine in
          ignore full;
          (* replay the first two pristine chunks through the writer, then
             simulate a crash by appending half a torn frame *)
          let pos = ref Layout.header_size in
          for _ = 1 to 2 do
            let _, records, next =
              Layout.decode_chunk ~content:(Layout.classic ~with_ucg:true) pristine ~pos:!pos
            in
            ignore records;
            pos := next
          done;
          Writer.abort w;
          let part = Writer.part_path resumed_path in
          write_file part (String.sub pristine 0 !pos ^ "CHNK\x02\x00\x00\x00torn");
          let outcome = Build.resume ~path:resumed_path () in
          check_int "resumed two chunks" 8 outcome.Build.resumed_records;
          check_string "byte identical" pristine (read_file resumed_path)))

let test_build_parity_across_jobs () =
  let saved = Pool.default_jobs () in
  Fun.protect
    ~finally:(fun () -> Pool.set_default_jobs saved)
    (fun () ->
      let build_with jobs =
        Pool.set_default_jobs jobs;
        with_store 5 (fun path _ -> read_file path)
      in
      check_string "jobs=1 vs jobs=4" (build_with 1) (build_with 4))

(* --- query / export parity --------------------------------------------- *)

let test_query_parity () =
  with_store 5 (fun path _ ->
      let index = Index.load ~path in
      List.iter
        (fun alpha ->
          let expected = Nf_analysis.Equilibria.bcg_stable_graphs ~n:5 ~alpha in
          Alcotest.check (Alcotest.list graph) "bcg stable" expected
            (Query.bcg_stable_graphs index ~alpha);
          let expected = Nf_analysis.Equilibria.ucg_nash_graphs ~n:5 ~alpha in
          Alcotest.check (Alcotest.list graph) "ucg nash" expected
            (Query.ucg_nash_graphs index ~alpha))
        [ Rat.make 1 2; Rat.one; Rat.of_int 2; Rat.of_int 8 ])

let test_figure_points_parity () =
  with_store 5 (fun path _ ->
      let index = Index.load ~path in
      let grid = [ Rat.make 1 2; Rat.of_int 2; Rat.of_int 8 ] in
      let from_store = Query.figure_points index ~grid () in
      let live = Nf_analysis.Figures.sweep ~n:5 ~grid () in
      check_int "points" (List.length live) (List.length from_store);
      List.iter2
        (fun a b ->
          check_bool "total link cost" true
            (Rat.equal a.Nf_analysis.Figures.total_link_cost b.Nf_analysis.Figures.total_link_cost);
          check_int "ucg count" a.Nf_analysis.Figures.ucg.Netform.Poa.count
            b.Nf_analysis.Figures.ucg.Netform.Poa.count;
          check_int "bcg count" a.Nf_analysis.Figures.bcg.Netform.Poa.count
            b.Nf_analysis.Figures.bcg.Netform.Poa.count)
        live from_store)

let test_export_csv_identical () =
  with_store 5 (fun path _ ->
      let index = Index.load ~path in
      check_string "csv byte-identical" (Nf_analysis.Dataset.to_csv (Nf_analysis.Dataset.build 5))
        (Query.to_csv index))

let test_query_without_ucg () =
  with_store ~with_ucg:false 5 (fun path _ ->
      let index = Index.load ~path in
      check_bool "no ucg stored" false (Index.with_ucg index);
      check_bool "bcg still served" true
        (Query.bcg_stable_graphs index ~alpha:(Rat.of_int 2) <> []);
      raises_invalid "nash query refused" (fun () ->
          Query.ucg_nash_graphs index ~alpha:(Rat.of_int 2)))

(* --- golden bytes (pre-refactor compatibility) -------------------------- *)

(* MD5 digests of n=4 chunk=2 stores captured from the pre-game-registry
   implementation.  The game abstraction must not move a single byte of
   the classic NFATLAS1 format, and building BCG/UCG stores through the
   registry's --game route must hit the same bytes. *)
let golden_bcg_md5 = "dacb7cd89db604b60b7c5ee8bf9a3518"
let golden_dual_md5 = "b961d46128d3c3a318431b64af7a09cd"

let file_md5 path = Digest.to_hex (Digest.file path)

let test_golden_store_bytes () =
  with_store ~with_ucg:false ~chunk:2 4 (fun path _ ->
      check_string "classic bcg-only store" golden_bcg_md5 (file_md5 path));
  with_store ~with_ucg:true ~chunk:2 4 (fun path outcome ->
      check_string "classic dual store" golden_dual_md5 (file_md5 path);
      check_string "outcome game" "ucg" outcome.Build.game)

let with_game_store ~game ?(chunk = 4) n f =
  let path = temp_store () in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      let outcome = Build.build ~game ~chunk ~path ~n () in
      f path outcome)

let test_golden_game_route () =
  with_game_store ~game:"bcg" ~chunk:2 4 (fun path _ ->
      check_string "--game bcg = classic bytes" golden_bcg_md5 (file_md5 path));
  with_game_store ~game:"ucg" ~chunk:2 4 (fun path _ ->
      check_string "--game ucg = classic bytes" golden_dual_md5 (file_md5 path))

(* the pre-refactor n=4 dual-annotation CSV, verbatim *)
let golden_csv =
  "graph6,n,m,bcg_stable,ucg_nash\n\
   Cs,4,3,[1;inf),[1;inf)\n\
   Cq,4,3,[2;inf),[2;inf)\n\
   C{,4,4,[1;1],[1;1]\n\
   Cr,4,4,[1;2],[1;2]\n\
   C},4,5,[1;1],[1;1]\n\
   C~,4,6,(0;1],(0;1]\n"

let test_golden_csv () =
  check_string "dataset csv" golden_csv
    (Nf_analysis.Dataset.to_csv (Nf_analysis.Dataset.build ~with_ucg:true 4))

(* transfers regions at n=4 captured pre-refactor (the transfers
   annotator predates the registry; its output must not move either) *)
let test_golden_transfers_regions () =
  let expected =
    [ ("Cs", "[1, +inf)"); ("Cq", "[2, +inf)"); ("C{", "[1, 1]"); ("Cr", "[1, 2]");
      ("C}", "[1, 1]"); ("C~", "(0, 1]") ]
  in
  let actual =
    List.map
      (fun (g, r) -> (Graph6.encode g, Interval.to_string r))
      (Nf_analysis.Equilibria.transfers_annotated 4)
  in
  List.iter2
    (fun (g, r) (g', r') ->
      check_string "graph" g g';
      check_string "region" r r')
    expected actual

(* --- single-game stores -------------------------------------------------- *)

let test_game_store_roundtrip () =
  List.iter
    (fun game ->
      with_game_store ~game 5 (fun path outcome ->
          check_string "outcome game" game outcome.Build.game;
          check_int "all classes" 21 outcome.Build.records;
          (match Reader.verify ~path with
          | Ok scan -> check_bool "verifies" true scan.Reader.complete
          | Error msg -> Alcotest.failf "game store rejected: %s" msg);
          let index = Index.load ~path in
          check_string "index game" game (Index.game index);
          check_bool "no classic ucg payload claim" true
            (Index.with_ucg index = (game = "ucg"));
          (* the stored regions answer α-queries exactly like a live sweep *)
          let packed = Netform.Game_registry.find_exn game in
          List.iter
            (fun alpha ->
              let expected =
                Nf_analysis.Equilibria.stable_graphs_packed packed ~n:5 ~alpha
              in
              Alcotest.check (Alcotest.list graph) "alpha query" expected
                (Query.game_stable_graphs index ~game ~alpha))
            [ Rat.make 1 2; Rat.one; Rat.of_int 2; Rat.of_int 8 ]))
    [ "bcg"; "ucg"; "transfers"; "weighted_bcg" ]

let test_game_store_mismatch_rejected () =
  with_game_store ~game:"transfers" 4 (fun path _ ->
      let index = Index.load ~path in
      raises_invalid "wrong game refused" (fun () ->
          Query.game_stable_graphs index ~game:"weighted_bcg" ~alpha:Rat.one);
      raises_invalid "classic query on game store refused" (fun () ->
          Query.game_stable_graphs index ~game:"ucg" ~alpha:Rat.one);
      raises_invalid "unknown game" (fun () ->
          Query.game_stable_graphs index ~game:"nope" ~alpha:Rat.one));
  with_store ~with_ucg:false 4 (fun path _ ->
      let index = Index.load ~path in
      raises_invalid "ucg on bcg-only classic store" (fun () ->
          Query.game_stable_graphs index ~game:"ucg" ~alpha:Rat.one))

let test_game_store_resume_parity () =
  with_game_store ~game:"weighted_bcg" ~chunk:4 5 (fun path _ ->
      let pristine = read_file path in
      let resumed_path = temp_store () in
      Fun.protect
        ~finally:(fun () -> cleanup resumed_path)
        (fun () ->
          (* the resume annotator is reconstructed from the header's
             schema tag alone — cut inside the data and replay *)
          write_file
            (Writer.part_path resumed_path)
            (String.sub pristine 0 (String.length pristine / 2));
          let outcome = Build.resume ~path:resumed_path () in
          check_string "resumed game" "weighted_bcg" outcome.Build.game;
          check_string "byte identical" pristine (read_file resumed_path)))

let test_game_figure_points () =
  with_game_store ~game:"transfers" 5 (fun path _ ->
      let index = Index.load ~path in
      let grid = [ Rat.make 1 2; Rat.of_int 2; Rat.of_int 8 ] in
      let from_store = Query.game_figure_points index ~grid () in
      let live =
        Nf_analysis.Figures.sweep_game (Netform.Game_registry.find_exn "transfers") ~n:5
          ~grid ()
      in
      check_string "game curves identical" (Nf_analysis.Figures.game_csv live)
        (Nf_analysis.Figures.game_csv from_store))

(* --- sharded builds / merge ---------------------------------------------- *)

let temp_dir () =
  let path = Filename.temp_file "nf_store_shards" "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let with_temp_dir f =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun name -> Sys.remove (Filename.concat dir name)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let build_shards ~dir ?game ?with_ucg ?(chunk = 4) ~k n =
  List.init k (fun j ->
      let path = Filename.concat dir (Printf.sprintf "shard_%02d_of_%02d.nfs" (j + 1) k) in
      Build.build ?game ?with_ucg ~shard:(j + 1, k) ~chunk ~path ~n ())

let test_shard_build_guards () =
  raises_invalid "index zero" (fun () -> Build.build ~shard:(0, 3) ~path:"/tmp/never.nfs" ~n:4 ());
  raises_invalid "index above count" (fun () ->
      Build.build ~shard:(4, 3) ~path:"/tmp/never.nfs" ~n:4 ());
  raises_invalid "count above max" (fun () ->
      Build.build ~shard:(1, 17) ~path:"/tmp/never.nfs" ~n:4 ())

(* --shard 1/1 IS the unsharded build: same bytes, unsharded header *)
let test_shard_one_way_byte_parity () =
  with_store ~chunk:4 5 (fun whole _ ->
      let pristine = read_file whole in
      let path = temp_store () in
      Fun.protect
        ~finally:(fun () -> cleanup path)
        (fun () ->
          let outcome = Build.build ~shard:(1, 1) ~chunk:4 ~path ~n:5 () in
          check_bool "outcome unsharded" true (outcome.Build.shard = None);
          check_string "bytes identical" pristine (read_file path);
          check_bool "header unsharded" true
            ((Reader.scan ~path).Reader.header.Layout.shard = None)))

(* the tentpole acceptance: k shard volumes, built independently, merge
   into bytes identical to a single-process build — classic and game
   stores alike *)
let test_shard_merge_byte_parity () =
  List.iter
    (fun (game, k) ->
      let build_whole path =
        ignore (Build.build ?game ~chunk:4 ~path ~n:5 ())
      in
      let whole = temp_store () in
      Fun.protect
        ~finally:(fun () -> cleanup whole)
        (fun () ->
          build_whole whole;
          let pristine = read_file whole in
          with_temp_dir (fun dir ->
              let outcomes = build_shards ~dir ?game ~k 5 in
              check_int "records partition" 21
                (List.fold_left (fun acc o -> acc + o.Build.records) 0 outcomes);
              List.iteri
                (fun j o -> check_bool "shard recorded" true (o.Build.shard = Some (j + 1, k)))
                outcomes;
              let out = Filename.concat dir "merged.nfs" in
              let m = Merge.merge_dir ~dir ~out () in
              check_int "merged shards" k m.Merge.shards;
              check_int "merged records" 21 m.Merge.records;
              check_string "merge byte-identical to single-process build" pristine
                (read_file out))))
    [ (None, 3); (None, 5); (Some "transfers", 3) ]

(* a directory of shard volumes loads and queries as the merged store *)
let test_shard_directory_index_query () =
  with_temp_dir (fun dir ->
      ignore (build_shards ~dir ~k:3 5);
      let idx = Index.load ~path:dir in
      check_int "all classes" 21 (Index.length idx);
      check_bool "reads as whole" true (Index.shard idx = None);
      check_int "n" 5 (Index.n idx);
      let out = Filename.concat dir "merged.nfs" in
      ignore (Merge.merge_dir ~dir ~out ());
      let merged = Index.load ~path:out in
      check_string "directory query = merged query" (Query.to_csv merged) (Query.to_csv idx);
      List.iter
        (fun alpha ->
          Alcotest.check (Alcotest.list graph) "alpha parity"
            (Query.bcg_stable_graphs merged ~alpha)
            (Query.bcg_stable_graphs idx ~alpha))
        [ Rat.make 1 2; Rat.one; Rat.of_int 2 ];
      (* one volume alone still loads, and owns up to being a slice *)
      let one = Index.load ~path:(Filename.concat dir "shard_02_of_03.nfs") in
      check_bool "volume shard" true (Index.shard one = Some (2, 3));
      check_bool "volume is a strict slice" true (Index.length one < 21))

(* Reader.verify on a damaged shard volume pins the offending chunk and
   the byte offset its frame starts at *)
let test_verify_damaged_shard_message () =
  with_temp_dir (fun dir ->
      let o2 =
        match build_shards ~dir ~k:3 5 with [ _; o2; _ ] -> o2 | _ -> assert false
      in
      let path = o2.Build.path in
      let bytes = read_file path in
      (* locate chunk 1's frame: decode chunk 0 and take its end *)
      let header = Layout.decode_header bytes in
      let _, _, chunk1_start =
        Layout.decode_chunk ~content:header.Layout.content bytes ~pos:Layout.header_size
      in
      let damaged = Bytes.of_string bytes in
      let at = chunk1_start + Layout.chunk_header_size + 2 in
      Bytes.set damaged at (Char.chr (Char.code (Bytes.get damaged at) lxor 0x40));
      write_file path (Bytes.to_string damaged);
      (match Reader.verify ~path with
      | Ok _ -> Alcotest.fail "damaged shard verified"
      | Error msg ->
        let expected = Printf.sprintf "chunk 1 (frame at byte %d):" chunk1_start in
        check_bool
          (Printf.sprintf "message %S pins %S" msg expected)
          true
          (String.length msg >= String.length expected
          && String.sub msg 0 (String.length expected) = expected));
      (* a merge must refuse the damaged family, naming the volume *)
      check_bool "merge refuses damaged volume" true
        (match Merge.merge_dir ~dir ~out:(Filename.concat dir "m.nfs") () with
        | exception Failure msg ->
          let rec contains i =
            i + String.length path <= String.length msg
            && (String.sub msg i (String.length path) = path || contains (i + 1))
          in
          contains 0
        | _ -> false))

let test_merge_validation () =
  with_temp_dir (fun dir ->
      let outcomes = build_shards ~dir ~k:3 5 in
      let paths = List.map (fun o -> o.Build.path) outcomes in
      let out = Filename.concat dir "out.nfs" in
      let fails what ps =
        check_bool what true
          (match Merge.merge ~paths:ps ~out () with exception Failure _ -> true | _ -> false)
      in
      (match paths with
      | [ p1; p2; p3 ] ->
        fails "missing shard" [ p1; p3 ];
        fails "duplicate shard" [ p1; p2; p2 ];
        fails "no volumes" [];
        (* a foreign family member: same split but different chunk size *)
        let alien = Filename.concat dir "alien.nfs" in
        ignore (Build.build ~shard:(3, 3) ~chunk:2 ~path:alien ~n:5 ());
        fails "mixed chunk size" [ p1; p2; alien ];
        Sys.remove alien;
        (* an unsharded store is not a shard volume *)
        let whole = Filename.concat dir "whole.nfs" in
        ignore (Build.build ~chunk:4 ~path:whole ~n:5 ());
        fails "unsharded input" [ p1; p2; whole ];
        Sys.remove whole;
        ignore (Merge.merge ~paths ~out ());
        fails "existing output refused" paths;
        ignore (Merge.merge ~force:true ~paths ~out ())
      | _ -> Alcotest.fail "expected 3 shards"))

(* satellite: the streaming merge — one chunk resident at a time — emits
   the same bytes and the same report lines as the in-memory one *)
let test_streaming_merge_byte_parity () =
  List.iter
    (fun game ->
      with_temp_dir (fun dir ->
          ignore (build_shards ~dir ?game ~k:3 5);
          let out_mem = Filename.concat dir "merged_mem.nfs" in
          let out_str = Filename.concat dir "merged_str.nfs" in
          let lines_of out streaming =
            let lines = ref [] in
            let m =
              Merge.merge_dir ~streaming ~report:(fun l -> lines := l :: !lines) ~dir ~out ()
            in
            check_int "records" 21 m.Merge.records;
            List.rev !lines
          in
          let mem_lines = lines_of out_mem false in
          let str_lines = lines_of out_str true in
          check_string "streaming merge byte-identical" (read_file out_mem) (read_file out_str);
          check_bool "same report lines" true (mem_lines = str_lines)))
    [ None; Some "transfers"; Some "ucg" ]

(* fold_chunks walks a complete store chunk-by-chunk in order, and
   verify_stream matches strict verify on both clean and damaged bytes *)
let test_fold_chunks_and_verify_stream () =
  with_store ~chunk:4 5 (fun path _ ->
      let header, order, chunks, records =
        Reader.fold_chunks ~path ~init:[] (fun h acc index recs ->
            check_int "callback header n" 5 h.Layout.n;
            (index, Array.length recs) :: acc)
      in
      check_int "n" 5 header.Layout.n;
      check_int "records" 21 records;
      check_bool "chunks in order" true
        (List.rev (List.map fst order) = List.init chunks Fun.id);
      check_int "chunk count" chunks (List.length order);
      check_int "record partition" records
        (List.fold_left (fun acc (_, c) -> acc + c) 0 order);
      (* clean file: stream verify = strict verify, scan for scan *)
      (match (Reader.verify ~path, Reader.verify_stream ~path) with
      | Ok a, Ok b ->
        check_int "chunks agree" a.Reader.chunks b.Reader.chunks;
        check_int "records agree" a.Reader.records b.Reader.records;
        check_int "data_end agrees" a.Reader.data_end b.Reader.data_end;
        check_bool "complete" true (a.Reader.complete && b.Reader.complete)
      | _ -> Alcotest.fail "clean store failed verification");
      (* any flipped byte in a chunk body fails both, pinned to the chunk *)
      let pristine = read_file path in
      let at = Layout.header_size + Layout.chunk_header_size + 1 in
      let damaged = Bytes.of_string pristine in
      Bytes.set damaged at (Char.chr (Char.code (Bytes.get damaged at) lxor 0x10));
      write_file path (Bytes.to_string damaged);
      (match Reader.verify_stream ~path with
      | Ok _ -> Alcotest.fail "damaged store stream-verified"
      | Error msg ->
        check_bool
          (Printf.sprintf "message %S pins chunk 0" msg)
          true
          (String.length msg >= 7 && String.sub msg 0 7 = "chunk 0");
        check_bool "fold_chunks raises too" true
          (match Reader.fold_chunks ~path ~init:() (fun _ () _ _ -> ()) with
          | exception Layout.Corrupt _ -> true
          | _ -> false));
      (* truncation is an error, not an exception *)
      write_file path (String.sub pristine 0 (String.length pristine - 5));
      check_bool "truncated is Error" true (Result.is_error (Reader.verify_stream ~path));
      write_file path pristine)

(* a shard volume crash-resumes byte-identically, like any store: the
   header's shard bits alone reconstruct the slice iterator *)
let test_shard_resume_parity () =
  with_temp_dir (fun dir ->
      let outcomes = build_shards ~dir ~k:3 5 in
      let path = (List.nth outcomes 1).Build.path in
      let pristine = read_file path in
      let resumed_path = temp_store () in
      Fun.protect
        ~finally:(fun () -> cleanup resumed_path)
        (fun () ->
          write_file
            (Writer.part_path resumed_path)
            (String.sub pristine 0 (String.length pristine / 2));
          let outcome = Build.resume ~path:resumed_path () in
          check_bool "resumed shard" true (outcome.Build.shard = Some (2, 3));
          check_string "byte identical" pristine (read_file resumed_path)))

(* --- writer details ----------------------------------------------------- *)

let test_writer_guards () =
  let path = temp_store () in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      let header =
        { Layout.n = 4; content = Layout.classic ~with_ucg:false; chunk_size = 2; shard = None }
      in
      let w = Writer.create ~path ~header in
      raises_invalid "empty chunk" (fun () -> Writer.append_chunk w [||]);
      Writer.abort w;
      raises_invalid "closed writer" (fun () ->
          Writer.append_chunk w [| { Layout.graph6 = "C~"; bcg = Interval.empty; ucg = None } |]);
      Writer.abort w (* idempotent *))

let test_reopen_complete_refused () =
  with_store 4 (fun path _ ->
      let part = Writer.part_path path in
      write_file part (read_file path);
      raises_invalid "complete part refused" (fun () -> ignore (Writer.reopen ~path)))

(* --- property tests ------------------------------------------------------ *)

let endpoint_gen =
  QCheck.Gen.(
    frequency
      [
        (1, return Interval.Neg_inf);
        (1, return Interval.Pos_inf);
        (8, map2 (fun n d -> Interval.Finite (Rat.make n (1 + d))) (int_range (-50) 50) (int_bound 9));
      ])

let interval_gen =
  QCheck.Gen.(
    frequency
      [
        (1, return Interval.empty);
        ( 6,
          map
            (fun (lo, hi, lc, hc) -> Interval.make ~lo ~lo_closed:lc ~hi ~hi_closed:hc)
            (quad endpoint_gen endpoint_gen bool bool) );
      ])

let record_arbitrary =
  QCheck.make
    ~print:(fun (seed, n, _) -> Printf.sprintf "seed=%d n=%d" seed n)
    QCheck.Gen.(triple (int_bound 100_000) (int_range 1 10) (list_size (int_range 0 4) interval_gen))

let prop_chunk_codec_roundtrip =
  QCheck.Test.make ~name:"chunk codec roundtrip" ~count:200 record_arbitrary
    (fun (seed, n, pieces) ->
      let g = Nf_graph.Random_graph.gnp (Nf_util.Prng.create seed) n 0.4 in
      let bcg =
        match pieces with [] -> Interval.empty | i :: _ -> i
      in
      let record =
        { Layout.graph6 = Graph6.encode g; bcg; ucg = Some (Interval.Union.of_list pieces) }
      in
      let content = Layout.classic ~with_ucg:true in
      let frame = Layout.encode_chunk ~index:0 ~content [| record; record |] in
      let _, records, next = Layout.decode_chunk ~content frame ~pos:0 in
      next = String.length frame
      && Array.length records = 2
      && Array.for_all
           (fun r ->
             r.Layout.graph6 = record.Layout.graph6
             && Interval.equal r.Layout.bcg record.Layout.bcg
             && Interval.Union.equal (Option.get r.Layout.ucg) (Option.get record.Layout.ucg))
           records)

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "nf_store"
    [
      ( "crc32",
        [
          Alcotest.test_case "vectors" `Quick test_crc32_vectors;
          Alcotest.test_case "compose" `Quick test_crc32_compose;
        ] );
      ( "layout",
        [
          Alcotest.test_case "header" `Quick test_header_roundtrip;
          Alcotest.test_case "content flags" `Quick test_content_flags_contract;
          Alcotest.test_case "shard flags" `Quick test_shard_flags_contract;
          Alcotest.test_case "chunk" `Quick test_chunk_roundtrip;
          Alcotest.test_case "footer" `Quick test_footer_roundtrip;
          qcheck prop_chunk_codec_roundtrip;
        ] );
      ( "build",
        [
          Alcotest.test_case "roundtrip" `Quick test_build_roundtrip;
          Alcotest.test_case "guards" `Quick test_build_guards;
          Alcotest.test_case "resume nothing" `Quick test_resume_nothing;
        ] );
      ( "integrity",
        [
          Alcotest.test_case "scan tolerates truncation" `Quick test_scan_tolerates_truncation;
          Alcotest.test_case "verify detects any flip" `Quick test_verify_detects_any_flip;
          Alcotest.test_case "trailing garbage" `Quick test_verify_rejects_trailing_garbage;
        ] );
      ( "resume",
        [
          Alcotest.test_case "byte parity" `Quick test_resume_byte_parity;
          Alcotest.test_case "kill mid chunk" `Quick test_resume_after_kill_mid_chunk;
          Alcotest.test_case "jobs parity" `Quick test_build_parity_across_jobs;
        ] );
      ( "query",
        [
          Alcotest.test_case "alpha parity" `Quick test_query_parity;
          Alcotest.test_case "figure points" `Quick test_figure_points_parity;
          Alcotest.test_case "csv export" `Quick test_export_csv_identical;
          Alcotest.test_case "without ucg" `Quick test_query_without_ucg;
        ] );
      ( "golden",
        [
          Alcotest.test_case "classic store bytes" `Quick test_golden_store_bytes;
          Alcotest.test_case "game route bytes" `Quick test_golden_game_route;
          Alcotest.test_case "dataset csv" `Quick test_golden_csv;
          Alcotest.test_case "transfers regions" `Quick test_golden_transfers_regions;
        ] );
      ( "game stores",
        [
          Alcotest.test_case "roundtrip" `Quick test_game_store_roundtrip;
          Alcotest.test_case "mismatch rejected" `Quick test_game_store_mismatch_rejected;
          Alcotest.test_case "resume parity" `Quick test_game_store_resume_parity;
          Alcotest.test_case "figure points" `Quick test_game_figure_points;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "build guards" `Quick test_shard_build_guards;
          Alcotest.test_case "1/1 byte parity" `Quick test_shard_one_way_byte_parity;
          Alcotest.test_case "merge byte parity" `Quick test_shard_merge_byte_parity;
          Alcotest.test_case "directory index/query" `Quick test_shard_directory_index_query;
          Alcotest.test_case "damaged shard message" `Quick test_verify_damaged_shard_message;
          Alcotest.test_case "merge validation" `Quick test_merge_validation;
          Alcotest.test_case "streaming merge parity" `Quick test_streaming_merge_byte_parity;
          Alcotest.test_case "fold_chunks / verify_stream" `Quick test_fold_chunks_and_verify_stream;
          Alcotest.test_case "shard resume parity" `Quick test_shard_resume_parity;
        ] );
      ( "writer",
        [
          Alcotest.test_case "guards" `Quick test_writer_guards;
          Alcotest.test_case "reopen complete" `Quick test_reopen_complete_refused;
        ] );
    ]
