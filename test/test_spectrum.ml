(* Tests for Nf_graph.Spectrum: known spectra, SRG three-eigenvalue
   certificates, algebraic connectivity vs connectivity. *)

module Graph = Nf_graph.Graph
module Spectrum = Nf_graph.Spectrum
module Families = Nf_named.Families
module Gallery = Nf_named.Gallery
module Prng = Nf_util.Prng

let check_bool = Alcotest.(check bool)
let close ?(eps = 1e-6) a b = Float.abs (a -. b) <= eps
let check_close name a b = check_bool name true (close a b)

let test_known_spectra () =
  (* K4: eigenvalues 3, -1 (x3) *)
  let ev = Spectrum.adjacency_eigenvalues (Families.complete 4) in
  check_close "K4 min" (-1.0) ev.(0);
  check_close "K4 second" (-1.0) ev.(2);
  check_close "K4 max" 3.0 ev.(3);
  (* C4: 2, 0, 0, -2 *)
  let c4 = Spectrum.adjacency_eigenvalues (Families.cycle 4) in
  check_close "C4 min" (-2.0) c4.(0);
  check_close "C4 mid" 0.0 c4.(1);
  check_close "C4 max" 2.0 c4.(3);
  (* star on 5: +/- 2 and zeros *)
  let s5 = Spectrum.adjacency_eigenvalues (Families.star 5) in
  check_close "star min" (-2.0) s5.(0);
  check_close "star max" 2.0 s5.(4)

let test_petersen_spectrum () =
  (* Petersen: 3 (x1), 1 (x5), -2 (x4) *)
  let ev = Spectrum.adjacency_eigenvalues Gallery.petersen in
  check_close "max" 3.0 ev.(9);
  check_close "middle" 1.0 ev.(8);
  check_close "middle low" 1.0 ev.(4);
  check_close "min" (-2.0) ev.(0);
  check_close "min high" (-2.0) ev.(3);
  check_bool "three distinct values" true
    (List.length (Spectrum.distinct_eigenvalues Gallery.petersen) = 3)

let test_srg_three_eigenvalues () =
  (* connected strongly regular graphs have exactly three distinct
     adjacency eigenvalues *)
  List.iter
    (fun name ->
      let g = List.assoc name Gallery.all in
      check_bool (name ^ " three eigenvalues") true
        (List.length (Spectrum.distinct_eigenvalues g) = 3))
    [ "petersen"; "octahedron"; "clebsch" ];
  (* and non-SRG regular graphs have more *)
  check_bool "mcgee has more" true
    (List.length (Spectrum.distinct_eigenvalues Gallery.mcgee) > 3)

let test_regular_radius () =
  check_close "cubic radius" 3.0 (Spectrum.spectral_radius Gallery.mcgee);
  check_close "7-regular radius" 7.0 (Spectrum.spectral_radius Gallery.hoffman_singleton)

let test_algebraic_connectivity () =
  check_bool "path connected" true (Spectrum.algebraic_connectivity (Families.path 6) > 1e-9);
  check_bool "disconnected zero" true
    (close (Spectrum.algebraic_connectivity (Graph.of_edges 4 [ (0, 1); (2, 3) ])) 0.0);
  (* K_n has algebraic connectivity n *)
  check_close "K5 connectivity" 5.0 (Spectrum.algebraic_connectivity (Families.complete 5));
  (* random cross-check against BFS connectivity *)
  let rng = Prng.create 2 in
  for _ = 1 to 60 do
    let g = Nf_graph.Random_graph.gnp rng (3 + Prng.int rng 8) 0.35 in
    check_bool "fiedler sign matches connectivity"
      (Nf_graph.Connectivity.is_connected g)
      (Spectrum.algebraic_connectivity g > 1e-7)
  done

let test_trace_invariants () =
  (* sum of adjacency eigenvalues = trace = 0; sum of squares = 2m *)
  let rng = Prng.create 9 in
  for _ = 1 to 40 do
    let g = Nf_graph.Random_graph.gnp rng (3 + Prng.int rng 9) 0.4 in
    let ev = Spectrum.adjacency_eigenvalues g in
    let sum = Array.fold_left ( +. ) 0.0 ev in
    let sum_sq = Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 ev in
    check_bool "trace zero" true (close ~eps:1e-5 sum 0.0);
    check_bool "sum of squares = 2m" true
      (close ~eps:1e-4 sum_sq (float_of_int (2 * Graph.size g)))
  done

let () =
  Alcotest.run "nf_spectrum"
    [
      ( "spectrum",
        [
          Alcotest.test_case "known spectra" `Quick test_known_spectra;
          Alcotest.test_case "petersen" `Quick test_petersen_spectrum;
          Alcotest.test_case "srg certificate" `Quick test_srg_three_eigenvalues;
          Alcotest.test_case "regular radius" `Quick test_regular_radius;
          Alcotest.test_case "algebraic connectivity" `Quick test_algebraic_connectivity;
          Alcotest.test_case "trace invariants" `Quick test_trace_invariants;
        ] );
    ]
