(* Tests for nf_serve: the mmap read path vs Index.load, the
   α-interval index vs naive Interval.mem filtering (including exact
   endpoint queries, for every registered game), service-level parity
   with Nf_store.Query, the wire protocol codecs, and a live daemon
   exercised by concurrent clients. *)

module Rat = Nf_util.Rat
module Interval = Nf_util.Interval
module Graph6 = Nf_graph.Graph6
module Layout = Nf_store.Layout
module Build = Nf_store.Build
module Index = Nf_store.Index
module Query = Nf_store.Query
open Nf_serve

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_ids = Alcotest.(check (list int))
let check_strings = Alcotest.(check (list string))

(* --- fixtures ----------------------------------------------------------- *)

let temp_store () =
  let path = Filename.temp_file "nf_serve_test" ".nfs" in
  Sys.remove path;
  path

let with_store ?game ?with_ucg ?(chunk = 4) n f =
  let path = temp_store () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      ignore (Build.build ?game ?with_ucg ~chunk ~path ~n ());
      f path)

let with_temp_dir f =
  let dir = Filename.temp_file "nf_serve_shards" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun name -> Sys.remove (Filename.concat dir name)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let record_equal (a : Layout.record) (b : Layout.record) =
  a.Layout.graph6 = b.Layout.graph6
  && Interval.equal a.Layout.bcg b.Layout.bcg
  &&
  match (a.Layout.ucg, b.Layout.ucg) with
  | None, None -> true
  | Some x, Some y -> Interval.Union.equal x y
  | _ -> false

(* --- mmap reader -------------------------------------------------------- *)

(* every record served off the mapping equals the heap-loaded one, and
   the header agrees field-for-field *)
let test_mmap_record_parity () =
  with_store ~chunk:4 5 (fun path ->
      let idx = Index.load ~path in
      let m = Mmap_reader.open_store ~path () in
      check_int "length" (Index.length idx) (Mmap_reader.length m);
      check_int "n" (Index.n idx) (Mmap_reader.n m);
      check_bool "content" true (Index.content idx = Mmap_reader.content m);
      check_string "game" (Index.game idx) (Mmap_reader.game m);
      let entries = Index.entries idx in
      Array.iteri
        (fun i r ->
          check_bool
            (Printf.sprintf "record %d" i)
            true
            (record_equal r (Mmap_reader.record m i));
          check_string "graph6 accessor" r.Layout.graph6 (Mmap_reader.graph6 m i))
        entries;
      (* iter visits the same records in the same order *)
      let seen = ref [] in
      Mmap_reader.iter m (fun i r -> seen := (i, r.Layout.graph6) :: !seen);
      check_int "iter count" (Array.length entries) (List.length !seen);
      List.iter
        (fun (i, g6) -> check_string "iter order" entries.(i).Layout.graph6 g6)
        !seen;
      check_bool "oob low" true
        (match Mmap_reader.record m (-1) with exception Invalid_argument _ -> true | _ -> false);
      check_bool "oob high" true
        (match Mmap_reader.record m (Mmap_reader.length m) with
        | exception Invalid_argument _ -> true
        | _ -> false);
      Mmap_reader.close m)

(* a shard directory maps volume-by-volume and serves the merged view *)
let test_mmap_shard_directory () =
  with_temp_dir (fun dir ->
      List.iter
        (fun j ->
          let path = Filename.concat dir (Printf.sprintf "shard_%02d_of_03.nfs" j) in
          ignore (Build.build ~shard:(j, 3) ~chunk:4 ~path ~n:5 ()))
        [ 1; 2; 3 ];
      let idx = Index.load ~path:dir in
      let m = Mmap_reader.open_store ~path:dir () in
      check_int "volumes" 3 (List.length (Mmap_reader.volumes m));
      check_int "length" (Index.length idx) (Mmap_reader.length m);
      check_bool "merged header unsharded" true
        ((Mmap_reader.header m).Layout.shard = None);
      Array.iteri
        (fun i r ->
          check_bool (Printf.sprintf "record %d" i) true (record_equal r (Mmap_reader.record m i)))
        (Index.entries idx);
      Mmap_reader.close m)

(* the decoded-chunk cache honors its bound; iter bypasses it *)
let test_mmap_cache_bound () =
  with_store ~chunk:4 5 (fun path ->
      let m = Mmap_reader.open_store ~cache_chunks:2 ~path () in
      for i = 0 to Mmap_reader.length m - 1 do
        ignore (Mmap_reader.record m i);
        check_bool "bound" true (Mmap_reader.cached_chunks m <= 2)
      done;
      check_bool "cache in use" true (Mmap_reader.cached_chunks m > 0);
      Mmap_reader.close m;
      check_int "close drops cache" 0 (Mmap_reader.cached_chunks m);
      let uncached = Mmap_reader.open_store ~cache_chunks:0 ~path () in
      for i = 0 to Mmap_reader.length uncached - 1 do
        ignore (Mmap_reader.record uncached i)
      done;
      check_int "cache disabled" 0 (Mmap_reader.cached_chunks uncached);
      let streaming = Mmap_reader.open_store ~path () in
      Mmap_reader.iter streaming (fun _ _ -> ());
      check_int "iter bypasses cache" 0 (Mmap_reader.cached_chunks streaming))

(* a damaged chunk body maps fine, fails loudly on first decode, and
   leaves every other chunk serving *)
let test_mmap_corruption_isolated () =
  with_store ~chunk:4 5 (fun path ->
      let bytes = read_file path in
      let at = Layout.header_size + Layout.chunk_header_size + 2 in
      let damaged = Bytes.of_string bytes in
      Bytes.set damaged at (Char.chr (Char.code (Bytes.get damaged at) lxor 0x40));
      write_file path (Bytes.to_string damaged);
      let m = Mmap_reader.open_store ~path () in
      check_bool "chunk 0 corrupt on access" true
        (match Mmap_reader.record m 0 with exception Layout.Corrupt _ -> true | _ -> false);
      (* the last record lives in the last chunk, untouched by the flip *)
      let last = Mmap_reader.length m - 1 in
      check_bool "last chunk still serves" true
        (String.length (Mmap_reader.graph6 m last) > 0);
      Mmap_reader.close m)

(* open-time framing validation: a truncated tail is refused outright *)
let test_mmap_truncation_refused () =
  with_store ~chunk:4 5 (fun path ->
      let bytes = read_file path in
      write_file path (String.sub bytes 0 (String.length bytes - 7));
      check_bool "truncated store refused" true
        (match Mmap_reader.open_store ~path () with
        | exception Layout.Corrupt _ -> true
        | m ->
          Mmap_reader.close m;
          false))

(* --- α-interval index --------------------------------------------------- *)

let ep r = Interval.Finite r

(* hand-picked regions exercising every endpoint shape: closed/open on
   either side, points, rays, unions, empties *)
let unit_pieces =
  [|
    [ Interval.closed (Rat.of_int 1) (Rat.of_int 2) ];
    [ Interval.make ~lo:(ep Rat.one) ~lo_closed:false ~hi:(ep (Rat.of_int 2)) ~hi_closed:false ];
    [ Interval.point (Rat.make 3 2) ];
    [ Interval.make ~lo:Interval.Neg_inf ~lo_closed:false ~hi:(ep Rat.one) ~hi_closed:true ];
    [ Interval.make ~lo:(ep (Rat.of_int 2)) ~lo_closed:true ~hi:Interval.Pos_inf ~hi_closed:false ];
    [];
    [ Interval.open_closed Rat.zero (ep Rat.one); Interval.closed (Rat.of_int 2) (Rat.of_int 3) ];
    [ Interval.empty ];
    [ Interval.full ];
  |]

let naive_stable_at pieces ~alpha =
  let hit ps = List.exists (fun p -> Interval.mem alpha p) ps in
  Array.to_list pieces
  |> List.mapi (fun i ps -> (i, ps))
  |> List.filter_map (fun (i, ps) -> if hit ps then Some i else None)

(* probe set for a piece array: every distinct endpoint exactly, points
   just off each endpoint, midpoints of consecutive endpoints, and a
   point beyond each end of the line *)
let probes_of_endpoints eps =
  let eps = Array.to_list eps in
  let nudge = Rat.make 1 1000003 in
  let near e = [ Rat.sub e nudge; e; Rat.add e nudge ] in
  let rec mids = function
    | a :: (b :: _ as rest) -> Rat.div (Rat.add a b) (Rat.of_int 2) :: mids rest
    | _ -> []
  in
  let outer =
    match eps with
    | [] -> [ Rat.zero ]
    | first :: _ ->
      let last = List.nth eps (List.length eps - 1) in
      [ Rat.sub first Rat.one; Rat.add last Rat.one ]
  in
  List.concat_map near eps @ mids eps @ outer

let test_alpha_index_unit () =
  let idx = Alpha_index.build ~count:(Array.length unit_pieces) ~pieces:(Array.get unit_pieces) in
  check_int "records" (Array.length unit_pieces) (Alpha_index.records idx);
  let probes = probes_of_endpoints (Alpha_index.endpoints idx) in
  check_bool "probes cover the endpoints" true (List.length probes > 10);
  List.iter
    (fun alpha ->
      check_ids
        (Printf.sprintf "stable at %s" (Rat.to_string alpha))
        (naive_stable_at unit_pieces ~alpha)
        (Alpha_index.stable_at idx ~alpha))
    probes

let qcheck test = QCheck_alcotest.to_alcotest test

let arb_rat =
  QCheck.map
    (fun (p, q) -> Rat.make p (1 + abs q))
    QCheck.(pair (int_range (-60) 60) (int_range 0 12))

let arb_interval =
  QCheck.map
    (fun ((a, b), (lc, hc, shape)) ->
      match shape mod 5 with
      | 0 -> Interval.make ~lo:(ep (Rat.min a b)) ~lo_closed:lc ~hi:(ep (Rat.max a b)) ~hi_closed:hc
      | 1 -> Interval.make ~lo:Interval.Neg_inf ~lo_closed:false ~hi:(ep a) ~hi_closed:hc
      | 2 -> Interval.make ~lo:(ep a) ~lo_closed:lc ~hi:Interval.Pos_inf ~hi_closed:false
      | 3 -> Interval.point a
      | _ -> Interval.empty)
    QCheck.(pair (pair arb_rat arb_rat) (triple bool bool small_nat))

let prop_alpha_index_matches_naive =
  QCheck.Test.make ~count:200 ~name:"alpha index = naive filter on random regions"
    QCheck.(small_list (small_list arb_interval))
    (fun regions ->
      let pieces = Array.of_list regions in
      let idx = Alpha_index.build ~count:(Array.length pieces) ~pieces:(Array.get pieces) in
      List.for_all
        (fun alpha -> naive_stable_at pieces ~alpha = Alpha_index.stable_at idx ~alpha)
        (probes_of_endpoints (Alpha_index.endpoints idx)))

(* --- satellite 3: boundary differential, every registered game ---------- *)

(* at every distinct region endpoint (exactly), between consecutive
   endpoints, and outside the endpoint span, three independent answers
   must agree: the α-interval index, Nf_store.Query on the same store,
   and a fresh Equilibria sweep *)
let test_boundary_differential () =
  List.iter
    (fun game_name ->
      with_store ~game:game_name ~chunk:8 5 (fun path ->
          let idx = Index.load ~path in
          let service = Service.create ~path () in
          let packed = Netform.Game_registry.find_exn game_name in
          (* the store's own distinct finite region endpoints, exactly *)
          let endpoints =
            let eps = ref [] in
            Array.iter
              (fun (r : Layout.record) ->
                let pieces =
                  match r.Layout.ucg with
                  | Some u -> Interval.Union.to_list u
                  | None -> [ r.Layout.bcg ]
                in
                List.iter
                  (fun p ->
                    match Interval.bounds p with
                    | None -> ()
                    | Some (lo, _, hi, _) ->
                      List.iter
                        (function Interval.Finite e -> eps := e :: !eps | _ -> ())
                        [ lo; hi ])
                  pieces)
              (Index.entries idx);
            Array.of_list (List.sort_uniq Rat.compare !eps)
          in
          check_bool (game_name ^ " has finite endpoints") true (Array.length endpoints > 0);
          List.iter
            (fun alpha ->
              let served = Service.stable_ids service ~game:game_name ~alpha in
              let queried = Query.game_entries idx ~game:game_name ~alpha in
              check_ids
                (Printf.sprintf "%s ids at %s" game_name (Rat.to_string alpha))
                queried served;
              let fresh =
                List.map Graph6.encode
                  (Nf_analysis.Equilibria.stable_graphs_packed packed ~n:5 ~alpha)
              in
              check_strings
                (Printf.sprintf "%s graphs at %s" game_name (Rat.to_string alpha))
                fresh
                (Service.stable_graph6 service ~game:game_name ~alpha))
            (probes_of_endpoints endpoints)))
    (Netform.Game_registry.names ())

(* --- service ------------------------------------------------------------ *)

let test_service_query_parity () =
  with_store ~chunk:4 5 (fun path ->
      let idx = Index.load ~path in
      let s = Service.create ~path () in
      check_string "default game" "bcg" (Service.default_game s);
      List.iter
        (fun alpha ->
          List.iter
            (fun game ->
              check_ids
                (Printf.sprintf "%s at %s" game (Rat.to_string alpha))
                (Query.game_entries idx ~game ~alpha)
                (Service.stable_ids s ~game ~alpha))
            [ "bcg"; "ucg" ])
        [ Rat.make 1 2; Rat.one; Rat.make 3 2; Rat.of_int 2; Rat.of_int 5 ];
      (* the rejection text matches Query.game_entries' own *)
      let rejection f =
        match f () with
        | exception Invalid_argument msg -> msg
        | _ -> "no rejection"
      in
      check_string "unknown game rejection"
        (rejection (fun () -> Query.game_entries idx ~game:"transfers" ~alpha:Rat.one))
        (rejection (fun () -> Service.stable_ids s ~game:"transfers" ~alpha:Rat.one));
      (* figures and export byte parity, and the figure cache *)
      check_string "figure csv"
        (Nf_analysis.Figures.to_csv (Query.figure_points idx ()))
        (Service.figure_csv s ());
      let stats0 = Service.stats s in
      check_string "figure csv (cached)"
        (Nf_analysis.Figures.to_csv (Query.figure_points idx ()))
        (Service.figure_csv s ());
      let stats1 = Service.stats s in
      check_int "cache hit counted" (stats0.Service.figure_cache_hits + 1)
        stats1.Service.figure_cache_hits;
      check_string "export csv" (Query.to_csv idx) (Service.export_csv s);
      (* entry lookup round-trips every stored graph6 *)
      Array.iteri
        (fun i (r : Layout.record) ->
          match Service.find_entry s ~graph6:r.Layout.graph6 with
          | Some (j, r') ->
            check_int "entry ordinal" i j;
            check_bool "entry record" true (record_equal r r')
          | None -> Alcotest.fail "entry not found")
        (Index.entries idx);
      check_bool "missing entry" true (Service.find_entry s ~graph6:"~~~~" = None))

let test_service_game_store_figures () =
  with_store ~game:"transfers" ~chunk:8 5 (fun path ->
      let idx = Index.load ~path in
      let s = Service.create ~path () in
      check_string "default game" "transfers" (Service.default_game s);
      check_string "game figure csv"
        (Nf_analysis.Figures.game_csv (Query.game_figure_points idx ()))
        (Service.figure_csv s ()))

(* --- protocol ----------------------------------------------------------- *)

let roundtrip req =
  match Protocol.request_of_json (Protocol.request_to_json req) with
  | Ok req' -> req' = req
  | Error _ -> false

let test_protocol_roundtrip () =
  List.iter
    (fun req -> check_bool "roundtrip" true (roundtrip req))
    [
      Protocol.Stable_at { game = None; alpha = Rat.make 3 2 };
      Protocol.Stable_at { game = Some "ucg"; alpha = Rat.make (-7) 3 };
      Protocol.Entry { graph6 = "DQc" };
      Protocol.Figure_points { grid = None };
      Protocol.Figure_points { grid = Some [ Rat.one; Rat.make 5 4 ] };
      Protocol.Export;
      Protocol.Stats;
      Protocol.Health;
      Protocol.Shutdown;
    ]

let test_protocol_errors () =
  let bad line =
    match Protocol.request_of_line line with Ok _ -> false | Error _ -> true
  in
  check_bool "not json" true (bad "nonsense");
  check_bool "not an object" true (bad "[1,2]");
  check_bool "missing op" true (bad {|{"alpha":"1"}|});
  check_bool "unknown op" true (bad {|{"op":"frobnicate"}|});
  check_bool "stable-at needs alpha" true (bad {|{"op":"stable-at"}|});
  check_bool "alpha must parse" true (bad {|{"op":"stable-at","alpha":"1/0"}|});
  check_bool "entry needs graph6" true (bad {|{"op":"entry"}|});
  let ok line = match Protocol.request_of_line line with Ok r -> Some r | Error _ -> None in
  check_bool "exact rational alpha" true
    (ok {|{"op":"stable-at","alpha":"22/7"}|}
    = Some (Protocol.Stable_at { game = None; alpha = Rat.make 22 7 }));
  let resp = Protocol.error_response "boom" in
  check_bool "error response" true ((not (Protocol.response_ok resp)) && Protocol.response_error resp = "boom");
  check_bool "ok response" true (Protocol.response_ok (Protocol.ok_response [ ("op", Json.Str "health") ]))

let test_json_roundtrip () =
  List.iter
    (fun s -> check_string "parse/print" s (Json.to_string (Json.of_string s)))
    [
      {|null|};
      {|true|};
      {|-42|};
      {|"a\"b\\c\nd"|};
      {|[1,2,[3,{"k":"v"}]]|};
      {|{"ok":true,"graphs":["DQc","D]w"],"count":2}|};
    ];
  check_bool "parse error raised" true
    (match Json.of_string "{" with exception Json.Parse_error _ -> true | _ -> false);
  check_bool "trailing bytes rejected" true
    (match Json.of_string "1 x" with exception Json.Parse_error _ -> true | _ -> false);
  (* escapes and unicode survive a round trip through the printer *)
  let v = Json.Obj [ ("s", Json.Str "tab\there\nand \xe2\x88\x9e") ] in
  check_bool "reparse" true (Json.of_string (Json.to_string v) = v)

(* --- daemon end-to-end --------------------------------------------------- *)

let wait_for_socket path =
  let rec go tries =
    if tries = 0 then Alcotest.fail (Printf.sprintf "socket %s never appeared" path)
    else if Sys.file_exists path then ()
    else begin
      Unix.sleepf 0.05;
      go (tries - 1)
    end
  in
  go 200

let expect_str resp field =
  match Option.bind (Json.member field resp) Json.to_str with
  | Some s -> s
  | None -> Alcotest.fail (Printf.sprintf "response lacks string %S" field)

let expect_strings resp field =
  match Option.bind (Json.member field resp) Json.to_list with
  | Some l -> List.filter_map Json.to_str l
  | None -> Alcotest.fail (Printf.sprintf "response lacks list %S" field)

let test_daemon_end_to_end () =
  with_store ~chunk:4 5 (fun path ->
      let sock = Filename.temp_file "nf_serve_sock" ".sock" in
      Sys.remove sock;
      let server =
        Domain.spawn (fun () ->
            Server.serve ~report:ignore ~addr:(Server.Unix_socket sock) ~path ())
      in
      Fun.protect
        ~finally:(fun () ->
          (* belt and braces: if an assertion failed mid-test, still ask
             the daemon down so the domain can be joined *)
          (try
             let c = Client.connect sock in
             ignore (Client.request c Protocol.Shutdown);
             Client.close c
           with _ -> ());
          (try Domain.join server with _ -> ());
          if Sys.file_exists sock then Sys.remove sock)
        (fun () ->
          wait_for_socket sock;
          let idx = Index.load ~path in
          (* four concurrent connections, used interleaved *)
          let clients = List.init 4 (fun _ -> Client.connect sock) in
          let alphas = [ Rat.make 1 2; Rat.one; Rat.make 3 2; Rat.of_int 2 ] in
          List.iteri
            (fun i c ->
              let alpha = List.nth alphas i in
              let resp = Client.request c (Protocol.Stable_at { game = None; alpha }) in
              check_bool "ok" true (Protocol.response_ok resp);
              check_strings
                (Printf.sprintf "stable at %s over the wire" (Rat.to_string alpha))
                (List.map Graph6.encode (Query.game_stable_graphs idx ~game:"bcg" ~alpha))
                (expect_strings resp "graphs"))
            clients;
          (* the same connections again, out of the order they were opened *)
          List.iteri
            (fun i c ->
              let resp = Client.request c Protocol.Health in
              check_bool "health ok" true (Protocol.response_ok resp);
              check_string (Printf.sprintf "health %d" i) "serving" (expect_str resp "status"))
            (List.rev clients);
          let c0 = List.hd clients in
          let fig = Client.request c0 (Protocol.Figure_points { grid = None }) in
          check_string "figures over the wire"
            (Nf_analysis.Figures.to_csv (Query.figure_points idx ()))
            (expect_str fig "csv");
          let exp = Client.request c0 Protocol.Export in
          check_string "export over the wire" (Query.to_csv idx) (expect_str exp "csv");
          let entry_g6 = (Index.entries idx).(3).Layout.graph6 in
          let ent = Client.request c0 (Protocol.Entry { graph6 = entry_g6 }) in
          check_string "entry graph6" entry_g6 (expect_str ent "graph6");
          (match Json.member "id" ent with
          | Some (Json.Int 3) -> ()
          | _ -> Alcotest.fail "entry id mismatch");
          let missing = Client.request c0 (Protocol.Entry { graph6 = "~~~~" }) in
          check_bool "missing entry is an error" true (not (Protocol.response_ok missing));
          (* a malformed line answers an error and keeps the connection *)
          let bad = Client.request_raw c0 "this is not json" in
          check_bool "malformed line" true (not (Protocol.response_ok bad));
          let again = Client.request c0 Protocol.Health in
          check_bool "connection survives" true (Protocol.response_ok again);
          let stats = Client.request c0 Protocol.Stats in
          check_bool "stats ok" true (Protocol.response_ok stats);
          check_bool "stats counts requests" true
            (match Json.member "requests" stats with Some (Json.Int r) -> r > 0 | _ -> false);
          (* shutdown: acknowledged, then the daemon drains and exits *)
          let down = Client.request c0 Protocol.Shutdown in
          check_string "shutdown acknowledged" "shutting-down" (expect_str down "status");
          List.iter Client.close clients;
          Domain.join server;
          check_bool "socket removed" true (not (Sys.file_exists sock))))

(* SIGTERM reaches the serve loop's handler and produces the same clean
   drain as the shutdown op *)
let test_daemon_sigterm () =
  with_store ~chunk:4 5 (fun path ->
      let sock = Filename.temp_file "nf_serve_sock" ".sock" in
      Sys.remove sock;
      let server =
        Domain.spawn (fun () ->
            Server.serve ~report:ignore ~addr:(Server.Unix_socket sock) ~path ())
      in
      wait_for_socket sock;
      let c = Client.connect sock in
      check_bool "serving" true (Protocol.response_ok (Client.request c Protocol.Health));
      Client.close c;
      Unix.kill (Unix.getpid ()) Sys.sigterm;
      Domain.join server;
      check_bool "socket removed" true (not (Sys.file_exists sock)))

(* --- runner -------------------------------------------------------------- *)

let () =
  Alcotest.run "nf_serve"
    [
      ( "mmap",
        [
          Alcotest.test_case "record parity" `Quick test_mmap_record_parity;
          Alcotest.test_case "shard directory" `Quick test_mmap_shard_directory;
          Alcotest.test_case "cache bound" `Quick test_mmap_cache_bound;
          Alcotest.test_case "corruption isolated" `Quick test_mmap_corruption_isolated;
          Alcotest.test_case "truncation refused" `Quick test_mmap_truncation_refused;
        ] );
      ( "alpha index",
        [
          Alcotest.test_case "unit regions" `Quick test_alpha_index_unit;
          qcheck prop_alpha_index_matches_naive;
          Alcotest.test_case "boundary differential" `Quick test_boundary_differential;
        ] );
      ( "service",
        [
          Alcotest.test_case "query parity" `Quick test_service_query_parity;
          Alcotest.test_case "game store figures" `Quick test_service_game_store_figures;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "request roundtrip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "request errors" `Quick test_protocol_errors;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "end to end" `Quick test_daemon_end_to_end;
          Alcotest.test_case "sigterm" `Quick test_daemon_sigterm;
        ] );
    ]
