(* Tests for costs, efficiency (Lemmas 4-5), the eq. (5) bound, and the
   price of anarchy plumbing. *)

open Netform
module Graph = Nf_graph.Graph
module Families = Nf_named.Families
module Rat = Nf_util.Rat

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let fl = Alcotest.float 1e-9

(* ---------------- Cost ---------------- *)

let test_player_cost () =
  let g = Families.star 5 in
  (* center: 4 links at α, distance 4 *)
  check fl "center" (4. +. (4. *. 1.5)) (Cost.player_cost ~alpha:1.5 g 0);
  (* leaf: 1 link, distance 1 + 3*2 = 7 *)
  check fl "leaf" (7. +. 1.5) (Cost.player_cost ~alpha:1.5 g 1);
  check_bool "disconnected infinite" true
    (Cost.player_cost ~alpha:1.0 (Graph.empty 3) 0 = infinity)

let test_social_cost () =
  let g = Families.star 5 in
  (* BCG: 2α·4 + 2(n-1)^2 = 8α + 32 *)
  check fl "bcg" (8. +. 32.) (Cost.social_cost Cost.Bcg ~alpha:1.0 g);
  check fl "ucg" (4. +. 32.) (Cost.social_cost Cost.Ucg ~alpha:1.0 g);
  (* social cost is the sum of player costs (BCG) *)
  let total = List.init 5 (Cost.player_cost ~alpha:1.0 g) |> List.fold_left ( +. ) 0. in
  check fl "sum of players" total (Cost.social_cost Cost.Bcg ~alpha:1.0 g)

let test_eq5_bound () =
  (* the bound holds with equality exactly on diameter-<=2 graphs *)
  Nf_enum.Labeled.iter_connected 5 (fun g ->
      let alpha = 1.75 in
      let bound = Cost.social_cost_lower_bound ~alpha 5 (Graph.size g) in
      let cost = Cost.social_cost Cost.Bcg ~alpha g in
      check_bool "bound holds" true (cost >= bound -. 1e-9);
      check_bool "tight iff diameter <= 2"
        (Nf_graph.Props.has_diameter_at_most g 2)
        (Cost.is_social_cost_bound_tight ~alpha g))

(* ---------------- Efficiency ---------------- *)

let test_formula_vs_enumeration () =
  List.iter
    (fun game ->
      List.iter
        (fun alpha ->
          for n = 2 to 5 do
            check fl
              (Printf.sprintf "optimum n=%d alpha=%.2f" n alpha)
              (Efficiency.optimal_social_cost_enumerated game ~alpha n)
              (Efficiency.optimal_social_cost game ~alpha n)
          done)
        [ 0.25; 0.5; 1.0; 1.5; 2.0; 3.0; 6.0 ])
    [ Cost.Bcg; Cost.Ucg ]

let test_efficient_graphs () =
  (* BCG: complete below 1, star above 1, both at 1 *)
  let is_star g = Nf_graph.Props.is_star g in
  let is_complete g = Graph.is_complete g in
  (match Efficiency.efficient_graphs Cost.Bcg ~alpha:0.5 6 with
  | [ g ] -> check_bool "complete below" true (is_complete g)
  | _ -> Alcotest.fail "expected one optimizer");
  (match Efficiency.efficient_graphs Cost.Bcg ~alpha:2.0 6 with
  | [ g ] -> check_bool "star above" true (is_star g)
  | _ -> Alcotest.fail "expected one optimizer");
  check Alcotest.int "both at threshold" 2
    (List.length (Efficiency.efficient_graphs Cost.Bcg ~alpha:1.0 6));
  (* UCG threshold is 2 *)
  (match Efficiency.efficient_graphs Cost.Ucg ~alpha:1.5 6 with
  | [ g ] -> check_bool "ucg complete below 2" true (is_complete g)
  | _ -> Alcotest.fail "expected one optimizer");
  List.iter
    (fun g -> check_bool "optimizers are efficient" true (Efficiency.is_efficient Cost.Bcg ~alpha:1.0 g))
    (Efficiency.efficient_graphs Cost.Bcg ~alpha:1.0 6)

let test_lemma4 () =
  (* α < 1: the complete graph is the unique efficient and unique pairwise
     stable connected graph (checked exhaustively at n = 5) *)
  let alpha_f = 0.75
  and alpha = Rat.make 3 4 in
  let efficient = ref []
  and stable = ref [] in
  Nf_enum.Unlabeled.iter_connected 5 (fun g ->
      if Efficiency.is_efficient Cost.Bcg ~alpha:alpha_f g then efficient := g :: !efficient;
      if Bcg.is_pairwise_stable ~alpha g then stable := g :: !stable);
  check Alcotest.int "one efficient" 1 (List.length !efficient);
  check Alcotest.int "one stable" 1 (List.length !stable);
  check_bool "efficient is complete" true (Graph.is_complete (List.hd !efficient));
  check_bool "stable is complete" true (Graph.is_complete (List.hd !stable))

let test_lemma5 () =
  (* α > 1: the star is the unique efficient graph; it is pairwise stable
     but not the unique stable graph *)
  let alpha_f = 3.0
  and alpha = Rat.of_int 3 in
  let efficient = ref []
  and stable = ref [] in
  Nf_enum.Unlabeled.iter_connected 6 (fun g ->
      if Efficiency.is_efficient Cost.Bcg ~alpha:alpha_f g then efficient := g :: !efficient;
      if Bcg.is_pairwise_stable ~alpha g then stable := g :: !stable);
  check Alcotest.int "one efficient" 1 (List.length !efficient);
  check_bool "efficient is star" true (Nf_graph.Props.is_star (List.hd !efficient));
  check_bool "star among stable" true (List.exists Nf_graph.Props.is_star !stable);
  check_bool "stable not unique" true (List.length !stable > 1)

(* ---------------- Poa ---------------- *)

let test_poa_values () =
  (* the efficient graph has ρ = 1 *)
  check fl "star optimal at alpha 2" 1.0
    (Poa.price_of_anarchy Cost.Bcg ~alpha:2.0 (Families.star 6));
  check fl "complete optimal at alpha 1/2" 1.0
    (Poa.price_of_anarchy Cost.Bcg ~alpha:0.5 (Families.complete 6));
  check_bool "non-optimal above 1" true
    (Poa.price_of_anarchy Cost.Bcg ~alpha:2.0 (Families.path 6) > 1.0);
  check_bool "disconnected infinite" true
    (Poa.price_of_anarchy Cost.Bcg ~alpha:2.0 (Graph.empty 5) = infinity)

let test_poa_summary () =
  let graphs = [ Families.star 6; Families.path 6; Families.cycle 6 ] in
  let s = Poa.summarize Cost.Bcg ~alpha:2.0 graphs in
  check Alcotest.int "count" 3 s.Poa.count;
  check fl "best is star" 1.0 s.Poa.best;
  check_bool "worst >= average" true (s.Poa.worst >= s.Poa.average);
  check fl "avg links" (float_of_int (5 + 5 + 6) /. 3.) s.Poa.average_links;
  let empty = Poa.summarize Cost.Bcg ~alpha:2.0 [] in
  check Alcotest.int "empty count" 0 empty.Poa.count;
  check_bool "empty nan" true (Float.is_nan empty.Poa.average)

(* ---------------- Theory ---------------- *)

let test_theory_formulas () =
  (* Lemma 6 window for n=6 (= 4k-2): ((36-24+4)/8, 6*4/4) = (2, 6) *)
  let lo, hi = Theory.cycle_window 6 in
  check_bool "C6 window lo" true (Rat.equal lo (Rat.of_int 2));
  check_bool "C6 window hi" true (Rat.equal hi (Rat.of_int 6));
  (* n=8 (= 4k): ((64-32+8)/8, 8*6/4) = (5, 12) *)
  let lo8, hi8 = Theory.cycle_window 8 in
  check_bool "C8 window lo" true (Rat.equal lo8 (Rat.of_int 5));
  check_bool "C8 window hi" true (Rat.equal hi8 (Rat.of_int 12));
  (* odd n=7: ((7-3)(7+1)/8, (8)(6)/4) = (4, 12) *)
  let lo7, hi7 = Theory.cycle_window 7 in
  check_bool "C7 window lo" true (Rat.equal lo7 (Rat.of_int 4));
  check_bool "C7 window hi" true (Rat.equal hi7 (Rat.of_int 12));
  (* S_r/S_a for cubic girth-6: S_r = 4·5+8·4+16·3 = 100, S_a = 4·5 = 20 *)
  check Alcotest.int "S_r" 100 (Theory.regular_removal_increase ~k:3 ~girth:6);
  check Alcotest.int "S_a" 20 (Theory.regular_addition_decrease ~k:3 ~girth:6);
  check fl "upper bound sqrt regime" 2.0 (Theory.poa_upper_bound ~alpha:4.0 ~n:100);
  (* the n/√α branch binds once α > n² *)
  check fl "upper bound n/sqrt regime" (6. /. 7.) (Theory.poa_upper_bound ~alpha:49.0 ~n:6);
  check fl "lower bound curve" 3.0 (Theory.poa_lower_bound_moore ~alpha:8.0);
  check fl "diameter bound" 6.0 (Theory.bcg_diameter_bound ~alpha:9.0)

let test_prop4_diameter_on_stable_graphs () =
  (* From the proof of Prop 4: pairwise stable graphs have diameter O(√α).
     The literal strict "d < 2√α" fails at integer boundary ties (the star
     at α=1 has d = 2√α exactly; P4 at α=2 has d=3 > 2√2): the bilateral
     improvement at distance d is only *weakly* profitable there.  The
     argument survives with one extra hop of slack: d < 2√α + 1. *)
  let alphas = [ Rat.one; Rat.of_int 2; Rat.of_int 4; Rat.of_int 9 ] in
  Nf_enum.Unlabeled.iter_connected 6 (fun g ->
      List.iter
        (fun alpha ->
          if Bcg.is_pairwise_stable ~alpha g then
            match Nf_graph.Apsp.diameter g with
            | Nf_util.Ext_int.Fin d ->
              check_bool "diameter < 2 sqrt alpha + 1" true
                (float_of_int d
                < Theory.bcg_diameter_bound ~alpha:(Rat.to_float alpha) +. 1.0 +. 1e-9)
            | Nf_util.Ext_int.Inf -> Alcotest.fail "stable graph disconnected")
        alphas)

let () =
  Alcotest.run "netform_efficiency"
    [
      ( "cost",
        [
          Alcotest.test_case "player cost" `Quick test_player_cost;
          Alcotest.test_case "social cost" `Quick test_social_cost;
          Alcotest.test_case "eq5 bound" `Quick test_eq5_bound;
        ] );
      ( "efficiency",
        [
          Alcotest.test_case "formula vs enumeration" `Slow test_formula_vs_enumeration;
          Alcotest.test_case "efficient graphs" `Quick test_efficient_graphs;
          Alcotest.test_case "lemma 4" `Quick test_lemma4;
          Alcotest.test_case "lemma 5" `Quick test_lemma5;
        ] );
      ( "poa",
        [
          Alcotest.test_case "values" `Quick test_poa_values;
          Alcotest.test_case "summary" `Quick test_poa_summary;
        ] );
      ( "theory",
        [
          Alcotest.test_case "formulas" `Quick test_theory_formulas;
          Alcotest.test_case "prop4 diameter" `Quick test_prop4_diameter_on_stable_graphs;
        ] );
    ]
