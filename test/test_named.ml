(* Tests for nf_named: every gallery graph's textbook invariants, the
   parametric families, Moore bounds. *)

module Graph = Nf_graph.Graph
module Props = Nf_graph.Props
module Apsp = Nf_graph.Apsp
module Girth = Nf_graph.Girth
module Connectivity = Nf_graph.Connectivity
module Ext_int = Nf_util.Ext_int
open Nf_named

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let ext = Alcotest.testable Ext_int.pp Ext_int.equal
let srg = Alcotest.(option (pair (pair int int) (pair int int)))
let srg_of g = Option.map (fun (a, b, c, d) -> ((a, b), (c, d))) (Props.strongly_regular_params g)

(* ---------------- families ---------------- *)

let test_complete () =
  check_int "K6 size" 15 (Graph.size (Families.complete 6));
  check ext "K6 diameter" (Ext_int.Fin 1) (Apsp.diameter (Families.complete 6))

let test_cycle_path_star () =
  check_bool "cycle" true (Props.is_cycle (Families.cycle 9));
  check_bool "path" true (Props.is_path (Families.path 9));
  check_bool "star" true (Props.is_star (Families.star 9));
  check ext "c9 girth" (Ext_int.Fin 9) (Girth.girth (Families.cycle 9));
  Alcotest.check_raises "cycle too small" (Invalid_argument "Families.cycle: need n >= 3")
    (fun () -> ignore (Families.cycle 2))

let test_wheel () =
  let w = Families.wheel 7 in
  check_int "order" 7 (Graph.order w);
  check_int "size" 12 (Graph.size w);
  check_int "hub degree" 6 (Graph.degree w 0);
  check ext "diameter" (Ext_int.Fin 2) (Apsp.diameter w)

let test_complete_bipartite () =
  let g = Families.complete_bipartite 3 4 in
  check_int "size" 12 (Graph.size g);
  check_bool "bipartite" true (Props.is_bipartite g);
  check ext "girth 4" (Ext_int.Fin 4) (Girth.girth g)

let test_hypercube () =
  let q3 = Families.hypercube 3 in
  check_int "Q3 order" 8 (Graph.order q3);
  check_int "Q3 size" 12 (Graph.size q3);
  check (Alcotest.option Alcotest.int) "Q3 cubic" (Some 3) (Props.regularity q3);
  check ext "Q3 diameter" (Ext_int.Fin 3) (Apsp.diameter q3);
  check ext "Q4 girth" (Ext_int.Fin 4) (Girth.girth (Families.hypercube 4))

let test_circulant () =
  let g = Families.circulant 8 [ 1; 2 ] in
  check (Alcotest.option Alcotest.int) "4-regular" (Some 4) (Props.regularity g);
  check_int "size" 16 (Graph.size g);
  (* offset n/2 gives a perfect matching contribution *)
  let m = Families.circulant 6 [ 3 ] in
  check_int "matching size" 3 (Graph.size m)

let test_generalized_petersen () =
  let gp = Families.generalized_petersen 7 2 in
  check_int "order" 14 (Graph.order gp);
  check (Alcotest.option Alcotest.int) "cubic" (Some 3) (Props.regularity gp);
  Alcotest.check_raises "GP(6,3) rejected"
    (Invalid_argument "Families.generalized_petersen: bad parameters") (fun () ->
      ignore (Families.generalized_petersen 6 3))

(* ---------------- gallery ---------------- *)

let test_petersen () =
  let g = Gallery.petersen in
  check srg "srg(10,3,0,1)" (Some ((10, 3), (0, 1))) (srg_of g);
  check ext "girth 5" (Ext_int.Fin 5) (Girth.girth g);
  check ext "diameter 2" (Ext_int.Fin 2) (Apsp.diameter g);
  check_bool "moore" true (Moore.is_moore_graph g)

let test_mcgee () =
  let g = Gallery.mcgee in
  check_int "order 24" 24 (Graph.order g);
  check_int "size 36" 36 (Graph.size g);
  check (Alcotest.option Alcotest.int) "cubic" (Some 3) (Props.regularity g);
  check ext "girth 7" (Ext_int.Fin 7) (Girth.girth g);
  check ext "diameter 4" (Ext_int.Fin 4) (Apsp.diameter g);
  (* the (3,7) cage meets the girth Moore bound within the known excess:
     bound is 22, McGee has 24 *)
  check_int "cage bound" 22 (Moore.bound_girth 3 7)

let test_octahedron () =
  check srg "srg(6,4,2,4)" (Some ((6, 4), (2, 4))) (srg_of Gallery.octahedron);
  check ext "girth 3" (Ext_int.Fin 3) (Girth.girth Gallery.octahedron)

let test_clebsch () =
  let g = Gallery.clebsch in
  check srg "srg(16,5,0,2)" (Some ((16, 5), (0, 2))) (srg_of g);
  check ext "girth 4" (Ext_int.Fin 4) (Girth.girth g);
  check ext "diameter 2" (Ext_int.Fin 2) (Apsp.diameter g)

let test_hoffman_singleton () =
  let g = Gallery.hoffman_singleton in
  check_int "order 50" 50 (Graph.order g);
  check_int "size 175" 175 (Graph.size g);
  check srg "srg(50,7,0,1)" (Some ((50, 7), (0, 1))) (srg_of g);
  check ext "girth 5" (Ext_int.Fin 5) (Girth.girth g);
  check ext "diameter 2" (Ext_int.Fin 2) (Apsp.diameter g);
  check_bool "moore" true (Moore.is_moore_graph g)

let test_desargues () =
  let g = Gallery.desargues in
  check_int "order 20" 20 (Graph.order g);
  check_int "size 30" 30 (Graph.size g);
  check (Alcotest.option Alcotest.int) "cubic" (Some 3) (Props.regularity g);
  check ext "girth 6" (Ext_int.Fin 6) (Girth.girth g);
  check ext "diameter 5" (Ext_int.Fin 5) (Apsp.diameter g);
  check_bool "bipartite" true (Props.is_bipartite g)

let test_dodecahedron () =
  let g = Gallery.dodecahedron in
  check_int "order 20" 20 (Graph.order g);
  check_int "size 30" 30 (Graph.size g);
  check ext "girth 5" (Ext_int.Fin 5) (Girth.girth g);
  check ext "diameter 5" (Ext_int.Fin 5) (Apsp.diameter g);
  check_bool "not bipartite" false (Props.is_bipartite g)

let test_extra_cages () =
  let expect name ~order ~size ~girth ~diam ~bipartite =
    let g = List.assoc name Gallery.all in
    check_int (name ^ " order") order (Graph.order g);
    check_int (name ^ " size") size (Graph.size g);
    check (Alcotest.option Alcotest.int) (name ^ " cubic") (Some 3) (Props.regularity g);
    check ext (name ^ " girth") (Ext_int.Fin girth) (Girth.girth g);
    check ext (name ^ " diameter") (Ext_int.Fin diam) (Apsp.diameter g);
    check_bool (name ^ " bipartite") bipartite (Props.is_bipartite g)
  in
  expect "heawood" ~order:14 ~size:21 ~girth:6 ~diam:3 ~bipartite:true;
  expect "pappus" ~order:18 ~size:27 ~girth:6 ~diam:4 ~bipartite:true;
  expect "moebius-kantor" ~order:16 ~size:24 ~girth:6 ~diam:4 ~bipartite:true;
  expect "nauru" ~order:24 ~size:36 ~girth:6 ~diam:4 ~bipartite:true;
  expect "tutte-coxeter" ~order:30 ~size:45 ~girth:8 ~diam:4 ~bipartite:true;
  (* the two girth-Moore cages meet the cage bound exactly *)
  check_int "heawood meets (3,6) bound" 14 (Moore.bound_girth 3 6);
  check_int "tutte-coxeter meets (3,8) bound" 30 (Moore.bound_girth 3 8)

let test_all_connected () =
  List.iter
    (fun (name, g) ->
      check_bool (name ^ " connected") true (Connectivity.is_connected g))
    Gallery.all

(* ---------------- Moore bounds ---------------- *)

let test_moore_bounds () =
  check_int "diameter bound (3,2)" 10 (Moore.bound_diameter 3 2);
  check_int "diameter bound (7,2)" 50 (Moore.bound_diameter 7 2);
  check_int "diameter bound (57,2)" 3250 (Moore.bound_diameter 57 2);
  check_int "girth bound (3,5)" 10 (Moore.bound_girth 3 5);
  check_int "girth bound (7,5)" 50 (Moore.bound_girth 7 5);
  check_int "girth bound (3,6)" 14 (Moore.bound_girth 3 6);
  check_int "girth bound (3,8)" 30 (Moore.bound_girth 3 8)

let test_moore_ratio () =
  check (Alcotest.option (Alcotest.float 1e-9)) "petersen ratio 1"
    (Some 1.0) (Moore.moore_ratio Gallery.petersen);
  check_bool "star not regular" true (Moore.moore_ratio (Families.star 5) = None);
  check_bool "mcgee below 1" true
    (match Moore.moore_ratio Gallery.mcgee with
    | Some r -> r < 1.0
    | None -> false)

let () =
  Alcotest.run "nf_named"
    [
      ( "families",
        [
          Alcotest.test_case "complete" `Quick test_complete;
          Alcotest.test_case "cycle/path/star" `Quick test_cycle_path_star;
          Alcotest.test_case "wheel" `Quick test_wheel;
          Alcotest.test_case "complete bipartite" `Quick test_complete_bipartite;
          Alcotest.test_case "hypercube" `Quick test_hypercube;
          Alcotest.test_case "circulant" `Quick test_circulant;
          Alcotest.test_case "generalized petersen" `Quick test_generalized_petersen;
        ] );
      ( "gallery",
        [
          Alcotest.test_case "petersen" `Quick test_petersen;
          Alcotest.test_case "mcgee" `Quick test_mcgee;
          Alcotest.test_case "octahedron" `Quick test_octahedron;
          Alcotest.test_case "clebsch" `Quick test_clebsch;
          Alcotest.test_case "hoffman-singleton" `Quick test_hoffman_singleton;
          Alcotest.test_case "desargues" `Quick test_desargues;
          Alcotest.test_case "dodecahedron" `Quick test_dodecahedron;
          Alcotest.test_case "extra cages" `Quick test_extra_cages;
          Alcotest.test_case "all connected" `Quick test_all_connected;
        ] );
      ( "moore",
        [
          Alcotest.test_case "bounds" `Quick test_moore_bounds;
          Alcotest.test_case "ratio" `Quick test_moore_ratio;
        ] );
    ]
