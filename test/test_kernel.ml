(* Differential tests for the zero-allocation batched distance kernel:
   bit-parallel all-sources sums vs naive per-source BFS, toggle deltas vs
   persistent graph edits, workspace annotation vs the retained
   persistent-path references, Bfs.distance early exit, and the per-domain
   workspace borrow discipline — over seeded Prng random graphs including
   disconnected and edgeless ones. *)

module Graph = Nf_graph.Graph
module Bfs = Nf_graph.Bfs
module Apsp = Nf_graph.Apsp
module Kernel = Nf_graph.Kernel
module Random_graph = Nf_graph.Random_graph
module Bitset = Nf_util.Bitset
module Ext_int = Nf_util.Ext_int
module Rat = Nf_util.Rat
module Interval = Nf_util.Interval
module Prng = Nf_util.Prng
open Netform

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let ext = Alcotest.testable Ext_int.pp Ext_int.equal
let interval = Alcotest.testable Interval.pp Interval.equal
let union = Alcotest.testable Interval.Union.pp Interval.Union.equal

(* seeded corpus: sparse through dense gnp at several orders, plus the
   degenerate shapes the kernel must not trip over *)
let random_corpus () =
  let rng = Prng.create 0x6b65726e in
  let random =
    List.concat_map
      (fun n ->
        List.concat_map
          (fun p -> List.init 3 (fun _ -> Random_graph.gnp rng n p))
          [ 0.0; 0.1; 0.3; 0.5; 0.8 ])
      [ 1; 2; 3; 5; 8; 12; 20 ]
  in
  random
  @ [
      Graph.empty 0;
      Graph.empty 7;
      Graph.of_edges 6 [ (0, 1); (2, 3) ];
      Random_graph.gnp rng 40 0.15;
      Nf_named.Gallery.petersen;
      Nf_named.Families.path 9;
    ]

let naive_sum g v = Bfs.distance_sum g v

let ext_of_kernel k = if k = Kernel.inf then Ext_int.Inf else Ext_int.Fin k

let test_all_sums_vs_naive () =
  let ws = Kernel.create () in
  List.iter
    (fun g ->
      Kernel.load ws g;
      let sums = Kernel.all_distance_sums ws in
      for v = 0 to Graph.order g - 1 do
        check ext "batch sum = per-source BFS" (naive_sum g v) (ext_of_kernel sums.(v));
        check ext "single-source kernel sum = per-source BFS" (naive_sum g v)
          (ext_of_kernel (Kernel.distance_sum_from ws v))
      done)
    (random_corpus ())

let test_eccentricities_vs_naive () =
  let ws = Kernel.create () in
  List.iter
    (fun g ->
      Kernel.load ws g;
      ignore (Kernel.all_distance_sums ws);
      let ecc = Kernel.eccentricities ws in
      for v = 0 to Graph.order g - 1 do
        check ext "kernel eccentricity = BFS eccentricity" (Bfs.eccentricity g v)
          (ext_of_kernel ecc.(v))
      done)
    (random_corpus ())

let test_reach_stats_vs_naive () =
  let ws = Kernel.create () in
  List.iter
    (fun g ->
      Kernel.load ws g;
      for v = 0 to Graph.order g - 1 do
        let fsum, reached = Kernel.reach_stats ws v in
        let dist = Bfs.distances g v in
        let nsum = ref 0
        and nreached = ref 0 in
        Array.iter
          (fun d ->
            if d >= 0 then begin
              nsum := !nsum + d;
              incr nreached
            end)
          dist;
        check_int "finite sum" !nsum fsum;
        check_int "reached count" !nreached reached
      done)
    (random_corpus ())

(* random toggle walks: the workspace under xor toggles must track the
   persistent graph under add/remove at every step *)
let test_toggle_deltas () =
  let rng = Prng.create 0x746f67 in
  let ws = Kernel.create () in
  List.iter
    (fun n ->
      let g = ref (Random_graph.gnp rng n 0.4) in
      Kernel.load ws !g;
      for _step = 1 to 60 do
        let i = Prng.int rng n in
        let j = (i + 1 + Prng.int rng (n - 1)) mod n in
        Kernel.toggle ws i j;
        g := (if Graph.has_edge !g i j then Graph.remove_edge else Graph.add_edge) !g i j;
        check_bool "edge presence tracks" (Graph.has_edge !g i j) (Kernel.has_edge ws i j);
        let sums = Kernel.all_distance_sums ws in
        for v = 0 to n - 1 do
          check ext "post-toggle sums track" (naive_sum !g v) (ext_of_kernel sums.(v))
        done
      done)
    [ 2; 5; 9 ]

let test_bfs_distance_early_exit () =
  let corpus = random_corpus () in
  List.iter
    (fun g ->
      let n = Graph.order g in
      for src = 0 to n - 1 do
        let dist = Bfs.distances g src in
        for dst = 0 to n - 1 do
          let expected = if dist.(dst) < 0 then Ext_int.Inf else Ext_int.Fin dist.(dst) in
          check ext "early-exit distance = full BFS" expected (Bfs.distance g src dst)
        done
      done)
    corpus;
  Alcotest.check_raises "out of range" (Invalid_argument "Bfs.distance: vertex out of range")
    (fun () -> ignore (Bfs.distance (Graph.empty 3) 0 3))

let test_apsp_metrics_vs_fold () =
  List.iter
    (fun g ->
      let n = Graph.order g in
      let eccs = List.init n (fun v -> Bfs.eccentricity g v) in
      let expected_diameter =
        if n = 0 then Ext_int.zero else List.fold_left Ext_int.max Ext_int.zero eccs
      in
      let expected_radius =
        if n = 0 then Ext_int.zero else List.fold_left Ext_int.min Ext_int.Inf eccs
      in
      let expected_wiener =
        List.fold_left
          (fun acc v -> Ext_int.add acc (naive_sum g v))
          Ext_int.zero (List.init n Fun.id)
      in
      check ext "diameter" expected_diameter (Apsp.diameter g);
      check ext "radius" expected_radius (Apsp.radius g);
      check ext "wiener" expected_wiener (Apsp.wiener g);
      let sums = Apsp.distance_sums g in
      for v = 0 to n - 1 do
        check ext "distance_sums" (naive_sum g v) sums.(v)
      done)
    (random_corpus ())

(* ---------------- registry-driven differential harness ------------------- *)

(* One harness instead of a copied parity suite per game: every game in
   {!Game_registry} is held to the same contract — the kernel-workspace
   annotator equals the persistent reference (connected, disconnected and
   edgeless input alike), annotation survives a random toggle walk
   re-using one workspace, the point certifier agrees with region
   membership, and (when the game has dynamics) a graph has no improving
   moves exactly when it is stable.  A newly registered game gets all
   four suites with no test changes. *)

let region_testable (type r) (kind : r Game.Region.kind) : r Alcotest.testable =
  Alcotest.testable (Game.Region.pp kind) (Game.Region.equal kind)

let annotation_corpus () =
  Nf_enum.Unlabeled.connected_graphs 5
  @ [
      Graph.empty 1;
      Graph.empty 4;
      Graph.of_edges 5 [ (0, 1); (2, 3) ];
      Graph.of_edges 6 [ (0, 1); (1, 2); (3, 4) ];
      Nf_named.Families.cycle 8;
      Nf_named.Families.star 7;
      Nf_named.Families.path 7;
    ]

(* union-region games run an orientation search per graph, so they keep
   the smaller corpus the historical UCG suite used (still including
   disconnected and edgeless shapes) *)
let corpus_for (Game.Any (module G)) =
  match G.region_kind with
  | Game.Region.Interval -> annotation_corpus ()
  | Game.Region.Union ->
    Nf_enum.Unlabeled.connected_graphs 5
    @ [
        Graph.empty 1;
        Graph.empty 4;
        Graph.of_edges 5 [ (0, 1); (2, 3) ];
        Nf_named.Families.cycle 7;
        Nf_named.Families.star 6;
        Nf_named.Families.path 6;
      ]

let alpha_grid =
  [ Rat.make 1 2; Rat.one; Rat.make 3 2; Rat.of_int 2; Rat.make 5 2; Rat.of_int 4 ]

let game_parity (Game.Any (module G) as packed) () =
  let ws = Kernel.create () in
  List.iter
    (fun g ->
      check (region_testable G.region_kind) "ws = reference" (G.stable_region_reference g)
        (G.stable_region_ws ws g))
    (corpus_for packed)

let game_toggle_walk (Game.Any (module G)) () =
  let rng = Prng.create 0x67616d65 in
  let ws = Kernel.create () in
  let n = 5 in
  let steps = match G.region_kind with Game.Region.Interval -> 40 | Game.Region.Union -> 20 in
  let g = ref (Random_graph.gnp rng n 0.4) in
  for _step = 1 to steps do
    let i = Prng.int rng n in
    let j = (i + 1 + Prng.int rng (n - 1)) mod n in
    g := (if Graph.has_edge !g i j then Graph.remove_edge else Graph.add_edge) !g i j;
    check (region_testable G.region_kind) "post-toggle ws = reference"
      (G.stable_region_reference !g) (G.stable_region_ws ws !g)
  done

let game_certifier (Game.Any (module G) as packed) () =
  let ws = Kernel.create () in
  List.iter
    (fun g ->
      let region = G.stable_region_ws ws g in
      List.iter
        (fun alpha ->
          check_bool "is_stable = region membership"
            (Game.Region.mem G.region_kind alpha region)
            (G.is_stable ~alpha g))
        alpha_grid)
    (corpus_for packed)

let game_moves_fixpoint (Game.Any (module G) as packed) () =
  match G.improving_moves with
  | None -> ()
  | Some moves ->
    List.iter
      (fun g ->
        List.iter
          (fun alpha ->
            check_bool "no improving moves <=> stable" (G.is_stable ~alpha g)
              (moves ~alpha g = []))
          alpha_grid)
      (corpus_for packed)

let registry_suites =
  List.map
    (fun (Game.Any (module G) as packed) ->
      ( "game:" ^ G.name,
        [
          Alcotest.test_case "ws = reference" `Quick (game_parity packed);
          Alcotest.test_case "toggle walk" `Quick (game_toggle_walk packed);
          Alcotest.test_case "certifier = membership" `Quick (game_certifier packed);
          Alcotest.test_case "moves fixpoint" `Quick (game_moves_fixpoint packed);
        ] ))
    (Game_registry.all ())

(* the public (non-workspace) wrappers still route through the same math *)
let test_public_wrappers () =
  List.iter
    (fun g ->
      check interval "bcg public = reference" (Bcg.stable_alpha_set_reference g)
        (Bcg.stable_alpha_set g))
    (annotation_corpus ())

(* ---------------- weighted BCG reductions ------------------------------- *)

(* uniform multipliers must reduce weighted stability to plain BCG
   stability: w_i = 1 gives structurally identical intervals, w_i = w
   scales every finite endpoint by 1/w *)
let test_weighted_uniform_is_bcg () =
  let (module U : Game.S with type region = Interval.t) =
    Weighted_bcg.make ~name:"wbcg_uniform_test" ~describe:"uniform test instance"
      ~schema_tag:1001 ~weight:(fun _ -> 1) ()
  in
  let ws = Kernel.create () in
  List.iter
    (fun g ->
      check interval "uniform weighted = bcg" (Bcg.stable_alpha_set_ws ws g)
        (U.stable_region_ws ws g);
      List.iter
        (fun alpha ->
          check_bool "uniform certifier = bcg" (Bcg.is_pairwise_stable ~alpha g)
            (U.is_stable ~alpha g))
        alpha_grid)
    (annotation_corpus ())

let scale_interval k i =
  match Interval.bounds i with
  | None -> Interval.empty
  | Some (lo, lo_closed, hi, hi_closed) ->
    let scale = function
      | Interval.Finite r -> Interval.Finite (Rat.div r (Rat.of_int k))
      | e -> e
    in
    Interval.make ~lo:(scale lo) ~lo_closed ~hi:(scale hi) ~hi_closed

let test_weighted_scaled_is_bcg_over_w () =
  let w = 3 in
  let (module U : Game.S with type region = Interval.t) =
    Weighted_bcg.make ~name:"wbcg_scaled_test" ~describe:"scaled test instance"
      ~schema_tag:1002 ~weight:(fun _ -> w) ()
  in
  let ws = Kernel.create () in
  List.iter
    (fun g ->
      check interval "w=3 weighted = bcg region / 3"
        (scale_interval w (Bcg.stable_alpha_set_ws ws g))
        (U.stable_region_ws ws g))
    (annotation_corpus ())

let test_ucg_petersen_parity () =
  check union "petersen nash set = reference"
    (Ucg.nash_alpha_set_reference Nf_named.Gallery.petersen)
    (Ucg.nash_alpha_set Nf_named.Gallery.petersen)

(* naive improving-move list straight off the exported per-pair functions
   (the pre-kernel implementation) *)
let reference_improving_moves ~alpha g =
  let ext_lt v =
    match v with
    | Ext_int.Inf -> true
    | Ext_int.Fin k -> Rat.(alpha < of_int k)
  in
  let ext_le v =
    match v with
    | Ext_int.Inf -> true
    | Ext_int.Fin k -> Rat.(alpha <= of_int k)
  in
  let moves = ref [] in
  Graph.iter_non_edges g (fun i j ->
      let bi = Bcg.addition_benefit g i j
      and bj = Bcg.addition_benefit g j i in
      if (ext_lt bi && ext_le bj) || (ext_lt bj && ext_le bi) then
        moves := Nf_dynamics.Bcg_dynamics.Add (i, j) :: !moves);
  Graph.iter_edges g (fun i j ->
      if not (ext_le (Bcg.severance_loss g i j)) then
        moves := Nf_dynamics.Bcg_dynamics.Delete (i, j) :: !moves;
      if not (ext_le (Bcg.severance_loss g j i)) then
        moves := Nf_dynamics.Bcg_dynamics.Delete (j, i) :: !moves);
  !moves

let move_testable =
  let pp fmt m =
    match m with
    | Nf_dynamics.Bcg_dynamics.Add (i, j) -> Format.fprintf fmt "Add(%d,%d)" i j
    | Nf_dynamics.Bcg_dynamics.Delete (i, j) -> Format.fprintf fmt "Delete(%d,%d)" i j
  in
  Alcotest.testable pp ( = )

let test_improving_moves_parity () =
  let rng = Prng.create 0x6d767273 in
  let grid = [ Rat.make 1 2; Rat.one; Rat.make 3 2; Rat.of_int 2; Rat.of_int 4 ] in
  let subjects =
    List.init 12 (fun _ -> Random_graph.gnp rng 6 0.4)
    @ [ Graph.of_edges 5 [ (0, 1); (2, 3) ]; Graph.empty 4; Nf_named.Families.cycle 6 ]
  in
  List.iter
    (fun g ->
      List.iter
        (fun alpha ->
          check
            Alcotest.(list move_testable)
            "improving moves identical (incl. order)"
            (reference_improving_moves ~alpha g)
            (Nf_dynamics.Bcg_dynamics.improving_moves ~alpha g))
        grid)
    subjects

(* ---------------- workspace borrow discipline ---------------- *)

let test_nested_borrow () =
  (* a nested with_ws must hand out a different workspace than the outer
     borrow, so kernel routines can call each other without trampling
     state *)
  Kernel.with_ws (fun outer ->
      Kernel.load outer (Nf_named.Families.cycle 5);
      let distinct = Kernel.with_ws (fun inner -> inner != outer) in
      check_bool "nested borrow gets a fresh workspace" true distinct;
      (* outer state survived the nested borrow *)
      check_int "outer untouched" 5 (Kernel.order outer));
  (* sequential borrows on one domain reuse the resident workspace *)
  let first = Kernel.with_ws (fun ws -> ws) in
  let second = Kernel.with_ws (fun ws -> ws) in
  check_bool "resident workspace is reused" true (first == second)

let test_load_rows () =
  let ws = Kernel.create () in
  (* rows with out-of-range bits and self-loops must be masked off *)
  Kernel.load_rows ws 3 (fun v ->
      Bitset.of_list (match v with 0 -> [ 0; 1; 5 ] | 1 -> [ 0; 2 ] | _ -> [ 1; 60 ]));
  check_bool "edge 0-1" true (Kernel.has_edge ws 0 1);
  check_bool "edge 1-2" true (Kernel.has_edge ws 1 2);
  check_bool "self loop stripped" false (Kernel.has_edge ws 0 0);
  check_bool "out of range stripped" false (Kernel.has_edge ws 0 5 || Kernel.has_edge ws 2 60);
  check_int "path sum" 3 (Kernel.distance_sum_from ws 0)

(* ---------------- multi-word rows (n > 62) ---------------- *)

(* the boundary zoo: orders straddling each word-count transition *)
let boundary_orders = [ 62; 63; 64; 65; 127; 128; 129 ]

let large_corpus () =
  let rng = Prng.create 0x77647364 in
  List.concat_map
    (fun n -> [ Random_graph.gnp rng n (2.0 /. float_of_int n); Random_graph.gnp rng n 0.08 ])
    boundary_orders
  @ [
      Graph.empty 100;
      (* disconnected with a far component, forcing high-word traffic *)
      Graph.of_edges 130 [ (0, 1); (1, 2); (128, 129) ];
      Nf_named.Families.cycle 150;
      Nf_named.Families.star 200;
      Random_graph.tree (Prng.create 5) 300;
      Random_graph.gnp (Prng.create 6) 300 0.02;
    ]

(* kernel vs the persistent queue-BFS reference, at orders up to 300 *)
let test_multiword_vs_bfs () =
  let ws = Kernel.create () in
  List.iter
    (fun g ->
      Kernel.load ws g;
      let n = Graph.order g in
      check_int "words match graph" (Graph.words g) (Kernel.words ws);
      let sums = Kernel.all_distance_sums ws in
      let ecc = Kernel.eccentricities ws in
      for v = 0 to n - 1 do
        check ext "multi-word batch sum = queue BFS" (naive_sum g v) (ext_of_kernel sums.(v));
        check ext "multi-word single-source = queue BFS" (naive_sum g v)
          (ext_of_kernel (Kernel.distance_sum_from ws v));
        check ext "multi-word eccentricity = queue BFS" (Bfs.eccentricity g v)
          (ext_of_kernel ecc.(v));
        let fsum, reached = Kernel.reach_stats ws v in
        let dist = Bfs.distances g v in
        let nsum = ref 0 and nreached = ref 0 in
        Array.iter (fun d -> if d >= 0 then begin nsum := !nsum + d; incr nreached end) dist;
        check_int "multi-word reach sum" !nsum fsum;
        check_int "multi-word reach count" !nreached reached
      done)
    (large_corpus ())

(* same n ≤ 62 graphs through the one-word fast path and the forced
   generic loops: every public kernel observable must agree bit-for-bit *)
let test_forced_multiword_parity () =
  let corpus = random_corpus () in
  Fun.protect
    ~finally:(fun () -> Kernel.set_min_words_for_testing 1)
    (fun () ->
      List.iter
        (fun g ->
          let n = Graph.order g in
          Kernel.set_min_words_for_testing 1;
          let one_sums, one_ecc =
            Kernel.with_loaded g (fun ws ->
                let sums = Array.copy (Kernel.all_distance_sums ws) in
                (sums, Array.copy (Kernel.eccentricities ws)))
          in
          List.iter
            (fun forced ->
              Kernel.set_min_words_for_testing forced;
              Kernel.with_loaded g (fun ws ->
                  check_int "forced word count" (max forced 1) (Kernel.words ws);
                  let sums = Kernel.all_distance_sums ws in
                  let ecc = Kernel.eccentricities ws in
                  for v = 0 to n - 1 do
                    check_int "sums parity (forced words)" one_sums.(v) sums.(v);
                    check_int "ecc parity (forced words)" one_ecc.(v) ecc.(v);
                    check_int "single-source parity" one_sums.(v)
                      (Kernel.distance_sum_from ws v)
                  done))
            [ 2; 3; 5 ])
        corpus)

(* toggle walks through the generic loops, tracked against persistent
   graph edits — the same contract the one-word path is held to above *)
let test_multiword_toggle_deltas () =
  let rng = Prng.create 0x6d77746f in
  let ws = Kernel.create () in
  List.iter
    (fun n ->
      let g = ref (Random_graph.gnp rng n (3.0 /. float_of_int n)) in
      Kernel.load ws !g;
      for _step = 1 to 25 do
        let i = Prng.int rng n in
        let j = (i + 1 + Prng.int rng (n - 1)) mod n in
        Kernel.toggle ws i j;
        g := (if Graph.has_edge !g i j then Graph.remove_edge else Graph.add_edge) !g i j;
        check_bool "edge presence tracks" (Graph.has_edge !g i j) (Kernel.has_edge ws i j);
        let sums = Kernel.all_distance_sums ws in
        for v = 0 to n - 1 do
          check ext "post-toggle sums track" (naive_sum !g v) (ext_of_kernel sums.(v))
        done
      done)
    [ 63; 65; 129 ]

let test_multiword_range_messages () =
  let ws = Kernel.create () in
  Alcotest.check_raises "load_rows past one word"
    (Invalid_argument
       "Kernel.load_rows: order 63 outside 0..62 (one-word rows; use load_edges \
        beyond 62 vertices)")
    (fun () -> Kernel.load_rows ws 63 (fun _ -> Bitset.empty));
  Kernel.load ws (Graph.empty 70);
  Alcotest.check_raises "neighbors past one word"
    (Invalid_argument
       "Kernel.neighbors: order 70 > 62 needs multi-word rows; use has_edge or \
        iter_neighbors")
    (fun () -> ignore (Kernel.neighbors ws 0));
  Alcotest.check_raises "Bfs.reachable past one word"
    (Invalid_argument "Bfs.reachable: order 70 > 62 (one-word bitset result)")
    (fun () -> ignore (Bfs.reachable (Graph.empty 70) 0));
  Alcotest.check_raises "Graph.neighbors past one word"
    (Invalid_argument
       "Graph.neighbors: order 70 > 62 needs multi-word rows; use iter_neighbors or \
        row_word")
    (fun () -> ignore (Graph.neighbors (Graph.empty 70) 0))

(* QCheck: random boundary-order gnp graphs, kernel vs Apsp persistent path *)
let prop_multiword_apsp_parity =
  QCheck.Test.make ~name:"kernel sums = Apsp.distance_sums at 60 <= n <= 140" ~count:40
    QCheck.(pair (int_range 60 140) (int_bound 1000))
    (fun (n, seed) ->
      let rng = Prng.create (seed + (n * 100003)) in
      let g = Random_graph.gnp rng n (1.5 /. float_of_int n) in
      let apsp = Apsp.distance_sums g in
      Kernel.with_loaded g (fun ws ->
          let sums = Kernel.all_distance_sums ws in
          let ok = ref true in
          for v = 0 to n - 1 do
            if ext_of_kernel sums.(v) <> apsp.(v) then ok := false
          done;
          !ok))

let () =
  Alcotest.run "nf_kernel"
    ([
      ( "sums",
        [
          Alcotest.test_case "all sources vs naive" `Quick test_all_sums_vs_naive;
          Alcotest.test_case "eccentricities vs naive" `Quick test_eccentricities_vs_naive;
          Alcotest.test_case "reach stats vs naive" `Quick test_reach_stats_vs_naive;
          Alcotest.test_case "apsp metrics" `Quick test_apsp_metrics_vs_fold;
        ] );
      ( "toggles",
        [
          Alcotest.test_case "toggle deltas vs persistent" `Quick test_toggle_deltas;
          Alcotest.test_case "bfs distance early exit" `Quick test_bfs_distance_early_exit;
        ] );
      ( "annotation",
        [
          Alcotest.test_case "public wrappers" `Quick test_public_wrappers;
          Alcotest.test_case "ucg petersen parity" `Slow test_ucg_petersen_parity;
          Alcotest.test_case "improving moves parity" `Quick test_improving_moves_parity;
        ] );
      ( "weighted bcg",
        [
          Alcotest.test_case "uniform = bcg" `Quick test_weighted_uniform_is_bcg;
          Alcotest.test_case "w=3 = bcg/3" `Quick test_weighted_scaled_is_bcg_over_w;
        ] );
      ( "workspace",
        [
          Alcotest.test_case "nested borrow" `Quick test_nested_borrow;
          Alcotest.test_case "load rows" `Quick test_load_rows;
        ] );
      ( "multiword",
        [
          Alcotest.test_case "boundary zoo vs queue BFS" `Quick test_multiword_vs_bfs;
          Alcotest.test_case "forced words = one-word path" `Quick
            test_forced_multiword_parity;
          Alcotest.test_case "toggle deltas past 62" `Quick test_multiword_toggle_deltas;
          Alcotest.test_case "range messages" `Quick test_multiword_range_messages;
          QCheck_alcotest.to_alcotest prop_multiword_apsp_parity;
        ] );
    ]
    @ registry_suites)
