(* Tests for the bilateral connection game: benefits/losses, exact
   stability intervals, Definition 3 checker, Proposition 1 (pairwise
   stable = pairwise Nash), Lemma 1 (cost convexity), link convexity, and
   the §4.1 Desargues/dodecahedron claims. *)

open Netform
module Graph = Nf_graph.Graph
module Ext_int = Nf_util.Ext_int
module Rat = Nf_util.Rat
module Interval = Nf_util.Interval
module Prng = Nf_util.Prng
module Families = Nf_named.Families
module Gallery = Nf_named.Gallery

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let ext = Alcotest.testable Ext_int.pp Ext_int.equal
let interval = Alcotest.testable Interval.pp Interval.equal
let r = Rat.of_int
let rq = Rat.make
let fin k = Interval.Finite (Rat.of_int k)

let closed_ray lo =
  Interval.make ~lo:(fin lo) ~lo_closed:true ~hi:Interval.Pos_inf ~hi_closed:false

(* ---------------- benefits and losses ---------------- *)

let test_benefit_star () =
  let g = Families.star 5 in
  (* leaf-leaf distance drops from 2 to 1 *)
  check ext "leaf benefit" (Ext_int.Fin 1) (Bcg.addition_benefit g 1 2);
  Alcotest.check_raises "existing edge rejected"
    (Invalid_argument "Bcg.addition_benefit: edge present") (fun () ->
      ignore (Bcg.addition_benefit g 0 1))

let test_loss_bridge () =
  let g = Families.star 5 in
  check ext "severing star edge disconnects" Ext_int.Inf (Bcg.severance_loss g 1 0);
  check ext "center side too" Ext_int.Inf (Bcg.severance_loss g 0 1)

let test_loss_cycle () =
  (* C5: severing turns the cycle into a path; endpoint sum 6 -> 10 *)
  let g = Families.cycle 5 in
  check ext "cycle loss" (Ext_int.Fin 4) (Bcg.severance_loss g 0 4)

let test_benefit_disconnected () =
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  (* joining the two components makes everything reachable: infinite gain *)
  check ext "joining components" Ext_int.Inf (Bcg.addition_benefit g 1 2);
  let g3 = Graph.empty 3 in
  (* with three isolated vertices one new link still leaves cost infinite *)
  check ext "still disconnected" (Ext_int.Fin 0) (Bcg.addition_benefit g3 0 1)

(* ---------------- exact stability sets ---------------- *)

let test_stable_set_complete () =
  let g = Families.complete 6 in
  check interval "K6 stable on (0,1]"
    (Interval.open_closed Rat.zero (fin 1))
    (Bcg.stable_alpha_set g)

let test_stable_set_star () =
  (* missing leaf-leaf links have tied benefits 1|1, bridges make α_max
     infinite: [1, ∞) *)
  check interval "star stable on [1,inf)" (closed_ray 1)
    (Bcg.stable_alpha_set (Families.star 6))

let test_stable_set_cycle5 () =
  (* chord benefits are tied at 1; severance loss 4: [1,4] *)
  check interval "C5 stable on [1,4]"
    (Interval.closed (r 1) (r 4))
    (Bcg.stable_alpha_set (Families.cycle 5))

let test_stable_set_cycle6 () =
  (* chord benefits tied at 2; severance loss n(n-2)/4 = 6 *)
  check interval "C6 stable on [2,6]"
    (Interval.closed (r 2) (r 6))
    (Bcg.stable_alpha_set (Families.cycle 6))

let test_stable_set_path4 () =
  (* non-tied missing links (0,2)/(1,3) force α>1, tied (0,3) allows
     α=2; tree severances are bridges: [2, ∞) *)
  check interval "P4 stable on [2,inf)" (closed_ray 2)
    (Bcg.stable_alpha_set (Families.path 4))

let test_stable_set_two_components () =
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  check_bool "two components never stable" true
    (Interval.is_empty (Bcg.stable_alpha_set g))

let test_stable_set_empty3 () =
  (* documented quirk: >= 3 components are vacuously stable under the
     literal infinite-cost semantics *)
  check interval "empty graph on 3 stable everywhere"
    (Interval.open_closed Rat.zero Interval.Pos_inf)
    (Bcg.stable_alpha_set (Graph.empty 3))

let test_interval_vs_paper_interval () =
  (* stable_alpha_set only ever differs from the paper's (α_min, α_max] at
     the left endpoint *)
  let rng = Prng.create 3 in
  for _ = 1 to 200 do
    let g = Nf_graph.Random_graph.connected_gnp rng (3 + Prng.int rng 5) 0.4 in
    let paper = Bcg.stability_interval g
    and exact = Bcg.stable_alpha_set g in
    check_bool "paper interval subset of exact" true (Interval.subset paper exact)
  done

(* ---------------- Definition 3 checker vs intervals ---------------- *)

let alphas_probe =
  List.map
    (fun (a, b) -> rq a b)
    [ (1, 4); (1, 2); (3, 4); (1, 1); (3, 2); (2, 1); (5, 2); (3, 1); (4, 1); (9, 2); (6, 1); (8, 1) ]

let test_definition_matches_interval () =
  let rng = Prng.create 17 in
  for _ = 1 to 150 do
    let g = Nf_graph.Random_graph.connected_gnp rng (3 + Prng.int rng 5) 0.45 in
    List.iter
      (fun alpha ->
        check_bool "definition = interval membership"
          (Interval.mem alpha (Bcg.stable_alpha_set g))
          (Bcg.is_pairwise_stable ~alpha g))
      alphas_probe
  done

let test_is_pairwise_stable_f () =
  check_bool "dyadic wrapper" true (Bcg.is_pairwise_stable_f ~alpha:0.5 (Families.complete 4));
  Alcotest.check_raises "non-dyadic rejected"
    (Invalid_argument "Bcg.is_pairwise_stable_f: alpha not dyadic with denominator <= 4096")
    (fun () -> ignore (Bcg.is_pairwise_stable_f ~alpha:0.1 (Families.complete 4)))

(* ---------------- Proposition 1 ---------------- *)

let test_prop1_structural () =
  (* pairwise stable <=> pairwise Nash, via the structural checker *)
  let rng = Prng.create 23 in
  for _ = 1 to 120 do
    let g = Nf_graph.Random_graph.connected_gnp rng (3 + Prng.int rng 4) 0.5 in
    List.iter
      (fun alpha ->
        check_bool "prop 1"
          (Bcg.is_pairwise_stable ~alpha g)
          (Bcg.is_pairwise_nash ~alpha g))
      alphas_probe
  done

let test_prop1_vs_strategy_definition () =
  (* the graph-level checkers agree with the literal profile-level
     Definitions 1+2 on the canonical supporting profile *)
  let rng = Prng.create 29 in
  for _ = 1 to 40 do
    let g = Nf_graph.Random_graph.connected_gnp rng (3 + Prng.int rng 3) 0.5 in
    let profile = Strategy.of_graph_bcg g in
    List.iter
      (fun alpha_f ->
        let alpha = rq (int_of_float (alpha_f *. 4.)) 4 in
        check_bool "graph checker = profile definition"
          (Strategy.is_pairwise_nash Cost.Bcg ~alpha:alpha_f profile)
          (Bcg.is_pairwise_nash ~alpha g))
      [ 0.25; 0.75; 1.0; 1.5; 2.0; 3.25; 5.0 ]
  done

(* ---------------- Lemma 1: cost convexity ---------------- *)

let test_lemma1_enumerated () =
  (* convexity of the BCG cost holds on every graph on <= 5 vertices *)
  for n = 2 to 5 do
    Nf_enum.Labeled.iter_all n (fun g ->
        check_bool "cost convex" true (Convexity.is_cost_convex g))
  done

let test_lemma1_random () =
  let rng = Prng.create 41 in
  for _ = 1 to 150 do
    let g = Nf_graph.Random_graph.gnp rng (4 + Prng.int rng 6) 0.45 in
    check_bool "cost convex (random)" true (Convexity.is_cost_convex g)
  done

(* ---------------- link convexity ---------------- *)

let test_link_convex_gallery () =
  (* §4.1 claims Desargues is link convex; exact computation refutes it:
     the best addition (a chord between distance-4 vertices of the outer
     C10) saves 10 while the cheapest severance costs only 8.  The paper's
     girth-based S_a bound only accounts for additions across a shortest
     cycle and misses long-range chords (Desargues has diameter 5 > g/2).
     We assert the computed truth; EXPERIMENTS.md records the
     discrepancy. *)
  check_bool "desargues NOT link convex (paper sketch overclaims)" false
    (Convexity.is_link_convex Gallery.desargues);
  (match Convexity.link_convexity_gap Gallery.desargues with
  | Some (gain, loss) ->
    check ext "desargues max gain" (Ext_int.Fin 10) gain;
    check ext "desargues min loss" (Ext_int.Fin 8) loss
  | None -> Alcotest.fail "desargues has additions and severances");
  check_bool "dodecahedron not link convex" false
    (Convexity.is_link_convex Gallery.dodecahedron);
  (* The Figure 1 graphs are all pairwise stable for some α: their exact
     stable sets are nonempty (octahedron only at the single point α=1) *)
  List.iter
    (fun name ->
      let g = List.assoc name Gallery.all in
      check_bool (name ^ " stable for some alpha") true
        (not (Interval.is_empty (Bcg.stable_alpha_set g))))
    [ "petersen"; "mcgee"; "octahedron"; "clebsch"; "hoffman-singleton"; "star8" ];
  (* exact stable windows of the small gallery members *)
  check interval "petersen stable [1,5]" (Interval.closed (r 1) (r 5))
    (Bcg.stable_alpha_set Gallery.petersen);
  check interval "mcgee stable [7,15]" (Interval.closed (r 7) (r 15))
    (Bcg.stable_alpha_set Gallery.mcgee);
  check interval "clebsch stable [1,2]" (Interval.closed (r 1) (r 2))
    (Bcg.stable_alpha_set Gallery.clebsch);
  check interval "octahedron stable {1}" (Interval.point (r 1))
    (Bcg.stable_alpha_set Gallery.octahedron)

let test_link_convex_implies_stable () =
  (* Lemma 2: link convexity => pairwise stable for some α *)
  let rng = Prng.create 47 in
  for _ = 1 to 200 do
    let g = Nf_graph.Random_graph.connected_gnp rng (4 + Prng.int rng 4) 0.5 in
    if Convexity.is_link_convex g then
      check_bool "link convex => stable set nonempty" true
        (not (Interval.is_empty (Bcg.stable_alpha_set g)))
  done

let test_link_convexity_gap () =
  match Convexity.link_convexity_gap Gallery.petersen with
  | None -> Alcotest.fail "petersen has both additions and severances"
  | Some (gain, loss) ->
    check_bool "gap is positive" true (Ext_int.( < ) gain loss)

let test_prop2_witness () =
  (* every link convex graph is pairwise stable at its witness alpha *)
  let rng = Prng.create 53 in
  let verified = ref 0 in
  for _ = 1 to 300 do
    let g = Nf_graph.Random_graph.connected_gnp rng (4 + Prng.int rng 4) 0.5 in
    match Convexity.witness_alpha g with
    | Some alpha ->
      incr verified;
      check_bool "witness supports stability" true (Bcg.is_pairwise_stable ~alpha g)
    | None -> check_bool "no witness iff not convex" false (Convexity.is_link_convex g)
  done;
  check_bool "some graphs were link convex" true (!verified > 0);
  (* named spot checks *)
  check_bool "petersen witness" true
    (match Convexity.witness_alpha Gallery.petersen with
    | Some alpha -> Bcg.is_pairwise_stable ~alpha Gallery.petersen
    | None -> false);
  check_bool "desargues has no witness" true (Convexity.witness_alpha Gallery.desargues = None)

(* ---------------- improving moves ---------------- *)

let test_improving_moves () =
  (* a path at small α: endpoints want a chord *)
  let g = Families.path 4 in
  check_bool "addition available at alpha=1/2" true
    (Bcg.improving_addition ~alpha:(rq 1 2) g <> None);
  check_bool "no deletion in a tree" true (Bcg.improving_deletion ~alpha:(rq 1 2) g = None);
  (* the complete graph at large α: everyone wants to sever *)
  let k = Families.complete 5 in
  check_bool "deletion available at alpha=2" true
    (Bcg.improving_deletion ~alpha:(r 2) k <> None);
  check_bool "no addition in complete graph" true
    (Bcg.improving_addition ~alpha:(r 2) k = None);
  (* stable point: no moves *)
  let star = Families.star 5 in
  check_bool "stable star has no moves" true
    (Bcg.improving_addition ~alpha:(r 2) star = None
    && Bcg.improving_deletion ~alpha:(r 2) star = None)

(* ---------------- property tests ---------------- *)

let connected_graph_gen =
  QCheck.make
    ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
    QCheck.Gen.(pair (int_bound 1000000) (int_range 3 7))

let prop_stable_set_is_interval_of_probes =
  (* membership in the exact stable set is monotone-then-antimonotone:
     checking a sorted probe grid sees at most one true run *)
  QCheck.Test.make ~name:"stable alpha set is a single run" ~count:150 connected_graph_gen
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let g = Nf_graph.Random_graph.connected_gnp rng n 0.4 in
      let sorted = List.sort Rat.compare alphas_probe in
      let flags = List.map (fun alpha -> Bcg.is_pairwise_stable ~alpha g) sorted in
      let runs, _ =
        List.fold_left
          (fun (runs, prev) f -> if f && not prev then (runs + 1, f) else (runs, f))
          (0, false) flags
      in
      runs <= 1)

let prop_deleting_stable_edge_never_improves =
  QCheck.Test.make ~name:"stability implies no profitable severance" ~count:100
    connected_graph_gen (fun (seed, n) ->
      let rng = Prng.create seed in
      let g = Nf_graph.Random_graph.connected_gnp rng n 0.5 in
      let set = Bcg.stable_alpha_set g in
      match Interval.bounds set with
      | None -> true
      | Some (lo, _, _, _) ->
        let alpha =
          match lo with
          | Interval.Finite a -> Rat.add a Rat.one
          | Interval.Neg_inf | Interval.Pos_inf -> Rat.one
        in
        if Interval.mem alpha set then Bcg.improving_deletion ~alpha g = None else true)

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "netform_bcg"
    [
      ( "benefit/loss",
        [
          Alcotest.test_case "star benefit" `Quick test_benefit_star;
          Alcotest.test_case "bridge loss" `Quick test_loss_bridge;
          Alcotest.test_case "cycle loss" `Quick test_loss_cycle;
          Alcotest.test_case "disconnected benefit" `Quick test_benefit_disconnected;
        ] );
      ( "stable sets",
        [
          Alcotest.test_case "complete" `Quick test_stable_set_complete;
          Alcotest.test_case "star" `Quick test_stable_set_star;
          Alcotest.test_case "cycle5" `Quick test_stable_set_cycle5;
          Alcotest.test_case "cycle6" `Quick test_stable_set_cycle6;
          Alcotest.test_case "path4" `Quick test_stable_set_path4;
          Alcotest.test_case "two components" `Quick test_stable_set_two_components;
          Alcotest.test_case "empty on 3" `Quick test_stable_set_empty3;
          Alcotest.test_case "paper interval subset" `Quick test_interval_vs_paper_interval;
        ] );
      ( "definition",
        [
          Alcotest.test_case "matches interval" `Quick test_definition_matches_interval;
          Alcotest.test_case "dyadic wrapper" `Quick test_is_pairwise_stable_f;
        ] );
      ( "proposition 1",
        [
          Alcotest.test_case "structural" `Quick test_prop1_structural;
          Alcotest.test_case "vs literal definitions" `Slow test_prop1_vs_strategy_definition;
        ] );
      ( "lemma 1 convexity",
        [
          Alcotest.test_case "enumerated" `Slow test_lemma1_enumerated;
          Alcotest.test_case "random" `Quick test_lemma1_random;
        ] );
      ( "link convexity",
        [
          Alcotest.test_case "gallery" `Quick test_link_convex_gallery;
          Alcotest.test_case "implies stable" `Quick test_link_convex_implies_stable;
          Alcotest.test_case "gap" `Quick test_link_convexity_gap;
          Alcotest.test_case "prop2 witness" `Quick test_prop2_witness;
        ] );
      ("dynamics moves", [ Alcotest.test_case "improving moves" `Quick test_improving_moves ]);
      ( "properties",
        [ qcheck prop_stable_set_is_interval_of_probes; qcheck prop_deleting_stable_edge_never_improves ] );
    ]
