(* Tests for the domain pool: input-order determinism, jobs=1 equivalence,
   exception propagation and pool reuse, oversubscription, nested-call
   fallback — plus cross-checks that the parallel annotation and
   enumeration paths produce results identical to the sequential ones, and
   that the fused BCG/transfers stability kernels agree with a naive
   reference built from the exported per-pair functions. *)

module Pool = Nf_util.Pool
module Graph = Nf_graph.Graph
module Ext_int = Nf_util.Ext_int
module Rat = Nf_util.Rat
module Interval = Nf_util.Interval
open Netform

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let int_list = Alcotest.(list int)
let interval = Alcotest.testable Interval.pp Interval.equal

let with_pool jobs f =
  let pool = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* ---------------- pool unit tests ---------------- *)

let test_map_ordering () =
  let input = List.init 1000 Fun.id in
  let expected = List.map (fun x -> (x * x) + 1) input in
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          check int_list
            (Printf.sprintf "jobs=%d ordered" jobs)
            expected
            (Pool.parallel_map ~pool (fun x -> (x * x) + 1) input)))
    [ 1; 2; 4 ]

let test_map_array () =
  let input = Array.init 513 string_of_int in
  let expected = Array.map String.length input in
  with_pool 4 (fun pool ->
      check
        Alcotest.(array int)
        "array map" expected
        (Pool.parallel_map_array ~pool String.length input))

let test_empty_and_singleton () =
  with_pool 4 (fun pool ->
      check int_list "empty" [] (Pool.parallel_map ~pool succ []);
      check int_list "singleton" [ 8 ] (Pool.parallel_map ~pool succ [ 7 ]);
      check Alcotest.(array int) "empty array" [||] (Pool.parallel_map_array ~pool succ [||]))

let test_jobs_one_equivalence () =
  (* jobs = 1 must behave exactly like List.map, including effect order *)
  with_pool 1 (fun pool ->
      let trace = ref [] in
      let out =
        Pool.parallel_map ~pool
          (fun x ->
            trace := x :: !trace;
            2 * x)
          [ 1; 2; 3; 4; 5 ]
      in
      check int_list "results" [ 2; 4; 6; 8; 10 ] out;
      check int_list "left-to-right effects" [ 5; 4; 3; 2; 1 ] !trace)

let test_exception_propagation () =
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          Alcotest.check_raises
            (Printf.sprintf "jobs=%d raises" jobs)
            (Failure "boom")
            (fun () ->
              ignore
                (Pool.parallel_map ~pool
                   (fun x -> if x = 137 then failwith "boom" else x)
                   (List.init 400 Fun.id)));
          (* the pool survives a failed batch and keeps producing correct
             results *)
          check int_list "reusable after failure"
            (List.init 100 (fun x -> x + 1))
            (Pool.parallel_map ~pool succ (List.init 100 Fun.id))))
    [ 1; 4 ]

let test_oversubscription () =
  (* more domains than cores: correctness must not depend on the machine *)
  with_pool 8 (fun pool ->
      let input = List.init 10_000 Fun.id in
      check_int "sum via pool" (List.fold_left ( + ) 0 input)
        (List.fold_left ( + ) 0 (Pool.parallel_map ~pool Fun.id input)))

let test_nested_calls_fall_back () =
  (* a work item that re-enters the same pool must not deadlock *)
  with_pool 4 (fun pool ->
      let out =
        Pool.parallel_map ~pool
          (fun x ->
            List.fold_left ( + ) 0 (Pool.parallel_map ~pool Fun.id (List.init x Fun.id)))
          [ 10; 20; 30; 40; 50; 60 ]
      in
      check int_list "nested sums" [ 45; 190; 435; 780; 1225; 1770 ] out)

let test_default_jobs_positive () =
  check_bool "default jobs >= 1" true (Pool.default_jobs () >= 1)

(* ---------------- parity: parallel vs sequential library paths -------- *)

(* run the same computation under a forced-parallel and a forced-sequential
   default pool, with cold caches, and insist on identical results *)
let under_default_jobs jobs compute =
  Pool.set_default_jobs jobs;
  Fun.protect
    ~finally:(fun () -> Pool.set_default_jobs 1)
    (fun () ->
      Nf_enum.Unlabeled.clear_cache ();
      Nf_analysis.Equilibria.clear_cache ();
      compute ())

let test_enumeration_parity () =
  let sequential = under_default_jobs 1 (fun () -> Nf_enum.Unlabeled.all_graphs 6) in
  let parallel = under_default_jobs 4 (fun () -> Nf_enum.Unlabeled.all_graphs 6) in
  check_int "same class count" (List.length sequential) (List.length parallel);
  check_bool "same graphs in same order" true
    (List.for_all2 Graph.equal sequential parallel);
  (* and the count still matches the OEIS reference *)
  check_int "A000088(6)" (Option.get (Nf_enum.Counts.graphs 6)) (List.length parallel)

let test_annotation_parity () =
  let run () =
    ( Nf_analysis.Equilibria.bcg_annotated 6,
      Nf_analysis.Equilibria.transfers_annotated 5,
      Nf_analysis.Equilibria.ucg_annotated 4 )
  in
  let bcg_s, transfers_s, ucg_s = under_default_jobs 1 run in
  let bcg_p, transfers_p, ucg_p = under_default_jobs 4 run in
  let same_interval (g1, s1) (g2, s2) = Graph.equal g1 g2 && Interval.equal s1 s2 in
  check_bool "bcg annotations identical" true (List.for_all2 same_interval bcg_s bcg_p);
  check_bool "transfers annotations identical" true
    (List.for_all2 same_interval transfers_s transfers_p);
  check_bool "ucg annotations identical" true
    (List.for_all2
       (fun (g1, s1) (g2, s2) ->
         Graph.equal g1 g2
         && List.for_all2 Interval.equal (Interval.Union.to_list s1)
              (Interval.Union.to_list s2))
       ucg_s ucg_p)

(* ---------------- parity: fused kernel vs naive reference ------------- *)

(* the pre-fusion stable_alpha_set, written against the exported per-pair
   functions: recompute alpha_min, alpha_max and the left-closure flag the
   slow way and rebuild the interval *)
let reference_stable_alpha_set g =
  let pair_benefit g i j =
    Ext_int.min (Bcg.addition_benefit g i j) (Bcg.addition_benefit g j i)
  in
  let lo = ref (Ext_int.Fin 0) in
  Graph.iter_non_edges g (fun i j -> lo := Ext_int.max !lo (pair_benefit g i j));
  let hi = ref Ext_int.Inf in
  Graph.iter_edges g (fun i j ->
      hi := Ext_int.min !hi (Bcg.severance_loss g i j);
      hi := Ext_int.min !hi (Bcg.severance_loss g j i));
  let lo_closed =
    match !lo with
    | Ext_int.Inf -> false
    | Ext_int.Fin _ ->
      let closed = ref true in
      Graph.iter_non_edges g (fun i j ->
          if Ext_int.equal (pair_benefit g i j) !lo then
            if not (Ext_int.equal (Bcg.addition_benefit g i j) (Bcg.addition_benefit g j i))
            then closed := false);
      !closed
  in
  let endpoint = function
    | Ext_int.Fin k -> Interval.Finite (Rat.of_int k)
    | Ext_int.Inf -> Interval.Pos_inf
  in
  Interval.inter
    (Interval.open_closed Rat.zero Interval.Pos_inf)
    (Interval.make ~lo:(endpoint !lo) ~lo_closed ~hi:(endpoint !hi) ~hi_closed:true)

let reference_transfers_stable_alpha_set g =
  let lo = ref (Ext_int.Fin 0) in
  Graph.iter_non_edges g (fun i j ->
      lo := Ext_int.max !lo (Transfers.joint_addition_benefit g i j));
  let hi = ref Ext_int.Inf in
  Graph.iter_edges g (fun i j ->
      hi := Ext_int.min !hi (Transfers.joint_severance_loss g i j));
  let half = function
    | Ext_int.Fin k -> Interval.Finite (Rat.make k 2)
    | Ext_int.Inf -> Interval.Pos_inf
  in
  Interval.inter
    (Interval.open_closed Rat.zero Interval.Pos_inf)
    (Interval.make ~lo:(half !lo) ~lo_closed:true ~hi:(half !hi) ~hi_closed:true)

let test_fused_kernel_reference () =
  (* every connected class up to n=5 plus a disconnected graph and a cage *)
  let subjects =
    Nf_enum.Unlabeled.connected_graphs 5
    @ [ Graph.of_edges 5 [ (0, 1); (2, 3) ]; Nf_named.Gallery.petersen;
        Nf_named.Families.cycle 8; Nf_named.Families.star 7 ]
  in
  List.iter
    (fun g ->
      check interval "stable set matches reference" (reference_stable_alpha_set g)
        (Bcg.stable_alpha_set g);
      check interval "transfers set matches reference"
        (reference_transfers_stable_alpha_set g) (Transfers.stable_alpha_set g))
    subjects

let test_fused_kernel_membership () =
  (* the exact set and the literal Definition 3 checker must keep agreeing
     on either side of every breakpoint *)
  let grid =
    [ Rat.make 1 2; Rat.one; Rat.make 3 2; Rat.of_int 2; Rat.of_int 3; Rat.of_int 5 ]
  in
  List.iter
    (fun g ->
      let set = Bcg.stable_alpha_set g in
      List.iter
        (fun alpha ->
          check_bool "membership = checker" (Interval.mem alpha set)
            (Bcg.is_pairwise_stable ~alpha g))
        grid)
    (Nf_enum.Unlabeled.connected_graphs 5)

let () =
  Alcotest.run "nf_pool"
    [
      ( "pool",
        [
          Alcotest.test_case "map ordering" `Quick test_map_ordering;
          Alcotest.test_case "map array" `Quick test_map_array;
          Alcotest.test_case "empty/singleton" `Quick test_empty_and_singleton;
          Alcotest.test_case "jobs=1 equivalence" `Quick test_jobs_one_equivalence;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
          Alcotest.test_case "oversubscription" `Quick test_oversubscription;
          Alcotest.test_case "nested calls fall back" `Quick test_nested_calls_fall_back;
          Alcotest.test_case "default jobs" `Quick test_default_jobs_positive;
        ] );
      ( "parity",
        [
          Alcotest.test_case "enumeration parallel = sequential" `Quick
            test_enumeration_parity;
          Alcotest.test_case "annotation parallel = sequential" `Quick
            test_annotation_parity;
          Alcotest.test_case "fused kernel vs reference" `Quick
            test_fused_kernel_reference;
          Alcotest.test_case "fused kernel vs checker" `Quick
            test_fused_kernel_membership;
        ] );
    ]
