(* Tests for nf_dynamics: fixed points are equilibria, convergence on
   known instances, sampling finds known stable graphs. *)

module Graph = Nf_graph.Graph
module Rat = Nf_util.Rat
module Prng = Nf_util.Prng
module Families = Nf_named.Families
module Bcg_dynamics = Nf_dynamics.Bcg_dynamics
module Ucg_dynamics = Nf_dynamics.Ucg_dynamics
open Netform

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let r = Rat.of_int
let rq = Rat.make

(* ---------------- BCG dynamics ---------------- *)

let test_bcg_stable_is_fixed_point () =
  (* stable graphs admit no moves *)
  check Alcotest.int "star at alpha=2" 0
    (List.length (Bcg_dynamics.improving_moves ~alpha:(r 2) (Families.star 6)));
  check Alcotest.int "complete at alpha=1/2" 0
    (List.length (Bcg_dynamics.improving_moves ~alpha:(rq 1 2) (Families.complete 6)))

let test_bcg_run_reaches_stability () =
  let rng = Prng.create 7 in
  let alphas = [ rq 1 2; r 1; r 2; r 4 ] in
  List.iter
    (fun alpha ->
      for _ = 1 to 20 do
        let seed = Nf_graph.Random_graph.connected_gnp rng 7 0.4 in
        let outcome = Bcg_dynamics.run ~alpha ~rng seed in
        check_bool "converged" true outcome.Bcg_dynamics.converged;
        check_bool "fixed point is pairwise stable" true
          (Bcg.is_pairwise_stable ~alpha outcome.Bcg_dynamics.final)
      done)
    alphas

let test_bcg_small_alpha_completes () =
  (* at α < 1 the only stable graph is complete: the dynamics must build
     every edge *)
  let rng = Prng.create 11 in
  let outcome = Bcg_dynamics.run ~alpha:(rq 1 2) ~rng (Families.path 6) in
  check_bool "reaches complete graph" true (Graph.is_complete outcome.Bcg_dynamics.final);
  check_bool "trace is all additions" true
    (List.for_all
       (function
         | Bcg_dynamics.Add _ -> true
         | Bcg_dynamics.Delete _ -> false)
       outcome.Bcg_dynamics.trace)

let test_bcg_trace_replays () =
  let rng = Prng.create 13 in
  let seed = Nf_graph.Random_graph.connected_gnp rng 6 0.5 in
  let outcome = Bcg_dynamics.run ~alpha:(r 2) ~rng seed in
  let replayed =
    List.fold_left
      (fun g move ->
        match move with
        | Bcg_dynamics.Add (i, j) -> Graph.add_edge g i j
        | Bcg_dynamics.Delete (i, j) -> Graph.remove_edge g i j)
      seed outcome.Bcg_dynamics.trace
  in
  check (Alcotest.testable Graph.pp Graph.equal) "trace replays to final"
    outcome.Bcg_dynamics.final replayed

let test_bcg_sample_stable () =
  let rng = Prng.create 17 in
  let stable = Bcg_dynamics.sample_stable ~alpha:(r 2) ~rng ~n:6 ~attempts:40 in
  check_bool "found at least one" true (stable <> []);
  List.iter
    (fun g -> check_bool "sampled graphs stable" true (Bcg.is_pairwise_stable ~alpha:(r 2) g))
    stable

(* ---------------- UCG dynamics ---------------- *)

let test_ucg_nash_is_fixed_point () =
  (* center-owned star at α ≥ 1 is Nash: no player moves *)
  let star = Families.star 6 in
  let state = Ucg_dynamics.of_graph star ~owner:(fun i _ -> i) in
  (* owner = min endpoint = center 0 for star edges (0, k) *)
  check_bool "star state is nash" true (Ucg_dynamics.is_nash ~alpha:(r 2) state);
  let outcome = Ucg_dynamics.run ~alpha:(r 2) state in
  check Alcotest.int "no rounds needed" 0 outcome.Ucg_dynamics.rounds;
  check_bool "converged" true outcome.Ucg_dynamics.converged

let test_ucg_run_converges_to_nash () =
  let rng = Prng.create 23 in
  List.iter
    (fun alpha ->
      for _ = 1 to 10 do
        let g = Nf_graph.Random_graph.connected_gnp rng 6 0.5 in
        let state = Ucg_dynamics.of_graph g ~owner:(fun i _ -> i) in
        let outcome = Ucg_dynamics.run_random ~alpha ~rng state in
        if outcome.Ucg_dynamics.converged then
          check_bool "fixed point is nash" true
            (Ucg_dynamics.is_nash ~alpha outcome.Ucg_dynamics.final)
      done)
    [ rq 1 2; r 1; r 3 ]

let test_ucg_from_empty () =
  (* from the empty profile someone buys links: the result is connected
     whenever the dynamics converge (disconnection is never a best
     response at finite distance gain) *)
  let outcome = Ucg_dynamics.run ~alpha:(r 2) (Ucg_dynamics.empty 6) in
  check_bool "converged" true outcome.Ucg_dynamics.converged;
  check_bool "connected" true
    (Nf_graph.Connectivity.is_connected outcome.Ucg_dynamics.final.Ucg_dynamics.graph);
  check_bool "nash" true (Ucg_dynamics.is_nash ~alpha:(r 2) outcome.Ucg_dynamics.final)

let test_ucg_state_graph_consistent () =
  (* rebuilding keeps graph = union of owned sets *)
  let rng = Prng.create 29 in
  let g = Nf_graph.Random_graph.connected_gnp rng 6 0.5 in
  let state = Ucg_dynamics.of_graph g ~owner:(fun _ j -> j) in
  let outcome = Ucg_dynamics.run_random ~alpha:(r 1) ~rng state in
  let final = outcome.Ucg_dynamics.final in
  let expected = ref (Graph.empty 6) in
  Array.iteri
    (fun i targets ->
      Nf_util.Bitset.iter (fun j -> expected := Graph.add_edge !expected i j) targets)
    final.Ucg_dynamics.owned;
  check (Alcotest.testable Graph.pp Graph.equal) "graph = union of purchases" !expected
    final.Ucg_dynamics.graph

(* ---------------- Monte-Carlo PoA (large-n workload) ---------------- *)

module Mc_poa = Nf_dynamics.Mc_poa
module Pool = Nf_util.Pool

let test_mc_poa_trial_deterministic () =
  (* identical arguments must reproduce the trial record bit-for-bit,
     including the final graph *)
  let go () =
    Mc_poa.run_trial ~n:40 ~alpha:(r 3) ~max_evals:(60 * 780) ~init_p:None ~seed:12345 0
  in
  let t1 = go () and t2 = go () in
  check_bool "trial records identical" true (t1 = t2);
  check_bool "converged" true t1.Mc_poa.converged

let test_mc_poa_pool_width_parity () =
  (* the CSV is the cross-job determinism contract: jobs=1 and jobs=4 must
     produce byte-identical output for the same seed *)
  let n = 32
  and alpha = r 2
  and trials = 3
  and seed = 99 in
  let p1 = Pool.create ~jobs:1
  and p4 = Pool.create ~jobs:4 in
  Fun.protect
    ~finally:(fun () ->
      Pool.shutdown p1;
      Pool.shutdown p4)
    (fun () ->
      let a = Mc_poa.run ~pool:p1 ~n ~alpha ~trials ~seed () in
      let b = Mc_poa.run ~pool:p4 ~n ~alpha ~trials ~seed () in
      check Alcotest.string "csv identical across pool widths"
        (Mc_poa.to_csv ~n ~alpha a) (Mc_poa.to_csv ~n ~alpha b))

let test_mc_poa_converged_is_stable () =
  (* the walk's improving-move predicates are Bcg's, so converged finals
     must pass the reference stability check — past the one-word ceiling *)
  List.iter
    (fun alpha ->
      let ts = Mc_poa.run ~n:70 ~alpha ~trials:2 ~seed:4242 () in
      List.iter
        (fun t ->
          check_bool "converged within budget" true t.Mc_poa.converged;
          check_bool "final is pairwise stable" true
            (Bcg.is_pairwise_stable ~alpha t.Mc_poa.final);
          check_bool "connected final has social cost" true
            (t.Mc_poa.social_cost <> None);
          match t.Mc_poa.poa with
          | None -> Alcotest.fail "converged connected trial must report PoA"
          | Some q -> check_bool "poa >= 1" true (Rat.compare q (r 1) >= 0))
        ts)
    [ r 2; r 5 ]

let test_mc_poa_summary_csv_and_guards () =
  let n = 32
  and alpha = r 2 in
  let ts = Mc_poa.run ~n ~alpha ~trials:4 ~seed:7 () in
  let s = Mc_poa.summarize ~n ~alpha ts in
  check Alcotest.int "trials" 4 s.Mc_poa.trials;
  check_bool "converged_trials <= trials" true (s.Mc_poa.converged_trials <= 4);
  check (Alcotest.float 1e-9) "theory bound"
    (Theory.poa_upper_bound ~alpha:(Rat.to_float alpha) ~n)
    s.Mc_poa.theory_bound;
  if s.Mc_poa.converged_trials > 0 then begin
    check_bool "mean poa >= 1" true (s.Mc_poa.mean_poa >= 1.0);
    check_bool "max >= mean" true (s.Mc_poa.max_poa >= s.Mc_poa.mean_poa)
  end;
  let csv = Mc_poa.to_csv ~n ~alpha ts in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check Alcotest.int "csv is header + one row per trial" 5 (List.length lines);
  check Alcotest.string "csv header" Mc_poa.csv_header (List.hd lines);
  Alcotest.check_raises "n too small" (Invalid_argument "Mc_poa.run: need n >= 2")
    (fun () -> ignore (Mc_poa.run ~n:1 ~alpha ~trials:1 ~seed:1 ()));
  Alcotest.check_raises "trials too small"
    (Invalid_argument "Mc_poa.run: need trials >= 1") (fun () ->
      ignore (Mc_poa.run ~n:8 ~alpha ~trials:0 ~seed:1 ()))

(* ---------------- Meta (Jackson-Watts digraph) ---------------- *)

let test_meta_counts_match_equilibria () =
  (* the meta analysis' stable count over labeled graphs must agree with a
     direct scan *)
  let alpha = r 2 in
  let a = Nf_dynamics.Meta.analyze ~alpha ~n:4 in
  let direct = ref 0 in
  Nf_enum.Labeled.iter_all 4 (fun g ->
      if Bcg.is_pairwise_stable ~alpha g then incr direct);
  check Alcotest.int "stable counts agree" !direct a.Nf_dynamics.Meta.stable;
  check Alcotest.int "total is 2^6" 64 a.Nf_dynamics.Meta.total

let test_meta_no_closed_cycles () =
  List.iter
    (fun alpha ->
      let a = Nf_dynamics.Meta.analyze ~alpha ~n:4 in
      check_bool "no closed cycles" true (Nf_dynamics.Meta.no_closed_cycles a))
    [ rq 1 2; r 1; rq 3 2; r 3; r 7 ]

let test_meta_reaches_stable () =
  check_bool "path reaches" true
    (Nf_dynamics.Meta.reaches_stable ~alpha:(r 2) (Families.path 5));
  check_bool "stable graph trivially reaches" true
    (Nf_dynamics.Meta.reaches_stable ~alpha:(r 2) (Families.star 5));
  Alcotest.check_raises "n too large" (Invalid_argument "Meta: order out of range (2..6)")
    (fun () -> ignore (Nf_dynamics.Meta.reaches_stable ~alpha:(r 2) (Families.star 8)))

(* ---------------- Stochastic stability ---------------- *)

let test_stochastic_resistances () =
  let stable, r = Nf_dynamics.Stochastic.resistances ~alpha:(r 2) ~n:4 in
  let v = List.length stable in
  check_bool "some stable states" true (v > 0);
  for i = 0 to v - 1 do
    check Alcotest.int "zero diagonal" 0 r.(i).(i);
    for j = 0 to v - 1 do
      if i <> j then
        check_bool "off-diagonal in [1, bits]" true (r.(i).(j) >= 1 && r.(i).(j) <= 6)
    done
  done

let test_stochastic_selects_connected () =
  List.iter
    (fun alpha ->
      let v = Nf_dynamics.Stochastic.analyze ~alpha ~n:4 in
      let ss = v.Nf_dynamics.Stochastic.stochastically_stable in
      check_bool "nonempty" true (ss <> []);
      (* every winner is a stable state *)
      List.iter
        (fun g -> check_bool "winner is stable" true (Bcg.is_pairwise_stable ~alpha g))
        ss;
      (* the observed characterization: winners = connected stable states *)
      let connected_stable =
        List.filter Nf_graph.Connectivity.is_connected v.Nf_dynamics.Stochastic.stable
      in
      check Alcotest.int "winners = connected stable" (List.length connected_stable)
        (List.length ss);
      List.iter
        (fun g -> check_bool "winner connected" true (Nf_graph.Connectivity.is_connected g))
        ss)
    [ rq 3 2; r 2; r 5 ]

let test_stochastic_classes_dedupe () =
  let v = Nf_dynamics.Stochastic.analyze ~alpha:(r 2) ~n:4 in
  let classes = Nf_dynamics.Stochastic.stochastically_stable_classes v in
  let keys = List.map Nf_graph.Graph.adjacency_key classes in
  check Alcotest.int "distinct classes" (List.length keys)
    (List.length (List.sort_uniq compare keys));
  check_bool "fewer classes than labeled" true
    (List.length classes <= List.length v.Nf_dynamics.Stochastic.stochastically_stable)

let test_stochastic_guards () =
  Alcotest.check_raises "n too large" (Invalid_argument "Stochastic: order out of range (2..5)")
    (fun () -> ignore (Nf_dynamics.Stochastic.resistances ~alpha:(r 2) ~n:6))

let () =
  Alcotest.run "nf_dynamics"
    [
      ( "bcg",
        [
          Alcotest.test_case "fixed points" `Quick test_bcg_stable_is_fixed_point;
          Alcotest.test_case "reaches stability" `Quick test_bcg_run_reaches_stability;
          Alcotest.test_case "small alpha completes" `Quick test_bcg_small_alpha_completes;
          Alcotest.test_case "trace replays" `Quick test_bcg_trace_replays;
          Alcotest.test_case "sampling" `Quick test_bcg_sample_stable;
        ] );
      ( "ucg",
        [
          Alcotest.test_case "nash fixed point" `Quick test_ucg_nash_is_fixed_point;
          Alcotest.test_case "converges to nash" `Quick test_ucg_run_converges_to_nash;
          Alcotest.test_case "from empty" `Quick test_ucg_from_empty;
          Alcotest.test_case "state consistency" `Quick test_ucg_state_graph_consistent;
        ] );
      ( "mc_poa",
        [
          Alcotest.test_case "trial determinism" `Quick test_mc_poa_trial_deterministic;
          Alcotest.test_case "pool width parity" `Quick test_mc_poa_pool_width_parity;
          Alcotest.test_case "converged finals stable" `Quick test_mc_poa_converged_is_stable;
          Alcotest.test_case "summary, csv, guards" `Quick test_mc_poa_summary_csv_and_guards;
        ] );
      ( "meta",
        [
          Alcotest.test_case "counts" `Quick test_meta_counts_match_equilibria;
          Alcotest.test_case "no closed cycles" `Quick test_meta_no_closed_cycles;
          Alcotest.test_case "reachability" `Quick test_meta_reaches_stable;
        ] );
      ( "stochastic",
        [
          Alcotest.test_case "resistances" `Quick test_stochastic_resistances;
          Alcotest.test_case "selects connected" `Quick test_stochastic_selects_connected;
          Alcotest.test_case "classes" `Quick test_stochastic_classes_dedupe;
          Alcotest.test_case "guards" `Quick test_stochastic_guards;
        ] );
    ]
