(* Registry-driven differential harness for the orbit quotient
   (DESIGN.md §11): for every registered game, annotating through the
   symmetry path — with either detection tier — must agree exactly with
   the unquotiented loop on every connected graph up to n = 7 and on the
   named gallery.  Games without a symmetry annotator (weighted BCG)
   ride along: [Game.annotate_sym_ws] falls back to the plain loop, so
   the diff doubles as a routing test.

   The UCG orientation search makes Union-region games far more
   expensive per graph, so their exhaustive leg stops at n = 6 (set
   NETFORM_ORBIT_DIFF_FULL=1 for the ~30 s n = 7 sweep) and their
   gallery leg at order 10. *)

open Netform
module Graph = Nf_graph.Graph
module Kernel = Nf_graph.Kernel
module Sym = Nf_iso.Symmetry
module E = Nf_analysis.Equilibria

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let full_diff =
  match Sys.getenv_opt "NETFORM_ORBIT_DIFF_FULL" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

(* n caps keyed off the region shape: Union regions mean an orientation
   search per annotation (UCG), orders of magnitude above the interval
   games' edge scans *)
let exhaustive_cap (Game.Any (module G)) =
  match G.region_kind with
  | Game.Region.Interval -> 7
  | Game.Region.Union -> if full_diff then 7 else 6

let gallery_cap (Game.Any (module G)) =
  match G.region_kind with Game.Region.Interval -> 30 | Game.Region.Union -> 10

let diff pack ws g label =
  match pack with
  | Game.Any ((module G) as game) ->
    let plain = G.stable_region_ws ws g in
    let agree sym = Game.Region.equal G.region_kind plain (Game.annotate_sym_ws game ws sym g) in
    if not (agree (Sym.detect_twins g)) then
      Alcotest.failf "%s: %s: twin-tier quotient diverges from plain scan" G.name label;
    if not (agree (Sym.detect_full g)) then
      Alcotest.failf "%s: %s: full-group quotient diverges from plain scan" G.name label

let test_exhaustive pack () =
  let count = ref 0 in
  Kernel.with_ws (fun ws ->
      for n = 3 to exhaustive_cap pack do
        List.iter
          (fun g ->
            diff pack ws g (Printf.sprintf "n=%d #%d" n !count);
            incr count)
          (Nf_enum.Unlabeled.connected_graphs n)
      done);
  check_bool (Printf.sprintf "%s: %d graphs diffed" (Game.name pack) !count) true (!count > 0)

let test_gallery pack () =
  Kernel.with_ws (fun ws ->
      List.iter
        (fun (name, g) -> if Graph.order g <= gallery_cap pack then diff pack ws g name)
        Nf_named.Gallery.all)

(* ---- the per-chunk symmetry memo (satellite: clear_cache coverage) ---- *)

let test_memo_lifecycle () =
  Sym.set_quotient_enabled false;
  E.clear_cache ();
  ignore (E.bcg_annotated 5);
  check_int "quotient off: no memo entries" 0 (E.orbit_memo_size ());
  E.clear_cache ();
  Sym.set_quotient_enabled true;
  ignore (E.bcg_annotated 5);
  check_bool "quotient on: memo populated" true (E.orbit_memo_size () > 0);
  let size = E.orbit_memo_size () in
  ignore (E.transfers_annotated 5);
  check_int "second game reuses the chunk memo" size (E.orbit_memo_size ());
  E.clear_cache ();
  check_int "clear_cache drops the memo" 0 (E.orbit_memo_size ())

let test_flag_parity () =
  (* the pooled annotate path itself, flag off vs on, must be
     list-identical (same enumeration order, same regions) *)
  let annotated flag =
    Sym.set_quotient_enabled flag;
    E.clear_cache ();
    E.bcg_annotated 6
  in
  let off = annotated false and on = annotated true in
  Sym.set_quotient_enabled true;
  E.clear_cache ();
  check_int "same length" (List.length off) (List.length on);
  List.iter2
    (fun (g1, r1) (g2, r2) ->
      check_bool "same graph order" true (Graph.equal g1 g2);
      check_bool "same region" true (Nf_util.Interval.equal r1 r2))
    off on

let () =
  let registry_cases =
    List.concat_map
      (fun pack ->
        let name = Game.name pack in
        [
          Alcotest.test_case (name ^ " exhaustive") `Quick (test_exhaustive pack);
          Alcotest.test_case (name ^ " gallery") `Quick (test_gallery pack);
        ])
      (Game_registry.all ())
  in
  Alcotest.run "nf_orbit"
    [
      ("differential", registry_cases);
      ( "memo",
        [
          Alcotest.test_case "lifecycle" `Quick test_memo_lifecycle;
          Alcotest.test_case "flag parity" `Quick test_flag_parity;
        ] );
    ]
