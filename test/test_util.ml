(* Tests for nf_util: extended integers, rationals, intervals, bitsets,
   subset iteration, PRNG determinism, statistics, table rendering. *)

open Nf_util

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---------------- Ext_int ---------------- *)

let ext = Alcotest.testable Ext_int.pp Ext_int.equal

let test_ext_int_add () =
  check ext "fin+fin" (Ext_int.Fin 5) Ext_int.(add (Fin 2) (Fin 3));
  check ext "fin+inf" Ext_int.Inf Ext_int.(add (Fin 2) Inf);
  check ext "inf+inf" Ext_int.Inf Ext_int.(add Inf Inf)

let test_ext_int_sub () =
  check ext "fin-fin" (Ext_int.Fin (-1)) Ext_int.(sub (Fin 2) (Fin 3));
  check ext "inf-fin" Ext_int.Inf Ext_int.(sub Inf (Fin 3));
  Alcotest.check_raises "fin-inf raises"
    (Invalid_argument "Ext_int.sub: infinite subtrahend") (fun () ->
      ignore (Ext_int.sub (Ext_int.Fin 1) Ext_int.Inf))

let test_ext_int_mul () =
  check ext "3*fin" (Ext_int.Fin 12) (Ext_int.mul_int 3 (Ext_int.Fin 4));
  check ext "0*inf is 0" (Ext_int.Fin 0) (Ext_int.mul_int 0 Ext_int.Inf);
  check ext "2*inf" Ext_int.Inf (Ext_int.mul_int 2 Ext_int.Inf)

let test_ext_int_compare () =
  check_bool "fin < inf" true Ext_int.(Fin 1000000 < Inf);
  check_bool "inf < inf is false" false Ext_int.(Inf < Inf);
  check_bool "inf <= inf" true Ext_int.(Inf <= Inf);
  check ext "min" (Ext_int.Fin 1) (Ext_int.min (Ext_int.Fin 1) Ext_int.Inf);
  check ext "max" Ext_int.Inf (Ext_int.max (Ext_int.Fin 1) Ext_int.Inf);
  check_bool "to_float inf" true (Ext_int.to_float Ext_int.Inf = infinity)

let test_ext_int_sum () =
  check ext "sum finite" (Ext_int.Fin 6)
    (Ext_int.sum [ Ext_int.Fin 1; Ext_int.Fin 2; Ext_int.Fin 3 ]);
  check ext "sum with inf" Ext_int.Inf (Ext_int.sum [ Ext_int.Fin 1; Ext_int.Inf ]);
  check ext "empty sum" Ext_int.zero (Ext_int.sum [])

(* ---------------- Rat ---------------- *)

let rat = Alcotest.testable Rat.pp Rat.equal

let test_rat_normalization () =
  check rat "6/4 = 3/2" (Rat.make 3 2) (Rat.make 6 4);
  check rat "neg den" (Rat.make (-1) 2) (Rat.make 1 (-2));
  check_int "den positive" 2 (Rat.den (Rat.make 1 (-2)));
  check rat "zero" Rat.zero (Rat.make 0 17);
  check_string "pp integer" "5" (Rat.to_string (Rat.make 10 2));
  check_string "pp fraction" "-3/7" (Rat.to_string (Rat.make 3 (-7)))

let test_rat_arith () =
  check rat "add" (Rat.make 5 6) (Rat.add (Rat.make 1 2) (Rat.make 1 3));
  check rat "sub" (Rat.make 1 6) (Rat.sub (Rat.make 1 2) (Rat.make 1 3));
  check rat "mul" (Rat.make 1 6) (Rat.mul (Rat.make 1 2) (Rat.make 1 3));
  check rat "div" (Rat.make 3 2) (Rat.div (Rat.make 1 2) (Rat.make 1 3));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Rat.div Rat.one Rat.zero))

let test_rat_compare () =
  check_bool "1/3 < 1/2" true Rat.(make 1 3 < make 1 2);
  check_bool "-1/2 < 1/3" true Rat.(make (-1) 2 < make 1 3);
  check_bool "is_integer" true (Rat.is_integer (Rat.make 4 2));
  check_bool "not is_integer" false (Rat.is_integer (Rat.make 1 2));
  check_bool "to_float" true (Rat.to_float (Rat.make 1 2) = 0.5)

let test_rat_of_string () =
  check rat "integer" (Rat.of_int 5) (Rat.of_string "5");
  check rat "negative integer" (Rat.of_int (-12)) (Rat.of_string "-12");
  check rat "fraction" (Rat.make 3 2) (Rat.of_string "3/2");
  check rat "negative fraction" (Rat.make (-3) 7) (Rat.of_string "-3/7");
  check rat "normalizes" (Rat.make 1 2) (Rat.of_string "2/4");
  check rat "negative denominator" (Rat.make (-1) 2) (Rat.of_string "1/-2");
  check rat "zero" Rat.zero (Rat.of_string "0");
  List.iter
    (fun s ->
      check_bool (Printf.sprintf "%S rejected" s) true (Rat.of_string_opt s = None);
      Alcotest.check_raises (Printf.sprintf "%S raises" s)
        (Invalid_argument
           (Printf.sprintf "Rat.of_string: %S is not an integer or P/Q rational" s))
        (fun () -> ignore (Rat.of_string s)))
    [ ""; " "; "1/0"; "0/0"; "1.5"; "1e3"; "1/"; "/2"; "1//2"; "0x10"; "1_000"; "+1"; "- 1"; "1/2/3" ]

let rat_arbitrary =
  QCheck.map
    (fun (n, d) -> Rat.make n (if d = 0 then 1 else d))
    QCheck.(pair (int_range (-50) 50) (int_range (-20) 20))

(* satellite contract: of_string is an exact left inverse of to_string *)
let prop_rat_string_roundtrip =
  QCheck.Test.make ~name:"rat of_string (to_string r) = r" ~count:500 rat_arbitrary
    (fun r -> Rat.equal r (Rat.of_string (Rat.to_string r)))

(* and on raw P/Q spellings it agrees with make, normalization included *)
let prop_rat_of_string_pq =
  QCheck.Test.make ~name:"rat of_string P/Q = make P Q" ~count:500
    QCheck.(pair (int_range (-200) 200) (int_range (-40) 40))
    (fun (p, q) ->
      let q = if q = 0 then 1 else q in
      Rat.equal (Rat.make p q) (Rat.of_string (Printf.sprintf "%d/%d" p q)))

let prop_rat_add_commutative =
  QCheck.Test.make ~name:"rat add commutative" ~count:500
    (QCheck.pair rat_arbitrary rat_arbitrary) (fun (a, b) ->
      Rat.equal (Rat.add a b) (Rat.add b a))

let prop_rat_mul_distributes =
  QCheck.Test.make ~name:"rat mul distributes over add" ~count:500
    (QCheck.triple rat_arbitrary rat_arbitrary rat_arbitrary) (fun (a, b, c) ->
      Rat.equal (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c)))

let prop_rat_ordering_total =
  QCheck.Test.make ~name:"rat compare antisymmetric" ~count:500
    (QCheck.pair rat_arbitrary rat_arbitrary) (fun (a, b) ->
      Rat.compare a b = -Rat.compare b a)

(* ---------------- Interval ---------------- *)

let interval = Alcotest.testable Interval.pp Interval.equal

let fin k = Interval.Finite (Rat.of_int k)

let test_interval_mem () =
  let i = Interval.open_closed (Rat.of_int 1) (fin 5) in
  check_bool "1 not in (1,5]" false (Interval.mem (Rat.of_int 1) i);
  check_bool "5 in (1,5]" true (Interval.mem (Rat.of_int 5) i);
  check_bool "3/2 in (1,5]" true (Interval.mem (Rat.make 3 2) i);
  check_bool "6 not in (1,5]" false (Interval.mem (Rat.of_int 6) i)

let test_interval_empty () =
  check_bool "reversed is empty" true
    (Interval.is_empty
       (Interval.make ~lo:(fin 5) ~lo_closed:true ~hi:(fin 1) ~hi_closed:true));
  check_bool "open point is empty" true
    (Interval.is_empty
       (Interval.make ~lo:(fin 2) ~lo_closed:false ~hi:(fin 2) ~hi_closed:true));
  check_bool "closed point non-empty" false (Interval.is_empty (Interval.point Rat.one));
  check_bool "full nonempty" false (Interval.is_empty Interval.full)

let test_interval_inter () =
  let a = Interval.closed (Rat.of_int 0) (Rat.of_int 10) in
  let b = Interval.open_closed (Rat.of_int 5) (fin 20) in
  check interval "inter" (Interval.open_closed (Rat.of_int 5) (fin 10)) (Interval.inter a b);
  let disjoint = Interval.closed (Rat.of_int 11) (Rat.of_int 12) in
  check_bool "disjoint inter empty" true (Interval.is_empty (Interval.inter a disjoint))

let test_interval_unbounded () =
  let i = Interval.open_closed (Rat.of_int 2) Interval.Pos_inf in
  check_bool "mem huge" true (Interval.mem (Rat.of_int 1000000) i);
  check_bool "mem 2 false" false (Interval.mem (Rat.of_int 2) i);
  check_bool "subset of full" true (Interval.subset i Interval.full)

let test_interval_union_merge () =
  let u =
    Interval.Union.of_list
      [
        Interval.closed (Rat.of_int 0) (Rat.of_int 2);
        Interval.closed (Rat.of_int 1) (Rat.of_int 3);
        Interval.closed (Rat.of_int 5) (Rat.of_int 6);
      ]
  in
  check_int "merged to two pieces" 2 (List.length (Interval.Union.to_list u));
  check_bool "mem 2.5" true (Interval.Union.mem (Rat.make 5 2) u);
  check_bool "mem 4 false" false (Interval.Union.mem (Rat.of_int 4) u)

let test_interval_union_touching () =
  (* (0,1] and (1,2] must merge (shared endpoint covered by the first) *)
  let u =
    Interval.Union.of_list
      [
        Interval.open_closed (Rat.of_int 0) (fin 1);
        Interval.open_closed (Rat.of_int 1) (fin 2);
      ]
  in
  check_int "touching merge" 1 (List.length (Interval.Union.to_list u));
  (* (0,1) and (1,2) must NOT merge: 1 is uncovered *)
  let v =
    Interval.Union.of_list
      [
        Interval.make ~lo:(fin 0) ~lo_closed:false ~hi:(fin 1) ~hi_closed:false;
        Interval.make ~lo:(fin 1) ~lo_closed:false ~hi:(fin 2) ~hi_closed:false;
      ]
  in
  check_int "gap preserved" 2 (List.length (Interval.Union.to_list v));
  check_bool "1 not in union" false (Interval.Union.mem Rat.one v)

(* ---------------- Bitset ---------------- *)

let test_bitset_basics () =
  let s = Bitset.of_list [ 0; 3; 7 ] in
  check_int "cardinal" 3 (Bitset.cardinal s);
  check_bool "mem 3" true (Bitset.mem 3 s);
  check_bool "mem 4" false (Bitset.mem 4 s);
  check_int "min_elt" 0 (Bitset.min_elt s);
  check (Alcotest.list Alcotest.int) "elements" [ 0; 3; 7 ] (Bitset.elements s);
  check_int "remove" 2 (Bitset.cardinal (Bitset.remove 3 s));
  check_int "full" 5 (Bitset.cardinal (Bitset.full 5))

let test_bitset_algebra () =
  let a = Bitset.of_list [ 1; 2; 3 ]
  and b = Bitset.of_list [ 3; 4 ] in
  check (Alcotest.list Alcotest.int) "union" [ 1; 2; 3; 4 ]
    (Bitset.elements (Bitset.union a b));
  check (Alcotest.list Alcotest.int) "inter" [ 3 ] (Bitset.elements (Bitset.inter a b));
  check (Alcotest.list Alcotest.int) "diff" [ 1; 2 ] (Bitset.elements (Bitset.diff a b));
  check_bool "subset" true (Bitset.subset (Bitset.of_list [ 1; 3 ]) a);
  check_bool "not subset" false (Bitset.subset b a)

let test_bitset_range_message () =
  Alcotest.check_raises "element 62 names the actual limit"
    (Invalid_argument
       "Bitset: element 62 out of range 0..61 (one-word bitset; use Bitset_w rows \
        beyond 62 elements)") (fun () -> ignore (Bitset.singleton 62));
  Alcotest.check_raises "negative element"
    (Invalid_argument
       "Bitset: element -1 out of range 0..61 (one-word bitset; use Bitset_w rows \
        beyond 62 elements)") (fun () -> ignore (Bitset.singleton (-1)))

(* ---------------- Bitset_w ---------------- *)

let test_bitset_w_layout () =
  check_int "62 usable bits per word" 62 Bitset_w.bits_per_word;
  check_int "words_for 0" 1 (Bitset_w.words_for 0);
  check_int "words_for 62" 1 (Bitset_w.words_for 62);
  check_int "words_for 63" 2 (Bitset_w.words_for 63);
  check_int "words_for 124" 2 (Bitset_w.words_for 124);
  check_int "words_for 125" 3 (Bitset_w.words_for 125);
  (* one-word rows are bit-for-bit the old Bitset *)
  let a = Array.make 1 0 in
  Bitset_w.set a 0 5;
  Bitset_w.set a 0 61;
  check_int "one-word row = Bitset int" (Bitset.of_list [ 5; 61 ] :> int) a.(0)

let test_bitset_w_ops () =
  let words = 3 in
  let off = words in
  (* work in the middle row of a 3-row slab to exercise offsets *)
  let a = Array.make (3 * words) 0 in
  List.iter (fun j -> Bitset_w.set a off j) [ 0; 61; 62; 63; 123; 124; 170 ];
  check_bool "get across boundary" true (Bitset_w.get a off 62);
  check_bool "absent" false (Bitset_w.get a off 64);
  check_int "cardinal" 7 (Bitset_w.cardinal a off words);
  Bitset_w.clear a off 62;
  check_bool "cleared" false (Bitset_w.get a off 62);
  Bitset_w.toggle a off 62;
  Bitset_w.toggle a off 1;
  check_int "after toggles" 8 (Bitset_w.cardinal a off words);
  let seen = ref [] in
  Bitset_w.iter (fun j -> seen := j :: !seen) a off words;
  check (Alcotest.list Alcotest.int) "iter ascending"
    [ 0; 1; 61; 62; 63; 123; 124; 170 ]
    (List.rev !seen);
  (* neighbouring rows untouched *)
  check_bool "row 0 empty" true (Bitset_w.is_empty_row a 0 words);
  check_bool "row 2 empty" true (Bitset_w.is_empty_row a (2 * words) words)

let test_bitset_w_row_algebra () =
  let words = 2 in
  let a = Array.make (2 * words) 0 in
  List.iter (fun j -> Bitset_w.set a 0 j) [ 3; 70 ];
  List.iter (fun j -> Bitset_w.set a words j) [ 3; 70 ];
  check_bool "equal rows" true (Bitset_w.equal_rows a 0 a words words);
  Bitset_w.set a words 100;
  check_bool "unequal rows" false (Bitset_w.equal_rows a 0 a words words);
  Bitset_w.union_into a 0 a words words;
  check_bool "union picked up 100" true (Bitset_w.get a 0 100);
  check_int "union cardinal" 3 (Bitset_w.cardinal a 0 words)

let test_bitset_w_full_mask () =
  check_int "full_word 0" 0 (Bitset_w.full_word 0);
  check_int "full_word 62 is the one-word full set" (Bitset.full 62 :> int)
    (Bitset_w.full_word 62);
  let words = Bitset_w.words_for 100 in
  let a = Array.make words 0 in
  Bitset_w.blit_full_mask a 0 100 words;
  check_int "blit_full_mask cardinal" 100 (Bitset_w.cardinal a 0 words);
  check_bool "element 99 present" true (Bitset_w.get a 0 99);
  check_bool "no stray high bit" false (Bitset_w.get a 0 100);
  (* bit_index on isolated bits over the full word range *)
  for k = 0 to 61 do
    check_int "bit_index" k (Bitset_w.bit_index (1 lsl k))
  done

let prop_bitset_w_matches_bitset =
  QCheck.Test.make ~name:"one-word Bitset_w row mirrors Bitset ops" ~count:200
    QCheck.(list (int_bound 61))
    (fun elts ->
      let s = List.fold_left (fun acc k -> Bitset.add k acc) Bitset.empty elts in
      let a = Array.make 1 0 in
      List.iter (fun k -> Bitset_w.set a 0 k) elts;
      a.(0) = (s :> int)
      && Bitset_w.cardinal a 0 1 = Bitset.cardinal s
      &&
      let seen = ref [] in
      Bitset_w.iter (fun j -> seen := j :: !seen) a 0 1;
      List.rev !seen = Bitset.elements s)

(* ---------------- Subset ---------------- *)

let test_subset_count () =
  let ground = Bitset.of_list [ 0; 2; 5 ] in
  let seen = ref [] in
  Subset.iter_subsets ground (fun s -> seen := s :: !seen);
  check_int "2^3 subsets" 8 (List.length !seen);
  check_int "all distinct" 8 (List.length (List.sort_uniq compare !seen));
  List.iter (fun s -> check_bool "subset of ground" true (Bitset.subset s ground)) !seen

let test_subset_by_size () =
  let ground = Bitset.full 5 in
  let count = ref 0 in
  Subset.iter_subsets_of_size ground 2 (fun _ -> incr count);
  check_int "C(5,2)" 10 !count

let test_iter_pairs () =
  let count = ref 0 in
  Subset.iter_pairs 6 (fun i j ->
      check_bool "ordered" true (i < j);
      incr count);
  check_int "C(6,2)" 15 !count

let test_exists_subset () =
  let ground = Bitset.full 4 in
  check_bool "finds" true (Subset.exists_subset ground (fun s -> Bitset.cardinal s = 3));
  check_bool "not found" false (Subset.exists_subset ground (fun s -> Bitset.cardinal s > 4))

let test_count_subsets_overflow () =
  (* regression: [1 lsl 62] lands in the sign bit of a 63-bit int, so a
     full 62-element ground set used to return a negative "count" *)
  check_int "2^10" 1024 (Subset.count_subsets (Bitset.full 10));
  check_int "2^61 stays positive" (1 lsl 61) (Subset.count_subsets (Bitset.full 61));
  Alcotest.check_raises "2^62 refuses instead of overflowing"
    (Invalid_argument
       (Printf.sprintf
          "Subset.count_subsets: 2^62 exceeds the native int range (cardinal must be \
           < %d)" (Sys.int_size - 1)))
    (fun () -> ignore (Subset.count_subsets (Bitset.full 62)))

(* ---------------- Prng ---------------- *)

let test_prng_deterministic () =
  let a = Prng.create 42
  and b = Prng.create 42 in
  let xs = List.init 20 (fun _ -> Prng.int a 1000)
  and ys = List.init 20 (fun _ -> Prng.int b 1000) in
  check (Alcotest.list Alcotest.int) "same seed same stream" xs ys;
  let c = Prng.create 43 in
  let zs = List.init 20 (fun _ -> Prng.int c 1000) in
  check_bool "different seed different stream" true (xs <> zs)

let test_prng_bounds () =
  let rng = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 10 in
    check_bool "in range" true (v >= 0 && v < 10);
    let f = Prng.float rng 2.0 in
    check_bool "float in range" true (f >= 0.0 && f < 2.0)
  done

let test_prng_shuffle_permutes () =
  let rng = Prng.create 11 in
  let a = Array.init 20 Fun.id in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "is permutation" (Array.init 20 Fun.id) sorted

(* ---------------- Stats ---------------- *)

let test_stats () =
  let s = Stats.of_list [ 1.0; 2.0; 3.0; 4.0 ] in
  check_int "count" 4 (Stats.count s);
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean s);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.min s);
  check (Alcotest.float 1e-9) "max" 4.0 (Stats.max s);
  check (Alcotest.float 1e-9) "variance" 1.25 (Stats.variance s);
  check_bool "empty mean nan" true (Float.is_nan (Stats.mean Stats.empty))

let test_progress_meter () =
  (* injected fake clock: fully deterministic rate/ETA *)
  let t = ref 0.0 in
  let now () = !t in
  let m = Stats.Progress.create ~total:100 ~now () in
  check_int "starts at zero" 0 (Stats.Progress.count m);
  Stats.Progress.tick m 40;
  t := 2.0;
  check_int "position" 40 (Stats.Progress.count m);
  check (Alcotest.float 1e-9) "rate" 20.0 (Stats.Progress.rate m);
  (match Stats.Progress.eta m with
  | Some eta -> check (Alcotest.float 1e-9) "eta" 3.0 eta
  | None -> Alcotest.fail "expected an ETA");
  let line = Stats.Progress.line m in
  check_bool "line has position" true
    (let contains needle =
       let nl = String.length needle and hl = String.length line in
       let rec scan i = i + nl <= hl && (String.sub line i nl = needle || scan (i + 1)) in
       scan 0
     in
     contains "40/100" && contains "40%");
  Alcotest.check_raises "negative tick"
    (Invalid_argument "Stats.Progress.tick: negative increment") (fun () ->
      Stats.Progress.tick m (-1))

let test_progress_resumed_rate_excludes_carry_over () =
  let t = ref 0.0 in
  let m = Stats.Progress.create ~total:100 ~initial:60 ~now:(fun () -> !t) () in
  check_int "carry-over counted in position" 60 (Stats.Progress.count m);
  Stats.Progress.tick m 10;
  t := 5.0;
  (* 10 fresh items over 5s: the 60 inherited items must not inflate it *)
  check (Alcotest.float 1e-9) "rate from fresh work only" 2.0 (Stats.Progress.rate m);
  match Stats.Progress.eta m with
  | Some eta -> check (Alcotest.float 1e-9) "eta for the remaining 30" 15.0 eta
  | None -> Alcotest.fail "expected an ETA"

(* ---------------- Table / Ascii_plot ---------------- *)

let test_table_render () =
  let t = Table.create [ "alpha"; "poa" ] in
  Table.add_row t [ "0.5"; "1.0" ];
  Table.add_row t [ "12"; "1.25" ];
  let out = Table.render t in
  check_bool "has header" true (String.length out > 0);
  let lines = String.split_on_char '\n' out in
  check_bool "aligned columns" true
    (match lines with
    | header :: _sep :: row :: _ ->
      String.index header 'p' = String.index row '1' + 2 || String.length row > 0
    | _ -> false)

let test_ascii_plot_renders () =
  let series =
    [
      { Ascii_plot.label = "ucg"; marker = '*'; points = [ (0., 1.); (1., 2.); (2., 1.5) ] };
      { Ascii_plot.label = "bcg"; marker = 'o'; points = [ (0., 1.1); (1., 1.9) ] };
    ]
  in
  let out = Ascii_plot.render ~title:"demo" series in
  check_bool "mentions title" true (String.length out > 4 && String.sub out 0 4 = "demo");
  check_bool "contains markers" true (String.contains out '*' && String.contains out 'o');
  (* robust to degenerate inputs *)
  let empty = Ascii_plot.render ~title:"empty" [ { Ascii_plot.label = "x"; marker = 'x'; points = [] } ] in
  check_bool "empty handled" true (String.length empty > 0)

(* random intervals over small rationals *)
let interval_arbitrary =
  let endpoint =
    QCheck.Gen.(
      frequency
        [
          (1, return Interval.Neg_inf);
          (1, return Interval.Pos_inf);
          (6, map2 (fun n d -> Interval.Finite (Rat.make n (1 + abs d))) (int_range (-20) 20) (int_range 0 6));
        ])
  in
  QCheck.make
    ~print:(fun i -> Interval.to_string i)
    QCheck.Gen.(
      map
        (fun (lo, lc, hi, hc) -> Interval.make ~lo ~lo_closed:lc ~hi ~hi_closed:hc)
        (quad endpoint bool endpoint bool))

let rat_points =
  List.concat_map (fun n -> [ Rat.of_int n; Rat.make n 2; Rat.make n 3 ]) [ -21; -7; -1; 0; 1; 3; 8; 21 ]

let prop_inter_is_conjunction =
  QCheck.Test.make ~name:"interval inter = pointwise and" ~count:300
    (QCheck.pair interval_arbitrary interval_arbitrary) (fun (a, b) ->
      let c = Interval.inter a b in
      List.for_all
        (fun x -> Interval.mem x c = (Interval.mem x a && Interval.mem x b))
        rat_points)

let prop_inter_commutative =
  QCheck.Test.make ~name:"interval inter commutative" ~count:300
    (QCheck.pair interval_arbitrary interval_arbitrary) (fun (a, b) ->
      Interval.equal (Interval.inter a b) (Interval.inter b a))

let prop_subset_via_inter =
  QCheck.Test.make ~name:"subset consistent with inter" ~count:300
    (QCheck.pair interval_arbitrary interval_arbitrary) (fun (a, b) ->
      if Interval.subset a b then Interval.equal (Interval.inter a b) a else true)

let prop_union_mem_disjunction =
  QCheck.Test.make ~name:"union mem = any member" ~count:300
    (QCheck.list_of_size (QCheck.Gen.int_range 0 5) interval_arbitrary) (fun intervals ->
      let u = Interval.Union.of_list intervals in
      List.for_all
        (fun x -> Interval.Union.mem x u = List.exists (Interval.mem x) intervals)
        rat_points)

let prop_union_pieces_disjoint_sorted =
  QCheck.Test.make ~name:"union normal form" ~count:300
    (QCheck.list_of_size (QCheck.Gen.int_range 0 6) interval_arbitrary) (fun intervals ->
      let pieces = Interval.Union.to_list (Interval.Union.of_list intervals) in
      (* no piece empty, and consecutive pieces neither overlap nor touch *)
      List.for_all (fun p -> not (Interval.is_empty p)) pieces
      &&
      let rec check = function
        | a :: (b :: _ as rest) ->
          (match (Interval.bounds a, Interval.bounds b) with
          | Some (_, _, hi, hi_closed), Some (lo, lo_closed, _, _) ->
            let c = Interval.compare_endpoint hi lo in
            (c < 0 || (c = 0 && (not hi_closed) && not lo_closed)) && check rest
          | _ -> false)
        | _ -> true
      in
      check pieces)

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "nf_util"
    [
      ( "ext_int",
        [
          Alcotest.test_case "add" `Quick test_ext_int_add;
          Alcotest.test_case "sub" `Quick test_ext_int_sub;
          Alcotest.test_case "mul_int" `Quick test_ext_int_mul;
          Alcotest.test_case "compare/min/max" `Quick test_ext_int_compare;
          Alcotest.test_case "sum" `Quick test_ext_int_sum;
        ] );
      ( "rat",
        [
          Alcotest.test_case "normalization" `Quick test_rat_normalization;
          Alcotest.test_case "arithmetic" `Quick test_rat_arith;
          Alcotest.test_case "compare" `Quick test_rat_compare;
          Alcotest.test_case "of_string" `Quick test_rat_of_string;
          qcheck prop_rat_string_roundtrip;
          qcheck prop_rat_of_string_pq;
          qcheck prop_rat_add_commutative;
          qcheck prop_rat_mul_distributes;
          qcheck prop_rat_ordering_total;
        ] );
      ( "interval",
        [
          Alcotest.test_case "mem" `Quick test_interval_mem;
          Alcotest.test_case "empty" `Quick test_interval_empty;
          Alcotest.test_case "inter" `Quick test_interval_inter;
          Alcotest.test_case "unbounded" `Quick test_interval_unbounded;
          Alcotest.test_case "union merge" `Quick test_interval_union_merge;
          Alcotest.test_case "union touching" `Quick test_interval_union_touching;
          qcheck prop_inter_is_conjunction;
          qcheck prop_inter_commutative;
          qcheck prop_subset_via_inter;
          qcheck prop_union_mem_disjunction;
          qcheck prop_union_pieces_disjoint_sorted;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basics" `Quick test_bitset_basics;
          Alcotest.test_case "algebra" `Quick test_bitset_algebra;
          Alcotest.test_case "range message" `Quick test_bitset_range_message;
        ] );
      ( "bitset_w",
        [
          Alcotest.test_case "layout" `Quick test_bitset_w_layout;
          Alcotest.test_case "ops across words" `Quick test_bitset_w_ops;
          Alcotest.test_case "row algebra" `Quick test_bitset_w_row_algebra;
          Alcotest.test_case "full masks / bit_index" `Quick test_bitset_w_full_mask;
          qcheck prop_bitset_w_matches_bitset;
        ] );
      ( "subset",
        [
          Alcotest.test_case "count" `Quick test_subset_count;
          Alcotest.test_case "by size" `Quick test_subset_by_size;
          Alcotest.test_case "iter_pairs" `Quick test_iter_pairs;
          Alcotest.test_case "exists" `Quick test_exists_subset;
          Alcotest.test_case "count overflow guard" `Quick test_count_subsets_overflow;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "shuffle" `Quick test_prng_shuffle_permutes;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats;
          Alcotest.test_case "progress meter" `Quick test_progress_meter;
          Alcotest.test_case "progress resume" `Quick test_progress_resumed_rate_excludes_carry_over;
        ] );
      ( "render",
        [
          Alcotest.test_case "table" `Quick test_table_render;
          Alcotest.test_case "ascii plot" `Quick test_ascii_plot_renders;
        ] );
    ]
