(* Tests for the unilateral connection game: acceptance, best response,
   orientation search, exact Nash α-sets, and the paper's footnotes 5 and
   7 (cycles and the Petersen graph). *)

open Netform
module Graph = Nf_graph.Graph
module Bitset = Nf_util.Bitset
module Rat = Nf_util.Rat
module Interval = Nf_util.Interval
module Prng = Nf_util.Prng
module Families = Nf_named.Families
module Gallery = Nf_named.Gallery

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let r = Rat.of_int
let rq = Rat.make
let union = Alcotest.testable Interval.Union.pp Interval.Union.equal

let closed_ray lo =
  Interval.make ~lo:(Interval.Finite (r lo)) ~lo_closed:true ~hi:Interval.Pos_inf
    ~hi_closed:false

(* ---------------- acceptance ---------------- *)

let test_accepts_star_center () =
  let g = Families.star 5 in
  let all_leaves = Bitset.of_list [ 1; 2; 3; 4 ] in
  (* the center owning everything never gains by dropping (bridges) and
     has nothing to buy *)
  check_bool "center accepts at alpha=2" true
    (Ucg.accepts ~alpha:(r 2) g 0 ~owned:all_leaves);
  (* a leaf owning nothing deviates profitably iff α < 1 (buy a link to
     another leaf: pay α, save distance 1) *)
  check_bool "leaf accepts at alpha=2" true (Ucg.accepts ~alpha:(r 2) g 1 ~owned:Bitset.empty);
  check_bool "leaf rejects at alpha=1/2" false
    (Ucg.accepts ~alpha:(rq 1 2) g 1 ~owned:Bitset.empty)

let test_acceptance_interval_star () =
  let g = Families.star 5 in
  let i = Ucg.acceptance_interval g 1 ~owned:Bitset.empty in
  check (Alcotest.testable Interval.pp Interval.equal) "leaf interval [1,inf)"
    (closed_ray 1) i

let test_best_response () =
  let g = Families.star 5 in
  (* at small α a leaf's best response adds links to all other leaves *)
  let targets, _cost = Ucg.best_response ~alpha:(rq 1 4) g 1 ~owned:Bitset.empty in
  check_bool "buys the other leaves" true (Bitset.cardinal targets = 3);
  (* at large α the empty strategy is already optimal *)
  let targets2, _ = Ucg.best_response ~alpha:(r 3) g 1 ~owned:Bitset.empty in
  check_bool "keeps nothing" true (Bitset.is_empty targets2)

(* ---------------- whole-graph Nash sets ---------------- *)

let test_nash_set_complete () =
  (* K_n: dropping k links saves αk and costs k in distance *)
  check union "K5 Nash on (0,1]"
    (Interval.Union.of_list [ Interval.open_closed Rat.zero (Interval.Finite (r 1)) ])
    (Ucg.nash_alpha_set (Families.complete 5))

let test_nash_set_star () =
  check union "star Nash on [1,inf)"
    (Interval.Union.of_list [ closed_ray 1 ])
    (Ucg.nash_alpha_set (Families.star 5))

let test_nash_set_cycles () =
  (* footnote 5: C_n for n > 5 is not Nash supportable; C5 is *)
  check_bool "C5 Nash for some alpha" true
    (not (Interval.Union.is_empty (Ucg.nash_alpha_set (Families.cycle 5))));
  check_bool "C6 never Nash" true
    (Interval.Union.is_empty (Ucg.nash_alpha_set (Families.cycle 6)));
  check_bool "C7 never Nash" true
    (Interval.Union.is_empty (Ucg.nash_alpha_set (Families.cycle 7)))

let test_footnote5_clockwise_orientation () =
  (* each C6 vertex buying its clockwise edge is not an equilibrium: node 0
     prefers linking to node 2 instead, at any α *)
  let g = Families.cycle 6 in
  let owner i j = if (i + 1) mod 6 = j then i else j in
  List.iter
    (fun alpha ->
      check_bool "clockwise C6 not Nash" false (Ucg.is_nash_orientation ~alpha g ~owner))
    [ rq 1 2; r 1; r 2; r 10 ]

let test_footnote7_petersen () =
  (* the Petersen graph is a UCG Nash graph for 1 <= α <= 4 *)
  let set = Ucg.nash_alpha_set Gallery.petersen in
  List.iter
    (fun alpha ->
      check_bool
        (Printf.sprintf "petersen Nash at %s" (Rat.to_string alpha))
        true
        (Interval.Union.mem alpha set))
    [ r 1; rq 3 2; rq 5 2; r 4 ];
  List.iter
    (fun alpha ->
      check_bool
        (Printf.sprintf "petersen not Nash at %s" (Rat.to_string alpha))
        false
        (Interval.Union.mem alpha set))
    [ rq 1 2; rq 9 2; r 6 ]

let test_nash_set_disconnected () =
  check_bool "disconnected never Nash" true
    (Interval.Union.is_empty (Ucg.nash_alpha_set (Graph.of_edges 4 [ (0, 1); (2, 3) ])))

(* ---------------- cross-validation against literal definitions -------- *)

(* brute force: a graph is Nash-supportable iff some orientation profile
   satisfies Definition 1 *)
let brute_is_nash_graph ~alpha_f g =
  let edges = Array.of_list (Graph.edges g) in
  let m = Array.length edges in
  let rec try_mask mask =
    if mask >= 1 lsl m then false
    else
      let owner i j =
        let rec index k = if edges.(k) = (i, j) then k else index (k + 1) in
        if mask land (1 lsl index 0) <> 0 then j else i
      in
      let profile = Strategy.of_graph_ucg g ~owner in
      if Strategy.is_nash Cost.Ucg ~alpha:alpha_f profile then true else try_mask (mask + 1)
  in
  m = 0 || try_mask 0

let test_vs_brute_force () =
  let alphas = [ 0.25; 0.5; 1.0; 1.5; 2.0; 3.0; 5.0 ] in
  Nf_enum.Labeled.iter_connected 4 (fun g ->
      List.iter
        (fun alpha_f ->
          let alpha = rq (int_of_float (alpha_f *. 4.)) 4 in
          check_bool
            (Printf.sprintf "brute vs search (alpha=%.2f, %s)" alpha_f (Graph.to_string g))
            (brute_is_nash_graph ~alpha_f g)
            (Ucg.is_nash_graph ~alpha g))
        alphas)

let test_interval_vs_pointwise () =
  let rng = Prng.create 91 in
  let alphas = List.map (fun (a, b) -> rq a b) [ (1, 4); (1, 2); (1, 1); (3, 2); (2, 1); (3, 1); (5, 1); (8, 1) ] in
  for _ = 1 to 60 do
    let g = Nf_graph.Random_graph.connected_gnp rng (3 + Prng.int rng 3) 0.5 in
    let set = Ucg.nash_alpha_set g in
    List.iter
      (fun alpha ->
        check_bool "set membership = pointwise check"
          (Ucg.is_nash_graph ~alpha g)
          (Interval.Union.mem alpha set))
      alphas
  done

let test_is_nash_graph_f () =
  check_bool "dyadic wrapper" true (Ucg.is_nash_graph_f ~alpha:0.5 (Families.complete 4))

let test_acceptance_interval_matches_accepts () =
  (* for random (player, owned set) pairs, membership in the acceptance
     interval must coincide with the pointwise accept check *)
  let rng = Prng.create 101 in
  let alphas = List.map (fun (a, b) -> rq a b) [ (1, 4); (1, 2); (1, 1); (3, 2); (5, 2); (4, 1); (9, 1) ] in
  for _ = 1 to 60 do
    let g = Nf_graph.Random_graph.connected_gnp rng (3 + Prng.int rng 3) 0.5 in
    let i = Prng.int rng (Graph.order g) in
    (* random subset of i's incident edges as the owned set *)
    let owned =
      Bitset.fold
        (fun j acc -> if Prng.bool rng then Bitset.add j acc else acc)
        (Graph.neighbors g i) Bitset.empty
    in
    let interval = Ucg.acceptance_interval g i ~owned in
    List.iter
      (fun alpha ->
        check_bool "interval membership = accepts"
          (Interval.mem alpha interval)
          (Ucg.accepts ~alpha g i ~owned))
      alphas
  done

(* every UCG Nash graph passes the orientation-free necessary conditions
   implicitly; also check a known negative quickly *)
let test_dense_not_nash_at_high_alpha () =
  check_bool "K6 not Nash at alpha=3" false (Ucg.is_nash_graph ~alpha:(r 3) (Families.complete 6))

let () =
  Alcotest.run "netform_ucg"
    [
      ( "acceptance",
        [
          Alcotest.test_case "star center/leaf" `Quick test_accepts_star_center;
          Alcotest.test_case "leaf interval" `Quick test_acceptance_interval_star;
          Alcotest.test_case "best response" `Quick test_best_response;
        ] );
      ( "nash sets",
        [
          Alcotest.test_case "complete" `Quick test_nash_set_complete;
          Alcotest.test_case "star" `Quick test_nash_set_star;
          Alcotest.test_case "cycles (footnote 5)" `Quick test_nash_set_cycles;
          Alcotest.test_case "clockwise orientation" `Quick test_footnote5_clockwise_orientation;
          Alcotest.test_case "petersen (footnote 7)" `Slow test_footnote7_petersen;
          Alcotest.test_case "disconnected" `Quick test_nash_set_disconnected;
          Alcotest.test_case "dense high alpha" `Quick test_dense_not_nash_at_high_alpha;
        ] );
      ( "cross-validation",
        [
          Alcotest.test_case "vs brute force" `Slow test_vs_brute_force;
          Alcotest.test_case "interval vs pointwise" `Quick test_interval_vs_pointwise;
          Alcotest.test_case "float wrapper" `Quick test_is_nash_graph_f;
          Alcotest.test_case "acceptance interval" `Quick test_acceptance_interval_matches_accepts;
        ] );
    ]
