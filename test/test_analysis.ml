(* Tests for nf_analysis: grids, equilibrium caches, figure sweeps, and
   the experiment runners' self-checks. *)

module Rat = Nf_util.Rat
module Interval = Nf_util.Interval
open Nf_analysis

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_sweep_grid () =
  check_bool "grid sorted" true
    (let rec sorted = function
       | a :: (b :: _ as rest) -> Rat.(a < b) && sorted rest
       | _ -> true
     in
     sorted Sweep.paper_grid);
  check_bool "dyadic exact" true (Rat.equal (Sweep.dyadic 0.375) (Rat.make 3 8));
  Alcotest.check_raises "non-dyadic rejected"
    (Invalid_argument "Sweep.dyadic: not dyadic with denominator <= 4096") (fun () ->
      ignore (Sweep.dyadic 0.1));
  check_int "log grid size" 7 (List.length (Sweep.log_floats ~lo:0.5 ~hi:32.0 ~points:7))

let test_equilibria_bcg_counts () =
  (* at α = 1/2 only the complete graph is stable; at α = 1 every
     diameter-<=2 connected graph with no redundant... just check known
     endpoints *)
  check_int "n=5 alpha=1/2" 1
    (List.length (Equilibria.bcg_stable_graphs ~n:5 ~alpha:(Rat.make 1 2)));
  check_bool "n=5 alpha=2 several" true
    (List.length (Equilibria.bcg_stable_graphs ~n:5 ~alpha:(Rat.of_int 2)) > 1);
  (* every reported graph is indeed stable *)
  List.iter
    (fun g ->
      check_bool "reported stable" true
        (Netform.Bcg.is_pairwise_stable ~alpha:(Rat.of_int 2) g))
    (Equilibria.bcg_stable_graphs ~n:5 ~alpha:(Rat.of_int 2))

let test_equilibria_ucg_counts () =
  check_int "n=4 alpha=1/2 only complete" 1
    (List.length (Equilibria.ucg_nash_graphs ~n:4 ~alpha:(Rat.make 1 2)));
  List.iter
    (fun g ->
      check_bool "reported nash" true (Netform.Ucg.is_nash_graph ~alpha:(Rat.of_int 2) g))
    (Equilibria.ucg_nash_graphs ~n:5 ~alpha:(Rat.of_int 2))

let test_ever_stable_subset () =
  let all = Equilibria.bcg_annotated 5 in
  let ever = Equilibria.bcg_ever_stable 5 in
  check_bool "ever-stable is a subset" true (List.length ever <= List.length all);
  List.iter
    (fun (_, set) -> check_bool "nonempty" true (not (Interval.is_empty set)))
    ever

let test_figures_sweep () =
  let points = Figures.sweep ~n:5 ~grid:[ Rat.make 1 2; Rat.of_int 2; Rat.of_int 8 ] () in
  check_int "three points" 3 (List.length points);
  List.iter
    (fun p ->
      check_bool "counts nonneg" true (p.Figures.ucg.Netform.Poa.count >= 0);
      (* whenever equilibria exist the average PoA is at least 1 *)
      if p.Figures.bcg.Netform.Poa.count > 0 then
        check_bool "bcg avg >= 1" true (p.Figures.bcg.Netform.Poa.average >= 1.0 -. 1e-9))
    points;
  let csv = Figures.to_csv points in
  check_int "csv lines" 4 (List.length (String.split_on_char '\n' (String.trim csv)))

let test_experiment_checks_pass () =
  (* the cheap experiments self-validate *)
  let results =
    [
      Experiments.e3_figure1_gallery ();
      Experiments.e4_lemma4 ~n:5 ();
      Experiments.e5_lemma5 ~n:5 ();
      Experiments.e6_lemma6_cycles ~max_n:10 ();
      Experiments.e10_footnote5_cycles ();
      Experiments.e12_desargues ();
      Experiments.e13_eq5_bound ~n:5 ();
    ]
  in
  List.iter
    (fun r ->
      check_bool (r.Experiments.id ^ " ok") true r.Experiments.ok;
      check_bool (r.Experiments.id ^ " has body") true (String.length r.Experiments.body > 0))
    results

let test_shapes_classify () =
  let module Shapes = Nf_analysis.Shapes in
  let module Families = Nf_named.Families in
  let is shape g = Alcotest.(check string) "shape" shape (Shapes.shape_name (Shapes.classify g)) in
  is "complete" (Families.complete 5);
  is "star" (Families.star 5);
  is "path" (Families.path 5);
  is "cycle" (Families.cycle 5);
  is "tree" (Nf_graph.Graph.of_edges 6 [ (0, 1); (0, 2); (1, 3); (1, 4); (2, 5) ]);
  is "diam<=2" (Nf_graph.Graph.remove_edge (Families.complete 5) 0 1);
  is "3-regular" Nf_named.Gallery.mcgee;
  (* triangle with a pendant path: cyclic, irregular, diameter 3 *)
  is "other" (Nf_graph.Graph.of_edges 5 [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4) ]);
  check_bool "census counts" true
    (Shapes.census [ Families.star 4; Families.star 5; Families.path 4 ]
    = [ (Nf_analysis.Shapes.Star, 2); (Nf_analysis.Shapes.Path, 1) ]);
  check_bool "all_trees" true (Shapes.all_trees [ Families.star 4; Families.path 6 ]);
  check_bool "not all_trees" false (Shapes.all_trees [ Families.cycle 4 ])

let test_e18_e19_smoke () =
  let e18 = Experiments.e18_bcg_scaling ~max_n:5 () in
  check_bool "e18 ok" true e18.Experiments.ok;
  let e19 = Experiments.e19_sampled_n10 ~n:8 ~attempts:10 ~seed:1 () in
  check_bool "e19 ok" true e19.Experiments.ok;
  (* deterministic given the seed *)
  let e19' = Experiments.e19_sampled_n10 ~n:8 ~attempts:10 ~seed:1 () in
  Alcotest.(check string) "e19 deterministic" e19.Experiments.body e19'.Experiments.body

let test_transfers_equilibria () =
  List.iter
    (fun g ->
      check_bool "reported transfer-stable" true
        (Netform.Transfers.is_stable ~alpha:(Rat.of_int 2) g))
    (Equilibria.transfers_stable_graphs ~n:5 ~alpha:(Rat.of_int 2))

let test_transfers_stable_graphs_complete () =
  (* transfers_stable_graphs is sound AND complete: it equals filtering
     the full enumeration by the certifier, and agrees with the generic
     registry route it is now a wrapper over *)
  let alphas = [ Rat.make 1 2; Rat.one; Rat.make 3 2; Rat.of_int 2; Rat.of_int 5 ] in
  List.iter
    (fun n ->
      let all = Nf_enum.Unlabeled.connected_graphs n in
      List.iter
        (fun alpha ->
          let label what =
            Printf.sprintf "n=%d alpha=%s %s" n (Rat.to_string alpha) what
          in
          let reported = Equilibria.transfers_stable_graphs ~n ~alpha in
          let expected = List.filter (Netform.Transfers.is_stable ~alpha) all in
          check_int (label "count") (List.length expected) (List.length reported);
          List.iter2
            (fun a b ->
              check_bool (label "same graphs, enumeration order") true
                (Nf_graph.Graph.equal a b))
            expected reported;
          let generic =
            Equilibria.stable_graphs_packed
              (Netform.Game.Any Netform.Game_registry.transfers)
              ~n ~alpha
          in
          check_int (label "registry route agrees") (List.length reported)
            (List.length generic);
          List.iter2
            (fun a b -> check_bool (label "registry graphs") true (Nf_graph.Graph.equal a b))
            reported generic)
        alphas)
    [ 4; 5 ]

let test_cli_game_sweep_roundtrip () =
  (* `netform sweep --game transfers --csv` must emit exactly the CSV the
     library produces for the same sweep — the CLI is a thin shell over
     Figures.sweep_game, not a second implementation.  The binary is
     located relative to this test executable (_build/default/test/..),
     so the test works regardless of the caller's cwd. *)
  let cli =
    Filename.concat
      (Filename.dirname (Filename.dirname Sys.executable_name))
      "bin/netform_cli.exe"
  in
  check_bool "CLI binary built" true (Sys.file_exists cli);
  let csv_path = Filename.temp_file "netform_sweep" ".csv" in
  let log_path = Filename.temp_file "netform_sweep" ".log" in
  let command =
    Printf.sprintf "%s sweep --game transfers -n 5 --csv %s > %s 2>&1"
      (Filename.quote cli) (Filename.quote csv_path) (Filename.quote log_path)
  in
  let status = Sys.command command in
  let read_file path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let from_cli = read_file csv_path in
  let log = read_file log_path in
  Sys.remove csv_path;
  Sys.remove log_path;
  check_int ("sweep exit status; output:\n" ^ log) 0 status;
  let expected =
    Figures.game_csv
      (Figures.sweep_game (Netform.Game_registry.find_exn "transfers") ~n:5 ())
  in
  Alcotest.(check string) "CLI csv = library csv" expected from_cli

let test_dataset_roundtrip () =
  let module Dataset = Nf_analysis.Dataset in
  let entries = Dataset.build 5 in
  check_int "21 classes" 21 (List.length entries);
  let text = Dataset.to_csv entries in
  let reloaded = Dataset.of_csv text in
  check_int "roundtrip length" (List.length entries) (List.length reloaded);
  List.iter2
    (fun a b ->
      check_bool "graph roundtrip" true (Nf_graph.Graph.equal a.Dataset.graph b.Dataset.graph);
      check_bool "stable roundtrip" true (Interval.equal a.Dataset.bcg_stable b.Dataset.bcg_stable);
      check_bool "nash roundtrip" true
        (match (a.Dataset.ucg_nash, b.Dataset.ucg_nash) with
        | Some u1, Some u2 -> Interval.Union.equal u1 u2
        | None, None -> true
        | Some _, None | None, Some _ -> false))
    entries reloaded;
  (* file round trip *)
  let path = Filename.temp_file "netform" ".csv" in
  Dataset.save ~path entries;
  let from_file = Dataset.load ~path in
  Sys.remove path;
  check_int "file roundtrip" (List.length entries) (List.length from_file)

let test_dataset_interval_syntax () =
  let module Dataset = Nf_analysis.Dataset in
  let cases =
    [
      Interval.empty;
      Interval.closed (Rat.of_int 1) (Rat.of_int 5);
      Interval.open_closed Rat.zero (Interval.Finite (Rat.make 7 2));
      Interval.open_closed (Rat.of_int 2) Interval.Pos_inf;
      Interval.point (Rat.make 3 2);
    ]
  in
  List.iter
    (fun i ->
      check_bool
        (Printf.sprintf "syntax roundtrip %s" (Dataset.interval_to_string i))
        true
        (Interval.equal i (Dataset.interval_of_string (Dataset.interval_to_string i))))
    cases;
  Alcotest.check_raises "garbage rejected"
    (Invalid_argument "Dataset.interval_of_string: bad opening bracket") (fun () ->
      ignore (Dataset.interval_of_string "zzzzz"))

let test_dataset_csv_errors () =
  let module Dataset = Nf_analysis.Dataset in
  let header = "graph6,n,m,bcg_stable,ucg_nash" in
  let rejects what text =
    check_bool what true
      (match Dataset.of_csv text with exception Invalid_argument _ -> true | _ -> false)
  in
  rejects "bad header" "not,a,dataset\nD??,5,0,empty,-";
  rejects "wrong field count" (header ^ "\nD??,5,0,empty");
  rejects "corrupt graph6 field" (header ^ "\n\x01\x02,5,0,empty,-");
  rejects "malformed interval" (header ^ "\nD??,5,0,zzzzz,-");
  rejects "malformed rational" (header ^ "\nD??,5,0,[1;x],-");
  rejects "zero denominator" (header ^ "\nD??,5,0,[1/0;2],-");
  rejects "malformed union piece" (header ^ "\nD??,5,0,empty,[1;2]|junk");
  (* and the happy path still parses, so the guards are not over-eager *)
  let entries = Dataset.of_csv (header ^ "\nD??,5,0,[1/2;2),(0;1]|[3;inf)") in
  check_int "one row" 1 (List.length entries)

let test_parse_alpha () =
  let module Parse = Nf_analysis.Parse in
  let ok s expected =
    match Parse.alpha_of_string s with
    | Ok r -> check_bool ("parse " ^ s) true (Rat.equal r expected)
    | Error e -> Alcotest.fail e
  in
  ok "2" (Rat.of_int 2);
  ok "0.75" (Rat.make 3 4);
  ok "7/2" (Rat.make 7 2);
  ok " 3 " (Rat.of_int 3);
  check_bool "garbage rejected" true (Result.is_error (Parse.alpha_of_string "x"));
  check_bool "non-dyadic decimal rejected" true (Result.is_error (Parse.alpha_of_string "0.1"))

let test_parse_graph () =
  let module Parse = Nf_analysis.Parse in
  (match Parse.graph_of_spec "PETERSEN" with
  | Ok g -> check_int "petersen order" 10 (Nf_graph.Graph.order g)
  | Error e -> Alcotest.fail e);
  (match Parse.graph_of_spec "C~" with
  | Ok g -> check_bool "graph6 k4" true (Nf_graph.Graph.is_complete g)
  | Error e -> Alcotest.fail e);
  check_bool "junk rejected" true (Result.is_error (Parse.graph_of_spec "\x01\x02"));
  check_bool "all names resolve" true
    (List.for_all
       (fun (name, _) -> Result.is_ok (Parse.graph_of_spec name))
       Parse.named_graphs)

let test_footnote6_poa_factor () =
  (* footnote 6: for any graph and alpha > 1, rho_UCG(G) <= 2 rho_BCG(G)
     (for large enough n in the 1 < alpha <= 2 branch; we probe n >= 5) *)
  let rng = Nf_util.Prng.create 83 in
  for _ = 1 to 200 do
    let n = 5 + Nf_util.Prng.int rng 4 in
    let g = Nf_graph.Random_graph.connected_gnp rng n 0.4 in
    List.iter
      (fun alpha ->
        let u = Netform.Poa.price_of_anarchy Netform.Cost.Ucg ~alpha g
        and b = Netform.Poa.price_of_anarchy Netform.Cost.Bcg ~alpha g in
        check_bool "ucg <= 2 bcg" true
          (u <= (Netform.Theory.ucg_vs_bcg_poa_factor *. b) +. 1e-9))
      [ 1.25; 1.5; 2.0; 3.0; 8.0; 20.0 ]
  done

let test_report_write_all () =
  let module Report = Nf_analysis.Report in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "netform_report_test" in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  let results = [ Experiments.e12_desargues () ] in
  let points = Figures.sweep ~n:5 ~grid:[ Rat.of_int 2 ] () in
  let written = Report.write_all ~dir ~results ~points () in
  check_int "three files" 3 (List.length written);
  List.iter (fun path -> check_bool "file exists" true (Sys.file_exists path)) written;
  (* summary mentions the experiment id and status *)
  let summary_path = Filename.concat dir "summary.txt" in
  let ic = open_in summary_path in
  let line = input_line ic in
  close_in ic;
  check_bool "summary line" true
    (String.length line > 4 && String.sub line 0 3 = "E12");
  check_bool "status ok" true
    (String.length line >= 2 && String.sub line (String.length line - 2) 2 = "ok");
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let test_report_slug () =
  Alcotest.(check string) "slug" "figure-2-average-poa-n-6"
    (Nf_analysis.Report.slug_of_title "Figure 2 - average PoA (n=6)")

let test_experiment_render () =
  let r = Experiments.e12_desargues () in
  let s = Experiments.render r in
  check_bool "render mentions id" true
    (String.length s > 10 && String.sub s 0 7 = "=== E12")

let () =
  Alcotest.run "nf_analysis"
    [
      ("sweep", [ Alcotest.test_case "grids" `Quick test_sweep_grid ]);
      ( "equilibria",
        [
          Alcotest.test_case "bcg counts" `Quick test_equilibria_bcg_counts;
          Alcotest.test_case "ucg counts" `Quick test_equilibria_ucg_counts;
          Alcotest.test_case "ever stable" `Quick test_ever_stable_subset;
        ] );
      ("figures", [ Alcotest.test_case "sweep" `Quick test_figures_sweep ]);
      ("shapes", [ Alcotest.test_case "classify" `Quick test_shapes_classify ]);
      ( "dataset",
        [
          Alcotest.test_case "roundtrip" `Quick test_dataset_roundtrip;
          Alcotest.test_case "interval syntax" `Quick test_dataset_interval_syntax;
          Alcotest.test_case "csv errors" `Quick test_dataset_csv_errors;
        ] );
      ( "parse",
        [
          Alcotest.test_case "alpha" `Quick test_parse_alpha;
          Alcotest.test_case "graph" `Quick test_parse_graph;
        ] );
      ( "report",
        [
          Alcotest.test_case "write all" `Quick test_report_write_all;
          Alcotest.test_case "slug" `Quick test_report_slug;
        ] );
      ( "theory bridges",
        [ Alcotest.test_case "footnote 6 factor" `Quick test_footnote6_poa_factor ] );
      ( "experiments",
        [
          Alcotest.test_case "self checks" `Slow test_experiment_checks_pass;
          Alcotest.test_case "e18/e19 smoke" `Quick test_e18_e19_smoke;
          Alcotest.test_case "transfers equilibria" `Quick test_transfers_equilibria;
          Alcotest.test_case "transfers stable graphs complete" `Quick
            test_transfers_stable_graphs_complete;
          Alcotest.test_case "cli game sweep roundtrip" `Quick test_cli_game_sweep_roundtrip;
          Alcotest.test_case "render" `Quick test_experiment_render;
        ] );
    ]
