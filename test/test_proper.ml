(* Tests for Netform.Proper: the numerical Definition-5 engine. *)

open Netform
module Families = Nf_named.Families

let check_bool = Alcotest.(check bool)

let analyze_bcg ?(alpha = 2.0) g =
  Proper.analyze Cost.Bcg ~alpha ~target:(Strategy.of_graph_bcg g) ~iterations:500 ()

let test_stable_profiles_are_proper_limits () =
  check_bool "star4" true (Proper.is_proper_limit (analyze_bcg (Families.star 4)) ~threshold:0.9);
  check_bool "K4 at 1/2" true
    (Proper.is_proper_limit (analyze_bcg ~alpha:0.5 (Families.complete 4)) ~threshold:0.9);
  check_bool "K3 at 1/2" true
    (Proper.is_proper_limit (analyze_bcg ~alpha:0.5 (Families.complete 3)) ~threshold:0.9)

let test_witness_alpha_gives_proper_limit () =
  let c4 = Families.cycle 4 in
  match Convexity.witness_alpha c4 with
  | None -> Alcotest.fail "C4 should be link convex"
  | Some alpha ->
    check_bool "C4 at witness" true
      (Proper.is_proper_limit (analyze_bcg ~alpha:(Nf_util.Rat.to_float alpha) c4) ~threshold:0.9)

let test_non_nash_profile_collapses () =
  (* K4 at alpha=3: dropping an announcement pays, so the all-announce
     profile loses all its mass *)
  let reports = analyze_bcg ~alpha:3.0 (Families.complete 4) in
  check_bool "not a proper limit" false (Proper.is_proper_limit reports ~threshold:0.9);
  (match List.rev reports with
  | last :: _ -> check_bool "mass collapsed" true (last.Proper.min_target_mass < 0.01)
  | [] -> Alcotest.fail "no reports")

let test_nash_but_not_pairwise_survives () =
  (* the motivating example for pairwise notions: P4 at alpha=3/2 is Nash
     (and proper) but not pairwise stable *)
  let p4 = Families.path 4 in
  let alpha = Nf_util.Rat.make 3 2 in
  check_bool "not pairwise stable" false (Bcg.is_pairwise_stable ~alpha p4);
  check_bool "still a proper limit" true
    (Proper.is_proper_limit (analyze_bcg ~alpha:1.5 p4) ~threshold:0.9)

let test_masses_monotone_in_epsilon () =
  (* as trembles vanish the target concentrates *)
  let reports = analyze_bcg (Families.star 4) in
  let masses = List.map (fun r -> r.Proper.min_target_mass) reports in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && nondecreasing rest
    | _ -> true
  in
  check_bool "mass grows as eps shrinks" true (nondecreasing masses)

let test_order_guard () =
  Alcotest.check_raises "n=5 rejected" (Invalid_argument "Proper.analyze: order out of range")
    (fun () -> ignore (analyze_bcg (Families.star 5)))

let test_reports_metadata () =
  let reports =
    Proper.analyze Cost.Bcg ~alpha:2.0
      ~target:(Strategy.of_graph_bcg (Families.star 3))
      ~epsilons:[ 0.2; 0.05 ] ()
  in
  Alcotest.(check int) "one report per epsilon" 2 (List.length reports);
  List.iter
    (fun r ->
      check_bool "iterations positive" true (r.Proper.iterations_used > 0);
      check_bool "masses in [0,1]" true
        (Array.for_all (fun m -> m >= 0.0 && m <= 1.0) r.Proper.target_mass))
    reports

let () =
  Alcotest.run "netform_proper"
    [
      ( "proper",
        [
          Alcotest.test_case "stable profiles" `Quick test_stable_profiles_are_proper_limits;
          Alcotest.test_case "witness alpha" `Quick test_witness_alpha_gives_proper_limit;
          Alcotest.test_case "non-nash collapses" `Quick test_non_nash_profile_collapses;
          Alcotest.test_case "nash-not-pairwise survives" `Quick test_nash_but_not_pairwise_survives;
          Alcotest.test_case "mass monotone" `Quick test_masses_monotone_in_epsilon;
          Alcotest.test_case "order guard" `Quick test_order_guard;
          Alcotest.test_case "metadata" `Quick test_reports_metadata;
        ] );
    ]
