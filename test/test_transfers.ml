(* Tests for Netform.Transfers (pairwise stability with side payments)
   and for the Strategy module's literal game definitions. *)

open Netform
module Graph = Nf_graph.Graph
module Rat = Nf_util.Rat
module Interval = Nf_util.Interval
module Prng = Nf_util.Prng
module Families = Nf_named.Families

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let interval = Alcotest.testable Interval.pp Interval.equal
let r = Rat.of_int
let rq = Rat.make

(* ---------------- Transfers ---------------- *)

let test_joint_values () =
  let star = Families.star 5 in
  (* leaf-leaf addition: each saves 1, jointly 2 *)
  check_bool "joint benefit" true
    (Nf_util.Ext_int.equal (Transfers.joint_addition_benefit star 1 2) (Nf_util.Ext_int.Fin 2));
  (* bridge severance: jointly infinite *)
  check_bool "joint loss inf" true
    (Transfers.joint_severance_loss star 0 1 = Nf_util.Ext_int.Inf)

let test_transfer_stable_sets () =
  (* star: joint leaf benefit 2 => stable for alpha >= 1, bridges keep the
     top open *)
  check interval "star [1,inf)"
    (Interval.make ~lo:(Interval.Finite (r 1)) ~lo_closed:true ~hi:Interval.Pos_inf
       ~hi_closed:false)
    (Transfers.stable_alpha_set (Families.star 6));
  (* complete graph: joint severance loss 2 => stable for alpha <= 1 *)
  check interval "K6 (0,1]"
    (Interval.open_closed Rat.zero (Interval.Finite (r 1)))
    (Transfers.stable_alpha_set (Families.complete 6));
  (* C5: joint chord benefit 2 -> alpha >= 1; joint severance loss 8 ->
     alpha <= 4 *)
  check interval "C5 [1,4]"
    (Interval.closed (r 1) (r 4))
    (Transfers.stable_alpha_set (Families.cycle 5))

let test_transfer_definition_matches_interval () =
  let rng = Prng.create 57 in
  let alphas = List.map (fun (a, b) -> rq a b) [ (1, 4); (1, 2); (1, 1); (3, 2); (2, 1); (7, 2); (5, 1); (9, 1) ] in
  for _ = 1 to 150 do
    let g = Nf_graph.Random_graph.connected_gnp rng (3 + Prng.int rng 5) 0.45 in
    let set = Transfers.stable_alpha_set g in
    List.iter
      (fun alpha ->
        check_bool "definition = interval"
          (Interval.mem alpha set)
          (Transfers.is_stable ~alpha g))
      alphas
  done

let test_transfer_window_shifts_right () =
  (* joint thresholds dominate single-endpoint minima: both ends of the
     transfer window sit at or right of the plain window's ends *)
  let rng = Prng.create 61 in
  let lo_of set =
    match Interval.bounds set with
    | Some (lo, _, _, _) -> Some lo
    | None -> None
  in
  let hi_of set =
    match Interval.bounds set with
    | Some (_, _, hi, _) -> Some hi
    | None -> None
  in
  for _ = 1 to 150 do
    let g = Nf_graph.Random_graph.connected_gnp rng (4 + Prng.int rng 4) 0.5 in
    let plain = Bcg.stable_alpha_set g
    and with_t = Transfers.stable_alpha_set g in
    (match (lo_of plain, lo_of with_t) with
    | Some lo_p, Some lo_t ->
      check_bool "transfer lower end >= plain" true (Interval.compare_endpoint lo_t lo_p >= 0)
    | _ -> ());
    match (hi_of plain, hi_of with_t) with
    | Some hi_p, Some hi_t ->
      check_bool "transfer upper end >= plain" true (Interval.compare_endpoint hi_t hi_p >= 0)
    | _ -> ()
  done

let test_transfer_efficient_star_always_stable () =
  (* with transfers the star stays stable for all alpha >= 1, so the
     efficient graph remains in the stable set *)
  List.iter
    (fun alpha ->
      check_bool "star transfer-stable" true (Transfers.is_stable ~alpha (Families.star 7)))
    [ r 1; r 2; r 10; r 100 ]

(* ---------------- Distance_utility ---------------- *)

let test_du_linear_matches_bcg () =
  let rng = Prng.create 71 in
  for _ = 1 to 120 do
    let g = Nf_graph.Random_graph.connected_gnp rng (3 + Prng.int rng 5) 0.45 in
    check interval "linear profile = paper analysis"
      (Bcg.stable_alpha_set g)
      (Distance_utility.stable_alpha_set Distance_utility.linear g)
  done

let test_du_definition_matches_interval () =
  let rng = Prng.create 73 in
  let profiles =
    [ Distance_utility.quadratic; Distance_utility.hop_capped 2; Distance_utility.connectivity ]
  in
  let alphas = List.map (fun (a, b) -> rq a b) [ (1, 2); (1, 1); (2, 1); (7, 2); (6, 1); (25, 1) ] in
  for _ = 1 to 80 do
    let g = Nf_graph.Random_graph.connected_gnp rng (3 + Prng.int rng 4) 0.5 in
    List.iter
      (fun p ->
        let set = Distance_utility.stable_alpha_set p g in
        List.iter
          (fun alpha ->
            check_bool "definition = interval"
              (Interval.mem alpha set)
              (Distance_utility.is_pairwise_stable p ~alpha g))
          alphas)
      profiles
  done

let test_du_known_values () =
  (* quadratic star: leaf-leaf link saves 2^2 - 1^2 = 3 per endpoint *)
  check interval "quadratic star [3,inf)"
    (Interval.make ~lo:(Interval.Finite (r 3)) ~lo_closed:true ~hi:Interval.Pos_inf
       ~hi_closed:false)
    (Distance_utility.stable_alpha_set Distance_utility.quadratic (Families.star 6));
  (* connectivity: trees stable everywhere, cycles never *)
  check interval "connectivity tree everywhere"
    (Interval.open_closed Rat.zero Interval.Pos_inf)
    (Distance_utility.stable_alpha_set Distance_utility.connectivity (Families.path 5));
  check_bool "connectivity kills cycles" true
    (Interval.is_empty
       (Distance_utility.stable_alpha_set Distance_utility.connectivity (Families.cycle 5)));
  (* hop-capped at the diameter behaves like linear on short graphs *)
  check interval "hop-capped(3) = linear on star"
    (Bcg.stable_alpha_set (Families.star 6))
    (Distance_utility.stable_alpha_set (Distance_utility.hop_capped 3) (Families.star 6))

let test_du_distance_cost () =
  let p5 = Families.path 5 in
  (* from an endpoint: distances 1,2,3,4 -> squares 1+4+9+16 = 30 *)
  check_bool "quadratic endpoint cost" true
    (Nf_util.Ext_int.equal
       (Distance_utility.distance_cost Distance_utility.quadratic p5 0)
       (Nf_util.Ext_int.Fin 30));
  check_bool "disconnected infinite" true
    (Distance_utility.distance_cost Distance_utility.quadratic (Graph.empty 3) 0
    = Nf_util.Ext_int.Inf)

(* ---------------- Strategy ---------------- *)

let test_strategy_linking_rules () =
  let s = Strategy.create 3 in
  let s = Strategy.set s 0 1 true in
  (* one-sided announcement: UCG forms the link, BCG does not *)
  check_bool "ucg forms" true (Graph.has_edge (Strategy.graph Cost.Ucg s) 0 1);
  check_bool "bcg does not" false (Graph.has_edge (Strategy.graph Cost.Bcg s) 0 1);
  let s = Strategy.set s 1 0 true in
  check_bool "bcg forms with consent" true (Graph.has_edge (Strategy.graph Cost.Bcg s) 0 1);
  check_int "wish count" 1 (Strategy.wish_count s 0);
  check_bool "seeks" true (Strategy.seeks s 0 1);
  check_bool "not symmetric" false (Strategy.seeks s 0 2)

let test_strategy_cost_counts_wishes () =
  (* the alpha term charges announcements even when no link forms *)
  let s = Strategy.set (Strategy.create 3) 0 1 true in
  let cost = Strategy.player_cost Cost.Bcg ~alpha:4.0 s 0 in
  check_bool "pays for unformed wish" true (cost = infinity || cost > 4.0 -. 1e-9);
  (* with all links formed the graph is connected and the cost is finite *)
  let t = Strategy.of_graph_bcg (Families.star 3) in
  check (Alcotest.float 1e-9) "center cost" (2. *. 4. +. 2.)
    (Strategy.player_cost Cost.Bcg ~alpha:4.0 t 0)

let test_strategy_of_graph_ucg_validation () =
  Alcotest.check_raises "bad owner"
    (Invalid_argument "Strategy.of_graph_ucg: owner not an endpoint") (fun () ->
      ignore (Strategy.of_graph_ucg (Families.path 3) ~owner:(fun _ _ -> 99)))

let test_strategy_nash_literal () =
  (* empty profile: BCG Nash (mutual blocking) but not pairwise Nash at
     small alpha for n=2 *)
  let empty2 = Strategy.create 2 in
  check_bool "empty BCG nash" true (Strategy.is_nash Cost.Bcg ~alpha:0.5 empty2);
  check_bool "empty BCG not pairwise nash" false
    (Strategy.is_pairwise_nash Cost.Bcg ~alpha:0.5 empty2);
  (* complete graph profile at small alpha is pairwise Nash in the BCG *)
  let k3 = Strategy.of_graph_bcg (Families.complete 3) in
  check_bool "K3 pairwise nash at 1/2" true (Strategy.is_pairwise_nash Cost.Bcg ~alpha:0.5 k3);
  check_bool "K3 not nash at alpha=2" false (Strategy.is_nash Cost.Bcg ~alpha:2.0 k3)

let () =
  Alcotest.run "netform_transfers"
    [
      ( "transfers",
        [
          Alcotest.test_case "joint values" `Quick test_joint_values;
          Alcotest.test_case "stable sets" `Quick test_transfer_stable_sets;
          Alcotest.test_case "definition vs interval" `Quick test_transfer_definition_matches_interval;
          Alcotest.test_case "window shifts right" `Quick test_transfer_window_shifts_right;
          Alcotest.test_case "star stays stable" `Quick test_transfer_efficient_star_always_stable;
        ] );
      ( "distance utilities",
        [
          Alcotest.test_case "linear = paper" `Quick test_du_linear_matches_bcg;
          Alcotest.test_case "definition vs interval" `Quick test_du_definition_matches_interval;
          Alcotest.test_case "known values" `Quick test_du_known_values;
          Alcotest.test_case "distance cost" `Quick test_du_distance_cost;
        ] );
      ( "strategy",
        [
          Alcotest.test_case "linking rules" `Quick test_strategy_linking_rules;
          Alcotest.test_case "wish costs" `Quick test_strategy_cost_counts_wishes;
          Alcotest.test_case "ucg validation" `Quick test_strategy_of_graph_ucg_validation;
          Alcotest.test_case "literal nash" `Quick test_strategy_nash_literal;
        ] );
    ]
