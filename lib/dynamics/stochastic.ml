module Graph = Nf_graph.Graph
module Rat = Nf_util.Rat

type verdict = {
  n : int;
  alpha : Rat.t;
  stable : Graph.t list;
  potential : int array;
  stochastically_stable : Graph.t list;
}

(* ---------------- the move-or-mutate digraph ---------------- *)

let improving_successors ~alpha n =
  let size = 1 lsl (n * (n - 1) / 2) in
  Array.init size (fun mask ->
      let g = Nf_enum.Labeled.graph_of_mask n mask in
      List.map
        (fun move ->
          let g' =
            match move with
            | Bcg_dynamics.Add (i, j) -> Graph.add_edge g i j
            | Bcg_dynamics.Delete (i, j) -> Graph.remove_edge g i j
          in
          Nf_enum.Labeled.mask_of_graph g')
        (Bcg_dynamics.improving_moves ~alpha g))

(* 0/1-cost shortest distances from [source]: improving arcs cost 0,
   single-link mutations cost 1.  Bucket queue indexed by cost (costs are
   bounded by the number of link slots). *)
let resistance_from succ bits source =
  let size = Array.length succ in
  let dist = Array.make size max_int in
  let buckets = Array.make (bits + 2) [] in
  dist.(source) <- 0;
  buckets.(0) <- [ source ];
  for cost = 0 to bits + 1 do
    let rec drain () =
      match buckets.(cost) with
      | [] -> ()
      | u :: rest ->
        buckets.(cost) <- rest;
        if dist.(u) = cost then begin
          (* free slides along improving moves *)
          List.iter
            (fun v ->
              if dist.(v) > cost then begin
                dist.(v) <- cost;
                buckets.(cost) <- v :: buckets.(cost)
              end)
            succ.(u);
          (* mutations: toggle any one link *)
          for k = 0 to bits - 1 do
            let v = u lxor (1 lsl k) in
            if dist.(v) > cost + 1 then begin
              dist.(v) <- cost + 1;
              buckets.(cost + 1) <- v :: buckets.(cost + 1)
            end
          done
        end;
        drain ()
    in
    drain ()
  done;
  dist

let resistances ~alpha ~n =
  if n < 2 || n > 5 then invalid_arg "Stochastic: order out of range (2..5)";
  let bits = n * (n - 1) / 2 in
  let succ = improving_successors ~alpha n in
  let stable_masks = ref [] in
  Array.iteri (fun mask targets -> if targets = [] then stable_masks := mask :: !stable_masks) succ;
  let stable_masks = Array.of_list (List.rev !stable_masks) in
  let v = Array.length stable_masks in
  let index_of = Hashtbl.create v in
  Array.iteri (fun i mask -> Hashtbl.add index_of mask i) stable_masks;
  let r = Array.make_matrix v v max_int in
  Array.iteri
    (fun i source ->
      let dist = resistance_from succ bits source in
      Array.iteri (fun j target -> r.(i).(j) <- dist.(target)) stable_masks;
      (* sanity: every stable state reachable (<= bits mutations suffice) *)
      Array.iteri (fun j cost -> if i <> j && cost > bits then invalid_arg "Stochastic: unreachable state") r.(i))
    stable_masks;
  let graphs = Array.to_list (Array.map (Nf_enum.Labeled.graph_of_mask n) stable_masks) in
  (graphs, r)

(* ---------------- Chu–Liu/Edmonds ---------------------------------------
   Minimum-weight spanning out-arborescence from [root] in a complete
   digraph given by a weight matrix; classical cycle-contraction, dense
   version.  Weights are small ints. *)
let min_arborescence_cost weight root =
  let v = Array.length weight in
  (* active nodes are 0..count-1 in the current contraction level *)
  let rec solve weight root v =
    if v = 1 then 0
    else begin
      (* cheapest incoming arc per non-root node *)
      let in_w = Array.make v max_int in
      let in_from = Array.make v (-1) in
      for u = 0 to v - 1 do
        for w = 0 to v - 1 do
          if u <> w && w <> root && weight.(u).(w) < in_w.(w) then begin
            in_w.(w) <- weight.(u).(w);
            in_from.(w) <- u
          end
        done
      done;
      (* find a cycle among the selected arcs *)
      let color = Array.make v 0 in
      (* 0 unvisited, 1 in progress, 2 done *)
      let cycle = ref [] in
      (try
         for s = 0 to v - 1 do
           if s <> root && color.(s) = 0 then begin
             let path = ref [] in
             let u = ref s in
             while !u <> root && color.(!u) = 0 do
               color.(!u) <- 1;
               path := !u :: !path;
               u := in_from.(!u)
             done;
             if !u <> root && color.(!u) = 1 then begin
               (* extract the cycle ending at !u *)
               let rec collect acc = function
                 | [] -> acc
                 | x :: rest -> if x = !u then x :: acc else collect (x :: acc) rest
               in
               cycle := collect [] !path;
               raise Exit
             end;
             List.iter (fun x -> color.(x) <- 2) !path
           end
         done
       with Exit -> ());
      match !cycle with
      | [] ->
        (* no cycle: the selection is the arborescence *)
        let total = ref 0 in
        for w = 0 to v - 1 do
          if w <> root then total := !total + in_w.(w)
        done;
        !total
      | cycle_nodes ->
        let in_cycle = Array.make v false in
        List.iter (fun x -> in_cycle.(x) <- true) cycle_nodes;
        let cycle_weight = List.fold_left (fun acc x -> acc + in_w.(x)) 0 cycle_nodes in
        (* contract the cycle into one super node *)
        let remap = Array.make v (-1) in
        let count = ref 0 in
        for x = 0 to v - 1 do
          if not in_cycle.(x) then begin
            remap.(x) <- !count;
            incr count
          end
        done;
        let super = !count in
        let v' = !count + 1 in
        List.iter (fun x -> remap.(x) <- super) cycle_nodes;
        let weight' = Array.make_matrix v' v' max_int in
        for u = 0 to v - 1 do
          for w = 0 to v - 1 do
            if u <> w && weight.(u).(w) < max_int then begin
              let u' = remap.(u)
              and w' = remap.(w) in
              if u' <> w' then begin
                (* entering the cycle at w discounts w's selected arc *)
                let adjusted =
                  if in_cycle.(w) then weight.(u).(w) - in_w.(w) else weight.(u).(w)
                in
                if adjusted < weight'.(u').(w') then weight'.(u').(w') <- adjusted
              end
            end
          done
        done;
        cycle_weight + solve weight' remap.(root) v'
    end
  in
  solve weight root v

let analyze ~alpha ~n =
  let stable, r = resistances ~alpha ~n in
  let v = List.length stable in
  if v > 300 then invalid_arg "Stochastic.analyze: too many stable states (use a larger alpha)";
  (* stochastic potential of state s: min in-arborescence toward s, i.e.
     out-arborescence from s over reversed weights *)
  let reversed = Array.init v (fun u -> Array.init v (fun w -> r.(w).(u))) in
  let potential = Array.init v (fun root -> min_arborescence_cost reversed root) in
  let best = Array.fold_left min max_int potential in
  let stable_arr = Array.of_list stable in
  let winners = ref [] in
  Array.iteri (fun i p -> if p = best then winners := stable_arr.(i) :: !winners) potential;
  { n; alpha; stable; potential; stochastically_stable = List.rev !winners }

let stochastically_stable_classes verdict =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun g ->
      let canon = Nf_iso.Canon.canonical_form g in
      let key = Graph.adjacency_key canon in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.add seen key ();
        Some canon
      end)
    verdict.stochastically_stable
