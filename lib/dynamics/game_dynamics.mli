(** Improving-path dynamics for any registered game that exposes a move
    generator ({!Netform.Game.S.improving_moves}).

    A state is just a graph.  Each step draws one move uniformly from the
    game's improving-move list; fixed points are exactly the game's
    stable graphs, so the dynamics double as a sampler of the stable set
    for orders beyond exhaustive enumeration.

    {!Bcg_dynamics} is this module applied to the built-in BCG instance
    — its traces are byte-identical to the historical implementation
    because the move order contract and the PRNG draw sequence are
    unchanged.  The UCG has no single-link improving moves (a best
    response rewires a whole wish set); its dynamics live in
    {!Ucg_dynamics}, on top of the same {!iterate} driver. *)

type outcome = {
  final : Nf_graph.Graph.t;
  steps : int;
  converged : bool;  (** final graph is stable for the game *)
  trace : Netform.Game.move list;  (** moves in execution order *)
}

val iterate : max_steps:int -> step:('a -> 'a option) -> 'a -> 'a * int * bool
(** [iterate ~max_steps ~step init] runs [step] to a fixed point
    ([None]) or the cap, returning [(final, steps_taken, converged)].
    The shared fixpoint driver under {!run} and
    {!Ucg_dynamics.run}'s round loop. *)

val apply : Nf_graph.Graph.t -> Netform.Game.move -> Nf_graph.Graph.t

val step :
  Netform.Game.packed ->
  alpha:Nf_util.Rat.t ->
  rng:Nf_util.Prng.t ->
  Nf_graph.Graph.t ->
  (Netform.Game.move * Nf_graph.Graph.t) option
(** Apply one uniformly chosen improving move; [None] at a stable graph.
    @raise Invalid_argument when the game has no move generator. *)

val run :
  Netform.Game.packed ->
  alpha:Nf_util.Rat.t ->
  rng:Nf_util.Prng.t ->
  ?max_steps:int ->
  Nf_graph.Graph.t ->
  outcome
(** Iterate until stable or [max_steps] (default 10 000). *)

val sample_stable :
  Netform.Game.packed ->
  alpha:Nf_util.Rat.t ->
  rng:Nf_util.Prng.t ->
  n:int ->
  attempts:int ->
  Nf_graph.Graph.t list
(** Run the dynamics from [attempts] random connected seeds on [n]
    vertices and collect the distinct stable graphs reached (by exact
    adjacency, not isomorphism). *)
