module Graph = Nf_graph.Graph
module Bitset = Nf_util.Bitset
module Rat = Nf_util.Rat
module Prng = Nf_util.Prng
open Netform

type state = {
  graph : Graph.t;
  owned : Bitset.t array;
}

type outcome = {
  final : state;
  rounds : int;
  converged : bool;
}

let of_graph g ~owner =
  let n = Graph.order g in
  let owned = Array.make n Bitset.empty in
  Graph.iter_edges g (fun i j ->
      let o = owner i j in
      if o <> i && o <> j then invalid_arg "Ucg_dynamics.of_graph: owner not an endpoint";
      let other = if o = i then j else i in
      owned.(o) <- Bitset.add other owned.(o));
  { graph = g; owned }

let empty n = { graph = Graph.empty n; owned = Array.make n Bitset.empty }

let is_nash ~alpha state =
  let n = Graph.order state.graph in
  let rec go i =
    i >= n || (Ucg.accepts ~alpha state.graph i ~owned:state.owned.(i) && go (i + 1))
  in
  go 0

let rebuild state i targets =
  (* player i abandons its purchases and buys exactly [targets] *)
  let without = Bitset.fold (fun j acc -> Graph.remove_edge acc i j) state.owned.(i) state.graph in
  let graph = Bitset.fold (fun j acc -> Graph.add_edge acc i j) targets without in
  let owned = Array.copy state.owned in
  owned.(i) <- targets;
  { graph; owned }

let best_response_step ~alpha state i =
  if Ucg.accepts ~alpha state.graph i ~owned:state.owned.(i) then None
  else
    let targets, _cost = Ucg.best_response ~alpha state.graph i ~owned:state.owned.(i) in
    Some (rebuild state i targets)

(* one round = one pass over a freshly drawn player order; the round
   loop itself is the shared {!Game_dynamics.iterate} fixpoint driver *)
let run_with_orders ~alpha ~max_rounds ~next_order state =
  let round state =
    let order = next_order () in
    let moved = ref false in
    let state = ref state in
    Array.iter
      (fun i ->
        match best_response_step ~alpha !state i with
        | Some updated ->
          moved := true;
          state := updated
        | None -> ())
      order;
    if !moved then Some !state else None
  in
  let final, rounds, converged = Game_dynamics.iterate ~max_steps:max_rounds ~step:round state in
  { final; rounds; converged }

let run ~alpha ?(max_rounds = 1000) ?order state =
  let n = Graph.order state.graph in
  let fixed =
    match order with
    | Some o -> o
    | None -> Array.init n Fun.id
  in
  run_with_orders ~alpha ~max_rounds ~next_order:(fun () -> fixed) state

let run_random ~alpha ~rng ?(max_rounds = 1000) state =
  let n = Graph.order state.graph in
  let next_order () =
    let order = Array.init n Fun.id in
    Prng.shuffle rng order;
    order
  in
  run_with_orders ~alpha ~max_rounds ~next_order state
