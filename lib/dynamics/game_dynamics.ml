module Graph = Nf_graph.Graph
module Rat = Nf_util.Rat
module Prng = Nf_util.Prng
open Netform

type outcome = {
  final : Graph.t;
  steps : int;
  converged : bool;
  trace : Game.move list;
}

(* The one fixpoint driver every dynamics loop in this library runs on:
   a step either produces the next state or [None] at a fixed point.  The
   step cap is checked before the step runs, so a capped run performs
   exactly [max_steps] steps. *)
let iterate ~max_steps ~step init =
  let rec go state steps =
    if steps >= max_steps then (state, steps, false)
    else
      match step state with
      | None -> (state, steps, true)
      | Some state' -> go state' (steps + 1)
  in
  go init 0

let apply g = function
  | Game.Add (i, j) -> Graph.add_edge g i j
  | Game.Delete (i, j) -> Graph.remove_edge g i j

let step game ~alpha ~rng g =
  match Game.improving_moves game ~alpha g with
  | [] -> None
  | moves ->
    let move = Prng.pick rng moves in
    Some (move, apply g move)

let run game ~alpha ~rng ?(max_steps = 10_000) g =
  let trace = ref [] in
  let final, steps, converged =
    iterate ~max_steps
      ~step:(fun g ->
        match step game ~alpha ~rng g with
        | None -> None
        | Some (move, g') ->
          trace := move :: !trace;
          Some g')
      g
  in
  { final; steps; converged; trace = List.rev !trace }

let sample_stable game ~alpha ~rng ~n ~attempts =
  let seen = Hashtbl.create 32 in
  let results = ref [] in
  for _ = 1 to attempts do
    let seed = Nf_graph.Random_graph.connected_gnp rng n (0.2 +. Prng.float rng 0.6) in
    let outcome = run game ~alpha ~rng seed in
    if outcome.converged then begin
      let key = Graph.adjacency_key outcome.final in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        results := outcome.final :: !results
      end
    end
  done;
  List.rev !results
