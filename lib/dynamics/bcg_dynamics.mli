(** Improving-path dynamics for the bilateral game (Jackson–Watts style)
    — {!Game_dynamics} applied to the registry's BCG instance, kept as a
    named API for the game the paper centers on.

    A state is just a graph.  One move either severs a link whose severer
    strictly gains, or adds a link that strictly helps one endpoint and
    weakly helps the other.  Fixed points are exactly the pairwise stable
    graphs, so the dynamics double as a sampler of the stable set for
    orders beyond exhaustive enumeration. *)

type move = Netform.Game.move =
  | Add of int * int
  | Delete of int * int  (** [(severer, other)] *)

type outcome = Game_dynamics.outcome = {
  final : Nf_graph.Graph.t;
  steps : int;
  converged : bool;  (** final graph is pairwise stable *)
  trace : move list;  (** moves in execution order *)
}

val improving_moves : alpha:Nf_util.Rat.t -> Nf_graph.Graph.t -> move list
(** All single-link improving moves available from a graph
    ([Netform.Bcg.improving_moves]). *)

val step :
  alpha:Nf_util.Rat.t ->
  rng:Nf_util.Prng.t ->
  Nf_graph.Graph.t ->
  (move * Nf_graph.Graph.t) option
(** Apply one uniformly chosen improving move; [None] at a stable graph. *)

val run :
  alpha:Nf_util.Rat.t ->
  rng:Nf_util.Prng.t ->
  ?max_steps:int ->
  Nf_graph.Graph.t ->
  outcome
(** Iterate until pairwise stable or [max_steps] (default 10 000). *)

val sample_stable :
  alpha:Nf_util.Rat.t ->
  rng:Nf_util.Prng.t ->
  n:int ->
  attempts:int ->
  Nf_graph.Graph.t list
(** Run the dynamics from [attempts] random connected seeds on [n]
    vertices and collect the distinct stable graphs reached (by exact
    adjacency, not isomorphism). *)
