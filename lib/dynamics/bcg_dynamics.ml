module Graph = Nf_graph.Graph
module Rat = Nf_util.Rat
module Prng = Nf_util.Prng

type move =
  | Add of int * int
  | Delete of int * int

type outcome = {
  final : Graph.t;
  steps : int;
  converged : bool;
  trace : move list;
}

module Kernel = Nf_graph.Kernel

let inf = Kernel.inf
let ibenefit ~base after = if base = inf then (if after = inf then 0 else inf) else base - after
let iloss ~base after = if base = inf || after = inf then inf else after - base

(* One kernel sweep for the base sums, then one allocation-free toggle
   evaluation per candidate move.  Moves are accumulated in exactly the
   order the persistent path produced them (additions in lexicographic
   (i, j) order, then per edge Delete (i, j) before Delete (j, i)), so
   [Prng.pick] draws the same move at every step and dynamics traces stay
   byte-identical. *)
let improving_moves ~alpha g =
  Kernel.with_loaded g (fun ws ->
      let base = Kernel.all_distance_sums ws in
      let n = Kernel.order ws in
      let num = Rat.num alpha
      and den = Rat.den alpha in
      let lt k = k = inf || num < k * den
      and le k = k = inf || num <= k * den in
      let moves = ref [] in
      for i = 0 to n - 2 do
        for j = i + 1 to n - 1 do
          if not (Kernel.has_edge ws i j) then begin
            Kernel.toggle ws i j;
            let bi = ibenefit ~base:base.(i) (Kernel.distance_sum_from ws i)
            and bj = ibenefit ~base:base.(j) (Kernel.distance_sum_from ws j) in
            Kernel.toggle ws i j;
            if (lt bi && le bj) || (lt bj && le bi) then moves := Add (i, j) :: !moves
          end
        done
      done;
      for i = 0 to n - 2 do
        for j = i + 1 to n - 1 do
          if Kernel.has_edge ws i j then begin
            Kernel.toggle ws i j;
            let li = iloss ~base:base.(i) (Kernel.distance_sum_from ws i)
            and lj = iloss ~base:base.(j) (Kernel.distance_sum_from ws j) in
            Kernel.toggle ws i j;
            if not (le li) then moves := Delete (i, j) :: !moves;
            if not (le lj) then moves := Delete (j, i) :: !moves
          end
        done
      done;
      !moves)

let apply g = function
  | Add (i, j) -> Graph.add_edge g i j
  | Delete (i, j) -> Graph.remove_edge g i j

let step ~alpha ~rng g =
  match improving_moves ~alpha g with
  | [] -> None
  | moves ->
    let move = Prng.pick rng moves in
    Some (move, apply g move)

let run ~alpha ~rng ?(max_steps = 10_000) g =
  let rec go g steps trace =
    if steps >= max_steps then { final = g; steps; converged = false; trace = List.rev trace }
    else
      match step ~alpha ~rng g with
      | None -> { final = g; steps; converged = true; trace = List.rev trace }
      | Some (move, g') -> go g' (steps + 1) (move :: trace)
  in
  go g 0 []

let sample_stable ~alpha ~rng ~n ~attempts =
  let seen = Hashtbl.create 32 in
  let results = ref [] in
  for _ = 1 to attempts do
    let seed = Nf_graph.Random_graph.connected_gnp rng n (0.2 +. Prng.float rng 0.6) in
    let outcome = run ~alpha ~rng seed in
    if outcome.converged then begin
      let key = Graph.adjacency_key outcome.final in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        results := outcome.final :: !results
      end
    end
  done;
  List.rev !results
