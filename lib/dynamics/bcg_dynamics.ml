module Graph = Nf_graph.Graph
open Netform

(* The historical BCG dynamics API, now a thin veneer over
   {!Game_dynamics} applied to the registry's BCG instance.  The move
   type re-exports [Game.move], so existing pattern matches keep
   compiling; traces are byte-identical to the pre-registry
   implementation because [Bcg.improving_moves] preserves the move order
   contract and the PRNG draw sequence is unchanged. *)

type move = Game.move =
  | Add of int * int
  | Delete of int * int

type outcome = Game_dynamics.outcome = {
  final : Graph.t;
  steps : int;
  converged : bool;
  trace : move list;
}

let bcg = Game.Any Game_registry.bcg
let improving_moves ~alpha g = Bcg.improving_moves ~alpha g
let step ~alpha ~rng g = Game_dynamics.step bcg ~alpha ~rng g
let run ~alpha ~rng ?max_steps g = Game_dynamics.run bcg ~alpha ~rng ?max_steps g

let sample_stable ~alpha ~rng ~n ~attempts =
  Game_dynamics.sample_stable bcg ~alpha ~rng ~n ~attempts
