module Graph = Nf_graph.Graph
module Rat = Nf_util.Rat
module Prng = Nf_util.Prng
open Netform

type move =
  | Add of int * int
  | Delete of int * int

type outcome = {
  final : Graph.t;
  steps : int;
  converged : bool;
  trace : move list;
}

let ext_lt alpha v =
  match v with
  | Nf_util.Ext_int.Inf -> true
  | Nf_util.Ext_int.Fin k -> Rat.(alpha < of_int k)

let ext_le alpha v =
  match v with
  | Nf_util.Ext_int.Inf -> true
  | Nf_util.Ext_int.Fin k -> Rat.(alpha <= of_int k)

let improving_moves ~alpha g =
  let moves = ref [] in
  Graph.iter_non_edges g (fun i j ->
      let bi = Bcg.addition_benefit g i j
      and bj = Bcg.addition_benefit g j i in
      if (ext_lt alpha bi && ext_le alpha bj) || (ext_lt alpha bj && ext_le alpha bi)
      then moves := Add (i, j) :: !moves);
  Graph.iter_edges g (fun i j ->
      if not (ext_le alpha (Bcg.severance_loss g i j)) then moves := Delete (i, j) :: !moves;
      if not (ext_le alpha (Bcg.severance_loss g j i)) then moves := Delete (j, i) :: !moves);
  !moves

let apply g = function
  | Add (i, j) -> Graph.add_edge g i j
  | Delete (i, j) -> Graph.remove_edge g i j

let step ~alpha ~rng g =
  match improving_moves ~alpha g with
  | [] -> None
  | moves ->
    let move = Prng.pick rng moves in
    Some (move, apply g move)

let run ~alpha ~rng ?(max_steps = 10_000) g =
  let rec go g steps trace =
    if steps >= max_steps then { final = g; steps; converged = false; trace = List.rev trace }
    else
      match step ~alpha ~rng g with
      | None -> { final = g; steps; converged = true; trace = List.rev trace }
      | Some (move, g') -> go g' (steps + 1) (move :: trace)
  in
  go g 0 []

let sample_stable ~alpha ~rng ~n ~attempts =
  let seen = Hashtbl.create 32 in
  let results = ref [] in
  for _ = 1 to attempts do
    let seed = Nf_graph.Random_graph.connected_gnp rng n (0.2 +. Prng.float rng 0.6) in
    let outcome = run ~alpha ~rng seed in
    if outcome.converged then begin
      let key = Graph.adjacency_key outcome.final in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        results := outcome.final :: !results
      end
    end
  done;
  List.rev !results
