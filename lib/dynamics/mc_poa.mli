(** Large-n Monte-Carlo price-of-anarchy estimation for the BCG.

    The exhaustive annotators stop where enumeration stops; this module
    samples the large-n regime the paper's asymptotic claims live in:
    seeded random initial graphs (G(n,p), p ≈ (ln n + 1)/n by default), a
    randomized first-improvement better-response walk over the C(n,2)
    pair slots executed entirely inside a kernel workspace, and the
    exact-rational social cost of the converged pairwise-stable states
    against the star/clique closed-form optimum, reported alongside
    [Theory.poa_upper_bound].

    Improving-move semantics are predicate-for-predicate those of [Bcg]
    (bilateral addition consent, unilateral deletion, the same integer
    cross-multiplication against α), so a converged trial satisfies
    [Bcg.is_pairwise_stable] by construction — and the test suite pins
    that differentially.

    Determinism: one base seed derives an independent PRNG per trial and
    [Pool.parallel_map] preserves input order, so runs are byte-identical
    whatever the pool width. *)

type trial = {
  index : int;  (** trial number within the run *)
  seed : int;  (** derived per-trial PRNG seed *)
  init_edges : int;
  moves : int;  (** improving moves applied *)
  evals : int;  (** pair-slots evaluated (the convergence-time measure) *)
  converged : bool;  (** reached a pairwise-stable state within the budget *)
  final_edges : int;
  diameter : int;  (** of the final graph; [-1] when disconnected *)
  social_cost : Nf_util.Rat.t option;  (** exact [2αm + W]; [None] if disconnected *)
  poa : Nf_util.Rat.t option;  (** social cost / closed-form optimum *)
  final : Nf_graph.Graph.t;
}

type summary = {
  n : int;
  alpha : Nf_util.Rat.t;
  trials : int;
  converged_trials : int;
  mean_poa : float;  (** over converged trials; [nan] when none *)
  max_poa : float;
  mean_moves : float;
  max_evals_seen : int;
  theory_bound : float;  (** [Theory.poa_upper_bound] at this α, n *)
}

val optimum_cost : alpha:Nf_util.Rat.t -> int -> Nf_util.Rat.t
(** Exact-rational [min(star, clique)] social cost (Lemma 4/5). *)

val default_init_p : int -> float
(** The default G(n,p) density, [(ln n + 1) / n] — just above the
    connectivity threshold. *)

val run_trial :
  n:int ->
  alpha:Nf_util.Rat.t ->
  max_evals:int ->
  init_p:float option ->
  seed:int ->
  int ->
  trial
(** One seeded trial (the last argument is the trial index).  Exposed for
    tests; runs through the calling domain's kernel workspace. *)

val run :
  ?pool:Nf_util.Pool.t ->
  ?init_p:float ->
  ?max_evals_factor:int ->
  n:int ->
  alpha:Nf_util.Rat.t ->
  trials:int ->
  seed:int ->
  unit ->
  trial list
(** Pool-dispatched trials, results in trial order.  A trial that has not
    converged after [max_evals_factor × C(n,2)] pair evaluations (default
    factor 60 — enough for n ≤ 256 at the default density; larger orders
    may need more) is reported with [converged = false].
    @raise Invalid_argument when [n < 2] or [trials < 1]. *)

val summarize : n:int -> alpha:Nf_util.Rat.t -> trial list -> summary

val csv_header : string

val to_csv : n:int -> alpha:Nf_util.Rat.t -> trial list -> string
(** Deterministic CSV (header + one row per trial): fixed seed ⇒
    byte-identical across pool widths. *)

val summary_to_string : summary -> string
