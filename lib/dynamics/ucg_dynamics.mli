(** Best-response dynamics for the unilateral game.

    A state is a full strategy profile — who owns which link.  Each step
    one player replaces its wish set with an exact best response (only when
    strictly profitable, so fixed points are exactly Nash profiles).
    Best-response dynamics in this game may cycle, hence the step cap. *)

type state = {
  graph : Nf_graph.Graph.t;
  owned : Nf_util.Bitset.t array;  (** [owned.(i)]: targets i pays for *)
}

type outcome = {
  final : state;
  rounds : int;
  converged : bool;  (** a full round passed with no strict improvement *)
}

val of_graph : Nf_graph.Graph.t -> owner:(int -> int -> int) -> state
(** Build a state from a graph and an edge-ownership choice. *)

val empty : int -> state
val is_nash : alpha:Nf_util.Rat.t -> state -> bool
(** Every player accepts its current wish set. *)

val best_response_step : alpha:Nf_util.Rat.t -> state -> int -> state option
(** [Some] updated state when player [i] has a strictly improving
    response. *)

val run :
  alpha:Nf_util.Rat.t ->
  ?max_rounds:int ->
  ?order:int array ->
  state ->
  outcome
(** Round-robin best-response (player order configurable) until a quiet
    round or [max_rounds] (default 1000). *)

val run_random :
  alpha:Nf_util.Rat.t ->
  rng:Nf_util.Prng.t ->
  ?max_rounds:int ->
  state ->
  outcome
(** As {!run} with a freshly shuffled player order each round. *)
