(** Stochastic stability of pairwise stable networks (Jackson–Watts
    perturbed dynamics; the notion the paper cites from Tercieux &
    Vannetelbosch [22]).

    The unperturbed process follows improving single-link moves; with
    probability ε a period instead mutates (toggles) a uniformly random
    link.  As ε → 0 the stationary distribution concentrates on the
    states minimizing Young's stochastic potential: the minimum-cost
    in-arborescence over recurrent states, where the cost of an arc
    [u → v] is the resistance [r(u,v)] — the fewest mutations needed to
    travel from [u] into [v] along otherwise-improving paths.

    The BCG's improving-move digraph has no closed cycles (see
    {!Meta.no_closed_cycles}), so the recurrent states are exactly the
    pairwise stable graphs and the computation is: 0/1-Dijkstra from each
    stable state over the move-or-mutate digraph, then a directed MST
    (Chu–Liu/Edmonds) per candidate root. *)

type verdict = {
  n : int;
  alpha : Nf_util.Rat.t;
  stable : Nf_graph.Graph.t list;  (** all stable labeled graphs *)
  potential : int array;  (** stochastic potential per stable state *)
  stochastically_stable : Nf_graph.Graph.t list;
      (** the potential minimizers *)
}

val resistances : alpha:Nf_util.Rat.t -> n:int -> Nf_graph.Graph.t list * int array array
(** The stable labeled graphs and the pairwise resistance matrix
    [r.(i).(j)] = mutations needed from stable state [i] to stable state
    [j].  [n ≤ 5] (the state space is [2^(n(n-1)/2)]).
    @raise Invalid_argument out of range, or if the improving dynamics
    have a closed cycle (never observed in this game). *)

val analyze : alpha:Nf_util.Rat.t -> n:int -> verdict

val stochastically_stable_classes : verdict -> Nf_graph.Graph.t list
(** The stochastically stable states up to isomorphism (canonical
    forms). *)
