(** Jackson–Watts analysis of the improving-move digraph.

    For a fixed player count and link cost, every labeled graph is a node
    and every improving single-link move (the moves of
    {!Bcg_dynamics.improving_moves}) an arc.  Improving paths then either
    terminate at a pairwise stable graph or fall into a closed cycle; this
    module materializes the digraph for small [n] and answers which.

    Sizes: [2^(n(n-1)/2)] nodes, so [n ≤ 6] (32 768 nodes). *)

type analysis = {
  n : int;
  alpha : Nf_util.Rat.t;
  total : int;  (** labeled graphs considered *)
  stable : int;  (** pairwise stable graphs (fixed points) *)
  reaching_stable : int;  (** graphs from which some improving path ends
                              at a stable graph *)
  in_closed_cycle : int;  (** graphs lying on a closed improving cycle *)
}

val analyze : alpha:Nf_util.Rat.t -> n:int -> analysis
(** Materialize the move digraph on all labeled graphs and classify.
    @raise Invalid_argument for [n < 2] or [n > 6]. *)

val reaches_stable : alpha:Nf_util.Rat.t -> Nf_graph.Graph.t -> bool
(** Whether some improving path from this graph ends at a pairwise stable
    graph (breadth-first over the move digraph; same size limits). *)

val no_closed_cycles : analysis -> bool
(** [true] when every graph can improve its way to stability — the
    Jackson–Watts "no closed improving cycles" property, which guarantees
    the stochastic dynamics of {!Bcg_dynamics.run} converge. *)

val pp : Format.formatter -> analysis -> unit
