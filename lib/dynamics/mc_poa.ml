module Graph = Nf_graph.Graph
module Kernel = Nf_graph.Kernel
module Random_graph = Nf_graph.Random_graph
module Prng = Nf_util.Prng
module Rat = Nf_util.Rat
module Pool = Nf_util.Pool
module Theory = Netform.Theory

(* Large-n Monte-Carlo price-of-anarchy estimation for the bilateral
   connection game.

   Exhaustive annotation stops at the enumerable orders; this module
   samples instead: seeded random initial graphs, a randomized
   first-improvement better-response walk run entirely inside a kernel
   workspace (edge toggles + allocation-free BFS, so n in the hundreds is
   a per-trial cost of seconds, not hours), and the exact-rational social
   cost of the resulting stable states against the closed-form optimum.

   The improving-move semantics are copied predicate-for-predicate from
   [Bcg] ([addition_blocks] / deletion loss with the same integer
   cross-multiplication), so a converged trial is pairwise stable by
   [Bcg.is_pairwise_stable]'s own definition — the differential tests pin
   exactly that. *)

let inf = Kernel.inf

type trial = {
  index : int;  (** trial number within the run *)
  seed : int;  (** derived per-trial PRNG seed *)
  init_edges : int;
  moves : int;  (** improving moves applied *)
  evals : int;  (** pair-slots evaluated (the convergence-time measure) *)
  converged : bool;  (** reached a pairwise-stable state within the budget *)
  final_edges : int;
  diameter : int;  (** of the final graph; [-1] when disconnected *)
  social_cost : Rat.t option;  (** exact [2αm + W]; [None] when disconnected *)
  poa : Rat.t option;  (** social cost / closed-form optimum *)
  final : Graph.t;
}

type summary = {
  n : int;
  alpha : Rat.t;
  trials : int;
  converged_trials : int;
  mean_poa : float;  (** over converged trials; [nan] when none *)
  max_poa : float;
  mean_moves : float;
  max_evals_seen : int;
  theory_bound : float;  (** [Theory.poa_upper_bound] at this α, n *)
}

(* closed-form optimum (Lemma 4/5): min of star and clique social cost,
   kept exact-rational — 2α(n−1) + 2(n−1)² vs αn(n−1) + n(n−1) *)
let optimum_cost ~alpha n =
  let star =
    Rat.add
      (Rat.mul (Rat.of_int (2 * (n - 1))) alpha)
      (Rat.of_int (2 * (n - 1) * (n - 1)))
  in
  let clique =
    Rat.add (Rat.mul (Rat.of_int (n * (n - 1))) alpha) (Rat.of_int (n * (n - 1)))
  in
  if Rat.compare star clique <= 0 then star else clique

(* same integer benefit/loss algebra as [Bcg] *)
let ibenefit ~base after = if base = inf then (if after = inf then 0 else inf) else base - after
let iloss ~base after = if base = inf || after = inf then inf else after - base

(* splitmix-style spread of the base seed so per-trial streams are
   independent of each other and of how trials land on domains *)
let trial_seed ~seed index = seed + (0x9E3779B9 * (index + 1))

let default_init_p n =
  if n < 2 then 0.0 else Float.min 1.0 ((log (float_of_int n) +. 1.0) /. float_of_int n)

let run_trial ~n ~alpha ~max_evals ~init_p ~seed index =
  if n < 2 then invalid_arg "Mc_poa.run_trial: need n >= 2";
  let tseed = trial_seed ~seed index in
  let rng = Prng.create tseed in
  let p = match init_p with Some p -> p | None -> default_init_p n in
  (* connected start: severing a bridge costs the severing player an
     infinite distance sum, so no improving deletion ever disconnects —
     a connected initial graph pins every final state to a finite social
     cost instead of the vacuously-stable multi-component artifacts a
     raw G(n,p) draw can fall into *)
  let g0 = Random_graph.connected_gnp rng n p in
  let init_edges = Graph.size g0 in
  (* the cyclic scan order: one seeded shuffle of the C(n,2) pairs *)
  let np = n * (n - 1) / 2 in
  let pairs = Array.make np 0 in
  let t = ref 0 in
  Nf_util.Subset.iter_pairs n (fun i j ->
      pairs.(!t) <- (i * n) + j;
      incr t);
  Prng.shuffle rng pairs;
  Kernel.with_loaded g0 (fun ws ->
      let num = Rat.num alpha
      and den = Rat.den alpha in
      let lt k = k = inf || num < k * den
      and le k = k = inf || num <= k * den in
      (* Lazily-versioned distance-sum cache: an applied move changes
         distances for potentially every vertex, but each evaluation only
         reads the two endpoints' sums — so instead of an O(n · BFS)
         all-sources refresh per move, each vertex's sum is recomputed by
         one single-source sweep the first time it is read after a move.
         [ver.(v) = cur] certifies [base.(v)] is current. *)
      let base = Array.make n 0
      and ver = Array.make n 0
      and cur = ref 1 in
      let base_of v =
        if ver.(v) <> !cur then begin
          base.(v) <- Kernel.distance_sum_from ws v;
          ver.(v) <- !cur
        end;
        base.(v)
      in
      let m = ref init_edges
      and moves = ref 0
      and evals = ref 0
      and pass_moves = ref 0
      and stable = ref false
      and idx = ref 0 in
      while (not !stable) && !evals < max_evals do
        if !idx >= np then
          (* Convergence certificate: one complete pass over the C(n,2)
             pairs with no improving move — every pair was then evaluated
             on the same unchanging graph, which is pairwise stability by
             definition.  A count of consecutive clean evaluations would
             NOT do: the order is re-drawn between passes, and a clean
             window spanning two permutations can miss pairs entirely. *)
          if !pass_moves = 0 then stable := true
          else begin
            idx := 0;
            pass_moves := 0;
            (* a FIXED scan order can trap first-improvement dynamics in
               a deterministic better-response cycle (the BCG has no
               potential function); re-drawing the order every pass makes
               the walk a randomized round-based process that escapes
               such cycles with probability 1 *)
            Prng.shuffle rng pairs
          end
        else begin
        let code = pairs.(!idx) in
        incr idx;
        incr evals;
        let i = code / n
        and j = code mod n in
        (* both endpoints' pre-move sums, refreshed before the toggle so
           the cache always describes the untoggled graph *)
        let bi_base = base_of i in
        let bj_base = base_of j in
        let applied =
          if Kernel.has_edge ws i j then begin
            (* deletion slot: either endpoint severs unilaterally.  The
               second endpoint's BFS runs only when the first did not
               already decide the move — lazily skipping roughly half
               the sweeps without changing the predicate. *)
            Kernel.toggle ws i j;
            let li = iloss ~base:bi_base (Kernel.distance_sum_from ws i) in
            let improving =
              (not (le li))
              || not (le (iloss ~base:bj_base (Kernel.distance_sum_from ws j)))
            in
            if improving then begin
              decr m;
              true
            end
            else begin
              Kernel.toggle ws i j;
              false
            end
          end
          else begin
            (* addition slot: bilateral, both must consent — the exact
               [Bcg.addition_blocks] predicate
               [(lt bi && le bj) || (lt bj && le bi)].  When [le bi]
               fails both disjuncts are dead (lt ⊆ le), so [j]'s BFS is
               skipped. *)
            Kernel.toggle ws i j;
            let bi = ibenefit ~base:bi_base (Kernel.distance_sum_from ws i) in
            let improving =
              le bi
              &&
              let bj = ibenefit ~base:bj_base (Kernel.distance_sum_from ws j) in
              (lt bi && le bj) || (lt bj && le bi)
            in
            if improving then begin
              incr m;
              true
            end
            else begin
              Kernel.toggle ws i j;
              false
            end
          end
        in
        if applied then begin
          incr moves;
          incr pass_moves;
          (* one version bump invalidates every cached sum in O(1);
             refreshes happen per-endpoint on demand, never as an
             all-sources sweep *)
          incr cur
        end
        end
      done;
      let converged = !stable in
      (* final statistics off one full fresh sweep *)
      let sums = Kernel.all_distance_sums ws in
      let ecc = Kernel.eccentricities ws in
      let wiener = ref 0
      and diameter = ref 0
      and connected = ref true in
      for v = 0 to n - 1 do
        if sums.(v) = inf then connected := false
        else begin
          wiener := !wiener + sums.(v);
          if ecc.(v) > !diameter then diameter := ecc.(v)
        end
      done;
      let social_cost, poa =
        if not !connected then (None, None)
        else begin
          let cost =
            Rat.add (Rat.mul (Rat.of_int (2 * !m)) alpha) (Rat.of_int !wiener)
          in
          (Some cost, Some (Rat.div cost (optimum_cost ~alpha n)))
        end
      in
      let final =
        Graph.build n (fun add ->
            for v = 0 to n - 1 do
              Kernel.iter_neighbors ws v (fun w -> if v < w then add v w)
            done)
      in
      {
        index;
        seed = tseed;
        init_edges;
        moves = !moves;
        evals = !evals;
        converged;
        final_edges = !m;
        diameter = (if !connected then !diameter else -1);
        social_cost;
        poa;
        final;
      })

let run ?pool ?init_p ?(max_evals_factor = 60) ~n ~alpha ~trials ~seed () =
  if n < 2 then invalid_arg "Mc_poa.run: need n >= 2";
  if trials < 1 then invalid_arg "Mc_poa.run: need trials >= 1";
  let np = n * (n - 1) / 2 in
  let max_evals = max np (max_evals_factor * np) in
  Pool.parallel_map ?pool
    (run_trial ~n ~alpha ~max_evals ~init_p ~seed)
    (List.init trials Fun.id)

let summarize ~n ~alpha results =
  let trials = List.length results in
  let converged = List.filter (fun t -> t.converged) results in
  let poas =
    List.filter_map (fun t -> Option.map Rat.to_float t.poa) converged
  in
  let mean_poa =
    match poas with
    | [] -> nan
    | _ -> List.fold_left ( +. ) 0.0 poas /. float_of_int (List.length poas)
  in
  let max_poa =
    match poas with
    | [] -> nan
    | _ -> List.fold_left Float.max neg_infinity poas
  in
  let mean_moves =
    match converged with
    | [] -> nan
    | _ ->
      List.fold_left (fun acc t -> acc +. float_of_int t.moves) 0.0 converged
      /. float_of_int (List.length converged)
  in
  {
    n;
    alpha;
    trials;
    converged_trials = List.length converged;
    mean_poa;
    max_poa;
    mean_moves;
    max_evals_seen = List.fold_left (fun acc t -> max acc t.evals) 0 results;
    theory_bound = Theory.poa_upper_bound ~alpha:(Rat.to_float alpha) ~n;
  }

(* ---------------- deterministic CSV ----------------
   Fixed seed ⇒ byte-identical output whatever the pool width: trials are
   seeded independently and [Pool.parallel_map] returns results in input
   order. *)

let csv_header =
  "trial,seed,n,alpha,init_edges,moves,evals,converged,final_edges,diameter,\
   social_cost,opt_cost,poa"

let csv_row ~n ~alpha t =
  let opt = optimum_cost ~alpha n in
  Printf.sprintf "%d,%d,%d,%s,%d,%d,%d,%d,%d,%s,%s,%s,%s" t.index t.seed n
    (Rat.to_string alpha) t.init_edges t.moves t.evals
    (if t.converged then 1 else 0)
    t.final_edges
    (if t.diameter < 0 then "inf" else string_of_int t.diameter)
    (match t.social_cost with Some c -> Rat.to_string c | None -> "inf")
    (Rat.to_string opt)
    (match t.poa with Some r -> Printf.sprintf "%.6f" (Rat.to_float r) | None -> "inf")

let to_csv ~n ~alpha results =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf csv_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun t ->
      Buffer.add_string buf (csv_row ~n ~alpha t);
      Buffer.add_char buf '\n')
    results;
  Buffer.contents buf

let summary_to_string s =
  let b = Buffer.create 256 in
  Printf.bprintf b "mc-poa: n=%d alpha=%s trials=%d converged=%d\n" s.n
    (Rat.to_string s.alpha) s.trials s.converged_trials;
  Printf.bprintf b "  PoA estimate: mean=%.4f max=%.4f (converged trials)\n" s.mean_poa
    s.max_poa;
  Printf.bprintf b "  theory: PoA <= O(min(sqrt(a), n/sqrt(a))) = %.4f at this (a, n)\n"
    s.theory_bound;
  Printf.bprintf b "  convergence: mean moves=%.1f, worst evals=%d\n" s.mean_moves
    s.max_evals_seen;
  Buffer.contents b
