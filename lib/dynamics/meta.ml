module Graph = Nf_graph.Graph
module Rat = Nf_util.Rat

type analysis = {
  n : int;
  alpha : Rat.t;
  total : int;
  stable : int;
  reaching_stable : int;
  in_closed_cycle : int;
}

let check_order n =
  if n < 2 || n > 6 then invalid_arg "Meta: order out of range (2..6)"

(* successor masks of one graph under improving moves *)
let successors ~alpha n mask =
  let g = Nf_enum.Labeled.graph_of_mask n mask in
  List.map
    (fun move ->
      let g' =
        match move with
        | Bcg_dynamics.Add (i, j) -> Graph.add_edge g i j
        | Bcg_dynamics.Delete (i, j) -> Graph.remove_edge g i j
      in
      Nf_enum.Labeled.mask_of_graph g')
    (Bcg_dynamics.improving_moves ~alpha g)

let build_digraph ~alpha n =
  let size = 1 lsl (n * (n - 1) / 2) in
  Array.init size (successors ~alpha n)

(* iterative Kosaraju: finish order on the forward digraph, then collect
   components on the reverse digraph *)
let sccs succ =
  let size = Array.length succ in
  let visited = Array.make size false in
  let order = ref [] in
  for start = 0 to size - 1 do
    if not visited.(start) then begin
      (* explicit stack of (node, remaining successors) *)
      let stack = ref [ (start, ref succ.(start)) ] in
      visited.(start) <- true;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (node, remaining) :: rest -> (
          match !remaining with
          | [] ->
            order := node :: !order;
            stack := rest
          | next :: others ->
            remaining := others;
            if not visited.(next) then begin
              visited.(next) <- true;
              stack := (next, ref succ.(next)) :: !stack
            end)
      done
    end
  done;
  let reverse = Array.make size [] in
  Array.iteri (fun v targets -> List.iter (fun w -> reverse.(w) <- v :: reverse.(w)) targets) succ;
  let component = Array.make size (-1) in
  let current = ref 0 in
  List.iter
    (fun root ->
      if component.(root) < 0 then begin
        let id = !current in
        incr current;
        let stack = ref [ root ] in
        component.(root) <- id;
        while !stack <> [] do
          match !stack with
          | [] -> ()
          | v :: rest ->
            stack := rest;
            List.iter
              (fun w ->
                if component.(w) < 0 then begin
                  component.(w) <- id;
                  stack := w :: !stack
                end)
              reverse.(v)
        done
      end)
    !order;
  (component, !current)

let analyze ~alpha ~n =
  check_order n;
  let succ = build_digraph ~alpha n in
  let size = Array.length succ in
  let stable_mask = Array.map (fun targets -> targets = []) succ in
  (* reverse reachability from the stable graphs *)
  let reverse = Array.make size [] in
  Array.iteri (fun v targets -> List.iter (fun w -> reverse.(w) <- v :: reverse.(w)) targets) succ;
  let can_reach = Array.copy stable_mask in
  let queue = Queue.create () in
  Array.iteri (fun v s -> if s then Queue.add v queue) stable_mask;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun w ->
        if not can_reach.(w) then begin
          can_reach.(w) <- true;
          Queue.add w queue
        end)
      reverse.(v)
  done;
  (* closed cycles: members of cyclic sink components *)
  let component, count = sccs succ in
  let comp_size = Array.make count 0 in
  let comp_has_exit = Array.make count false in
  Array.iteri
    (fun v targets ->
      comp_size.(component.(v)) <- comp_size.(component.(v)) + 1;
      List.iter
        (fun w -> if component.(w) <> component.(v) then comp_has_exit.(component.(v)) <- true)
        targets)
    succ;
  let in_closed_cycle = ref 0 in
  Array.iteri
    (fun v _ ->
      let c = component.(v) in
      if comp_size.(c) >= 2 && not comp_has_exit.(c) then incr in_closed_cycle)
    succ;
  {
    n;
    alpha;
    total = size;
    stable = Array.fold_left (fun acc s -> if s then acc + 1 else acc) 0 stable_mask;
    reaching_stable = Array.fold_left (fun acc s -> if s then acc + 1 else acc) 0 can_reach;
    in_closed_cycle = !in_closed_cycle;
  }

let reaches_stable ~alpha g =
  let n = Graph.order g in
  check_order n;
  let start = Nf_enum.Labeled.mask_of_graph g in
  let seen = Hashtbl.create 256 in
  let queue = Queue.create () in
  Hashtbl.add seen start ();
  Queue.add start queue;
  let found = ref false in
  while (not !found) && not (Queue.is_empty queue) do
    let mask = Queue.pop queue in
    match successors ~alpha n mask with
    | [] -> found := true
    | targets ->
      List.iter
        (fun next ->
          if not (Hashtbl.mem seen next) then begin
            Hashtbl.add seen next ();
            Queue.add next queue
          end)
        targets
  done;
  !found

let no_closed_cycles a = a.in_closed_cycle = 0 && a.reaching_stable = a.total

let pp ppf a =
  Format.fprintf ppf
    "n=%d alpha=%s: %d graphs, %d stable, %d reach stability, %d on closed cycles" a.n
    (Rat.to_string a.alpha) a.total a.stable a.reaching_stable a.in_closed_cycle
