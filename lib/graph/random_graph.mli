(** Random graph models, for dynamics starting points and property tests.

    Everything takes an explicit {!Nf_util.Prng.t}, keeping experiment runs
    reproducible. *)

val gnp : Nf_util.Prng.t -> int -> float -> Graph.t
(** Erdős–Rényi [G(n,p)]: each pair is an edge independently with
    probability [p]. *)

val gnm : Nf_util.Prng.t -> int -> int -> Graph.t
(** Uniform graph with exactly [m] edges.
    @raise Invalid_argument when [m] exceeds [n(n-1)/2]. *)

val tree : Nf_util.Prng.t -> int -> Graph.t
(** Uniform labeled tree via a random Prüfer sequence ([n ≥ 1]). *)

val connected_gnp : Nf_util.Prng.t -> int -> float -> Graph.t
(** [gnp] conditioned on connectivity: resamples until connected, raising
    [p] gradually to guarantee termination. *)
