module Bitset = Nf_util.Bitset
module Ext_int = Nf_util.Ext_int

(* Frontier-based BFS over bitset rows: the next frontier is the union of
   the neighbor rows of the current frontier minus everything seen, so each
   level costs O(n) word operations instead of a queue per vertex. *)
let distances g src =
  let n = Graph.order g in
  let dist = Array.make n (-1) in
  dist.(src) <- 0;
  let seen = ref (Bitset.singleton src) in
  let frontier = ref (Bitset.singleton src) in
  let level = ref 0 in
  while not (Bitset.is_empty !frontier) do
    incr level;
    let next = ref Bitset.empty in
    Bitset.iter (fun v -> next := Bitset.union !next (Graph.neighbors g v)) !frontier;
    let next_frontier = Bitset.diff !next !seen in
    Bitset.iter (fun v -> dist.(v) <- !level) next_frontier;
    seen := Bitset.union !seen next_frontier;
    frontier := next_frontier
  done;
  dist

let distances_ext g src =
  Array.map
    (fun d -> if d < 0 then Ext_int.Inf else Ext_int.Fin d)
    (distances g src)

(* Same levels as [distances], but stops the moment [dst] enters a
   frontier instead of exhausting the component. *)
let distance g src dst =
  let n = Graph.order g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Bfs.distance: vertex out of range";
  if src = dst then Ext_int.Fin 0
  else begin
    let rec go seen frontier level =
      if Bitset.is_empty frontier then Ext_int.Inf
      else begin
        let next = ref Bitset.empty in
        Bitset.iter (fun v -> next := Bitset.union !next (Graph.neighbors g v)) frontier;
        let fresh = Bitset.diff !next seen in
        if Bitset.mem dst fresh then Ext_int.Fin level
        else go (Bitset.union seen fresh) fresh (level + 1)
      end
    in
    go (Bitset.singleton src) (Bitset.singleton src) 1
  end

let distance_sum g v =
  let dist = distances g v in
  let total = ref 0 in
  let disconnected = ref false in
  Array.iter (fun d -> if d < 0 then disconnected := true else total := !total + d) dist;
  if !disconnected then Ext_int.Inf else Ext_int.Fin !total

let eccentricity g v =
  let dist = distances g v in
  let worst = ref 0 in
  let disconnected = ref false in
  Array.iter (fun d -> if d < 0 then disconnected := true else worst := max !worst d) dist;
  if !disconnected then Ext_int.Inf else Ext_int.Fin !worst

let reachable g src =
  let dist = distances g src in
  let acc = ref Bitset.empty in
  Array.iteri (fun v d -> if d >= 0 then acc := Bitset.add v !acc) dist;
  !acc
