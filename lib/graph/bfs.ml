module Bitset = Nf_util.Bitset
module Ext_int = Nf_util.Ext_int

(* Textbook queue BFS over [Graph.iter_neighbors].  Deliberately NOT the
   kernel's bitset-frontier algebra: this is the persistent reference the
   kernel is differential-tested against, so it should share as little
   machinery with it as possible.  Works at any order. *)
let distances g src =
  let n = Graph.order g in
  if src < 0 || src >= n then invalid_arg "Bfs.distances: vertex out of range";
  let dist = Array.make n (-1) in
  dist.(src) <- 0;
  let queue = Array.make n 0 in
  queue.(0) <- src;
  let head = ref 0
  and tail = ref 1 in
  while !head < !tail do
    let v = queue.(!head) in
    incr head;
    let dv = dist.(v) in
    Graph.iter_neighbors g v (fun w ->
        if dist.(w) < 0 then begin
          dist.(w) <- dv + 1;
          queue.(!tail) <- w;
          incr tail
        end)
  done;
  dist

let distances_ext g src =
  Array.map
    (fun d -> if d < 0 then Ext_int.Inf else Ext_int.Fin d)
    (distances g src)

let distance g src dst =
  let n = Graph.order g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Bfs.distance: vertex out of range";
  let d = (distances g src).(dst) in
  if d < 0 then Ext_int.Inf else Ext_int.Fin d

let distance_sum g v =
  let dist = distances g v in
  let total = ref 0 in
  let disconnected = ref false in
  Array.iter (fun d -> if d < 0 then disconnected := true else total := !total + d) dist;
  if !disconnected then Ext_int.Inf else Ext_int.Fin !total

let eccentricity g v =
  let dist = distances g v in
  let worst = ref 0 in
  let disconnected = ref false in
  Array.iter (fun d -> if d < 0 then disconnected := true else worst := max !worst d) dist;
  if !disconnected then Ext_int.Inf else Ext_int.Fin !worst

let reachable g src =
  let n = Graph.order g in
  if n > Bitset.max_size then
    invalid_arg
      (Printf.sprintf "Bfs.reachable: order %d > %d (one-word bitset result)" n
         Bitset.max_size);
  let dist = distances g src in
  let acc = ref Bitset.empty in
  Array.iteri (fun v d -> if d >= 0 then acc := Bitset.add v !acc) dist;
  !acc
