(** Girth — the length of a shortest cycle.

    The girth drives the paper's lower-bound construction (Proposition 3):
    the distance-cost swing from removing or adding a link in a k-regular
    graph is a function of the girth, which is how cages and Moore graphs
    enter the stable set. *)

val girth : Graph.t -> Nf_util.Ext_int.t
(** [Inf] for forests. *)

val is_acyclic : Graph.t -> bool
