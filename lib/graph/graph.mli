(** Undirected simple graphs on vertices [0 .. n-1].

    The representation is one adjacency row per vertex inside a flat
    multi-word slab (62 bits per word, see {!Nf_util.Bitset_w}), so edge
    tests, neighborhood scans, and copies are O(words) operations at any
    order.  For n ≤ 62 a row is a single word and bit-for-bit the
    historical one-word [Bitset.t] — the enumeration and symmetry code
    that consumes {!neighbors} is unchanged.  All operations are
    persistent: editing returns a new graph, which keeps the
    equilibrium-search code (which tries many one-edge perturbations of
    the same graph) free of state bugs; bulk construction at large n goes
    through {!build} instead. *)

type t

val empty : int -> t
(** [empty n] is the edgeless graph on [n] vertices, for any [n >= 0].
    @raise Invalid_argument when [n < 0]. *)

val order : t -> int
(** Number of vertices. *)

val words : t -> int
(** Slab words per adjacency row ([Bitset_w.words_for (order g)]);
    [1] exactly when [order g <= 62]. *)

val size : t -> int
(** Number of edges. *)

val has_edge : t -> int -> int -> bool
val add_edge : t -> int -> int -> t
(** Idempotent. @raise Invalid_argument on loops or out-of-range vertices. *)

val remove_edge : t -> int -> int -> t
val toggle_edge : t -> int -> int -> t

val neighbors : t -> int -> Nf_util.Bitset.t
(** One-word neighbor row.
    @raise Invalid_argument when [words g > 1] (order above 62) — those
    callers iterate with {!iter_neighbors} or read {!row_word}. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Apply to each neighbor in ascending order; any order. *)

val row_word : t -> int -> int -> int
(** [row_word g v k] is word [k] of vertex [v]'s adjacency row. *)

val degree : t -> int -> int

val build : int -> ((int -> int -> unit) -> unit) -> t
(** [build n fill] constructs a graph by calling [fill add] where
    [add i j] inserts edge [{i,j}] into a single mutable slab — O(1) per
    edge instead of a slab copy, the constructor for large-n graphs.
    @raise Invalid_argument from [add] on loops or out-of-range
    vertices. *)

val of_edges : int -> (int * int) list -> t
val edges : t -> (int * int) list
(** Edge list with [i < j], lexicographically sorted. *)

val iter_edges : t -> (int -> int -> unit) -> unit
val fold_edges : t -> (int -> int -> 'a -> 'a) -> 'a -> 'a
val non_edges : t -> (int * int) list
(** Vertex pairs [i < j] that are not adjacent. *)

val iter_non_edges : t -> (int -> int -> unit) -> unit
val complement : t -> t
val is_complete : t -> bool
val is_empty_graph : t -> bool

val add_vertex : t -> Nf_util.Bitset.t -> t
(** [add_vertex g nbrs] appends vertex [n] adjacent to exactly [nbrs] — the
    augmentation step of isomorphism-free enumeration, which lives entirely
    in the one-word regime.
    @raise Invalid_argument when [nbrs] mentions vertices ≥ [order g] or
    the resulting order would exceed 62. *)

val relabel : t -> int array -> t
(** [relabel g perm] renames vertex [v] to [perm.(v)]; [perm] must be a
    permutation of [0 .. n-1]. *)

val induced : t -> int list -> t
(** [induced g vs] is the subgraph induced by [vs], relabeled to
    [0 .. length vs - 1] in list order. *)

val union : t -> t -> t
(** Edge union of two graphs on the same vertex set. *)

val twin_rows_equal : t -> int -> int -> bool
(** [twin_rows_equal g u v]: do [u]'s and [v]'s neighbor rows agree once
    the pair itself is masked out?  The word-generic twin test behind
    {!Nf_iso.Symmetry} orbit detection. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** A total order consistent with {!equal} (lexicographic on adjacency
    rows); not isomorphism-invariant. *)

val hash : t -> int
val adjacency_key : t -> string
(** A canonical-per-labeling byte string usable as a hash-table key. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
