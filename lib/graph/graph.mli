(** Undirected simple graphs on vertices [0 .. n-1].

    The representation is one adjacency bitset per vertex, so edge tests,
    neighborhood scans, and copies are O(1)/O(n) word operations.  All
    operations are persistent: editing returns a new graph, which keeps the
    equilibrium-search code (which tries many one-edge perturbations of the
    same graph) free of state bugs at negligible cost for the orders this
    library targets (n ≤ 62). *)

type t

val empty : int -> t
(** [empty n] is the edgeless graph on [n] vertices.
    @raise Invalid_argument unless [0 <= n <= Bitset.max_size]. *)

val order : t -> int
(** Number of vertices. *)

val size : t -> int
(** Number of edges. *)

val has_edge : t -> int -> int -> bool
val add_edge : t -> int -> int -> t
(** Idempotent. @raise Invalid_argument on loops or out-of-range vertices. *)

val remove_edge : t -> int -> int -> t
val toggle_edge : t -> int -> int -> t
val neighbors : t -> int -> Nf_util.Bitset.t
val degree : t -> int -> int
val of_edges : int -> (int * int) list -> t
val edges : t -> (int * int) list
(** Edge list with [i < j], lexicographically sorted. *)

val iter_edges : t -> (int -> int -> unit) -> unit
val fold_edges : t -> (int -> int -> 'a -> 'a) -> 'a -> 'a
val non_edges : t -> (int * int) list
(** Vertex pairs [i < j] that are not adjacent. *)

val iter_non_edges : t -> (int -> int -> unit) -> unit
val complement : t -> t
val is_complete : t -> bool
val is_empty_graph : t -> bool

val add_vertex : t -> Nf_util.Bitset.t -> t
(** [add_vertex g nbrs] appends vertex [n] adjacent to exactly [nbrs] — the
    augmentation step of isomorphism-free enumeration.
    @raise Invalid_argument when [nbrs] mentions vertices ≥ [order g]. *)

val relabel : t -> int array -> t
(** [relabel g perm] renames vertex [v] to [perm.(v)]; [perm] must be a
    permutation of [0 .. n-1]. *)

val induced : t -> int list -> t
(** [induced g vs] is the subgraph induced by [vs], relabeled to
    [0 .. length vs - 1] in list order. *)

val union : t -> t -> t
(** Edge union of two graphs on the same vertex set. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** A total order consistent with {!equal} (lexicographic on adjacency
    rows); not isomorphism-invariant. *)

val hash : t -> int
val adjacency_key : t -> string
(** A canonical-per-labeling byte string usable as a hash-table key. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
