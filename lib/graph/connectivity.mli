(** Connectivity structure: components and bridges.

    Bridges matter to the games directly: severing a bridge disconnects the
    graph and makes the severing player's distance cost infinite, so a
    bridge is never severed in a pairwise-stable graph — its [α_max]
    contribution is [+∞]. *)

val is_connected : Graph.t -> bool
(** The empty graph (0 vertices) counts as connected.  Works at any
    order. *)

val components : Graph.t -> Nf_util.Bitset.t list
(** Connected components as one-word vertex bitsets, ordered by least
    vertex.  @raise Invalid_argument when the order exceeds 62. *)

val component_count : Graph.t -> int

val is_bridge : Graph.t -> int -> int -> bool
(** [is_bridge g i j] — removing existing edge [(i,j)] would put [i] and
    [j] in different components.  @raise Invalid_argument when [(i,j)] is
    not an edge. *)

val bridges : Graph.t -> (int * int) list

val is_cut_vertex : Graph.t -> int -> bool
(** Removing the vertex increases the number of components among the
    remaining vertices. *)
