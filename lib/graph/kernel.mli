(** Zero-allocation batched distance kernel, word-count-generic.

    A {!t} is a reusable per-domain workspace: mutable adjacency rows
    stored in a flat multi-word slab (62 bits per word, [Bitset_w]
    layout), preallocated distance-sum / eccentricity / reach / frontier
    scratch, and an edge-toggle primitive.  Loading a graph and running
    any number of single-source or all-sources distance-sum sweeps
    allocates nothing after the workspace exists — every intermediate
    value is an immediate [int], and infinity is represented as {!inf}
    ([max_int]) instead of boxed [Ext_int.t].

    For n ≤ 62 the slab is one word per vertex and every routine runs a
    verbatim copy of the historical single-word code (same instruction
    stream as the PR 4 bench rows); beyond 62 the same frontier algebra
    runs as loops over [words] ints per row, still allocation-free.

    {b Ownership rules}: a workspace is single-owner mutable state. Obtain
    one with {!with_ws} (or {!with_loaded}) which borrows the calling
    domain's resident workspace — one workspace per domain, never shared
    across domains, never stashed beyond the callback.  Re-entrant borrows
    are safe: the inner call gets a fresh scratch workspace. *)

module Bitset := Nf_util.Bitset

type t

val inf : int
(** Distance/sum value standing for infinity ([max_int]).  Arithmetic on it
    is the caller's responsibility: test against [inf] before adding. *)

val create : ?hint:int -> unit -> t
(** Fresh workspace with capacity for [hint] (default 16) vertices; grows
    on demand in {!load}/{!load_rows}/{!load_edges}. *)

val load : t -> Graph.t -> unit
(** Copy a graph's adjacency rows into the workspace (any order). *)

val load_rows : t -> int -> (int -> Bitset.t) -> unit
(** [load_rows ws n row] loads an [n]-vertex graph whose adjacency row for
    vertex [v] is the one-word bitset [row v]; rows are masked to
    [0..n-1] and self-loops stripped.  Lets callers build graphs (e.g.
    from directed strategy profiles) without constructing a persistent
    [Graph.t].
    @raise Invalid_argument when [n > 62] — one-word rows cannot name
    higher vertices; large graphs load through {!load_edges}. *)

val load_edges : t -> int -> ((int -> int -> unit) -> unit) -> unit
(** [load_edges ws n iter] loads an [n]-vertex graph from an edge
    iterator: [iter add] must call [add i j] for each undirected edge.
    Works at any order; self-loops are ignored, out-of-range vertices
    raise. *)

val order : t -> int

val words : t -> int
(** Slab words per adjacency row; [1] exactly when the one-word fast path
    is active. *)

val neighbors : t -> int -> Bitset.t
(** One-word neighbor row.
    @raise Invalid_argument when [words ws > 1] (order above 62). *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Apply to each neighbor in ascending order; any order. *)

val degree : t -> int -> int
val has_edge : t -> int -> int -> bool

val toggle : t -> int -> int -> unit
(** Flip the presence of undirected edge [{i,j}] in place ([i <> j]). *)

val distance_sum_from : t -> int -> int
(** Sum of BFS distances from a source to all other vertices, or {!inf} if
    some vertex is unreachable.  Allocation-free. *)

val reach_stats : t -> int -> int * int
(** [reach_stats ws src] is [(finite_sum, reached)]: the sum of distances
    to the vertices reachable from [src] and how many vertices are
    reachable (including [src] itself).  Never {!inf}. *)

val all_distance_sums : t -> int array
(** Bit-parallel all-sources sweep: every per-vertex frontier expands
    simultaneously each round, so the whole all-pairs pass costs
    O(diameter) rounds of O(n · words) word operations.  Returns the
    workspace's internal sums array ([sums.(v)] = distance sum from [v],
    {!inf} when [v] cannot reach every vertex) — valid until the next
    kernel call; copy it if it must survive.  Also refreshes
    {!eccentricities}. *)

val eccentricities : t -> int array
(** Per-vertex eccentricities computed by the latest {!all_distance_sums}
    ({!inf} for vertices that do not reach everything).  Same borrowing
    rule as the sums array. *)

val set_min_words_for_testing : int -> unit
(** Force subsequent loads to use at least this many words per row, so the
    differential test harness can pin the generic multi-word loops against
    the one-word fast path on the same n ≤ 62 inputs.  [1] restores
    normal dispatch.  Test-only: process-global, not for concurrent use
    with live workloads. *)

val with_ws : (t -> 'a) -> 'a
(** Borrow the calling domain's resident workspace.  The workspace is
    reused across calls on the same domain (this is what makes chunked
    annotation allocation-free); contents are unspecified on entry. *)

val with_loaded : Graph.t -> (t -> 'a) -> 'a
(** [with_loaded g f] = [with_ws] + {!load}[ g] before running [f]. *)
