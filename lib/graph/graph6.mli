(** The graph6 text format (McKay), for graphs on up to 62 vertices.

    graph6 is the lingua franca of graph generators (nauty/geng), so
    supporting it lets the enumeration and equilibrium pipelines exchange
    graphs with external tooling and gives tests a compact fixture
    format. *)

val encode : Graph.t -> string
val decode : string -> Graph.t
(** Strict inverse of {!encode}: the header must be an order in
    [0..62], the body exactly the right length with every byte in the
    printable 63..126 range, and the final byte's padding bits zero.
    Consequently [decode] accepts exactly the image of {!encode}, and
    [encode (decode s) = s] whenever [decode s] succeeds — corrupted or
    truncated strings never decode silently.
    @raise Invalid_argument on malformed input. *)
