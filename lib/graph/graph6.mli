(** The graph6 text format (McKay), for graphs on up to 258047 vertices.

    graph6 is the lingua franca of graph generators (nauty/geng), so
    supporting it lets the enumeration and equilibrium pipelines exchange
    graphs with external tooling and gives tests a compact fixture
    format.  Orders up to 62 use the classic one-byte header; 63..258047
    the standard ['~'] + 3-byte header. *)

val max_order : int
(** Largest encodable order (258047, the 3-byte header ceiling). *)

val encode : Graph.t -> string
(** @raise Invalid_argument when the order exceeds {!max_order}. *)

val decode : string -> Graph.t
(** Strict inverse of {!encode}: the header must be a canonical order in
    [0..258047] (one-byte up to 62, ['~'] + 3 bytes above), the body
    exactly the right length with every byte in the printable 63..126
    range, and the final byte's padding bits zero.  Consequently [decode]
    accepts exactly the image of {!encode}, and [encode (decode s) = s]
    whenever [decode s] succeeds — corrupted or truncated strings never
    decode silently.
    @raise Invalid_argument on malformed input. *)
