(** The graph6 text format (McKay), for graphs on up to 62 vertices.

    graph6 is the lingua franca of graph generators (nauty/geng), so
    supporting it lets the enumeration and equilibrium pipelines exchange
    graphs with external tooling and gives tests a compact fixture
    format. *)

val encode : Graph.t -> string
val decode : string -> Graph.t
(** @raise Invalid_argument on malformed input. *)
