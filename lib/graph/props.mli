(** Structural predicates and invariants used to classify equilibrium
    topologies. *)

val degree_sequence : Graph.t -> int list
(** Non-increasing. *)

val min_degree : Graph.t -> int
val max_degree : Graph.t -> int

val regularity : Graph.t -> int option
(** [Some k] when every vertex has degree [k]. *)

val is_regular : Graph.t -> bool
val is_tree : Graph.t -> bool
(** Connected and acyclic. *)

val is_forest : Graph.t -> bool
val is_star : Graph.t -> bool
(** One center adjacent to all others, no other edges ([n ≥ 2]; [K_2]
    counts). *)

val is_cycle : Graph.t -> bool
(** Connected and 2-regular ([n ≥ 3]). *)

val is_path : Graph.t -> bool
(** A tree with exactly two leaves, or a single vertex/edge. *)

val is_bipartite : Graph.t -> bool

val common_neighbors : Graph.t -> int -> int -> int
(** Number of shared neighbors of two distinct vertices. *)

val strongly_regular_params : Graph.t -> (int * int * int * int) option
(** [Some (n, k, lambda, mu)] when the graph is strongly regular: k-regular,
    every adjacent pair has exactly [lambda] common neighbors and every
    non-adjacent pair exactly [mu].  Complete and empty graphs are excluded
    (the conventional non-degeneracy requirement). *)

val is_strongly_regular : Graph.t -> bool

val has_diameter_at_most : Graph.t -> int -> bool
