module Bitset = Nf_util.Bitset
module Ext_int = Nf_util.Ext_int

let degree_sequence g =
  let degrees = List.init (Graph.order g) (Graph.degree g) in
  List.sort (fun a b -> compare b a) degrees

let min_degree g =
  match degree_sequence g with
  | [] -> 0
  | ds -> List.fold_left min max_int ds

let max_degree g =
  match degree_sequence g with
  | [] -> 0
  | d :: _ -> d

let regularity g =
  let n = Graph.order g in
  if n = 0 then Some 0
  else
    let k = Graph.degree g 0 in
    let rec check v = v >= n || (Graph.degree g v = k && check (v + 1)) in
    if check 1 then Some k else None

let is_regular g = regularity g <> None
let is_tree g = Connectivity.is_connected g && Graph.size g = Graph.order g - 1
let is_forest g = Girth.is_acyclic g

let is_star g =
  let n = Graph.order g in
  n >= 2
  && Graph.size g = n - 1
  && max_degree g = n - 1
  && Connectivity.is_connected g

let is_cycle g =
  Graph.order g >= 3 && regularity g = Some 2 && Connectivity.is_connected g

let is_path g =
  let n = Graph.order g in
  is_tree g
  && (n <= 2 || List.length (List.filter (fun v -> Graph.degree g v = 1) (List.init n Fun.id)) = 2)
     && max_degree g <= 2

let is_bipartite g =
  let n = Graph.order g in
  let color = Array.make n (-1) in
  let ok = ref true in
  for src = 0 to n - 1 do
    if color.(src) < 0 then begin
      color.(src) <- 0;
      let queue = Queue.create () in
      Queue.add src queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Bitset.iter
          (fun w ->
            if color.(w) < 0 then begin
              color.(w) <- 1 - color.(u);
              Queue.add w queue
            end
            else if color.(w) = color.(u) then ok := false)
          (Graph.neighbors g u)
      done
    end
  done;
  !ok

let common_neighbors g i j =
  Bitset.cardinal (Bitset.inter (Graph.neighbors g i) (Graph.neighbors g j))

let strongly_regular_params g =
  let n = Graph.order g in
  if n < 2 || Graph.is_complete g || Graph.is_empty_graph g then None
  else
    match regularity g with
    | None -> None
    | Some k ->
      let lambda = ref (-1)
      and mu = ref (-1)
      and ok = ref true in
      Nf_util.Subset.iter_pairs n (fun i j ->
          let c = common_neighbors g i j in
          let target = if Graph.has_edge g i j then lambda else mu in
          if !target < 0 then target := c else if !target <> c then ok := false);
      (* A disconnected regular graph can still pass with mu = 0; strongly
         regular graphs with mu = 0 are disjoint unions of cliques, which we
         keep, matching the standard definition. *)
      if !ok && !lambda >= 0 && !mu >= 0 then Some (n, k, !lambda, !mu) else None

let is_strongly_regular g = strongly_regular_params g <> None

let has_diameter_at_most g d =
  match Apsp.diameter g with
  | Ext_int.Inf -> false
  | Ext_int.Fin x -> x <= d
