(** Adjacency and Laplacian spectra (cyclic Jacobi on the dense symmetric
    matrix).

    Spectra give independent certificates for the structure the stability
    analysis leans on: a connected k-regular graph is strongly regular
    iff its adjacency spectrum has exactly three distinct values, and the
    Laplacian's second-smallest eigenvalue (algebraic connectivity) is
    positive iff the graph is connected.  Intended for the gallery-sized
    graphs (dense O(n³) iteration). *)

val adjacency_eigenvalues : Graph.t -> float array
(** Ascending, with multiplicity.  Empty array for the empty graph. *)

val laplacian_eigenvalues : Graph.t -> float array
(** Ascending; the smallest is always (numerically) 0. *)

val algebraic_connectivity : Graph.t -> float
(** Second-smallest Laplacian eigenvalue; 0 when disconnected, positive
    when connected ([n ≥ 2]). *)

val spectral_radius : Graph.t -> float
(** Largest adjacency eigenvalue ([k] for a connected k-regular graph). *)

val distinct_eigenvalues : ?tolerance:float -> Graph.t -> float list
(** Ascending distinct adjacency eigenvalues (default tolerance 1e-7). *)
