module Bitset = Nf_util.Bitset
module Bw = Nf_util.Bitset_w

(* Adjacency lives in one flat slab: row [v] is the [words] ints at offset
   [v * words], 62 usable bits per word (see [Bitset_w]).  For n <= 62 the
   slab is one int per vertex and each row IS the historical one-word
   [Bitset.t] — same array shape, same integers — so [equal]/[compare]/
   [hash]/[adjacency_key] and every consumer of [neighbors] behave exactly
   as before the multi-word refactor. *)
type t = {
  n : int;
  words : int;  (** [Bw.words_for n], cached *)
  adj : int array;  (** flat [n * words] slab *)
}

let empty n =
  if n < 0 then invalid_arg "Graph.empty: bad order";
  let words = Bw.words_for n in
  { n; words; adj = Array.make (n * words) 0 }

let order g = g.n
let words g = g.words

let check_vertex g v =
  if v < 0 || v >= g.n then invalid_arg "Graph: vertex out of range"

let has_edge g i j = g.adj.((i * g.words) + Bw.word_of j) land Bw.bit_of j <> 0
let row_word g v k = g.adj.((v * g.words) + k)

let add_edge g i j =
  check_vertex g i;
  check_vertex g j;
  if i = j then invalid_arg "Graph.add_edge: loop";
  let adj = Array.copy g.adj in
  Bw.set adj (i * g.words) j;
  Bw.set adj (j * g.words) i;
  { g with adj }

let remove_edge g i j =
  check_vertex g i;
  check_vertex g j;
  let adj = Array.copy g.adj in
  Bw.clear adj (i * g.words) j;
  Bw.clear adj (j * g.words) i;
  { g with adj }

let toggle_edge g i j = if has_edge g i j then remove_edge g i j else add_edge g i j

let neighbors g v =
  if g.words > 1 then
    invalid_arg
      (Printf.sprintf
         "Graph.neighbors: order %d > %d needs multi-word rows; use iter_neighbors or \
          row_word"
         g.n Bitset.max_size);
  g.adj.(v)

let iter_neighbors g v f = Bw.iter f g.adj (v * g.words) g.words
let degree g v = Bw.cardinal g.adj (v * g.words) g.words

let size g =
  let total = ref 0 in
  Array.iter (fun w -> total := !total + Bw.popcount w) g.adj;
  !total / 2

(* Bulk constructor: one mutable slab filled in place, then frozen — the
   only way to build a large graph without paying a full-slab copy per
   edge the way persistent [add_edge] does. *)
let build n fill =
  if n < 0 then invalid_arg "Graph.build: bad order";
  let words = Bw.words_for n in
  let adj = Array.make (n * words) 0 in
  let add i j =
    if i < 0 || i >= n || j < 0 || j >= n then invalid_arg "Graph: vertex out of range";
    if i = j then invalid_arg "Graph.add_edge: loop";
    Bw.set adj (i * words) j;
    Bw.set adj (j * words) i
  in
  fill add;
  { n; words; adj }

let of_edges n edge_list =
  build n (fun add -> List.iter (fun (i, j) -> add i j) edge_list)

let iter_edges g f =
  for i = 0 to g.n - 1 do
    iter_neighbors g i (fun j -> if i < j then f i j)
  done

let fold_edges g f init =
  let acc = ref init in
  iter_edges g (fun i j -> acc := f i j !acc);
  !acc

let edges g = List.rev (fold_edges g (fun i j acc -> (i, j) :: acc) [])

let iter_non_edges g f =
  for i = 0 to g.n - 2 do
    for j = i + 1 to g.n - 1 do
      if not (has_edge g i j) then f i j
    done
  done

let non_edges g =
  let acc = ref [] in
  iter_non_edges g (fun i j -> acc := (i, j) :: !acc);
  List.rev !acc

let complement g =
  let adj = Array.make (g.n * g.words) 0 in
  let full = Array.make g.words 0 in
  Bw.blit_full_mask full 0 g.n g.words;
  for v = 0 to g.n - 1 do
    let off = v * g.words in
    for k = 0 to g.words - 1 do
      adj.(off + k) <- full.(k) land lnot g.adj.(off + k)
    done;
    Bw.clear adj off v
  done;
  { g with adj }

let is_complete g = size g = g.n * (g.n - 1) / 2
let is_empty_graph g = size g = 0

let add_vertex g nbrs =
  if not (Nf_util.Bitset.subset nbrs (Bitset.full (min g.n Bitset.max_size))) then
    invalid_arg "Graph.add_vertex: neighbor out of range";
  let n = g.n + 1 in
  if n > Bitset.max_size then
    invalid_arg
      (Printf.sprintf
         "Graph.add_vertex: resulting order %d > %d (augmentation is one-word only)" n
         Bitset.max_size)
  else begin
    (* one-word regime: words = 1 both before and after, plain row append *)
    let adj = Array.make n Bitset.empty in
    Array.blit g.adj 0 adj 0 g.n;
    adj.(g.n) <- nbrs;
    Bitset.iter (fun v -> adj.(v) <- Bitset.add g.n adj.(v)) nbrs;
    { n; words = 1; adj }
  end

let relabel g perm =
  if Array.length perm <> g.n then invalid_arg "Graph.relabel: size mismatch";
  let adj = Array.make (g.n * g.words) 0 in
  for v = 0 to g.n - 1 do
    let off = perm.(v) * g.words in
    iter_neighbors g v (fun w -> Bw.set adj off perm.(w))
  done;
  { g with adj }

let induced g vs =
  let vs = Array.of_list vs in
  let k = Array.length vs in
  build k (fun add ->
      for a = 0 to k - 2 do
        for b = a + 1 to k - 1 do
          if has_edge g vs.(a) vs.(b) then add a b
        done
      done)

let union g1 g2 =
  if g1.n <> g2.n then invalid_arg "Graph.union: order mismatch";
  { g1 with adj = Array.map2 ( lor ) g1.adj g2.adj }

(* [v]'s and [u]'s rows agree outside the pair itself — the twin test the
   symmetry tier runs n^2 times per graph, word-generic so quotient
   detection survives past 62 vertices. *)
let twin_rows_equal g u v =
  let ou = u * g.words
  and ov = v * g.words in
  let wu = Bw.word_of v
  and wv = Bw.word_of u in
  let rec go k =
    k >= g.words
    ||
    let ru = g.adj.(ou + k)
    and rv = g.adj.(ov + k) in
    let ru = if k = wu then ru land lnot (Bw.bit_of v) else ru in
    let rv = if k = wv then rv land lnot (Bw.bit_of u) else rv in
    ru = rv && go (k + 1)
  in
  go 0

let equal g1 g2 = g1.n = g2.n && g1.adj = g2.adj
let compare g1 g2 = Stdlib.compare (g1.n, g1.adj) (g2.n, g2.adj)
let hash g = Hashtbl.hash (g.n, g.adj)

let adjacency_key g =
  let buf = Buffer.create (g.n * 8) in
  (* one-byte header up to 255 (the historical key for every stored
     graph); a textual header beyond, where no golden bytes exist *)
  if g.n < 256 then Buffer.add_char buf (Char.chr g.n)
  else Buffer.add_string buf (Printf.sprintf "#%d;" g.n);
  Array.iter (fun row -> Buffer.add_string buf (Printf.sprintf "%x," row)) g.adj;
  Buffer.contents buf

let pp ppf g =
  Format.fprintf ppf "graph(n=%d, m=%d: %a)" g.n (size g)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       (fun ppf (i, j) -> Format.fprintf ppf "%d-%d" i j))
    (edges g)

let to_string g = Format.asprintf "%a" pp g
