module Bitset = Nf_util.Bitset

type t = {
  n : int;
  adj : int array;  (** [adj.(v)] is the neighbor bitset of [v] *)
}

let empty n =
  if n < 0 || n > Bitset.max_size then invalid_arg "Graph.empty: bad order";
  { n; adj = Array.make n Bitset.empty }

let order g = g.n

let check_vertex g v =
  if v < 0 || v >= g.n then invalid_arg "Graph: vertex out of range"

let has_edge g i j = Bitset.mem j g.adj.(i)

let add_edge g i j =
  check_vertex g i;
  check_vertex g j;
  if i = j then invalid_arg "Graph.add_edge: loop";
  let adj = Array.copy g.adj in
  adj.(i) <- Bitset.add j adj.(i);
  adj.(j) <- Bitset.add i adj.(j);
  { g with adj }

let remove_edge g i j =
  check_vertex g i;
  check_vertex g j;
  let adj = Array.copy g.adj in
  adj.(i) <- Bitset.remove j adj.(i);
  adj.(j) <- Bitset.remove i adj.(j);
  { g with adj }

let toggle_edge g i j = if has_edge g i j then remove_edge g i j else add_edge g i j
let neighbors g v = g.adj.(v)
let degree g v = Bitset.cardinal g.adj.(v)

let size g =
  let total = Array.fold_left (fun acc row -> acc + Bitset.cardinal row) 0 g.adj in
  total / 2

let of_edges n edge_list = List.fold_left (fun g (i, j) -> add_edge g i j) (empty n) edge_list

let iter_edges g f =
  for i = 0 to g.n - 1 do
    Bitset.iter (fun j -> if i < j then f i j) g.adj.(i)
  done

let fold_edges g f init =
  let acc = ref init in
  iter_edges g (fun i j -> acc := f i j !acc);
  !acc

let edges g = List.rev (fold_edges g (fun i j acc -> (i, j) :: acc) [])

let iter_non_edges g f =
  for i = 0 to g.n - 2 do
    for j = i + 1 to g.n - 1 do
      if not (has_edge g i j) then f i j
    done
  done

let non_edges g =
  let acc = ref [] in
  iter_non_edges g (fun i j -> acc := (i, j) :: !acc);
  List.rev !acc

let complement g =
  let all = Bitset.full g.n in
  { g with adj = Array.mapi (fun v row -> Bitset.remove v (Bitset.diff all row)) g.adj }

let is_complete g = size g = g.n * (g.n - 1) / 2
let is_empty_graph g = size g = 0

let add_vertex g nbrs =
  if not (Nf_util.Bitset.subset nbrs (Bitset.full g.n)) then
    invalid_arg "Graph.add_vertex: neighbor out of range";
  let n = g.n + 1 in
  if n > Bitset.max_size then invalid_arg "Graph.add_vertex: too large";
  let adj = Array.make n Bitset.empty in
  Array.blit g.adj 0 adj 0 g.n;
  adj.(g.n) <- nbrs;
  Bitset.iter (fun v -> adj.(v) <- Bitset.add g.n adj.(v)) nbrs;
  { n; adj }

let relabel g perm =
  if Array.length perm <> g.n then invalid_arg "Graph.relabel: size mismatch";
  let adj = Array.make g.n Bitset.empty in
  for v = 0 to g.n - 1 do
    let row = Bitset.fold (fun w acc -> Bitset.add perm.(w) acc) g.adj.(v) Bitset.empty in
    adj.(perm.(v)) <- row
  done;
  { g with adj }

let induced g vs =
  let vs = Array.of_list vs in
  let k = Array.length vs in
  let sub = empty k in
  let sub = ref sub in
  for a = 0 to k - 2 do
    for b = a + 1 to k - 1 do
      if has_edge g vs.(a) vs.(b) then sub := add_edge !sub a b
    done
  done;
  !sub

let union g1 g2 =
  if g1.n <> g2.n then invalid_arg "Graph.union: order mismatch";
  { g1 with adj = Array.map2 Bitset.union g1.adj g2.adj }

let equal g1 g2 = g1.n = g2.n && g1.adj = g2.adj
let compare g1 g2 = Stdlib.compare (g1.n, g1.adj) (g2.n, g2.adj)
let hash g = Hashtbl.hash (g.n, g.adj)

let adjacency_key g =
  let buf = Buffer.create (g.n * 8) in
  Buffer.add_char buf (Char.chr g.n);
  Array.iter (fun row -> Buffer.add_string buf (Printf.sprintf "%x," row)) g.adj;
  Buffer.contents buf

let pp ppf g =
  Format.fprintf ppf "graph(n=%d, m=%d: %a)" g.n (size g)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       (fun ppf (i, j) -> Format.fprintf ppf "%d-%d" i j))
    (edges g)

let to_string g = Format.asprintf "%a" pp g
