module Ext_int = Nf_util.Ext_int

let to_dot ?(name = "g") g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  for v = 0 to Graph.order g - 1 do
    Buffer.add_string buf (Printf.sprintf "  %d;\n" v)
  done;
  Graph.iter_edges g (fun i j -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" i j));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let adjacency_lists g =
  let buf = Buffer.create 256 in
  for v = 0 to Graph.order g - 1 do
    Buffer.add_string buf (Printf.sprintf "%d:" v);
    Nf_util.Bitset.iter
      (fun w -> Buffer.add_string buf (Printf.sprintf " %d" w))
      (Graph.neighbors g v);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let summary g =
  let classification =
    match Props.strongly_regular_params g with
    | Some (n, k, lambda, mu) -> Printf.sprintf "srg(%d,%d,%d,%d)" n k lambda mu
    | None -> (
      match Props.regularity g with
      | Some k -> Printf.sprintf "%d-regular" k
      | None -> "irregular")
  in
  Printf.sprintf "n=%d m=%d degrees=[%s] diam=%s girth=%s %s%s" (Graph.order g)
    (Graph.size g)
    (String.concat ";" (List.map string_of_int (Props.degree_sequence g)))
    (Ext_int.to_string (Apsp.diameter g))
    (Ext_int.to_string (Girth.girth g))
    classification
    (if Connectivity.is_connected g then "" else " disconnected")
