module Bitset = Nf_util.Bitset
module Bw = Nf_util.Bitset_w

(* Adjacency and the per-vertex reach/front scratch live in flat slabs of
   [words] ints per vertex (62 bits per word, [Bitset_w] layout).  For
   n <= 62, words = 1 and a row is one int at offset [v] — exactly the
   historical single-word workspace — and every routine below dispatches
   to a verbatim copy of the one-word code, so the n <= 8 annotation hot
   paths (PR 4/6 bench rows, golden store bytes) are untouched by the
   multi-word generalization. *)
type t = {
  mutable n : int;
  mutable words : int;  (** slab words per row; 1 ⇔ n <= 62 (unless forced) *)
  mutable all : Bitset.t;  (** [Bitset.full n] when [words = 1], else unused *)
  mutable adj : int array;  (** [n * words] slab *)
  mutable sums : int array;
  mutable ecc : int array;
  mutable reach : int array;  (** [n * words] slab *)
  mutable front : int array;  (** [n * words] slab *)
  mutable seen1 : int array;  (** [words] scratch: single-source seen row *)
  mutable front1 : int array;  (** [words] scratch: single-source frontier *)
  mutable next1 : int array;  (** [words] scratch: one-round expansion *)
  mutable full : int array;  (** [words] mask of the [n] valid bits *)
}

let inf = max_int

let create ?(hint = 16) () =
  let cap = max hint 1 in
  {
    n = 0;
    words = 1;
    all = Bitset.empty;
    adj = Array.make cap 0;
    sums = Array.make cap 0;
    ecc = Array.make cap 0;
    reach = Array.make cap 0;
    front = Array.make cap 0;
    seen1 = Array.make 1 0;
    front1 = Array.make 1 0;
    next1 = Array.make 1 0;
    full = Array.make 1 0;
  }

let ensure ws n words =
  let slab = n * words in
  if slab > Array.length ws.adj then begin
    let cap = max slab (2 * Array.length ws.adj) in
    ws.adj <- Array.make cap 0;
    ws.reach <- Array.make cap 0;
    ws.front <- Array.make cap 0
  end;
  if n > Array.length ws.sums then begin
    let cap = max n (2 * Array.length ws.sums) in
    ws.sums <- Array.make cap 0;
    ws.ecc <- Array.make cap 0
  end;
  if words > Array.length ws.seen1 then begin
    ws.seen1 <- Array.make words 0;
    ws.front1 <- Array.make words 0;
    ws.next1 <- Array.make words 0;
    ws.full <- Array.make words 0
  end

(* Differential-test hook: force the generic multi-word loops onto graphs
   small enough for the one-word fast path, so the two implementations can
   be pinned against each other on the same inputs. *)
let forced_min_words = ref 1
let set_min_words_for_testing w = forced_min_words := max 1 w

let setup ws n words =
  ensure ws n words;
  ws.n <- n;
  ws.words <- words;
  ws.all <- (if words = 1 then Bitset.full n else Bitset.empty);
  Bw.blit_full_mask ws.full 0 n words

let order ws = ws.n
let words ws = ws.words

let neighbors ws v =
  if ws.words > 1 then
    invalid_arg
      (Printf.sprintf
         "Kernel.neighbors: order %d > %d needs multi-word rows; use has_edge or \
          iter_neighbors"
         ws.n Bitset.max_size);
  ws.adj.(v)

let has_edge ws i j =
  if ws.words = 1 then ws.adj.(i) land (1 lsl j) <> 0
  else ws.adj.((i * ws.words) + Bw.word_of j) land Bw.bit_of j <> 0

let iter_neighbors ws v f = Bw.iter f ws.adj (v * ws.words) ws.words
let degree ws v = Bw.cardinal ws.adj (v * ws.words) ws.words

let load ws g =
  let n = Graph.order g in
  let gw = Graph.words g in
  let words = max gw !forced_min_words in
  setup ws n words;
  for v = 0 to n - 1 do
    let off = v * words in
    for k = 0 to words - 1 do
      ws.adj.(off + k) <- (if k < gw then Graph.row_word g v k else 0)
    done
  done

let load_rows ws n row =
  if n < 0 || n > Bitset.max_size then
    invalid_arg
      (Printf.sprintf
         "Kernel.load_rows: order %d outside 0..%d (one-word rows; use load_edges \
          beyond %d vertices)"
         n Bitset.max_size Bitset.max_size);
  let words = max 1 !forced_min_words in
  setup ws n words;
  let mask = Bitset.full n in
  for v = 0 to n - 1 do
    let off = v * words in
    ws.adj.(off) <- Bitset.remove v (Bitset.inter (row v) mask);
    for k = 1 to words - 1 do
      ws.adj.(off + k) <- 0
    done
  done

let load_edges ws n iter =
  if n < 0 then invalid_arg "Kernel.load_edges: bad order";
  let words = max (Bw.words_for n) !forced_min_words in
  setup ws n words;
  Array.fill ws.adj 0 (n * words) 0;
  iter (fun i j ->
      if i < 0 || i >= n || j < 0 || j >= n then
        invalid_arg "Kernel.load_edges: vertex out of range";
      if i <> j then begin
        Bw.set ws.adj (i * words) j;
        Bw.set ws.adj (j * words) i
      end)

let toggle ws i j =
  if i = j then invalid_arg "Kernel.toggle: loop";
  if ws.words = 1 then begin
    (* one-word rows are bare ints: one xor per row flips presence both ways *)
    ws.adj.(i) <- ws.adj.(i) lxor (1 lsl j);
    ws.adj.(j) <- ws.adj.(j) lxor (1 lsl i)
  end
  else begin
    let w = ws.words in
    Bw.toggle ws.adj (i * w) j;
    Bw.toggle ws.adj (j * w) i
  end

(* ---------------- one-word fast path (n <= 62) ----------------
   Verbatim the pre-multi-word kernel: every value is an immediate int,
   a full BFS allocates nothing, and the instruction stream is identical
   to what the PR 4 bench rows were recorded against. *)

(* Index of an isolated bit [b] (a power of two), branch cascade instead of
   Bitset.min_elt's linear probe — this sits inside every frontier
   expansion. *)
let bit_index b =
  let k = if b land 0xFFFFFFFF = 0 then 32 else 0 in
  let b = b lsr k in
  let k2 = if b land 0xFFFF = 0 then 16 else 0 in
  let b = b lsr k2 in
  let k3 = if b land 0xFF = 0 then 8 else 0 in
  let b = b lsr k3 in
  let k4 = if b land 0xF = 0 then 4 else 0 in
  let b = b lsr k4 in
  let k5 = if b land 0x3 = 0 then 2 else 0 in
  let b = b lsr k5 in
  k + k2 + k3 + k4 + k5 + (b lsr 1)

(* Union of the adjacency rows of every vertex in [f]: the one-round
   frontier expansion.  Tail recursion over isolated low bits. *)
let rec expand_rows adj f acc =
  if f = 0 then acc
  else
    let b = f land -f in
    expand_rows adj (f lxor b) (acc lor adj.(bit_index b))

let distance_sum_from_1 ws src =
  let adj = ws.adj
  and all = ws.all in
  let rec go seen front level sum =
    if front = 0 then if seen = all then sum else inf
    else
      let fresh = expand_rows adj front 0 land lnot seen in
      go (seen lor fresh) fresh (level + 1) (sum + (level * Bitset.cardinal fresh))
  in
  let s = Bitset.singleton src in
  go s s 1 0

let reach_stats_1 ws src =
  let adj = ws.adj in
  let rec go seen front level sum =
    if front = 0 then (sum, Bitset.cardinal seen)
    else
      let fresh = expand_rows adj front 0 land lnot seen in
      go (seen lor fresh) fresh (level + 1) (sum + (level * Bitset.cardinal fresh))
  in
  let s = Bitset.singleton src in
  go s s 1 0

(* Bit-parallel all-sources BFS: one reach bitset and one frontier bitset
   per vertex, every frontier expanded simultaneously each round, so the
   whole all-pairs sweep costs O(diameter) rounds of O(n) word operations
   (amortized: each vertex enters each frontier once).  Eccentricities fall
   out for free as the last round in which a source still found a fresh
   vertex. *)
let all_distance_sums_1 ws =
  let n = ws.n
  and adj = ws.adj
  and all = ws.all in
  let reach = ws.reach
  and front = ws.front
  and sums = ws.sums
  and ecc = ws.ecc in
  for v = 0 to n - 1 do
    let s = Bitset.singleton v in
    reach.(v) <- s;
    front.(v) <- s;
    sums.(v) <- 0;
    ecc.(v) <- 0
  done;
  let rec round_of v level changed =
    if v >= n then changed
    else begin
      let f = front.(v) in
      if f = 0 then round_of (v + 1) level changed
      else begin
        let fresh = expand_rows adj f 0 land lnot reach.(v) in
        front.(v) <- fresh;
        if fresh = 0 then round_of (v + 1) level changed
        else begin
          reach.(v) <- reach.(v) lor fresh;
          sums.(v) <- sums.(v) + (level * Bitset.cardinal fresh);
          ecc.(v) <- level;
          round_of (v + 1) level true
        end
      end
    end
  in
  let rec rounds level = if round_of 0 level false then rounds (level + 1) in
  rounds 1;
  for v = 0 to n - 1 do
    if reach.(v) <> all then begin
      sums.(v) <- inf;
      ecc.(v) <- inf
    end
  done;
  sums

(* ---------------- generic multi-word path (any n) ----------------
   The same frontier algebra with each row operation widened to a loop
   over [words] ints.  Scratch rows live in the workspace, so the generic
   BFS still allocates nothing per call. *)

(* union of the adjacency rows of every vertex set in the row at
   [foff] of [front] into the scratch row [next] *)
let expand_rows_w adj words front foff next =
  Array.fill next 0 words 0;
  for k = 0 to words - 1 do
    let base = k * Bw.bits_per_word in
    let w = ref front.(foff + k) in
    while !w <> 0 do
      let b = !w land - !w in
      let off = (base + bit_index b) * words in
      for t = 0 to words - 1 do
        next.(t) <- next.(t) lor adj.(off + t)
      done;
      w := !w lxor b
    done
  done

(* one generic BFS round over the single-source scratch rows: moves
   [fresh = expand(front) \ seen] into [front], ors it into [seen], and
   returns how many fresh vertices the round found *)
let sweep_round_w ws =
  let words = ws.words in
  let seen = ws.seen1
  and front = ws.front1
  and next = ws.next1 in
  expand_rows_w ws.adj words front 0 next;
  let cnt = ref 0 in
  for k = 0 to words - 1 do
    let f = next.(k) land lnot seen.(k) in
    front.(k) <- f;
    seen.(k) <- seen.(k) lor f;
    cnt := !cnt + Bw.popcount f
  done;
  !cnt

let start_single_source ws src =
  let words = ws.words in
  Array.fill ws.seen1 0 words 0;
  Array.fill ws.front1 0 words 0;
  Bw.set ws.seen1 0 src;
  Bw.set ws.front1 0 src

let distance_sum_from_w ws src =
  start_single_source ws src;
  let rec go level sum count =
    let fresh = sweep_round_w ws in
    if fresh = 0 then if count = ws.n then sum else inf
    else go (level + 1) (sum + (level * fresh)) (count + fresh)
  in
  go 1 0 1

let reach_stats_w ws src =
  start_single_source ws src;
  let rec go level sum count =
    let fresh = sweep_round_w ws in
    if fresh = 0 then (sum, count) else go (level + 1) (sum + (level * fresh)) (count + fresh)
  in
  go 1 0 1

let all_distance_sums_w ws =
  let n = ws.n
  and words = ws.words in
  let adj = ws.adj
  and reach = ws.reach
  and front = ws.front
  and next = ws.next1
  and sums = ws.sums
  and ecc = ws.ecc in
  Array.fill reach 0 (n * words) 0;
  Array.fill front 0 (n * words) 0;
  for v = 0 to n - 1 do
    Bw.set reach (v * words) v;
    Bw.set front (v * words) v;
    sums.(v) <- 0;
    ecc.(v) <- 0
  done;
  let rec round_of v level changed =
    if v >= n then changed
    else begin
      let off = v * words in
      if Bw.is_empty_row front off words then round_of (v + 1) level changed
      else begin
        expand_rows_w adj words front off next;
        let cnt = ref 0 in
        for k = 0 to words - 1 do
          let f = next.(k) land lnot reach.(off + k) in
          front.(off + k) <- f;
          reach.(off + k) <- reach.(off + k) lor f;
          cnt := !cnt + Bw.popcount f
        done;
        if !cnt = 0 then round_of (v + 1) level changed
        else begin
          sums.(v) <- sums.(v) + (level * !cnt);
          ecc.(v) <- level;
          round_of (v + 1) level true
        end
      end
    end
  in
  let rec rounds level = if round_of 0 level false then rounds (level + 1) in
  rounds 1;
  let full = ws.full in
  for v = 0 to n - 1 do
    if not (Bw.equal_rows reach (v * words) full 0 words) then begin
      sums.(v) <- inf;
      ecc.(v) <- inf
    end
  done;
  sums

(* ---------------- dispatch ---------------- *)

let distance_sum_from ws src =
  if ws.words = 1 then distance_sum_from_1 ws src else distance_sum_from_w ws src

let reach_stats ws src =
  if ws.words = 1 then reach_stats_1 ws src else reach_stats_w ws src

let all_distance_sums ws =
  if ws.words = 1 then all_distance_sums_1 ws else all_distance_sums_w ws

let eccentricities ws = ws.ecc

(* ---------------- per-domain workspaces ----------------
   One resident workspace per domain, handed out under a busy flag: the
   normal borrow is free of allocation, and a re-entrant borrow (a kernel
   routine calling another kernel routine) falls back to a fresh scratch
   workspace instead of corrupting the outer caller's state. *)

type slot = {
  resident : t;
  mutable busy : bool;
}

let slot_key = Domain.DLS.new_key (fun () -> { resident = create (); busy = false })

let with_ws f =
  let slot = Domain.DLS.get slot_key in
  if slot.busy then f (create ())
  else begin
    slot.busy <- true;
    Fun.protect ~finally:(fun () -> slot.busy <- false) (fun () -> f slot.resident)
  end

let with_loaded g f =
  with_ws (fun ws ->
      load ws g;
      f ws)
