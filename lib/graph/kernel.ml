module Bitset = Nf_util.Bitset

type t = {
  mutable n : int;
  mutable all : Bitset.t;  (** [Bitset.full n], cached *)
  mutable adj : Bitset.t array;
  mutable sums : int array;
  mutable ecc : int array;
  mutable reach : Bitset.t array;
  mutable front : Bitset.t array;
}

let inf = max_int

let create ?(hint = 16) () =
  let cap = max hint 1 in
  {
    n = 0;
    all = Bitset.empty;
    adj = Array.make cap Bitset.empty;
    sums = Array.make cap 0;
    ecc = Array.make cap 0;
    reach = Array.make cap Bitset.empty;
    front = Array.make cap Bitset.empty;
  }

let ensure ws n =
  if n > Array.length ws.adj then begin
    let cap = max n (2 * Array.length ws.adj) in
    ws.adj <- Array.make cap Bitset.empty;
    ws.sums <- Array.make cap 0;
    ws.ecc <- Array.make cap 0;
    ws.reach <- Array.make cap Bitset.empty;
    ws.front <- Array.make cap Bitset.empty
  end

let order ws = ws.n
let neighbors ws v = ws.adj.(v)
let has_edge ws i j = Bitset.mem j ws.adj.(i)

let load ws g =
  let n = Graph.order g in
  ensure ws n;
  ws.n <- n;
  ws.all <- Bitset.full n;
  for v = 0 to n - 1 do
    ws.adj.(v) <- Graph.neighbors g v
  done

let load_rows ws n row =
  if n < 0 || n > Bitset.max_size then invalid_arg "Kernel.load_rows: bad order";
  ensure ws n;
  ws.n <- n;
  ws.all <- Bitset.full n;
  for v = 0 to n - 1 do
    ws.adj.(v) <- Bitset.remove v (Bitset.inter (row v) ws.all)
  done

let toggle ws i j =
  if i = j then invalid_arg "Kernel.toggle: loop";
  (* Bitset.t is a bare int: one xor per row flips presence both ways *)
  ws.adj.(i) <- ws.adj.(i) lxor (1 lsl j);
  ws.adj.(j) <- ws.adj.(j) lxor (1 lsl i)

(* Index of an isolated bit [b] (a power of two), branch cascade instead of
   Bitset.min_elt's linear probe — this sits inside every frontier
   expansion. *)
let bit_index b =
  let k = if b land 0xFFFFFFFF = 0 then 32 else 0 in
  let b = b lsr k in
  let k2 = if b land 0xFFFF = 0 then 16 else 0 in
  let b = b lsr k2 in
  let k3 = if b land 0xFF = 0 then 8 else 0 in
  let b = b lsr k3 in
  let k4 = if b land 0xF = 0 then 4 else 0 in
  let b = b lsr k4 in
  let k5 = if b land 0x3 = 0 then 2 else 0 in
  let b = b lsr k5 in
  k + k2 + k3 + k4 + k5 + (b lsr 1)

(* Union of the adjacency rows of every vertex in [f]: the one-round
   frontier expansion.  Tail recursion over isolated low bits; every value
   is an immediate int, so a full BFS allocates nothing. *)
let rec expand_rows adj f acc =
  if f = 0 then acc
  else
    let b = f land -f in
    expand_rows adj (f lxor b) (acc lor adj.(bit_index b))

let distance_sum_from ws src =
  let adj = ws.adj
  and all = ws.all in
  let rec go seen front level sum =
    if front = 0 then if seen = all then sum else inf
    else
      let fresh = expand_rows adj front 0 land lnot seen in
      go (seen lor fresh) fresh (level + 1) (sum + (level * Bitset.cardinal fresh))
  in
  let s = Bitset.singleton src in
  go s s 1 0

let reach_stats ws src =
  let adj = ws.adj in
  let rec go seen front level sum =
    if front = 0 then (sum, Bitset.cardinal seen)
    else
      let fresh = expand_rows adj front 0 land lnot seen in
      go (seen lor fresh) fresh (level + 1) (sum + (level * Bitset.cardinal fresh))
  in
  let s = Bitset.singleton src in
  go s s 1 0

(* Bit-parallel all-sources BFS: one reach bitset and one frontier bitset
   per vertex, every frontier expanded simultaneously each round, so the
   whole all-pairs sweep costs O(diameter) rounds of O(n) word operations
   (amortized: each vertex enters each frontier once).  Eccentricities fall
   out for free as the last round in which a source still found a fresh
   vertex. *)
let all_distance_sums ws =
  let n = ws.n
  and adj = ws.adj
  and all = ws.all in
  let reach = ws.reach
  and front = ws.front
  and sums = ws.sums
  and ecc = ws.ecc in
  for v = 0 to n - 1 do
    let s = Bitset.singleton v in
    reach.(v) <- s;
    front.(v) <- s;
    sums.(v) <- 0;
    ecc.(v) <- 0
  done;
  let rec round_of v level changed =
    if v >= n then changed
    else begin
      let f = front.(v) in
      if f = 0 then round_of (v + 1) level changed
      else begin
        let fresh = expand_rows adj f 0 land lnot reach.(v) in
        front.(v) <- fresh;
        if fresh = 0 then round_of (v + 1) level changed
        else begin
          reach.(v) <- reach.(v) lor fresh;
          sums.(v) <- sums.(v) + (level * Bitset.cardinal fresh);
          ecc.(v) <- level;
          round_of (v + 1) level true
        end
      end
    end
  in
  let rec rounds level = if round_of 0 level false then rounds (level + 1) in
  rounds 1;
  for v = 0 to n - 1 do
    if reach.(v) <> all then begin
      sums.(v) <- inf;
      ecc.(v) <- inf
    end
  done;
  sums

let eccentricities ws = ws.ecc

(* ---------------- per-domain workspaces ----------------
   One resident workspace per domain, handed out under a busy flag: the
   normal borrow is free of allocation, and a re-entrant borrow (a kernel
   routine calling another kernel routine) falls back to a fresh scratch
   workspace instead of corrupting the outer caller's state. *)

type slot = {
  resident : t;
  mutable busy : bool;
}

let slot_key = Domain.DLS.new_key (fun () -> { resident = create (); busy = false })

let with_ws f =
  let slot = Domain.DLS.get slot_key in
  if slot.busy then f (create ())
  else begin
    slot.busy <- true;
    Fun.protect ~finally:(fun () -> slot.busy <- false) (fun () -> f slot.resident)
  end

let with_loaded g f =
  with_ws (fun ws ->
      load ws g;
      f ws)
