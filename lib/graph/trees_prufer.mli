(** Prüfer sequences: the classical bijection between labeled trees on [n]
    vertices and sequences in [{0..n-1}^(n-2)] (for [n ≥ 3]). *)

val decode : int -> int array -> Graph.t
(** [decode n code] builds the tree for a Prüfer sequence of length [n-2].
    @raise Invalid_argument on a wrong-length or out-of-range code. *)

val encode : Graph.t -> int array
(** Inverse of {!decode}. @raise Invalid_argument unless the graph is a tree
    with [n ≥ 3]. *)
