(** Export formats: adjacency listings and Graphviz DOT. *)

val to_dot : ?name:string -> Graph.t -> string
(** Graphviz source for the graph, vertices labeled [0 .. n-1]. *)

val adjacency_lists : Graph.t -> string
(** One line per vertex: ["v: n1 n2 ..."]. *)

val summary : Graph.t -> string
(** One-line structural summary (order, size, degrees, diameter, girth,
    regularity/SRG classification) used by the CLI and examples. *)
