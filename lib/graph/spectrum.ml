(* Cyclic Jacobi eigenvalue iteration for small dense symmetric matrices:
   rotate away the largest off-diagonal entries until they vanish.  For
   the orders this library handles (n <= 62) this converges in a handful
   of sweeps and is far simpler than bringing in LAPACK. *)

let jacobi_eigenvalues a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let m = Array.map Array.copy a in
    let max_sweeps = 100 in
    let off_diagonal_norm () =
      let s = ref 0.0 in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          s := !s +. (m.(i).(j) *. m.(i).(j))
        done
      done;
      !s
    in
    let sweep = ref 0 in
    while off_diagonal_norm () > 1e-18 && !sweep < max_sweeps do
      incr sweep;
      for p = 0 to n - 2 do
        for q = p + 1 to n - 1 do
          if Float.abs m.(p).(q) > 1e-15 then begin
            let theta = (m.(q).(q) -. m.(p).(p)) /. (2.0 *. m.(p).(q)) in
            let t =
              let sign = if theta >= 0.0 then 1.0 else -1.0 in
              sign /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.0))
            in
            let c = 1.0 /. sqrt ((t *. t) +. 1.0) in
            let s = t *. c in
            (* rotate rows/columns p and q *)
            for k = 0 to n - 1 do
              let mkp = m.(k).(p)
              and mkq = m.(k).(q) in
              m.(k).(p) <- (c *. mkp) -. (s *. mkq);
              m.(k).(q) <- (s *. mkp) +. (c *. mkq)
            done;
            for k = 0 to n - 1 do
              let mpk = m.(p).(k)
              and mqk = m.(q).(k) in
              m.(p).(k) <- (c *. mpk) -. (s *. mqk);
              m.(q).(k) <- (s *. mpk) +. (c *. mqk)
            done
          end
        done
      done
    done;
    let eigenvalues = Array.init n (fun i -> m.(i).(i)) in
    Array.sort compare eigenvalues;
    eigenvalues
  end

let adjacency_matrix g =
  let n = Graph.order g in
  Array.init n (fun i ->
      Array.init n (fun j -> if Graph.has_edge g i j then 1.0 else 0.0))

let laplacian_matrix g =
  let n = Graph.order g in
  Array.init n (fun i ->
      Array.init n (fun j ->
          if i = j then float_of_int (Graph.degree g i)
          else if Graph.has_edge g i j then -1.0
          else 0.0))

let adjacency_eigenvalues g = jacobi_eigenvalues (adjacency_matrix g)
let laplacian_eigenvalues g = jacobi_eigenvalues (laplacian_matrix g)

let algebraic_connectivity g =
  let ev = laplacian_eigenvalues g in
  if Array.length ev < 2 then 0.0 else Float.max 0.0 ev.(1)

let spectral_radius g =
  let ev = adjacency_eigenvalues g in
  if Array.length ev = 0 then 0.0 else ev.(Array.length ev - 1)

let distinct_eigenvalues ?(tolerance = 1e-7) g =
  let ev = adjacency_eigenvalues g in
  Array.fold_left
    (fun acc v ->
      match acc with
      | last :: _ when Float.abs (v -. last) <= tolerance -> acc
      | _ -> v :: acc)
    [] ev
  |> List.rev
