module Prng = Nf_util.Prng

(* Built through [Graph.build]: one mutable slab, O(1) per edge, so the
   large-n Monte-Carlo workloads do not pay a slab copy per sampled edge.
   The PRNG consumption order (pair order of [iter_pairs]) is unchanged,
   so seeds reproduce the exact graphs the persistent constructor drew. *)
let gnp rng n p =
  Graph.build n (fun add ->
      Nf_util.Subset.iter_pairs n (fun i j -> if Prng.float rng 1.0 < p then add i j))

let gnm rng n m =
  let max_m = n * (n - 1) / 2 in
  if m < 0 || m > max_m then invalid_arg "Random_graph.gnm: bad edge count";
  let pairs = Array.make (max max_m 1) (0, 0) in
  let k = ref 0 in
  Nf_util.Subset.iter_pairs n (fun i j ->
      pairs.(!k) <- (i, j);
      incr k);
  Prng.shuffle rng pairs;
  Graph.build n (fun add ->
      for e = 0 to m - 1 do
        let i, j = pairs.(e) in
        add i j
      done)

let tree rng n =
  if n <= 0 then invalid_arg "Random_graph.tree: need n >= 1"
  else if n = 1 then Graph.empty 1
  else if n = 2 then Graph.add_edge (Graph.empty 2) 0 1
  else
    let code = Array.init (n - 2) (fun _ -> Prng.int rng n) in
    Trees_prufer.decode n code

let connected_gnp rng n p =
  let rec attempt p =
    let g = gnp rng n p in
    if Connectivity.is_connected g then g else attempt (Float.min 1.0 (p +. 0.05))
  in
  attempt p
