module Ext_int = Nf_util.Ext_int

let all_distances g =
  Array.init (Graph.order g) (fun v -> Bfs.distances g v)

let ext_of_int k = if k = Kernel.inf then Ext_int.Inf else Ext_int.Fin k

(* One bit-parallel all-sources sweep instead of n independent BFS runs;
   the per-source [Bfs.distance_sum] stays as the reference the kernel is
   differential-tested against. *)
let distance_sums g =
  Kernel.with_loaded g (fun ws ->
      let sums = Kernel.all_distance_sums ws in
      Array.init (Graph.order g) (fun v -> ext_of_int sums.(v)))

(* diameter = max eccentricity, radius = min eccentricity, wiener = sum of
   distance sums — all read off the same kernel sweep.  A source that does
   not reach every vertex has infinite eccentricity and distance sum, which
   matches folding [Ext_int.Inf] for each unreachable target. *)
let diameter g =
  if Graph.order g = 0 then Ext_int.zero
  else
    Kernel.with_loaded g (fun ws ->
        ignore (Kernel.all_distance_sums ws);
        let ecc = Kernel.eccentricities ws in
        let worst = ref 0 in
        for v = 0 to Graph.order g - 1 do
          if ecc.(v) > !worst then worst := ecc.(v)
        done;
        ext_of_int !worst)

let radius g =
  if Graph.order g = 0 then Ext_int.zero
  else
    Kernel.with_loaded g (fun ws ->
        ignore (Kernel.all_distance_sums ws);
        let ecc = Kernel.eccentricities ws in
        let best = ref Kernel.inf in
        for v = 0 to Graph.order g - 1 do
          if ecc.(v) < !best then best := ecc.(v)
        done;
        ext_of_int !best)

let wiener g =
  Kernel.with_loaded g (fun ws ->
      let sums = Kernel.all_distance_sums ws in
      let total = ref Ext_int.zero in
      for v = 0 to Graph.order g - 1 do
        total := Ext_int.add !total (ext_of_int sums.(v))
      done;
      !total)

let average_distance g =
  let n = Graph.order g in
  if n < 2 then nan
  else Ext_int.to_float (wiener g) /. float_of_int (n * (n - 1))
