module Ext_int = Nf_util.Ext_int

let all_distances g =
  Array.init (Graph.order g) (fun v -> Bfs.distances g v)

let distance_sums g = Array.init (Graph.order g) (fun v -> Bfs.distance_sum g v)

let fold_over_sources g combine init =
  let acc = ref init in
  for v = 0 to Graph.order g - 1 do
    acc := combine !acc (Bfs.distances g v)
  done;
  !acc

let diameter g =
  if Graph.order g = 0 then Ext_int.zero
  else
    let worst acc dist =
      Array.fold_left
        (fun acc d -> if d < 0 then Ext_int.Inf else Ext_int.max acc (Ext_int.Fin d))
        acc dist
    in
    fold_over_sources g worst Ext_int.zero

let radius g =
  if Graph.order g = 0 then Ext_int.zero
  else
    let best acc dist =
      let ecc =
        Array.fold_left
          (fun acc d -> if d < 0 then Ext_int.Inf else Ext_int.max acc (Ext_int.Fin d))
          Ext_int.zero dist
      in
      Ext_int.min acc ecc
    in
    fold_over_sources g best Ext_int.Inf

let wiener g =
  let add acc dist =
    Array.fold_left
      (fun acc d -> if d < 0 then Ext_int.Inf else Ext_int.add acc (Ext_int.Fin d))
      acc dist
  in
  fold_over_sources g add Ext_int.zero

let average_distance g =
  let n = Graph.order g in
  if n < 2 then nan
  else Ext_int.to_float (wiener g) /. float_of_int (n * (n - 1))
