(** Breadth-first search: single-source hop distances.

    These are the innermost primitives of the whole library — every cost
    evaluation in the connection games is a sum of BFS distances. *)

val distances : Graph.t -> int -> int array
(** [distances g src] gives hop counts from [src]; unreachable vertices get
    [-1]. *)

val distances_ext : Graph.t -> int -> Nf_util.Ext_int.t array
(** As {!distances} with unreachable vertices mapped to [Inf]. *)

val distance : Graph.t -> int -> int -> Nf_util.Ext_int.t
(** [distance g src dst] is the hop distance (it agrees with
    [(distances g src).(dst)]).
    @raise Invalid_argument when either vertex is out of range. *)

val distance_sum : Graph.t -> int -> Nf_util.Ext_int.t
(** [distance_sum g v] is [Σ_j d(v,j)] — the distance component of player
    [v]'s cost; [Inf] whenever some vertex is unreachable from [v]. *)

val eccentricity : Graph.t -> int -> Nf_util.Ext_int.t
(** Greatest distance from the vertex; [Inf] when [g] is disconnected. *)

val reachable : Graph.t -> int -> Nf_util.Bitset.t
(** The connected component of the vertex, as a one-word bitset.
    @raise Invalid_argument when the order exceeds 62. *)
