module Bitset = Nf_util.Bitset

let is_connected g =
  let n = Graph.order g in
  n = 0
  ||
  let reached = ref 0 in
  Array.iter (fun d -> if d >= 0 then incr reached) (Bfs.distances g 0);
  !reached = n

let components g =
  let n = Graph.order g in
  if n > Bitset.max_size then
    invalid_arg
      (Printf.sprintf "Connectivity.components: order %d > %d (one-word bitset \
                       components)" n Bitset.max_size);
  let remaining = ref (Bitset.full n) in
  let acc = ref [] in
  while not (Bitset.is_empty !remaining) do
    let v = Bitset.min_elt !remaining in
    let comp = Bfs.reachable g v in
    acc := comp :: !acc;
    remaining := Bitset.diff !remaining comp
  done;
  List.rev !acc

let component_count g = List.length (components g)

let is_bridge g i j =
  if not (Graph.has_edge g i j) then invalid_arg "Connectivity.is_bridge: not an edge";
  let without = Graph.remove_edge g i j in
  not (Bitset.mem j (Bfs.reachable without i))

let bridges g = List.filter (fun (i, j) -> is_bridge g i j) (Graph.edges g)

let is_cut_vertex g v =
  let n = Graph.order g in
  let others = List.filter (fun u -> u <> v) (List.init n Fun.id) in
  let before =
    component_count (Graph.induced g others)
  in
  (* components among the other vertices in the full graph *)
  let with_v = components g in
  let among_others =
    List.length
      (List.filter (fun comp -> not (Bitset.is_empty (Bitset.remove v comp))) with_v)
  in
  before > among_others
