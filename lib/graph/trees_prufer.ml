let decode n code =
  if n < 3 then invalid_arg "Trees_prufer.decode: need n >= 3";
  if Array.length code <> n - 2 then invalid_arg "Trees_prufer.decode: bad length";
  Array.iter (fun v -> if v < 0 || v >= n then invalid_arg "Trees_prufer.decode: bad label") code;
  (* degree(v) = multiplicity in code + 1 *)
  let degree = Array.make n 1 in
  Array.iter (fun v -> degree.(v) <- degree.(v) + 1) code;
  let g = ref (Graph.empty n) in
  (* repeatedly join the smallest current leaf to the next code symbol *)
  let leaf = ref 0 in
  let ptr = ref 0 in
  (* [ptr] scans for the smallest never-promoted leaf *)
  let next_leaf () =
    while degree.(!ptr) <> 1 do
      incr ptr
    done;
    !ptr
  in
  leaf := next_leaf ();
  Array.iter
    (fun v ->
      g := Graph.add_edge !g !leaf v;
      degree.(!leaf) <- 0;
      degree.(v) <- degree.(v) - 1;
      if degree.(v) = 1 && v < !ptr then leaf := v else leaf := next_leaf ())
    code;
  (* two vertices of degree 1 remain *)
  let last = ref [] in
  Array.iteri (fun v d -> if d = 1 then last := v :: !last) degree;
  (match !last with
  | [ a; b ] -> g := Graph.add_edge !g a b
  | _ -> assert false);
  !g

let encode g =
  let n = Graph.order g in
  if n < 3 then invalid_arg "Trees_prufer.encode: need n >= 3";
  if Graph.size g <> n - 1 then invalid_arg "Trees_prufer.encode: not a tree";
  let degree = Array.init n (Graph.degree g) in
  let adj = Array.init n (Graph.neighbors g) in
  let code = Array.make (n - 2) 0 in
  let ptr = ref 0 in
  let next_leaf () =
    while degree.(!ptr) <> 1 do
      incr ptr
    done;
    !ptr
  in
  let leaf = ref (next_leaf ()) in
  for k = 0 to n - 3 do
    let v = Nf_util.Bitset.min_elt adj.(!leaf) in
    code.(k) <- v;
    degree.(!leaf) <- 0;
    adj.(v) <- Nf_util.Bitset.remove !leaf adj.(v);
    degree.(v) <- degree.(v) - 1;
    if degree.(v) = 1 && v < !ptr then leaf := v else leaf := next_leaf ()
  done;
  code
