(* Format reference: https://users.cecs.anu.edu.au/~bdm/data/formats.txt
   For n <= 62 the header is one byte [n + 63]; the body packs the upper
   triangle of the adjacency matrix in column order (j from 1, i < j), six
   bits per byte, each byte offset by 63. *)

let encode g =
  let n = Graph.order g in
  if n > 62 then invalid_arg "Graph6.encode: order > 62";
  let buf = Buffer.create 16 in
  Buffer.add_char buf (Char.chr (n + 63));
  let bits = n * (n - 1) / 2 in
  let acc = ref 0
  and nacc = ref 0 in
  let flush_byte () =
    Buffer.add_char buf (Char.chr (!acc + 63));
    acc := 0;
    nacc := 0
  in
  let push bit =
    acc := (!acc lsl 1) lor bit;
    incr nacc;
    if !nacc = 6 then flush_byte ()
  in
  for j = 1 to n - 1 do
    for i = 0 to j - 1 do
      push (if Graph.has_edge g i j then 1 else 0)
    done
  done;
  if bits mod 6 <> 0 then begin
    acc := !acc lsl (6 - !nacc);
    nacc := 6;
    flush_byte ()
  end;
  Buffer.contents buf

let decode s =
  let len = String.length s in
  if len = 0 then invalid_arg "Graph6.decode: empty";
  let n = Char.code s.[0] - 63 in
  if n < 0 || n > 62 then invalid_arg "Graph6.decode: unsupported order";
  let bits = n * (n - 1) / 2 in
  let expected = 1 + ((bits + 5) / 6) in
  if len <> expected then invalid_arg "Graph6.decode: wrong length";
  let bit k =
    let byte = Char.code s.[1 + (k / 6)] - 63 in
    if byte < 0 || byte > 63 then invalid_arg "Graph6.decode: bad byte";
    byte lsr (5 - (k mod 6)) land 1
  in
  let g = ref (Graph.empty n) in
  let k = ref 0 in
  for j = 1 to n - 1 do
    for i = 0 to j - 1 do
      if bit !k = 1 then g := Graph.add_edge !g i j;
      incr k
    done
  done;
  !g
