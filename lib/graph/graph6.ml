(* Format reference: https://users.cecs.anu.edu.au/~bdm/data/formats.txt
   For n <= 62 the header is one byte [n + 63]; the body packs the upper
   triangle of the adjacency matrix in column order (j from 1, i < j), six
   bits per byte, each byte offset by 63. *)

let encode g =
  let n = Graph.order g in
  if n > 62 then invalid_arg "Graph6.encode: order > 62";
  let buf = Buffer.create 16 in
  Buffer.add_char buf (Char.chr (n + 63));
  let bits = n * (n - 1) / 2 in
  let acc = ref 0
  and nacc = ref 0 in
  let flush_byte () =
    Buffer.add_char buf (Char.chr (!acc + 63));
    acc := 0;
    nacc := 0
  in
  let push bit =
    acc := (!acc lsl 1) lor bit;
    incr nacc;
    if !nacc = 6 then flush_byte ()
  in
  for j = 1 to n - 1 do
    for i = 0 to j - 1 do
      push (if Graph.has_edge g i j then 1 else 0)
    done
  done;
  if bits mod 6 <> 0 then begin
    acc := !acc lsl (6 - !nacc);
    nacc := 6;
    flush_byte ()
  end;
  Buffer.contents buf

let decode s =
  let len = String.length s in
  if len = 0 then invalid_arg "Graph6.decode: empty";
  let n = Char.code s.[0] - 63 in
  if n < 0 || n > 62 then invalid_arg "Graph6.decode: unsupported order";
  let bits = n * (n - 1) / 2 in
  let expected = 1 + ((bits + 5) / 6) in
  if len <> expected then invalid_arg "Graph6.decode: wrong length";
  (* validate the whole body up front: every byte must be printable
     63..126 and the padding bits of the final byte must be zero, so
     decode accepts exactly the strings encode can produce (and
     [encode (decode s) = s] whenever decode succeeds) *)
  for k = 1 to len - 1 do
    let c = Char.code s.[k] in
    if c < 63 || c > 126 then
      invalid_arg (Printf.sprintf "Graph6.decode: byte %d (0x%02x) outside printable 63..126" k c)
  done;
  let pad = (6 - (bits mod 6)) mod 6 in
  if pad > 0 && (Char.code s.[len - 1] - 63) land ((1 lsl pad) - 1) <> 0 then
    invalid_arg "Graph6.decode: nonzero padding bits";
  let bit k = (Char.code s.[1 + (k / 6)] - 63) lsr (5 - (k mod 6)) land 1 in
  let g = ref (Graph.empty n) in
  let k = ref 0 in
  for j = 1 to n - 1 do
    for i = 0 to j - 1 do
      if bit !k = 1 then g := Graph.add_edge !g i j;
      incr k
    done
  done;
  !g
