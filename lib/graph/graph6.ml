(* Format reference: https://users.cecs.anu.edu.au/~bdm/data/formats.txt
   For n <= 62 the header is one byte [n + 63]; for 63 <= n <= 258047 it is
   '~' followed by three bytes carrying n in 18 big-endian bits, six per
   byte, each offset by 63 (the standard multi-byte order header).  The
   body packs the upper triangle of the adjacency matrix in column order
   (j from 1, i < j), six bits per byte, each byte offset by 63. *)

let max_order = 258047 (* 2^18 - 1: the 3-byte header ceiling *)

let header_length n = if n <= 62 then 1 else 4

let add_header buf n =
  if n <= 62 then Buffer.add_char buf (Char.chr (n + 63))
  else begin
    Buffer.add_char buf '~';
    Buffer.add_char buf (Char.chr (((n lsr 12) land 0x3F) + 63));
    Buffer.add_char buf (Char.chr (((n lsr 6) land 0x3F) + 63));
    Buffer.add_char buf (Char.chr ((n land 0x3F) + 63))
  end

let encode g =
  let n = Graph.order g in
  if n > max_order then
    invalid_arg
      (Printf.sprintf "Graph6.encode: order %d > %d (3-byte graph6 header limit)" n
         max_order);
  let bits = n * (n - 1) / 2 in
  let buf = Buffer.create (header_length n + ((bits + 5) / 6)) in
  add_header buf n;
  let acc = ref 0
  and nacc = ref 0 in
  let flush_byte () =
    Buffer.add_char buf (Char.chr (!acc + 63));
    acc := 0;
    nacc := 0
  in
  let push bit =
    acc := (!acc lsl 1) lor bit;
    incr nacc;
    if !nacc = 6 then flush_byte ()
  in
  for j = 1 to n - 1 do
    for i = 0 to j - 1 do
      push (if Graph.has_edge g i j then 1 else 0)
    done
  done;
  if bits mod 6 <> 0 then begin
    acc := !acc lsl (6 - !nacc);
    nacc := 6;
    flush_byte ()
  end;
  Buffer.contents buf

let decode s =
  let len = String.length s in
  if len = 0 then invalid_arg "Graph6.decode: empty";
  let n =
    if s.[0] <> '~' then begin
      let n = Char.code s.[0] - 63 in
      if n < 0 || n > 62 then invalid_arg "Graph6.decode: unsupported order";
      n
    end
    else begin
      if len < 4 then invalid_arg "Graph6.decode: truncated multi-byte order header";
      if s.[1] = '~' then
        invalid_arg
          (Printf.sprintf "Graph6.decode: 6-byte order header (order > %d) unsupported"
             max_order);
      let part k =
        let c = Char.code s.[k] - 63 in
        if c < 0 || c > 0x3F then
          invalid_arg "Graph6.decode: bad multi-byte order header";
        c
      in
      let n = (part 1 lsl 12) lor (part 2 lsl 6) lor part 3 in
      if n <= 62 then
        invalid_arg "Graph6.decode: non-canonical multi-byte header for order <= 62";
      n
    end
  in
  let hdr = header_length n in
  let bits = n * (n - 1) / 2 in
  let expected = hdr + ((bits + 5) / 6) in
  if len <> expected then invalid_arg "Graph6.decode: wrong length";
  (* validate the whole body up front: every byte must be printable
     63..126 and the padding bits of the final byte must be zero, so
     decode accepts exactly the strings encode can produce (and
     [encode (decode s) = s] whenever decode succeeds) *)
  for k = hdr to len - 1 do
    let c = Char.code s.[k] in
    if c < 63 || c > 126 then
      invalid_arg (Printf.sprintf "Graph6.decode: byte %d (0x%02x) outside printable 63..126" k c)
  done;
  let pad = (6 - (bits mod 6)) mod 6 in
  if pad > 0 && (Char.code s.[len - 1] - 63) land ((1 lsl pad) - 1) <> 0 then
    invalid_arg "Graph6.decode: nonzero padding bits";
  let bit k = (Char.code s.[hdr + (k / 6)] - 63) lsr (5 - (k mod 6)) land 1 in
  Graph.build n (fun add ->
      let k = ref 0 in
      for j = 1 to n - 1 do
        for i = 0 to j - 1 do
          if bit !k = 1 then add i j;
          incr k
        done
      done)
