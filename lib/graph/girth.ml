module Ext_int = Nf_util.Ext_int

(* BFS from every root; a non-tree edge between vertices at depths d(u) and
   d(w) witnesses a cycle of length d(u)+d(w)+1 through the root.  The
   minimum over all roots is the exact girth: for a root lying on a
   shortest cycle the bound is attained. *)
let girth g =
  let n = Graph.order g in
  let best = ref Ext_int.Inf in
  for root = 0 to n - 1 do
    let dist = Array.make n (-1) in
    let parent = Array.make n (-1) in
    dist.(root) <- 0;
    let queue = Queue.create () in
    Queue.add root queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Nf_util.Bitset.iter
        (fun w ->
          if dist.(w) < 0 then begin
            dist.(w) <- dist.(u) + 1;
            parent.(w) <- u;
            Queue.add w queue
          end
          else if w <> parent.(u) && u < w then
            (* u < w visits each non-tree edge once per root *)
            best := Ext_int.min !best (Ext_int.Fin (dist.(u) + dist.(w) + 1)))
        (Graph.neighbors g u)
    done
  done;
  !best

let is_acyclic g = girth g = Ext_int.Inf
