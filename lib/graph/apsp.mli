(** All-pairs shortest paths and the derived global metrics. *)

val all_distances : Graph.t -> int array array
(** [all_distances g] is the matrix of hop distances, [-1] when
    unreachable. *)

val distance_sums : Graph.t -> Nf_util.Ext_int.t array
(** [distance_sums g] is [Bfs.distance_sum g v] for every vertex, computed
    by one bit-parallel all-sources kernel sweep ({!Kernel.all_distance_sums})
    instead of [n] independent BFS runs.  The stability kernels compute
    this once per graph and reuse it as the base cost of every endpoint. *)

val diameter : Graph.t -> Nf_util.Ext_int.t
(** Greatest finite distance, or [Inf] when disconnected.  The diameter of
    the one-vertex graph is 0. *)

val radius : Graph.t -> Nf_util.Ext_int.t

val wiener : Graph.t -> Nf_util.Ext_int.t
(** Sum of [d(i,j)] over ordered pairs [(i,j)], [i ≠ j] — exactly the
    distance term of the social cost (4).  [Inf] when disconnected. *)

val average_distance : Graph.t -> float
(** {!wiener} divided by the number of ordered pairs; [infinity] when
    disconnected, [nan] for graphs with fewer than two vertices. *)
