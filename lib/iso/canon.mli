(** Canonical labeling by individualization–refinement.

    [canonical_form g] relabels [g] so that isomorphic graphs map to equal
    graphs: refinement narrows the candidate orderings, branching on one
    vertex of the first non-singleton cell at a time, and the
    lexicographically least adjacency encoding over all discrete leaves is
    the canonical representative.  Exponential in the worst case but
    effectively instant at the orders this library enumerates. *)

val canonical_form : Nf_graph.Graph.t -> Nf_graph.Graph.t
(** The canonical representative of the isomorphism class. *)

val canonical_key : Nf_graph.Graph.t -> string
(** A byte string equal for exactly the isomorphic graphs (the graph6
    encoding of {!canonical_form}). *)

val canonical_permutation : Nf_graph.Graph.t -> int array
(** A permutation [perm] (old vertex [v] → new label [perm.(v)]) with
    [relabel g perm = canonical_form g]. *)

val is_isomorphic : Nf_graph.Graph.t -> Nf_graph.Graph.t -> bool

val isomorphism : Nf_graph.Graph.t -> Nf_graph.Graph.t -> int array option
(** [isomorphism g h] is [Some perm] mapping [g]-vertices to [h]-vertices
    with [relabel g perm = h], when the graphs are isomorphic. *)

val automorphism_count : Nf_graph.Graph.t -> int
(** Order of the automorphism group, by counting the discrete leaves that
    realize the canonical form.  Intended for small graphs (tests and the
    named-graph gallery). *)
