(** AHU canonical encoding for free trees (Aho–Hopcroft–Ullman).

    Rooting a tree at its center (or canonically at the better of the two
    centers) and recursively sorting subtree encodings yields a string that
    two free trees share exactly when they are isomorphic — a linear-time
    fast path that the tree enumerator uses instead of general canonical
    labeling. *)

val encode : Nf_graph.Graph.t -> string
(** Canonical encoding of a free tree.
    @raise Invalid_argument when the graph is not a tree. *)

val equal_trees : Nf_graph.Graph.t -> Nf_graph.Graph.t -> bool
(** Tree isomorphism via encodings. *)

val centers : Nf_graph.Graph.t -> int list
(** The 1 or 2 central vertices of a tree (peeling leaves layer by
    layer). *)
