module Graph = Nf_graph.Graph
module Bitset = Nf_util.Bitset

(* A (sub)group of automorphisms of one graph, as the generator list that
   witnesses it.  Everything downstream is sound for any subgroup: orbits
   under a subgroup refine the true orbits, so quotienting by them skips
   only work that provably repeats.  The edge-orbit partition is cached
   behind an [Atomic] so a value shared across domains (the annotation
   memo hands one [t] to every game) computes it at most once per racer
   and never tears. *)
type edge_orbits = {
  reps : int array;
  orbit_of_pair : int array;
}

(* The twin tier stores no generator arrays at all: [classes.(v)] is the
   smallest vertex of [v]'s orbit and [second.(c)] the second-smallest
   member of class [c] (-1 for singletons).  The generated group is the
   direct product of the full symmetric groups on the classes, so pair
   orbits are decided by class pairs in O(1) and explicit transpositions
   are only materialized on demand ({!generators}) — the sweep path,
   which detects millions of subgroups, allocates two small int arrays
   per symmetric graph and nothing per rigid graph. *)
type witness =
  | Explicit of int array list
  | Twins of { classes : int array; second : int array }

type t = {
  n : int;
  witness : witness;
  orbits_cache : edge_orbits option Atomic.t;
}

let make n witness = { n; witness; orbits_cache = Atomic.make None }

(* the trivial group is stateless (its orbit cache, if ever forced, holds
   the identity partition), so one value per small order is shared by
   every rigid graph in a sweep instead of allocating a fresh record *)
let trivial_pool = Array.init 16 (fun n -> make n (Explicit []))
let trivial n = if n < 16 then trivial_pool.(n) else make n (Explicit [])

let of_generators n generators =
  List.iter
    (fun g ->
      if Array.length g <> n then
        invalid_arg "Symmetry.of_generators: generator length mismatch")
    generators;
  if generators = [] then trivial n else make n (Explicit generators)

let order_n t = t.n

(* star transpositions (v, min of v's class) span each class, so they
   generate exactly the product of class-symmetric groups the twin scan
   witnessed — materialized only for consumers that want concrete group
   elements (the UCG pruner, the self check) *)
let generators t =
  match t.witness with
  | Explicit gens -> gens
  | Twins { classes; _ } ->
    let n = t.n in
    let gens = ref [] in
    for v = n - 1 downto 1 do
      let c = classes.(v) in
      if c <> v then begin
        let gen = Array.init n Fun.id in
        gen.(c) <- v;
        gen.(v) <- c;
        gens := gen :: !gens
      end
    done;
    !gens

let is_trivial t =
  match t.witness with
  | Explicit [] -> true
  | Explicit _ | Twins _ -> false

let twin_partition t =
  match t.witness with
  | Twins { classes; second } -> Some (classes, second)
  | Explicit _ -> None

(* Twin classes pin each pair orbit in O(1): the generated group moves
   vertices freely within each class and nowhere else, so unordered pairs
   are equivalent iff their class pairs match, and the representative of
   {i, j} is the lexicographically least pair of the same type — the two
   class minima for distinct classes, the two smallest class members for
   a within-class pair. *)
let orbits_of_classes n (cls : int array) (second : int array) =
  let np = n * (n - 1) / 2 in
  let orbit_of_pair = Array.make np 0 in
  let nreps = ref 0 in
  let t = ref 0 in
  for j = 1 to n - 1 do
    let cj = cls.(j) in
    for i = 0 to j - 1 do
      let ci = cls.(i) in
      let r =
        if ci <> cj then Canon.pair_index ci cj else Canon.pair_index ci second.(ci)
      in
      orbit_of_pair.(!t) <- r;
      if r = !t then incr nreps;
      incr t
    done
  done;
  let reps = Array.make !nreps 0 in
  let k = ref 0 in
  for t = 0 to np - 1 do
    if orbit_of_pair.(t) = t then begin
      reps.(!k) <- t;
      incr k
    end
  done;
  (reps, orbit_of_pair)

let edge_orbits t =
  match Atomic.get t.orbits_cache with
  | Some eo -> eo
  | None ->
    let reps, orbit_of_pair =
      match t.witness with
      | Twins { classes; second } -> orbits_of_classes t.n classes second
      | Explicit gens -> Canon.edge_orbits t.n gens
    in
    let eo = { reps; orbit_of_pair } in
    Atomic.set t.orbits_cache (Some eo);
    eo

(* ---- opt-out switch ------------------------------------------------------
   One process-wide flag: the CLI's --no-orbit-quotient and the
   NETFORM_NO_ORBIT_QUOTIENT env var force every auto-detecting entry
   point back onto the unquotiented loops, so a suspected mis-propagation
   can be bisected in the field.  Set before parallel work starts (the
   CLI does); the sweeps only read it. *)
let quotient_disabled_env =
  match Sys.getenv_opt "NETFORM_NO_ORBIT_QUOTIENT" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let quotient_on = ref (not quotient_disabled_env)
let quotient_enabled () = !quotient_on
let set_quotient_enabled b = quotient_on := b

(* ---- detection tiers -----------------------------------------------------
   [detect_twins] is the sweep tier: a per-graph cost of ~n^2 word
   compares, far below one edge toggle, finding the automorphisms that
   actually occur in bulk enumeration (twin vertices — equal rows modulo
   the pair itself).  [detect_full] is the one-off tier: the exact group
   from the canonical-labeling search, worth its ~tens of microseconds
   only when a single annotation costs far more (gallery graphs, UCG
   orientation searches). *)

let detect_twins g =
  let n = Graph.order g in
  let cls = ref [||] and snd = ref [||] in
  for v = 1 to n - 1 do
    (* link v to its smallest twin u < v: one link per vertex is enough to
       wire each twin class's full orbit connectivity *)
    let u = ref 0 and twin = ref (-1) in
    while !twin < 0 && !u < v do
      (* rows equal modulo the pair itself — word-generic, so the twin
         tier keeps working past the one-word 62-vertex regime *)
      if Graph.twin_rows_equal g !u v then twin := !u else incr u
    done;
    if !twin >= 0 then begin
      if Array.length !cls = 0 then begin
        cls := Array.init n Fun.id;
        snd := Array.make n (-1)
      end;
      (* class labels are union-by-minimum: the twin's label is already
         its class minimum (labels only ever point downward and smaller
         vertices were processed first), so v joins that class directly;
         the first joiner is the class's second-smallest member *)
      let c = !cls.(!twin) in
      !cls.(v) <- c;
      if !snd.(c) < 0 then !snd.(c) <- v
    end
  done;
  if Array.length !cls = 0 then trivial n
  else make n (Twins { classes = !cls; second = !snd })

let detect_full g =
  let full = Canon.full g in
  of_generators (Graph.order g) full.Canon.generators

(* ---- capped closure ------------------------------------------------------
   The UCG orientation search prunes sibling branches with concrete group
   elements, not orbits, so it wants the generated set written out.  Any
   subset of genuine automorphisms is sound for pruning; the BFS stops at
   [cap] elements to bound the cost on huge groups (K_n via twins is
   S_n).  The identity is excluded — it can never certify a swap and
   trivially passes every pointwise-fix filter. *)
let group_elements ~cap t =
  let gens = generators t in
  if gens = [] || cap <= 0 then [||]
  else begin
    let n = t.n in
    let id = Array.init n Fun.id in
    let seen = Hashtbl.create 64 in
    Hashtbl.add seen id ();
    let out = ref [] in
    let count = ref 0 in
    let queue = Queue.create () in
    Queue.add id queue;
    (try
       while not (Queue.is_empty queue) do
         let p = Queue.pop queue in
         List.iter
           (fun (gen : int array) ->
             let q = Array.init n (fun v -> gen.(p.(v))) in
             if not (Hashtbl.mem seen q) then begin
               Hashtbl.add seen q ();
               out := q :: !out;
               incr count;
               if !count >= cap then raise_notrace Exit;
               Queue.add q queue
             end)
           gens
       done
     with Exit -> ());
    Array.of_list !out
  end

(* ---- sanity check --------------------------------------------------------
   Used by the test suite on the named gallery: a wrong union-find should
   fail loudly here rather than silently mis-propagate intervals.  Checks
   that every generator is an automorphism of [g], that the orbit sizes
   partition the C(n,2) pairs, that edges only share orbits with edges,
   and — orbit-stabilizer — that every orbit size divides the group
   order reported by the independent backtracking counter. *)
let self_check g t =
  let n = Graph.order g in
  if n <> t.n then failwith "Symmetry.self_check: order mismatch";
  List.iter
    (fun (gen : int array) ->
      let sorted = Array.copy gen in
      Array.sort compare sorted;
      if sorted <> Array.init n Fun.id then
        failwith "Symmetry.self_check: generator is not a permutation";
      for i = 0 to n - 2 do
        for j = i + 1 to n - 1 do
          if Graph.has_edge g i j <> Graph.has_edge g gen.(i) gen.(j) then
            failwith "Symmetry.self_check: generator is not an automorphism"
        done
      done)
    (generators t);
  let { reps; orbit_of_pair } = edge_orbits t in
  let np = n * (n - 1) / 2 in
  if Array.length orbit_of_pair <> np then
    failwith "Symmetry.self_check: orbit_of_pair length";
  let sizes = Hashtbl.create 16 in
  let edge_of = Array.make np false in
  for i = 0 to n - 2 do
    for j = i + 1 to n - 1 do
      edge_of.(Canon.pair_index i j) <- Graph.has_edge g i j
    done
  done;
  Array.iteri
    (fun t_idx r ->
      if orbit_of_pair.(r) <> r then
        failwith "Symmetry.self_check: representative is not a fixed point";
      if edge_of.(t_idx) <> edge_of.(r) then
        failwith "Symmetry.self_check: orbit mixes edges and non-edges";
      Hashtbl.replace sizes r (1 + Option.value ~default:0 (Hashtbl.find_opt sizes r)))
    orbit_of_pair;
  if Hashtbl.length sizes <> Array.length reps then
    failwith "Symmetry.self_check: reps disagree with orbit_of_pair";
  let total = Hashtbl.fold (fun _ s acc -> s + acc) sizes 0 in
  if total <> np then failwith "Symmetry.self_check: orbit sizes do not partition pairs";
  let aut = Canon.automorphism_count g in
  Hashtbl.iter
    (fun _ s ->
      if aut mod s <> 0 then
        failwith
          (Printf.sprintf
             "Symmetry.self_check: orbit size %d does not divide |Aut| = %d" s aut))
    sizes
