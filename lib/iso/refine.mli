(** Equitable-partition refinement (1-dimensional Weisfeiler–Leman).

    An ordered partition of the vertex set is repeatedly split by neighbor
    counts against every cell until stable.  This is the workhorse inside
    canonical labeling: it shrinks the individualization search tree to the
    automorphism structure of the graph. *)

type partition = int list list
(** Ordered list of non-empty cells; cells jointly cover [0 .. n-1]. *)

val unit_partition : int -> partition
(** The single-cell partition of [0 .. n-1] (empty for [n = 0]). *)

val degree_partition : Nf_graph.Graph.t -> partition
(** Vertices grouped by degree, larger degrees first — a cheap invariant
    that seeds refinement. *)

val refine : Nf_graph.Graph.t -> partition -> partition
(** Coarsest equitable refinement of the given ordered partition.  The
    result is deterministic: it depends only on the graph and the input
    cell order, never on list ordering inside cells. *)

val is_discrete : partition -> bool
(** Every cell is a singleton. *)

val first_non_singleton : partition -> int list option
(** The target cell for individualization, if any. *)

val individualize : partition -> cell:int list -> int -> partition
(** [individualize p ~cell v] splits [cell] (which must occur in [p] and
    contain [v]) into [[v]] followed by the rest, preserving the order of
    the other cells. *)
