module Graph = Nf_graph.Graph
module Bitset = Nf_util.Bitset

let centers g =
  let n = Graph.order g in
  if n = 0 then []
  else if n = 1 then [ 0 ]
  else begin
    let degree = Array.init n (Graph.degree g) in
    let removed = Array.make n false in
    let remaining = ref n in
    let layer = ref [] in
    for v = 0 to n - 1 do
      if degree.(v) <= 1 then layer := v :: !layer
    done;
    let current = ref !layer in
    while !remaining > 2 do
      let next = ref [] in
      List.iter
        (fun v ->
          removed.(v) <- true;
          decr remaining;
          Bitset.iter
            (fun w ->
              if not removed.(w) then begin
                degree.(w) <- degree.(w) - 1;
                if degree.(w) = 1 then next := w :: !next
              end)
            (Graph.neighbors g v))
        !current;
      current := !next
    done;
    List.filter (fun v -> not removed.(v)) (List.init n Fun.id)
  end

let rec encode_rooted g root parent =
  let children =
    Bitset.fold
      (fun w acc -> if w <> parent then encode_rooted g w root :: acc else acc)
      (Graph.neighbors g root) []
  in
  let sorted = List.sort compare children in
  "(" ^ String.concat "" sorted ^ ")"

let encode g =
  let n = Graph.order g in
  if n > 0 && not (Nf_graph.Props.is_tree g) then invalid_arg "Ahu.encode: not a tree";
  if n = 0 then "()"
  else
    match centers g with
    | [ c ] -> encode_rooted g c (-1)
    | [ c1; c2 ] ->
      let e1 = encode_rooted g c1 (-1)
      and e2 = encode_rooted g c2 (-1) in
      if compare e1 e2 <= 0 then e1 else e2
    | _ -> assert false

let equal_trees t1 t2 = String.equal (encode t1) (encode t2)
