module Graph = Nf_graph.Graph
module Bitset = Nf_util.Bitset

type partition = int list list

let unit_partition n = if n = 0 then [] else [ List.init n Fun.id ]

let degree_partition g =
  let n = Graph.order g in
  let by_degree = Hashtbl.create 8 in
  for v = 0 to n - 1 do
    let d = Graph.degree g v in
    Hashtbl.replace by_degree d (v :: Option.value ~default:[] (Hashtbl.find_opt by_degree d))
  done;
  let degrees = List.sort_uniq (fun a b -> compare b a) (Hashtbl.fold (fun d _ acc -> d :: acc) by_degree []) in
  List.map (fun d -> List.sort compare (Hashtbl.find by_degree d)) degrees

(* Split every cell by the count of neighbors inside [splitter]; groups are
   ordered by decreasing count so the outcome is independent of within-cell
   vertex order.  Returns the new partition and whether anything split. *)
let split_by g splitter partition =
  let changed = ref false in
  let split_cell cell =
    match cell with
    | [] | [ _ ] -> [ cell ]
    | _ ->
      let keyed =
        List.map (fun v -> (Bitset.cardinal (Bitset.inter (Graph.neighbors g v) splitter), v)) cell
      in
      let sorted = List.sort (fun (k1, v1) (k2, v2) -> compare (k2, v1) (k1, v2)) keyed in
      let rec group current key acc = function
        | [] -> List.rev (List.rev current :: acc)
        | (k, v) :: rest ->
          if k = key then group (v :: current) key acc rest
          else group [ v ] k (List.rev current :: acc) rest
      in
      (match sorted with
      | [] -> [ [] ]
      | (k0, v0) :: rest ->
        let groups = group [ v0 ] k0 [] rest in
        if List.length groups > 1 then changed := true;
        groups)
  in
  let refined = List.concat_map split_cell partition in
  (refined, !changed)

let refine g partition =
  (* Iterate to a fixpoint: re-split against every current cell after any
     change.  Cell count only grows, so this terminates in <= n rounds. *)
  let rec loop partition =
    let splitters = List.map Bitset.of_list partition in
    let step (p, changed) splitter =
      let p', c = split_by g splitter p in
      (p', changed || c)
    in
    let partition', changed = List.fold_left step (partition, false) splitters in
    if changed then loop partition' else partition'
  in
  loop partition

let is_discrete partition =
  List.for_all
    (function
      | [ _ ] -> true
      | _ -> false)
    partition

let first_non_singleton partition =
  List.find_opt
    (function
      | [] | [ _ ] -> false
      | _ -> true)
    partition

let individualize partition ~cell v =
  if not (List.mem v cell) then invalid_arg "Refine.individualize: vertex not in cell";
  List.concat_map
    (fun c ->
      if c == cell then [ [ v ]; List.filter (fun u -> u <> v) c ] else [ c ])
    partition
