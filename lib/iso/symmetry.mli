(** Automorphism (sub)groups packaged for orbit-quotient annotation.

    Every annotator in the connection games is isomorphism-invariant, so
    toggling one representative edge per automorphism orbit and letting
    the result stand for the whole orbit is exact (DESIGN.md §11).  A
    value of type {!t} is a generator list witnessing a subgroup of
    [Aut(g)] — any subgroup is sound (its orbits refine the true ones),
    which is what makes the cheap detection tier possible.

    Two tiers feed the quotient:
    - {!detect_twins}: O(n²) word compares finding twin vertices (equal
      adjacency rows modulo the pair itself); the per-graph cost is far
      below a single edge toggle, so bulk sweeps always run it.
    - {!detect_full}: the exact group off {!Canon.full}'s
      individualization–refinement search; ~tens of microseconds per
      graph, reserved for one-off calls whose annotation dwarfs it
      (gallery graphs, UCG orientation searches).

    The rigid fast path is the caller's: {!is_trivial} routes back to
    the unquotiented loop, so asymmetric graphs pay only the detection
    scan. *)

type t
(** A subgroup of the automorphisms of one [n]-vertex graph. *)

val trivial : int -> t
(** The trivial subgroup on [n] vertices ({!is_trivial} holds). *)

val of_generators : int -> int array list -> t
(** Wrap explicit generators (each a permutation of [0..n-1], old vertex
    [v] → image [gen.(v)]).  The caller asserts they are automorphisms
    of the graph being annotated; {!self_check} verifies it.
    @raise Invalid_argument on a length mismatch. *)

val order_n : t -> int

val generators : t -> int array list
(** Concrete generators of the witnessed subgroup.  For {!detect_twins}
    values these are materialized on demand (star transpositions linking
    each twin-class member to its class minimum) — the sweep path never
    allocates them. *)

val is_trivial : t -> bool

val twin_partition : t -> (int array * int array) option
(** [Some (classes, second)] when the subgroup came from the twin tier:
    [classes.(v)] is the smallest vertex of [v]'s orbit and [second.(c)]
    the second-smallest member of class [c] ([-1] for singleton classes).
    The generated group is the direct product of the full symmetric
    groups on the classes, so a pair [{i, j}] ([i < j]) is its orbit's
    lexicographically-least representative iff [i = classes.(i)] and
    [j = classes.(j)] (distinct classes) or [j = second.(classes.(i))]
    (same class) — an O(1) test the hot scans use instead of
    materializing {!edge_orbits}. *)

val detect_twins : Nf_graph.Graph.t -> t
(** The sweep tier: partition vertices into twin classes
    ([N(u) \ {v} = N(v) \ {u}] links [v] to its smallest twin).  Swapping
    twins is always an automorphism, so the witnessed subgroup is the
    product of the symmetric groups on the classes; the result carries
    {!twin_partition} and allocates no generator arrays. *)

val detect_full : Nf_graph.Graph.t -> t
(** The one-off tier: the full automorphism group from {!Canon.full}. *)

type edge_orbits = {
  reps : int array;
      (** ascending triangular pair indices with [orbit_of_pair.(t) = t] *)
  orbit_of_pair : int array;
      (** representative triangular index per pair, as {!Canon.edge_orbits} *)
}

val edge_orbits : t -> edge_orbits
(** The orbit partition of unordered vertex pairs under the subgroup,
    computed once per value and cached (atomically — values are shared
    across annotation domains). *)

val group_elements : cap:int -> t -> int array array
(** Up to [cap] non-identity elements of the generated subgroup, by
    breadth-first closure.  Any prefix of the group is sound for the UCG
    sibling-branch pruning, so hitting the cap degrades speed, never
    correctness.  Empty for a trivial subgroup. *)

val quotient_enabled : unit -> bool
(** [false] when [NETFORM_NO_ORBIT_QUOTIENT] is set (to anything but
    ["0"] or the empty string) or after {!set_quotient_enabled} [false]:
    every auto-detecting annotation entry point then takes the
    unquotiented loop. *)

val set_quotient_enabled : bool -> unit
(** Flip the process-wide opt-out (the CLI's [--no-orbit-quotient]).
    Not synchronized: set it before parallel sweeps start. *)

val self_check : Nf_graph.Graph.t -> t -> unit
(** Fail loudly ([Failure]) unless every generator is an automorphism of
    the graph, the edge orbits partition the C(n,2) pairs without mixing
    edges and non-edges, and every orbit size divides the group order
    reported by the independent {!Canon.automorphism_count} backtracker
    (orbit-stabilizer).  Test-suite armor for the union-find. *)
