(** α-interval index over a store's stability regions.

    Turns "all records stable at link cost α" from an O(records) filter
    into a binary search over the sorted distinct region endpoints plus
    an O(log) segment-tree stabbing query — with the open/closed
    endpoint semantics of {!Nf_util.Interval.mem} preserved exactly,
    including queries at the endpoints themselves (each endpoint is its
    own elementary position).  Answers are ascending record ids,
    identical to [Nf_store.Query.game_entries].  The structure is
    immutable after {!build} and safe to query from any number of
    domains concurrently. *)

type t

val build : count:int -> pieces:(int -> Nf_util.Interval.t list) -> t
(** [build ~count ~pieces] indexes records [0 .. count-1]; [pieces i]
    lists the stability intervals of record [i] (a singleton for an
    interval region, [Union.to_list] for a union region; empty intervals
    are ignored, overlapping pieces are tolerated).  [pieces] is called
    once per record at build time. *)

val stable_at : t -> alpha:Nf_util.Rat.t -> int list
(** Ascending ids of the records whose region contains [alpha]. *)

val endpoints : t -> Nf_util.Rat.t array
(** The sorted distinct finite endpoints (exposed for stats and the
    boundary-differential tests). *)

val records : t -> int
