(* The line-delimited JSON wire protocol (DESIGN.md §13).

   One request per line, one response line per request, in order.  Exact
   rationals travel as Rat.to_string text ("3/2") and are parsed with
   Rat.of_string — never through a float.  Unknown operations and
   malformed requests produce {"ok":false,"error":...} responses, not
   dropped connections. *)

module Rat = Nf_util.Rat

type request =
  | Stable_at of { game : string option; alpha : Rat.t }
  | Entry of { graph6 : string }
  | Figure_points of { grid : Rat.t list option }
  | Export
  | Stats
  | Health
  | Shutdown

let op_name = function
  | Stable_at _ -> "stable-at"
  | Entry _ -> "entry"
  | Figure_points _ -> "figure-points"
  | Export -> "export"
  | Stats -> "stats"
  | Health -> "health"
  | Shutdown -> "shutdown"

let request_to_json req =
  let base = [ ("op", Json.Str (op_name req)) ] in
  Json.Obj
    (match req with
    | Stable_at { game; alpha } ->
      base
      @ (match game with Some g -> [ ("game", Json.Str g) ] | None -> [])
      @ [ ("alpha", Json.Str (Rat.to_string alpha)) ]
    | Entry { graph6 } -> base @ [ ("graph6", Json.Str graph6) ]
    | Figure_points { grid } -> (
      base
      @
      match grid with
      | Some g -> [ ("grid", Json.List (List.map (fun r -> Json.Str (Rat.to_string r)) g)) ]
      | None -> [])
    | Export | Stats | Health | Shutdown -> base)

let ( let* ) = Result.bind

let str_field j name =
  match Option.bind (Json.member name j) Json.to_str with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing or non-string field %S" name)

let rat_field j name =
  let* s = str_field j name in
  match Rat.of_string_opt s with
  | Some r -> Ok r
  | None -> Error (Printf.sprintf "field %S: %S is not an exact rational (P or P/Q)" name s)

let request_of_json j =
  let* op = str_field j "op" in
  match op with
  | "stable-at" ->
    let game = Option.bind (Json.member "game" j) Json.to_str in
    let* alpha = rat_field j "alpha" in
    Ok (Stable_at { game; alpha })
  | "entry" ->
    let* graph6 = str_field j "graph6" in
    Ok (Entry { graph6 })
  | "figure-points" -> (
    match Json.member "grid" j with
    | None -> Ok (Figure_points { grid = None })
    | Some g -> (
      match Json.to_list g with
      | None -> Error "field \"grid\" must be a list of exact rationals"
      | Some items ->
        let rec parse acc = function
          | [] -> Ok (Figure_points { grid = Some (List.rev acc) })
          | Json.Str s :: tl -> (
            match Rat.of_string_opt s with
            | Some r -> parse (r :: acc) tl
            | None -> Error (Printf.sprintf "grid value %S is not an exact rational" s))
          | _ -> Error "field \"grid\" must be a list of exact rationals"
        in
        parse [] items))
  | "export" -> Ok Export
  | "stats" -> Ok Stats
  | "health" -> Ok Health
  | "shutdown" -> Ok Shutdown
  | op -> Error (Printf.sprintf "unknown op %S" op)

let request_of_line line =
  match Json.of_string line with
  | j -> request_of_json j
  | exception Json.Parse_error msg -> Error (Printf.sprintf "bad request: %s" msg)

(* ---------------- responses ---------------- *)

let error_response msg = Json.Obj [ ("ok", Json.Bool false); ("error", Json.Str msg) ]

let ok_response fields = Json.Obj (("ok", Json.Bool true) :: fields)

let response_ok j = Json.member "ok" j = Some (Json.Bool true)

let response_error j =
  match Option.bind (Json.member "error" j) Json.to_str with
  | Some msg -> msg
  | None -> "malformed error response"
