(** The line-delimited JSON wire protocol (DESIGN.md §13).

    One request per line, one response line per request, in request
    order.  Exact rationals travel as {!Nf_util.Rat.to_string} text
    (["3/2"]) and are parsed with {!Nf_util.Rat.of_string_opt} — never
    through a float, so α survives the wire bit-for-bit. *)

type request =
  | Stable_at of { game : string option; alpha : Nf_util.Rat.t }
      (** [game = None] means the store's {!Service.default_game}. *)
  | Entry of { graph6 : string }
  | Figure_points of { grid : Nf_util.Rat.t list option }
      (** [None]: the default paper grid — the cacheable key. *)
  | Export
  | Stats
  | Health
  | Shutdown

val op_name : request -> string
val request_to_json : request -> Json.t
val request_of_json : Json.t -> (request, string) result
val request_of_line : string -> (request, string) result
(** Parse one wire line (JSON parse + shape check). *)

val error_response : string -> Json.t
(** [{"ok":false,"error":msg}]. *)

val ok_response : (string * Json.t) list -> Json.t
(** [{"ok":true, ...fields}]. *)

val response_ok : Json.t -> bool
val response_error : Json.t -> string
