(** Mmap-backed store reader: the serving read path.

    Where {!Nf_store.Index.load} reads a whole store into the heap, this
    module maps the NFATLAS1 file read-only ([Unix.map_file]) and builds
    a chunk directory from one header/frame walk that touches only the
    16-byte chunk headers.  Any record is then two binary searches plus
    one lazy, CRC-checked chunk decode; the only heap-resident store
    bytes are the decoded chunks in a small bounded FIFO cache.  A
    directory of shard volumes is served transparently, exactly like
    [Index.load]: each volume gets its own mapping and record ordinals
    run across volumes in shard order.

    Chunk bodies are {e not} CRC-verified at open time — a damaged chunk
    raises {!Nf_store.Layout.Corrupt} on first access, pinned to the
    chunk, while the rest of the store keeps serving.  The framing walk
    and the footer totals are validated at open.

    All read paths are safe for concurrent use from multiple domains:
    the mapping is immutable, bytes are copied out per frame (never
    aliased), and the cache is mutex-guarded. *)

type t

val open_store : ?cache_chunks:int -> path:string -> unit -> t
(** Map a store file, or every volume of a shard directory.
    [cache_chunks] bounds the decoded-chunk cache (default 64 chunks;
    [0] disables caching entirely).
    @raise Nf_store.Layout.Corrupt on framing damage, a truncated file,
    or footer totals that disagree with the walk.
    @raise Failure when a directory does not hold one complete shard
    family. *)

val path : t -> string
val header : t -> Nf_store.Layout.header
(** The store header; for a shard directory, the merged view (shard
    metadata cleared), exactly as [Index.load] reports it. *)

val n : t -> int
val content : t -> Nf_store.Layout.content
val game : t -> string
val length : t -> int
(** Total records across all volumes. *)

val chunks : t -> int
val volumes : t -> string list
(** The mapped volume paths, in shard order (a single file for a plain
    store). *)

val record : t -> int -> Nf_store.Layout.record
(** [record t i] is record ordinal [i] in enumeration order.
    @raise Invalid_argument out of bounds.
    @raise Nf_store.Layout.Corrupt when the holding chunk fails its CRC. *)

val graph6 : t -> int -> string

val iter : t -> (int -> Nf_store.Layout.record -> unit) -> unit
(** In-order streaming pass decoding each chunk exactly once; bypasses
    (and does not pollute) the chunk cache. *)

val fold : t -> init:'a -> f:('a -> int -> Nf_store.Layout.record -> 'a) -> 'a

val cached_chunks : t -> int
(** Decoded chunks currently cached (always [<= cache_chunks]). *)

val close : t -> unit
(** Drop the decoded-chunk cache.  The mappings themselves are reclaimed
    by the GC when [t] is collected. *)
