(** Client side of the wire protocol.

    Blocking and sequential: {!request} writes one JSON line and reads
    one response line.  Safe to keep open across many requests — the
    daemon holds connections until the client closes or it shuts
    down. *)

type t

val connect : string -> t
(** [connect addr] — ["HOST:PORT"] / [":PORT"] for TCP (empty host or
    [localhost] = loopback), anything else a unix socket path.
    @raise Unix.Unix_error when the connection fails. *)

val request : t -> Protocol.request -> Json.t
(** One round trip.
    @raise Failure when the server closes mid-request.
    @raise Json.Parse_error on a malformed response line. *)

val request_raw : t -> string -> Json.t
(** {!request} with a caller-supplied wire line (newline appended) —
    for protocol tests and debugging; the line need not be valid. *)

val close : t -> unit
