(** Minimal JSON values for the nf_serve wire protocol.

    No external JSON dependency is available, and the protocol needs
    only a small deterministic subset.  {!to_string} emits a canonical
    single-line form — object fields in the order given, no
    insignificant whitespace — so a response's bytes are a pure function
    of the value.  {!of_string} accepts standard JSON (escapes, floats,
    [\uXXXX] with surrogate pairs) so foreign clients are not rejected
    on cosmetic grounds. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Canonical single-line rendering (never contains a newline — the
    framing invariant of the line-delimited protocol). *)

val of_string : string -> t
(** @raise Parse_error on malformed input or trailing bytes. *)

val member : string -> t -> t option
(** Field lookup; [None] on a non-object or a missing field. *)

val to_str : t -> string option
val to_int : t -> int option
val to_bool : t -> bool option
val to_list : t -> t list option
