(* Client side of the wire protocol: connect, one JSON line per
   request, one line back per request, in order. *)

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

(* "HOST:PORT" (or ":PORT") is TCP; anything else is a unix socket path.
   A path containing ':' is not ambiguous in practice: the daemon only
   ever binds loopback TCP or a filesystem socket it creates itself. *)
let sockaddr_of_string addr =
  match String.rindex_opt addr ':' with
  | Some i when int_of_string_opt (String.sub addr (i + 1) (String.length addr - i - 1)) <> None
    ->
    let port = int_of_string (String.sub addr (i + 1) (String.length addr - i - 1)) in
    let host = String.sub addr 0 i in
    let inet =
      if host = "" || host = "localhost" then Unix.inet_addr_loopback
      else
        match Unix.inet_addr_of_string host with
        | a -> a
        | exception Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } -> failwith (Printf.sprintf "unknown host %S" host)
          | { Unix.h_addr_list; _ } -> h_addr_list.(0)
          | exception Not_found -> failwith (Printf.sprintf "unknown host %S" host))
    in
    Unix.ADDR_INET (inet, port)
  | _ -> Unix.ADDR_UNIX addr

let connect addr =
  let sockaddr = sockaddr_of_string addr in
  let fd = Unix.socket (Unix.domain_of_sockaddr sockaddr) Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sockaddr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let request_raw t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc;
  match input_line t.ic with
  | line -> Json.of_string line
  | exception End_of_file -> failwith "server closed the connection"

let request t req = request_raw t (Json.to_string (Protocol.request_to_json req))

let close t =
  (* close_out closes the underlying fd; the second close is a no-op
     error we swallow *)
  (try close_out t.oc with Sys_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()
