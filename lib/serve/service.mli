(** The socket-independent query engine behind the daemon.

    Wraps a mapped store ({!Mmap_reader}) with lazily built read
    structures — per-game {!Alpha_index}es, a graph6 lookup table, and
    the deterministic figure-sweep response cache keyed by
    [(game, n, α-grid)].  Parity with the in-process [Nf_store.Query]
    API is the contract: every answer is byte-identical to what the
    corresponding [Query] call produces on the same store.  All
    functions are safe to call concurrently from pool domains. *)

type t

val create : ?cache_chunks:int -> path:string -> unit -> t
(** Open a store file or shard directory for serving.
    @raise Nf_store.Layout.Corrupt / [Failure] as {!Mmap_reader.open_store}. *)

val store : t -> Mmap_reader.t
val n : t -> int
val game : t -> string
val length : t -> int

val default_game : t -> string
(** The game a query without an explicit [--game] means: ["bcg"] on a
    classic store, the store's own game on a single-game store. *)

val stable_ids : t -> game:string -> alpha:Nf_util.Rat.t -> int list
(** Ascending record ids, identical to [Query.game_entries].
    @raise Invalid_argument with [Query.game_entries]' own message when
    the store does not carry the requested game's annotations. *)

val stable_graph6 : t -> game:string -> alpha:Nf_util.Rat.t -> string list
val stable_graphs : t -> game:string -> alpha:Nf_util.Rat.t -> Nf_graph.Graph.t list

val find_entry : t -> graph6:string -> (int * Nf_store.Layout.record) option
(** Exact-string lookup of a stored representative. *)

val region_strings : t -> Nf_store.Layout.record -> (string * string) list
(** The [(label, exact region)] pairs a record renders as — one per
    column the store carries. *)

val region_strings_of :
  content:Nf_store.Layout.content -> Nf_store.Layout.record -> (string * string) list
(** {!region_strings} as a pure function of the content descriptor, for
    in-process callers that render the same lines without a service. *)

val figure_csv : t -> ?grid:Nf_util.Rat.t list -> unit -> string
(** The figure-sweep CSV (classic dual stores: [Figures.to_csv]; game
    stores: [Figures.game_csv]), byte-identical to
    [store query --figures --csv] on the same store, served from the
    response cache when the (game, n, grid) key was already swept. *)

val export_csv : t -> string
(** Byte-identical to [Query.to_csv] / [store export]. *)

val tick_request : t -> unit
(** Count a protocol request (called by the server per line). *)

type stats = {
  records : int;
  chunks : int;
  volumes : int;
  cached_chunks : int;
  indexed_games : (string * int) list;  (** (game, distinct endpoints) *)
  figure_cache_entries : int;
  figure_cache_hits : int;
  requests : int;
}

val stats : t -> stats
