(* α-interval index: stable-at queries as binary search + range scan.

   Soundness argument (DESIGN.md §13).  Collect every finite endpoint of
   every stability piece (interval column, or each interval of a UCG
   union) into the sorted distinct array e_0 < ... < e_{k-1}.  These
   split the extended rational line into 2k+1 *elementary positions*:

     position 0      = (-inf, e_0)
     position 2i+1   = { e_i }            (the endpoint itself)
     position 2i+2   = (e_i, e_{i+1})     (gap; (e_{k-1}, +inf) at 2k)

   Every stability piece is a union of consecutive elementary positions,
   because each of its endpoints is one of the e_i — this is where the
   open/closed semantics are preserved *exactly*: a closed lower bound
   at e_i starts the range at position 2i+1, an open one at 2i+2, and
   dually for the upper bound.  And every query point α lands in exactly
   one elementary position (binary search: if α equals some e_i, it's
   2i+1, else 2j for j = #endpoints below α), where membership of each
   piece is constant.  So "which records are stable at α" = "which
   ranges cover position p" — a segment-tree stabbing query.

   Each piece's position range is inserted into the canonical O(log)
   node decomposition of an iterative segment tree; a point query
   collects the node lists on the leaf-to-root path.  When a record's
   pieces are pairwise disjoint (an interval region, or Union.to_list's
   normal form) its id appears at most once across that path — a node's
   span is contained in the range of the piece that inserted it, so two
   insertions of one record can never own the same node; overlapping
   pieces can place an id on two path nodes, and the final sort_uniq
   collapses exactly those repeats.  The merged answer — ascending,
   each id once — matches [Nf_store.Query.game_entries] exactly. *)

module Interval = Nf_util.Interval
module Rat = Nf_util.Rat

type t = {
  endpoints : Rat.t array;  (* sorted, distinct, finite *)
  size : int;  (* leaves = 2k+1 elementary positions *)
  nodes : int array array;  (* 2*size heap-shaped node lists, each ascending *)
  records : int;
}

let endpoints t = t.endpoints
let records t = t.records

let build ~count ~pieces =
  let eps = ref [] in
  let each_bound i f =
    List.iter
      (fun iv ->
        match Interval.bounds iv with
        | None -> ()
        | Some (lo, lo_closed, hi, hi_closed) -> f lo lo_closed hi hi_closed)
      (pieces i)
  in
  for i = 0 to count - 1 do
    each_bound i (fun lo _ hi _ ->
        (match lo with Interval.Finite r -> eps := r :: !eps | _ -> ());
        match hi with Interval.Finite r -> eps := r :: !eps | _ -> ())
  done;
  let endpoints = Array.of_list (List.sort_uniq Rat.compare !eps) in
  let k = Array.length endpoints in
  let size = (2 * k) + 1 in
  let nodes = Array.make (2 * size) [] in
  let rank r =
    (* exact index of r in endpoints — r is always present by construction *)
    let lo = ref 0 and hi = ref (k - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Rat.compare endpoints.(mid) r < 0 then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  let add_range a b id =
    (* canonical decomposition of inclusive position range [a, b] *)
    let a = ref (a + size) and b = ref (b + size + 1) in
    while !a < !b do
      if !a land 1 = 1 then begin
        nodes.(!a) <- id :: nodes.(!a);
        incr a
      end;
      if !b land 1 = 1 then begin
        decr b;
        nodes.(!b) <- id :: nodes.(!b)
      end;
      a := !a asr 1;
      b := !b asr 1
    done
  in
  for i = 0 to count - 1 do
    each_bound i (fun lo lo_closed hi hi_closed ->
        let a =
          match lo with
          | Interval.Neg_inf -> 0
          | Interval.Finite r ->
            let j = rank r in
            if lo_closed then (2 * j) + 1 else (2 * j) + 2
          | Interval.Pos_inf -> size (* empty after normalization; defensive *)
        in
        let b =
          match hi with
          | Interval.Pos_inf -> size - 1
          | Interval.Finite r ->
            let j = rank r in
            if hi_closed then (2 * j) + 1 else 2 * j
          | Interval.Neg_inf -> -1
        in
        if a <= b then add_range a b i)
  done;
  { endpoints; size; nodes = Array.map (fun l -> Array.of_list (List.rev l)) nodes; records = count }

(* the elementary position α lands in *)
let position t alpha =
  let eps = t.endpoints in
  let k = Array.length eps in
  let lo = ref 0 and hi = ref k in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Rat.compare eps.(mid) alpha < 0 then lo := mid + 1 else hi := mid
  done;
  if !lo < k && Rat.compare eps.(!lo) alpha = 0 then (2 * !lo) + 1 else 2 * !lo

let stable_at t ~alpha =
  let acc = ref [] in
  let v = ref (position t alpha + t.size) in
  while !v >= 1 do
    Array.iter (fun id -> acc := id :: !acc) t.nodes.(!v);
    v := !v asr 1
  done;
  (* ids are pairwise distinct across the path (see header comment);
     one sort restores global ascending order *)
  List.sort_uniq compare !acc
