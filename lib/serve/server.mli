(** The [netform serve] daemon: a select-loop server over one
    {!Service}.

    One event loop owns every socket; each round's complete request
    lines are evaluated as one batch on the {!Nf_util.Pool} domains, so
    concurrent clients' requests run concurrently while every
    connection's responses keep its own request order.  SIGINT/SIGTERM
    (or a [shutdown] request) drain pending responses, close all
    sockets, remove the unix-socket path and restore the previous
    signal dispositions before {!serve} returns. *)

type addr = Unix_socket of string | Tcp of int  (** TCP binds 127.0.0.1 only. *)

val addr_to_string : addr -> string

val handle_line : Service.t -> string -> string * [ `Continue | `Shutdown ]
(** Evaluate one wire line to one response line (newline included).
    Exposed for the differential tests; errors come back as
    [{"ok":false,...}] responses, never exceptions. *)

val serve :
  ?cache_chunks:int -> ?report:(string -> unit) -> addr:addr -> path:string -> unit -> unit
(** Open the store at [path] (file or shard directory), bind [addr], and
    serve until a shutdown request or signal; returns after a clean
    drain.  [report] receives a start line and a shutdown line.
    @raise Unix.Unix_error when the address cannot be bound. *)
