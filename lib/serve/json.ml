(* Minimal JSON values for the nf_serve wire protocol.

   The toolchain this library builds against has no JSON package, and
   the protocol needs only a small, deterministic subset: objects,
   arrays, strings, machine integers, booleans.  The printer emits a
   canonical single-line form (object fields in the order given, no
   insignificant whitespace), so a response's bytes are a pure function
   of the value — the property the differential harness compares on.
   The parser accepts standard JSON, including escapes and floats, so a
   foreign client is not rejected on cosmetic grounds. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---------------- printing ---------------- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    (* %.17g round-trips every double; trailing ".0" keeps it a float *)
    let s = Printf.sprintf "%.17g" f in
    Buffer.add_string buf s;
    if String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') s then
      Buffer.add_string buf ".0"
  | Str s -> add_escaped buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        add buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        add buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

(* ---------------- parsing ---------------- *)

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type state = { s : string; mutable pos : int }

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let next st =
  match peek st with
  | Some c ->
    st.pos <- st.pos + 1;
    c
  | None -> fail "unexpected end of input at byte %d" st.pos

let skip_ws st =
  while
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
      st.pos <- st.pos + 1;
      true
    | _ -> false
  do
    ()
  done

let expect st c =
  let got = next st in
  if got <> c then fail "expected %C, got %C at byte %d" c got (st.pos - 1)

let literal st word value =
  String.iter (fun c -> expect st c) word;
  value

(* UTF-8 encode one scalar value (the \uXXXX path) *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex4 st =
  let digit () =
    match next st with
    | '0' .. '9' as c -> Char.code c - Char.code '0'
    | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
    | c -> fail "bad hex digit %C at byte %d" c (st.pos - 1)
  in
  let a = digit () in
  let b = digit () in
  let c = digit () in
  let d = digit () in
  (a lsl 12) lor (b lsl 8) lor (c lsl 4) lor d

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match next st with
    | '"' -> Buffer.contents buf
    | '\\' ->
      (match next st with
      | '"' -> Buffer.add_char buf '"'
      | '\\' -> Buffer.add_char buf '\\'
      | '/' -> Buffer.add_char buf '/'
      | 'b' -> Buffer.add_char buf '\b'
      | 'f' -> Buffer.add_char buf '\012'
      | 'n' -> Buffer.add_char buf '\n'
      | 'r' -> Buffer.add_char buf '\r'
      | 't' -> Buffer.add_char buf '\t'
      | 'u' ->
        let u = hex4 st in
        if u >= 0xD800 && u <= 0xDBFF && st.pos + 1 < String.length st.s
           && st.s.[st.pos] = '\\' && st.s.[st.pos + 1] = 'u'
        then begin
          st.pos <- st.pos + 2;
          let lo = hex4 st in
          if lo >= 0xDC00 && lo <= 0xDFFF then
            add_utf8 buf (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
          else begin
            add_utf8 buf u;
            add_utf8 buf lo
          end
        end
        else add_utf8 buf u
      | c -> fail "bad escape \\%C at byte %d" c (st.pos - 1));
      loop ()
    | c -> Buffer.add_char buf c; loop ()
  in
  loop ()

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek st with Some c when is_num_char c -> st.pos <- st.pos + 1; true | _ -> false do
    ()
  done;
  let tok = String.sub st.s start (st.pos - start) in
  let floaty = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok in
  if floaty then
    match float_of_string_opt tok with
    | Some f -> Float f
    | None -> fail "bad number %S at byte %d" tok start
  else
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number %S at byte %d" tok start)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail "unexpected end of input at byte %d" st.pos
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> Str (parse_string st)
  | Some '[' ->
    expect st '[';
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      List []
    end
    else begin
      let items = ref [ parse_value st ] in
      skip_ws st;
      while peek st = Some ',' do
        st.pos <- st.pos + 1;
        items := parse_value st :: !items;
        skip_ws st
      done;
      expect st ']';
      List (List.rev !items)
    end
  | Some '{' ->
    expect st '{';
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let field () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        (k, v)
      in
      let fields = ref [ field () ] in
      skip_ws st;
      while peek st = Some ',' do
        st.pos <- st.pos + 1;
        fields := field () :: !fields;
        skip_ws st
      done;
      expect st '}';
      Obj (List.rev !fields)
    end
  | Some _ -> parse_number st

let of_string s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail "trailing bytes after value at byte %d" st.pos;
  v

(* ---------------- accessors ---------------- *)

let member name = function Obj kvs -> List.assoc_opt name kvs | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_int = function Int i -> Some i | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List xs -> Some xs | _ -> None
