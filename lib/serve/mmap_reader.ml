(* Mmap-backed store reader: the serving read path.

   [Nf_store.Index.load] reads the whole store into the heap — right for
   one-shot CLI calls, wrong for a daemon fronting an n=9/n=10 atlas.
   Here the file is mapped once ([Unix.map_file], read-only, shared) and
   a single header/frame walk builds a chunk directory: byte offset,
   frame length and first-record ordinal per chunk, touching only the
   16-byte chunk headers.  After that any record is an O(log chunks)
   binary search plus one lazy chunk decode, and the only heap-resident
   store bytes are the decoded chunks currently in the bounded cache.

   Ownership rules (DESIGN.md §13): the mapping is private to this
   module and immutable — bytes are only ever copied out per chunk
   frame, never aliased, so a concurrently replaced store file cannot
   corrupt records already decoded (and the kernel keeps the mapped
   pages of an unlinked file alive until unmap).  Unmapping itself is
   the GC's business; [close] only drops the decoded-chunk cache.

   The directory walk validates framing, chunk sequence and the
   CRC-protected footer totals, but does not CRC every chunk body — a
   chunk's CRC is verified by [Layout.decode_chunk] the first time the
   chunk is actually decoded, so corruption surfaces as [Layout.Corrupt]
   on access, pinned to the damaged chunk, while the rest of the store
   keeps serving.

   A directory of shard volumes is served transparently, exactly like
   [Index.load]: [Merge.family] proves the volumes form one complete
   split and each volume gets its own mapping, with record ordinals
   running across volumes in shard order (= unsharded enumeration
   order). *)

module Layout = Nf_store.Layout
module Merge = Nf_store.Merge
module Build = Nf_store.Build

type map = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type chunk_entry = {
  off : int;  (* byte offset of the chunk frame in its volume *)
  len : int;  (* whole frame length, header through CRC *)
  count : int;  (* records in the chunk (from the frame header) *)
  first : int;  (* volume-local ordinal of the chunk's first record *)
}

type volume = {
  vpath : string;
  map : map;
  vchunks : chunk_entry array;
  vrecords : int;
  vfirst : int;  (* store-wide ordinal of this volume's first record *)
}

type t = {
  path : string;
  header : Layout.header;  (* merged view: shard metadata cleared for directories *)
  vols : volume array;
  records : int;
  chunks : int;
  cache_cap : int;
  cache : (int * int, Layout.record array) Hashtbl.t;
  order : (int * int) Queue.t;  (* FIFO eviction order of cache keys *)
  lock : Mutex.t;
}

let fail path fmt =
  Printf.ksprintf (fun m -> raise (Layout.Corrupt (Printf.sprintf "%s: %s" path m))) fmt

let map_file path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let len = (Unix.fstat fd).Unix.st_size in
      if len = 0 then fail path "empty file";
      Bigarray.array1_of_genarray (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| len |]))

let sub_string map ~pos ~len what path =
  if pos < 0 || len < 0 || pos + len > Bigarray.Array1.dim map then
    fail path "unexpected end of mapped store reading %s at byte %d" what pos;
  String.init len (fun i -> Bigarray.Array1.unsafe_get map (pos + i))

let u32_at map pos =
  Char.code (Bigarray.Array1.get map pos)
  lor (Char.code (Bigarray.Array1.get map (pos + 1)) lsl 8)
  lor (Char.code (Bigarray.Array1.get map (pos + 2)) lsl 16)
  lor (Char.code (Bigarray.Array1.get map (pos + 3)) lsl 24)

let magic_at map pos magic =
  let rec eq i = i >= 4 || (Bigarray.Array1.get map (pos + i) = magic.[i] && eq (i + 1)) in
  pos + 4 <= Bigarray.Array1.dim map && eq 0

(* One header/frame walk over a mapped volume: decode the header, hop
   chunk header to chunk header recording (offset, frame length, record
   count, first ordinal), finish on a footer whose CRC-protected totals
   must match the walk.  Only O(chunks) * 16 bytes are touched. *)
let open_volume ~vfirst path =
  let map = map_file path in
  let dim = Bigarray.Array1.dim map in
  let header = Layout.decode_header (sub_string map ~pos:0 ~len:Layout.header_size "header" path) in
  let dir = ref [] in
  let pos = ref Layout.header_size in
  let chunks = ref 0 in
  let records = ref 0 in
  let complete = ref false in
  while not !complete do
    if magic_at map !pos Layout.footer_magic then begin
      let footer = sub_string map ~pos:!pos ~len:Layout.footer_size "footer" path in
      let total_chunks, total_records, _ = Layout.decode_footer footer ~pos:0 in
      if total_chunks <> !chunks then
        fail path "footer declares %d chunks, directory walk found %d" total_chunks !chunks;
      if total_records <> !records then
        fail path "footer declares %d records, directory walk found %d" total_records !records;
      if !pos + Layout.footer_size <> dim then
        fail path "%d trailing bytes after footer" (dim - !pos - Layout.footer_size);
      complete := true
    end
    else if magic_at map !pos Layout.chunk_magic then begin
      if !pos + Layout.chunk_header_size > dim then
        fail path "truncated chunk header at byte %d" !pos;
      let index = u32_at map (!pos + 4) in
      let count = u32_at map (!pos + 8) in
      let body_len = u32_at map (!pos + 12) in
      if index <> !chunks then fail path "chunk %d out of sequence (expected %d)" index !chunks;
      let len = Layout.chunk_header_size + body_len + 4 in
      if !pos + len > dim then fail path "truncated chunk %d at byte %d" index !pos;
      dir := { off = !pos; len; count; first = !records } :: !dir;
      chunks := !chunks + 1;
      records := !records + count;
      pos := !pos + len
    end
    else fail path "bad frame magic at byte %d (incomplete build?)" !pos
  done;
  ( { vpath = path; map; vchunks = Array.of_list (List.rev !dir); vrecords = !records; vfirst },
    header )

let open_store ?(cache_chunks = 64) ~path () =
  let vols, header =
    if Sys.file_exists path && Sys.is_directory path then begin
      let sorted, merged = Merge.family (Merge.volumes ~dir:path) in
      let vfirst = ref 0 in
      let vols =
        List.map
          (fun (p, _) ->
            let v, _ = open_volume ~vfirst:!vfirst p in
            vfirst := !vfirst + v.vrecords;
            v)
          sorted
      in
      (Array.of_list vols, merged)
    end
    else
      let v, header = open_volume ~vfirst:0 path in
      ([| v |], header)
  in
  let records = Array.fold_left (fun acc v -> acc + v.vrecords) 0 vols in
  let chunks = Array.fold_left (fun acc v -> acc + Array.length v.vchunks) 0 vols in
  {
    path;
    header;
    vols;
    records;
    chunks;
    cache_cap = max 0 cache_chunks;
    cache = Hashtbl.create 64;
    order = Queue.create ();
    lock = Mutex.create ();
  }

let path t = t.path
let header t = t.header
let n t = t.header.Layout.n
let content t = t.header.Layout.content
let game t = Build.game_of_content t.header.Layout.content
let length t = t.records
let chunks t = t.chunks
let volumes t = Array.to_list (Array.map (fun v -> v.vpath) t.vols)

let cached_chunks t =
  Mutex.lock t.lock;
  let k = Hashtbl.length t.cache in
  Mutex.unlock t.lock;
  k

(* CRC-checked decode of one chunk frame, copied out of the mapping *)
let decode_chunk t vi ci =
  let v = t.vols.(vi) in
  let e = v.vchunks.(ci) in
  let frame = sub_string v.map ~pos:e.off ~len:e.len "chunk frame" v.vpath in
  let _, recs, _ = Layout.decode_chunk ~content:t.header.Layout.content frame ~pos:0 in
  if Array.length recs <> e.count then
    fail v.vpath "chunk %d decodes to %d records, directory said %d" ci (Array.length recs) e.count;
  recs

let chunk_records t vi ci =
  let key = (vi, ci) in
  Mutex.lock t.lock;
  let hit = Hashtbl.find_opt t.cache key in
  Mutex.unlock t.lock;
  match hit with
  | Some recs -> recs
  | None ->
    (* decode outside the lock: concurrent misses may both decode (the
       results are identical); insertion is serialized and bounded *)
    let recs = decode_chunk t vi ci in
    if t.cache_cap > 0 then begin
      Mutex.lock t.lock;
      if not (Hashtbl.mem t.cache key) then begin
        Hashtbl.replace t.cache key recs;
        Queue.add key t.order;
        while Hashtbl.length t.cache > t.cache_cap do
          Hashtbl.remove t.cache (Queue.pop t.order)
        done
      end;
      Mutex.unlock t.lock
    end;
    recs

(* store-wide ordinal -> (volume, chunk, offset): two binary searches *)
let locate t i =
  if i < 0 || i >= t.records then
    invalid_arg (Printf.sprintf "Mmap_reader: record %d out of bounds (store holds %d)" i t.records);
  let vi =
    let lo = ref 0 and hi = ref (Array.length t.vols - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.vols.(mid).vfirst <= i then lo := mid else hi := mid - 1
    done;
    !lo
  in
  let v = t.vols.(vi) in
  let local = i - v.vfirst in
  let ci =
    let lo = ref 0 and hi = ref (Array.length v.vchunks - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if v.vchunks.(mid).first <= local then lo := mid else hi := mid - 1
    done;
    !lo
  in
  (vi, ci, local - v.vchunks.(ci).first)

let record t i =
  let vi, ci, off = locate t i in
  (chunk_records t vi ci).(off)

let graph6 t i = (record t i).Layout.graph6

(* streaming pass over all records in order; decodes each chunk once and
   bypasses the cache, so a full scan leaves the cache untouched *)
let iter t f =
  let i = ref 0 in
  Array.iteri
    (fun vi v ->
      Array.iteri
        (fun ci _ ->
          Array.iter
            (fun r ->
              f !i r;
              incr i)
            (decode_chunk t vi ci))
        v.vchunks)
    t.vols

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun i r -> acc := f !acc i r);
  !acc

let close t =
  Mutex.lock t.lock;
  Hashtbl.reset t.cache;
  Queue.clear t.order;
  Mutex.unlock t.lock
