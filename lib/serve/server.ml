(* The `netform serve` daemon: a select-loop server over one Service.

   Concurrency model: the single event loop owns every socket; nothing
   but the loop reads or writes an fd.  Each select round accepts new
   connections, drains readable sockets into per-connection line
   buffers, then dispatches *all* complete request lines of the round as
   one batch through [Nf_util.Pool.parallel_map] — so requests from
   concurrent clients are evaluated concurrently on the pool domains
   (the Service's structures are built for that), while each
   connection's responses stay in its own request order (parallel_map
   preserves input order).  Responses are queued per connection and
   flushed as select reports writability.

   Shutdown: SIGINT/SIGTERM set an atomic stop flag (the EINTR-tolerant
   select polls it at 0.2s granularity), and the `shutdown` op sets the
   same flag once its response is queued.  Either way the loop stops
   accepting and reading, flushes every pending response, closes all
   sockets, removes the unix-socket path, and restores the previous
   signal dispositions — a clean exit, never an abort mid-response. *)

type addr = Unix_socket of string | Tcp of int

let addr_to_string = function
  | Unix_socket p -> p
  | Tcp port -> Printf.sprintf "127.0.0.1:%d" port

(* ---------------- request evaluation ---------------- *)

let rat_str r = Json.Str (Nf_util.Rat.to_string r)

let eval service req =
  let open Protocol in
  match req with
  | Stable_at { game; alpha } ->
    let game = match game with Some g -> g | None -> Service.default_game service in
    let graphs = Service.stable_graph6 service ~game ~alpha in
    ok_response
      [
        ("op", Json.Str "stable-at");
        ("game", Json.Str game);
        ("alpha", rat_str alpha);
        ("count", Json.Int (List.length graphs));
        ("graphs", Json.List (List.map (fun g -> Json.Str g) graphs));
      ]
  | Entry { graph6 } -> (
    match Service.find_entry service ~graph6 with
    | None -> error_response (Printf.sprintf "no record for graph6 %S" graph6)
    | Some (id, r) ->
      ok_response
        [
          ("op", Json.Str "entry");
          ("id", Json.Int id);
          ("graph6", Json.Str graph6);
          ( "regions",
            Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) (Service.region_strings service r))
          );
        ])
  | Figure_points { grid } ->
    ok_response [ ("op", Json.Str "figure-points"); ("csv", Json.Str (Service.figure_csv service ?grid ())) ]
  | Export -> ok_response [ ("op", Json.Str "export"); ("csv", Json.Str (Service.export_csv service)) ]
  | Stats ->
    let s = Service.stats service in
    ok_response
      [
        ("op", Json.Str "stats");
        ("n", Json.Int (Service.n service));
        ("game", Json.Str (Service.game service));
        ("records", Json.Int s.Service.records);
        ("chunks", Json.Int s.Service.chunks);
        ("volumes", Json.Int s.Service.volumes);
        ("cached_chunks", Json.Int s.Service.cached_chunks);
        ( "indexed_games",
          Json.Obj (List.map (fun (g, k) -> (g, Json.Int k)) s.Service.indexed_games) );
        ("figure_cache_entries", Json.Int s.Service.figure_cache_entries);
        ("figure_cache_hits", Json.Int s.Service.figure_cache_hits);
        ("requests", Json.Int s.Service.requests);
      ]
  | Health ->
    ok_response
      [
        ("op", Json.Str "health");
        ("status", Json.Str "serving");
        ("n", Json.Int (Service.n service));
        ("game", Json.Str (Service.game service));
        ("records", Json.Int (Service.length service));
      ]
  | Shutdown -> ok_response [ ("op", Json.Str "shutdown"); ("status", Json.Str "shutting-down") ]

(* one wire line in, one wire line out; errors are responses, and only
   a well-formed `shutdown` stops the server *)
let handle_line service line =
  Service.tick_request service;
  match Protocol.request_of_line line with
  | Error msg -> (Json.to_string (Protocol.error_response msg) ^ "\n", `Continue)
  | Ok req -> (
    match eval service req with
    | resp ->
      ( Json.to_string resp ^ "\n",
        match req with Protocol.Shutdown -> `Shutdown | _ -> `Continue )
    | exception Invalid_argument msg -> (Json.to_string (Protocol.error_response msg) ^ "\n", `Continue)
    | exception Failure msg -> (Json.to_string (Protocol.error_response msg) ^ "\n", `Continue)
    | exception Nf_store.Layout.Corrupt msg ->
      (Json.to_string (Protocol.error_response ("store corrupt: " ^ msg)) ^ "\n", `Continue))

(* ---------------- the event loop ---------------- *)

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  outbuf : Buffer.t;
  mutable sent : int;
}

(* split the complete lines off a connection buffer, leaving the last
   partial line in place *)
let take_lines c =
  let s = Buffer.contents c.inbuf in
  match String.rindex_opt s '\n' with
  | None -> []
  | Some last ->
    Buffer.clear c.inbuf;
    Buffer.add_substring c.inbuf s (last + 1) (String.length s - last - 1);
    String.split_on_char '\n' (String.sub s 0 last)

let serve ?cache_chunks ?(report = ignore) ~addr ~path () =
  let service = Service.create ?cache_chunks ~path () in
  let listen_fd, cleanup_addr =
    match addr with
    | Unix_socket sp ->
      if Sys.file_exists sp then Sys.remove sp;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX sp);
      (fd, fun () -> try Sys.remove sp with Sys_error _ -> ())
    | Tcp port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      (fd, ignore)
  in
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  let stop = Atomic.make false in
  let install sg =
    let old = Sys.signal sg (Sys.Signal_handle (fun _ -> Atomic.set stop true)) in
    fun () -> Sys.set_signal sg old
  in
  let restores = [ install Sys.sigint; install Sys.sigterm; install Sys.sigpipe ] in
  (* sigpipe must not kill the daemon when a client vanishes mid-write;
     the handler above only sets the stop flag for int/term, but for
     pipe we want ignore semantics *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let served = ref 0 in
  let close_conn c =
    Hashtbl.remove conns c.fd;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let rec accept_all () =
    match Unix.accept listen_fd with
    | fd, _ ->
      Unix.set_nonblock fd;
      Hashtbl.replace conns fd { fd; inbuf = Buffer.create 256; outbuf = Buffer.create 256; sent = 0 };
      accept_all ()
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) -> ()
  in
  let read_conn c =
    let bytes = Bytes.create 4096 in
    match Unix.read c.fd bytes 0 4096 with
    | 0 -> close_conn c
    | k -> Buffer.add_subbytes c.inbuf bytes 0 k
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> close_conn c
  in
  let flush_conn c =
    let pending = Buffer.length c.outbuf - c.sent in
    if pending > 0 then
      match Unix.write_substring c.fd (Buffer.contents c.outbuf) c.sent pending with
      | k ->
        c.sent <- c.sent + k;
        if c.sent = Buffer.length c.outbuf then begin
          Buffer.clear c.outbuf;
          c.sent <- 0
        end
      | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) -> ()
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> close_conn c
  in
  report
    (Printf.sprintf "serving %s (n=%d, game=%s, %d records) on %s" path (Service.n service)
       (Service.game service) (Service.length service) (addr_to_string addr));
  let draining = ref false in
  let finished = ref false in
  (try
     while not !finished do
       if Atomic.get stop then draining := true;
       let conn_list = Hashtbl.fold (fun _ c acc -> c :: acc) conns [] in
       let writable = List.filter (fun c -> Buffer.length c.outbuf > c.sent) conn_list in
       if !draining && writable = [] then finished := true
       else begin
         let rds = if !draining then [] else listen_fd :: List.map (fun c -> c.fd) conn_list in
         let wrs = List.map (fun c -> c.fd) writable in
         match Unix.select rds wrs [] 0.2 with
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
         | rready, wready, _ ->
           if List.mem listen_fd rready then accept_all ();
           List.iter
             (fun fd ->
               if fd <> listen_fd then
                 match Hashtbl.find_opt conns fd with Some c -> read_conn c | None -> ())
             rready;
           (* gather this round's complete lines and evaluate them as
              one concurrent batch on the pool domains *)
           let batch =
             Hashtbl.fold (fun _ c acc -> List.map (fun l -> (c, l)) (take_lines c) @ acc) conns []
           in
           if batch <> [] then begin
             let results = Nf_util.Pool.parallel_map (fun (_, line) -> handle_line service line) batch in
             List.iter2
               (fun (c, _) (resp, action) ->
                 Buffer.add_string c.outbuf resp;
                 incr served;
                 match action with `Shutdown -> Atomic.set stop true | `Continue -> ())
               batch results
           end;
           List.iter
             (fun fd -> match Hashtbl.find_opt conns fd with Some c -> flush_conn c | None -> ())
             wready
       end
     done
   with e ->
     (* tear down sockets before re-raising: the daemon must never leak
        a bound socket path *)
     Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) conns;
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     cleanup_addr ();
     List.iter (fun restore -> restore ()) restores;
     raise e);
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) conns;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  cleanup_addr ();
  List.iter (fun restore -> restore ()) restores;
  report (Printf.sprintf "shutdown after %d request(s)" !served)
