(* The socket-independent query engine behind the daemon.

   One [Service.t] wraps a mapped store plus the derived read
   structures, all built lazily and guarded for concurrent use from the
   pool domains the server dispatches requests on:

   - per-game α-interval indexes (built on the first stable-at for that
     game column, from one streaming pass over the records);
   - a graph6 -> ordinal table for entry lookups;
   - the figure-sweep response cache, keyed by (game, n, α-grid) — the
     sweep is deterministic, so a cached CSV is byte-identical to a
     recomputed one, and to what [store query --figures --csv] writes.

   Parity is the contract: every answer below reproduces the in-process
   [Nf_store.Query] result byte-for-byte.  stable-at mirrors
   [Query.game_entries]' content dispatch (and its rejection message),
   figure CSVs call the same [Figures.sweep_via]/[sweep_game_via]
   functions with the same default grid, and export rebuilds the same
   [Dataset] entries [Query.to_csv] serializes. *)

module Layout = Nf_store.Layout
module Interval = Nf_util.Interval
module Rat = Nf_util.Rat
module Figures = Nf_analysis.Figures

type column = Col_interval | Col_union

type t = {
  store : Mmap_reader.t;
  lock : Mutex.t;
  mutable indexes : (string * Alpha_index.t) list;
  mutable by_graph6 : (string, int) Hashtbl.t option;
  figure_cache : (string, string) Hashtbl.t;
  mutable figure_hits : int;
  mutable requests : int;
}

let create ?cache_chunks ~path () =
  {
    store = Mmap_reader.open_store ?cache_chunks ~path ();
    lock = Mutex.create ();
    indexes = [];
    by_graph6 = None;
    figure_cache = Hashtbl.create 8;
    figure_hits = 0;
    requests = 0;
  }

let store t = t.store
let n t = Mmap_reader.n t.store
let game t = Mmap_reader.game t.store
let length t = Mmap_reader.length t.store

let tick_request t =
  Mutex.lock t.lock;
  t.requests <- t.requests + 1;
  Mutex.unlock t.lock

(* the game a bare query (no --game) means on this store: the interval
   column of a classic store, the one game of a single-game store *)
let default_game t =
  match Mmap_reader.content t.store with
  | Layout.Classic _ -> "bcg"
  | Layout.Game _ -> game t

(* read-side mirror of [Query.game_entries]' dispatch, same rejection
   text so remote and in-process errors agree *)
let column t ~game:want =
  let reject () =
    invalid_arg
      (Printf.sprintf "Query.game_entries: store carries %S annotations, not %S" (game t) want)
  in
  match Mmap_reader.content t.store with
  | Layout.Classic { with_ucg } ->
    if want = "bcg" then Col_interval
    else if want = "ucg" then if with_ucg then Col_union else reject ()
    else reject ()
  | Layout.Game { tag; union } -> (
    match Nf_store.Build.content_of_game want with
    | Layout.Game { tag = want_tag; union = _ } when want_tag = tag ->
      if union then Col_union else Col_interval
    | _ -> reject ()
    | exception Invalid_argument _ -> reject ())

let pieces_of col (r : Layout.record) =
  match col with
  | Col_interval -> [ r.Layout.bcg ]
  | Col_union -> ( match r.Layout.ucg with Some u -> Interval.Union.to_list u | None -> [])

let index t ~game:want =
  let col = column t ~game:want in
  Mutex.lock t.lock;
  let hit = List.assoc_opt want t.indexes in
  Mutex.unlock t.lock;
  match hit with
  | Some idx -> idx
  | None ->
    (* build outside the lock: one streaming pass materializes just the
       regions, never the volume; a concurrent duplicate build yields an
       identical structure and the second insert is dropped *)
    let count = length t in
    let regions = Array.make count [] in
    Mmap_reader.iter t.store (fun i r -> regions.(i) <- pieces_of col r);
    let idx = Alpha_index.build ~count ~pieces:(Array.get regions) in
    Mutex.lock t.lock;
    (if not (List.mem_assoc want t.indexes) then t.indexes <- (want, idx) :: t.indexes);
    let idx = List.assoc want t.indexes in
    Mutex.unlock t.lock;
    idx

let stable_ids t ~game ~alpha = Alpha_index.stable_at (index t ~game) ~alpha
let stable_graph6 t ~game ~alpha = List.map (Mmap_reader.graph6 t.store) (stable_ids t ~game ~alpha)

let find_entry t ~graph6 =
  let table =
    Mutex.lock t.lock;
    let hit = t.by_graph6 in
    Mutex.unlock t.lock;
    match hit with
    | Some tbl -> tbl
    | None ->
      let tbl = Hashtbl.create (length t) in
      Mmap_reader.iter t.store (fun i r -> Hashtbl.replace tbl r.Layout.graph6 i);
      Mutex.lock t.lock;
      (if t.by_graph6 = None then t.by_graph6 <- Some tbl);
      let tbl = Option.get t.by_graph6 in
      Mutex.unlock t.lock;
      tbl
  in
  match Hashtbl.find_opt table graph6 with
  | Some i -> Some (i, Mmap_reader.record t.store i)
  | None -> None

(* the (label, exact region) lines an entry renders as — one pair per
   column the store carries.  Pure in (content, record) so the CLI's
   in-process path renders entries with the same function the daemon
   uses. *)
let region_strings_of ~content (r : Layout.record) =
  let union_str () =
    Interval.Union.to_string (Option.value ~default:Interval.Union.empty r.Layout.ucg)
  in
  match content with
  | Layout.Classic { with_ucg } ->
    ("bcg", Interval.to_string r.Layout.bcg) :: (if with_ucg then [ ("ucg", union_str ()) ] else [])
  | Layout.Game { union; _ } ->
    [
      ( Nf_store.Build.game_of_content content,
        if union then union_str () else Interval.to_string r.Layout.bcg );
    ]

let region_strings t r = region_strings_of ~content:(Mmap_reader.content t.store) r

let stable_graphs t ~game ~alpha =
  List.map (fun s -> Nf_graph.Graph6.decode s) (stable_graph6 t ~game ~alpha)

let figure_csv t ?grid () =
  let grid_list = match grid with Some g -> g | None -> Nf_analysis.Sweep.paper_grid in
  let key =
    Printf.sprintf "%s|%d|%s" (game t) (n t)
      (String.concat ";" (List.map Rat.to_string grid_list))
  in
  Mutex.lock t.lock;
  let hit = Hashtbl.find_opt t.figure_cache key in
  if hit <> None then t.figure_hits <- t.figure_hits + 1;
  Mutex.unlock t.lock;
  match hit with
  | Some csv -> csv
  | None ->
    let csv =
      match Mmap_reader.content t.store with
      | Layout.Classic { with_ucg = true } ->
        Figures.to_csv
          (Figures.sweep_via
             ~bcg:(fun ~alpha -> stable_graphs t ~game:"bcg" ~alpha)
             ~ucg:(fun ~alpha -> stable_graphs t ~game:"ucg" ~alpha)
             ~grid:grid_list ())
      | Layout.Classic { with_ucg = false } | Layout.Game _ ->
        let name = game t in
        let packed = Netform.Game_registry.find_exn name in
        Figures.game_csv
          (Figures.sweep_game_via packed
             ~stable:(fun ~alpha -> stable_graphs t ~game:name ~alpha)
             ~grid:grid_list ())
    in
    Mutex.lock t.lock;
    Hashtbl.replace t.figure_cache key csv;
    Mutex.unlock t.lock;
    csv

(* same entries [Query.to_entries] builds, so [Dataset.to_csv] emits the
   same bytes as [store export] *)
let export_csv t =
  let entries = ref [] in
  Mmap_reader.iter t.store (fun _ r ->
      entries :=
        {
          Nf_analysis.Dataset.graph = Nf_graph.Graph6.decode r.Layout.graph6;
          bcg_stable = r.Layout.bcg;
          ucg_nash = r.Layout.ucg;
        }
        :: !entries);
  Nf_analysis.Dataset.to_csv (List.rev !entries)

type stats = {
  records : int;
  chunks : int;
  volumes : int;
  cached_chunks : int;
  indexed_games : (string * int) list;  (* game, distinct endpoints *)
  figure_cache_entries : int;
  figure_cache_hits : int;
  requests : int;
}

let stats t =
  Mutex.lock t.lock;
  let indexed =
    List.map (fun (g, idx) -> (g, Array.length (Alpha_index.endpoints idx))) t.indexes
  in
  let s =
    {
      records = Mmap_reader.length t.store;
      chunks = Mmap_reader.chunks t.store;
      volumes = List.length (Mmap_reader.volumes t.store);
      cached_chunks = 0;
      indexed_games = List.sort compare indexed;
      figure_cache_entries = Hashtbl.length t.figure_cache;
      figure_cache_hits = t.figure_hits;
      requests = t.requests;
    }
  in
  Mutex.unlock t.lock;
  { s with cached_chunks = Mmap_reader.cached_chunks t.store }
