let table values n = if n >= 0 && n < Array.length values then Some values.(n) else None

let graphs =
  table [| 1; 1; 2; 4; 11; 34; 156; 1044; 12346; 274668; 12005168; 1018997864 |]

let connected_graphs =
  table [| 1; 1; 1; 2; 6; 21; 112; 853; 11117; 261080; 11716571; 1006700565 |]

let trees = table [| 1; 1; 1; 1; 2; 3; 6; 11; 23; 47; 106; 235; 551 |]
