module Graph = Nf_graph.Graph
module Ahu = Nf_iso.Ahu

let cache : (int, Graph.t list) Hashtbl.t = Hashtbl.create 8
let cache_mutex = Mutex.create ()

let rec unlabeled_trees n =
  if n < 1 then invalid_arg "Trees.unlabeled_trees: need n >= 1";
  match Mutex.protect cache_mutex (fun () -> Hashtbl.find_opt cache n) with
  | Some trees -> trees
  | None ->
    let trees =
      if n = 1 then [ Graph.empty 1 ]
      else begin
        (* every tree on n vertices is a tree on n-1 plus a leaf *)
        let seen = Hashtbl.create 64 in
        let acc = ref [] in
        List.iter
          (fun smaller ->
            for attach = 0 to n - 2 do
              let bigger = Graph.add_vertex smaller (Nf_util.Bitset.singleton attach) in
              let key = Ahu.encode bigger in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.add seen key ();
                acc := bigger :: !acc
              end
            done)
          (unlabeled_trees (n - 1));
        List.rev !acc
      end
    in
    Mutex.protect cache_mutex (fun () ->
        match Hashtbl.find_opt cache n with
        | Some existing -> existing
        | None ->
          Hashtbl.add cache n trees;
          trees)

let count_unlabeled n = List.length (unlabeled_trees n)

let iter_labeled_trees n f =
  if n < 1 || n > 9 then invalid_arg "Trees.iter_labeled_trees: order out of range";
  if n = 1 then f (Graph.empty 1)
  else if n = 2 then f (Graph.add_edge (Graph.empty 2) 0 1)
  else begin
    let code = Array.make (n - 2) 0 in
    let rec fill k =
      if k = n - 2 then f (Nf_graph.Trees_prufer.decode n code)
      else
        for v = 0 to n - 1 do
          code.(k) <- v;
          fill (k + 1)
        done
    in
    fill 0
  end

let count_labeled n =
  if n < 1 then invalid_arg "Trees.count_labeled"
  else if n <= 2 then 1
  else int_of_float (float_of_int n ** float_of_int (n - 2))
