module Graph = Nf_graph.Graph
module Canon = Nf_iso.Canon
module Bitset = Nf_util.Bitset

let cache : (int, Graph.t list) Hashtbl.t = Hashtbl.create 8

let clear_cache () = Hashtbl.reset cache

let rec all_graphs n =
  if n < 0 || n > 10 then invalid_arg "Unlabeled.all_graphs: order out of range";
  match Hashtbl.find_opt cache n with
  | Some graphs -> graphs
  | None ->
    let graphs =
      if n = 0 then [ Graph.empty 0 ]
      else begin
        let seen = Hashtbl.create 1024 in
        let acc = ref [] in
        List.iter
          (fun smaller ->
            Nf_util.Subset.iter_subsets (Bitset.full (n - 1)) (fun nbrs ->
                let candidate = Graph.add_vertex smaller nbrs in
                let canon = Canon.canonical_form candidate in
                let key = Graph.adjacency_key canon in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.add seen key ();
                  acc := canon :: !acc
                end))
          (all_graphs (n - 1));
        List.rev !acc
      end
    in
    Hashtbl.add cache n graphs;
    graphs

let connected_graphs n = List.filter Nf_graph.Connectivity.is_connected (all_graphs n)
let iter_connected n f = List.iter f (connected_graphs n)
let count_all n = List.length (all_graphs n)
let count_connected n = List.length (connected_graphs n)
