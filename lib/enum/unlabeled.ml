module Graph = Nf_graph.Graph
module Canon = Nf_iso.Canon
module Refine = Nf_iso.Refine
module Bitset = Nf_util.Bitset
module Pool = Nf_util.Pool

let max_order = 11

(* The reference (canonize + dedup) path serves every order up to this; it
   also fixes the historical output order that downstream annotation caches
   and golden outputs depend on.  Larger orders go through canonical
   augmentation. *)
let reference_max = 7

let cache : (int, Graph.t list) Hashtbl.t = Hashtbl.create 8
let connected_cache : (int, Graph.t list) Hashtbl.t = Hashtbl.create 8
let cache_mutex = Mutex.create ()

let clear_cache () =
  Mutex.protect cache_mutex (fun () ->
      Hashtbl.reset cache;
      Hashtbl.reset connected_cache)

let cached table n = Mutex.protect cache_mutex (fun () -> Hashtbl.find_opt table n)

(* computed outside the lock: levels fan out across the domain pool, and a
   duplicated computation on a concurrent miss is benign because the result
   is deterministic — first insertion wins *)
let store table n value =
  Mutex.protect cache_mutex (fun () ->
      match Hashtbl.find_opt table n with
      | Some existing -> existing
      | None ->
        Hashtbl.add table n value;
        value)

(* ---------------- reference enumerator (generate, canonize, dedup) ------
   Every graph on [k+1] vertices is some graph on [k] vertices plus one more
   vertex with a choice of neighborhood; materialize all |G(k)| * 2^k
   augmentations, canonize them (in parallel, fixed-size batches), and keep
   the first representative of each canonical form.  Quadratic in rejected
   duplicates, but exact and order-stable: the parity oracle for the
   canonical-augmentation path below. *)

let batch_size = 4096

let reference_level n smaller =
  let seen = Hashtbl.create 1024 in
  let acc = ref [] in
  let batch = ref [] in
  let batch_len = ref 0 in
  let flush () =
    if !batch_len > 0 then begin
      let candidates = Array.of_list (List.rev !batch) in
      batch := [];
      batch_len := 0;
      let canons = Pool.parallel_map_array Canon.canonical_form candidates in
      Array.iter
        (fun canon ->
          let key = Graph.adjacency_key canon in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            acc := canon :: !acc
          end)
        canons
    end
  in
  List.iter
    (fun g ->
      Nf_util.Subset.iter_subsets (Bitset.full (n - 1)) (fun nbrs ->
          batch := Graph.add_vertex g nbrs :: !batch;
          incr batch_len;
          if !batch_len >= batch_size then flush ()))
    smaller;
  flush ();
  List.rev !acc

(* ---------------- canonical augmentation (McKay) -------------------------

   Isomorph-free generation without a seen-table.  A child on [k+1] vertices
   is [parent + new vertex with neighborhood S]; each isomorphism class is
   produced exactly once because

   - neighborhoods [S] range only over orbit representatives of the
     parent's automorphism group acting on subsets, so a parent never
     produces two isomorphic children through symmetric neighborhoods, and
   - a child is accepted only if its new vertex lies in the {e canonical
     deleted-vertex orbit}: an isomorphism-invariant choice of one vertex
     orbit per child class (see [accepts]).  Deleting that orbit's vertex
     recovers the unique parent class, so distinct parents never produce
     isomorphic children either.

   The invariant vertex choice is made in two stages so that the expensive
   automorphism search runs only on ties: the chosen orbit is defined to lie
   inside the last cell of the child's equitable degree refinement (an
   isomorphism-invariant cell, since refinement is equivariant and cell
   order depends only on invariants).  If the new vertex is outside that
   cell the child is rejected outright; if the cell is the singleton [new
   vertex] it is a full orbit and the child is accepted outright.  Only
   when the cell has >= 2 vertices including the new one do we canonize the
   child and compare orbits: the chosen orbit is then the orbit of the
   cell's vertex with the largest canonical label (well defined up to
   automorphism, hence invariant). *)

let last_cell partition =
  let rec go = function
    | [ cell ] -> cell
    | _ :: rest -> go rest
    | [] -> invalid_arg "Unlabeled.last_cell: empty partition"
  in
  go partition

(* Cell order survives refinement (splitting replaces a cell by sub-groups
   in place), so the last refined cell always sits inside the last cell of
   the seed degree partition — the minimum-degree vertices.  A new vertex of
   non-minimal degree can therefore be rejected before refining. *)
let min_degree g =
  let n = Graph.order g in
  let m = ref max_int in
  for v = 0 to n - 1 do
    let d = Graph.degree g v in
    if d < !m then m := d
  done;
  !m

let accepts child =
  let v = Graph.order child - 1 in
  Graph.degree child v = min_degree child
  &&
  let cell = last_cell (Refine.refine child (Refine.degree_partition child)) in
  match cell with
  | [ u ] -> u = v
  | cell when not (List.mem v cell) -> false
  | cell ->
    let f = Canon.full child in
    let w =
      List.fold_left (fun w u -> if f.Canon.perm.(u) > f.Canon.perm.(w) then u else w) v cell
    in
    f.Canon.orbits.(v) = f.Canon.orbits.(w)

(* Orbit representatives (smallest mask per orbit, in ascending mask order)
   of the parent's automorphism group acting on neighbor subsets.  [None]
   for the common rigid case: every subset is its own orbit. *)
let subset_orbit_reps k generators =
  if generators = [] then None
  else begin
    let total = 1 lsl k in
    let seen = Bytes.make total '\000' in
    let image gen mask =
      Bitset.fold (fun v acc -> Bitset.add gen.(v) acc) mask Bitset.empty
    in
    let reps = ref [] in
    for mask = total - 1 downto 0 do
      if Bytes.get seen mask = '\000' then begin
        reps := mask :: !reps;
        let stack = ref [ mask ] in
        Bytes.set seen mask '\001';
        while !stack <> [] do
          match !stack with
          | [] -> ()
          | m :: rest ->
            stack := rest;
            List.iter
              (fun gen ->
                let im = image gen m in
                if Bytes.get seen im = '\000' then begin
                  Bytes.set seen im '\001';
                  stack := im :: !stack
                end)
              generators
        done
      end
    done;
    Some !reps
  end

(* All accepted children of one parent, in ascending neighborhood-mask
   order.  Children keep the parent's labeling with the new vertex last, so
   a representative's every prefix is the representative chain that
   produced it; representatives are deterministic but (unlike the reference
   path) not canonical forms. *)
let children parent =
  let k = Graph.order parent in
  let generators = (Canon.full parent).Canon.generators in
  let add acc mask =
    let child = Graph.add_vertex parent mask in
    if accepts child then child :: acc else acc
  in
  let acc =
    match subset_orbit_reps k generators with
    | None ->
      let acc = ref [] in
      for mask = 0 to (1 lsl k) - 1 do
        acc := add !acc mask
      done;
      !acc
    | Some reps -> List.fold_left add [] reps
  in
  List.rev acc

(* Stream one level: parents are fanned across the domain pool in
   contiguous chunks (each worker computes its parents' child lists), and
   [f] consumes the children sequentially in (parent, mask) order — the
   stream is deterministic and identical whatever the pool width. *)
let parent_chunk = 256

let iter_level_children parents f =
  let parents = Array.of_list parents in
  let total = Array.length parents in
  let pos = ref 0 in
  while !pos < total do
    let len = min parent_chunk (total - !pos) in
    let slice = Array.sub parents !pos len in
    pos := !pos + len;
    let per_parent = Pool.parallel_map_array children slice in
    Array.iter (fun cs -> List.iter f cs) per_parent
  done

let augmentation_level parents =
  let acc = ref [] in
  iter_level_children parents (fun h -> acc := h :: !acc);
  List.rev !acc

(* ---------------- levels, materialized and streaming ------------------- *)

let check_order name n =
  if n < 0 || n > max_order then
    invalid_arg (Printf.sprintf "Unlabeled.%s: order out of range" name)

let rec all_graphs n =
  check_order "all_graphs" n;
  match cached cache n with
  | Some graphs -> graphs
  | None ->
    let graphs =
      if n = 0 then [ Graph.empty 0 ]
      else if n <= reference_max then reference_level n (all_graphs (n - 1))
      else augmentation_level (all_graphs (n - 1))
    in
    store cache n graphs

(* Above this order a level is streamed off its (materialized) parent level
   instead of being built and cached: level n has ~22x more classes than
   level n-1, so holding the parents is cheap while the level itself is
   not. *)
let stream_above = 8

let fold_graphs n f init =
  check_order "fold_graphs" n;
  match cached cache n with
  | Some graphs -> List.fold_left f init graphs
  | None ->
    if n <= stream_above then List.fold_left f init (all_graphs n)
    else begin
      let acc = ref init in
      iter_level_children (all_graphs (n - 1)) (fun h -> acc := f !acc h);
      !acc
    end

let iter_graphs n f = fold_graphs n (fun () g -> f g) ()

let connected_graphs n =
  match cached connected_cache n with
  | Some graphs -> graphs
  | None ->
    let graphs = List.filter Nf_graph.Connectivity.is_connected (all_graphs n) in
    store connected_cache n graphs

let iter_connected n f =
  match cached connected_cache n with
  | Some graphs -> List.iter f graphs
  | None -> iter_graphs n (fun g -> if Nf_graph.Connectivity.is_connected g then f g)

(* Shared chunk assembly: batch a graph stream into bounded arrays in
   stream order.  [name] keys the guard message so each public entry
   point reports itself. *)
let chunked_sink ~name chunk f =
  if chunk < 1 then invalid_arg (Printf.sprintf "Unlabeled.%s: chunk < 1" name);
  let buf = ref [] in
  let len = ref 0 in
  let flush () =
    if !len > 0 then begin
      let arr = Array.of_list (List.rev !buf) in
      buf := [];
      len := 0;
      f arr
    end
  in
  let push g =
    buf := g :: !buf;
    incr len;
    if !len >= chunk then flush ()
  in
  (push, flush)

let iter_connected_chunked ?(chunk = 1024) n f =
  let push, flush = chunked_sink ~name:"iter_connected_chunked" chunk f in
  iter_connected n push;
  flush ()

(* ---------------- sharded enumeration ----------------------------------

   A shard is a deterministic slice of the connected stream — a pure
   function of [(n, i, k)], so independent processes (or machines) can
   each enumerate one shard and the concatenation over [i = 1..k]
   reproduces the unsharded stream exactly, in order:

   - [n <= stream_above]: the level is materialized anyway (and, at
     [n <= reference_max], its historical order comes from the reference
     enumerator, not the augmentation tree), so the split is a balanced
     contiguous index range of the connected level itself.
   - [n > stream_above]: the level only exists as a stream off its
     materialized parents, so the split is a balanced contiguous range
     of the {e parent-prefix}: shard [i] enumerates exactly the subtrees
     of its parents.  Canonical augmentation produces each child class
     under exactly one parent, so shard streams are pairwise disjoint
     and their union is the whole level; parents appear in enumeration
     order, so concatenating the shards in index order is the unsharded
     (parent, neighborhood-mask) stream. *)

let check_shard name (i, k) =
  if k < 1 || i < 1 || i > k then
    invalid_arg (Printf.sprintf "Unlabeled.%s: shard %d/%d out of range (need 1 <= i <= k)" name i k)

(* balanced contiguous ranges: shard i of k over [0, total) *)
let shard_range total (i, k) = ((i - 1) * total / k, i * total / k)

let iter_connected_sharded ?(chunk = 1024) ~shard n f =
  check_shard "iter_connected_sharded" shard;
  check_order "iter_connected_sharded" n;
  let _, k = shard in
  if k = 1 then iter_connected_chunked ~chunk n f
  else begin
    let push, flush = chunked_sink ~name:"iter_connected_sharded" chunk f in
    if n <= stream_above then begin
      let level = Array.of_list (connected_graphs n) in
      let lo, hi = shard_range (Array.length level) shard in
      for idx = lo to hi - 1 do
        push level.(idx)
      done
    end
    else begin
      let parents = Array.of_list (all_graphs (n - 1)) in
      let lo, hi = shard_range (Array.length parents) shard in
      let slice = Array.to_list (Array.sub parents lo (hi - lo)) in
      iter_level_children slice (fun g ->
          if Nf_graph.Connectivity.is_connected g then push g)
    end;
    flush ()
  end

let shard_total ~shard n =
  check_shard "shard_total" shard;
  check_order "shard_total" n;
  if n <= stream_above then
    Option.map
      (fun total ->
        let lo, hi = shard_range total shard in
        hi - lo)
      (Counts.connected_graphs n)
  else
    match (Counts.connected_graphs n, Counts.graphs (n - 1)) with
    | Some total, Some parents when parents > 0 ->
      let lo, hi = shard_range parents shard in
      Some (total * (hi - lo) / parents)
    | _ -> None

let count_all n = fold_graphs n (fun acc _ -> acc + 1) 0

let count_connected n =
  match cached connected_cache n with
  | Some graphs -> List.length graphs
  | None ->
    fold_graphs n (fun acc g -> if Nf_graph.Connectivity.is_connected g then acc + 1 else acc) 0
