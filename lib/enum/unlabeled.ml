module Graph = Nf_graph.Graph
module Canon = Nf_iso.Canon
module Bitset = Nf_util.Bitset
module Pool = Nf_util.Pool

let cache : (int, Graph.t list) Hashtbl.t = Hashtbl.create 8
let cache_mutex = Mutex.create ()
let clear_cache () = Mutex.protect cache_mutex (fun () -> Hashtbl.reset cache)

(* Candidates are canonized through the domain pool in fixed-size batches
   (bounding live memory at one batch of graphs); deduplication stays
   sequential and in candidate order, so the output list is identical to
   the sequential enumeration whatever the pool width. *)
let batch_size = 4096

let level n smaller =
  let seen = Hashtbl.create 1024 in
  let acc = ref [] in
  let batch = ref [] in
  let batch_len = ref 0 in
  let flush () =
    if !batch_len > 0 then begin
      let candidates = Array.of_list (List.rev !batch) in
      batch := [];
      batch_len := 0;
      let canons = Pool.parallel_map_array Canon.canonical_form candidates in
      Array.iter
        (fun canon ->
          let key = Graph.adjacency_key canon in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            acc := canon :: !acc
          end)
        canons
    end
  in
  List.iter
    (fun g ->
      Nf_util.Subset.iter_subsets (Bitset.full (n - 1)) (fun nbrs ->
          batch := Graph.add_vertex g nbrs :: !batch;
          incr batch_len;
          if !batch_len >= batch_size then flush ()))
    smaller;
  flush ();
  List.rev !acc

let rec all_graphs n =
  if n < 0 || n > 10 then invalid_arg "Unlabeled.all_graphs: order out of range";
  match Mutex.protect cache_mutex (fun () -> Hashtbl.find_opt cache n) with
  | Some graphs -> graphs
  | None ->
    (* computed outside the lock: the level fans out across the domain pool,
       and a duplicated computation on a concurrent miss is benign because
       canonical forms are deterministic — first insertion wins *)
    let graphs = if n = 0 then [ Graph.empty 0 ] else level n (all_graphs (n - 1)) in
    Mutex.protect cache_mutex (fun () ->
        match Hashtbl.find_opt cache n with
        | Some existing -> existing
        | None ->
          Hashtbl.add cache n graphs;
          graphs)

let connected_graphs n = List.filter Nf_graph.Connectivity.is_connected (all_graphs n)
let iter_connected n f = List.iter f (connected_graphs n)
let count_all n = List.length (all_graphs n)
let count_connected n = List.length (connected_graphs n)
