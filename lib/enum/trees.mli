(** Enumeration of trees, labeled and unlabeled.

    Trees are the conjectured shape of unilateral-game equilibria for large
    link cost (Fabrikant et al.'s tree conjecture) and the restated scope
    of the paper's Proposition 5, so the experiment harness sweeps over
    them directly rather than filtering general enumeration output. *)

val unlabeled_trees : int -> Nf_graph.Graph.t list
(** All isomorphism classes of free trees on [n ≥ 1] vertices (leaf
    augmentation, deduplicated with AHU encodings); memoized. The memo
    table is mutex-guarded, so concurrent callers from several domains
    are safe (a race at worst duplicates the computation; the first
    insertion wins). *)

val count_unlabeled : int -> int

val iter_labeled_trees : int -> (Nf_graph.Graph.t -> unit) -> unit
(** All [n^(n-2)] labeled trees via Prüfer sequences ([3 ≤ n ≤ 9]); for
    [n = 1, 2] the single tree. *)

val count_labeled : int -> int
(** Cayley's formula [n^(n-2)]. *)
