(** Reference sequence values for validating the enumerators. *)

val graphs : int -> int option
(** OEIS A000088: number of graphs on [n] unlabeled vertices (n ≤ 11). *)

val connected_graphs : int -> int option
(** OEIS A001349 (n ≤ 11). *)

val trees : int -> int option
(** OEIS A000055: free trees (n ≤ 12). *)
