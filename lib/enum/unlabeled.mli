(** Isomorphism-free enumeration of graphs.

    This substrate implements the paper's footnote-8 workload: "enumeration
    of all connected topologies on [n] vertices".  Every graph on [k+1]
    vertices is some graph on [k] vertices plus one more vertex with a
    choice of neighborhood; two engines walk that augmentation tree:

    - a {b reference enumerator} (orders [n <= 7]): materialize every
      [|graphs on k| * 2^k] augmentation, canonize each (batched across the
      {!Nf_util.Pool} domains) and deduplicate by canonical form.  Exact but
      quadratic in rejected duplicates; kept as the parity oracle and to
      preserve the historical output order at small [n].
    - {b canonical augmentation} (McKay-style, orders [n >= 8]):
      neighborhoods range only over orbit representatives of the parent's
      automorphism group (generators exposed by {!Nf_iso.Canon.full}), and a
      child survives only if its new vertex lies in the canonical
      deleted-vertex orbit — an isomorphism-invariant choice resolved by the
      child's equitable refinement, with a full automorphism search only on
      ties.  No seen-table, no duplicate canonizations: each class is
      produced exactly once, in a deterministic order, at near-output-linear
      cost.  Representatives are deterministic per class but, unlike the
      reference path, not canonical forms (canonize explicitly if needed).

    Both engines fan work across the default {!Nf_util.Pool}
    ([NETFORM_JOBS] controls the width); consumption stays sequential in
    (parent, neighborhood) order, so results are identical whatever the pool
    width.

    {b Thread safety:} the level caches are mutex-guarded, so every function
    here may be called from any domain.  Two domains racing on an uncached
    level may both compute it (the deterministic result of the first
    insertion wins); list values handed out are immutable and safe to
    share. *)

val all_graphs : int -> Nf_graph.Graph.t list
(** All isomorphism classes of simple graphs on [n] vertices, one
    representative per class, memoized per level.  [n = 8] (12 346 classes)
    takes well under a second; [n = 9] (274 668 classes) completes in
    seconds but is memory-heavy — prefer {!fold_graphs} /
    {!iter_connected_chunked} there.
    @raise Invalid_argument when [n < 0] or [n > 11]. *)

val fold_graphs : int -> ('a -> Nf_graph.Graph.t -> 'a) -> 'a -> 'a
(** [fold_graphs n f init] folds [f] over every isomorphism class on [n]
    vertices in {!all_graphs} order {e without materializing the level}
    when [n >= 9] (only the parent level is held; the level itself streams
    straight out of the augmentation engine).  Cached levels are reused.
    @raise Invalid_argument when [n < 0] or [n > 11]. *)

val iter_graphs : int -> (Nf_graph.Graph.t -> unit) -> unit
(** [iter_graphs n f] is [fold_graphs] with a unit accumulator. *)

val connected_graphs : int -> Nf_graph.Graph.t list
(** Connected classes only, memoized (the filter used to rerun on every
    call).  Materializes the full level; see {!iter_connected_chunked} for
    the streaming alternative at [n >= 9]. *)

val iter_connected : int -> (Nf_graph.Graph.t -> unit) -> unit
(** Streaming iteration over connected classes in enumeration order; uses
    the {!connected_graphs} cache when warm and streams off {!fold_graphs}
    otherwise. *)

val iter_connected_chunked : ?chunk:int -> int -> (Nf_graph.Graph.t array -> unit) -> unit
(** [iter_connected_chunked ~chunk n f] batches the {!iter_connected}
    stream into arrays of at most [chunk] graphs (default 1024, in
    enumeration order) — the fan-out unit for pipelines that annotate each
    chunk across the {!Nf_util.Pool} without holding the whole level.
    @raise Invalid_argument when [chunk < 1]. *)

val iter_connected_sharded :
  ?chunk:int -> shard:int * int -> int -> (Nf_graph.Graph.t array -> unit) -> unit
(** [iter_connected_sharded ~shard:(i, k) n f] streams shard [i] of a
    [k]-way partition of the {!iter_connected_chunked} stream — a pure
    function of [(n, i, k)], so independent processes can each
    enumerate one shard and concatenating the shards in index order
    ([i = 1..k]) reproduces the unsharded stream exactly, record for
    record.  The split is a balanced contiguous range: of the
    materialized connected level for [n <= 8], and of the {e parents}
    of the canonical-augmentation tree for [n >= 9] (each shard
    enumerates only its parents' subtrees, so the per-shard cost is
    roughly [1/k] of the level plus the shared parent level).  Shards
    are pairwise disjoint and their multiset union is the whole level;
    [~shard:(1, 1)] is exactly {!iter_connected_chunked}.
    @raise Invalid_argument when [chunk < 1], the shard is outside
    [1 <= i <= k], or [n] is out of range. *)

val shard_total : shard:int * int -> int -> int option
(** Expected record count of one shard, without enumerating: exact (a
    slice of the {!Nf_enum.Counts} connected oracle) for [n <= 8]; for
    larger [n] an estimate scaled by the shard's own parent count —
    the honest per-shard progress denominator.  [None] when no oracle
    covers [n]. *)

val count_all : int -> int
val count_connected : int -> int
(** Class counts via {!fold_graphs}: streaming at [n >= 9], so counting to
    the OEIS oracles needs no level materialization. *)

val augmentation_level : Nf_graph.Graph.t list -> Nf_graph.Graph.t list
(** One level of the canonical-augmentation engine: given exactly one
    representative per isomorphism class on [k] vertices, the accepted
    children — exactly one representative per class on [k+1] vertices, in
    deterministic (parent, neighborhood-mask) order.  Exposed for parity
    tests against the reference enumerator and for callers that manage
    their own level storage. *)

val clear_cache : unit -> unit
(** Drop memoized levels (for benchmarks that need cold runs). *)
