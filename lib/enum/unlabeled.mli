(** Isomorphism-free enumeration of graphs.

    This substrate implements the paper's footnote-8 workload: "enumeration
    of all connected topologies on [n] vertices".  Every graph on [k+1]
    vertices is some graph on [k] vertices plus one more vertex with a
    choice of neighborhood, so enumerating level by level and deduplicating
    with canonical forms visits each isomorphism class exactly once in the
    output (at the cost of [|graphs on k| · 2^k] canonical-form calls per
    level).  Levels are memoized: repeated queries are free.

    Canonical forms are computed in parallel across the default
    {!Nf_util.Pool} (batched, [NETFORM_JOBS] controls the width);
    deduplication stays sequential in candidate order, so the returned
    lists are identical whatever the pool width.

    {b Thread safety:} the level cache is mutex-guarded, so every function
    here may be called from any domain.  Two domains racing on an uncached
    level may both compute it (the deterministic result of the first
    insertion wins); list values handed out are immutable and safe to
    share. *)

val all_graphs : int -> Nf_graph.Graph.t list
(** All isomorphism classes of simple graphs on [n] vertices, as canonical
    representatives.  Practical up to [n = 8] in a few seconds ([n = 9]
    takes minutes and ~275k graphs).
    @raise Invalid_argument when [n < 0] or [n > 10]. *)

val connected_graphs : int -> Nf_graph.Graph.t list
val iter_connected : int -> (Nf_graph.Graph.t -> unit) -> unit
val count_all : int -> int
val count_connected : int -> int

val clear_cache : unit -> unit
(** Drop memoized levels (for benchmarks that need cold runs). *)
