(** Exhaustive iteration over labeled graphs on [n] vertices.

    There are [2^(n(n-1)/2)] of them, so this is only sensible for [n ≤ 7]
    (2 097 152 graphs); the isomorphism-free enumerator in {!Unlabeled} is
    the tool for anything bigger.  Used by tests as ground truth against
    the cleverer code paths. *)

val max_order : int
(** Largest [n] accepted (7). *)

val iter_all : int -> (Nf_graph.Graph.t -> unit) -> unit
(** All labeled graphs on [n] vertices.
    @raise Invalid_argument when [n > max_order] or [n < 0]. *)

val iter_connected : int -> (Nf_graph.Graph.t -> unit) -> unit
val count_all : int -> int
val count_connected : int -> int

val graph_of_mask : int -> int -> Nf_graph.Graph.t
(** [graph_of_mask n mask] decodes bit [k] of [mask] as the [k]-th pair in
    lexicographic order [(0,1), (0,2), (1,2), (0,3), ...] — the column-major
    upper triangle, matching graph6 bit order. *)

val mask_of_graph : Nf_graph.Graph.t -> int
