module Graph = Nf_graph.Graph

let max_order = 7

let pairs n =
  let acc = ref [] in
  for j = n - 1 downto 1 do
    for i = j - 1 downto 0 do
      acc := (i, j) :: !acc
    done
  done;
  Array.of_list !acc

let graph_of_mask n mask =
  let ps = pairs n in
  let g = ref (Graph.empty n) in
  Array.iteri (fun k (i, j) -> if mask land (1 lsl k) <> 0 then g := Graph.add_edge !g i j) ps;
  !g

let mask_of_graph g =
  let ps = pairs (Graph.order g) in
  let mask = ref 0 in
  Array.iteri (fun k (i, j) -> if Graph.has_edge g i j then mask := !mask lor (1 lsl k)) ps;
  !mask

let iter_all n f =
  if n < 0 || n > max_order then invalid_arg "Labeled.iter_all: order out of range";
  let bits = n * (n - 1) / 2 in
  for mask = 0 to (1 lsl bits) - 1 do
    f (graph_of_mask n mask)
  done

let iter_connected n f =
  iter_all n (fun g -> if Nf_graph.Connectivity.is_connected g then f g)

let count_all n =
  let c = ref 0 in
  iter_all n (fun _ -> incr c);
  !c

let count_connected n =
  let c = ref 0 in
  iter_connected n (fun _ -> incr c);
  !c
