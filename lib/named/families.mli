(** Parametric graph families.

    These are the building blocks of the paper's examples: stars and
    complete graphs are the efficient topologies (Lemmas 4–5), cycles are
    the first nontrivial stable family (Lemma 6), and circulant /
    generalized-Petersen / LCF graphs generate the regular gallery of
    Section 4.1. *)

val complete : int -> Nf_graph.Graph.t
val path : int -> Nf_graph.Graph.t
val cycle : int -> Nf_graph.Graph.t
(** @raise Invalid_argument for [n < 3]. *)

val star : int -> Nf_graph.Graph.t
(** Center is vertex 0. @raise Invalid_argument for [n < 1]. *)

val wheel : int -> Nf_graph.Graph.t
(** Hub 0 plus a cycle on [1 .. n-1]; [n ≥ 4]. *)

val complete_bipartite : int -> int -> Nf_graph.Graph.t
val complete_multipartite : int list -> Nf_graph.Graph.t
(** Parts of the given sizes; edges between all vertices of distinct
    parts. *)

val hypercube : int -> Nf_graph.Graph.t
(** [hypercube d] is [Q_d] on [2^d] vertices ([0 ≤ d ≤ 5]). *)

val circulant : int -> int list -> Nf_graph.Graph.t
(** [circulant n offsets] joins [i] to [i ± s mod n] for each offset [s]. *)

val generalized_petersen : int -> int -> Nf_graph.Graph.t
(** [generalized_petersen n k] = GP(n,k) on [2n] vertices: outer cycle
    [0..n-1], spokes, inner star polygon with step [k].
    @raise Invalid_argument unless [n ≥ 3] and [1 ≤ k < n/2... ≤]
    ([2k ≠ 0 mod n]). *)

val lcf : int list -> int -> Nf_graph.Graph.t
(** [lcf pattern reps] builds the cubic graph in LCF notation
    [pattern^reps]: a Hamiltonian cycle on [length pattern * reps]
    vertices plus a chord from each vertex [i] to [i + a_i mod n]. *)
