(** The specific graphs named in the paper (Figure 1 and §4.1).

    Each is built from an explicit construction and carries its textbook
    invariants in the documentation; the test suite asserts all of them
    (order, size, regularity, girth, diameter, SRG parameters). *)

val petersen : Nf_graph.Graph.t
(** GP(5,2): the (3,5)-cage and Moore graph, srg(10,3,0,1). *)

val mcgee : Nf_graph.Graph.t
(** The (3,7)-cage: 24 vertices, 36 edges, girth 7 (LCF [12,7,-7]^8). *)

val octahedron : Nf_graph.Graph.t
(** K_{2,2,2}: srg(6,4,2,4). *)

val clebsch : Nf_graph.Graph.t
(** Folded 5-cube on 16 vertices: srg(16,5,0,2). *)

val hoffman_singleton : Nf_graph.Graph.t
(** The (7,5)-cage and Moore graph on 50 vertices: srg(50,7,0,1)
    (Robertson's pentagon–pentagram construction). *)

val desargues : Nf_graph.Graph.t
(** GP(10,3): bipartite cubic distance-regular graph, girth 6,
    diameter 5 — the §4.1 example that is link convex. *)

val dodecahedron : Nf_graph.Graph.t
(** GP(10,2): the planar dodecahedral graph, girth 5, diameter 5 — the
    §4.1 example that is {e not} link convex. *)

val star8 : Nf_graph.Graph.t
(** The 8-vertex star of Figure 1.6. *)

(** Additional cages and symmetric cubic graphs, extending the Moore-bound
    family of Proposition 3 beyond the paper's examples. *)

val heawood : Nf_graph.Graph.t
(** The (3,6)-cage on 14 vertices (LCF [5,-5]^7); meets the girth Moore
    bound exactly. *)

val pappus : Nf_graph.Graph.t
(** Cubic distance-regular graph on 18 vertices, girth 6
    (LCF [5,7,-7,7,-7,-5]^3). *)

val moebius_kantor : Nf_graph.Graph.t
(** GP(8,3): 16 vertices, girth 6. *)

val nauru : Nf_graph.Graph.t
(** GP(12,5): 24 vertices, girth 6. *)

val tutte_coxeter : Nf_graph.Graph.t
(** The (3,8)-cage (Levi graph of GQ(2,2)) on 30 vertices
    (LCF [-13,-9,7,-7,9,13]^5); meets the girth Moore bound exactly. *)

val all : (string * Nf_graph.Graph.t) list
(** Name → graph: Figure 1 order, the §4.1 pair, then the extra cages. *)
