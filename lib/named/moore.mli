(** Moore bounds for regular graphs.

    Proposition 3's lower bound on the price of anarchy is built from
    k-regular graphs whose order is a constant factor of the Moore bound;
    these helpers quantify "how Moore" a given graph is. *)

val bound_diameter : int -> int -> int
(** [bound_diameter k d]: the maximum possible order of a [k]-regular graph
    of diameter [d] — [1 + k·Σ_{i=0}^{d-1}(k-1)^i]. *)

val bound_girth : int -> int -> int
(** [bound_girth k g]: the minimum possible order of a [k]-regular graph of
    girth [g] (the cage lower bound): for odd [g = 2r+1],
    [1 + k·Σ_{i=0}^{r-1}(k-1)^i]; for even [g = 2r],
    [2·Σ_{i=0}^{r-1}(k-1)^i]. *)

val is_moore_graph : Nf_graph.Graph.t -> bool
(** Regular, and order equals {!bound_diameter} for its degree and
    diameter. *)

val moore_ratio : Nf_graph.Graph.t -> float option
(** Order divided by the diameter Moore bound, for regular connected
    graphs; [None] otherwise.  1.0 means the graph is a Moore graph. *)
