module Graph = Nf_graph.Graph

let complete n =
  let g = ref (Graph.empty n) in
  Nf_util.Subset.iter_pairs n (fun i j -> g := Graph.add_edge !g i j);
  !g

let path n = Graph.of_edges n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Families.cycle: need n >= 3";
  Graph.add_edge (path n) 0 (n - 1)

let star n =
  if n < 1 then invalid_arg "Families.star: need n >= 1";
  Graph.of_edges n (List.init (n - 1) (fun i -> (0, i + 1)))

let wheel n =
  if n < 4 then invalid_arg "Families.wheel: need n >= 4";
  let rim = List.init (n - 1) (fun i -> (1 + i, 1 + ((i + 1) mod (n - 1)))) in
  let spokes = List.init (n - 1) (fun i -> (0, 1 + i)) in
  Graph.of_edges n (spokes @ List.filter (fun (a, b) -> a <> b) rim)

let complete_multipartite parts =
  if List.exists (fun p -> p <= 0) parts then
    invalid_arg "Families.complete_multipartite: empty part";
  let n = List.fold_left ( + ) 0 parts in
  (* part id per vertex *)
  let part_of = Array.make n 0 in
  let _ =
    List.fold_left
      (fun (next, id) size ->
        for v = next to next + size - 1 do
          part_of.(v) <- id
        done;
        (next + size, id + 1))
      (0, 0) parts
  in
  let g = ref (Graph.empty n) in
  Nf_util.Subset.iter_pairs n (fun i j ->
      if part_of.(i) <> part_of.(j) then g := Graph.add_edge !g i j);
  !g

let complete_bipartite a b = complete_multipartite [ a; b ]

let hypercube d =
  if d < 0 || d > 5 then invalid_arg "Families.hypercube: dimension out of range";
  let n = 1 lsl d in
  let g = ref (Graph.empty n) in
  for v = 0 to n - 1 do
    for bit = 0 to d - 1 do
      let w = v lxor (1 lsl bit) in
      if v < w then g := Graph.add_edge !g v w
    done
  done;
  !g

let circulant n offsets =
  if n < 1 then invalid_arg "Families.circulant: need n >= 1";
  let g = ref (Graph.empty n) in
  List.iter
    (fun s ->
      let s = ((s mod n) + n) mod n in
      if s <> 0 then
        for v = 0 to n - 1 do
          let w = (v + s) mod n in
          if v <> w then g := Graph.add_edge !g v w
        done)
    offsets;
  !g

let generalized_petersen n k =
  if n < 3 || k < 1 || 2 * k = n || k >= n then
    invalid_arg "Families.generalized_petersen: bad parameters";
  let g = ref (Graph.empty (2 * n)) in
  for i = 0 to n - 1 do
    g := Graph.add_edge !g i ((i + 1) mod n);
    (* outer cycle *)
    g := Graph.add_edge !g i (n + i);
    (* spoke *)
    g := Graph.add_edge !g (n + i) (n + ((i + k) mod n))
    (* inner star polygon *)
  done;
  !g

let lcf pattern reps =
  let len = List.length pattern in
  if len = 0 || reps < 1 then invalid_arg "Families.lcf: empty pattern";
  let n = len * reps in
  let chords = Array.of_list pattern in
  let g = ref (cycle n) in
  for i = 0 to n - 1 do
    let jump = chords.(i mod len) in
    let j = ((i + jump) mod n + n) mod n in
    if i <> j then g := Graph.add_edge !g i j
  done;
  !g
