module Graph = Nf_graph.Graph

let petersen = Families.generalized_petersen 5 2
let mcgee = Families.lcf [ 12; 7; -7 ] 8
let octahedron = Families.complete_multipartite [ 2; 2; 2 ]

(* Folded 5-cube: 4-bit vectors, adjacent when the XOR has weight 1 (cube
   edges) or weight 4 (antipodal fold). *)
let clebsch =
  let weight x =
    let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
    go 0 x
  in
  let g = ref (Graph.empty 16) in
  Nf_util.Subset.iter_pairs 16 (fun i j ->
      let w = weight (i lxor j) in
      if w = 1 || w = 4 then g := Graph.add_edge !g i j);
  !g

(* Robertson's construction: pentagons P_0..P_4 and pentagrams Q_0..Q_4;
   vertex j of P_h is adjacent to vertex (h*i + j mod 5) of Q_i.
   P_h occupies vertices 5h..5h+4 (cycle step 1), Q_i occupies vertices
   25+5i..25+5i+4 (cycle step 2). *)
let hoffman_singleton =
  let g = ref (Graph.empty 50) in
  let p h j = (5 * h) + (j mod 5)
  and q i j = 25 + (5 * i) + (j mod 5) in
  for h = 0 to 4 do
    for j = 0 to 4 do
      g := Graph.add_edge !g (p h j) (p h ((j + 1) mod 5));
      g := Graph.add_edge !g (q h j) (q h ((j + 2) mod 5))
    done
  done;
  for h = 0 to 4 do
    for i = 0 to 4 do
      for j = 0 to 4 do
        g := Graph.add_edge !g (p h j) (q i (((h * i) + j) mod 5))
      done
    done
  done;
  !g

let desargues = Families.generalized_petersen 10 3
let dodecahedron = Families.generalized_petersen 10 2
let star8 = Families.star 8
let heawood = Families.lcf [ 5; -5 ] 7
let pappus = Families.lcf [ 5; 7; -7; 7; -7; -5 ] 3
let moebius_kantor = Families.generalized_petersen 8 3
let nauru = Families.generalized_petersen 12 5
let tutte_coxeter = Families.lcf [ -13; -9; 7; -7; 9; 13 ] 5

let all =
  [
    ("petersen", petersen);
    ("mcgee", mcgee);
    ("octahedron", octahedron);
    ("clebsch", clebsch);
    ("hoffman-singleton", hoffman_singleton);
    ("star8", star8);
    ("desargues", desargues);
    ("dodecahedron", dodecahedron);
    ("heawood", heawood);
    ("pappus", pappus);
    ("moebius-kantor", moebius_kantor);
    ("nauru", nauru);
    ("tutte-coxeter", tutte_coxeter);
  ]
