module Ext_int = Nf_util.Ext_int

let geometric_sum base terms =
  let rec go acc power i = if i >= terms then acc else go (acc + power) (power * base) (i + 1) in
  go 0 1 0

let bound_diameter k d =
  if k < 1 || d < 0 then invalid_arg "Moore.bound_diameter";
  1 + (k * geometric_sum (k - 1) d)

let bound_girth k g =
  if k < 2 || g < 3 then invalid_arg "Moore.bound_girth";
  if g mod 2 = 1 then 1 + (k * geometric_sum (k - 1) ((g - 1) / 2))
  else 2 * geometric_sum (k - 1) (g / 2)

let moore_ratio g =
  match Nf_graph.Props.regularity g with
  | None -> None
  | Some k -> (
    match Nf_graph.Apsp.diameter g with
    | Ext_int.Inf -> None
    | Ext_int.Fin d ->
      if k < 1 || d < 1 then None
      else Some (float_of_int (Nf_graph.Graph.order g) /. float_of_int (bound_diameter k d)))

let is_moore_graph g = moore_ratio g = Some 1.0
