type series = {
  label : string;
  marker : char;
  points : (float * float) list;
}

let finite_points s = List.filter (fun (x, y) -> Float.is_finite x && Float.is_finite y) s.points

let render ?(width = 72) ?(height = 20) ?(x_label = "x") ?(y_label = "y") ~title series =
  let all = List.concat_map finite_points series in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  (match all with
  | [] -> Buffer.add_string buf "  (no finite data)\n"
  | (x0, y0) :: rest ->
    let xmin, xmax, ymin, ymax =
      List.fold_left
        (fun (xmin, xmax, ymin, ymax) (x, y) ->
          (Float.min xmin x, Float.max xmax x, Float.min ymin y, Float.max ymax y))
        (x0, x0, y0, y0) rest
    in
    let xspan = if xmax > xmin then xmax -. xmin else 1. in
    let yspan = if ymax > ymin then ymax -. ymin else 1. in
    let grid = Array.make_matrix height width ' ' in
    let rasterize s =
      List.iter
        (fun (x, y) ->
          let col = int_of_float ((x -. xmin) /. xspan *. float_of_int (width - 1)) in
          let row = int_of_float ((y -. ymin) /. yspan *. float_of_int (height - 1)) in
          let row = height - 1 - row in
          grid.(row).(col) <- s.marker)
        (finite_points s)
    in
    List.iter rasterize series;
    let y_axis_width = 10 in
    for r = 0 to height - 1 do
      let yval = ymax -. (float_of_int r /. float_of_int (height - 1) *. yspan) in
      Buffer.add_string buf (Printf.sprintf "%8.3f |" yval);
      Buffer.add_string buf (String.init width (fun c -> grid.(r).(c)));
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf (String.make y_axis_width ' ');
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "%s%-*.3f%*.3f\n"
         (String.make y_axis_width ' ')
         (width / 2) xmin (width - (width / 2)) xmax);
    Buffer.add_string buf (Printf.sprintf "          x: %s   y: %s\n" x_label y_label));
  List.iter
    (fun s -> Buffer.add_string buf (Printf.sprintf "          [%c] %s\n" s.marker s.label))
    series;
  Buffer.contents buf
