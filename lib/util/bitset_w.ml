(* Multi-word bitset rows stored inside flat int slabs.

   The one-word [Bitset] caps everything at 62 vertices.  This module is
   the layer that breaks the ceiling: a "row" is [words] consecutive ints
   inside a caller-owned [int array] slab, each word carrying
   [bits_per_word] = 62 usable bits, so word 0 of any row is exactly the
   old one-word [Bitset.t] representation.  Keeping 62 (not 63) bits per
   word means a one-word row and a [Bitset.t] are the same integer —
   which is what lets the graph/kernel fast paths stay byte-compatible
   with the single-word code they replaced.

   There is deliberately no abstract type here: the graph kernel and the
   persistent graph own their slabs and want zero-overhead indexed access,
   so this module is a namespace of loops over [(array, offset, words)]
   triples rather than a container. *)

let bits_per_word = Bitset.max_size (* 62 *)

let words_for n = if n <= 0 then 1 else (n + bits_per_word - 1) / bits_per_word

(* mask of the [k] low bits, 0 <= k <= bits_per_word *)
let full_word k = if k <= 0 then 0 else (1 lsl k) - 1

(* full-row mask for [n] elements written into [a] at [off] *)
let blit_full_mask a off n words =
  for k = 0 to words - 1 do
    let lo = k * bits_per_word in
    let bits = min bits_per_word (max 0 (n - lo)) in
    a.(off + k) <- full_word bits
  done

let word_of j = j / bits_per_word
let bit_of j = 1 lsl (j mod bits_per_word)
let get a off j = a.(off + word_of j) land bit_of j <> 0
let set a off j = a.(off + word_of j) <- a.(off + word_of j) lor bit_of j
let clear a off j = a.(off + word_of j) <- a.(off + word_of j) land lnot (bit_of j)
let toggle a off j = a.(off + word_of j) <- a.(off + word_of j) lxor bit_of j

let popcount x =
  let rec count acc x = if x = 0 then acc else count (acc + 1) (x land (x - 1)) in
  count 0 x

let cardinal a off words =
  let total = ref 0 in
  for k = 0 to words - 1 do
    total := !total + popcount a.(off + k)
  done;
  !total

let is_empty_row a off words =
  let rec go k = k >= words || (a.(off + k) = 0 && go (k + 1)) in
  go 0

(* Index of an isolated bit [b] (a power of two): branch cascade instead
   of a linear probe, shared with the kernel's frontier loops. *)
let bit_index b =
  let k = if b land 0xFFFFFFFF = 0 then 32 else 0 in
  let b = b lsr k in
  let k2 = if b land 0xFFFF = 0 then 16 else 0 in
  let b = b lsr k2 in
  let k3 = if b land 0xFF = 0 then 8 else 0 in
  let b = b lsr k3 in
  let k4 = if b land 0xF = 0 then 4 else 0 in
  let b = b lsr k4 in
  let k5 = if b land 0x3 = 0 then 2 else 0 in
  let b = b lsr k5 in
  k + k2 + k3 + k4 + k5 + (b lsr 1)

let iter f a off words =
  for k = 0 to words - 1 do
    let base = k * bits_per_word in
    let w = ref a.(off + k) in
    while !w <> 0 do
      let b = !w land - !w in
      f (base + bit_index b);
      w := !w lxor b
    done
  done

let equal_rows a aoff b boff words =
  let rec go k = k >= words || (a.(aoff + k) = b.(boff + k) && go (k + 1)) in
  go 0

let union_into dst doff src soff words =
  for k = 0 to words - 1 do
    dst.(doff + k) <- dst.(doff + k) lor src.(soff + k)
  done
