(** Exact rational arithmetic on machine integers.

    Every stability threshold in the connection games is a ratio of two
    small integers (differences of hop-count sums divided by an edge-count
    difference), so normalized [int]-backed rationals are exact for the
    whole analysis.  Denominators are kept strictly positive. *)

type t = private {
  num : int;  (** numerator *)
  den : int;  (** denominator, always > 0 *)
}

val make : int -> int -> t
(** [make num den] is the normalized rational [num/den].
    @raise Division_by_zero when [den = 0]. *)

val of_int : int -> t
val zero : t
val one : t
val num : t -> int
val den : t -> int
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val is_integer : t -> bool
val to_float : t -> float
val pp : Format.formatter -> t -> unit
val to_string : t -> string
