(** Exact rational arithmetic on machine integers.

    Every stability threshold in the connection games is a ratio of two
    small integers (differences of hop-count sums divided by an edge-count
    difference), so normalized [int]-backed rationals are exact for the
    whole analysis.  Denominators are kept strictly positive. *)

type t = private {
  num : int;  (** numerator *)
  den : int;  (** denominator, always > 0 *)
}

val make : int -> int -> t
(** [make num den] is the normalized rational [num/den].
    @raise Division_by_zero when [den = 0]. *)

val of_int : int -> t
val zero : t
val one : t
val num : t -> int
val den : t -> int
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val is_integer : t -> bool
val to_float : t -> float
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_string : string -> t
(** Exact inverse of {!to_string}: parses ["P"] and ["P/Q"] with [P], [Q]
    strict decimal integers (optional leading [-], digits only — no hex,
    no [_] separators, no floats).  [of_string (to_string r) = r] for
    every [t]; non-normalized inputs such as ["2/4"] or ["1/-2"] are
    accepted and normalized by {!make}.
    @raise Invalid_argument on anything else (including ["1/0"]). *)

val of_string_opt : string -> t option
(** Like {!of_string}, [None] instead of raising. *)
