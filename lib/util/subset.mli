(** Enumeration of subsets and combinations of a ground bitset.

    Best-response search in the unilateral game minimizes over all subsets
    of candidate link targets; equilibrium certification enumerates subsets
    of a vertex's incident edges.  Both iterate via this module. *)

val iter_subsets : Bitset.t -> (Bitset.t -> unit) -> unit
(** [iter_subsets ground f] applies [f] to all [2^|ground|] subsets of
    [ground], including the empty set and [ground] itself. *)

val fold_subsets : Bitset.t -> ('a -> Bitset.t -> 'a) -> 'a -> 'a

val exists_subset : Bitset.t -> (Bitset.t -> bool) -> bool
(** Short-circuiting existential over subsets. *)

val iter_subsets_of_size : Bitset.t -> int -> (Bitset.t -> unit) -> unit
(** [iter_subsets_of_size ground k f] applies [f] to every size-[k] subset. *)

val count_subsets : Bitset.t -> int
(** [2^|ground|].
    @raise Invalid_argument when the cardinal is ≥ [Sys.int_size - 1]
    (the shift would overflow the native int). *)

val iter_pairs : int -> (int -> int -> unit) -> unit
(** [iter_pairs n f] applies [f i j] to every pair [0 <= i < j < n]. *)
