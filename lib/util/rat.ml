type t = {
  num : int;
  den : int;
}

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make num den =
  if den = 0 then raise Division_by_zero
  else
    let sign = if den < 0 then -1 else 1 in
    let num = sign * num
    and den = sign * den in
    let g = gcd (abs num) den in
    if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int k = { num = k; den = 1 }
let zero = of_int 0
let one = of_int 1
let num r = r.num
let den r = r.den
let add a b = make ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
let sub a b = make ((a.num * b.den) - (b.num * a.den)) (a.den * b.den)
let mul a b = make (a.num * b.num) (a.den * b.den)

let div a b =
  if b.num = 0 then raise Division_by_zero else make (a.num * b.den) (a.den * b.num)

let neg a = { a with num = -a.num }

(* Cross-multiplication is exact: components stay small in this library. *)
let compare a b = Stdlib.compare (a.num * b.den) (b.num * a.den)
let equal a b = a.num = b.num && a.den = b.den
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let min a b = if Stdlib.( <= ) (compare a b) 0 then a else b
let max a b = if Stdlib.( >= ) (compare a b) 0 then a else b
let is_integer r = r.den = 1
let to_float r = float_of_int r.num /. float_of_int r.den

let pp ppf r =
  if r.den = 1 then Format.fprintf ppf "%d" r.num
  else Format.fprintf ppf "%d/%d" r.num r.den

let to_string r = Format.asprintf "%a" pp r

(* A strict decimal integer: an optional leading '-', then digits only.
   [int_of_string] alone would also admit hex, octal, '+' and '_'
   separators — none of which [to_string] ever emits, and none of which
   a wire protocol should silently accept. *)
let parse_int s =
  let open Stdlib in
  let digits body =
    String.length body > 0 && String.for_all (fun c -> c >= '0' && c <= '9') body
  in
  let body =
    if String.length s > 0 && s.[0] = '-' then String.sub s 1 (String.length s - 1) else s
  in
  if digits body then int_of_string_opt s else None

let of_string_opt s =
  match String.index_opt s '/' with
  | None -> Option.map of_int (parse_int s)
  | Some k -> (
    let p = String.sub s 0 k in
    let q = String.sub s (k + 1) (String.length s - k - 1) in
    match (parse_int p, parse_int q) with
    | Some p, Some q when q <> 0 -> Some (make p q)
    | _ -> None)

let of_string s =
  match of_string_opt s with
  | Some r -> r
  | None ->
    invalid_arg (Printf.sprintf "Rat.of_string: %S is not an integer or P/Q rational" s)
