(** Intervals over the extended rational line.

    Stability regions in the connection games are intervals of link costs
    with rational endpoints that may be open or closed on either side — the
    BCG pairwise-stability region of a graph is [(α_min, α_max]] with
    [α_max] possibly [+∞].  Unions of such intervals arise as the exact set
    of link costs for which a graph is a UCG Nash equilibrium. *)

type endpoint =
  | Neg_inf
  | Finite of Rat.t
  | Pos_inf

type t
(** A possibly-empty interval. *)

val empty : t
val full : t

val make : lo:endpoint -> lo_closed:bool -> hi:endpoint -> hi_closed:bool -> t
(** [make ~lo ~lo_closed ~hi ~hi_closed] normalizes to {!empty} when the
    bounds describe no point.  Infinite endpoints are always treated as
    open. *)

val closed : Rat.t -> Rat.t -> t
(** [closed a b] is [[a, b]]. *)

val open_closed : Rat.t -> endpoint -> t
(** [open_closed a hi] is [(a, hi]] (or [(a, hi)] when [hi] is infinite). *)

val point : Rat.t -> t
val is_empty : t -> bool
val mem : Rat.t -> t -> bool
val bounds : t -> (endpoint * bool * endpoint * bool) option
(** [bounds i] is [Some (lo, lo_closed, hi, hi_closed)] unless [i] is
    empty. *)

val inter : t -> t -> t
val equal : t -> t -> bool
val subset : t -> t -> bool
(** [subset a b] is [true] when every point of [a] lies in [b]. *)

val compare_endpoint : endpoint -> endpoint -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Normalized finite unions of disjoint intervals, kept sorted. *)
module Union : sig
  type interval := t
  type t

  val empty : t
  val of_list : interval list -> t
  (** Sorts, merges overlapping or touching intervals, drops empties. *)

  val to_list : t -> interval list
  val is_empty : t -> bool
  val mem : Rat.t -> t -> bool
  val add : interval -> t -> t
  val union : t -> t -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end
