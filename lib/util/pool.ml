(* Work distribution: each batch is an index range [0, total).  Participants
   (the caller plus the resident workers) claim contiguous chunks from a
   shared atomic cursor and write results into per-index slots, so there is
   no shared mutable state beyond the cursor and the completion counter.
   Completion is tracked as a count of claimed-and-retired items under the
   pool mutex: a worker that wakes up late simply finds the cursor exhausted,
   retires nothing, and goes back to sleep — no participant head-count is
   needed, which is what makes missed wake-ups harmless. *)

type task = {
  body : int -> unit;
  total : int;
  chunk : int;
  next : int Atomic.t;
  mutable retired : int;  (* items claimed and finished; guarded by the pool mutex *)
  mutable failure : (exn * Printexc.raw_backtrace) option;  (* first one wins; guarded *)
}

type t = {
  width : int;
  mutex : Mutex.t;
  work_ready : Condition.t;  (* a new batch was published (or shutdown) *)
  work_done : Condition.t;  (* the current batch fully retired *)
  mutable current : task option;
  mutable epoch : int;  (* bumped once per batch; workers sleep until it moves *)
  mutable stopped : bool;
  busy : bool Atomic.t;  (* held by the coordinating caller for the batch duration *)
  mutable workers : unit Domain.t list;
}

let jobs pool = pool.width

let failed pool task =
  Mutex.lock pool.mutex;
  let f = task.failure <> None in
  Mutex.unlock pool.mutex;
  f

(* Claim chunks until the cursor runs dry.  Called by workers and by the
   coordinator alike; every claimed index is retired exactly once even when
   the body raises, so the coordinator's wait always terminates. *)
let participate pool task =
  let rec loop () =
    let lo = Atomic.fetch_and_add task.next task.chunk in
    if lo < task.total then begin
      let hi = min task.total (lo + task.chunk) in
      if not (failed pool task) then begin
        try
          for i = lo to hi - 1 do
            task.body i
          done
        with exn ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.lock pool.mutex;
          if task.failure = None then task.failure <- Some (exn, bt);
          Mutex.unlock pool.mutex
      end;
      Mutex.lock pool.mutex;
      task.retired <- task.retired + (hi - lo);
      if task.retired >= task.total then Condition.broadcast pool.work_done;
      Mutex.unlock pool.mutex;
      loop ()
    end
  in
  loop ()

let rec worker_loop pool seen_epoch =
  Mutex.lock pool.mutex;
  while (not pool.stopped) && pool.epoch = seen_epoch do
    Condition.wait pool.work_ready pool.mutex
  done;
  if pool.stopped then Mutex.unlock pool.mutex
  else begin
    let epoch = pool.epoch in
    let task = pool.current in
    Mutex.unlock pool.mutex;
    Option.iter (participate pool) task;
    worker_loop pool epoch
  end

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      width = jobs;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      current = None;
      epoch = 0;
      stopped = false;
      busy = Atomic.make false;
      workers = [];
    }
  in
  pool.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool 0));
  pool

let shutdown pool =
  Mutex.lock pool.mutex;
  let workers = pool.workers in
  pool.stopped <- true;
  pool.workers <- [];
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.mutex;
  List.iter Domain.join workers

let sequential_for total body =
  for i = 0 to total - 1 do
    body i
  done

let run pool total body =
  if total > 0 then
    if
      pool.width <= 1 || total = 1 || pool.stopped
      || not (Atomic.compare_and_set pool.busy false true)
    then sequential_for total body
    else begin
      (* several chunks per participant so uneven item costs still balance,
         but chunks big enough that the cursor is not contended per item *)
      let chunk = max 1 (min 1024 (total / (pool.width * 8))) in
      let task = { body; total; chunk; next = Atomic.make 0; retired = 0; failure = None } in
      Mutex.lock pool.mutex;
      pool.current <- Some task;
      pool.epoch <- pool.epoch + 1;
      Condition.broadcast pool.work_ready;
      Mutex.unlock pool.mutex;
      participate pool task;
      Mutex.lock pool.mutex;
      while task.retired < task.total do
        Condition.wait pool.work_done pool.mutex
      done;
      let failure = task.failure in
      Mutex.unlock pool.mutex;
      Atomic.set pool.busy false;
      match failure with
      | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
      | None -> ()
    end

(* ---------------- the default pool ---------------- *)

let default_jobs () =
  match Sys.getenv_opt "NETFORM_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> j
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let default_pool = ref None
let default_mutex = Mutex.create ()
let exit_hook_installed = ref false

let default () =
  Mutex.protect default_mutex (fun () ->
      match !default_pool with
      | Some pool when not pool.stopped -> pool
      | _ ->
        let pool = create ~jobs:(default_jobs ()) in
        default_pool := Some pool;
        if not !exit_hook_installed then begin
          exit_hook_installed := true;
          at_exit (fun () -> Option.iter shutdown !default_pool)
        end;
        pool)

let set_default_jobs jobs =
  if jobs < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  let old =
    Mutex.protect default_mutex (fun () ->
        let old = !default_pool in
        default_pool := Some (create ~jobs);
        old)
  in
  Option.iter shutdown old

(* ---------------- maps ---------------- *)

let resolve = function
  | Some pool -> pool
  | None -> default ()

let parallel_for ?pool total body = run (resolve pool) total body

(* explicit left-to-right, so jobs = 1 is the exact sequential evaluation *)
let map_seq f l = List.rev (List.rev_map f l)

let force = function
  | Some v -> v
  | None -> assert false (* every slot is written exactly once before the batch retires *)

let parallel_map ?pool f l =
  let pool = resolve pool in
  if pool.width <= 1 then map_seq f l
  else
    match l with
    | [] -> []
    | [ x ] -> [ f x ]
    | l ->
      let input = Array.of_list l in
      let output = Array.make (Array.length input) None in
      run pool (Array.length input) (fun i -> output.(i) <- Some (f input.(i)));
      List.rev (Array.fold_left (fun acc slot -> force slot :: acc) [] output)

let parallel_map_array ?pool f a =
  let pool = resolve pool in
  if pool.width <= 1 || Array.length a <= 1 then Array.map f a
  else begin
    let output = Array.make (Array.length a) None in
    run pool (Array.length a) (fun i -> output.(i) <- Some (f a.(i)));
    Array.map force output
  end
