type endpoint =
  | Neg_inf
  | Finite of Rat.t
  | Pos_inf

type range = {
  lo : endpoint;
  lo_closed : bool;
  hi : endpoint;
  hi_closed : bool;
}

type t =
  | Empty
  | Range of range

let compare_endpoint a b =
  match a, b with
  | Neg_inf, Neg_inf -> 0
  | Neg_inf, (Finite _ | Pos_inf) -> -1
  | (Finite _ | Pos_inf), Neg_inf -> 1
  | Finite x, Finite y -> Rat.compare x y
  | Finite _, Pos_inf -> -1
  | Pos_inf, Finite _ -> 1
  | Pos_inf, Pos_inf -> 0

let empty = Empty

(* Infinite endpoints are never "closed": normalize the flags so that
   structural equality of ranges coincides with set equality. *)
let make ~lo ~lo_closed ~hi ~hi_closed =
  let lo_closed =
    match lo with
    | Finite _ -> lo_closed
    | Neg_inf | Pos_inf -> false
  in
  let hi_closed =
    match hi with
    | Finite _ -> hi_closed
    | Neg_inf | Pos_inf -> false
  in
  let c = compare_endpoint lo hi in
  if c > 0 then Empty
  else if c = 0 then
    if lo_closed && hi_closed then Range { lo; lo_closed; hi; hi_closed } else Empty
  else
    match lo, hi with
    | Pos_inf, _ | _, Neg_inf -> Empty
    | (Neg_inf | Finite _), (Finite _ | Pos_inf) ->
      Range { lo; lo_closed; hi; hi_closed }

let full = make ~lo:Neg_inf ~lo_closed:false ~hi:Pos_inf ~hi_closed:false
let closed a b = make ~lo:(Finite a) ~lo_closed:true ~hi:(Finite b) ~hi_closed:true
let open_closed a hi = make ~lo:(Finite a) ~lo_closed:false ~hi ~hi_closed:true
let point a = closed a a

let is_empty = function
  | Empty -> true
  | Range _ -> false

let mem x = function
  | Empty -> false
  | Range r ->
    let above_lo =
      match r.lo with
      | Neg_inf -> true
      | Pos_inf -> false
      | Finite a -> if r.lo_closed then Rat.(a <= x) else Rat.(a < x)
    in
    let below_hi =
      match r.hi with
      | Pos_inf -> true
      | Neg_inf -> false
      | Finite b -> if r.hi_closed then Rat.(x <= b) else Rat.(x < b)
    in
    above_lo && below_hi

let bounds = function
  | Empty -> None
  | Range r -> Some (r.lo, r.lo_closed, r.hi, r.hi_closed)

(* The tighter (larger) of two lower bounds. *)
let max_lower (e1, c1) (e2, c2) =
  let c = compare_endpoint e1 e2 in
  if c > 0 then e1, c1 else if c < 0 then e2, c2 else e1, c1 && c2

(* The tighter (smaller) of two upper bounds. *)
let min_upper (e1, c1) (e2, c2) =
  let c = compare_endpoint e1 e2 in
  if c < 0 then e1, c1 else if c > 0 then e2, c2 else e1, c1 && c2

let inter a b =
  match a, b with
  | Empty, _ | _, Empty -> Empty
  | Range r1, Range r2 ->
    let lo, lo_closed = max_lower (r1.lo, r1.lo_closed) (r2.lo, r2.lo_closed) in
    let hi, hi_closed = min_upper (r1.hi, r1.hi_closed) (r2.hi, r2.hi_closed) in
    make ~lo ~lo_closed ~hi ~hi_closed

let equal a b =
  match a, b with
  | Empty, Empty -> true
  | Range r1, Range r2 ->
    compare_endpoint r1.lo r2.lo = 0
    && compare_endpoint r1.hi r2.hi = 0
    && r1.lo_closed = r2.lo_closed
    && r1.hi_closed = r2.hi_closed
  | Empty, Range _ | Range _, Empty -> false

let subset a b = equal (inter a b) a

let pp_endpoint_lo ppf (e, closed) =
  match e with
  | Neg_inf -> Format.pp_print_string ppf "(-inf"
  | Pos_inf -> Format.pp_print_string ppf "(+inf"
  | Finite r -> Format.fprintf ppf "%s%a" (if closed then "[" else "(") Rat.pp r

let pp_endpoint_hi ppf (e, closed) =
  match e with
  | Neg_inf -> Format.pp_print_string ppf "-inf)"
  | Pos_inf -> Format.pp_print_string ppf "+inf)"
  | Finite r -> Format.fprintf ppf "%a%s" Rat.pp r (if closed then "]" else ")")

let pp ppf = function
  | Empty -> Format.pp_print_string ppf "{}"
  | Range r ->
    Format.fprintf ppf "%a, %a" pp_endpoint_lo (r.lo, r.lo_closed) pp_endpoint_hi
      (r.hi, r.hi_closed)

let to_string i = Format.asprintf "%a" pp i

module Union = struct
  type nonrec t = t list
  (* invariant: non-empty ranges, sorted by lower bound, pairwise disjoint
     and non-touching. *)

  let empty = []

  (* Two sorted ranges can be merged when the first's upper bound reaches or
     touches the second's lower bound. *)
  let touches r1 r2 =
    let c = compare_endpoint r1.hi r2.lo in
    c > 0 || (c = 0 && (r1.hi_closed || r2.lo_closed))

  let merge r1 r2 =
    let hi, hi_closed =
      let c = compare_endpoint r1.hi r2.hi in
      if c > 0 then r1.hi, r1.hi_closed
      else if c < 0 then r2.hi, r2.hi_closed
      else r1.hi, r1.hi_closed || r2.hi_closed
    in
    { r1 with hi; hi_closed }

  let compare_lo r1 r2 =
    let c = compare_endpoint r1.lo r2.lo in
    if c <> 0 then c else Bool.compare r2.lo_closed r1.lo_closed

  let of_list intervals =
    let ranges =
      List.filter_map
        (function
          | Empty -> None
          | Range r -> Some r)
        intervals
    in
    let sorted = List.sort compare_lo ranges in
    let rec coalesce = function
      | r1 :: r2 :: rest ->
        if touches r1 r2 then coalesce (merge r1 r2 :: rest)
        else Range r1 :: coalesce (r2 :: rest)
      | [ r ] -> [ Range r ]
      | [] -> []
    in
    coalesce sorted

  let to_list u = u
  let is_empty u = u = []
  let mem x u = List.exists (mem x) u
  let add i u = of_list (i :: u)
  let union u1 u2 = of_list (u1 @ u2)
  let equal u1 u2 = List.length u1 = List.length u2 && List.for_all2 equal u1 u2

  let pp ppf u =
    match u with
    | [] -> Format.pp_print_string ppf "{}"
    | _ ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " u ")
        pp ppf u

  let to_string u = Format.asprintf "%a" pp u
end
