(** A reusable fixed-size pool of OCaml 5 domains for shared-nothing
    data parallelism.

    The sweep workloads (exhaustive annotation of every isomorphism class,
    canonical-form computation during enumeration) are embarrassingly
    parallel: many independent pure calls over an indexed collection.  The
    pool keeps [jobs - 1] worker domains alive across calls — spawning a
    domain costs far more than a typical work item — and distributes each
    batch in contiguous chunks claimed from a shared atomic cursor, so load
    balances even when item costs are skewed.

    {2 Semantics}

    - {b Deterministic results.}  [parallel_map f l] returns exactly
      [List.map f l]: slot [i] of the output is [f] applied to element [i]
      of the input, whatever the execution interleaving.  Side effects of
      [f] may of course interleave arbitrarily; workloads fed to the pool
      must be shared-nothing (or synchronize internally).
    - {b Sequential degradation.}  With [jobs = 1] no domains are spawned
      and every call runs the plain sequential path in the calling domain,
      left to right — byte-identical behavior to the pre-pool code.
    - {b Exception propagation.}  If [f] raises, the first exception (with
      its backtrace) is re-raised in the caller once the batch has drained;
      remaining unstarted chunks are skipped.  The pool survives and can be
      reused.
    - {b Reentrancy.}  A nested call from inside a work item (or a
      concurrent call from another domain while a batch is in flight) falls
      back to the sequential path instead of deadlocking.
    - {b Long-lived workers and domain-local state.}  Worker domains
      persist across batches, so [Domain.DLS]-cached resources — in
      particular the per-domain {!Nf_graph.Kernel} workspace obtained via
      [Kernel.with_ws] — are allocated once per worker and reused by every
      chunk that worker ever claims.  Work items should borrow such state
      through its scoped accessor rather than capture it in the closure:
      a workspace created in the submitting domain must never travel into
      a work item. *)

type t
(** A pool handle.  Values of type [t] may be shared between domains. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains ([jobs = 1] spawns
    none).
    @raise Invalid_argument when [jobs < 1]. *)

val jobs : t -> int
(** Parallel width of the pool, including the calling domain. *)

val shutdown : t -> unit
(** Terminate and join the worker domains.  Subsequent calls through the
    pool run sequentially.  Idempotent. *)

val default_jobs : unit -> int
(** The width used for the implicit default pool: the [NETFORM_JOBS]
    environment variable when set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val default : unit -> t
(** The process-wide default pool, created on first use with
    {!default_jobs} width and shut down automatically at exit.  Library
    entry points ({!Nf_enum.Unlabeled}, [Nf_analysis.Equilibria], the
    experiment sweeps) all route through this pool, so [NETFORM_JOBS=1]
    forces the whole library onto the sequential path. *)

val set_default_jobs : int -> unit
(** Replace the default pool with a fresh one of the given width (the old
    one is shut down).  Intended for tests that must exercise both the
    sequential and the parallel paths regardless of the environment.
    @raise Invalid_argument when [jobs < 1]. *)

val parallel_map : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map f l] is [List.map f l] evaluated across the pool
    ({!default} when [?pool] is omitted), results in input order. *)

val parallel_map_array : ?pool:t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map_array f a] is [Array.map f a] evaluated across the
    pool, results in input order. *)

val parallel_for : ?pool:t -> int -> (int -> unit) -> unit
(** [parallel_for n body] runs [body i] for [0 <= i < n] across the pool.
    The low-level primitive under both maps; [body] must be safe to call
    concurrently for distinct indices. *)
