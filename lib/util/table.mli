(** Aligned plain-text tables for experiment output. *)

type t

val create : string list -> t
(** [create headers] is an empty table with the given column headers. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded; longer rows are truncated. *)

val add_rows : t -> string list list -> unit
val render : t -> string
(** Monospace rendering with a header separator, columns padded to the
    widest cell. *)

val print : t -> unit
(** [render] followed by a newline on stdout. *)
