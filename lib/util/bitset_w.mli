(** Multi-word bitset rows inside flat [int array] slabs.

    Breaks {!Bitset}'s 62-element ceiling for the graph layer: a row is
    [words] consecutive ints at some offset of a caller-owned slab, each
    word holding {!bits_per_word} = 62 usable bits — so a one-word row is
    bit-for-bit the old [Bitset.t], which is what keeps the n ≤ 62 fast
    paths byte-compatible.  No abstract container: just loops over
    [(array, offset, words)] triples, because the owners (graph, kernel)
    want zero-overhead indexed access into slabs they allocate. *)

val bits_per_word : int
(** Usable bits per slab word ([Bitset.max_size] = 62). *)

val words_for : int -> int
(** [words_for n] is the row width for [n] elements (at least 1, so an
    empty graph still has well-formed rows). *)

val full_word : int -> int
(** [full_word k] is the mask of the [k] low bits ([0 <= k <= 62]). *)

val blit_full_mask : int array -> int -> int -> int -> unit
(** [blit_full_mask a off n words] writes the full-set row for [n]
    elements ([n] low bits set across [words] words) at [a.(off ..)]. *)

val word_of : int -> int
(** Word index of element [j] within a row. *)

val bit_of : int -> int
(** Isolated bit of element [j] within its word. *)

val get : int array -> int -> int -> bool
(** [get a off j]: is element [j] in the row at [a.(off ..)]? *)

val set : int array -> int -> int -> unit
val clear : int array -> int -> int -> unit
val toggle : int array -> int -> int -> unit

val popcount : int -> int
(** Number of set bits in one word (Kernighan loop — sets are sparse). *)

val cardinal : int array -> int -> int -> int
(** [cardinal a off words]: population of the row at [a.(off ..)]. *)

val is_empty_row : int array -> int -> int -> bool

val bit_index : int -> int
(** Index of an isolated bit (a power of two), branch cascade. *)

val iter : (int -> unit) -> int array -> int -> int -> unit
(** [iter f a off words] applies [f] to each element of the row in
    ascending order. *)

val equal_rows : int array -> int -> int array -> int -> int -> bool
val union_into : int array -> int -> int array -> int -> int -> unit
(** [union_into dst doff src soff words]: [dst |= src] word-wise. *)
