(* Standard trick: the subsets of a bitmask [g] are visited by
   [s -> (s - g) land g] starting from 0, which counts through exactly the
   bit patterns contained in [g]. *)
let iter_subsets ground f =
  let rec go s =
    f s;
    let next = (s - ground) land ground in
    if next <> 0 then go next
  in
  go 0

let fold_subsets ground f init =
  let acc = ref init in
  iter_subsets ground (fun s -> acc := f !acc s);
  !acc

exception Found

let exists_subset ground pred =
  try
    iter_subsets ground (fun s -> if pred s then raise Found);
    false
  with Found -> true

let iter_subsets_of_size ground k f =
  iter_subsets ground (fun s -> if Bitset.cardinal s = k then f s)

(* [1 lsl 62] is already undefined behavior territory on 63-bit ints (the
   shift lands in the sign bit), so refuse cardinals the shift cannot
   represent instead of silently returning garbage. *)
let count_subsets ground =
  let c = Bitset.cardinal ground in
  if c >= Sys.int_size - 1 then
    invalid_arg
      (Printf.sprintf "Subset.count_subsets: 2^%d exceeds the native int range (cardinal \
                       must be < %d)" c (Sys.int_size - 1))
  else 1 lsl c

let iter_pairs n f =
  for i = 0 to n - 2 do
    for j = i + 1 to n - 1 do
      f i j
    done
  done
