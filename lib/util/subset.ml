(* Standard trick: the subsets of a bitmask [g] are visited by
   [s -> (s - g) land g] starting from 0, which counts through exactly the
   bit patterns contained in [g]. *)
let iter_subsets ground f =
  let rec go s =
    f s;
    let next = (s - ground) land ground in
    if next <> 0 then go next
  in
  go 0

let fold_subsets ground f init =
  let acc = ref init in
  iter_subsets ground (fun s -> acc := f !acc s);
  !acc

exception Found

let exists_subset ground pred =
  try
    iter_subsets ground (fun s -> if pred s then raise Found);
    false
  with Found -> true

let iter_subsets_of_size ground k f =
  iter_subsets ground (fun s -> if Bitset.cardinal s = k then f s)

let count_subsets ground = 1 lsl Bitset.cardinal ground

let iter_pairs n f =
  for i = 0 to n - 2 do
    for j = i + 1 to n - 1 do
      f i j
    done
  done
