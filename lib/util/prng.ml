type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* splitmix64 (Steele, Lea, Flood 2014): high-quality 64-bit mixing with a
   single word of state; good enough for simulation workloads and fully
   portable. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let mask = Int64.shift_right_logical (next_int64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let float t bound =
  let mask = Int64.shift_right_logical (next_int64 t) 11 in
  (* 53 random bits -> uniform in [0,1) *)
  Int64.to_float mask /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t l =
  match l with
  | [] -> invalid_arg "Prng.pick: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
