(** Integers extended with a positive infinity.

    Shortest-path distances in the connection games are hop counts, and the
    paper sets [d(i,j) = ∞] when no path exists.  Carrying an explicit
    infinity through all distance arithmetic keeps disconnection handling
    exact instead of relying on sentinel values. *)

type t =
  | Fin of int  (** a finite value *)
  | Inf  (** positive infinity *)

val zero : t
val one : t
val of_int : int -> t

val to_int : t -> int
(** [to_int v] is the finite payload of [v].
    @raise Invalid_argument on [Inf]. *)

val to_int_opt : t -> int option
val is_finite : t -> bool

val add : t -> t -> t
(** Saturating addition: anything plus [Inf] is [Inf]. *)

val sub : t -> t -> t
(** [sub a b] is [a - b] for finite values; [Inf - Fin _] is [Inf].
    @raise Invalid_argument when [b] is [Inf] (the games never subtract an
    infinite cost). *)

val mul_int : int -> t -> t
(** [mul_int k v] multiplies by a non-negative integer; [mul_int 0 Inf] is
    [zero], matching the convention that an empty sum is zero. *)

val sum : t list -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val to_float : t -> float
val pp : Format.formatter -> t -> unit
val to_string : t -> string
