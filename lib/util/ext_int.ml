type t =
  | Fin of int
  | Inf

let zero = Fin 0
let one = Fin 1
let of_int k = Fin k

let to_int = function
  | Fin k -> k
  | Inf -> invalid_arg "Ext_int.to_int: infinite"

let to_int_opt = function
  | Fin k -> Some k
  | Inf -> None

let is_finite = function
  | Fin _ -> true
  | Inf -> false

let add a b =
  match a, b with
  | Fin x, Fin y -> Fin (x + y)
  | Inf, _ | _, Inf -> Inf

let sub a b =
  match a, b with
  | Fin x, Fin y -> Fin (x - y)
  | Inf, Fin _ -> Inf
  | (Fin _ | Inf), Inf -> invalid_arg "Ext_int.sub: infinite subtrahend"

let mul_int k v =
  if k < 0 then invalid_arg "Ext_int.mul_int: negative factor"
  else
    match v with
    | Fin x -> Fin (k * x)
    | Inf -> if k = 0 then Fin 0 else Inf

let sum vs = List.fold_left add zero vs

let compare a b =
  match a, b with
  | Fin x, Fin y -> Stdlib.compare x y
  | Fin _, Inf -> -1
  | Inf, Fin _ -> 1
  | Inf, Inf -> 0

let equal a b = compare a b = 0
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let min a b = if Stdlib.( <= ) (compare a b) 0 then a else b
let max a b = if Stdlib.( >= ) (compare a b) 0 then a else b

let to_float = function
  | Fin x -> float_of_int x
  | Inf -> infinity

let pp ppf = function
  | Fin x -> Format.fprintf ppf "%d" x
  | Inf -> Format.pp_print_string ppf "inf"

let to_string v = Format.asprintf "%a" pp v
