(** Running summary statistics for experiment reporting. *)

type t

val empty : t
val add : t -> float -> t
val of_list : float list -> t
val count : t -> int
val mean : t -> float
(** [nan] when no samples were added. *)

val variance : t -> float
(** Population variance; [nan] when empty. *)

val stddev : t -> float
val min : t -> float
val max : t -> float
val sum : t -> float
val pp : Format.formatter -> t -> unit
