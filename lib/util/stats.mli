(** Running summary statistics for experiment reporting. *)

type t

val empty : t
val add : t -> float -> t
val of_list : float list -> t
val count : t -> int
val mean : t -> float
(** [nan] when no samples were added. *)

val variance : t -> float
(** Population variance; [nan] when empty. *)

val stddev : t -> float
val min : t -> float
val max : t -> float
val sum : t -> float
val pp : Format.formatter -> t -> unit

(** Progress / throughput / ETA reporting for long streaming sweeps.

    The clock is injected ([now], typically [Unix.gettimeofday]) so this
    module stays dependency-free and deterministic under test.  A meter
    created with [initial > 0] (a resumed run) counts the carried-over
    items toward its position but {e not} toward its throughput, so the
    reported rate and ETA reflect only the work actually performed. *)
module Progress : sig
  type meter

  val create : ?total:int -> ?initial:int -> now:(unit -> float) -> unit -> meter
  (** @raise Invalid_argument when [total] or [initial] is negative. *)

  val tick : meter -> int -> unit
  (** [tick m k] records [k] more completed items.
      @raise Invalid_argument when [k < 0]. *)

  val count : meter -> int
  (** Current position, including the [initial] carry-over. *)

  val rate : meter -> float
  (** Items per second since creation, excluding the carry-over; [nan]
      when no time has elapsed. *)

  val eta : meter -> float option
  (** Estimated seconds to reach [total]; [None] without a total or
      before any throughput is observable. *)

  val line : meter -> string
  (** One-line rendering: ["912/1044 (87%)  210.4/s  ETA 0.6s"]. *)
end
