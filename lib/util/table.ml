type t = {
  headers : string list;
  mutable rows : string list list;  (** reversed *)
}

let create headers = { headers; rows = [] }

let fit width row =
  let rec go k = function
    | [] -> if k = 0 then [] else "" :: go (k - 1) []
    | x :: rest -> if k = 0 then [] else x :: go (k - 1) rest
  in
  go width row

let add_row t row = t.rows <- fit (List.length t.headers) row :: t.rows
let add_rows t rows = List.iter (add_row t) rows

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let record row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter record all;
  let buf = Buffer.create 256 in
  let emit row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        if i < ncols - 1 then
          Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  let total = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter emit rows;
  Buffer.contents buf

let print t = print_string (render t)
