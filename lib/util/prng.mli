(** Deterministic pseudo-random numbers (splitmix64).

    Experiments and property generators must be reproducible across runs and
    machines, so the library never touches [Stdlib.Random]'s global state;
    every randomized routine threads one of these generators explicitly. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds give equal streams. *)

val copy : t -> t
val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [[0, bound)].
    @raise Invalid_argument when [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list.
    @raise Invalid_argument on the empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
