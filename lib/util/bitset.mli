(** Small bitsets packed into a single [int].

    The graph kernel stores one adjacency row per vertex as a bitset, which
    bounds the library at {!max_size} vertices — far beyond what exhaustive
    equilibrium enumeration can reach anyway. *)

type t = int
(** Bit [k] set means element [k] is present. *)

val max_size : int
(** Number of usable bits ([Sys.int_size - 1] = 62 on 64-bit systems). *)

val empty : t
val singleton : int -> t
val full : int -> t
(** [full n] contains [0 .. n-1]. *)

val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val is_empty : t -> bool
val cardinal : t -> int
val subset : t -> t -> bool
val min_elt : t -> int
(** @raise Not_found on the empty set. *)

val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> int list
val of_list : int list -> t
val pp : Format.formatter -> t -> unit
