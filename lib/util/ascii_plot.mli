(** ASCII line plots, used to render the paper's figures in a terminal.

    Each series is a list of [(x, y)] points; series share axes and are
    drawn with distinct marker characters, nearest-cell rasterized onto a
    fixed-size character grid with axis labels. *)

type series = {
  label : string;
  marker : char;
  points : (float * float) list;
}

val render :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  title:string ->
  series list ->
  string
(** [render ~title series] draws all series on one grid (default 72x20).
    Non-finite points are skipped.  Returns a multi-line string ending in a
    newline, including a legend line per series. *)
