type t = {
  count : int;
  sum : float;
  sum_sq : float;
  min : float;
  max : float;
}

let empty = { count = 0; sum = 0.; sum_sq = 0.; min = nan; max = nan }

let add t x =
  {
    count = t.count + 1;
    sum = t.sum +. x;
    sum_sq = t.sum_sq +. (x *. x);
    min = (if t.count = 0 then x else Float.min t.min x);
    max = (if t.count = 0 then x else Float.max t.max x);
  }

let of_list xs = List.fold_left add empty xs
let count t = t.count
let mean t = if t.count = 0 then nan else t.sum /. float_of_int t.count

let variance t =
  if t.count = 0 then nan
  else
    let m = mean t in
    Float.max 0. ((t.sum_sq /. float_of_int t.count) -. (m *. m))

let stddev t = sqrt (variance t)
let min t = t.min
let max t = t.max
let sum t = t.sum

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.4f sd=%.4f min=%.4f max=%.4f" t.count (mean t)
    (stddev t) t.min t.max

module Progress = struct
  type meter = {
    now : unit -> float;
    start : float;
    total : int option;
    initial : int;
    mutable count : int;
  }

  let create ?total ?(initial = 0) ~now () =
    (match total with
    | Some t when t < 0 -> invalid_arg "Stats.Progress.create: negative total"
    | _ -> ());
    if initial < 0 then invalid_arg "Stats.Progress.create: negative initial";
    { now; start = now (); total; initial; count = initial }

  let tick m k =
    if k < 0 then invalid_arg "Stats.Progress.tick: negative increment";
    m.count <- m.count + k

  let count m = m.count

  (* throughput of the work done *by this meter* — items carried in via
     [initial] (a resumed prefix) are excluded, so a resume reports the
     honest rate of the remaining work, not one inflated by prior chunks *)
  let rate m =
    let elapsed = m.now () -. m.start in
    if elapsed <= 0. then nan else float_of_int (m.count - m.initial) /. elapsed

  let eta m =
    match m.total with
    | None -> None
    | Some total ->
      let r = rate m in
      if Float.is_nan r || r <= 0. then None
      else Some (float_of_int (Stdlib.max 0 (total - m.count)) /. r)

  let fmt_seconds s =
    if s < 60. then Printf.sprintf "%.1fs" s
    else if s < 3600. then Printf.sprintf "%dm%02ds" (int_of_float s / 60) (int_of_float s mod 60)
    else Printf.sprintf "%dh%02dm" (int_of_float s / 3600) (int_of_float s mod 3600 / 60)

  let line m =
    let position =
      match m.total with
      | Some total when total > 0 ->
        Printf.sprintf "%d/%d (%.0f%%)" m.count total
          (100. *. float_of_int m.count /. float_of_int total)
      | Some total -> Printf.sprintf "%d/%d" m.count total
      | None -> string_of_int m.count
    in
    let r = rate m in
    let throughput = if Float.is_nan r then "" else Printf.sprintf "  %.1f/s" r in
    let remaining =
      match eta m with
      | Some s -> "  ETA " ^ fmt_seconds s
      | None -> ""
    in
    position ^ throughput ^ remaining
end
