type t = {
  count : int;
  sum : float;
  sum_sq : float;
  min : float;
  max : float;
}

let empty = { count = 0; sum = 0.; sum_sq = 0.; min = nan; max = nan }

let add t x =
  {
    count = t.count + 1;
    sum = t.sum +. x;
    sum_sq = t.sum_sq +. (x *. x);
    min = (if t.count = 0 then x else Float.min t.min x);
    max = (if t.count = 0 then x else Float.max t.max x);
  }

let of_list xs = List.fold_left add empty xs
let count t = t.count
let mean t = if t.count = 0 then nan else t.sum /. float_of_int t.count

let variance t =
  if t.count = 0 then nan
  else
    let m = mean t in
    Float.max 0. ((t.sum_sq /. float_of_int t.count) -. (m *. m))

let stddev t = sqrt (variance t)
let min t = t.min
let max t = t.max
let sum t = t.sum

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.4f sd=%.4f min=%.4f max=%.4f" t.count (mean t)
    (stddev t) t.min t.max
