type t = int

let max_size = Sys.int_size - 1
let empty = 0

let check k =
  if k < 0 || k >= max_size then
    invalid_arg
      (Printf.sprintf
         "Bitset: element %d out of range 0..%d (one-word bitset; use Bitset_w rows \
          beyond %d elements)"
         k (max_size - 1) max_size)

let singleton k =
  check k;
  1 lsl k

let full n =
  if n < 0 || n > max_size then invalid_arg "Bitset.full";
  if n = 0 then 0 else (1 lsl n) - 1

let mem k s = s land (1 lsl k) <> 0
let add k s = s lor singleton k
let remove k s = s land lnot (singleton k)
let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b
let is_empty s = s = 0

let cardinal s =
  let rec count acc s = if s = 0 then acc else count (acc + 1) (s land (s - 1)) in
  count 0 s

let subset a b = a land lnot b = 0

(* Index of the lowest set bit, via de-Bruijn-free loop (sets are tiny). *)
let min_elt s =
  if s = 0 then raise Not_found
  else
    let rec go k = if s land (1 lsl k) <> 0 then k else go (k + 1) in
    go 0

let iter f s =
  let rec go s =
    if s <> 0 then begin
      let k = min_elt s in
      f k;
      go (s land (s - 1))
    end
  in
  go s

let fold f s init =
  let acc = ref init in
  iter (fun k -> acc := f k !acc) s;
  !acc

let elements s = List.rev (fold (fun k acc -> k :: acc) s [])
let of_list l = List.fold_left (fun s k -> add k s) empty l

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (elements s)
