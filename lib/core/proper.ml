module Graph = Nf_graph.Graph
module Bitset = Nf_util.Bitset

type report = {
  epsilon : float;
  iterations_used : int;
  target_mass : float array;
  min_target_mass : float;
  constraints_ok : bool;
}

let max_order = 4

(* Completely mixed opponents give every disconnected graph positive
   probability, so infinite distances would make every expectation
   infinite — and any huge finite surrogate makes redundant announcements
   valuable as "disconnection insurance" under trembles, drowning the
   actual cost ordering.  Properness (Myerson, and the Lemma 3 source
   model) presumes bounded payoffs; we bound the game by capping an
   unreachable pair's distance at [n], one more than any connected
   distance, which coincides with the true cost on every connected
   outcome. *)
let disconnection_penalty n _alpha = float_of_int n

(* pure strategies of player i: subsets of the other players *)
let strategy_masks n i =
  let ground = Bitset.remove i (Bitset.full n) in
  let masks = ref [] in
  Nf_util.Subset.iter_subsets ground (fun s -> masks := s :: !masks);
  Array.of_list (List.rev !masks)

(* The formed graph is loaded straight into the kernel workspace from the
   wish rows — no persistent graph per profile — and each player's cost
   reads off one allocation-free sweep.  All summands are integer-valued
   floats (distances, the [n] penalty), so the grouping
   [finite_sum + penalty·unreached] is exact and identical to summing the
   per-target terms one by one. *)
let pure_costs game ~alpha ~penalty n rows =
  Nf_graph.Kernel.with_ws (fun ws ->
      Nf_graph.Kernel.load_rows ws n (fun i ->
          match game with
          | Cost.Ucg ->
            Bitset.fold (fun j acc -> if Bitset.mem i rows.(j) then Bitset.add j acc else acc)
              (Bitset.remove i (Bitset.full n))
              rows.(i)
          | Cost.Bcg ->
            Bitset.fold (fun j acc -> if Bitset.mem i rows.(j) then Bitset.add j acc else acc)
              rows.(i) Bitset.empty);
      Array.init n (fun i ->
          let finite_sum, reached = Nf_graph.Kernel.reach_stats ws i in
          (alpha *. float_of_int (Bitset.cardinal rows.(i)))
          +. (float_of_int finite_sum +. (penalty *. float_of_int (n - reached)))))

(* the full payoff tensor, indexed by per-player strategy indices mixed in
   base [num_strategies] *)
let payoff_tensor game ~alpha n =
  let masks = Array.init n (strategy_masks n) in
  let s = Array.length masks.(0) in
  let total = int_of_float (float_of_int s ** float_of_int n) in
  let penalty = disconnection_penalty n alpha in
  let costs = Array.make_matrix total n 0.0 in
  let rows = Array.make n Bitset.empty in
  for code = 0 to total - 1 do
    let rest = ref code in
    for i = 0 to n - 1 do
      rows.(i) <- masks.(i).(!rest mod s);
      rest := !rest / s
    done;
    costs.(code) <- pure_costs game ~alpha ~penalty n rows
  done;
  (masks, s, costs)

(* expected cost to player i of playing index ip, under mixed opponents *)
let expected_costs n s costs sigma i =
  let expectations = Array.make s 0.0 in
  let total = Array.length costs in
  for code = 0 to total - 1 do
    (* decode i's coordinate and the opponents' joint probability *)
    let rest = ref code in
    let ip = ref 0 in
    let weight = ref 1.0 in
    for j = 0 to n - 1 do
      let idx = !rest mod s in
      rest := !rest / s;
      if j = i then ip := idx else weight := !weight *. sigma.(j).(idx)
    done;
    expectations.(!ip) <- expectations.(!ip) +. (!weight *. costs.(code).(i))
  done;
  expectations

let rank_weights ~epsilon expectations =
  let s = Array.length expectations in
  let tolerance = 1e-9 in
  let weights =
    Array.init s (fun a ->
        let better = ref 0 in
        for b = 0 to s - 1 do
          if expectations.(b) < expectations.(a) -. tolerance then incr better
        done;
        epsilon ** float_of_int !better)
  in
  let z = Array.fold_left ( +. ) 0.0 weights in
  Array.map (fun w -> w /. z) weights

let check_constraints ~epsilon n s costs sigma =
  let ok = ref true in
  let tolerance = 1e-9 in
  for i = 0 to n - 1 do
    let e = expected_costs n s costs sigma i in
    for a = 0 to s - 1 do
      for b = 0 to s - 1 do
        (* costlier mistakes must be an ε-factor rarer *)
        if e.(b) > e.(a) +. tolerance && sigma.(i).(b) > (epsilon *. sigma.(i).(a)) +. 1e-12
        then ok := false
      done
    done
  done;
  !ok

let analyze game ~alpha ~target ?(epsilons = [ 0.3; 0.1; 0.03; 0.01 ]) ?(iterations = 200) () =
  let n = Strategy.order target in
  if n < 2 || n > max_order then invalid_arg "Proper.analyze: order out of range";
  let masks, s, costs = payoff_tensor game ~alpha n in
  let target_index =
    Array.init n (fun i ->
        let wanted = Strategy.wishes target i in
        let rec find k = if masks.(i).(k) = wanted then k else find (k + 1) in
        find 0)
  in
  List.map
    (fun epsilon ->
      (* anchor the search at the candidate profile: Definition 5 asks for
         SOME sequence converging to the target, so we look for the fixed
         point of the rank weighting in the target's neighborhood *)
      let sigma =
        Array.init n (fun i ->
            Array.init s (fun a ->
                if a = target_index.(i) then 1.0 -. epsilon
                else epsilon /. float_of_int (s - 1)))
      in
      let iterations_used = ref iterations in
      let damping = 0.5 in
      (try
         for it = 1 to iterations do
           let updated =
             Array.init n (fun i -> rank_weights ~epsilon (expected_costs n s costs sigma i))
           in
           let change = ref 0.0 in
           for i = 0 to n - 1 do
             for a = 0 to s - 1 do
               let blended = ((1.0 -. damping) *. sigma.(i).(a)) +. (damping *. updated.(i).(a)) in
               change := Float.max !change (Float.abs (blended -. sigma.(i).(a)));
               sigma.(i).(a) <- blended
             done
           done;
           if !change < 1e-13 then begin
             iterations_used := it;
             raise Exit
           end
         done
       with Exit -> ());
      let target_mass = Array.init n (fun i -> sigma.(i).(target_index.(i))) in
      {
        epsilon;
        iterations_used = !iterations_used;
        target_mass;
        min_target_mass = Array.fold_left Float.min 1.0 target_mass;
        constraints_ok = check_constraints ~epsilon n s costs sigma;
      })
    epsilons

let is_proper_limit reports ~threshold =
  reports <> []
  && List.for_all (fun r -> r.constraints_ok) reports
  &&
  match List.rev reports with
  | last :: _ -> last.min_target_mass >= threshold
  | [] -> false
