(** Generalized distance-based utilities.

    The paper's cost charges raw hop counts ([f(d) = d]); the related work
    it cites (Kannan, Ray & Sarangi) asks how the architecture of stable
    networks changes under other distance-based utility functions.  This
    module re-runs the bilateral stability analysis for any nondecreasing
    integer-valued [f]: player [i]'s cost is [α|s_i| + Σ_j f(d(i,j))].

    All thresholds remain integers, so the exact-interval machinery of
    {!Bcg} carries over verbatim. *)

type profile = {
  name : string;
  f : int -> int;  (** applied to finite hop counts [d ≥ 0]; must be
                       nondecreasing with [f 0 = 0] *)
}

val linear : profile
(** The paper's [f(d) = d]. *)

val quadratic : profile
(** [f(d) = d²]: long routes hurt disproportionately (latency-sensitive
    traffic). *)

val hop_capped : int -> profile
(** [hop_capped h]: [f(d) = min d h] — beyond [h] hops everything is
    equally bad (TTL-limited flooding). *)

val connectivity : profile
(** [f(d) = 0] for every finite [d]: players only care about being
    connected at all. *)

val distance_cost : profile -> Nf_graph.Graph.t -> int -> Nf_util.Ext_int.t
(** [Σ_j f(d(i,j))], infinite when some vertex is unreachable. *)

val addition_benefit : profile -> Nf_graph.Graph.t -> int -> int -> Nf_util.Ext_int.t
val severance_loss : profile -> Nf_graph.Graph.t -> int -> int -> Nf_util.Ext_int.t

val stable_alpha_set : profile -> Nf_graph.Graph.t -> Nf_util.Interval.t
(** Exact pairwise-stable region under [f], with the same tie handling as
    {!Bcg.stable_alpha_set}.  For [linear] this equals
    [Bcg.stable_alpha_set] (property-tested). *)

val is_pairwise_stable : profile -> alpha:Nf_util.Rat.t -> Nf_graph.Graph.t -> bool
