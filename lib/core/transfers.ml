module Graph = Nf_graph.Graph
module Ext_int = Nf_util.Ext_int
module Rat = Nf_util.Rat
module Interval = Nf_util.Interval

let joint_addition_benefit g i j =
  Ext_int.add (Bcg.addition_benefit g i j) (Bcg.addition_benefit g j i)

let joint_severance_loss g i j =
  Ext_int.add (Bcg.severance_loss g i j) (Bcg.severance_loss g j i)

let half = function
  | Ext_int.Fin k -> Interval.Finite (Rat.make k 2)
  | Ext_int.Inf -> Interval.Pos_inf

let alpha_min_ext g =
  let worst = ref (Ext_int.Fin 0) in
  Graph.iter_non_edges g (fun i j ->
      worst := Ext_int.max !worst (joint_addition_benefit g i j));
  !worst

let alpha_max_ext g =
  let best = ref Ext_int.Inf in
  Graph.iter_edges g (fun i j -> best := Ext_int.min !best (joint_severance_loss g i j));
  !best

let alpha_min g =
  if Graph.is_complete g then None
  else
    match alpha_min_ext g with
    | Ext_int.Fin k -> Some (Rat.make k 2)
    | Ext_int.Inf -> None

let positive = Interval.open_closed Rat.zero Interval.Pos_inf

(* A link is added when joint benefit > 2α (strict, mirroring the revised
   Definition 3), so stability to additions is α >= benefit/2: closed.
   A link survives when joint loss >= 2α: α <= loss/2, closed. *)
let stable_alpha_set g =
  Interval.inter positive
    (Interval.make ~lo:(half (alpha_min_ext g)) ~lo_closed:true ~hi:(half (alpha_max_ext g))
       ~hi_closed:true)

let is_stable ~alpha g =
  let two_alpha = Rat.mul (Rat.of_int 2) alpha in
  let le_ext r = function
    | Ext_int.Inf -> true
    | Ext_int.Fin k -> Rat.(r <= of_int k)
  in
  let lt_ext r = function
    | Ext_int.Inf -> true
    | Ext_int.Fin k -> Rat.(r < of_int k)
  in
  let additions_ok = ref true in
  Graph.iter_non_edges g (fun i j ->
      if lt_ext two_alpha (joint_addition_benefit g i j) then additions_ok := false);
  !additions_ok
  &&
  let severances_ok = ref true in
  Graph.iter_edges g (fun i j ->
      if not (le_ext two_alpha (joint_severance_loss g i j)) then severances_ok := false);
  !severances_ok
