module Graph = Nf_graph.Graph
module Bfs = Nf_graph.Bfs
module Apsp = Nf_graph.Apsp
module Ext_int = Nf_util.Ext_int
module Rat = Nf_util.Rat
module Interval = Nf_util.Interval

let joint_addition_benefit g i j =
  Ext_int.add (Bcg.addition_benefit g i j) (Bcg.addition_benefit g j i)

let joint_severance_loss g i j =
  Ext_int.add (Bcg.severance_loss g i j) (Bcg.severance_loss g j i)

(* Base-sharing twins of the per-pair functions above: the base distance
   sums are computed once per graph and the perturbed graph is built once
   per pair, so every (endpoint, edge-toggle) costs exactly one fresh BFS —
   the per-pair entry points re-run the base BFS of both endpoints on every
   call (and each evaluation of [joint_addition_benefit] builds the
   perturbed graph twice). *)

let benefit_from ~base after =
  match base, after with
  | Ext_int.Fin b, Ext_int.Fin a -> Ext_int.Fin (b - a)
  | Ext_int.Inf, Ext_int.Fin _ -> Ext_int.Inf
  | Ext_int.Inf, Ext_int.Inf -> Ext_int.Fin 0
  | Ext_int.Fin _, Ext_int.Inf -> assert false (* adding cannot disconnect *)

let loss_from ~base after =
  match base, after with
  | Ext_int.Fin b, Ext_int.Fin a -> Ext_int.Fin (a - b)
  | Ext_int.Fin _, Ext_int.Inf -> Ext_int.Inf (* bridge *)
  | Ext_int.Inf, _ -> Ext_int.Inf

let joint_benefit_from ~base g i j =
  let added = Graph.add_edge g i j in
  Ext_int.add
    (benefit_from ~base:base.(i) (Bfs.distance_sum added i))
    (benefit_from ~base:base.(j) (Bfs.distance_sum added j))

let joint_loss_from ~base g i j =
  let removed = Graph.remove_edge g i j in
  Ext_int.add
    (loss_from ~base:base.(i) (Bfs.distance_sum removed i))
    (loss_from ~base:base.(j) (Bfs.distance_sum removed j))

let half = function
  | Ext_int.Fin k -> Interval.Finite (Rat.make k 2)
  | Ext_int.Inf -> Interval.Pos_inf

let alpha_min_ext ~base g =
  let worst = ref (Ext_int.Fin 0) in
  Graph.iter_non_edges g (fun i j ->
      worst := Ext_int.max !worst (joint_benefit_from ~base g i j));
  !worst

let alpha_max_ext ~base g =
  let best = ref Ext_int.Inf in
  Graph.iter_edges g (fun i j -> best := Ext_int.min !best (joint_loss_from ~base g i j));
  !best

let alpha_min g =
  if Graph.is_complete g then None
  else
    match alpha_min_ext ~base:(Apsp.distance_sums g) g with
    | Ext_int.Fin k -> Some (Rat.make k 2)
    | Ext_int.Inf -> None

let positive = Interval.open_closed Rat.zero Interval.Pos_inf

(* A link is added when joint benefit > 2α (strict, mirroring the revised
   Definition 3), so stability to additions is α >= benefit/2: closed.
   A link survives when joint loss >= 2α: α <= loss/2, closed. *)
let stable_alpha_set g =
  let base = Apsp.distance_sums g in
  Interval.inter positive
    (Interval.make ~lo:(half (alpha_min_ext ~base g)) ~lo_closed:true
       ~hi:(half (alpha_max_ext ~base g)) ~hi_closed:true)

let is_stable ~alpha g =
  let base = Apsp.distance_sums g in
  let two_alpha = Rat.mul (Rat.of_int 2) alpha in
  let le_ext r = function
    | Ext_int.Inf -> true
    | Ext_int.Fin k -> Rat.(r <= of_int k)
  in
  let lt_ext r = function
    | Ext_int.Inf -> true
    | Ext_int.Fin k -> Rat.(r < of_int k)
  in
  let additions_ok = ref true in
  Graph.iter_non_edges g (fun i j ->
      if lt_ext two_alpha (joint_benefit_from ~base g i j) then additions_ok := false);
  !additions_ok
  &&
  let severances_ok = ref true in
  Graph.iter_edges g (fun i j ->
      if not (le_ext two_alpha (joint_loss_from ~base g i j)) then severances_ok := false);
  !severances_ok
