module Graph = Nf_graph.Graph
module Bfs = Nf_graph.Bfs
module Apsp = Nf_graph.Apsp
module Kernel = Nf_graph.Kernel
module Symmetry = Nf_iso.Symmetry
module Ext_int = Nf_util.Ext_int
module Rat = Nf_util.Rat
module Interval = Nf_util.Interval

let joint_addition_benefit g i j =
  Ext_int.add (Bcg.addition_benefit g i j) (Bcg.addition_benefit g j i)

let joint_severance_loss g i j =
  Ext_int.add (Bcg.severance_loss g i j) (Bcg.severance_loss g j i)

(* ---- persistent reference kernel ----------------------------------------
   Base-sharing twins over persistent graphs, retained as the parity-tested
   reference for the workspace path below (and for external one-off
   queries through the per-pair entry points). *)

let benefit_from ~base after =
  match base, after with
  | Ext_int.Fin b, Ext_int.Fin a -> Ext_int.Fin (b - a)
  | Ext_int.Inf, Ext_int.Fin _ -> Ext_int.Inf
  | Ext_int.Inf, Ext_int.Inf -> Ext_int.Fin 0
  | Ext_int.Fin _, Ext_int.Inf -> assert false (* adding cannot disconnect *)

let loss_from ~base after =
  match base, after with
  | Ext_int.Fin b, Ext_int.Fin a -> Ext_int.Fin (a - b)
  | Ext_int.Fin _, Ext_int.Inf -> Ext_int.Inf (* bridge *)
  | Ext_int.Inf, _ -> Ext_int.Inf

let joint_benefit_from ~base g i j =
  let added = Graph.add_edge g i j in
  Ext_int.add
    (benefit_from ~base:base.(i) (Bfs.distance_sum added i))
    (benefit_from ~base:base.(j) (Bfs.distance_sum added j))

let joint_loss_from ~base g i j =
  let removed = Graph.remove_edge g i j in
  Ext_int.add
    (loss_from ~base:base.(i) (Bfs.distance_sum removed i))
    (loss_from ~base:base.(j) (Bfs.distance_sum removed j))

let half_ext = function
  | Ext_int.Fin k -> Interval.Finite (Rat.make k 2)
  | Ext_int.Inf -> Interval.Pos_inf

let positive = Interval.open_closed Rat.zero Interval.Pos_inf

let stable_alpha_set_reference g =
  let base = Apsp.distance_sums g in
  let lo = ref (Ext_int.Fin 0) in
  Graph.iter_non_edges g (fun i j -> lo := Ext_int.max !lo (joint_benefit_from ~base g i j));
  let hi = ref Ext_int.Inf in
  Graph.iter_edges g (fun i j -> hi := Ext_int.min !hi (joint_loss_from ~base g i j));
  Interval.inter positive
    (Interval.make ~lo:(half_ext !lo) ~lo_closed:true ~hi:(half_ext !hi) ~hi_closed:true)

(* ---- workspace kernel ---------------------------------------------------
   Joint thresholds as raw ints (Kernel.inf as ∞): one all-sources sweep
   for the base sums, two in-place xors plus two allocation-free
   single-source sweeps per edge toggle. *)

let inf = Kernel.inf

let ibenefit ~base after = if base = inf then (if after = inf then 0 else inf) else base - after
let iloss ~base after = if base = inf || after = inf then inf else after - base
let iadd a b = if a = inf || b = inf then inf else a + b

(* [2α < k] and [2α ≤ k] against an integer-or-infinite joint threshold:
   α = num/den with den > 0, so 2α < k ⟺ 2·num < k·den. *)
let two_lt_i alpha k = k = inf || 2 * Rat.num alpha < k * Rat.den alpha
let two_le_i alpha k = k = inf || 2 * Rat.num alpha <= k * Rat.den alpha

let half_int k = if k = inf then Interval.Pos_inf else Interval.Finite (Rat.make k 2)

let scan_ws ws =
  let n = Kernel.order ws in
  let base = Kernel.all_distance_sums ws in
  let lo = ref 0 and hi = ref inf in
  for i = 0 to n - 2 do
    for j = i + 1 to n - 1 do
      Kernel.toggle ws i j;
      if Kernel.has_edge ws i j then begin
        (* toggled a non-edge on: joint benefit *)
        let bi = ibenefit ~base:base.(i) (Kernel.distance_sum_from ws i)
        and bj = ibenefit ~base:base.(j) (Kernel.distance_sum_from ws j) in
        let b = iadd bi bj in
        if b > !lo then lo := b
      end
      else begin
        (* toggled an edge off: joint loss *)
        let li = iloss ~base:base.(i) (Kernel.distance_sum_from ws i)
        and lj = iloss ~base:base.(j) (Kernel.distance_sum_from ws j) in
        let l = iadd li lj in
        if l < !hi then hi := l
      end;
      Kernel.toggle ws i j
    done
  done;
  (!lo, !hi)

(* A link is added when joint benefit > 2α (strict, mirroring the revised
   Definition 3), so stability to additions is α >= benefit/2: closed.
   A link survives when joint loss >= 2α: α <= loss/2, closed. *)
let stable_alpha_set_ws ws g =
  Kernel.load ws g;
  let lo, hi = scan_ws ws in
  Interval.inter positive
    (Interval.make ~lo:(half_int lo) ~lo_closed:true ~hi:(half_int hi) ~hi_closed:true)

(* Orbit-quotient twin: the joint benefit/loss of a pair is a sum of
   distance-sum differences, preserved by any automorphism carrying one
   pair to another, so each orbit representative contributes exactly the
   values of every pair it stands for — the max/min folds are unchanged.
   Trivial subgroup ⇒ exactly [scan_ws] (the rigid fast path). *)
let scan_orbit_ws ws (eo : Symmetry.edge_orbits) =
  let n = Kernel.order ws in
  let base = Kernel.all_distance_sums ws in
  let orb = eo.Symmetry.orbit_of_pair in
  let lo = ref 0 and hi = ref inf in
  for i = 0 to n - 2 do
    for j = i + 1 to n - 1 do
      let t = (j * (j - 1) / 2) + i in
      if orb.(t) = t then begin
        Kernel.toggle ws i j;
        if Kernel.has_edge ws i j then begin
          let bi = ibenefit ~base:base.(i) (Kernel.distance_sum_from ws i)
          and bj = ibenefit ~base:base.(j) (Kernel.distance_sum_from ws j) in
          let b = iadd bi bj in
          if b > !lo then lo := b
        end
        else begin
          let li = iloss ~base:base.(i) (Kernel.distance_sum_from ws i)
          and lj = iloss ~base:base.(j) (Kernel.distance_sum_from ws j) in
          let l = iadd li lj in
          if l < !hi then hi := l
        end;
        Kernel.toggle ws i j
      end
    done
  done;
  (!lo, !hi)

(* Twin-class variant: the O(1) representative test replaces the orbit
   table, non-minimal rows are skipped wholesale, and a within-class pair
   has a transposition swapping its endpoints, so its joint benefit/loss
   is twice the one endpoint's value — one sweep per twin pair. *)
let scan_classes_ws ws (cls : int array) (second : int array) =
  let n = Kernel.order ws in
  let base = Kernel.all_distance_sums ws in
  let lo = ref 0 and hi = ref inf in
  for i = 0 to n - 2 do
    if cls.(i) = i then begin
      let snd_i = second.(i) in
      for j = i + 1 to n - 1 do
        let same = cls.(j) = i in
        if (if same then j = snd_i else cls.(j) = j) then begin
          Kernel.toggle ws i j;
          if Kernel.has_edge ws i j then begin
            let bi = ibenefit ~base:base.(i) (Kernel.distance_sum_from ws i) in
            let bj =
              if same then bi else ibenefit ~base:base.(j) (Kernel.distance_sum_from ws j)
            in
            let b = iadd bi bj in
            if b > !lo then lo := b
          end
          else begin
            let li = iloss ~base:base.(i) (Kernel.distance_sum_from ws i) in
            let lj =
              if same then li else iloss ~base:base.(j) (Kernel.distance_sum_from ws j)
            in
            let l = iadd li lj in
            if l < !hi then hi := l
          end;
          Kernel.toggle ws i j
        end
      done
    end
  done;
  (!lo, !hi)

let stable_alpha_set_sym_ws ws sym g =
  Kernel.load ws g;
  let lo, hi =
    if Symmetry.is_trivial sym then scan_ws ws
    else
      match Symmetry.twin_partition sym with
      | Some (cls, second) -> scan_classes_ws ws cls second
      | None -> scan_orbit_ws ws (Symmetry.edge_orbits sym)
  in
  Interval.inter positive
    (Interval.make ~lo:(half_int lo) ~lo_closed:true ~hi:(half_int hi) ~hi_closed:true)

let stable_alpha_set g =
  Kernel.with_ws (fun ws ->
      if Symmetry.quotient_enabled () then
        stable_alpha_set_sym_ws ws (Symmetry.detect_twins g) g
      else stable_alpha_set_ws ws g)

let alpha_min g =
  if Graph.is_complete g then None
  else
    Kernel.with_loaded g (fun ws ->
        let n = Kernel.order ws in
        let base = Kernel.all_distance_sums ws in
        let lo = ref 0 in
        for i = 0 to n - 2 do
          for j = i + 1 to n - 1 do
            if not (Kernel.has_edge ws i j) then begin
              Kernel.toggle ws i j;
              let bi = ibenefit ~base:base.(i) (Kernel.distance_sum_from ws i)
              and bj = ibenefit ~base:base.(j) (Kernel.distance_sum_from ws j) in
              Kernel.toggle ws i j;
              let b = iadd bi bj in
              if b > !lo then lo := b
            end
          done
        done;
        if !lo = inf then None else Some (Rat.make !lo 2))

(* Joint improving moves for the transfers dynamics: a link is added when
   the pair's joint benefit exceeds its joint price 2α (strict, mirroring
   the revised Definition 3) and severed when the joint loss falls below
   2α.  Severance is a joint decision — side payments make the initiator
   irrelevant — so exactly one [Delete (i, j)] (i < j) is offered per
   edge.  Additions come first in lexicographic (i, j) order, then
   deletions, so PRNG draws in the dynamics are reproducible. *)
let improving_moves ~alpha g =
  Kernel.with_loaded g (fun ws ->
      let base = Kernel.all_distance_sums ws in
      let n = Kernel.order ws in
      let moves = ref [] in
      for i = 0 to n - 2 do
        for j = i + 1 to n - 1 do
          if not (Kernel.has_edge ws i j) then begin
            Kernel.toggle ws i j;
            let bi = ibenefit ~base:base.(i) (Kernel.distance_sum_from ws i)
            and bj = ibenefit ~base:base.(j) (Kernel.distance_sum_from ws j) in
            Kernel.toggle ws i j;
            if two_lt_i alpha (iadd bi bj) then moves := Game.Add (i, j) :: !moves
          end
        done
      done;
      for i = 0 to n - 2 do
        for j = i + 1 to n - 1 do
          if Kernel.has_edge ws i j then begin
            Kernel.toggle ws i j;
            let li = iloss ~base:base.(i) (Kernel.distance_sum_from ws i)
            and lj = iloss ~base:base.(j) (Kernel.distance_sum_from ws j) in
            Kernel.toggle ws i j;
            if not (two_le_i alpha (iadd li lj)) then
              moves := Game.Delete (i, j) :: !moves
          end
        done
      done;
      !moves)

let is_stable ~alpha g =
  Kernel.with_loaded g (fun ws ->
      let n = Kernel.order ws in
      let base = Kernel.all_distance_sums ws in
      let ok = ref true in
      (try
         for i = 0 to n - 2 do
           for j = i + 1 to n - 1 do
             Kernel.toggle ws i j;
             if Kernel.has_edge ws i j then begin
               let bi = ibenefit ~base:base.(i) (Kernel.distance_sum_from ws i)
               and bj = ibenefit ~base:base.(j) (Kernel.distance_sum_from ws j) in
               Kernel.toggle ws i j;
               if two_lt_i alpha (iadd bi bj) then begin
                 ok := false;
                 raise_notrace Exit
               end
             end
             else begin
               let li = iloss ~base:base.(i) (Kernel.distance_sum_from ws i)
               and lj = iloss ~base:base.(j) (Kernel.distance_sum_from ws j) in
               Kernel.toggle ws i j;
               if not (two_le_i alpha (iadd li lj)) then begin
                 ok := false;
                 raise_notrace Exit
               end
             end
           done
         done
       with Exit -> ());
      !ok)
