module Graph = Nf_graph.Graph
module Kernel = Nf_graph.Kernel
module Rat = Nf_util.Rat
module Interval = Nf_util.Interval

type move = Add of int * int | Delete of int * int

module Region = struct
  type 'r kind =
    | Interval : Interval.t kind
    | Union : Interval.Union.t kind

  type ('a, 'b) eq = Equal : ('a, 'a) eq

  let same_kind : type a b. a kind -> b kind -> (a, b) eq option =
   fun a b ->
    match (a, b) with
    | Interval, Interval -> Some Equal
    | Union, Union -> Some Equal
    | Interval, Union | Union, Interval -> None

  let is_empty : type r. r kind -> r -> bool =
   fun kind r ->
    match kind with
    | Interval -> Interval.is_empty r
    | Union -> Interval.Union.is_empty r

  let mem : type r. r kind -> Rat.t -> r -> bool =
   fun kind alpha r ->
    match kind with
    | Interval -> Interval.mem alpha r
    | Union -> Interval.Union.mem alpha r

  let equal : type r. r kind -> r -> r -> bool =
   fun kind a b ->
    match kind with
    | Interval -> Interval.equal a b
    | Union -> Interval.Union.equal a b

  let to_string : type r. r kind -> r -> string =
   fun kind r ->
    match kind with
    | Interval -> Interval.to_string r
    | Union -> Interval.Union.to_string r

  let pp kind fmt r = Format.pp_print_string fmt (to_string kind r)
end

module type S = sig
  type region

  val name : string
  val describe : string
  val region_kind : region Region.kind
  val schema_tag : int
  val stable_region_ws : Kernel.t -> Graph.t -> region
  val stable_region_sym_ws : (Kernel.t -> Nf_iso.Symmetry.t -> Graph.t -> region) option
  val stable_region_reference : Graph.t -> region
  val is_stable : alpha:Rat.t -> Graph.t -> bool
  val improving_moves : (alpha:Rat.t -> Graph.t -> move list) option
  val alpha_of_link_cost : Rat.t -> Rat.t
  val cost_model : Cost.game
end

type 'r t = (module S with type region = 'r)
type packed = Any : 'r t -> packed

let name (Any (module G)) = G.name
let describe (Any (module G)) = G.describe
let schema_tag (Any (module G)) = G.schema_tag
let has_moves (Any (module G)) = Option.is_some G.improving_moves
let is_stable (Any (module G)) ~alpha g = G.is_stable ~alpha g

let improving_moves (Any (module G)) ~alpha g =
  match G.improving_moves with
  | Some f -> f ~alpha g
  | None ->
    invalid_arg
      (Printf.sprintf "Game.improving_moves: game %s has no move generator"
         G.name)

let region_string_ws (Any (module G)) ws g =
  Region.to_string G.region_kind (G.stable_region_ws ws g)

let has_sym_annotator (Any (module G)) = Option.is_some G.stable_region_sym_ws

(* The sweep-tier symmetry policy shared by every bulk consumer (pooled
   annotation, store chunk workers): twin detection, whose per-graph cost
   is far below one edge toggle, gated by the global opt-out.  One-off
   entry points with expensive annotations (UCG orientation search,
   gallery graphs) upgrade to Canon.full themselves. *)
let sweep_symmetry g =
  if Nf_iso.Symmetry.quotient_enabled () then Nf_iso.Symmetry.detect_twins g
  else Nf_iso.Symmetry.trivial (Graph.order g)

let annotate_sym_ws (type r) ((module G) : r t) ws sym g : r =
  match G.stable_region_sym_ws with
  | Some f when not (Nf_iso.Symmetry.is_trivial sym) -> f ws sym g
  | _ -> G.stable_region_ws ws g
