module Graph = Nf_graph.Graph
module Bfs = Nf_graph.Bfs
module Apsp = Nf_graph.Apsp
module Ext_int = Nf_util.Ext_int

type game =
  | Bcg
  | Ucg

let distance_cost g i = Bfs.distance_sum g i
let total_distance_cost g = Apsp.wiener g

let player_cost ~alpha g i =
  (alpha *. float_of_int (Graph.degree g i)) +. Ext_int.to_float (distance_cost g i)

let player_cost_owned ~alpha g i ~owned =
  (alpha *. float_of_int owned) +. Ext_int.to_float (distance_cost g i)

let social_cost game ~alpha g =
  let edge_multiplier =
    match game with
    | Bcg -> 2.0
    | Ucg -> 1.0
  in
  (edge_multiplier *. alpha *. float_of_int (Graph.size g))
  +. Ext_int.to_float (total_distance_cost g)

let social_cost_lower_bound ~alpha n m =
  float_of_int (2 * n * (n - 1)) +. (2.0 *. (alpha -. 1.0) *. float_of_int m)

let is_social_cost_bound_tight ~alpha g =
  let bound = social_cost_lower_bound ~alpha (Graph.order g) (Graph.size g) in
  social_cost Bcg ~alpha g = bound
