(** Proper equilibrium (Definition 5), numerically.

    Myerson's properness requires a sequence of completely mixed profiles
    [σ^ε → σ] in which costlier mistakes are infinitely rarer:
    [E c_i(s'') > E c_i(s')] forces [σ^ε_i(s'') ≤ ε σ^ε_i(s')].  This
    module materializes the BCG/UCG normal form for small player counts
    (pure strategies are subsets of the other players, so the full payoff
    tensor has [2^(n(n-1))] entries — [n ≤ 4]), computes ε-proper
    approximations by iterating the canonical rank-weighting
    [σ_i(s) ∝ ε^(#strictly better replies)], and reports how much mass the
    limit places on a target pure profile.

    Proposition 2 predicts: for a link convex graph at its witness link
    cost, the canonical supporting profile attracts all the mass as
    [ε → 0].  Experiment E20 runs exactly that. *)

type report = {
  epsilon : float;
  iterations_used : int;
  target_mass : float array;  (** per player: probability of the target
                                  pure strategy under [σ^ε] *)
  min_target_mass : float;
  constraints_ok : bool;  (** the Definition-5 inequalities hold for the
                              computed [σ^ε] (within tolerance) *)
}

val max_order : int
(** Largest supported player count (4). *)

val analyze :
  Cost.game ->
  alpha:float ->
  target:Strategy.t ->
  ?epsilons:float list ->
  ?iterations:int ->
  unit ->
  report list
(** One report per ε (default [0.3; 0.1; 0.03; 0.01]), in order.
    @raise Invalid_argument when the profile has more than {!max_order}
    players. *)

val is_proper_limit : report list -> threshold:float -> bool
(** All constraints held and the final (smallest-ε) report puts at least
    [threshold] mass on the target for every player. *)
