module Graph = Nf_graph.Graph
module Bfs = Nf_graph.Bfs
module Kernel = Nf_graph.Kernel
module Symmetry = Nf_iso.Symmetry
module Bitset = Nf_util.Bitset
module Ext_int = Nf_util.Ext_int
module Rat = Nf_util.Rat
module Interval = Nf_util.Interval

type owned = Bitset.t

(* ---- persistent reference path ------------------------------------------
   Straight off the definitions, over persistent graphs: retained as the
   public one-off entry points ([accepts], [acceptance_interval]) and as
   the reference that the differential tests compare the workspace kernel
   against ([nash_alpha_set_reference]). *)

(* The graph player i faces after discarding its own purchases: edges
   bought by others survive. *)
let base_graph g i ~owned = Bitset.fold (fun j acc -> Graph.remove_edge acc i j) owned g

(* Buying an edge that already exists is strictly dominated, so deviation
   targets range over the non-neighbors of the base graph. *)
let candidates base i =
  Bitset.diff (Bitset.remove i (Bitset.full (Graph.order base))) (Graph.neighbors base i)

let with_targets base i targets = Bitset.fold (fun j acc -> Graph.add_edge acc i j) targets base

(* cost(k0, D0) <= cost(k1, D1) at link cost α, with infinite distance
   sums compared as infinite costs *)
let cost_le alpha (k0, d0) (k1, d1) =
  match d0, d1 with
  | Ext_int.Fin d0, Ext_int.Fin d1 ->
    (* α(k0 - k1) <= d1 - d0 *)
    Rat.(mul alpha (of_int (k0 - k1)) <= of_int (d1 - d0))
  | Ext_int.Fin _, Ext_int.Inf -> true
  | Ext_int.Inf, Ext_int.Fin _ -> false
  | Ext_int.Inf, Ext_int.Inf -> true

let accepts ~alpha g i ~owned =
  let base = base_graph g i ~owned in
  let current = (Bitset.cardinal owned, Bfs.distance_sum g i) in
  let ok = ref true in
  Nf_util.Subset.iter_subsets (candidates base i) (fun targets ->
      if !ok then begin
        let deviation =
          (Bitset.cardinal targets, Bfs.distance_sum (with_targets base i targets) i)
        in
        if not (cost_le alpha current deviation) then ok := false
      end);
  !ok

let acceptance_interval g i ~owned =
  let d0 =
    match Bfs.distance_sum g i with
    | Ext_int.Fin d -> d
    | Ext_int.Inf -> invalid_arg "Ucg.acceptance_interval: player disconnected"
  in
  let k0 = Bitset.cardinal owned in
  let base = base_graph g i ~owned in
  let result = ref (Interval.open_closed Rat.zero Interval.Pos_inf) in
  Nf_util.Subset.iter_subsets (candidates base i) (fun targets ->
      if not (Interval.is_empty !result) then begin
        match Bfs.distance_sum (with_targets base i targets) i with
        | Ext_int.Inf -> () (* deviation has infinite cost: never binding *)
        | Ext_int.Fin dt ->
          let k = Bitset.cardinal targets in
          (* constraint: α·k0 + d0 <= α·k + dt *)
          let constraint_interval =
            if k > k0 then
              (* α >= (d0 - dt)/(k - k0) *)
              Interval.make
                ~lo:(Interval.Finite (Rat.make (d0 - dt) (k - k0)))
                ~lo_closed:true ~hi:Interval.Pos_inf ~hi_closed:false
            else if k < k0 then
              (* α <= (dt - d0)/(k0 - k) *)
              Interval.make ~lo:Interval.Neg_inf ~lo_closed:false
                ~hi:(Interval.Finite (Rat.make (dt - d0) (k0 - k)))
                ~hi_closed:true
            else if dt >= d0 then Interval.full
            else Interval.empty
          in
          result := Interval.inter !result constraint_interval
      end);
  !result

(* ---- workspace kernel twins ---------------------------------------------
   Same semantics against a loaded Kernel workspace: the base graph is two
   xors per owned edge instead of a persistent rebuild, every deviation is
   toggled on/off around one allocation-free sweep, and the acceptance
   interval is accumulated as integer fraction bounds (numerator,
   denominator > 0, closedness) instead of a chain of boxed Interval
   intersections — the bound updates are the same order-independent
   max/min folds, so the resulting intervals are structurally identical. *)

let inf = Kernel.inf

let candidates_ws ws v =
  Bitset.diff (Bitset.remove v (Bitset.full (Kernel.order ws))) (Kernel.neighbors ws v)

let cost_le_i alpha ~k0 ~d0 ~k ~dt =
  if d0 = inf then dt = inf
  else dt = inf || Rat.num alpha * (k0 - k) <= (dt - d0) * Rat.den alpha

(* [ws] must hold the full graph; restored on exit. *)
let accepts_ws ~alpha ws v ~owned =
  let k0 = Bitset.cardinal owned in
  let d0 = Kernel.distance_sum_from ws v in
  (* strip v's own purchases to get the deviation base (mask to actual
     neighbors so a stray non-edge in [owned] is ignored, like the
     reference's remove_edge no-op) *)
  let strip = Bitset.inter owned (Kernel.neighbors ws v) in
  Bitset.iter (fun j -> Kernel.toggle ws v j) strip;
  let ok = ref true in
  (try
     Nf_util.Subset.iter_subsets (candidates_ws ws v) (fun targets ->
         Bitset.iter (fun j -> Kernel.toggle ws v j) targets;
         let dt = Kernel.distance_sum_from ws v in
         Bitset.iter (fun j -> Kernel.toggle ws v j) targets;
         if not (cost_le_i alpha ~k0 ~d0 ~k:(Bitset.cardinal targets) ~dt) then begin
           ok := false;
           raise_notrace Exit
         end)
   with Exit -> ());
  Bitset.iter (fun j -> Kernel.toggle ws v j) strip;
  !ok

(* [ws] must hold the full graph; restored on exit.  Raw-bound core of the
   acceptance interval: writes [lo_n; lo_d; lo_c; hi_n; hi_d; hi_c] into
   [out] (lo = lo_n/lo_d with lo_d > 0, hi_d = 0 meaning +∞, closedness
   as 0/1) and returns [false] when some equal-cardinality deviation
   strictly improves the distances (no α helps).  The orbit-quotient
   orientation search consumes the bounds directly, without boxing them
   into an [Interval.t] per lookup. *)
let acceptance_bounds_ws ws v ~owned ~(out : int array) =
  let d0 = Kernel.distance_sum_from ws v in
  if d0 = inf then invalid_arg "Ucg.acceptance_interval: player disconnected";
  let k0 = Bitset.cardinal owned in
  let strip = Bitset.inter owned (Kernel.neighbors ws v) in
  Bitset.iter (fun j -> Kernel.toggle ws v j) strip;
  (* running bounds of the intersection, starting from (0, +inf]:
     lo = lo_n/lo_d (lo_d > 0), hi = hi_n/hi_d with hi_d = 0 meaning +inf;
     ties keep the existing closedness AND the constraint's (constraints
     are always closed, so a tie is a no-op — except against the open
     initial lo = 0). *)
  let lo_n = ref 0
  and lo_d = ref 1
  and lo_c = ref false in
  let hi_n = ref 0
  and hi_d = ref 0
  and hi_c = ref false in
  let empty = ref false in
  (try
     Nf_util.Subset.iter_subsets (candidates_ws ws v) (fun targets ->
         Bitset.iter (fun j -> Kernel.toggle ws v j) targets;
         let dt = Kernel.distance_sum_from ws v in
         Bitset.iter (fun j -> Kernel.toggle ws v j) targets;
         if dt <> inf then begin
           (* constraint: α·k0 + d0 <= α·k + dt *)
           let k = Bitset.cardinal targets in
           if k > k0 then begin
             (* α >= (d0 - dt)/(k - k0), closed *)
             let n = d0 - dt
             and d = k - k0 in
             let c = compare (n * !lo_d) (!lo_n * d) in
             if c > 0 then begin
               lo_n := n;
               lo_d := d;
               lo_c := true
             end
           end
           else if k < k0 then begin
             (* α <= (dt - d0)/(k0 - k), closed *)
             let n = dt - d0
             and d = k0 - k in
             if !hi_d = 0 || compare (n * !hi_d) (!hi_n * d) < 0 then begin
               hi_n := n;
               hi_d := d;
               hi_c := true
             end
           end
           else if dt < d0 then begin
             (* same purchase count, strictly better distances: no α helps *)
             empty := true;
             raise_notrace Exit
           end
         end)
   with Exit -> ());
  Bitset.iter (fun j -> Kernel.toggle ws v j) strip;
  if !empty then false
  else begin
    out.(0) <- !lo_n;
    out.(1) <- !lo_d;
    out.(2) <- (if !lo_c then 1 else 0);
    out.(3) <- !hi_n;
    out.(4) <- !hi_d;
    out.(5) <- (if !hi_c then 1 else 0);
    true
  end

let acceptance_interval_ws ws v ~owned =
  let out = Array.make 6 0 in
  if not (acceptance_bounds_ws ws v ~owned ~out) then Interval.empty
  else
    Interval.make
      ~lo:(Interval.Finite (Rat.make out.(0) out.(1)))
      ~lo_closed:(out.(2) = 1)
      ~hi:(if out.(4) = 0 then Interval.Pos_inf else Interval.Finite (Rat.make out.(3) out.(4)))
      ~hi_closed:(out.(5) = 1)

let best_response ~alpha g i ~owned =
  Kernel.with_loaded g (fun ws ->
      let strip = Bitset.inter owned (Kernel.neighbors ws i) in
      Bitset.iter (fun j -> Kernel.toggle ws i j) strip;
      let eval targets =
        Bitset.iter (fun j -> Kernel.toggle ws i j) targets;
        let dt = Kernel.distance_sum_from ws i in
        Bitset.iter (fun j -> Kernel.toggle ws i j) targets;
        (Bitset.cardinal targets, dt)
      in
      (* cost(k, d) = α·k + d with d possibly ∞ (inf); strictly-better by
         exact cross-multiplication:
         α·k1 + d1 < α·k0 + d0 ⟺ num·(k1 − k0) < (d0 − d1)·den *)
      let better (k1, d1) (k0, d0) =
        if d1 = inf then false
        else d0 = inf || Rat.num alpha * (k1 - k0) < (d0 - d1) * Rat.den alpha
      in
      let best = ref owned in
      let best_eval = ref (eval owned) in
      Nf_util.Subset.iter_subsets (candidates_ws ws i) (fun targets ->
          let e = eval targets in
          if better e !best_eval then begin
            best := targets;
            best_eval := e
          end);
      let k, d = !best_eval in
      (* the full candidate set makes i adjacent to every other vertex, so
         the minimum is always finite *)
      assert (d <> inf);
      (!best, Rat.add (Rat.mul alpha (Rat.of_int k)) (Rat.of_int d)))

let best_response_f ~alpha g i ~owned =
  let targets, cost = best_response ~alpha g i ~owned in
  (targets, Rat.to_float cost)

(* --- orientation search ------------------------------------------------ *)

(* Shared structure: assign each edge to an endpoint; as soon as a vertex
   has all its incident edges decided, test it (accept/interval) and
   prune.  [judge] abstracts over the per-α boolean check and the exact
   interval check. *)
let search_orientations (type verdict) g ~(top : verdict)
    ~(judge : int -> owned -> verdict -> verdict option)
    ~(emit : verdict -> unit) =
  let n = Graph.order g in
  let edges = Array.of_list (Graph.edges g) in
  let m = Array.length edges in
  let remaining = Array.make n 0 in
  Array.iter
    (fun (i, j) ->
      remaining.(i) <- remaining.(i) + 1;
      remaining.(j) <- remaining.(j) + 1)
    edges;
  let owned_now = Array.make n Bitset.empty in
  (* vertices with no edges are judged once, up front *)
  let rec judge_isolated v acc =
    if v >= n then Some acc
    else if remaining.(v) = 0 then
      match judge v Bitset.empty acc with
      | Some acc -> judge_isolated (v + 1) acc
      | None -> None
    else judge_isolated (v + 1) acc
  in
  let rec assign e acc =
    if e >= m then emit acc
    else begin
      let i, j = edges.(e) in
      let try_owner owner other =
        owned_now.(owner) <- Bitset.add other owned_now.(owner);
        remaining.(i) <- remaining.(i) - 1;
        remaining.(j) <- remaining.(j) - 1;
        let verdict =
          let after_i =
            if remaining.(i) = 0 then judge i owned_now.(i) acc else Some acc
          in
          match after_i with
          | None -> None
          | Some acc -> if remaining.(j) = 0 then judge j owned_now.(j) acc else Some acc
        in
        (match verdict with
        | Some acc -> assign (e + 1) acc
        | None -> ());
        owned_now.(owner) <- Bitset.remove other owned_now.(owner);
        remaining.(i) <- remaining.(i) + 1;
        remaining.(j) <- remaining.(j) + 1
      in
      try_owner i j;
      try_owner j i
    end
  in
  match judge_isolated 0 top with
  | None -> ()
  | Some acc -> if m = 0 then emit acc else assign 0 acc

(* cheap orientation-independent necessary conditions *)
let passes_necessary_conditions ~alpha g =
  Kernel.with_loaded g (fun ws ->
      let n = Kernel.order ws in
      let base = Kernel.all_distance_sums ws in
      let num = Rat.num alpha
      and den = Rat.den alpha in
      let ok = ref true in
      (try
         (* buying a missing link on top of the current strategy must not
            strictly improve either endpoint: α >= D(G) - D(G+ij) *)
         for i = 0 to n - 2 do
           for j = i + 1 to n - 1 do
             if not (Kernel.has_edge ws i j) then begin
               Kernel.toggle ws i j;
               let check a =
                 let d1 = Kernel.distance_sum_from ws a in
                 if d1 <> inf && (base.(a) = inf || num < (base.(a) - d1) * den) then begin
                   ok := false;
                   Kernel.toggle ws i j;
                   raise_notrace Exit
                 end
               in
               check i;
               check j;
               Kernel.toggle ws i j
             end
           done
         done;
         (* whichever endpoint owns an edge must tolerate it: some
            endpoint's single-drop loss must reach α *)
         for i = 0 to n - 2 do
           for j = i + 1 to n - 1 do
             if Kernel.has_edge ws i j then begin
               Kernel.toggle ws i j;
               let tolerates a =
                 let d1 = Kernel.distance_sum_from ws a in
                 base.(a) = inf || d1 = inf || num <= (d1 - base.(a)) * den
               in
               let t = tolerates i || tolerates j in
               Kernel.toggle ws i j;
               if not t then begin
                 ok := false;
                 raise_notrace Exit
               end
             end
           done
         done
       with Exit -> ());
      !ok)

let is_nash_graph ~alpha g =
  passes_necessary_conditions ~alpha g
  && Kernel.with_loaded g (fun ws ->
         let memo = Hashtbl.create 64 in
         let accepts_memo v owned =
           let key = (v, owned) in
           match Hashtbl.find_opt memo key with
           | Some verdict -> verdict
           | None ->
             let verdict = accepts_ws ~alpha ws v ~owned in
             Hashtbl.add memo key verdict;
             verdict
         in
         let found = ref false in
         (let judge v owned () = if !found || not (accepts_memo v owned) then None else Some () in
          let emit () = found := true in
          search_orientations g ~top:() ~judge ~emit);
         !found)

let is_nash_graph_f ~alpha g =
  let denom = 4096 in
  let scaled = alpha *. float_of_int denom in
  if Float.is_integer scaled then is_nash_graph ~alpha:(Rat.make (int_of_float scaled) denom) g
  else invalid_arg "Ucg.is_nash_graph_f: alpha not dyadic with denominator <= 4096"

let is_nash_orientation ~alpha g ~owner =
  let n = Graph.order g in
  let owned_of = Array.make n Bitset.empty in
  Graph.iter_edges g (fun i j ->
      let o = owner i j in
      if o <> i && o <> j then invalid_arg "Ucg.is_nash_orientation: owner not an endpoint";
      let other = if o = i then j else i in
      owned_of.(o) <- Bitset.add other owned_of.(o));
  Kernel.with_loaded g (fun ws ->
      let rec go v = v >= n || (accepts_ws ~alpha ws v ~owned:owned_of.(v) && go (v + 1)) in
      go 0)

let nash_alpha_set_gen ~interval_of g =
  if not (Nf_graph.Connectivity.is_connected g) || Graph.order g = 0 then
    Interval.Union.empty
  else begin
    let memo = Hashtbl.create 64 in
    let interval_memo v owned =
      let key = (v, owned) in
      match Hashtbl.find_opt memo key with
      | Some interval -> interval
      | None ->
        let interval = interval_of v owned in
        Hashtbl.add memo key interval;
        interval
    in
    let pieces = ref [] in
    let judge v owned current =
      let refined = Interval.inter current (interval_memo v owned) in
      if Interval.is_empty refined then None else Some refined
    in
    let emit interval = pieces := interval :: !pieces in
    search_orientations g ~top:(Interval.open_closed Rat.zero Interval.Pos_inf) ~judge
      ~emit;
    Interval.Union.of_list !pieces
  end

let nash_alpha_set_ws ws g =
  Kernel.load ws g;
  nash_alpha_set_gen ~interval_of:(fun v owned -> acceptance_interval_ws ws v ~owned) g

(* ---- orbit-quotient orientation search ----------------------------------
   Two symmetry dividends on top of the plain walk, both exact:

   1. Sibling-branch pruning by live group elements.  Walking the edge
      list in fixed order, maintain the subset of enumerated automorphisms
      that fix every already-assigned arc pointwise (a swap-to-front
      prefix of one index array — the set at each depth survives deeper
      reorderings).  At edge {i,j}, if some live σ swaps i and j, then σ
      maps the owner-i subtree onto the owner-j subtree leaf-for-leaf, and
      acceptance intervals are isomorphism-invariant, so the skipped
      subtree would emit exactly the pieces the kept one does.

   2. An allocation-free walk.  The per-(vertex, owned) acceptance
      intervals live in lazily-filled integer tables indexed by compact
      owned-masks over each vertex's neighbor list, and the running
      intersection is a file of per-depth integer registers compared by
      exact cross-multiplication — no hashing and no boxed intervals until
      a leaf emits a piece.  Piece construction goes through the same
      [Rat.make]/[Interval.make] normalization as the plain path, and
      [Union.of_list] canonicalizes the collection, so the result is
      structurally identical to the unquotiented walk's. *)

let closure_cap m = if m < 10 then 32 else 1024

(* tables hold one slot per (vertex, subset of incident edges) *)
let table_budget = 1 lsl 20

let nash_alpha_set_quotient_ws ws sym g =
  let n = Graph.order g in
  let edges = Array.of_list (Graph.edges g) in
  let m = Array.length edges in
  let elems = Symmetry.group_elements ~cap:(closure_cap m) sym in
  let nelems = Array.length elems in
  let live = Array.init nelems Fun.id in
  let live_len = Array.make (m + 2) nelems in
  let nbrs =
    Array.init n (fun v -> Array.of_list (Bitset.elements (Kernel.neighbors ws v)))
  in
  let off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    off.(v + 1) <- off.(v) + (1 lsl Array.length nbrs.(v))
  done;
  let tsize = off.(n) in
  (* state: 0 unknown, 1 empty, 2 known; cl: bit 0 lo closed, bit 1 hi *)
  let state = Bytes.make tsize '\000' in
  let t_cl = Bytes.make tsize '\000' in
  let t_lo_n = Array.make tsize 0
  and t_lo_d = Array.make tsize 1
  and t_hi_n = Array.make tsize 0
  and t_hi_d = Array.make tsize 0 in
  let bounds = Array.make 6 0 in
  let lookup v owned =
    let nb = nbrs.(v) in
    let mask = ref 0 in
    for k = 0 to Array.length nb - 1 do
      if Bitset.mem nb.(k) owned then mask := !mask lor (1 lsl k)
    done;
    let idx = off.(v) + !mask in
    if Bytes.get state idx = '\000' then
      if acceptance_bounds_ws ws v ~owned ~out:bounds then begin
        Bytes.set state idx '\002';
        t_lo_n.(idx) <- bounds.(0);
        t_lo_d.(idx) <- bounds.(1);
        t_hi_n.(idx) <- bounds.(3);
        t_hi_d.(idx) <- bounds.(4);
        Bytes.set t_cl idx (Char.chr (bounds.(2) lor (bounds.(5) lsl 1)))
      end
      else Bytes.set state idx '\001';
    idx
  in
  (* per-depth register file for the running intersection *)
  let r_lo_n = Array.make (m + 2) 0
  and r_lo_d = Array.make (m + 2) 1
  and r_hi_n = Array.make (m + 2) 0
  and r_hi_d = Array.make (m + 2) 0 in
  let r_lo_c = Bytes.make (m + 2) '\000'
  and r_hi_c = Bytes.make (m + 2) '\000' in
  let copy_slot s d =
    r_lo_n.(d) <- r_lo_n.(s);
    r_lo_d.(d) <- r_lo_d.(s);
    r_hi_n.(d) <- r_hi_n.(s);
    r_hi_d.(d) <- r_hi_d.(s);
    Bytes.set r_lo_c d (Bytes.get r_lo_c s);
    Bytes.set r_hi_c d (Bytes.get r_hi_c s)
  in
  (* intersect slot [s] with table entry [idx]; false = now empty.  Same
     max/min/closedness semantics as Interval.inter, in integer space. *)
  let inter_slot s idx =
    let cl = Char.code (Bytes.get t_cl idx) in
    let c = compare (t_lo_n.(idx) * r_lo_d.(s)) (r_lo_n.(s) * t_lo_d.(idx)) in
    if c > 0 then begin
      r_lo_n.(s) <- t_lo_n.(idx);
      r_lo_d.(s) <- t_lo_d.(idx);
      Bytes.set r_lo_c s (if cl land 1 = 1 then '\001' else '\000')
    end
    else if c = 0 && cl land 1 = 0 then Bytes.set r_lo_c s '\000';
    if t_hi_d.(idx) > 0 then
      if r_hi_d.(s) = 0 then begin
        r_hi_n.(s) <- t_hi_n.(idx);
        r_hi_d.(s) <- t_hi_d.(idx);
        Bytes.set r_hi_c s (if cl land 2 = 2 then '\001' else '\000')
      end
      else begin
        let c = compare (t_hi_n.(idx) * r_hi_d.(s)) (r_hi_n.(s) * t_hi_d.(idx)) in
        if c < 0 then begin
          r_hi_n.(s) <- t_hi_n.(idx);
          r_hi_d.(s) <- t_hi_d.(idx);
          Bytes.set r_hi_c s (if cl land 2 = 2 then '\001' else '\000')
        end
        else if c = 0 && cl land 2 = 0 then Bytes.set r_hi_c s '\000'
      end;
    if r_hi_d.(s) = 0 then true
    else begin
      let c = compare (r_lo_n.(s) * r_hi_d.(s)) (r_hi_n.(s) * r_lo_d.(s)) in
      c < 0
      || (c = 0 && Bytes.get r_lo_c s = '\001' && Bytes.get r_hi_c s = '\001')
    end
  in
  let remaining = Array.make n 0 in
  Array.iter
    (fun (i, j) ->
      remaining.(i) <- remaining.(i) + 1;
      remaining.(j) <- remaining.(j) + 1)
    edges;
  let owned_now = Array.make n Bitset.empty in
  let pieces = ref [] in
  let emit s =
    pieces :=
      Interval.make
        ~lo:(Interval.Finite (Rat.make r_lo_n.(s) r_lo_d.(s)))
        ~lo_closed:(Bytes.get r_lo_c s = '\001')
        ~hi:
          (if r_hi_d.(s) = 0 then Interval.Pos_inf
           else Interval.Finite (Rat.make r_hi_n.(s) r_hi_d.(s)))
        ~hi_closed:(Bytes.get r_hi_c s = '\001')
      :: !pieces
  in
  let judge v s =
    let idx = lookup v owned_now.(v) in
    Bytes.get state idx <> '\001' && inter_slot s idx
  in
  (* the live prefix at depth e holds the elements fixing every arc of the
     first e assignments pointwise; both branches of edge e induce the
     same child condition (σi = i and σj = j), so one filter serves both *)
  let filter_live e i j =
    let len = live_len.(e) in
    let kept = ref 0 in
    for k = 0 to len - 1 do
      let p = elems.(live.(k)) in
      if p.(i) = i && p.(j) = j then begin
        let tmp = live.(!kept) in
        live.(!kept) <- live.(k);
        live.(k) <- tmp;
        incr kept
      end
    done;
    live_len.(e + 1) <- !kept
  in
  let swap_exists e i j =
    let len = live_len.(e) in
    let rec go k =
      k < len
      &&
      let p = elems.(live.(k)) in
      (p.(i) = j && p.(j) = i) || go (k + 1)
    in
    go 0
  in
  let rec assign e =
    if e >= m then emit e
    else begin
      let i, j = edges.(e) in
      if nelems > 0 then filter_live e i j;
      let try_owner owner other =
        owned_now.(owner) <- Bitset.add other owned_now.(owner);
        remaining.(i) <- remaining.(i) - 1;
        remaining.(j) <- remaining.(j) - 1;
        copy_slot e (e + 1);
        let ok =
          (remaining.(i) > 0 || judge i (e + 1))
          && (remaining.(j) > 0 || judge j (e + 1))
        in
        if ok then assign (e + 1);
        owned_now.(owner) <- Bitset.remove other owned_now.(owner);
        remaining.(i) <- remaining.(i) + 1;
        remaining.(j) <- remaining.(j) + 1
      in
      try_owner i j;
      if not (nelems > 0 && swap_exists e i j) then try_owner j i
    end
  in
  (* top slot: (0, +inf], matching the plain walk's starting interval *)
  r_lo_n.(0) <- 0;
  r_lo_d.(0) <- 1;
  Bytes.set r_lo_c 0 '\000';
  r_hi_d.(0) <- 0;
  (* connected graphs with n >= 2 have no isolated vertices, and n <= 1
     never reaches this function (the subgroup is trivial there) *)
  assign 0;
  Interval.Union.of_list !pieces

let nash_alpha_set_sym_ws ws sym g =
  Kernel.load ws g;
  if Symmetry.is_trivial sym then
    nash_alpha_set_gen ~interval_of:(fun v owned -> acceptance_interval_ws ws v ~owned) g
  else if not (Nf_graph.Connectivity.is_connected g) || Graph.order g = 0 then
    Interval.Union.empty
  else begin
    (* table budget: a vertex of degree d costs 2^d slots; graphs dense
       enough to blow it would not finish the 2^m walk either way, but
       fail back to the plain path rather than allocate absurdly *)
    let budget_ok =
      let total = ref 0 in
      (try
         for v = 0 to Graph.order g - 1 do
           total := !total + (1 lsl Graph.degree g v);
           if !total > table_budget then raise_notrace Exit
         done;
         true
       with Exit -> false)
    in
    if budget_ok then nash_alpha_set_quotient_ws ws sym g
    else
      nash_alpha_set_gen
        ~interval_of:(fun v owned -> acceptance_interval_ws ws v ~owned)
        g
  end

(* One-off entry point: auto-detect symmetry when the quotient is enabled.
   The orientation walk is 2^m, so on searches big enough to matter
   (m >= 10) the exact group from Canon.full is cheap by comparison;
   below that the twin scan costs well under a microsecond and the rigid
   fast path keeps asymmetric graphs on exactly the plain walk. *)
let nash_alpha_set g =
  Kernel.with_ws (fun ws ->
      if not (Symmetry.quotient_enabled ()) then nash_alpha_set_ws ws g
      else
        let sym =
          if Graph.size g >= 10 then Symmetry.detect_full g
          else Symmetry.detect_twins g
        in
        nash_alpha_set_sym_ws ws sym g)

let nash_alpha_set_reference g =
  nash_alpha_set_gen ~interval_of:(fun v owned -> acceptance_interval g v ~owned) g
