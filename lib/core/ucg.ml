module Graph = Nf_graph.Graph
module Bfs = Nf_graph.Bfs
module Bitset = Nf_util.Bitset
module Ext_int = Nf_util.Ext_int
module Rat = Nf_util.Rat
module Interval = Nf_util.Interval

type owned = Bitset.t

(* The graph player i faces after discarding its own purchases: edges
   bought by others survive. *)
let base_graph g i ~owned = Bitset.fold (fun j acc -> Graph.remove_edge acc i j) owned g

(* Buying an edge that already exists is strictly dominated, so deviation
   targets range over the non-neighbors of the base graph. *)
let candidates base i =
  Bitset.diff (Bitset.remove i (Bitset.full (Graph.order base))) (Graph.neighbors base i)

let with_targets base i targets = Bitset.fold (fun j acc -> Graph.add_edge acc i j) targets base

(* cost(k0, D0) <= cost(k1, D1) at link cost α, with infinite distance
   sums compared as infinite costs *)
let cost_le alpha (k0, d0) (k1, d1) =
  match d0, d1 with
  | Ext_int.Fin d0, Ext_int.Fin d1 ->
    (* α(k0 - k1) <= d1 - d0 *)
    Rat.(mul alpha (of_int (k0 - k1)) <= of_int (d1 - d0))
  | Ext_int.Fin _, Ext_int.Inf -> true
  | Ext_int.Inf, Ext_int.Fin _ -> false
  | Ext_int.Inf, Ext_int.Inf -> true

let accepts ~alpha g i ~owned =
  let base = base_graph g i ~owned in
  let current = (Bitset.cardinal owned, Bfs.distance_sum g i) in
  let ok = ref true in
  Nf_util.Subset.iter_subsets (candidates base i) (fun targets ->
      if !ok then begin
        let deviation =
          (Bitset.cardinal targets, Bfs.distance_sum (with_targets base i targets) i)
        in
        if not (cost_le alpha current deviation) then ok := false
      end);
  !ok

let best_response ~alpha g i ~owned =
  let base = base_graph g i ~owned in
  let cost_of targets =
    (Rat.to_float alpha *. float_of_int (Bitset.cardinal targets))
    +. Ext_int.to_float (Bfs.distance_sum (with_targets base i targets) i)
  in
  let best = ref owned
  and best_cost = ref (cost_of owned) in
  Nf_util.Subset.iter_subsets (candidates base i) (fun targets ->
      let c = cost_of targets in
      if c < !best_cost then begin
        best := targets;
        best_cost := c
      end);
  (!best, !best_cost)

let acceptance_interval g i ~owned =
  let d0 =
    match Bfs.distance_sum g i with
    | Ext_int.Fin d -> d
    | Ext_int.Inf -> invalid_arg "Ucg.acceptance_interval: player disconnected"
  in
  let k0 = Bitset.cardinal owned in
  let base = base_graph g i ~owned in
  let result = ref (Interval.open_closed Rat.zero Interval.Pos_inf) in
  Nf_util.Subset.iter_subsets (candidates base i) (fun targets ->
      if not (Interval.is_empty !result) then begin
        match Bfs.distance_sum (with_targets base i targets) i with
        | Ext_int.Inf -> () (* deviation has infinite cost: never binding *)
        | Ext_int.Fin dt ->
          let k = Bitset.cardinal targets in
          (* constraint: α·k0 + d0 <= α·k + dt *)
          let constraint_interval =
            if k > k0 then
              (* α >= (d0 - dt)/(k - k0) *)
              Interval.make
                ~lo:(Interval.Finite (Rat.make (d0 - dt) (k - k0)))
                ~lo_closed:true ~hi:Interval.Pos_inf ~hi_closed:false
            else if k < k0 then
              (* α <= (dt - d0)/(k0 - k) *)
              Interval.make ~lo:Interval.Neg_inf ~lo_closed:false
                ~hi:(Interval.Finite (Rat.make (dt - d0) (k0 - k)))
                ~hi_closed:true
            else if dt >= d0 then Interval.full
            else Interval.empty
          in
          result := Interval.inter !result constraint_interval
      end);
  !result

(* --- orientation search ------------------------------------------------ *)

(* Shared structure: assign each edge to an endpoint; as soon as a vertex
   has all its incident edges decided, test it (accept/interval) and
   prune.  [judge] abstracts over the per-α boolean check and the exact
   interval check. *)
let search_orientations (type verdict) g ~(top : verdict)
    ~(judge : int -> owned -> verdict -> verdict option)
    ~(emit : verdict -> unit) =
  let n = Graph.order g in
  let edges = Array.of_list (Graph.edges g) in
  let m = Array.length edges in
  let remaining = Array.make n 0 in
  Array.iter
    (fun (i, j) ->
      remaining.(i) <- remaining.(i) + 1;
      remaining.(j) <- remaining.(j) + 1)
    edges;
  let owned_now = Array.make n Bitset.empty in
  (* vertices with no edges are judged once, up front *)
  let rec judge_isolated v acc =
    if v >= n then Some acc
    else if remaining.(v) = 0 then
      match judge v Bitset.empty acc with
      | Some acc -> judge_isolated (v + 1) acc
      | None -> None
    else judge_isolated (v + 1) acc
  in
  let rec assign e acc =
    if e >= m then emit acc
    else begin
      let i, j = edges.(e) in
      let try_owner owner other =
        owned_now.(owner) <- Bitset.add other owned_now.(owner);
        remaining.(i) <- remaining.(i) - 1;
        remaining.(j) <- remaining.(j) - 1;
        let verdict =
          let after_i =
            if remaining.(i) = 0 then judge i owned_now.(i) acc else Some acc
          in
          match after_i with
          | None -> None
          | Some acc -> if remaining.(j) = 0 then judge j owned_now.(j) acc else Some acc
        in
        (match verdict with
        | Some acc -> assign (e + 1) acc
        | None -> ());
        owned_now.(owner) <- Bitset.remove other owned_now.(owner);
        remaining.(i) <- remaining.(i) + 1;
        remaining.(j) <- remaining.(j) + 1
      in
      try_owner i j;
      try_owner j i
    end
  in
  match judge_isolated 0 top with
  | None -> ()
  | Some acc -> if m = 0 then emit acc else assign 0 acc

(* cheap orientation-independent necessary conditions *)
let passes_necessary_conditions ~alpha g =
  let additions_ok = ref true in
  Graph.iter_non_edges g (fun i j ->
      (* buying the missing link on top of the current strategy must not
         strictly improve either endpoint: α >= D(G) - D(G+ij) *)
      let check a b =
        match Bfs.distance_sum g a, Bfs.distance_sum (Graph.add_edge g a b) a with
        | Ext_int.Fin d0, Ext_int.Fin d1 -> if Rat.(alpha < of_int (d0 - d1)) then additions_ok := false
        | Ext_int.Inf, Ext_int.Fin _ -> additions_ok := false
        | (Ext_int.Fin _ | Ext_int.Inf), Ext_int.Inf -> ()
      in
      check i j;
      check j i);
  !additions_ok
  &&
  let drops_ok = ref true in
  Graph.iter_edges g (fun i j ->
      (* whichever endpoint owns the edge must tolerate it: some endpoint's
         single-drop loss must reach α *)
      let loss v w =
        match Bfs.distance_sum g v, Bfs.distance_sum (Graph.remove_edge g v w) v with
        | Ext_int.Fin d0, Ext_int.Fin d1 -> Ext_int.Fin (d1 - d0)
        | Ext_int.Fin _, Ext_int.Inf -> Ext_int.Inf
        | Ext_int.Inf, _ -> Ext_int.Inf
      in
      let tolerates = function
        | Ext_int.Inf -> true
        | Ext_int.Fin d -> Rat.(alpha <= of_int d)
      in
      if not (tolerates (loss i j) || tolerates (loss j i)) then drops_ok := false);
  !drops_ok

let is_nash_graph ~alpha g =
  passes_necessary_conditions ~alpha g
  &&
  let memo = Hashtbl.create 64 in
  let accepts_memo v owned =
    let key = (v, owned) in
    match Hashtbl.find_opt memo key with
    | Some verdict -> verdict
    | None ->
      let verdict = accepts ~alpha g v ~owned in
      Hashtbl.add memo key verdict;
      verdict
  in
  let found = ref false in
  (let judge v owned () = if !found || not (accepts_memo v owned) then None else Some () in
   let emit () = found := true in
   search_orientations g ~top:() ~judge ~emit);
  !found

let is_nash_graph_f ~alpha g =
  let denom = 4096 in
  let scaled = alpha *. float_of_int denom in
  if Float.is_integer scaled then is_nash_graph ~alpha:(Rat.make (int_of_float scaled) denom) g
  else invalid_arg "Ucg.is_nash_graph_f: alpha not dyadic with denominator <= 4096"

let is_nash_orientation ~alpha g ~owner =
  let n = Graph.order g in
  let owned_of = Array.make n Bitset.empty in
  Graph.iter_edges g (fun i j ->
      let o = owner i j in
      if o <> i && o <> j then invalid_arg "Ucg.is_nash_orientation: owner not an endpoint";
      let other = if o = i then j else i in
      owned_of.(o) <- Bitset.add other owned_of.(o));
  let rec go v = v >= n || (accepts ~alpha g v ~owned:owned_of.(v) && go (v + 1)) in
  go 0

let nash_alpha_set g =
  if not (Nf_graph.Connectivity.is_connected g) || Graph.order g = 0 then
    Interval.Union.empty
  else begin
    let memo = Hashtbl.create 64 in
    let interval_memo v owned =
      let key = (v, owned) in
      match Hashtbl.find_opt memo key with
      | Some interval -> interval
      | None ->
        let interval = acceptance_interval g v ~owned in
        Hashtbl.add memo key interval;
        interval
    in
    let pieces = ref [] in
    let judge v owned current =
      let refined = Interval.inter current (interval_memo v owned) in
      if Interval.is_empty refined then None else Some refined
    in
    let emit interval = pieces := interval :: !pieces in
    search_orientations g ~top:(Interval.open_closed Rat.zero Interval.Pos_inf) ~judge
      ~emit;
    Interval.Union.of_list !pieces
  end
