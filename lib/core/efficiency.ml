module Graph = Nf_graph.Graph

let edge_multiplier = function
  | Cost.Bcg -> 2.0
  | Cost.Ucg -> 1.0

(* star on n: n-1 edges; ordered-pair distance total 2(n-1)^2 *)
let star_social_cost game ~alpha n =
  if n <= 1 then 0.0
  else
    (edge_multiplier game *. alpha *. float_of_int (n - 1))
    +. float_of_int (2 * (n - 1) * (n - 1))

(* complete graph on n: n(n-1)/2 edges, all ordered distances 1 *)
let complete_social_cost game ~alpha n =
  if n <= 1 then 0.0
  else
    (edge_multiplier game *. alpha *. float_of_int (n * (n - 1) / 2))
    +. float_of_int (n * (n - 1))

(* Lemma 4/5 (and Fabrikant et al. for the UCG): below the threshold every
   edge is worth its distance saving, so the clique wins; above it the
   star is the cheapest diameter-2 graph.  The threshold is where one
   edge's cost (2α in the BCG, α in the UCG) equals the distance saved by
   shortening one pair from 2 to 1 (which is 2). *)
let optimal_social_cost game ~alpha n =
  if n <= 1 then 0.0
  else Float.min (star_social_cost game ~alpha n) (complete_social_cost game ~alpha n)

let threshold = function
  | Cost.Bcg -> 1.0
  | Cost.Ucg -> 2.0

let efficient_graphs game ~alpha n =
  let star = Nf_graph.Graph.of_edges n (List.init (max 0 (n - 1)) (fun i -> (0, i + 1))) in
  let complete =
    let g = ref (Graph.empty n) in
    Nf_util.Subset.iter_pairs n (fun i j -> g := Graph.add_edge !g i j);
    !g
  in
  if n <= 2 then [ complete ]
  else
    let t = threshold game in
    if alpha < t then [ complete ]
    else if alpha > t then [ star ]
    else [ complete; star ]

let is_efficient game ~alpha g =
  Cost.social_cost game ~alpha g = optimal_social_cost game ~alpha (Graph.order g)

let optimal_social_cost_enumerated game ~alpha n =
  if n <= 1 then 0.0
  else begin
    let best = ref infinity in
    (* only connected graphs have finite social cost *)
    let bits = n * (n - 1) / 2 in
    if bits > 21 then invalid_arg "Efficiency.optimal_social_cost_enumerated: n too large";
    let pairs = ref [] in
    Nf_util.Subset.iter_pairs n (fun i j -> pairs := (i, j) :: !pairs);
    let pairs = Array.of_list !pairs in
    for mask = 0 to (1 lsl bits) - 1 do
      let g = ref (Graph.empty n) in
      Array.iteri (fun k (i, j) -> if mask land (1 lsl k) <> 0 then g := Graph.add_edge !g i j) pairs;
      let c = Cost.social_cost game ~alpha !g in
      if c < !best then best := c
    done;
    !best
  end
