module Rat = Nf_util.Rat
module Interval = Nf_util.Interval

let registered : Game.packed list ref = ref []

let register (Game.Any (module G) as packed) =
  if not (String.length G.name > 0
          && String.for_all (function 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false) G.name)
  then invalid_arg (Printf.sprintf "Game_registry.register: bad name %S" G.name);
  List.iter
    (fun other ->
      if String.equal (Game.name other) G.name then
        invalid_arg (Printf.sprintf "Game_registry.register: duplicate name %S" G.name);
      if Game.schema_tag other = G.schema_tag then
        invalid_arg
          (Printf.sprintf "Game_registry.register: schema tag %d of %S already taken by %S"
             G.schema_tag G.name (Game.name other)))
    !registered;
  registered := !registered @ [ packed ]

let all () = !registered
let names () = List.map Game.name !registered
let find name = List.find_opt (fun g -> String.equal (Game.name g) name) !registered

let find_exn name =
  match find name with
  | Some g -> g
  | None ->
    invalid_arg
      (Printf.sprintf "unknown game %S (registered: %s)" name
         (String.concat ", " (names ())))

let find_by_tag tag = List.find_opt (fun g -> Game.schema_tag g = tag) !registered

(* ---- built-in instances -------------------------------------------------
   Defined here rather than next to each game so that linking any consumer
   of the registry is enough to pull in (and register) every built-in —
   module initializers of otherwise-unreferenced library modules are
   dropped by the linker. *)

module Bcg_game = struct
  type region = Interval.t

  let name = "bcg"
  let describe = "bilateral connection game: pairwise stability (Definition 3)"
  let region_kind = Game.Region.Interval
  let schema_tag = 0
  let stable_region_ws = Bcg.stable_alpha_set_ws
  let stable_region_sym_ws = Some Bcg.stable_alpha_set_sym_ws
  let stable_region_reference = Bcg.stable_alpha_set_reference
  let is_stable = Bcg.is_pairwise_stable
  let improving_moves = Some Bcg.improving_moves
  let alpha_of_link_cost c = Rat.div c (Rat.of_int 2)
  let cost_model = Cost.Bcg
end

module Ucg_game = struct
  type region = Interval.Union.t

  let name = "ucg"
  let describe = "unilateral connection game: Nash graphs (Fabrikant et al.)"
  let region_kind = Game.Region.Union
  let schema_tag = 1
  let stable_region_ws = Ucg.nash_alpha_set_ws
  let stable_region_sym_ws = Some Ucg.nash_alpha_set_sym_ws
  let stable_region_reference = Ucg.nash_alpha_set_reference
  let is_stable = Ucg.is_nash_graph
  let improving_moves = None
  let alpha_of_link_cost c = c
  let cost_model = Cost.Ucg
end

module Transfers_game = struct
  type region = Interval.t

  let name = "transfers"
  let describe = "pairwise stability with transfers (joint-surplus link decisions)"
  let region_kind = Game.Region.Interval
  let schema_tag = 2
  let stable_region_ws = Transfers.stable_alpha_set_ws
  let stable_region_sym_ws = Some Transfers.stable_alpha_set_sym_ws
  let stable_region_reference = Transfers.stable_alpha_set_reference
  let is_stable = Transfers.is_stable
  let improving_moves = Some Transfers.improving_moves
  let alpha_of_link_cost c = Rat.div c (Rat.of_int 2)
  let cost_model = Cost.Bcg
end

let bcg : Interval.t Game.t = (module Bcg_game)
let ucg : Interval.Union.t Game.t = (module Ucg_game)
let transfers : Interval.t Game.t = (module Transfers_game)

let weighted_bcg : Interval.t Game.t =
  Weighted_bcg.make ~name:"weighted_bcg"
    ~describe:
      (Printf.sprintf
         "bilateral connection game, per-player link-cost multipliers (w_i = 1 + i mod 2)")
    ~schema_tag:3 ~weight:Weighted_bcg.default_weight ()

let () =
  register (Game.Any bcg);
  register (Game.Any ucg);
  register (Game.Any transfers);
  register (Game.Any weighted_bcg)
