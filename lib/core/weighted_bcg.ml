module Graph = Nf_graph.Graph
module Bfs = Nf_graph.Bfs
module Apsp = Nf_graph.Apsp
module Kernel = Nf_graph.Kernel
module Ext_int = Nf_util.Ext_int
module Rat = Nf_util.Rat
module Interval = Nf_util.Interval

let default_weight i = 1 + (i mod 2)

let weights_of ~weight n =
  Array.init n (fun i ->
      let w = weight i in
      if w < 1 then
        invalid_arg (Printf.sprintf "Weighted_bcg: weight %d for player %d (must be >= 1)" w i);
      w)

(* ---- fraction thresholds ------------------------------------------------
   Player i pays w_i·α per link, so every BCG threshold k (an integer
   benefit or loss, Kernel.inf as ∞) turns into the rational k / w_i.
   Thresholds are compared as exact fractions (num, den) with den = w ≥ 1
   by cross-multiplication; num = inf encodes ∞ (any weight). *)

let inf = Kernel.inf

let ibenefit ~base after = if base = inf then (if after = inf then 0 else inf) else base - after
let iloss ~base after = if base = inf || after = inf then inf else after - base

let frac_lt (an, ad) (bn, bd) = if an = inf then false else bn = inf || an * bd < bn * ad

let frac_eq (an, ad) (bn, bd) =
  if an = inf || bn = inf then an = bn else an * bd = bn * ad

let frac_min a b = if frac_lt b a then b else a

let endpoint_of_frac (k, w) =
  if k = inf then Interval.Pos_inf else Interval.Finite (Rat.make k w)

let positive = Interval.open_closed Rat.zero Interval.Pos_inf

(* One pass over the toggles, mirroring Bcg.scan_stability_ws with the
   integer thresholds replaced by per-endpoint fractions: α_min is the
   max over non-edges of min(b_i/w_i, b_j/w_j) (attained — left end
   closed — exactly when every attaining pair ties), α_max the min over
   edge endpoints of l_i/w_i. *)
let scan_ws ~w ws =
  let n = Kernel.order ws in
  let base = Kernel.all_distance_sums ws in
  let lo = ref (0, 1) and tied = ref true and hi = ref (inf, 1) in
  for i = 0 to n - 2 do
    let bi_base = base.(i) in
    for j = i + 1 to n - 1 do
      if Kernel.has_edge ws i j then begin
        Kernel.toggle ws i j;
        let li = (iloss ~base:bi_base (Kernel.distance_sum_from ws i), w.(i)) in
        if frac_lt li !hi then hi := li;
        let lj = (iloss ~base:base.(j) (Kernel.distance_sum_from ws j), w.(j)) in
        if frac_lt lj !hi then hi := lj;
        Kernel.toggle ws i j
      end
      else begin
        Kernel.toggle ws i j;
        let ti = (ibenefit ~base:bi_base (Kernel.distance_sum_from ws i), w.(i))
        and tj = (ibenefit ~base:base.(j) (Kernel.distance_sum_from ws j), w.(j)) in
        Kernel.toggle ws i j;
        let m = frac_min ti tj in
        if frac_lt !lo m then begin
          lo := m;
          tied := frac_eq ti tj
        end
        else if frac_eq m !lo && not (frac_eq ti tj) then tied := false
      end
    done
  done;
  (!lo, !hi, !tied)

let stable_alpha_set_ws ~weight ws g =
  Kernel.load ws g;
  let w = weights_of ~weight (Kernel.order ws) in
  let lo, hi, tied = scan_ws ~w ws in
  Interval.inter positive
    (Interval.make ~lo:(endpoint_of_frac lo)
       ~lo_closed:(fst lo <> inf && tied)
       ~hi:(endpoint_of_frac hi) ~hi_closed:true)

let stable_alpha_set ~weight g = Kernel.with_ws (fun ws -> stable_alpha_set_ws ~weight ws g)

(* ---- persistent reference twin ------------------------------------------
   Same scan over persistent graphs: base sums via Apsp.distance_sums, one
   fresh allocating BFS per endpoint per toggle (the independently-reviewed
   distance path), thresholds as Ext_int scaled into fractions. *)

let frac_of_ext ext wi =
  match ext with
  | Ext_int.Fin k -> (k, wi)
  | Ext_int.Inf -> (inf, 1)

let benefit_from ~base after =
  match (base, after) with
  | Ext_int.Fin b, Ext_int.Fin a -> Ext_int.Fin (b - a)
  | Ext_int.Inf, Ext_int.Fin _ -> Ext_int.Inf
  | Ext_int.Inf, Ext_int.Inf -> Ext_int.Fin 0
  | Ext_int.Fin _, Ext_int.Inf -> assert false (* adding cannot disconnect *)

let loss_from ~base after =
  match (base, after) with
  | Ext_int.Fin b, Ext_int.Fin a -> Ext_int.Fin (a - b)
  | Ext_int.Fin _, Ext_int.Inf -> Ext_int.Inf (* bridge *)
  | Ext_int.Inf, _ -> Ext_int.Inf

let stable_alpha_set_reference ~weight g =
  let n = Graph.order g in
  let w = weights_of ~weight n in
  let base = Apsp.distance_sums g in
  let lo = ref (0, 1) and tied = ref true in
  Graph.iter_non_edges g (fun i j ->
      let added = Graph.add_edge g i j in
      let ti = frac_of_ext (benefit_from ~base:base.(i) (Bfs.distance_sum added i)) w.(i)
      and tj = frac_of_ext (benefit_from ~base:base.(j) (Bfs.distance_sum added j)) w.(j) in
      let m = frac_min ti tj in
      if frac_lt !lo m then begin
        lo := m;
        tied := frac_eq ti tj
      end
      else if frac_eq m !lo && not (frac_eq ti tj) then tied := false);
  let hi = ref (inf, 1) in
  Graph.iter_edges g (fun i j ->
      let removed = Graph.remove_edge g i j in
      let li = frac_of_ext (loss_from ~base:base.(i) (Bfs.distance_sum removed i)) w.(i)
      and lj = frac_of_ext (loss_from ~base:base.(j) (Bfs.distance_sum removed j)) w.(j) in
      if frac_lt li !hi then hi := li;
      if frac_lt lj !hi then hi := lj);
  Interval.inter positive
    (Interval.make ~lo:(endpoint_of_frac !lo)
       ~lo_closed:(fst !lo <> inf && !tied)
       ~hi:(endpoint_of_frac !hi) ~hi_closed:true)

(* α < k/w and α ≤ k/w by cross-multiplication: α = num/den (den > 0),
   w ≥ 1, so α < k/w ⟺ num·w < k·den. *)
let wlt alpha w k = k = inf || Rat.num alpha * w < k * Rat.den alpha
let wle alpha w k = k = inf || Rat.num alpha * w <= k * Rat.den alpha

let is_stable ~weight ~alpha g =
  Kernel.with_loaded g (fun ws ->
      let n = Kernel.order ws in
      let w = weights_of ~weight n in
      let base = Kernel.all_distance_sums ws in
      let ok = ref true in
      (try
         for i = 0 to n - 2 do
           for j = i + 1 to n - 1 do
             Kernel.toggle ws i j;
             if Kernel.has_edge ws i j then begin
               (* toggled a non-edge on: blocked when one endpoint strictly
                  gains and the other weakly accepts *)
               let bi = ibenefit ~base:base.(i) (Kernel.distance_sum_from ws i)
               and bj = ibenefit ~base:base.(j) (Kernel.distance_sum_from ws j) in
               Kernel.toggle ws i j;
               if
                 (wlt alpha w.(i) bi && wle alpha w.(j) bj)
                 || (wlt alpha w.(j) bj && wle alpha w.(i) bi)
               then begin
                 ok := false;
                 raise_notrace Exit
               end
             end
             else begin
               let li = iloss ~base:base.(i) (Kernel.distance_sum_from ws i)
               and lj = iloss ~base:base.(j) (Kernel.distance_sum_from ws j) in
               Kernel.toggle ws i j;
               if (not (wle alpha w.(i) li)) || not (wle alpha w.(j) lj) then begin
                 ok := false;
                 raise_notrace Exit
               end
             end
           done
         done
       with Exit -> ());
      !ok)

(* Same order contract as Bcg.improving_moves: additions in lexicographic
   (i, j) order, then per edge Delete (i, j) before Delete (j, i). *)
let improving_moves ~weight ~alpha g =
  Kernel.with_loaded g (fun ws ->
      let n = Kernel.order ws in
      let w = weights_of ~weight n in
      let base = Kernel.all_distance_sums ws in
      let moves = ref [] in
      for i = 0 to n - 2 do
        for j = i + 1 to n - 1 do
          if not (Kernel.has_edge ws i j) then begin
            Kernel.toggle ws i j;
            let bi = ibenefit ~base:base.(i) (Kernel.distance_sum_from ws i)
            and bj = ibenefit ~base:base.(j) (Kernel.distance_sum_from ws j) in
            Kernel.toggle ws i j;
            if
              (wlt alpha w.(i) bi && wle alpha w.(j) bj)
              || (wlt alpha w.(j) bj && wle alpha w.(i) bi)
            then moves := Game.Add (i, j) :: !moves
          end
        done
      done;
      for i = 0 to n - 2 do
        for j = i + 1 to n - 1 do
          if Kernel.has_edge ws i j then begin
            Kernel.toggle ws i j;
            let li = iloss ~base:base.(i) (Kernel.distance_sum_from ws i)
            and lj = iloss ~base:base.(j) (Kernel.distance_sum_from ws j) in
            Kernel.toggle ws i j;
            if not (wle alpha w.(i) li) then moves := Game.Delete (i, j) :: !moves;
            if not (wle alpha w.(j) lj) then moves := Game.Delete (j, i) :: !moves
          end
        done
      done;
      !moves)

let make ?(name = "weighted_bcg")
    ?(describe = "bilateral connection game with per-player link-cost multipliers")
    ?(schema_tag = 3) ~weight () : Interval.t Game.t =
  (module struct
    type region = Interval.t

    let name = name
    let describe = describe
    let region_kind = Game.Region.Interval
    let schema_tag = schema_tag
    let stable_region_ws ws g = stable_alpha_set_ws ~weight ws g

    (* No orbit-quotient path: the weight profile is indexed by player
       identity (w_i is not constant on automorphism orbits), so the
       per-pair fraction thresholds are not isomorphism-invariant and a
       representative toggle cannot stand for its orbit.  The generic
       annotator routes this game through the plain loop permanently. *)
    let stable_region_sym_ws = None
    let stable_region_reference g = stable_alpha_set_reference ~weight g
    let is_stable ~alpha g = is_stable ~weight ~alpha g
    let improving_moves = Some (fun ~alpha g -> improving_moves ~weight ~alpha g)
    let alpha_of_link_cost c = Rat.div c (Rat.of_int 2)
    let cost_model = Cost.Bcg
  end)
