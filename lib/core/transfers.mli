(** Pairwise stability with transfers — the extension the paper's
    conclusion announces ("how bilateral ... transfers between players may
    help mediate the price of anarchy").

    With side payments a link's fate depends on the {e joint} surplus of
    its two endpoints (Jackson–Wolinsky's transferable-utility variant):
    a missing link is added when the endpoints' combined distance saving
    strictly exceeds the combined price [2α], and an existing link
    survives when the combined severance loss covers it.  Thresholds are
    therefore half-integers, and each graph again has an exact stable
    interval — now closed at both ends. *)

val joint_addition_benefit : Nf_graph.Graph.t -> int -> int -> Nf_util.Ext_int.t
(** Combined distance saving of both endpoints from adding a missing
    link. *)

val joint_severance_loss : Nf_graph.Graph.t -> int -> int -> Nf_util.Ext_int.t
(** Combined distance increase of both endpoints from severing an
    existing link. *)

val alpha_min : Nf_graph.Graph.t -> Nf_util.Rat.t option
(** [max] over missing links of half the joint benefit; [None] for the
    complete graph, [Some] infinite cases surface as stability-set
    emptiness instead. *)

val stable_alpha_set : Nf_graph.Graph.t -> Nf_util.Interval.t
(** The exact set of positive link costs at which the graph is pairwise
    stable with transfers. *)

val stable_alpha_set_ws : Nf_graph.Kernel.t -> Nf_graph.Graph.t -> Nf_util.Interval.t
(** {!stable_alpha_set} against a caller-provided kernel workspace (the
    allocation-free chunked-annotation path).  Always the unquotiented
    loop; {!stable_alpha_set} itself applies the twin-detection quotient
    tier when enabled. *)

val stable_alpha_set_sym_ws :
  Nf_graph.Kernel.t -> Nf_iso.Symmetry.t -> Nf_graph.Graph.t -> Nf_util.Interval.t
(** Orbit-quotient annotation: one representative toggle per orbit of
    unordered pairs (joint benefits/losses are orbit-invariant).
    Structurally identical output to {!stable_alpha_set_ws} for any
    subgroup of [Aut(g)]; trivial subgroup ⇒ exactly the unquotiented
    scan. *)

val stable_alpha_set_reference : Nf_graph.Graph.t -> Nf_util.Interval.t
(** Retained persistent-path implementation; structurally identical output
    to {!stable_alpha_set}, compared against it by the differential
    tests. *)

val is_stable : alpha:Nf_util.Rat.t -> Nf_graph.Graph.t -> bool
(** Direct definition at an exact link cost; agrees with membership in
    {!stable_alpha_set} (property-tested). *)

val improving_moves : alpha:Nf_util.Rat.t -> Nf_graph.Graph.t -> Game.move list
(** Joint improving moves at [alpha]: additions with joint benefit
    [> 2α] in lexicographic [(i, j)] order, then one [Delete (i, j)]
    ([i < j]) per edge whose joint loss is [< 2α] — severance is a joint
    decision under transfers, so the initiator is irrelevant. *)
