module Rat = Nf_util.Rat

let cycle_window n =
  if n < 3 then invalid_arg "Theory.cycle_window: need n >= 3";
  if n mod 2 = 1 then (Rat.make ((n - 3) * (n + 1)) 8, Rat.make ((n + 1) * (n - 1)) 4)
  else if n mod 4 = 0 then (Rat.make ((n * n) - (4 * n) + 8) 8, Rat.make (n * (n - 2)) 4)
  else (Rat.make ((n * n) - (4 * n) + 4) 8, Rat.make (n * (n - 2)) 4)

let sum_terms ~k ~girth terms =
  let rec go acc i =
    if i > terms then acc
    else
      let power = int_of_float (float_of_int (k - 1) ** float_of_int (i + 1)) in
      go (acc + (power * (girth - i))) (i + 1)
  in
  go 0 1

let regular_removal_increase ~k ~girth = sum_terms ~k ~girth (girth / 2)
let regular_addition_decrease ~k ~girth = sum_terms ~k ~girth (girth / 4)

let poa_upper_bound ~alpha ~n =
  let s = sqrt alpha in
  Float.min s (float_of_int n /. s)

let poa_lower_bound_moore ~alpha = Float.max 1.0 (Float.log alpha /. Float.log 2.0)
let bcg_diameter_bound ~alpha = 2.0 *. sqrt alpha
let ucg_vs_bcg_poa_factor = 2.0
