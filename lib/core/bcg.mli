(** The bilateral connection game: pairwise stability (Definition 3),
    pairwise Nash (Definition 2), and exact stability regions in the link
    cost (Lemma 2).

    All thresholds are integer differences of hop-count sums, so the set of
    link costs for which a graph is pairwise stable is computed exactly.

    Infinite distances follow the literal cost semantics of eq. (1): a
    player whose distance cost is already infinite is indifferent to
    changes that keep it infinite (["∞ < ∞"] is false, ["∞ ≥ ∞"] is true).
    Consequently a graph with three or more components is vacuously
    pairwise stable — the paper, and the experiment harness, restrict
    attention to connected graphs. *)

val addition_benefit : Nf_graph.Graph.t -> int -> int -> Nf_util.Ext_int.t
(** [addition_benefit g i j] is player [i]'s distance-cost decrease from
    adding missing edge [(i,j)]: [Σd(i,·)(G) − Σd(i,·)(G+ij)].  [Inf] when
    the edge newly connects [i] to everything it could not reach; [Fin 0]
    when [i]'s cost is infinite either way.
    @raise Invalid_argument when [(i,j)] is already an edge. *)

val severance_loss : Nf_graph.Graph.t -> int -> int -> Nf_util.Ext_int.t
(** [severance_loss g i j] is player [i]'s distance-cost increase from
    severing existing edge [(i,j)]; [Inf] when the edge is a bridge (or
    [i]'s cost is already infinite — severing can never strictly help
    then).
    @raise Invalid_argument when [(i,j)] is not an edge. *)

val alpha_min : Nf_graph.Graph.t -> Nf_util.Ext_int.t
(** [max_{(i,k)∉A} min(benefit_i, benefit_k)] (Lemma 2); [Fin 0] for the
    complete graph. *)

val alpha_max : Nf_graph.Graph.t -> Nf_util.Ext_int.t
(** [min] over edge endpoints of {!severance_loss}; [Inf] when every edge
    is a bridge or there are no edges. *)

val stability_interval : Nf_graph.Graph.t -> Nf_util.Interval.t
(** The paper's characterization [(α_min, α_max]], intersected with
    [α > 0]. *)

val stable_alpha_set : Nf_graph.Graph.t -> Nf_util.Interval.t
(** The exact set of positive link costs at which the graph is pairwise
    stable.  Equals {!stability_interval} except that the left end is
    closed when every missing edge attaining [α_min] has equal benefits at
    both endpoints (the revised Definition 3 is strict on one side
    only). *)

val stable_alpha_set_ws : Nf_graph.Kernel.t -> Nf_graph.Graph.t -> Nf_util.Interval.t
(** {!stable_alpha_set} against a caller-provided kernel workspace —
    the allocation-free path used by chunked annotation, where one
    workspace per domain is reused across every graph in a chunk.
    Always the unquotiented loop; {!stable_alpha_set} itself applies the
    twin-detection quotient tier when enabled. *)

val stable_alpha_set_sym_ws :
  Nf_graph.Kernel.t -> Nf_iso.Symmetry.t -> Nf_graph.Graph.t -> Nf_util.Interval.t
(** Orbit-quotient annotation: one representative toggle per orbit of
    unordered pairs under the given automorphism subgroup, exploiting
    that the per-pair benefit/loss multisets are orbit-invariant.
    Structurally identical output to {!stable_alpha_set_ws} for any
    subgroup of [Aut(g)]; a trivial subgroup runs exactly the
    unquotiented scan (the rigid fast path). *)

val stable_alpha_set_reference : Nf_graph.Graph.t -> Nf_util.Interval.t
(** The retained persistent-path implementation (base sums via
    [Apsp.distance_sums], one fresh BFS per endpoint per edge toggle).
    Structurally identical output to {!stable_alpha_set}; kept as the
    reference the differential tests compare the workspace kernel
    against. *)

val is_pairwise_stable : alpha:Nf_util.Rat.t -> Nf_graph.Graph.t -> bool
(** Literal Definition 3 at an exact link cost. *)

val is_pairwise_stable_f : alpha:float -> Nf_graph.Graph.t -> bool
(** Convenience wrapper converting a dyadic float [α] exactly. *)

val is_pairwise_nash : alpha:Nf_util.Rat.t -> Nf_graph.Graph.t -> bool
(** Definition 2 computed structurally: no improving multi-link severance
    (checked over all subsets of each player's incident edges — [2^deg]
    per player) and no addable mutually-improving link.  By Proposition 1
    this agrees with {!is_pairwise_stable}; the test suite asserts it. *)

val improving_addition :
  alpha:Nf_util.Rat.t -> Nf_graph.Graph.t -> (int * int) option
(** A missing link [(i,j)] whose addition strictly helps [i] and weakly
    helps [j], if any (the bilateral move of an improving path). *)

val improving_deletion :
  alpha:Nf_util.Rat.t -> Nf_graph.Graph.t -> (int * int) option
(** An edge listed as [(severer, other)] whose severer strictly gains from
    cutting it, if any. *)

val improving_moves : alpha:Nf_util.Rat.t -> Nf_graph.Graph.t -> Game.move list
(** All improving moves at [alpha] in a fixed order (additions in
    lexicographic [(i, j)] order, then per edge [Delete (i, j)] before
    [Delete (j, i)]), so PRNG draws in the dynamics are reproducible.
    [Nf_dynamics.Bcg_dynamics] is this generator run through the generic
    improving-path loop. *)
