(** Strategy profiles and the two linking rules (paper §2).

    A profile assigns every player the set of others it seeks contact
    with; the UCG forms a link when either side asks, the BCG when both
    do.  Direct profile-level cost and equilibrium definitions live here
    so that the optimized graph-level checkers in {!Bcg} and {!Ucg} can be
    validated against the literal definitions on small instances. *)

type t
(** A profile over [n] players; [seeks t i j] says whether [i] lists [j]. *)

val create : int -> t
(** The all-empty profile (everyone announces nothing). *)

val order : t -> int
val seeks : t -> int -> int -> bool
val set : t -> int -> int -> bool -> t
(** Persistent update of one announcement. @raise Invalid_argument on
    [i = j] or out-of-range. *)

val wish_count : t -> int -> int
(** [|s_i|] — the number of links player [i] provisions for (it pays [α]
    for each, formed or not). *)

val wishes : t -> int -> Nf_util.Bitset.t

val graph : Cost.game -> t -> Nf_graph.Graph.t
(** The formed network [G(s)]: union of announcements in the UCG,
    intersection in the BCG. *)

val of_graph_bcg : Nf_graph.Graph.t -> t
(** The canonical supporting profile in the BCG: announce exactly your
    neighbors. *)

val of_graph_ucg : Nf_graph.Graph.t -> owner:(int -> int -> int) -> t
(** A UCG profile buying each edge [(i,j)] (with [i < j]) at the endpoint
    [owner i j] (which must be [i] or [j]). *)

val player_cost : Cost.game -> alpha:float -> t -> int -> float
(** Eq. (1): [α|s_i| + Σ_j d(i,j)(G(s))]. *)

val is_nash : Cost.game -> alpha:float -> t -> bool
(** Literal Definition 1 over all [2^(n-1)] deviations per player —
    exponential, for small-instance validation only. *)

val is_pairwise_nash : Cost.game -> alpha:float -> t -> bool
(** Literal Definition 2: Nash, and no missing link that strictly helps
    one endpoint while weakly helping the other. *)
