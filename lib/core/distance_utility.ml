module Graph = Nf_graph.Graph
module Bfs = Nf_graph.Bfs
module Ext_int = Nf_util.Ext_int
module Rat = Nf_util.Rat
module Interval = Nf_util.Interval

type profile = {
  name : string;
  f : int -> int;
}

let linear = { name = "linear"; f = Fun.id }
let quadratic = { name = "quadratic"; f = (fun d -> d * d) }
let hop_capped h = { name = Printf.sprintf "hop-capped(%d)" h; f = (fun d -> min d h) }
let connectivity = { name = "connectivity"; f = (fun _ -> 0) }

let distance_cost profile g i =
  let dist = Bfs.distances g i in
  let total = ref 0
  and disconnected = ref false in
  Array.iter
    (fun d -> if d < 0 then disconnected := true else total := !total + profile.f d)
    dist;
  if !disconnected then Ext_int.Inf else Ext_int.Fin !total

let addition_benefit profile g i j =
  if Graph.has_edge g i j then invalid_arg "Distance_utility.addition_benefit: edge present";
  let before = distance_cost profile g i
  and after = distance_cost profile (Graph.add_edge g i j) i in
  match before, after with
  | Ext_int.Fin b, Ext_int.Fin a -> Ext_int.Fin (b - a)
  | Ext_int.Inf, Ext_int.Fin _ -> Ext_int.Inf
  | Ext_int.Inf, Ext_int.Inf -> Ext_int.Fin 0
  | Ext_int.Fin _, Ext_int.Inf -> assert false

let severance_loss profile g i j =
  if not (Graph.has_edge g i j) then
    invalid_arg "Distance_utility.severance_loss: not an edge";
  let before = distance_cost profile g i
  and after = distance_cost profile (Graph.remove_edge g i j) i in
  match before, after with
  | Ext_int.Fin b, Ext_int.Fin a -> Ext_int.Fin (a - b)
  | Ext_int.Fin _, Ext_int.Inf -> Ext_int.Inf
  | Ext_int.Inf, _ -> Ext_int.Inf

let pair_benefit profile g i j =
  Ext_int.min (addition_benefit profile g i j) (addition_benefit profile g j i)

let endpoint_of_ext = function
  | Ext_int.Fin k -> Interval.Finite (Rat.of_int k)
  | Ext_int.Inf -> Interval.Pos_inf

let positive = Interval.open_closed Rat.zero Interval.Pos_inf

let stable_alpha_set profile g =
  let lo = ref (Ext_int.Fin 0) in
  Graph.iter_non_edges g (fun i j -> lo := Ext_int.max !lo (pair_benefit profile g i j));
  let hi = ref Ext_int.Inf in
  Graph.iter_edges g (fun i j ->
      hi := Ext_int.min !hi (severance_loss profile g i j);
      hi := Ext_int.min !hi (severance_loss profile g j i));
  let lo_closed =
    match !lo with
    | Ext_int.Inf -> false
    | Ext_int.Fin _ ->
      let closed = ref true in
      Graph.iter_non_edges g (fun i j ->
          if Ext_int.equal (pair_benefit profile g i j) !lo then
            if
              not
                (Ext_int.equal (addition_benefit profile g i j)
                   (addition_benefit profile g j i))
            then closed := false);
      !closed
  in
  Interval.inter positive
    (Interval.make ~lo:(endpoint_of_ext !lo) ~lo_closed ~hi:(endpoint_of_ext !hi)
       ~hi_closed:true)

let rat_lt alpha = function
  | Ext_int.Inf -> true
  | Ext_int.Fin k -> Rat.(alpha < of_int k)

let rat_le alpha = function
  | Ext_int.Inf -> true
  | Ext_int.Fin k -> Rat.(alpha <= of_int k)

let is_pairwise_stable profile ~alpha g =
  let deletions_ok = ref true in
  Graph.iter_edges g (fun i j ->
      if not (rat_le alpha (severance_loss profile g i j)) then deletions_ok := false;
      if not (rat_le alpha (severance_loss profile g j i)) then deletions_ok := false);
  !deletions_ok
  &&
  let additions_ok = ref true in
  Graph.iter_non_edges g (fun i j ->
      let bi = addition_benefit profile g i j
      and bj = addition_benefit profile g j i in
      if (rat_lt alpha bi && rat_le alpha bj) || (rat_lt alpha bj && rat_le alpha bi)
      then additions_ok := false);
  !additions_ok
