(** Closed-form predictions stated in the paper, kept verbatim so the
    experiment harness can print "paper formula vs. exact computation"
    side by side.

    Several of these are proof-sketch bounds rather than tight values
    (Lemma 6's window and Proposition 3's [S_r]/[S_a] are explicitly
    sketches); the experiments compare them against the exact intervals
    from {!Bcg.stable_alpha_set}. *)

val cycle_window : int -> Nf_util.Rat.t * Nf_util.Rat.t
(** Lemma 6's claimed stability window [(lo, hi)] for the cycle [C_n]:
    [n = 4k-2]: ((n²-4n+4)/8, n(n-2)/4);
    [n = 4k]:   ((n²-4n+8)/8, n(n-2)/4);
    odd [n]:    ((n-3)(n+1)/8, (n+1)(n-1)/4).
    @raise Invalid_argument for [n < 3]. *)

val regular_removal_increase : k:int -> girth:int -> int
(** Proposition 3's [S_r = Σ_{i=1}^{g/2} (k-1)^{i+1} (g-i)] — the claimed
    lower bound on the distance-cost increase from removing a link of a
    k-regular graph of girth [g]. *)

val regular_addition_decrease : k:int -> girth:int -> int
(** Proposition 3's [S_a = Σ_{i=1}^{g/4} (k-1)^{i+1} (g-i)] — the claimed
    upper bound on the distance-cost decrease from adding a link. *)

val poa_upper_bound : alpha:float -> n:int -> float
(** Proposition 4 (with the Demaine et al. refinement): the worst-case
    BCG price of anarchy is [O(min(√α, n/√α))]; this returns
    [min(√α, n/√α)] as the reference curve. *)

val poa_lower_bound_moore : alpha:float -> float
(** Proposition 3: the worst-case BCG price of anarchy is [Ω(log₂ α)];
    returns [log₂ α] (clamped at 1) as the reference curve. *)

val bcg_diameter_bound : alpha:float -> float
(** From the proof of Proposition 4: any pairwise stable graph has
    diameter [< 2√α]. *)

val ucg_vs_bcg_poa_factor : float
(** Footnote 6's constant: for any graph and any α,
    [ρ_UCG(G) ≤ 2 · ρ_BCG(G)]. *)
