(** First-class connection games.

    The paper's empirical pipeline is the same for every game concept it
    studies: for each connected graph, compute the exact set of link
    costs [alpha] at which the graph is in equilibrium (its {e stable
    region}), then sweep that annotation over a cost grid.  This module
    captures the contract a game must satisfy for the whole pipeline —
    annotation ({!Equilibria}), figures ({!Figures}), the on-disk atlas
    ({!Nf_store}), improving-path dynamics and the CLI — to work with it
    unchanged.  {!Bcg}, {!Ucg}, {!Transfers} and {!Weighted_bcg} are the
    built-in instances; {!Game_registry} indexes them by name.

    Stable regions come in two shapes: a single rational interval (BCG,
    transfers, weighted BCG — Lemma 2 style threshold arguments) or a
    finite union of intervals (UCG Nash certification).  The
    {!Region.kind} witness lets generic code dispatch on the shape while
    each game keeps its precise region type. *)

module Graph = Nf_graph.Graph
module Kernel = Nf_graph.Kernel
module Rat = Nf_util.Rat
module Interval = Nf_util.Interval

(** A single improving move in the pairwise dynamics.  [Add (i, j)]
    creates the link i–j (bilateral consent, or a joint contract under
    transfers); [Delete (i, j)] is player [i] unilaterally severing its
    link to [j] — the initiator matters for traces, so both
    [Delete (i, j)] and [Delete (j, i)] may be offered for one edge. *)
type move = Add of int * int | Delete of int * int

(** The two region shapes, as a GADT witness usable for typed cache
    recovery and generic membership tests. *)
module Region : sig
  type 'r kind =
    | Interval : Interval.t kind
    | Union : Interval.Union.t kind

  type ('a, 'b) eq = Equal : ('a, 'a) eq

  val same_kind : 'a kind -> 'b kind -> ('a, 'b) eq option
  (** [same_kind a b] is [Some Equal] when both witnesses are the same
      constructor, recovering the type equality. *)

  val is_empty : 'r kind -> 'r -> bool
  val mem : 'r kind -> Rat.t -> 'r -> bool
  val equal : 'r kind -> 'r -> 'r -> bool
  val to_string : 'r kind -> 'r -> string
  val pp : 'r kind -> Format.formatter -> 'r -> unit
end

(** What a connection game must provide.  The two annotators must be
    extensionally equal — [stable_region_ws] is the production
    (kernel-workspace, allocation-free) path and
    [stable_region_reference] the persistent specification twin; the
    registry-driven differential suites in [test/test_kernel.ml] hold
    every registered game to that contract, and [is_stable] must agree
    with membership in the region. *)
module type S = sig
  type region

  val name : string
  (** Registry key, also the CLI spelling ([--game <name>]).  Lowercase
      [[a-z0-9_]+]. *)

  val describe : string
  (** One-line human description for listings. *)

  val region_kind : region Region.kind

  val schema_tag : int
  (** Stable identifier for the on-disk atlas, part of the NFATLAS1
      header contract (DESIGN.md §10): never reuse or renumber a tag.
      Tags 0 (BCG) and 1 (UCG) are encoded as the original classic
      headers so pre-existing stores remain byte-identical. *)

  val stable_region_ws : Kernel.t -> Graph.t -> region
  (** Exact stable region, computed on a borrowed kernel workspace (the
      graph is loaded by the callee; any toggles are undone). *)

  val stable_region_sym_ws : (Kernel.t -> Nf_iso.Symmetry.t -> Graph.t -> region) option
  (** Orbit-quotient twin of {!stable_region_ws}: given a subgroup of the
      graph's automorphisms, evaluate one representative toggle per edge
      orbit (or prune symmetric search branches) and return a region
      {e structurally equal} to the unquotiented one — the differential
      harness in [test/test_orbit.ml] holds every registered game to
      that, and byte-identical stores depend on it.  [None] when the
      game's annotator is not isomorphism-invariant (per-player weights),
      which routes it permanently through the plain loop.  The function
      must itself fall back to the plain loop on a trivial subgroup (the
      rigid fast path). *)

  val stable_region_reference : Graph.t -> region
  (** Persistent-path specification twin of {!stable_region_ws}. *)

  val is_stable : alpha:Rat.t -> Graph.t -> bool
  (** Point certifier; agrees with [Region.mem region_kind alpha
      (stable_region_ws ws g)] for every graph. *)

  val improving_moves : (alpha:Rat.t -> Graph.t -> move list) option
  (** Improving moves at [alpha] in a fixed documented order (so PRNG
      draws in the dynamics are reproducible), or [None] when the
      game's dynamics are not graph-local (UCG best response depends on
      link ownership, not just the graph). *)

  val alpha_of_link_cost : Rat.t -> Rat.t
  (** Per-player link cost [alpha] corresponding to a {e total} link
      cost [c] on the Figure 2/3 x-axis: [c/2] for bilateral games
      (both endpoints pay), [c] for unilateral ones. *)

  val cost_model : Cost.game
  (** Social-cost convention for price-of-anarchy summaries. *)
end

type 'r t = (module S with type region = 'r)
(** A game whose region type is ['r], as a first-class module. *)

type packed = Any : 'r t -> packed
(** A game with its region type hidden — what the registry stores and
    what name-driven code (CLI, scripts) manipulates. *)

val name : packed -> string
val describe : packed -> string
val schema_tag : packed -> int
val has_moves : packed -> bool
val is_stable : packed -> alpha:Rat.t -> Graph.t -> bool
val improving_moves : packed -> alpha:Rat.t -> Graph.t -> move list
(** @raise Invalid_argument when the game has no move generator. *)

val region_string_ws : packed -> Kernel.t -> Graph.t -> string
(** Annotate on a workspace and render the region (CLI/CSV export). *)

val has_sym_annotator : packed -> bool

val sweep_symmetry : Graph.t -> Nf_iso.Symmetry.t
(** The sweep-tier symmetry policy shared by bulk consumers (pooled
    annotation, store chunk workers): {!Nf_iso.Symmetry.detect_twins}
    when the quotient is enabled, the trivial subgroup otherwise. *)

val annotate_sym_ws : 'r t -> Kernel.t -> Nf_iso.Symmetry.t -> Graph.t -> 'r
(** Dispatch one annotation through the game's orbit-quotient path when
    it has one and the subgroup is non-trivial, and through
    [stable_region_ws] otherwise (the rigid fast path — byte-identical
    to today's loop). *)
