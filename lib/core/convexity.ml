module Graph = Nf_graph.Graph
module Bfs = Nf_graph.Bfs
module Bitset = Nf_util.Bitset
module Ext_int = Nf_util.Ext_int

let deletion_distance_increase g i nbrs =
  if not (Bitset.subset nbrs (Graph.neighbors g i)) then
    invalid_arg "Convexity.deletion_distance_increase: not a neighbor subset";
  let without = Bitset.fold (fun j acc -> Graph.remove_edge acc i j) nbrs g in
  match Bfs.distance_sum g i, Bfs.distance_sum without i with
  | Ext_int.Fin before, Ext_int.Fin after -> Ext_int.Fin (after - before)
  | Ext_int.Fin _, Ext_int.Inf -> Ext_int.Inf
  | Ext_int.Inf, _ -> Ext_int.Fin 0

let is_cost_convex_at g i =
  let nbrs = Graph.neighbors g i in
  let single = Hashtbl.create 8 in
  Bitset.iter
    (fun j ->
      Hashtbl.add single j (deletion_distance_increase g i (Bitset.singleton j)))
    nbrs;
  let ok = ref true in
  Nf_util.Subset.iter_subsets nbrs (fun b ->
      if Bitset.cardinal b >= 2 then begin
        let joint = deletion_distance_increase g i b in
        let sum = Bitset.fold (fun j acc -> Ext_int.add acc (Hashtbl.find single j)) b Ext_int.zero in
        if Ext_int.( < ) joint sum then ok := false
      end);
  !ok

let is_cost_convex g =
  let rec go i = i >= Graph.order g || (is_cost_convex_at g i && go (i + 1)) in
  go 0

let max_addition_gain g =
  let best = ref None in
  Graph.iter_non_edges g (fun i j ->
      let update v =
        best :=
          Some
            (match !best with
            | None -> v
            | Some b -> Ext_int.max b v)
      in
      update (Bcg.addition_benefit g i j);
      update (Bcg.addition_benefit g j i));
  !best

let min_severance_loss g =
  let best = ref None in
  Graph.iter_edges g (fun i j ->
      let update v =
        best :=
          Some
            (match !best with
            | None -> v
            | Some b -> Ext_int.min b v)
      in
      update (Bcg.severance_loss g i j);
      update (Bcg.severance_loss g j i));
  !best

let link_convexity_gap g =
  match max_addition_gain g, min_severance_loss g with
  | Some gain, Some loss -> Some (gain, loss)
  | (None | Some _), _ -> None

let is_link_convex g =
  match max_addition_gain g with
  | None -> true (* complete graph: nothing to add *)
  | Some gain -> (
    match min_severance_loss g with
    | None -> false (* additions possible but nothing to sever *)
    | Some loss -> Ext_int.( < ) gain loss)

(* Inequality (3) gives α_min <= max gain < min loss = α_max, so any α in
   (max gain, min loss] supports the graph; the midpoint (or gain+1 when
   severance is unbounded) is a convenient representative. *)
let witness_alpha g =
  if not (is_link_convex g) then None
  else
    match max_addition_gain g, min_severance_loss g with
    | Some (Ext_int.Fin gain), Some (Ext_int.Fin loss) ->
      Some (Nf_util.Rat.make (gain + loss) 2)
    | Some (Ext_int.Fin gain), Some Ext_int.Inf -> Some (Nf_util.Rat.of_int (gain + 1))
    | None, _ -> Some Nf_util.Rat.one (* complete graph: any α <= 1 *)
    | Some Ext_int.Inf, _ | Some (Ext_int.Fin _), None -> None
