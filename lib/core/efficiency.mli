(** Efficient (social-cost-minimizing) networks (Lemmas 4 and 5).

    In the BCG the optimum is the complete graph for [α ≤ 1] and the star
    for [α ≥ 1]; in the UCG (one-sided link payment) the threshold sits at
    [α = 2].  Closed forms below; {!optimal_social_cost_enumerated} brute
    forces tiny instances as ground truth for the tests. *)

val optimal_social_cost : Cost.game -> alpha:float -> int -> float
(** Minimum social cost over all graphs on [n ≥ 1] vertices. *)

val efficient_graphs : Cost.game -> alpha:float -> int -> Nf_graph.Graph.t list
(** The optimizer(s): complete graph, star, or both at the threshold
    (representative labelings). *)

val is_efficient : Cost.game -> alpha:float -> Nf_graph.Graph.t -> bool
(** Social cost equals {!optimal_social_cost} for its order. *)

val optimal_social_cost_enumerated : Cost.game -> alpha:float -> int -> float
(** Exhaustive minimum over all labeled graphs ([n ≤ 7]); test oracle. *)

val star_social_cost : Cost.game -> alpha:float -> int -> float
val complete_social_cost : Cost.game -> alpha:float -> int -> float
