(** Convexity notions from the paper: cost convexity (Definition 4 /
    Lemma 1) and link convexity (Definition 6 / Lemma 2).

    Link convexity is the paper's workhorse sufficient condition: a link
    convex graph is pairwise stable for some link cost (the gap between
    the best addition and the worst severance is nonempty). *)

val deletion_distance_increase :
  Nf_graph.Graph.t -> int -> Nf_util.Bitset.t -> Nf_util.Ext_int.t
(** [deletion_distance_increase g i nbrs] is the increase in [Σd(i,·)]
    when [i] severs all its links to [nbrs] at once ([nbrs ⊆ neighbors i]).
    @raise Invalid_argument when [nbrs] contains a non-neighbor. *)

val is_cost_convex_at : Nf_graph.Graph.t -> int -> bool
(** Lemma 1's statement for one player: for every subset [B] of [i]'s
    links, the joint severance increase is at least the sum of the
    single-link increases.  (Checks [2^deg(i)] subsets.) *)

val is_cost_convex : Nf_graph.Graph.t -> bool
(** {!is_cost_convex_at} for every player.  Lemma 1 proves this always
    holds; the test suite uses this checker to verify the lemma on
    enumerated and random graphs. *)

val max_addition_gain : Nf_graph.Graph.t -> Nf_util.Ext_int.t option
(** Largest single-endpoint distance saving over all ordered missing
    links; [None] for the complete graph. *)

val min_severance_loss : Nf_graph.Graph.t -> Nf_util.Ext_int.t option
(** Smallest single-endpoint distance increase over all ordered existing
    links; [None] for the empty graph. *)

val is_link_convex : Nf_graph.Graph.t -> bool
(** Definition 6: every possible addition saves (strictly) less than every
    possible severance costs.  Vacuously true for complete graphs. *)

val link_convexity_gap : Nf_graph.Graph.t -> (Nf_util.Ext_int.t * Nf_util.Ext_int.t) option
(** [(max addition gain, min severance loss)] when both sides exist — the
    two ends of inequality (3). *)

val witness_alpha : Nf_graph.Graph.t -> Nf_util.Rat.t option
(** Proposition 2's constructive content: for a link convex graph, a link
    cost inside the gap of inequality (3) at which the graph is pairwise
    stable (hence pairwise Nash, hence achievable as a proper
    equilibrium).  [None] when the graph is not link convex.  The test
    suite asserts [Bcg.is_pairwise_stable ~alpha:(witness) g]. *)
