(** The game registry: every {!Game} instance the pipeline knows about,
    keyed by name.

    The four built-ins — [bcg], [ucg], [transfers], [weighted_bcg] — are
    registered when this module is initialized, which happens whenever
    any consumer of the registry is linked; downstream layers
    ({!Nf_analysis.Equilibria} caches, {!Nf_store} schema dispatch, the
    dynamics and the CLI's [--game] flags) iterate or look up here
    rather than enumerating games by hand, so registering a new instance
    is the {e only} wiring a new game needs (DESIGN.md §10 walks through
    it). *)

val register : Game.packed -> unit
(** Add a game.  Names must be non-empty [[a-z0-9_]+] and unique; schema
    tags must be unique (they key the on-disk atlas format — never reuse
    one).
    @raise Invalid_argument on a duplicate name or tag. *)

val all : unit -> Game.packed list
(** Every registered game, in registration order (built-ins first) —
    deterministic, so registry-driven tests and CI smokes are stable. *)

val names : unit -> string list

val find : string -> Game.packed option

val find_exn : string -> Game.packed
(** @raise Invalid_argument on an unknown name, listing the known ones. *)

val find_by_tag : int -> Game.packed option
(** Lookup by store schema tag (atlas headers record the tag, not the
    name). *)

(** The built-ins, also exposed with their region types for typed
    callers: *)

val bcg : Nf_util.Interval.t Game.t
val ucg : Nf_util.Interval.Union.t Game.t
val transfers : Nf_util.Interval.t Game.t

val weighted_bcg : Nf_util.Interval.t Game.t
(** {!Weighted_bcg.make} over {!Weighted_bcg.default_weight}. *)
