(** Price of anarchy: [ρ(G) = C(G) / C(opt)] (paper §4).

    The BCG's worst case ranges over pairwise stable graphs, the UCG's
    over Nash graphs; both are aggregated here given a set of equilibrium
    graphs produced by the enumeration pipeline. *)

val price_of_anarchy : Cost.game -> alpha:float -> Nf_graph.Graph.t -> float
(** [C(G)] over the optimum for [G]'s order; [infinity] when [G] is
    disconnected, [nan] for [n ≤ 1]. *)

type summary = {
  count : int;  (** number of equilibrium graphs *)
  worst : float;  (** the price of anarchy proper (max ρ) *)
  average : float;  (** the paper's Figure 2 quantity (mean ρ) *)
  best : float;  (** min ρ — the price of stability *)
  average_links : float;  (** the paper's Figure 3 quantity *)
}

val summarize : Cost.game -> alpha:float -> Nf_graph.Graph.t list -> summary
(** Aggregate over an equilibrium set; [count = 0] yields [nan] fields. *)

val pp_summary : Format.formatter -> summary -> unit
