(** Player and social costs of the connection games (paper §2).

    A player's cost is [α · (links provisioned) + Σ_j d(i,j)] (eq. 1), with
    [d = ∞] when disconnected.  Link cost [α] enters two ways: exactly, as a
    rational, in all stability analysis; and as a float in reported cost and
    price-of-anarchy numbers.

    Social cost differs between the two games (eq. 4): in the BCG each edge
    is paid at both endpoints ([2α|A|]); in the UCG it is bought once
    ([α|A|]). *)

type game =
  | Bcg  (** bilateral: consent needed, cost shared at both ends *)
  | Ucg  (** unilateral: either endpoint builds, builder pays *)

val distance_cost : Nf_graph.Graph.t -> int -> Nf_util.Ext_int.t
(** [Σ_j d(i,j)] — the distance part of player [i]'s cost. *)

val total_distance_cost : Nf_graph.Graph.t -> Nf_util.Ext_int.t
(** Sum over ordered pairs (the Wiener term of eq. 4). *)

val player_cost : alpha:float -> Nf_graph.Graph.t -> int -> float
(** BCG player cost given that strategies match the graph: [i] provisions
    exactly its incident edges, so the link term is [α · degree i].
    [infinity] when the graph is disconnected. *)

val player_cost_owned :
  alpha:float -> Nf_graph.Graph.t -> int -> owned:int -> float
(** UCG player cost when player [i] owns (pays for) [owned] of its
    incident edges. *)

val social_cost : game -> alpha:float -> Nf_graph.Graph.t -> float
(** Eq. (4) for the BCG, and its one-sided analogue for the UCG. *)

val social_cost_lower_bound : alpha:float -> int -> int -> float
(** Eq. (5): [2n(n-1) + 2(α-1)m] — a lower bound on BCG social cost for any
    graph with [n] vertices and [m] edges; met exactly by diameter-≤2
    graphs. *)

val is_social_cost_bound_tight : alpha:float -> Nf_graph.Graph.t -> bool
(** Whether the graph attains eq. (5) — i.e. has diameter ≤ 2 (and is
    connected). *)
