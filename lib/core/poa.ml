module Graph = Nf_graph.Graph

let price_of_anarchy game ~alpha g =
  let n = Graph.order g in
  if n <= 1 then nan
  else Cost.social_cost game ~alpha g /. Efficiency.optimal_social_cost game ~alpha n

type summary = {
  count : int;
  worst : float;
  average : float;
  best : float;
  average_links : float;
}

let summarize game ~alpha graphs =
  let ratios = List.map (price_of_anarchy game ~alpha) graphs in
  let links = List.map (fun g -> float_of_int (Graph.size g)) graphs in
  let stats = Nf_util.Stats.of_list ratios in
  {
    count = List.length graphs;
    worst = Nf_util.Stats.max stats;
    average = Nf_util.Stats.mean stats;
    best = Nf_util.Stats.min stats;
    average_links = Nf_util.Stats.mean (Nf_util.Stats.of_list links);
  }

let pp_summary ppf s =
  Format.fprintf ppf "count=%d worst=%.4f avg=%.4f best=%.4f avg_links=%.2f" s.count
    s.worst s.average s.best s.average_links
