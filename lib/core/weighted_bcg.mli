(** The bilateral connection game with per-player link-cost multipliers —
    the heterogeneous-cost extension of §5's study (player [i] pays
    [w_i·α] for each of its links, [w_i ≥ 1] an integer), after
    Govindaraj's per-player link-cost variant.

    Every BCG threshold [k] (an integer difference of hop-count sums)
    becomes the exact rational [k / w_i], so each graph still has an
    exact stable interval: [α_min] is the max over missing links of
    [min(b_i/w_i, b_j/w_j)] (closed exactly when every attaining pair
    ties), [α_max] the min over edge endpoints of [l_i/w_i].  With all
    weights equal to 1 every threshold — and therefore every region,
    certificate and improving move — coincides with {!Bcg}'s; the
    differential tests assert the regions are structurally equal.

    The annotation is computed on the {e labeled} graph: unlike the
    uniform games, a per-player weight profile is not isomorphism
    invariant, so regions attach to the chosen representative labeling
    of each class.

    {!make} packages a weight profile as a first-class {!Game.t}; the
    instance registered in {!Game_registry} uses {!default_weight}. *)

val default_weight : int -> int
(** The registered demonstration profile: [1 + (i mod 2)] — players
    alternate between unit and doubled link prices. *)

val stable_alpha_set :
  weight:(int -> int) -> Nf_graph.Graph.t -> Nf_util.Interval.t
(** The exact set of positive link costs at which the graph is pairwise
    stable under the weighted deviation rules.
    @raise Invalid_argument when [weight i < 1] for some player [i]. *)

val stable_alpha_set_ws :
  weight:(int -> int) -> Nf_graph.Kernel.t -> Nf_graph.Graph.t -> Nf_util.Interval.t
(** {!stable_alpha_set} against a caller-provided kernel workspace (the
    allocation-free chunked-annotation path). *)

val stable_alpha_set_reference :
  weight:(int -> int) -> Nf_graph.Graph.t -> Nf_util.Interval.t
(** Persistent-path twin (base sums via [Apsp.distance_sums], one fresh
    BFS per endpoint per toggle); structurally identical output,
    compared against the workspace path by the differential tests. *)

val is_stable :
  weight:(int -> int) -> alpha:Nf_util.Rat.t -> Nf_graph.Graph.t -> bool
(** Literal weighted Definition 3 at an exact link cost; agrees with
    membership in {!stable_alpha_set}. *)

val improving_moves :
  weight:(int -> int) -> alpha:Nf_util.Rat.t -> Nf_graph.Graph.t -> Game.move list
(** Improving moves in {!Bcg.improving_moves}'s order contract
    (lexicographic additions, then per edge [Delete (i, j)] before
    [Delete (j, i)]). *)

val make :
  ?name:string ->
  ?describe:string ->
  ?schema_tag:int ->
  weight:(int -> int) ->
  unit ->
  Nf_util.Interval.t Game.t
(** A weight profile as a first-class game.  Defaults: name
    ["weighted_bcg"], schema tag [3] — when registering a second profile
    alongside the built-in one, pass a fresh name {e and} a fresh tag
    (see the schema-tag contract in {!Game.S.schema_tag}). *)
