(** The unilateral connection game (Fabrikant et al.): Nash graphs and
    exact Nash regions in the link cost.

    In any UCG Nash profile each formed edge is bought by exactly one
    endpoint (double purchases admit an improving drop), so supporting
    strategy profiles are exactly edge orientations.  Whether player [i]
    accepts its owned edge set is independent of who owns the other edges,
    which lets the certifier search orientations with per-player
    memoization: a graph is a Nash graph iff some orientation makes every
    player accept.

    A player's acceptance constraints are linear in [α], so each
    [(player, owned set)] pair has an exact rational acceptance interval
    and each graph an exact Nash α-region (a finite union of rational
    intervals).

    These computations are exponential in the worst case (all orientations
    of dense graphs); they are intended for the orders the empirical study
    enumerates (n ≤ 8). *)

type owned = Nf_util.Bitset.t
(** The set of neighbors whose link player [i] pays for. *)

val best_response :
  alpha:Nf_util.Rat.t -> Nf_graph.Graph.t -> int -> owned:owned -> owned * Nf_util.Rat.t
(** [best_response ~alpha g i ~owned] is a cost-minimizing replacement
    wish set for player [i] (given the rest of the graph is kept by the
    other players), with its exact cost [α·k + Σd] — always finite, since
    buying every missing link connects [i] to everyone.  Candidate costs
    are compared by integer cross-multiplication, never through floats.
    Searches all [2^(candidates)] subsets. *)

val best_response_f :
  alpha:Nf_util.Rat.t -> Nf_graph.Graph.t -> int -> owned:owned -> owned * float
(** {!best_response} with the cost rounded to a float — convenience for
    examples and printing; the argmax itself is computed exactly. *)

val accepts : alpha:Nf_util.Rat.t -> Nf_graph.Graph.t -> int -> owned:owned -> bool
(** Player [i] has no strictly improving unilateral deviation when it owns
    [owned] in [g]. *)

val acceptance_interval :
  Nf_graph.Graph.t -> int -> owned:owned -> Nf_util.Interval.t
(** The exact set of positive link costs at which {!accepts} holds.
    Requires [Σd(i,·)] finite (connected from [i]); @raise Invalid_argument
    otherwise. *)

val is_nash_orientation :
  alpha:Nf_util.Rat.t -> Nf_graph.Graph.t -> owner:(int -> int -> int) -> bool
(** Nash check for one explicit ownership assignment ([owner i j] must
    return [i] or [j] for each edge [i < j]). *)

val is_nash_graph : alpha:Nf_util.Rat.t -> Nf_graph.Graph.t -> bool
(** Whether some orientation of [g] is a Nash equilibrium at link cost
    [α] (Definition 1 existentially over supporting profiles). *)

val is_nash_graph_f : alpha:float -> Nf_graph.Graph.t -> bool
(** Dyadic-float convenience wrapper. *)

val nash_alpha_set : Nf_graph.Graph.t -> Nf_util.Interval.Union.t
(** The exact set of positive link costs at which [g] is a Nash graph.
    Requires [g] connected; disconnected graphs return the empty union
    (no connected-to-[i] player tolerates unreachable vertices, and fully
    empty graphs admit the buy-everything improvement).  When the orbit
    quotient is enabled this auto-detects symmetry — the full group from
    {!Nf_iso.Canon.full} for searches with at least 10 edges, the twin
    scan below that — and prunes the orientation walk with it; the
    result is structurally identical either way. *)

val nash_alpha_set_ws : Nf_graph.Kernel.t -> Nf_graph.Graph.t -> Nf_util.Interval.Union.t
(** {!nash_alpha_set} against a caller-provided kernel workspace — the
    allocation-light path used by chunked annotation (acceptance intervals
    accumulated as integer fraction bounds around in-place edge
    toggles).  Always the unquotiented walk. *)

val nash_alpha_set_sym_ws :
  Nf_graph.Kernel.t -> Nf_iso.Symmetry.t -> Nf_graph.Graph.t -> Nf_util.Interval.Union.t
(** Orbit-quotient orientation search: prunes owner-swap sibling branches
    with live automorphisms of the given subgroup (any subgroup of
    [Aut(g)] is sound — skipped subtrees emit exactly the pieces their
    σ-image keeps) and runs the walk on lazily-filled integer acceptance
    tables.  Structurally identical output to {!nash_alpha_set_ws}; a
    trivial subgroup runs exactly the plain walk (the rigid fast
    path). *)

val nash_alpha_set_reference : Nf_graph.Graph.t -> Nf_util.Interval.Union.t
(** Retained persistent-path implementation built on
    {!acceptance_interval}; structurally identical output to
    {!nash_alpha_set}, compared against it by the differential tests. *)
