module Graph = Nf_graph.Graph
module Bitset = Nf_util.Bitset

type t = {
  n : int;
  rows : int array;  (** [rows.(i)] is the bitset of players i seeks *)
}

let create n = { n; rows = Array.make n Bitset.empty }
let order t = t.n
let seeks t i j = Bitset.mem j t.rows.(i)

let set t i j value =
  if i = j then invalid_arg "Strategy.set: self-link";
  if i < 0 || j < 0 || i >= t.n || j >= t.n then invalid_arg "Strategy.set: out of range";
  let rows = Array.copy t.rows in
  rows.(i) <- (if value then Bitset.add j rows.(i) else Bitset.remove j rows.(i));
  { t with rows }

let wish_count t i = Bitset.cardinal t.rows.(i)
let wishes t i = t.rows.(i)

let graph game t =
  let g = ref (Graph.empty t.n) in
  Nf_util.Subset.iter_pairs t.n (fun i j ->
      let formed =
        match game with
        | Cost.Ucg -> seeks t i j || seeks t j i
        | Cost.Bcg -> seeks t i j && seeks t j i
      in
      if formed then g := Graph.add_edge !g i j);
  !g

let of_graph_bcg g =
  { n = Graph.order g; rows = Array.init (Graph.order g) (Graph.neighbors g) }

let of_graph_ucg g ~owner =
  let n = Graph.order g in
  let rows = Array.make n Bitset.empty in
  Graph.iter_edges g (fun i j ->
      let o = owner i j in
      if o <> i && o <> j then invalid_arg "Strategy.of_graph_ucg: owner not an endpoint";
      let other = if o = i then j else i in
      rows.(o) <- Bitset.add other rows.(o));
  { n; rows }

(* Float costs are exact for dyadic α: the link term is α times a small
   int and the distance term is a small int, so equilibrium comparisons at
   the α values used in tests and experiments incur no rounding. *)
let player_cost game ~alpha t i =
  let g = graph game t in
  (alpha *. float_of_int (wish_count t i))
  +. Nf_util.Ext_int.to_float (Cost.distance_cost g i)

let with_row t i row =
  let rows = Array.copy t.rows in
  rows.(i) <- row;
  { t with rows }

let is_nash game ~alpha t =
  let everyone = Bitset.full t.n in
  let stable_player i =
    let base = player_cost game ~alpha t i in
    let ground = Bitset.remove i everyone in
    not
      (Nf_util.Subset.exists_subset ground (fun row ->
           player_cost game ~alpha (with_row t i row) i < base))
  in
  let rec all i = i >= t.n || (stable_player i && all (i + 1)) in
  all 0

(* Λ(i,j) per Definition 2: both announcements in the BCG, only the buyer's
   in the UCG. *)
let add_link game t i j =
  match game with
  | Cost.Bcg -> set (set t i j true) j i true
  | Cost.Ucg -> set t i j true

let is_pairwise_nash game ~alpha t =
  is_nash game ~alpha t
  &&
  let g = graph game t in
  let ok = ref true in
  Graph.iter_non_edges g (fun i j ->
      let check a b =
        let t' = add_link game t a b in
        let ca = player_cost game ~alpha t a
        and cb = player_cost game ~alpha t b in
        let ca' = player_cost game ~alpha t' a
        and cb' = player_cost game ~alpha t' b in
        if ca' < ca && not (cb' > cb) then ok := false
      in
      check i j;
      check j i);
  !ok
