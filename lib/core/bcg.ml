module Graph = Nf_graph.Graph
module Bfs = Nf_graph.Bfs
module Apsp = Nf_graph.Apsp
module Kernel = Nf_graph.Kernel
module Symmetry = Nf_iso.Symmetry
module Ext_int = Nf_util.Ext_int
module Rat = Nf_util.Rat
module Interval = Nf_util.Interval

let addition_benefit g i j =
  if Graph.has_edge g i j then invalid_arg "Bcg.addition_benefit: edge present";
  let before = Bfs.distance_sum g i
  and after = Bfs.distance_sum (Graph.add_edge g i j) i in
  match before, after with
  | Ext_int.Fin b, Ext_int.Fin a -> Ext_int.Fin (b - a)
  | Ext_int.Inf, Ext_int.Fin _ -> Ext_int.Inf
  | Ext_int.Inf, Ext_int.Inf -> Ext_int.Fin 0
  | Ext_int.Fin _, Ext_int.Inf -> assert false (* adding cannot disconnect *)

let severance_loss g i j =
  if not (Graph.has_edge g i j) then invalid_arg "Bcg.severance_loss: not an edge";
  let before = Bfs.distance_sum g i
  and after = Bfs.distance_sum (Graph.remove_edge g i j) i in
  match before, after with
  | Ext_int.Fin b, Ext_int.Fin a -> Ext_int.Fin (a - b)
  | Ext_int.Fin _, Ext_int.Inf -> Ext_int.Inf (* bridge *)
  | Ext_int.Inf, _ ->
    (* i's cost is infinite with or without the edge: indifferent, and the
       weak deletion inequality of Definition 3 always holds *)
    Ext_int.Inf

(* ---- persistent reference kernel ----------------------------------------
   The BFS-sharing scan over persistent graphs (base sums via
   Apsp.distance_sums, one fresh allocating BFS per endpoint per toggle).
   It is no longer the production path — the workspace scan below is — but
   stays as the independently-reviewed reference that the parity tests in
   test_pool.ml and test_kernel.ml compare against. *)

let benefit_from ~base after =
  match base, after with
  | Ext_int.Fin b, Ext_int.Fin a -> Ext_int.Fin (b - a)
  | Ext_int.Inf, Ext_int.Fin _ -> Ext_int.Inf
  | Ext_int.Inf, Ext_int.Inf -> Ext_int.Fin 0
  | Ext_int.Fin _, Ext_int.Inf -> assert false (* adding cannot disconnect *)

let loss_from ~base after =
  match base, after with
  | Ext_int.Fin b, Ext_int.Fin a -> Ext_int.Fin (a - b)
  | Ext_int.Fin _, Ext_int.Inf -> Ext_int.Inf (* bridge *)
  | Ext_int.Inf, _ -> Ext_int.Inf

(* One pass over the non-edges computes α_min and the attainment flag
   together: track the running maximum of the pairwise willingness and
   whether every pair attaining it is a tie (both endpoints equally
   interested) — a new strict maximum resets the flag, an equal one refines
   it, smaller pairs cannot matter. *)
type scan = {
  scan_alpha_min : Ext_int.t;
  scan_alpha_max : Ext_int.t;
  scan_lo_closed : bool;
}

let scan_stability_reference g =
  let base = Apsp.distance_sums g in
  let lo = ref (Ext_int.Fin 0) in
  let tied = ref true in
  Graph.iter_non_edges g (fun i j ->
      let added = Graph.add_edge g i j in
      let bi = benefit_from ~base:base.(i) (Bfs.distance_sum added i)
      and bj = benefit_from ~base:base.(j) (Bfs.distance_sum added j) in
      let m = Ext_int.min bi bj in
      let c = Ext_int.compare m !lo in
      if c > 0 then begin
        lo := m;
        tied := Ext_int.equal bi bj
      end
      else if c = 0 && not (Ext_int.equal bi bj) then tied := false);
  let hi = ref Ext_int.Inf in
  Graph.iter_edges g (fun i j ->
      let removed = Graph.remove_edge g i j in
      hi := Ext_int.min !hi (loss_from ~base:base.(i) (Bfs.distance_sum removed i));
      hi := Ext_int.min !hi (loss_from ~base:base.(j) (Bfs.distance_sum removed j)));
  {
    scan_alpha_min = !lo;
    scan_alpha_max = !hi;
    scan_lo_closed =
      (match !lo with
      | Ext_int.Inf -> false
      | Ext_int.Fin _ -> !tied);
  }

(* ---- workspace kernel ---------------------------------------------------
   The production path: base distance sums from one bit-parallel
   all-sources sweep, then every edge toggle is two in-place xors plus one
   allocation-free single-source sweep per endpoint, with benefits/losses
   kept as raw ints (Kernel.inf as ∞) and α compared by integer
   cross-multiplication.  Toggle enumeration is the same lexicographic
   (i < j) order as Graph.iter_non_edges/iter_edges, and every max/min/tie
   update is order-independent, so the resulting intervals are structurally
   identical to the reference scan's. *)

let inf = Kernel.inf

(* i's cost decrease from adding a missing edge, as an int (inf = ∞).
   Adding cannot disconnect, so base finite ⇒ after finite. *)
let ibenefit ~base after = if base = inf then (if after = inf then 0 else inf) else base - after

(* i's cost increase from severing an edge; ∞ for a bridge or when i's cost
   is already infinite either way. *)
let iloss ~base after = if base = inf || after = inf then inf else after - base

(* α < k and α ≤ k for integer-or-infinite thresholds, by exact
   cross-multiplication (Rat.make normalizes to den > 0). *)
let rat_lt_i alpha k = k = inf || Rat.num alpha < k * Rat.den alpha
let rat_le_i alpha k = k = inf || Rat.num alpha <= k * Rat.den alpha

(* The three scan results packed as ints to keep the hot path mono-field:
   lo/hi with inf = ∞, tied as bool. *)
type iscan = {
  iscan_lo : int;
  iscan_hi : int;
  iscan_tied : bool;
}

let scan_stability_ws ws =
  let n = Kernel.order ws in
  let base = Kernel.all_distance_sums ws in
  let lo = ref 0 and tied = ref true and hi = ref inf in
  for i = 0 to n - 2 do
    let bi_base = base.(i) in
    for j = i + 1 to n - 1 do
      if Kernel.has_edge ws i j then begin
        Kernel.toggle ws i j;
        let li = iloss ~base:bi_base (Kernel.distance_sum_from ws i) in
        if li < !hi then hi := li;
        if !hi > 0 then begin
          (* min with lj, skipped when hi is already 0 (cannot drop lower:
             losses are ≥ 0) — same result, fewer sweeps *)
          let lj = iloss ~base:base.(j) (Kernel.distance_sum_from ws j) in
          if lj < !hi then hi := lj
        end;
        Kernel.toggle ws i j
      end
      else begin
        Kernel.toggle ws i j;
        let bi = ibenefit ~base:bi_base (Kernel.distance_sum_from ws i) in
        (* bi < lo ⇒ min(bi, bj) < lo: the pair can neither raise the max
           nor tie it, so j's sweep is skipped — same scan result *)
        if bi >= !lo then begin
          let bj = ibenefit ~base:base.(j) (Kernel.distance_sum_from ws j) in
          let m = if bi < bj then bi else bj in
          if m > !lo then begin
            lo := m;
            tied := bi = bj
          end
          else if m = !lo && bi <> bj then tied := false
        end;
        Kernel.toggle ws i j
      end
    done
  done;
  { iscan_lo = !lo; iscan_hi = !hi; iscan_tied = !tied }

(* Orbit-quotient twins of the scan: one representative toggle per
   automorphism orbit of the unordered pairs.  An automorphism σ carries
   the toggle of {i,j} to the toggle of {σi,σj} and preserves distance
   sums, so the multiset {benefit_i, benefit_j} (resp. {loss_i, loss_j})
   is constant on each orbit — every max/min/tie update the skipped pairs
   would contribute is already contributed, with the same operands, by
   their representative.  The folds are order-independent, so the scan
   result is structurally identical to the full loop's (the differential
   harness in test/test_orbit.ml enforces this per registered game). *)

(* Twin-class variant for the sweep tier: the O(1) representative test
   from Symmetry.twin_partition replaces the materialized orbit table,
   rows of vertices that are not their class minimum hold no
   representatives at all, and a within-class pair has a transposition
   swapping its endpoints in the subgroup, so benefit_j = benefit_i and
   loss_j = loss_i exactly — one sweep serves both endpoints and the
   attaining pair always ties. *)
let scan_stability_classes_ws ws (cls : int array) (second : int array) =
  let n = Kernel.order ws in
  let base = Kernel.all_distance_sums ws in
  let lo = ref 0 and tied = ref true and hi = ref inf in
  for i = 0 to n - 2 do
    if cls.(i) = i then begin
      let bi_base = base.(i) in
      let snd_i = second.(i) in
      for j = i + 1 to n - 1 do
        let same = cls.(j) = i in
        if (if same then j = snd_i else cls.(j) = j) then
          if Kernel.has_edge ws i j then begin
            Kernel.toggle ws i j;
            let li = iloss ~base:bi_base (Kernel.distance_sum_from ws i) in
            if li < !hi then hi := li;
            if (not same) && !hi > 0 then begin
              let lj = iloss ~base:base.(j) (Kernel.distance_sum_from ws j) in
              if lj < !hi then hi := lj
            end;
            Kernel.toggle ws i j
          end
          else begin
            Kernel.toggle ws i j;
            let bi = ibenefit ~base:bi_base (Kernel.distance_sum_from ws i) in
            if same then begin
              (* twin pair: bj = bi, so min = bi and the pair ties *)
              if bi > !lo then begin
                lo := bi;
                tied := true
              end
            end
            else if bi >= !lo then begin
              let bj = ibenefit ~base:base.(j) (Kernel.distance_sum_from ws j) in
              let m = if bi < bj then bi else bj in
              if m > !lo then begin
                lo := m;
                tied := bi = bj
              end
              else if m = !lo && bi <> bj then tied := false
            end;
            Kernel.toggle ws i j
          end
      done
    end
  done;
  { iscan_lo = !lo; iscan_hi = !hi; iscan_tied = !tied }

let scan_stability_orbit_ws ws (eo : Symmetry.edge_orbits) =
  let n = Kernel.order ws in
  let base = Kernel.all_distance_sums ws in
  let orb = eo.Symmetry.orbit_of_pair in
  let lo = ref 0 and tied = ref true and hi = ref inf in
  for i = 0 to n - 2 do
    let bi_base = base.(i) in
    for j = i + 1 to n - 1 do
      let t = (j * (j - 1) / 2) + i in
      if orb.(t) = t then
        if Kernel.has_edge ws i j then begin
          Kernel.toggle ws i j;
          let li = iloss ~base:bi_base (Kernel.distance_sum_from ws i) in
          if li < !hi then hi := li;
          if !hi > 0 then begin
            let lj = iloss ~base:base.(j) (Kernel.distance_sum_from ws j) in
            if lj < !hi then hi := lj
          end;
          Kernel.toggle ws i j
        end
        else begin
          Kernel.toggle ws i j;
          let bi = ibenefit ~base:bi_base (Kernel.distance_sum_from ws i) in
          if bi >= !lo then begin
            let bj = ibenefit ~base:base.(j) (Kernel.distance_sum_from ws j) in
            let m = if bi < bj then bi else bj in
            if m > !lo then begin
              lo := m;
              tied := bi = bj
            end
            else if m = !lo && bi <> bj then tied := false
          end;
          Kernel.toggle ws i j
        end
    done
  done;
  { iscan_lo = !lo; iscan_hi = !hi; iscan_tied = !tied }

let endpoint_of_int k = if k = inf then Interval.Pos_inf else Interval.Finite (Rat.of_int k)
let ext_of_int k = if k = inf then Ext_int.Inf else Ext_int.Fin k

let endpoint_of_ext = function
  | Ext_int.Fin k -> Interval.Finite (Rat.of_int k)
  | Ext_int.Inf -> Interval.Pos_inf

let positive = Interval.open_closed Rat.zero Interval.Pos_inf

let alpha_min g =
  Kernel.with_loaded g (fun ws ->
      let n = Kernel.order ws in
      let base = Kernel.all_distance_sums ws in
      let lo = ref 0 in
      for i = 0 to n - 2 do
        for j = i + 1 to n - 1 do
          if not (Kernel.has_edge ws i j) then begin
            Kernel.toggle ws i j;
            let bi = ibenefit ~base:base.(i) (Kernel.distance_sum_from ws i)
            and bj = ibenefit ~base:base.(j) (Kernel.distance_sum_from ws j) in
            Kernel.toggle ws i j;
            let m = if bi < bj then bi else bj in
            if m > !lo then lo := m
          end
        done
      done;
      ext_of_int !lo)

let alpha_max g =
  Kernel.with_loaded g (fun ws ->
      let n = Kernel.order ws in
      let base = Kernel.all_distance_sums ws in
      let hi = ref inf in
      for i = 0 to n - 2 do
        for j = i + 1 to n - 1 do
          if Kernel.has_edge ws i j then begin
            Kernel.toggle ws i j;
            let li = iloss ~base:base.(i) (Kernel.distance_sum_from ws i)
            and lj = iloss ~base:base.(j) (Kernel.distance_sum_from ws j) in
            Kernel.toggle ws i j;
            if li < !hi then hi := li;
            if lj < !hi then hi := lj
          end
        done
      done;
      ext_of_int !hi)

let interval_of_iscan ~lo_closed s =
  Interval.inter positive
    (Interval.make ~lo:(endpoint_of_int s.iscan_lo) ~lo_closed
       ~hi:(endpoint_of_int s.iscan_hi) ~hi_closed:true)

let stability_interval g =
  Kernel.with_loaded g (fun ws -> interval_of_iscan ~lo_closed:false (scan_stability_ws ws))

let stable_alpha_set_ws ws g =
  (* The left end is attained exactly when every missing edge whose
     less-interested benefit equals α_min is a tie (both endpoints equally
     interested): at α = benefit the strict "ci < ci" premise of
     Definition 3 fails on both sides. *)
  Kernel.load ws g;
  let s = scan_stability_ws ws in
  interval_of_iscan ~lo_closed:(s.iscan_lo <> inf && s.iscan_tied) s

(* The rigid fast path is literal: a trivial subgroup runs exactly
   [scan_stability_ws], so asymmetric graphs pay only the caller's
   detection scan. *)
let stable_alpha_set_sym_ws ws sym g =
  Kernel.load ws g;
  let s =
    if Symmetry.is_trivial sym then scan_stability_ws ws
    else
      match Symmetry.twin_partition sym with
      | Some (cls, second) -> scan_stability_classes_ws ws cls second
      | None -> scan_stability_orbit_ws ws (Symmetry.edge_orbits sym)
  in
  interval_of_iscan ~lo_closed:(s.iscan_lo <> inf && s.iscan_tied) s

let stable_alpha_set g =
  Kernel.with_ws (fun ws ->
      if Symmetry.quotient_enabled () then
        stable_alpha_set_sym_ws ws (Symmetry.detect_twins g) g
      else stable_alpha_set_ws ws g)

let stable_alpha_set_reference g =
  let s = scan_stability_reference g in
  Interval.inter positive
    (Interval.make ~lo:(endpoint_of_ext s.scan_alpha_min) ~lo_closed:s.scan_lo_closed
       ~hi:(endpoint_of_ext s.scan_alpha_max) ~hi_closed:true)

(* unstable when one endpoint strictly gains (α < b) and the other does not
   strictly lose (α ≤ b) *)
let addition_blocks alpha bi bj =
  (rat_lt_i alpha bi && rat_le_i alpha bj) || (rat_lt_i alpha bj && rat_le_i alpha bi)

let no_improving_addition ~alpha ~base ws =
  let n = Kernel.order ws in
  let ok = ref true in
  (try
     for i = 0 to n - 2 do
       for j = i + 1 to n - 1 do
         if not (Kernel.has_edge ws i j) then begin
           Kernel.toggle ws i j;
           let bi = ibenefit ~base:base.(i) (Kernel.distance_sum_from ws i)
           and bj = ibenefit ~base:base.(j) (Kernel.distance_sum_from ws j) in
           Kernel.toggle ws i j;
           if addition_blocks alpha bi bj then begin
             ok := false;
             raise_notrace Exit
           end
         end
       done
     done
   with Exit -> ());
  !ok

(* α ≤ α_max unfolded pairwise, sharing [base] and exiting early *)
let no_improving_deletion ~alpha ~base ws =
  let n = Kernel.order ws in
  let ok = ref true in
  (try
     for i = 0 to n - 2 do
       for j = i + 1 to n - 1 do
         if Kernel.has_edge ws i j then begin
           Kernel.toggle ws i j;
           let li = iloss ~base:base.(i) (Kernel.distance_sum_from ws i)
           and lj = iloss ~base:base.(j) (Kernel.distance_sum_from ws j) in
           Kernel.toggle ws i j;
           if (not (rat_le_i alpha li)) || not (rat_le_i alpha lj) then begin
             ok := false;
             raise_notrace Exit
           end
         end
       done
     done
   with Exit -> ());
  !ok

let is_pairwise_stable ~alpha g =
  Kernel.with_loaded g (fun ws ->
      let base = Kernel.all_distance_sums ws in
      no_improving_deletion ~alpha ~base ws && no_improving_addition ~alpha ~base ws)

let is_pairwise_nash ~alpha g =
  (* Nash part: no player gains by dropping any subset of its links (a
     unilateral deviation can only sever in the BCG — announcing new links
     without consent just costs α per announcement). *)
  Kernel.with_loaded g (fun ws ->
      let base = Kernel.all_distance_sums ws in
      let n = Kernel.order ws in
      let nash_ok = ref true in
      for i = 0 to n - 1 do
        Nf_util.Subset.iter_subsets (Kernel.neighbors ws i) (fun nbrs ->
            if !nash_ok && not (Nf_util.Bitset.is_empty nbrs) then begin
              let k = Nf_util.Bitset.cardinal nbrs in
              Nf_util.Bitset.iter (fun j -> Kernel.toggle ws i j) nbrs;
              let after = Kernel.distance_sum_from ws i in
              Nf_util.Bitset.iter (fun j -> Kernel.toggle ws i j) nbrs;
              (* improving iff ΔD < α·k, i.e. (after − base)·den < num·k *)
              if base.(i) <> inf && after <> inf then
                if (after - base.(i)) * Rat.den alpha < Rat.num alpha * k then nash_ok := false
            end)
      done;
      !nash_ok
      &&
      (* pairwise part: identical to the addition half of pairwise stability *)
      no_improving_addition ~alpha ~base ws)

let is_pairwise_stable_f ~alpha g =
  (* dyadic floats convert exactly; reject anything that does not *)
  let denom = 4096 in
  let scaled = alpha *. float_of_int denom in
  if Float.is_integer scaled then
    is_pairwise_stable ~alpha:(Rat.make (int_of_float scaled) denom) g
  else invalid_arg "Bcg.is_pairwise_stable_f: alpha not dyadic with denominator <= 4096"

let improving_addition ~alpha g =
  Kernel.with_loaded g (fun ws ->
      let base = Kernel.all_distance_sums ws in
      let n = Kernel.order ws in
      let found = ref None in
      (try
         for i = 0 to n - 2 do
           for j = i + 1 to n - 1 do
             if not (Kernel.has_edge ws i j) then begin
               Kernel.toggle ws i j;
               let bi = ibenefit ~base:base.(i) (Kernel.distance_sum_from ws i)
               and bj = ibenefit ~base:base.(j) (Kernel.distance_sum_from ws j) in
               Kernel.toggle ws i j;
               if addition_blocks alpha bi bj then begin
                 found := Some (i, j);
                 raise_notrace Exit
               end
             end
           done
         done
       with Exit -> ());
      !found)

(* One kernel sweep for the base sums, then one allocation-free toggle
   evaluation per candidate move.  Moves are accumulated in exactly the
   order the historical persistent path produced them (additions in
   lexicographic (i, j) order, then per edge Delete (i, j) before
   Delete (j, i)), so [Prng.pick] in the dynamics draws the same move at
   every step and traces stay byte-identical across refactors. *)
let improving_moves ~alpha g =
  Kernel.with_loaded g (fun ws ->
      let base = Kernel.all_distance_sums ws in
      let n = Kernel.order ws in
      let num = Rat.num alpha
      and den = Rat.den alpha in
      let lt k = k = inf || num < k * den
      and le k = k = inf || num <= k * den in
      let moves = ref [] in
      for i = 0 to n - 2 do
        for j = i + 1 to n - 1 do
          if not (Kernel.has_edge ws i j) then begin
            Kernel.toggle ws i j;
            let bi = ibenefit ~base:base.(i) (Kernel.distance_sum_from ws i)
            and bj = ibenefit ~base:base.(j) (Kernel.distance_sum_from ws j) in
            Kernel.toggle ws i j;
            if (lt bi && le bj) || (lt bj && le bi) then
              moves := Game.Add (i, j) :: !moves
          end
        done
      done;
      for i = 0 to n - 2 do
        for j = i + 1 to n - 1 do
          if Kernel.has_edge ws i j then begin
            Kernel.toggle ws i j;
            let li = iloss ~base:base.(i) (Kernel.distance_sum_from ws i)
            and lj = iloss ~base:base.(j) (Kernel.distance_sum_from ws j) in
            Kernel.toggle ws i j;
            if not (le li) then moves := Game.Delete (i, j) :: !moves;
            if not (le lj) then moves := Game.Delete (j, i) :: !moves
          end
        done
      done;
      !moves)

let improving_deletion ~alpha g =
  Kernel.with_loaded g (fun ws ->
      let base = Kernel.all_distance_sums ws in
      let n = Kernel.order ws in
      let found = ref None in
      (try
         for i = 0 to n - 2 do
           for j = i + 1 to n - 1 do
             if Kernel.has_edge ws i j then begin
               Kernel.toggle ws i j;
               let li = iloss ~base:base.(i) (Kernel.distance_sum_from ws i)
               and lj = iloss ~base:base.(j) (Kernel.distance_sum_from ws j) in
               Kernel.toggle ws i j;
               if not (rat_le_i alpha li) then begin
                 found := Some (i, j);
                 raise_notrace Exit
               end
               else if not (rat_le_i alpha lj) then begin
                 found := Some (j, i);
                 raise_notrace Exit
               end
             end
           done
         done
       with Exit -> ());
      !found)
