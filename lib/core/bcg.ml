module Graph = Nf_graph.Graph
module Bfs = Nf_graph.Bfs
module Ext_int = Nf_util.Ext_int
module Rat = Nf_util.Rat
module Interval = Nf_util.Interval

let addition_benefit g i j =
  if Graph.has_edge g i j then invalid_arg "Bcg.addition_benefit: edge present";
  let before = Bfs.distance_sum g i
  and after = Bfs.distance_sum (Graph.add_edge g i j) i in
  match before, after with
  | Ext_int.Fin b, Ext_int.Fin a -> Ext_int.Fin (b - a)
  | Ext_int.Inf, Ext_int.Fin _ -> Ext_int.Inf
  | Ext_int.Inf, Ext_int.Inf -> Ext_int.Fin 0
  | Ext_int.Fin _, Ext_int.Inf -> assert false (* adding cannot disconnect *)

let severance_loss g i j =
  if not (Graph.has_edge g i j) then invalid_arg "Bcg.severance_loss: not an edge";
  let before = Bfs.distance_sum g i
  and after = Bfs.distance_sum (Graph.remove_edge g i j) i in
  match before, after with
  | Ext_int.Fin b, Ext_int.Fin a -> Ext_int.Fin (a - b)
  | Ext_int.Fin _, Ext_int.Inf -> Ext_int.Inf (* bridge *)
  | Ext_int.Inf, _ ->
    (* i's cost is infinite with or without the edge: indifferent, and the
       weak deletion inequality of Definition 3 always holds *)
    Ext_int.Inf

(* [min(benefit_i, benefit_j)] — the willingness of the less interested
   endpoint, which is what consent requires. *)
let pair_benefit g i j = Ext_int.min (addition_benefit g i j) (addition_benefit g j i)

let alpha_min g =
  let worst = ref (Ext_int.Fin 0) in
  Graph.iter_non_edges g (fun i j -> worst := Ext_int.max !worst (pair_benefit g i j));
  !worst

let alpha_max g =
  let best = ref Ext_int.Inf in
  Graph.iter_edges g (fun i j ->
      best := Ext_int.min !best (severance_loss g i j);
      best := Ext_int.min !best (severance_loss g j i));
  !best

let endpoint_of_ext = function
  | Ext_int.Fin k -> Interval.Finite (Rat.of_int k)
  | Ext_int.Inf -> Interval.Pos_inf

let positive = Interval.open_closed Rat.zero Interval.Pos_inf

let stability_interval g =
  Interval.inter positive
    (Interval.make ~lo:(endpoint_of_ext (alpha_min g)) ~lo_closed:false
       ~hi:(endpoint_of_ext (alpha_max g)) ~hi_closed:true)

let stable_alpha_set g =
  let lo = alpha_min g in
  (* The left end is attained exactly when every missing edge whose
     less-interested benefit equals α_min is a tie (both endpoints equally
     interested): at α = benefit the strict "ci < ci" premise of
     Definition 3 fails on both sides. *)
  let lo_closed =
    match lo with
    | Ext_int.Inf -> false
    | Ext_int.Fin _ ->
      let closed = ref true in
      Graph.iter_non_edges g (fun i j ->
          if Ext_int.equal (pair_benefit g i j) lo then
            if not (Ext_int.equal (addition_benefit g i j) (addition_benefit g j i))
            then closed := false);
      !closed
  in
  Interval.inter positive
    (Interval.make ~lo:(endpoint_of_ext lo) ~lo_closed ~hi:(endpoint_of_ext (alpha_max g))
       ~hi_closed:true)

(* α compared against an integer-or-infinite threshold, exactly. *)
let rat_lt alpha = function
  | Ext_int.Inf -> true
  | Ext_int.Fin k -> Rat.(alpha < of_int k)

let rat_le alpha = function
  | Ext_int.Inf -> true
  | Ext_int.Fin k -> Rat.(alpha <= of_int k)

let is_pairwise_stable ~alpha g =
  let deletions_ok = rat_le alpha (alpha_max g) in
  deletions_ok
  &&
  let ok = ref true in
  Graph.iter_non_edges g (fun i j ->
      let bi = addition_benefit g i j
      and bj = addition_benefit g j i in
      (* unstable when one endpoint strictly gains (α < b) and the other
         does not strictly lose (α ≤ b) *)
      if (rat_lt alpha bi && rat_le alpha bj) || (rat_lt alpha bj && rat_le alpha bi)
      then ok := false);
  !ok

let is_pairwise_stable_f ~alpha g =
  (* dyadic floats convert exactly; reject anything that does not *)
  let denom = 4096 in
  let scaled = alpha *. float_of_int denom in
  if Float.is_integer scaled then
    is_pairwise_stable ~alpha:(Rat.make (int_of_float scaled) denom) g
  else invalid_arg "Bcg.is_pairwise_stable_f: alpha not dyadic with denominator <= 4096"

(* distance increase to player i from severing the whole neighbor set B *)
let group_severance_loss g i nbrs =
  let without = Nf_util.Bitset.fold (fun j acc -> Graph.remove_edge acc i j) nbrs g in
  match Bfs.distance_sum g i, Bfs.distance_sum without i with
  | Ext_int.Fin b, Ext_int.Fin a -> Ext_int.Fin (a - b)
  | Ext_int.Fin _, Ext_int.Inf -> Ext_int.Inf
  | Ext_int.Inf, _ -> Ext_int.Inf

let is_pairwise_nash ~alpha g =
  (* Nash part: no player gains by dropping any subset of its links (a
     unilateral deviation can only sever in the BCG — announcing new links
     without consent just costs α per announcement). *)
  let n = Graph.order g in
  let nash_ok = ref true in
  for i = 0 to n - 1 do
    Nf_util.Subset.iter_subsets (Graph.neighbors g i) (fun nbrs ->
        if not (Nf_util.Bitset.is_empty nbrs) then begin
          let k = Nf_util.Bitset.cardinal nbrs in
          (* improving iff ΔD < α·k *)
          match group_severance_loss g i nbrs with
          | Ext_int.Inf -> ()
          | Ext_int.Fin delta ->
            if Rat.(of_int delta < mul (of_int k) alpha) then nash_ok := false
        end)
  done;
  !nash_ok
  &&
  (* pairwise part: identical to the addition half of pairwise stability *)
  let ok = ref true in
  Graph.iter_non_edges g (fun i j ->
      let bi = addition_benefit g i j
      and bj = addition_benefit g j i in
      if (rat_lt alpha bi && rat_le alpha bj) || (rat_lt alpha bj && rat_le alpha bi)
      then ok := false);
  !ok

let improving_addition ~alpha g =
  let found = ref None in
  Graph.iter_non_edges g (fun i j ->
      if !found = None then begin
        let bi = addition_benefit g i j
        and bj = addition_benefit g j i in
        if (rat_lt alpha bi && rat_le alpha bj) || (rat_lt alpha bj && rat_le alpha bi)
        then found := Some (i, j)
      end);
  !found

let improving_deletion ~alpha g =
  let found = ref None in
  Graph.iter_edges g (fun i j ->
      if !found = None then
        if not (rat_le alpha (severance_loss g i j)) then found := Some (i, j)
        else if not (rat_le alpha (severance_loss g j i)) then found := Some (j, i));
  !found
