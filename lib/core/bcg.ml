module Graph = Nf_graph.Graph
module Bfs = Nf_graph.Bfs
module Apsp = Nf_graph.Apsp
module Ext_int = Nf_util.Ext_int
module Rat = Nf_util.Rat
module Interval = Nf_util.Interval

let addition_benefit g i j =
  if Graph.has_edge g i j then invalid_arg "Bcg.addition_benefit: edge present";
  let before = Bfs.distance_sum g i
  and after = Bfs.distance_sum (Graph.add_edge g i j) i in
  match before, after with
  | Ext_int.Fin b, Ext_int.Fin a -> Ext_int.Fin (b - a)
  | Ext_int.Inf, Ext_int.Fin _ -> Ext_int.Inf
  | Ext_int.Inf, Ext_int.Inf -> Ext_int.Fin 0
  | Ext_int.Fin _, Ext_int.Inf -> assert false (* adding cannot disconnect *)

let severance_loss g i j =
  if not (Graph.has_edge g i j) then invalid_arg "Bcg.severance_loss: not an edge";
  let before = Bfs.distance_sum g i
  and after = Bfs.distance_sum (Graph.remove_edge g i j) i in
  match before, after with
  | Ext_int.Fin b, Ext_int.Fin a -> Ext_int.Fin (a - b)
  | Ext_int.Fin _, Ext_int.Inf -> Ext_int.Inf (* bridge *)
  | Ext_int.Inf, _ ->
    (* i's cost is infinite with or without the edge: indifferent, and the
       weak deletion inequality of Definition 3 always holds *)
    Ext_int.Inf

(* ---- BFS-sharing kernel -------------------------------------------------
   Every stability threshold is a difference between a perturbed distance
   sum and the base distance sum of the same endpoint.  The base sums are
   computed once per graph (one BFS per vertex, Apsp.distance_sums) and
   shared across all edge toggles, after which each (endpoint, edge-toggle)
   pair costs exactly one fresh BFS on the perturbed graph — the per-pair
   entry points above re-run the base BFS every call and stay around only
   as the readable specification (and for external one-off queries). *)

let benefit_from ~base after =
  match base, after with
  | Ext_int.Fin b, Ext_int.Fin a -> Ext_int.Fin (b - a)
  | Ext_int.Inf, Ext_int.Fin _ -> Ext_int.Inf
  | Ext_int.Inf, Ext_int.Inf -> Ext_int.Fin 0
  | Ext_int.Fin _, Ext_int.Inf -> assert false (* adding cannot disconnect *)

let loss_from ~base after =
  match base, after with
  | Ext_int.Fin b, Ext_int.Fin a -> Ext_int.Fin (a - b)
  | Ext_int.Fin _, Ext_int.Inf -> Ext_int.Inf (* bridge *)
  | Ext_int.Inf, _ -> Ext_int.Inf

let alpha_min g =
  let base = Apsp.distance_sums g in
  let worst = ref (Ext_int.Fin 0) in
  Graph.iter_non_edges g (fun i j ->
      let added = Graph.add_edge g i j in
      worst :=
        Ext_int.max !worst
          (Ext_int.min
             (benefit_from ~base:base.(i) (Bfs.distance_sum added i))
             (benefit_from ~base:base.(j) (Bfs.distance_sum added j))));
  !worst

let alpha_max g =
  let base = Apsp.distance_sums g in
  let best = ref Ext_int.Inf in
  Graph.iter_edges g (fun i j ->
      let removed = Graph.remove_edge g i j in
      best := Ext_int.min !best (loss_from ~base:base.(i) (Bfs.distance_sum removed i));
      best := Ext_int.min !best (loss_from ~base:base.(j) (Bfs.distance_sum removed j)));
  !best

(* One pass over the non-edges computes α_min and the attainment flag
   together: track the running maximum of the pairwise willingness and
   whether every pair attaining it is a tie (both endpoints equally
   interested) — a new strict maximum resets the flag, an equal one refines
   it, smaller pairs cannot matter.  Each perturbed BFS runs exactly once. *)
type scan = {
  scan_alpha_min : Ext_int.t;
  scan_alpha_max : Ext_int.t;
  scan_lo_closed : bool;
}

let scan_stability g =
  let base = Apsp.distance_sums g in
  let lo = ref (Ext_int.Fin 0) in
  let tied = ref true in
  Graph.iter_non_edges g (fun i j ->
      let added = Graph.add_edge g i j in
      let bi = benefit_from ~base:base.(i) (Bfs.distance_sum added i)
      and bj = benefit_from ~base:base.(j) (Bfs.distance_sum added j) in
      let m = Ext_int.min bi bj in
      let c = Ext_int.compare m !lo in
      if c > 0 then begin
        lo := m;
        tied := Ext_int.equal bi bj
      end
      else if c = 0 && not (Ext_int.equal bi bj) then tied := false);
  let hi = ref Ext_int.Inf in
  Graph.iter_edges g (fun i j ->
      let removed = Graph.remove_edge g i j in
      hi := Ext_int.min !hi (loss_from ~base:base.(i) (Bfs.distance_sum removed i));
      hi := Ext_int.min !hi (loss_from ~base:base.(j) (Bfs.distance_sum removed j)));
  {
    scan_alpha_min = !lo;
    scan_alpha_max = !hi;
    scan_lo_closed =
      (match !lo with
      | Ext_int.Inf -> false
      | Ext_int.Fin _ -> !tied);
  }

let endpoint_of_ext = function
  | Ext_int.Fin k -> Interval.Finite (Rat.of_int k)
  | Ext_int.Inf -> Interval.Pos_inf

let positive = Interval.open_closed Rat.zero Interval.Pos_inf

let stability_interval g =
  let s = scan_stability g in
  Interval.inter positive
    (Interval.make ~lo:(endpoint_of_ext s.scan_alpha_min) ~lo_closed:false
       ~hi:(endpoint_of_ext s.scan_alpha_max) ~hi_closed:true)

let stable_alpha_set g =
  (* The left end is attained exactly when every missing edge whose
     less-interested benefit equals α_min is a tie (both endpoints equally
     interested): at α = benefit the strict "ci < ci" premise of
     Definition 3 fails on both sides. *)
  let s = scan_stability g in
  Interval.inter positive
    (Interval.make ~lo:(endpoint_of_ext s.scan_alpha_min) ~lo_closed:s.scan_lo_closed
       ~hi:(endpoint_of_ext s.scan_alpha_max) ~hi_closed:true)

(* α compared against an integer-or-infinite threshold, exactly. *)
let rat_lt alpha = function
  | Ext_int.Inf -> true
  | Ext_int.Fin k -> Rat.(alpha < of_int k)

let rat_le alpha = function
  | Ext_int.Inf -> true
  | Ext_int.Fin k -> Rat.(alpha <= of_int k)

(* unstable when one endpoint strictly gains (α < b) and the other does not
   strictly lose (α ≤ b) *)
let addition_blocks alpha bi bj =
  (rat_lt alpha bi && rat_le alpha bj) || (rat_lt alpha bj && rat_le alpha bi)

let no_improving_addition ~alpha ~base g =
  let ok = ref true in
  Graph.iter_non_edges g (fun i j ->
      if !ok then begin
        let added = Graph.add_edge g i j in
        let bi = benefit_from ~base:base.(i) (Bfs.distance_sum added i)
        and bj = benefit_from ~base:base.(j) (Bfs.distance_sum added j) in
        if addition_blocks alpha bi bj then ok := false
      end);
  !ok

(* α ≤ α_max unfolded pairwise, sharing [base] and exiting early *)
let no_improving_deletion ~alpha ~base g =
  let ok = ref true in
  Graph.iter_edges g (fun i j ->
      if !ok then begin
        let removed = Graph.remove_edge g i j in
        if
          (not (rat_le alpha (loss_from ~base:base.(i) (Bfs.distance_sum removed i))))
          || not (rat_le alpha (loss_from ~base:base.(j) (Bfs.distance_sum removed j)))
        then ok := false
      end);
  !ok

let is_pairwise_stable ~alpha g =
  let base = Apsp.distance_sums g in
  no_improving_deletion ~alpha ~base g && no_improving_addition ~alpha ~base g

(* distance increase to player i from severing the whole neighbor set B *)
let group_severance_loss ~base g i nbrs =
  let without = Nf_util.Bitset.fold (fun j acc -> Graph.remove_edge acc i j) nbrs g in
  match base.(i), Bfs.distance_sum without i with
  | Ext_int.Fin b, Ext_int.Fin a -> Ext_int.Fin (a - b)
  | Ext_int.Fin _, Ext_int.Inf -> Ext_int.Inf
  | Ext_int.Inf, _ -> Ext_int.Inf

let is_pairwise_nash ~alpha g =
  (* Nash part: no player gains by dropping any subset of its links (a
     unilateral deviation can only sever in the BCG — announcing new links
     without consent just costs α per announcement). *)
  let base = Apsp.distance_sums g in
  let n = Graph.order g in
  let nash_ok = ref true in
  for i = 0 to n - 1 do
    Nf_util.Subset.iter_subsets (Graph.neighbors g i) (fun nbrs ->
        if not (Nf_util.Bitset.is_empty nbrs) then begin
          let k = Nf_util.Bitset.cardinal nbrs in
          (* improving iff ΔD < α·k *)
          match group_severance_loss ~base g i nbrs with
          | Ext_int.Inf -> ()
          | Ext_int.Fin delta ->
            if Rat.(of_int delta < mul (of_int k) alpha) then nash_ok := false
        end)
  done;
  !nash_ok
  &&
  (* pairwise part: identical to the addition half of pairwise stability *)
  no_improving_addition ~alpha ~base g

let is_pairwise_stable_f ~alpha g =
  (* dyadic floats convert exactly; reject anything that does not *)
  let denom = 4096 in
  let scaled = alpha *. float_of_int denom in
  if Float.is_integer scaled then
    is_pairwise_stable ~alpha:(Rat.make (int_of_float scaled) denom) g
  else invalid_arg "Bcg.is_pairwise_stable_f: alpha not dyadic with denominator <= 4096"

let improving_addition ~alpha g =
  let base = Apsp.distance_sums g in
  let found = ref None in
  Graph.iter_non_edges g (fun i j ->
      if !found = None then begin
        let added = Graph.add_edge g i j in
        let bi = benefit_from ~base:base.(i) (Bfs.distance_sum added i)
        and bj = benefit_from ~base:base.(j) (Bfs.distance_sum added j) in
        if addition_blocks alpha bi bj then found := Some (i, j)
      end);
  !found

let improving_deletion ~alpha g =
  let base = Apsp.distance_sums g in
  let found = ref None in
  Graph.iter_edges g (fun i j ->
      if !found = None then begin
        let removed = Graph.remove_edge g i j in
        if not (rat_le alpha (loss_from ~base:base.(i) (Bfs.distance_sum removed i))) then
          found := Some (i, j)
        else if not (rat_le alpha (loss_from ~base:base.(j) (Bfs.distance_sum removed j)))
        then found := Some (j, i)
      end);
  !found
