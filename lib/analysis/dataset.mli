(** Persistence for annotated equilibrium datasets.

    The expensive artifact of the empirical study is the per-class
    annotation — every connected isomorphism class with its exact BCG
    stable interval and UCG Nash α-set.  This module serializes that
    dataset to a line-oriented CSV (graph6 for the graph, interval syntax
    for the regions) so downstream users can consume the equilibrium
    atlas without OCaml, and reloads it for round-tripping. *)

type entry = {
  graph : Nf_graph.Graph.t;
  bcg_stable : Nf_util.Interval.t;
  ucg_nash : Nf_util.Interval.Union.t option;
      (** [None] when the UCG annotation was skipped (large [n]) *)
}

val build : ?with_ucg:bool -> int -> entry list
(** Annotate all connected classes on [n] vertices ([with_ucg] defaults to
    [n <= 7]). *)

val to_csv : entry list -> string
(** Header + one line per class:
    [graph6,n,m,bcg_stable,ucg_nash] with regions in interval syntax. *)

val of_csv : string -> entry list
(** Inverse of {!to_csv}.  @raise Invalid_argument on malformed input. *)

val save : path:string -> entry list -> unit
val load : path:string -> entry list

val interval_to_string : Nf_util.Interval.t -> string
(** Serialization syntax for one interval: [empty], or
    [lo_bracket lo ";" hi hi_bracket] with [inf] endpoints, e.g.
    ["[1;5]"], ["(0;1]"], ["[1;inf)"]. *)

val interval_of_string : string -> Nf_util.Interval.t
