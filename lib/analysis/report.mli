(** Writing experiment artifacts to disk.

    One text file per experiment plus machine-readable CSVs for the two
    plotted figures and the equilibrium atlas — the layout a paper-repro
    run leaves behind for inspection. *)

val write_all :
  dir:string ->
  results:Experiments.result list ->
  points:Figures.point list ->
  unit ->
  string list
(** Creates [dir] if needed and writes:
    - [E<k>_<slug>.txt] per experiment,
    - [figure2_figure3.csv] from the sweep points,
    - [summary.txt] with one status line per experiment.
    Returns the paths written. *)

val slug_of_title : string -> string
(** Lowercased, alphanumeric-and-dashes rendering of an experiment
    title. *)
