let slug_of_title title =
  let buf = Buffer.create (String.length title) in
  let last_dash = ref true in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' ->
        Buffer.add_char buf c;
        last_dash := false
      | 'A' .. 'Z' ->
        Buffer.add_char buf (Char.lowercase_ascii c);
        last_dash := false
      | _ ->
        if not !last_dash then begin
          Buffer.add_char buf '-';
          last_dash := true
        end)
    title;
  let s = Buffer.contents buf in
  let len = String.length s in
  if len > 0 && s.[len - 1] = '-' then String.sub s 0 (len - 1) else s

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let write_all ~dir ~results ~points () =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let written = ref [] in
  let emit name contents =
    let path = Filename.concat dir name in
    write_file path contents;
    written := path :: !written
  in
  List.iter
    (fun r ->
      let name =
        Printf.sprintf "%s_%s.txt"
          (String.lowercase_ascii r.Experiments.id)
          (slug_of_title r.Experiments.title)
      in
      emit name (Experiments.render r))
    results;
  emit "figure2_figure3.csv" (Figures.to_csv points);
  let summary =
    String.concat "\n"
      (List.map
         (fun r ->
           Printf.sprintf "%-4s %-70s %s" r.Experiments.id r.Experiments.title
             (if r.Experiments.ok then "ok" else "CHECK FAILED"))
         results)
    ^ "\n"
  in
  emit "summary.txt" summary;
  List.rev !written
