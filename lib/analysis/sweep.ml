module Rat = Nf_util.Rat

let dyadic x =
  let denom = 4096 in
  let scaled = x *. float_of_int denom in
  if Float.is_integer scaled then Rat.make (int_of_float scaled) denom
  else invalid_arg "Sweep.dyadic: not dyadic with denominator <= 4096"

let paper_grid =
  List.map
    (fun (num, den) -> Rat.make num den)
    [
      (1, 4); (3, 8); (1, 2); (3, 4); (1, 1); (3, 2); (2, 1); (3, 1); (4, 1); (6, 1);
      (8, 1); (12, 1); (16, 1); (24, 1); (32, 1); (48, 1); (64, 1);
    ]

let log_floats ~lo ~hi ~points =
  if points < 2 then invalid_arg "Sweep.log_floats: need >= 2 points";
  let llo = log lo
  and lhi = log hi in
  List.init points (fun k ->
      exp (llo +. ((lhi -. llo) *. float_of_int k /. float_of_int (points - 1))))

let pp_alpha = Rat.to_string
