(** The per-experiment runners indexed in DESIGN.md (E1–E22): one per
    table/figure/claim in the paper (E1–E13) plus the extension studies
    (E14–E22).  Each produces a self-contained text report; {!run_all}
    concatenates every experiment at the given size.

    Defaults keep a full run to a couple of minutes; the [n] parameters
    raise fidelity toward the paper's ten-agent study at exponential
    cost. *)

type result = {
  id : string;  (** "E1" ... "E22" *)
  title : string;
  body : string;  (** rendered tables/plots *)
  ok : bool;  (** all programmatic assertions in the experiment held *)
}

val e1_e2_figures : ?n:int -> unit -> result * result
(** Figures 2 and 3 (shared sweep; default n = 6). *)

val e3_figure1_gallery : unit -> result
val e4_lemma4 : ?n:int -> unit -> result
val e5_lemma5 : ?n:int -> unit -> result
val e6_lemma6_cycles : ?max_n:int -> unit -> result
val e7_prop3_moore : unit -> result
val e8_prop4_upper_bound : ?n:int -> unit -> result
val e9_prop5_trees : ?max_n:int -> ?conjecture_n:int -> unit -> result
val e10_footnote5_cycles : unit -> result
val e11_footnote7_petersen : unit -> result
val e12_desargues : unit -> result
val e13_eq5_bound : ?n:int -> unit -> result

val e14_transfers : ?n:int -> unit -> result
(** Ablation for the §6 outlook: pairwise stability {e with transfers}
    (joint-surplus link decisions, {!Netform.Transfers}) against plain
    pairwise stability — how side payments shrink the stable set and its
    price of anarchy. *)

val e15_dynamics_and_prop2 : ?meta_n:int -> unit -> result
(** Jackson–Watts closed-cycle census of the improving-move digraph (the
    BCG dynamics always converge) and constructive Proposition 2: every
    link convex graph verified pairwise stable at its witness link
    cost. *)

val e16_shape_census : ?n:int -> unit -> result
(** §5's structural reading of Figures 2–3: a census of equilibrium
    shapes per link cost, with the "only trees for α > n²" parenthetical
    asserted. *)

val e17_distance_utilities : unit -> result
(** Robustness ablation: exact stability windows when the paper's linear
    distance cost is replaced by quadratic, hop-capped, or pure
    connectivity utilities ({!Netform.Distance_utility}). *)

val e18_bcg_scaling : ?max_n:int -> unit -> result
(** Exhaustive BCG sweeps at n = 5 .. [max_n] (default 7; n = 8 takes a
    few extra seconds): how the average price of anarchy scales toward
    the paper's ten-agent study, with price-of-stability-1 asserted. *)

val e19_sampled_n10 : ?n:int -> ?attempts:int -> ?seed:int -> unit -> result
(** The paper's ten-agent study, approximated by sampling: improving-path
    dynamics from random connected seeds, deduplicated up to isomorphism,
    summarized per link cost.  Deterministic given [seed]. *)

val e20_proper_equilibrium : unit -> result
(** Definition 5 numerically on the 4-player normal form: stable profiles
    (including the Prop-2 witness for a link convex graph) are proper
    limits, a non-Nash profile collapses, and a Nash-but-not-pairwise
    profile survives — the §3 motivation for pairwise notions. *)

val e21_stochastic_stability : ?n:int -> unit -> result
(** Perturbed-dynamics selection among stable networks (the stochastic
    stability the paper cites from Tercieux & Vannetelbosch): resistances
    + minimum arborescences over all labeled stable states.  Asserts the
    observed characterization: the stochastically stable states are
    exactly the connected pairwise stable states. *)

val e22_large_n_monte_carlo : ?n:int -> ?trials:int -> unit -> result
(** The large-n regime through the multi-word kernel: Monte-Carlo PoA
    estimates ({!Nf_dynamics.Mc_poa}) at n/2 and n (default n = 128)
    reported against Proposition 4's [min(√α, n/√α)] curve, with every
    converged sample re-verified by [Bcg.is_pairwise_stable]; plus the
    exact stability windows of the n-cycle (Lemma 6) and a 200-leaf star,
    computed directly at orders enumeration never reaches. *)

val game_sweep : game:string -> ?n:int -> unit -> result
(** Single-game exhaustive sweep ([netform experiments --game]) for any
    registered game: the {!Figures.sweep_game} table and plot, with a
    sanity check that every observed PoA ratio is ≥ 1.
    @raise Invalid_argument on an unknown game name. *)

val run_all : ?n:int -> unit -> result list
(** Every experiment with consistent sizes. *)

val render : result -> string
val render_all : result list -> string
