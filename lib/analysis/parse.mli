(** Parsers shared by the CLI and tests.

    Link costs accept integers ("2"), dyadic decimals ("0.75"), and exact
    fractions ("7/2"); graphs accept gallery names (case-insensitive) and
    graph6 strings. *)

val alpha_of_string : string -> (Nf_util.Rat.t, string) result
val graph_of_spec : string -> (Nf_graph.Graph.t, string) result

val named_graphs : (string * Nf_graph.Graph.t) list
(** The gallery plus convenience instances of the parametric families
    (k5, c8, star10, q4, ...). *)
