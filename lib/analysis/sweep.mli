(** Link-cost grids for the empirical study.

    All grid points are dyadic rationals so float and exact-rational views
    of the same α agree bit-for-bit. *)

val dyadic : float -> Nf_util.Rat.t
(** Exact conversion of a dyadic float (denominator ≤ 4096).
    @raise Invalid_argument otherwise. *)

val paper_grid : Nf_util.Rat.t list
(** The α grid used for Figures 2–3: roughly log-spaced from 1/4 to 64. *)

val log_floats : lo:float -> hi:float -> points:int -> float list
(** Log-spaced floats, for reference curves. *)

val pp_alpha : Nf_util.Rat.t -> string
