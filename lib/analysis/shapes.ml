module Graph = Nf_graph.Graph
module Props = Nf_graph.Props

type shape =
  | Complete
  | Star
  | Path
  | Cycle
  | Tree
  | Diameter_two
  | Regular of int
  | Other

let classify g =
  if Graph.is_complete g then Complete
  else if Props.is_star g then Star
  else if Props.is_path g then Path
  else if Props.is_cycle g then Cycle
  else if Props.is_tree g then Tree
  else if Props.has_diameter_at_most g 2 then Diameter_two
  else
    match Props.regularity g with
    | Some k -> Regular k
    | None -> Other

let shape_name = function
  | Complete -> "complete"
  | Star -> "star"
  | Path -> "path"
  | Cycle -> "cycle"
  | Tree -> "tree"
  | Diameter_two -> "diam<=2"
  | Regular k -> Printf.sprintf "%d-regular" k
  | Other -> "other"

type census = (shape * int) list

let census graphs =
  let table = Hashtbl.create 8 in
  List.iter
    (fun g ->
      let s = classify g in
      Hashtbl.replace table s (1 + Option.value ~default:0 (Hashtbl.find_opt table s)))
    graphs;
  let entries = Hashtbl.fold (fun s c acc -> (s, c) :: acc) table [] in
  List.sort (fun (s1, c1) (s2, c2) -> compare (c2, s1) (c1, s2)) entries

let census_to_string entries =
  if entries = [] then "(none)"
  else
    String.concat " "
      (List.map (fun (s, c) -> Printf.sprintf "%s:%d" (shape_name s) c) entries)

let all_trees graphs = List.for_all Props.is_tree graphs
