module Graph = Nf_graph.Graph
module Interval = Nf_util.Interval
module Pool = Nf_util.Pool
open Netform

let bcg_cache : (int, (Graph.t * Interval.t) list) Hashtbl.t = Hashtbl.create 8
let ucg_cache : (int, (Graph.t * Interval.Union.t) list) Hashtbl.t = Hashtbl.create 8
let transfers_cache : (int, (Graph.t * Interval.t) list) Hashtbl.t = Hashtbl.create 8
let cache_mutex = Mutex.create ()

let clear_cache () =
  Mutex.protect cache_mutex (fun () ->
      Hashtbl.reset bcg_cache;
      Hashtbl.reset ucg_cache;
      Hashtbl.reset transfers_cache)

let memoize cache n compute =
  match Mutex.protect cache_mutex (fun () -> Hashtbl.find_opt cache n) with
  | Some annotated -> annotated
  | None ->
    (* computed outside the lock: annotation fans out across the domain
       pool, and a duplicated computation on a concurrent miss is benign
       because annotations are deterministic — first insertion wins *)
    let annotated = compute () in
    Mutex.protect cache_mutex (fun () ->
        match Hashtbl.find_opt cache n with
        | Some existing -> existing
        | None ->
          Hashtbl.add cache n annotated;
          annotated)

(* The enumeration streams through the coordinating domain in chunks (the
   producer has its own cache and internal parallelism); only the per-graph
   annotation — a pure function of one graph — is fanned out, one chunk at a
   time, so the full graph level is never materialized even at orders where
   the annotated list itself is the largest live object.  Chunked fan-out of
   a pure function preserves input order, so the result is byte-identical to
   annotating the materialized list.

   Each worker body borrows its domain's resident kernel workspace
   ([Kernel.with_ws]): Pool workers are long-lived domains, so across the
   tens of thousands of graphs in a chunked build every domain reuses one
   set of scratch arrays and the annotation loop allocates only its
   results. *)
let annotation_chunk = 1024

let annotate annotate_ws n =
  let chunks = ref [] in
  Nf_enum.Unlabeled.iter_connected_chunked ~chunk:annotation_chunk n (fun graphs ->
      chunks :=
        Pool.parallel_map_array
          (fun g -> (g, Nf_graph.Kernel.with_ws (fun ws -> annotate_ws ws g)))
          graphs
        :: !chunks);
  List.concat_map Array.to_list (List.rev !chunks)

let bcg_annotated n = memoize bcg_cache n (fun () -> annotate Bcg.stable_alpha_set_ws n)
let ucg_annotated n = memoize ucg_cache n (fun () -> annotate Ucg.nash_alpha_set_ws n)

let bcg_stable_graphs ~n ~alpha =
  List.filter_map
    (fun (g, set) -> if Interval.mem alpha set then Some g else None)
    (bcg_annotated n)

let ucg_nash_graphs ~n ~alpha =
  List.filter_map
    (fun (g, set) -> if Interval.Union.mem alpha set then Some g else None)
    (ucg_annotated n)

let transfers_annotated n =
  memoize transfers_cache n (fun () -> annotate Transfers.stable_alpha_set_ws n)

let transfers_stable_graphs ~n ~alpha =
  List.filter_map
    (fun (g, set) -> if Interval.mem alpha set then Some g else None)
    (transfers_annotated n)

let bcg_ever_stable n =
  List.filter (fun (_, set) -> not (Interval.is_empty set)) (bcg_annotated n)
