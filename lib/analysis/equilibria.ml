module Graph = Nf_graph.Graph
module Interval = Nf_util.Interval
open Netform

let bcg_cache : (int, (Graph.t * Interval.t) list) Hashtbl.t = Hashtbl.create 8
let ucg_cache : (int, (Graph.t * Interval.Union.t) list) Hashtbl.t = Hashtbl.create 8
let transfers_cache : (int, (Graph.t * Interval.t) list) Hashtbl.t = Hashtbl.create 8

let clear_cache () =
  Hashtbl.reset bcg_cache;
  Hashtbl.reset ucg_cache;
  Hashtbl.reset transfers_cache

let memoize cache n compute =
  match Hashtbl.find_opt cache n with
  | Some annotated -> annotated
  | None ->
    let annotated = compute () in
    Hashtbl.add cache n annotated;
    annotated

let bcg_annotated n =
  memoize bcg_cache n (fun () ->
      List.map
        (fun g -> (g, Bcg.stable_alpha_set g))
        (Nf_enum.Unlabeled.connected_graphs n))

let ucg_annotated n =
  memoize ucg_cache n (fun () ->
      List.map (fun g -> (g, Ucg.nash_alpha_set g)) (Nf_enum.Unlabeled.connected_graphs n))

let bcg_stable_graphs ~n ~alpha =
  List.filter_map
    (fun (g, set) -> if Interval.mem alpha set then Some g else None)
    (bcg_annotated n)

let ucg_nash_graphs ~n ~alpha =
  List.filter_map
    (fun (g, set) -> if Interval.Union.mem alpha set then Some g else None)
    (ucg_annotated n)

let transfers_annotated n =
  memoize transfers_cache n (fun () ->
      List.map
        (fun g -> (g, Transfers.stable_alpha_set g))
        (Nf_enum.Unlabeled.connected_graphs n))

let transfers_stable_graphs ~n ~alpha =
  List.filter_map
    (fun (g, set) -> if Interval.mem alpha set then Some g else None)
    (transfers_annotated n)

let bcg_ever_stable n =
  List.filter (fun (_, set) -> not (Interval.is_empty set)) (bcg_annotated n)
