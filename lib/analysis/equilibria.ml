module Graph = Nf_graph.Graph
module Interval = Nf_util.Interval
module Pool = Nf_util.Pool
open Netform

(* One cache for every game, keyed by (game name, n).  The region type is
   existentially packed with the game that produced it and recovered via
   the Region witness, so a single registry-driven [clear_cache] covers
   every game — including ones registered after this module was written. *)
type entry = Entry : 'r Game.t * (Graph.t * 'r) list -> entry

let cache : (string * int, entry) Hashtbl.t = Hashtbl.create 16
let cache_mutex = Mutex.create ()
let clear_cache () = Mutex.protect cache_mutex (fun () -> Hashtbl.reset cache)

(* The enumeration streams through the coordinating domain in chunks (the
   producer has its own cache and internal parallelism); only the per-graph
   annotation — a pure function of one graph — is fanned out, one chunk at a
   time, so the full graph level is never materialized even at orders where
   the annotated list itself is the largest live object.  Chunked fan-out of
   a pure function preserves input order, so the result is byte-identical to
   annotating the materialized list.

   Each worker body borrows its domain's resident kernel workspace
   ([Kernel.with_ws]): Pool workers are long-lived domains, so across the
   tens of thousands of graphs in a chunked build every domain reuses one
   set of scratch arrays and the annotation loop allocates only its
   results. *)
let annotation_chunk = 1024

let annotate annotate_ws n =
  let chunks = ref [] in
  Nf_enum.Unlabeled.iter_connected_chunked ~chunk:annotation_chunk n (fun graphs ->
      chunks :=
        Pool.parallel_map_array
          (fun g -> (g, Nf_graph.Kernel.with_ws (fun ws -> annotate_ws ws g)))
          graphs
        :: !chunks);
  List.concat_map Array.to_list (List.rev !chunks)

let annotated (type r) ((module G) as game : r Game.t) n : (Graph.t * r) list =
  let key = (G.name, n) in
  let unpack (Entry ((module Cached), list)) : (Graph.t * r) list =
    match Game.Region.same_kind Cached.region_kind G.region_kind with
    | Some Game.Region.Equal -> list
    | None ->
      invalid_arg
        (Printf.sprintf
           "Equilibria.annotated: two games named %S with different region kinds" G.name)
  in
  match Mutex.protect cache_mutex (fun () -> Hashtbl.find_opt cache key) with
  | Some entry -> unpack entry
  | None ->
    (* computed outside the lock: annotation fans out across the domain
       pool, and a duplicated computation on a concurrent miss is benign
       because annotations are deterministic — first insertion wins.  The
       annotator is extracted once, outside the per-graph hot loop. *)
    let annotated = annotate G.stable_region_ws n in
    Mutex.protect cache_mutex (fun () ->
        match Hashtbl.find_opt cache key with
        | Some existing -> unpack existing
        | None ->
          Hashtbl.add cache key (Entry (game, annotated));
          annotated)

let stable_graphs (type r) ((module G) as game : r Game.t) ~n ~alpha =
  List.filter_map
    (fun (g, set) -> if Game.Region.mem G.region_kind alpha set then Some g else None)
    (annotated game n)

let stable_graphs_packed (Game.Any game) ~n ~alpha = stable_graphs game ~n ~alpha

let annotated_regions (Game.Any ((module G) as game)) n =
  List.map
    (fun (g, set) -> (g, Game.Region.to_string G.region_kind set))
    (annotated game n)

(* ---- the historical per-game entry points, now thin wrappers ---------- *)

let bcg_annotated n = annotated Game_registry.bcg n
let ucg_annotated n = annotated Game_registry.ucg n
let transfers_annotated n = annotated Game_registry.transfers n
let bcg_stable_graphs ~n ~alpha = stable_graphs Game_registry.bcg ~n ~alpha
let ucg_nash_graphs ~n ~alpha = stable_graphs Game_registry.ucg ~n ~alpha
let transfers_stable_graphs ~n ~alpha = stable_graphs Game_registry.transfers ~n ~alpha

let bcg_ever_stable n =
  List.filter (fun (_, set) -> not (Interval.is_empty set)) (bcg_annotated n)
