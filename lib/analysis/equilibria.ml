module Graph = Nf_graph.Graph
module Interval = Nf_util.Interval
module Pool = Nf_util.Pool
open Netform

(* One cache for every game, keyed by (game name, n).  The region type is
   existentially packed with the game that produced it and recovered via
   the Region witness, so a single registry-driven [clear_cache] covers
   every game — including ones registered after this module was written. *)
type entry = Entry : 'r Game.t * (Graph.t * 'r) list -> entry

let cache : (string * int, entry) Hashtbl.t = Hashtbl.create 16
let cache_mutex = Mutex.create ()

(* Twin-tier symmetry per (n, chunk index), shared across games: the
   enumeration order at a given [n] is deterministic and the chunk size is
   a module constant, so the first game to sweep a level pays the
   detection scans and every later game reuses the subgroups (and their
   cached edge orbits).  Memoizing whole chunks keeps the mutex off the
   per-graph path — one lookup and one insertion per ~thousand graphs.
   Detection results are stored ungated — the quotient opt-out is applied
   at the use site — so flipping the flag mid-process never serves stale
   routing decisions.  Cleared together with the annotation cache. *)
let sym_cache : (int * int, Nf_iso.Symmetry.t array) Hashtbl.t = Hashtbl.create 64

let clear_cache () =
  Mutex.protect cache_mutex (fun () ->
      Hashtbl.reset cache;
      Hashtbl.reset sym_cache)

let orbit_memo_size () =
  Mutex.protect cache_mutex (fun () ->
      Hashtbl.fold (fun _ syms acc -> acc + Array.length syms) sym_cache 0)

let sym_chunk_find ~n ~index =
  Mutex.protect cache_mutex (fun () -> Hashtbl.find_opt sym_cache (n, index))

let sym_chunk_add ~n ~index syms =
  Mutex.protect cache_mutex (fun () ->
      if not (Hashtbl.mem sym_cache (n, index)) then Hashtbl.add sym_cache (n, index) syms)

(* The enumeration streams through the coordinating domain in chunks (the
   producer has its own cache and internal parallelism); only the per-graph
   annotation — a pure function of one graph — is fanned out, one chunk at a
   time, so the full graph level is never materialized even at orders where
   the annotated list itself is the largest live object.  Chunked fan-out of
   a pure function preserves input order, so the result is byte-identical to
   annotating the materialized list.

   Each worker body borrows its domain's resident kernel workspace
   ([Kernel.with_ws]): Pool workers are long-lived domains, so across the
   tens of thousands of graphs in a chunked build every domain reuses one
   set of scratch arrays and the annotation loop allocates only its
   results. *)
let annotation_chunk = 1024

(* Orbit-quotient routing: when the game has a symmetry-aware annotator
   and the quotient is enabled, each worker detects its graph's twin
   subgroup inline (an O(n²) word-compare scan — far below one edge
   toggle — running inside the same fan-out, so detection parallelizes
   with the annotation) and dispatches through [Game.annotate_sym_ws]: a
   trivial subgroup runs exactly the unquotiented loop, so rigid graphs
   pay only the scan.  The per-chunk subgroup arrays are memoized so a
   second game sweeping the same level reuses them — along with their
   lazily cached edge orbits — instead of re-deriving anything. *)
let annotate (type r) ((module G) as game : r Game.t) n =
  let use_sym =
    Option.is_some G.stable_region_sym_ws && Nf_iso.Symmetry.quotient_enabled ()
  in
  let chunks = ref [] in
  let ci = ref 0 in
  Nf_enum.Unlabeled.iter_connected_chunked ~chunk:annotation_chunk n (fun graphs ->
      let index = !ci in
      incr ci;
      let annotated =
        if use_sym then begin
          match sym_chunk_find ~n ~index with
          | Some syms ->
            Pool.parallel_map_array
              (fun (g, sym) ->
                (g, Nf_graph.Kernel.with_ws (fun ws -> Game.annotate_sym_ws game ws sym g)))
              (Array.map2 (fun g sym -> (g, sym)) graphs syms)
          | None ->
            let results =
              Pool.parallel_map_array
                (fun g ->
                  let sym = Nf_iso.Symmetry.detect_twins g in
                  ( g,
                    sym,
                    Nf_graph.Kernel.with_ws (fun ws -> Game.annotate_sym_ws game ws sym g) ))
                graphs
            in
            sym_chunk_add ~n ~index (Array.map (fun (_, sym, _) -> sym) results);
            Array.map (fun (g, _, r) -> (g, r)) results
        end
        else
          Pool.parallel_map_array
            (fun g -> (g, Nf_graph.Kernel.with_ws (fun ws -> G.stable_region_ws ws g)))
            graphs
      in
      chunks := annotated :: !chunks);
  List.concat_map Array.to_list (List.rev !chunks)

let annotated (type r) ((module G) as game : r Game.t) n : (Graph.t * r) list =
  let key = (G.name, n) in
  let unpack (Entry ((module Cached), list)) : (Graph.t * r) list =
    match Game.Region.same_kind Cached.region_kind G.region_kind with
    | Some Game.Region.Equal -> list
    | None ->
      invalid_arg
        (Printf.sprintf
           "Equilibria.annotated: two games named %S with different region kinds" G.name)
  in
  match Mutex.protect cache_mutex (fun () -> Hashtbl.find_opt cache key) with
  | Some entry -> unpack entry
  | None ->
    (* computed outside the lock: annotation fans out across the domain
       pool, and a duplicated computation on a concurrent miss is benign
       because annotations are deterministic — first insertion wins. *)
    let annotated = annotate game n in
    Mutex.protect cache_mutex (fun () ->
        match Hashtbl.find_opt cache key with
        | Some existing -> unpack existing
        | None ->
          Hashtbl.add cache key (Entry (game, annotated));
          annotated)

let stable_graphs (type r) ((module G) as game : r Game.t) ~n ~alpha =
  List.filter_map
    (fun (g, set) -> if Game.Region.mem G.region_kind alpha set then Some g else None)
    (annotated game n)

let stable_graphs_packed (Game.Any game) ~n ~alpha = stable_graphs game ~n ~alpha

let annotated_regions (Game.Any ((module G) as game)) n =
  List.map
    (fun (g, set) -> (g, Game.Region.to_string G.region_kind set))
    (annotated game n)

(* ---- the historical per-game entry points, now thin wrappers ---------- *)

let bcg_annotated n = annotated Game_registry.bcg n
let ucg_annotated n = annotated Game_registry.ucg n
let transfers_annotated n = annotated Game_registry.transfers n
let bcg_stable_graphs ~n ~alpha = stable_graphs Game_registry.bcg ~n ~alpha
let ucg_nash_graphs ~n ~alpha = stable_graphs Game_registry.ucg ~n ~alpha
let transfers_stable_graphs ~n ~alpha = stable_graphs Game_registry.transfers ~n ~alpha

let bcg_ever_stable n =
  List.filter (fun (_, set) -> not (Interval.is_empty set)) (bcg_annotated n)
