module Graph = Nf_graph.Graph
module Rat = Nf_util.Rat
module Interval = Nf_util.Interval
module Ext_int = Nf_util.Ext_int
module Table = Nf_util.Table
module Gallery = Nf_named.Gallery
module Families = Nf_named.Families
open Netform

type result = {
  id : string;
  title : string;
  body : string;
  ok : bool;
}

let render r =
  Printf.sprintf "=== %s: %s [%s] ===\n%s\n" r.id r.title
    (if r.ok then "ok" else "CHECK FAILED")
    r.body

let render_all results = String.concat "\n" (List.map render results)

(* ---------------- E1/E2: Figures 2 and 3 ---------------- *)

let e1_e2_figures ?(n = 6) () =
  let points = Figures.sweep ~n () in
  (* qualitative assertions from §5: cheap links favor the BCG, expensive
     links favor the UCG, and BCG equilibria carry more links on average *)
  let cheap =
    List.filter (fun p -> Rat.(p.Figures.total_link_cost <= of_int 1)) points
  in
  let expensive =
    List.filter (fun p -> Rat.(p.Figures.total_link_cost >= of_int 16)) points
  in
  let avg get l =
    let values = List.filter (fun v -> not (Float.is_nan v)) (List.map get l) in
    Nf_util.Stats.mean (Nf_util.Stats.of_list values)
  in
  let bcg_avg = avg (fun p -> p.Figures.bcg.Poa.average)
  and ucg_avg = avg (fun p -> p.Figures.ucg.Poa.average)
  and bcg_links = avg (fun p -> p.Figures.bcg.Poa.average_links)
  and ucg_links = avg (fun p -> p.Figures.ucg.Poa.average_links) in
  let ok_fig2 = bcg_avg cheap <= ucg_avg cheap && bcg_avg expensive >= ucg_avg expensive in
  let ok_fig3 = bcg_links points >= ucg_links points in
  let fig2 =
    {
      id = "E1";
      title = Printf.sprintf "Figure 2 - average price of anarchy (n=%d, exhaustive)" n;
      body = Figures.figure2_table points ^ "\n" ^ Figures.figure2_plot points;
      ok = ok_fig2;
    }
  and fig3 =
    {
      id = "E2";
      title = Printf.sprintf "Figure 3 - average links in equilibrium (n=%d, exhaustive)" n;
      body = Figures.figure3_table points ^ "\n" ^ Figures.figure3_plot points;
      ok = ok_fig3;
    }
  in
  (fig2, fig3)

(* ---------------- E3: Figure 1 gallery ---------------- *)

let classification g =
  match Nf_graph.Props.strongly_regular_params g with
  | Some (n, k, l, m) -> Printf.sprintf "srg(%d,%d,%d,%d)" n k l m
  | None -> (
    match Nf_graph.Props.regularity g with
    | Some k -> Printf.sprintf "%d-regular" k
    | None -> "irregular")

let e3_figure1_gallery () =
  let table =
    Table.create
      [ "graph"; "n"; "m"; "class"; "girth"; "diam"; "#eigenvalues"; "stable alpha";
        "link convex"; "PoA(mid)" ]
  in
  let ok = ref true in
  let figure1 = [ "petersen"; "mcgee"; "octahedron"; "clebsch"; "hoffman-singleton"; "star8" ] in
  List.iter
    (fun name ->
      let g = List.assoc name Gallery.all in
      let set = Bcg.stable_alpha_set g in
      if Interval.is_empty set then ok := false;
      let poa_mid =
        match Interval.bounds set with
        | Some (Interval.Finite lo, _, Interval.Finite hi, _) ->
          let mid = Rat.to_float (Rat.div (Rat.add lo hi) (Rat.of_int 2)) in
          Printf.sprintf "%.3f" (Poa.price_of_anarchy Cost.Bcg ~alpha:mid g)
        | Some (Interval.Finite lo, _, Interval.Pos_inf, _) ->
          Printf.sprintf "%.3f" (Poa.price_of_anarchy Cost.Bcg ~alpha:(Rat.to_float lo +. 1.0) g)
        | Some _ | None -> "-"
      in
      (* a strongly regular graph must show exactly three distinct
         adjacency eigenvalues — an independent spectral certificate *)
      let distinct = List.length (Nf_graph.Spectrum.distinct_eigenvalues g) in
      if Nf_graph.Props.is_strongly_regular g && distinct <> 3 then ok := false;
      Table.add_row table
        [
          name;
          string_of_int (Graph.order g);
          string_of_int (Graph.size g);
          classification g;
          Ext_int.to_string (Nf_graph.Girth.girth g);
          Ext_int.to_string (Nf_graph.Apsp.diameter g);
          string_of_int distinct;
          Interval.to_string set;
          string_of_bool (Convexity.is_link_convex g);
          poa_mid;
        ])
    figure1;
  {
    id = "E3";
    title = "Figure 1 - the stable-graph gallery (exact stability windows)";
    body =
      Table.render table
      ^ "\nSpectral certificate: each srg row shows exactly 3 distinct adjacency\n\
         eigenvalues (asserted).\n";
    ok = !ok;
  }

(* ---------------- E4/E5: Lemmas 4 and 5 ---------------- *)

let e4_lemma4 ?(n = 6) () =
  let alpha = Rat.make 1 2 in
  let stable = Equilibria.bcg_stable_graphs ~n ~alpha in
  let efficient =
    List.filter
      (Efficiency.is_efficient Cost.Bcg ~alpha:(Rat.to_float alpha))
      (Nf_enum.Unlabeled.connected_graphs n)
  in
  let ok =
    List.length stable = 1
    && List.length efficient = 1
    && Graph.is_complete (List.hd stable)
    && Graph.is_complete (List.hd efficient)
  in
  {
    id = "E4";
    title = Printf.sprintf "Lemma 4 - alpha<1: complete graph uniquely efficient and stable (n=%d)" n;
    body =
      Printf.sprintf
        "alpha = %s over all %d connected classes:\n  efficient graphs: %d (complete: %b)\n  pairwise stable graphs: %d (complete: %b)\n"
        (Rat.to_string alpha)
        (Nf_enum.Unlabeled.count_connected n)
        (List.length efficient)
        (List.exists Graph.is_complete efficient)
        (List.length stable)
        (List.exists Graph.is_complete stable);
    ok;
  }

let e5_lemma5 ?(n = 6) () =
  let alpha = Rat.of_int 3 in
  let stable = Equilibria.bcg_stable_graphs ~n ~alpha in
  let efficient =
    List.filter
      (Efficiency.is_efficient Cost.Bcg ~alpha:(Rat.to_float alpha))
      (Nf_enum.Unlabeled.connected_graphs n)
  in
  let star_stable = List.exists Nf_graph.Props.is_star stable in
  let ok =
    List.length efficient = 1
    && Nf_graph.Props.is_star (List.hd efficient)
    && star_stable
    && List.length stable > 1
  in
  let witness =
    match List.find_opt (fun g -> not (Nf_graph.Props.is_star g)) stable with
    | Some g -> Graph.to_string g
    | None -> "(none)"
  in
  {
    id = "E5";
    title = Printf.sprintf "Lemma 5 - alpha>1: star uniquely efficient, stable but not unique (n=%d)" n;
    body =
      Printf.sprintf
        "alpha = %s:\n  efficient graphs: %d (star: %b)\n  pairwise stable graphs: %d (star among them: %b)\n  a non-star stable witness: %s\n"
        (Rat.to_string alpha) (List.length efficient)
        (List.exists Nf_graph.Props.is_star efficient)
        (List.length stable) star_stable witness;
    ok;
  }

(* ---------------- E6: Lemma 6, cycles ---------------- *)

let e6_lemma6_cycles ?(max_n = 16) () =
  let table =
    Table.create
      [ "n"; "paper window"; "exact stable set"; "PoA(alpha_max)"; "stable for some alpha>1" ]
  in
  let ok = ref true in
  for n = 4 to max_n do
    let g = Families.cycle n in
    let lo, hi = Theory.cycle_window n in
    let set = Bcg.stable_alpha_set g in
    let stable_above_one =
      match Interval.bounds set with
      | Some (_, _, Interval.Finite hi_exact, _) -> Rat.(hi_exact > of_int 1)
      | Some (_, _, Interval.Pos_inf, _) -> true
      | _ -> false
    in
    if n >= 5 && not stable_above_one then ok := false;
    let poa =
      match Interval.bounds set with
      | Some (_, _, Interval.Finite hi_exact, _) ->
        Printf.sprintf "%.3f" (Poa.price_of_anarchy Cost.Bcg ~alpha:(Rat.to_float hi_exact) g)
      | _ -> "-"
    in
    Table.add_row table
      [
        string_of_int n;
        Printf.sprintf "(%s, %s)" (Rat.to_string lo) (Rat.to_string hi);
        Interval.to_string set;
        poa;
        string_of_bool stable_above_one;
      ]
  done;
  {
    id = "E6";
    title = "Lemma 6 - cycles are pairwise stable for a window of alpha > 1";
    body =
      Table.render table
      ^ "\nNote: the paper's window is a proof-sketch approximation; the exact set is\n\
         computed from alpha_min/alpha_max.  PoA at the window top stays O(1).\n";
    ok = !ok;
  }

(* ---------------- E7: Proposition 3 ---------------- *)

let e7_prop3_moore () =
  let table =
    Table.create
      [ "graph"; "k"; "girth"; "moore ratio"; "S_a (paper)"; "S_r (paper)"; "exact gain";
        "exact loss"; "stable alpha"; "PoA(top)"; "log2(top)" ]
  in
  let ok = ref true in
  (* Prop 3 claims stability for regular graphs whose order is a constant
     factor of the Moore bound; the hypercubes are included for contrast
     (Q4 sits at ratio 0.1 and is NOT stable — long-range additions beat
     the girth bound, the same effect as in E12). *)
  let candidates =
    [
      ("petersen", Gallery.petersen);
      ("hoffman-singleton", Gallery.hoffman_singleton);
      ("heawood", Gallery.heawood);
      ("mcgee", Gallery.mcgee);
      ("tutte-coxeter", Gallery.tutte_coxeter);
      ("moebius-kantor", Gallery.moebius_kantor);
      ("pappus", Gallery.pappus);
      ("nauru", Gallery.nauru);
      ("clebsch", Gallery.clebsch);
      ("hypercube Q3", Families.hypercube 3);
      ("hypercube Q4", Families.hypercube 4);
    ]
  in
  List.iter
    (fun (name, g) ->
      let k = Option.value ~default:0 (Nf_graph.Props.regularity g) in
      let girth =
        match Nf_graph.Girth.girth g with
        | Ext_int.Fin v -> v
        | Ext_int.Inf -> 0
      in
      let ratio = Option.value ~default:0.0 (Nf_named.Moore.moore_ratio g) in
      let set = Bcg.stable_alpha_set g in
      if ratio >= 0.5 && Interval.is_empty set then ok := false;
      let gain, loss =
        match Convexity.link_convexity_gap g with
        | Some (gain, loss) -> (Ext_int.to_string gain, Ext_int.to_string loss)
        | None -> ("-", "-")
      in
      let poa_top, log_top =
        match Interval.bounds set with
        | Some (_, _, Interval.Finite hi, _) ->
          let a = Rat.to_float hi in
          ( Printf.sprintf "%.3f" (Poa.price_of_anarchy Cost.Bcg ~alpha:a g),
            Printf.sprintf "%.2f" (Float.log a /. Float.log 2.) )
        | _ -> ("-", "-")
      in
      Table.add_row table
        [
          name;
          string_of_int k;
          string_of_int girth;
          Printf.sprintf "%.2f" ratio;
          string_of_int (Theory.regular_addition_decrease ~k ~girth);
          string_of_int (Theory.regular_removal_increase ~k ~girth);
          gain;
          loss;
          Interval.to_string set;
          poa_top;
          log_top;
        ])
    candidates;
  {
    id = "E7";
    title = "Prop 3 - near-Moore regular graphs are stable; PoA grows like log2(alpha)";
    body =
      Table.render table
      ^ "\nLower-bound reading: along the Moore families, the stability window's top\n\
         alpha grows exponentially in the diameter while PoA grows linearly in it,\n\
         i.e. PoA = Omega(log2 alpha) on this family.\n";
    ok = !ok;
  }

(* ---------------- E8: Proposition 4 ---------------- *)

let e8_prop4_upper_bound ?(n = 7) () =
  let table =
    Table.create
      [ "alpha"; "#stable"; "worst PoA"; "min(sqrt a, n/sqrt a)"; "max diam"; "2 sqrt a + 1" ]
  in
  let ok = ref true in
  let annotated = Equilibria.bcg_annotated n in
  List.iter
    (fun alpha ->
      let stable =
        List.filter_map
          (fun (g, set) -> if Interval.mem alpha set then Some g else None)
          annotated
      in
      let alpha_f = Rat.to_float alpha in
      let summary = Poa.summarize Cost.Bcg ~alpha:alpha_f stable in
      let curve = Theory.poa_upper_bound ~alpha:alpha_f ~n in
      let max_diam =
        List.fold_left
          (fun acc g ->
            match Nf_graph.Apsp.diameter g with
            | Ext_int.Fin d -> max acc d
            | Ext_int.Inf -> acc)
          0 stable
      in
      let diam_bound = Theory.bcg_diameter_bound ~alpha:alpha_f +. 1.0 in
      if stable <> [] then begin
        (* the qualitative content of Prop 4: worst PoA within a constant of
           the curve, stable diameters below 2 sqrt(alpha) + 1 *)
        if summary.Poa.worst > 4.0 *. Float.max 1.0 curve then ok := false;
        if float_of_int max_diam >= diam_bound then ok := false
      end;
      Table.add_row table
        [
          Rat.to_string alpha;
          string_of_int summary.Poa.count;
          (if summary.Poa.count = 0 then "-" else Printf.sprintf "%.3f" summary.Poa.worst);
          Printf.sprintf "%.3f" curve;
          string_of_int max_diam;
          Printf.sprintf "%.2f" diam_bound;
        ])
    Sweep.paper_grid;
  {
    id = "E8";
    title = Printf.sprintf "Prop 4 - worst-case PoA vs O(min(sqrt a, n/sqrt a)) (n=%d)" n;
    body = Table.render table;
    ok = !ok;
  }

(* ---------------- E9: Proposition 5 + conjecture ---------------- *)

let e9_prop5_trees ?(max_n = 8) ?(conjecture_n = 6) () =
  let ok = ref true in
  let buf = Buffer.create 512 in
  (* Prop 5 (restated for trees): every UCG-Nash tree is BCG pairwise
     stable at the same alpha, i.e. the tree's Nash alpha-set is contained
     in its stable alpha-set. *)
  let tree_total = ref 0
  and tree_nash = ref 0 in
  for n = 3 to max_n do
    List.iter
      (fun t ->
        incr tree_total;
        let nash = Ucg.nash_alpha_set t in
        if not (Interval.Union.is_empty nash) then begin
          incr tree_nash;
          let stable = Bcg.stable_alpha_set t in
          List.iter
            (fun piece ->
              if not (Interval.subset piece stable) then begin
                ok := false;
                Buffer.add_string buf
                  (Printf.sprintf "  VIOLATION (tree): %s nash=%s stable=%s\n"
                     (Graph.to_string t)
                     (Interval.Union.to_string nash)
                     (Interval.to_string stable))
              end)
            (Interval.Union.to_list nash)
        end)
      (Nf_enum.Trees.unlabeled_trees n)
  done;
  Buffer.add_string buf
    (Printf.sprintf "trees n<=%d: %d classes, %d UCG-Nash for some alpha, all contained: %b\n"
       max_n !tree_total !tree_nash !ok);
  (* the paper's conjecture, on all connected graphs from n = 3 up: find
     the minimal counterexamples *)
  for cn = 3 to conjecture_n do
    let conj_ok = ref true
    and conj_total = ref 0
    and conj_nash = ref 0 in
    List.iter
      (fun (g, nash) ->
        incr conj_total;
        if not (Interval.Union.is_empty nash) then begin
          incr conj_nash;
          let stable = Bcg.stable_alpha_set g in
          List.iter
            (fun piece ->
              if not (Interval.subset piece stable) then begin
                conj_ok := false;
                Buffer.add_string buf
                  (Printf.sprintf "  conjecture counterexample: %s nash=%s stable=%s\n"
                     (Graph.to_string g)
                     (Interval.Union.to_string nash)
                     (Interval.to_string stable))
              end)
            (Interval.Union.to_list nash)
        end)
      (Equilibria.ucg_annotated cn);
    Buffer.add_string buf
      (Printf.sprintf
         "conjecture on all connected graphs n=%d: %d classes, %d UCG-Nash, contained: %b\n"
         cn !conj_total !conj_nash !conj_ok)
  done;
  {
    id = "E9";
    title = "Prop 5 - UCG Nash trees are BCG stable at the same alpha (+ conjecture)";
    body = Buffer.contents buf;
    ok = !ok;
  }

(* ---------------- E10/E11: footnotes ---------------- *)

let e10_footnote5_cycles () =
  let buf = Buffer.create 256 in
  let ok = ref true in
  for n = 5 to 9 do
    let g = Families.cycle n in
    let nash = Ucg.nash_alpha_set g in
    let stable = Bcg.stable_alpha_set g in
    let expected_nash_empty = n > 5 in
    if Interval.Union.is_empty nash <> expected_nash_empty then ok := false;
    if Interval.is_empty stable then ok := false;
    Buffer.add_string buf
      (Printf.sprintf "  C%-2d UCG nash: %-14s BCG stable: %s\n" n
         (Interval.Union.to_string nash)
         (Interval.to_string stable))
  done;
  (* the clockwise-ownership profile is never Nash for C6 *)
  let g6 = Families.cycle 6 in
  let owner i j = if (i + 1) mod 6 = j then i else j in
  if Ucg.is_nash_orientation ~alpha:(Rat.of_int 2) g6 ~owner then ok := false;
  Buffer.add_string buf
    "  clockwise-ownership C6 at alpha=2: not Nash (node 0 rewires to node 2)\n";
  {
    id = "E10";
    title = "Footnote 5 - cycles beyond C5 are BCG-stable but never UCG-Nash";
    body = Buffer.contents buf;
    ok = !ok;
  }

let e11_footnote7_petersen () =
  let set = Ucg.nash_alpha_set Gallery.petersen in
  let claimed = Interval.closed Rat.one (Rat.of_int 4) in
  let contains_claim =
    List.exists (fun piece -> Interval.subset claimed piece) (Interval.Union.to_list set)
  in
  {
    id = "E11";
    title = "Footnote 7 - the Petersen graph is UCG-Nash for 1 <= alpha <= 4";
    body =
      Printf.sprintf "  exact UCG Nash set: %s\n  contains [1,4]: %b\n"
        (Interval.Union.to_string set) contains_claim;
    ok = contains_claim;
  }

(* ---------------- E12: Desargues / dodecahedron ---------------- *)

let e12_desargues () =
  let report name g =
    let gain, loss =
      match Convexity.link_convexity_gap g with
      | Some (gain, loss) -> (Ext_int.to_string gain, Ext_int.to_string loss)
      | None -> ("-", "-")
    in
    Printf.sprintf "  %-13s max addition gain=%s min severance loss=%s link convex=%b stable=%s\n"
      name gain loss (Convexity.is_link_convex g)
      (Interval.to_string (Bcg.stable_alpha_set g))
  in
  let body =
    report "desargues" Gallery.desargues
    ^ report "dodecahedron" Gallery.dodecahedron
    ^ "  Paper claims Desargues is link convex; the exact computation refutes it:\n\
      \  its best addition spans distance 4 on the outer cycle and saves 10 > 8.\n\
      \  The paper's S_a bound only counts additions across a shortest cycle.\n"
  in
  let ok =
    (not (Convexity.is_link_convex Gallery.desargues))
    && not (Convexity.is_link_convex Gallery.dodecahedron)
  in
  { id = "E12"; title = "S4.1 - link convexity of Desargues vs dodecahedron"; body; ok }

(* ---------------- E13: eq. (5) ---------------- *)

let e13_eq5_bound ?(n = 6) () =
  let alpha = 1.75 in
  let total = ref 0
  and tight = ref 0
  and violations = ref 0 in
  (* iter_connected streams off the canonical-augmentation enumerator, so
     this check scales to n = 9 without materializing the level *)
  Nf_enum.Unlabeled.iter_connected n (fun g ->
      incr total;
      let bound = Cost.social_cost_lower_bound ~alpha n (Graph.size g) in
      let cost = Cost.social_cost Cost.Bcg ~alpha g in
      if cost < bound -. 1e-9 then incr violations;
      if Cost.is_social_cost_bound_tight ~alpha g then begin
        incr tight;
        if not (Nf_graph.Props.has_diameter_at_most g 2) then incr violations
      end);
  {
    id = "E13";
    title = Printf.sprintf "Eq. (5) - social-cost lower bound, tight iff diameter <= 2 (n=%d)" n;
    body =
      Printf.sprintf
        "  alpha=%.2f: %d connected classes, bound violated by %d, tight for %d (all diameter<=2)\n"
        alpha !total !violations !tight;
    ok = !violations = 0;
  }

(* ---------------- E14: transfers ablation (paper's §6 outlook) -------- *)

let e14_transfers ?(n = 6) () =
  let table =
    Table.create
      [ "alpha"; "#stable"; "avg PoA"; "worst PoA"; "#stable (transfers)";
        "avg PoA (transfers)"; "worst PoA (transfers)" ]
  in
  let ok = ref true in
  List.iter
    (fun alpha ->
      let alpha_f = Rat.to_float alpha in
      let plain = Poa.summarize Cost.Bcg ~alpha:alpha_f (Equilibria.bcg_stable_graphs ~n ~alpha) in
      let with_t =
        Poa.summarize Cost.Bcg ~alpha:alpha_f (Equilibria.transfers_stable_graphs ~n ~alpha)
      in
      (* transfers internalize the externality at the endpoints: the
         worst transfer-stable network should never be worse than the
         worst plain-stable network *)
      if plain.Poa.count > 0 && with_t.Poa.count > 0 && with_t.Poa.worst > plain.Poa.worst +. 1e-9
      then ok := false;
      let cell v = if Float.is_nan v then "-" else Printf.sprintf "%.4f" v in
      Table.add_row table
        [
          Rat.to_string alpha;
          string_of_int plain.Poa.count;
          cell plain.Poa.average;
          cell plain.Poa.worst;
          string_of_int with_t.Poa.count;
          cell with_t.Poa.average;
          cell with_t.Poa.worst;
        ])
    Sweep.paper_grid;
  {
    id = "E14";
    title =
      Printf.sprintf
        "Extension (S6 outlook) - transfers mediate the price of anarchy (n=%d)" n;
    body =
      Table.render table
      ^ "\nWith side payments link decisions follow the pair's joint surplus.  At this\n\
         scale the stable sets almost coincide — the asymmetric blocking that\n\
         transfers remove rarely binds on so few vertices — but the worst\n\
         transfer-stable network is never worse than the worst plain-stable one\n\
         (asserted per row), which is the direction the paper's outlook predicts.\n";
    ok = !ok;
  }

(* ---------------- E15: dynamics and Proposition 2 ---------------- *)

let e15_dynamics_and_prop2 ?(meta_n = 5) () =
  let buf = Buffer.create 512 in
  let ok = ref true in
  (* Jackson–Watts: improving paths never get trapped — no closed
     improving cycles at any grid link cost *)
  Buffer.add_string buf "Improving-move digraph over all labeled graphs:\n";
  List.iter
    (fun alpha ->
      let a = Nf_dynamics.Meta.analyze ~alpha ~n:meta_n in
      if not (Nf_dynamics.Meta.no_closed_cycles a) then ok := false;
      Buffer.add_string buf (Format.asprintf "  %a\n" Nf_dynamics.Meta.pp a))
    [ Rat.make 1 2; Rat.one; Rat.make 3 2; Rat.of_int 2; Rat.of_int 4; Rat.of_int 8 ];
  Buffer.add_string buf
    "  => no closed improving cycles: the stochastic dynamics always converge.\n\n";
  (* Prop 2 constructively: every link convex graph comes with a witness
     link cost at which it is pairwise stable (hence proper-equilibrium
     achievable via Lemma 3) *)
  let convex = ref 0
  and witnessed = ref 0 in
  List.iter
    (fun g ->
      if Convexity.is_link_convex g then begin
        incr convex;
        match Convexity.witness_alpha g with
        | Some alpha when Bcg.is_pairwise_stable ~alpha g -> incr witnessed
        | Some _ | None -> ok := false
      end)
    (Nf_enum.Unlabeled.connected_graphs 6);
  Buffer.add_string buf
    (Printf.sprintf
       "Prop 2 witnesses (n=6): %d link convex classes, %d verified pairwise stable at\n\
        the witness link cost from inequality (3).\n"
       !convex !witnessed);
  List.iter
    (fun (name, g) ->
      if Convexity.is_link_convex g then
        match Convexity.witness_alpha g with
        | Some alpha ->
          if not (Bcg.is_pairwise_stable ~alpha g) then ok := false;
          Buffer.add_string buf
            (Printf.sprintf "  %-18s witness alpha = %s\n" name (Rat.to_string alpha))
        | None -> ok := false)
    Gallery.all;
  {
    id = "E15";
    title = "Dynamics convergence (Jackson-Watts) and Prop 2 witnesses";
    body = Buffer.contents buf;
    ok = !ok;
  }

(* ---------------- E16: shape census (§5 discussion) ---------------- *)

let e16_shape_census ?(n = 6) () =
  let table = Table.create [ "alpha"; "BCG stable shapes"; "UCG Nash shapes" ] in
  let ok = ref true in
  let grid =
    List.sort_uniq Rat.compare
      (Sweep.paper_grid @ [ Rat.of_int ((n * n) + 1); Rat.of_int (2 * n * n) ])
  in
  List.iter
    (fun alpha ->
      let bcg = Equilibria.bcg_stable_graphs ~n ~alpha in
      let ucg = Equilibria.ucg_nash_graphs ~n ~alpha in
      (* the §5 parenthetical: all equilibrium networks are trees once
         alpha > n^2 *)
      if Rat.(alpha > of_int (n * n)) then begin
        if not (Shapes.all_trees bcg) then ok := false;
        if not (Shapes.all_trees ucg) then ok := false
      end;
      Table.add_row table
        [
          Rat.to_string alpha;
          Shapes.census_to_string (Shapes.census bcg);
          Shapes.census_to_string (Shapes.census ucg);
        ])
    grid;
  {
    id = "E16";
    title = Printf.sprintf "S5 discussion - shapes of equilibrium networks (n=%d)" n;
    body =
      Table.render table
      ^ "\nThe dense diameter-2 classes carry the low-alpha end, the over-connected\n\
         intermediates the Figure-2 hump, and past alpha = n^2 only trees survive\n\
         (asserted for every row with alpha > n^2).\n";
    ok = !ok;
  }

(* ---------------- E17: distance-utility robustness ---------------- *)

let e17_distance_utilities () =
  let profiles =
    [
      Distance_utility.linear;
      Distance_utility.quadratic;
      Distance_utility.hop_capped 2;
      Distance_utility.connectivity;
    ]
  in
  let subjects =
    [
      ("star8", Gallery.star8);
      ("cycle C8", Families.cycle 8);
      ("petersen", Gallery.petersen);
      ("path P6", Families.path 6);
      ("complete K6", Families.complete 6);
    ]
  in
  let table =
    Table.create ("graph" :: List.map (fun p -> p.Distance_utility.name) profiles)
  in
  let ok = ref true in
  List.iter
    (fun (name, g) ->
      let cells =
        List.map
          (fun p -> Interval.to_string (Distance_utility.stable_alpha_set p g))
          profiles
      in
      Table.add_row table (name :: cells))
    subjects;
  (* the linear profile must coincide with the paper's analysis *)
  List.iter
    (fun (_, g) ->
      if
        not
          (Interval.equal
             (Distance_utility.stable_alpha_set Distance_utility.linear g)
             (Bcg.stable_alpha_set g))
      then ok := false)
    subjects;
  (* under pure connectivity any spanning connected graph with a redundant
     edge is unstable for every alpha, and trees are stable everywhere *)
  if
    not
      (Interval.equal
         (Distance_utility.stable_alpha_set Distance_utility.connectivity (Families.path 6))
         (Interval.open_closed Rat.zero Interval.Pos_inf))
  then ok := false;
  {
    id = "E17";
    title = "Extension - stability windows under generalized distance utilities";
    body =
      Table.render table
      ^ "\nLinear reproduces the paper exactly (asserted).  Quadratic utilities widen\n\
         windows upward (long detours are dreadful, so links are worth more);\n\
         hop-capped narrows them; pure connectivity keeps every tree stable at all\n\
         prices and kills every cyclic graph.\n";
    ok = !ok;
  }

(* ---------------- E18: BCG scaling in n ---------------- *)

let e18_bcg_scaling ?(max_n = 7) () =
  let sizes =
    let rec upto k = if k > max_n then [] else k :: upto (k + 1) in
    upto 5
  in
  let table =
    Table.create
      ("alpha" :: List.concat_map (fun n -> [ Printf.sprintf "avg PoA n=%d" n;
                                              Printf.sprintf "#eq n=%d" n ]) sizes)
  in
  let ok = ref true in
  let crossover_costs = [ Rat.of_int 2; Rat.of_int 4; Rat.of_int 8; Rat.of_int 16 ] in
  (* prewarm: annotation of each size fans out across the domain pool; the
     per-alpha rows below are then cheap filters over the cached lists and
     are themselves evaluated through the pool *)
  List.iter (fun n -> ignore (Equilibria.bcg_annotated n)) sizes;
  let rows =
    Nf_util.Pool.parallel_map
      (fun alpha ->
        let cells =
          List.concat_map
            (fun n ->
              let stable = Equilibria.bcg_stable_graphs ~n ~alpha in
              let s = Poa.summarize Cost.Bcg ~alpha:(Rat.to_float alpha) stable in
              [
                (if s.Poa.count = 0 then "-" else Printf.sprintf "%.4f" s.Poa.average);
                string_of_int s.Poa.count;
              ])
            sizes
        in
        Rat.to_string alpha :: cells)
      (List.sort_uniq Rat.compare (Rat.make 1 2 :: Rat.one :: crossover_costs))
  in
  List.iter (Table.add_row table) rows;
  (* sanity: the efficient graph is always in the stable set, so the best
     PoA is 1 at every size (price of stability 1, as the paper notes) *)
  List.iter
    (fun n ->
      List.iter
        (fun alpha ->
          let stable = Equilibria.bcg_stable_graphs ~n ~alpha in
          let s = Poa.summarize Cost.Bcg ~alpha:(Rat.to_float alpha) stable in
          if s.Poa.count > 0 && s.Poa.best > 1.0 +. 1e-9 then ok := false)
        crossover_costs)
    sizes;
  {
    id = "E18";
    title = Printf.sprintf "Scaling - BCG average PoA as n grows (exhaustive to n=%d)" max_n;
    body =
      Table.render table
      ^ "\nThe welfare-optimal network is pairwise stable at every size (price of\n\
         stability 1, asserted), while the average over the growing stable set\n\
         drifts upward with n at intermediate link costs — the paper's hump\n\
         steepens toward its n=10 plots.\n";
    ok = !ok;
  }

(* ---------------- E19: sampled study at the paper's n = 10 ------------ *)

let e19_sampled_n10 ?(n = 10) ?(attempts = 120) ?(seed = 2005) () =
  let table =
    Table.create
      [ "link cost c"; "#distinct stable (sampled)"; "avg PoA"; "worst PoA"; "avg links";
        "shapes" ]
  in
  let ok = ref true in
  let costs =
    [ Rat.make 1 2; Rat.one; Rat.of_int 2; Rat.of_int 4; Rat.of_int 8; Rat.of_int 16;
      Rat.of_int 32; Rat.of_int 64 ]
  in
  (* one independent generator per cost row, derived deterministically from
     the seed, so the rows can run concurrently on the domain pool and the
     table is identical whatever the pool width *)
  let rows =
    Nf_util.Pool.parallel_map
      (fun (row, c) ->
        let rng = Nf_util.Prng.create (seed + (1000003 * (row + 1))) in
        (* BCG evaluated at α = c/2, matching the Figure 2/3 alignment *)
        let alpha = Rat.div c (Rat.of_int 2) in
        let samples =
          Nf_dynamics.Bcg_dynamics.sample_stable ~alpha ~rng ~n ~attempts
        in
        (* deduplicate up to isomorphism *)
        let seen = Hashtbl.create 32 in
        let classes =
          List.filter
            (fun g ->
              let key = Nf_iso.Canon.canonical_key g in
              if Hashtbl.mem seen key then false
              else begin
                Hashtbl.add seen key ();
                true
              end)
            samples
        in
        let row_ok = List.for_all (fun g -> Bcg.is_pairwise_stable ~alpha g) classes in
        let s = Poa.summarize Cost.Bcg ~alpha:(Rat.to_float alpha) classes in
        let cell v = if Float.is_nan v then "-" else Printf.sprintf "%.4f" v in
        ( [
            Rat.to_string c;
            string_of_int s.Poa.count;
            cell s.Poa.average;
            cell s.Poa.worst;
            cell s.Poa.average_links;
            Shapes.census_to_string (Shapes.census classes);
          ],
          row_ok ))
      (List.mapi (fun row c -> (row, c)) costs)
  in
  List.iter
    (fun (cells, row_ok) ->
      if not row_ok then ok := false;
      Table.add_row table cells)
    rows;
  {
    id = "E19";
    title =
      Printf.sprintf
        "Paper-scale sampling - stable networks at n=%d via improving paths (%d seeds/row)"
        n attempts;
    body =
      Table.render table
      ^ "\nThe paper enumerates all stable topologies at n=10; full enumeration is out\n\
         of scope here (11.7M classes), so this samples the stable set by running\n\
         improving-path dynamics from random connected seeds and deduplicating up to\n\
         isomorphism.  Sampling is biased toward large basins, but the Figure 2/3\n\
         signatures persist at the paper's scale: optimality at low cost, a hump of\n\
         many suboptimal equilibria at intermediate cost, trees at high cost.\n";
    ok = !ok;
  }

(* ---------------- E20: proper equilibrium (Definition 5 / Prop 2) ----- *)

let e20_proper_equilibrium () =
  let buf = Buffer.create 512 in
  let ok = ref true in
  let threshold = 0.9 in
  let run_case name game alpha target expected =
    let reports = Proper.analyze game ~alpha ~target ~iterations:500 () in
    let verdict = Proper.is_proper_limit reports ~threshold in
    if verdict <> expected then ok := false;
    let final_mass =
      match List.rev reports with
      | r :: _ -> r.Proper.min_target_mass
      | [] -> nan
    in
    Buffer.add_string buf
      (Printf.sprintf "  %-42s alpha=%-5.2f mass@eps=0.01: %.4f  proper limit: %b\n" name
         alpha final_mass verdict)
  in
  Buffer.add_string buf "Numerical Definition 5 on the n=4 normal form (bounded distances):\n";
  let c4 = Families.cycle 4 in
  (match Convexity.witness_alpha c4 with
  | Some w ->
    run_case "C4 at its Prop-2 witness (link convex)" Cost.Bcg (Rat.to_float w)
      (Strategy.of_graph_bcg c4) true
  | None -> ok := false);
  run_case "star4, stable profile" Cost.Bcg 2.0 (Strategy.of_graph_bcg (Families.star 4)) true;
  run_case "K4 at alpha=1/2, stable profile" Cost.Bcg 0.5
    (Strategy.of_graph_bcg (Families.complete 4))
    true;
  run_case "K4 at alpha=3, NOT Nash (drops pay)" Cost.Bcg 3.0
    (Strategy.of_graph_bcg (Families.complete 4))
    false;
  run_case "P4 at alpha=3/2, Nash but not pairwise" Cost.Bcg 1.5
    (Strategy.of_graph_bcg (Families.path 4))
    true;
  Buffer.add_string buf
    "\nThe last row is the paper's §3 point in miniature: the P4 profile survives\n\
     every non-cooperative refinement (it is a proper limit) even though the\n\
     missing chord (0,3) is mutually profitable — only the pairwise (coalitional)\n\
     notion rules it out, which is why the BCG needs pairwise stability rather\n\
     than Nash refinements.\n";
  {
    id = "E20";
    title = "Definition 5 / Prop 2 - proper equilibria, numerically (n=4)";
    body = Buffer.contents buf;
    ok = !ok;
  }

(* ---------------- E21: stochastic stability (citation [22]) ----------- *)

let e21_stochastic_stability ?(n = 5) () =
  let table =
    Table.create
      [ "alpha"; "#stable (labeled)"; "#stochastically stable"; "= connected stable?";
        "surviving classes" ]
  in
  let ok = ref true in
  (* each α's perturbed-dynamics analysis is independent: fan the rows out
     across the domain pool and assemble the table in grid order *)
  let rows =
    Nf_util.Pool.parallel_map
      (fun alpha ->
        let v = Nf_dynamics.Stochastic.analyze ~alpha ~n in
        let ss = v.Nf_dynamics.Stochastic.stochastically_stable in
        let connected_stable =
          List.filter Nf_graph.Connectivity.is_connected v.Nf_dynamics.Stochastic.stable
        in
        let same =
          List.length ss = List.length connected_stable
          && List.for_all Nf_graph.Connectivity.is_connected ss
        in
        let classes = Nf_dynamics.Stochastic.stochastically_stable_classes v in
        ( [
            Rat.to_string alpha;
            string_of_int (List.length v.Nf_dynamics.Stochastic.stable);
            string_of_int (List.length ss);
            string_of_bool same;
            Shapes.census_to_string (Shapes.census classes);
          ],
          same ))
      [ Rat.make 3 2; Rat.of_int 2; Rat.of_int 4; Rat.of_int 8 ]
  in
  List.iter
    (fun (cells, same) ->
      if not same then ok := false;
      Table.add_row table cells)
    rows;
  {
    id = "E21";
    title =
      Printf.sprintf
        "Stochastic stability (Tercieux-Vannetelbosch direction) at n=%d" n;
    body =
      Table.render table
      ^ "\nPerturbed Jackson-Watts dynamics with uniform mistakes: resistances between\n\
         stable states via 0/1-shortest paths, stochastic potential via minimum\n\
         in-arborescences.  Selection at this size is exactly connectivity: the\n\
         vacuously-stable disconnected states need >= 2 coordinated mistakes to\n\
         re-enter and drop out, while every connected pairwise stable network\n\
         survives (one mistake reaches a neighbouring basin in either direction).\n";
    ok = !ok;
  }

(* ---------------- E22: large-n Monte-Carlo vs asymptotic theory ---------------- *)

let e22_large_n_monte_carlo ?(n = 128) ?(trials = 2) () =
  let ok = ref true in
  (* part 1: Monte-Carlo PoA estimates in the regime the paper's
     asymptotics describe, against the O(min(√α, n/√α)) reference curve.
     Sampled stable states are verified against the exact predicate —
     [Bcg.is_pairwise_stable] on a 100+-vertex graph is itself a
     multi-word-kernel workout. *)
  let mc_table =
    Table.create [ "n"; "alpha"; "converged"; "PoA mean"; "PoA max"; "min(sqrt a, n/sqrt a)" ]
  in
  List.iter
    (fun (n, alpha) ->
      let results = Nf_dynamics.Mc_poa.run ~n ~alpha ~trials ~seed:271828 () in
      let s = Nf_dynamics.Mc_poa.summarize ~n ~alpha results in
      let all_converged = s.Nf_dynamics.Mc_poa.converged_trials = trials in
      let finite_estimates =
        all_converged
        && Float.is_finite s.Nf_dynamics.Mc_poa.mean_poa
        && Float.is_finite s.Nf_dynamics.Mc_poa.max_poa
      in
      let stable_finals =
        List.for_all
          (fun t ->
            (not t.Nf_dynamics.Mc_poa.converged)
            || Bcg.is_pairwise_stable ~alpha t.Nf_dynamics.Mc_poa.final)
          results
      in
      if not (all_converged && finite_estimates && stable_finals) then ok := false;
      Table.add_row mc_table
        [
          string_of_int n;
          Rat.to_string alpha;
          Printf.sprintf "%d/%d" s.Nf_dynamics.Mc_poa.converged_trials trials;
          Printf.sprintf "%.4f" s.Nf_dynamics.Mc_poa.mean_poa;
          Printf.sprintf "%.4f" s.Nf_dynamics.Mc_poa.max_poa;
          Printf.sprintf "%.4f" s.Nf_dynamics.Mc_poa.theory_bound;
        ])
    [ (n / 2, Rat.of_int 4); (n, Rat.of_int 2); (n, Rat.of_int 4) ];
  (* part 2: the exact annotator at orders enumeration never reaches —
     Lemma 6's cycle window and the star's stability range, both now one
     [stable_alpha_set] call away at n in the hundreds *)
  let cyc_n = n in
  let cycle_set = Bcg.stable_alpha_set (Families.cycle cyc_n) in
  let lo, hi = Theory.cycle_window cyc_n in
  let cycle_ok =
    match Interval.bounds cycle_set with
    | Some (_, _, Interval.Finite hi_exact, _) -> Rat.(hi_exact > of_int 1)
    | Some (_, _, Interval.Pos_inf, _) -> true
    | _ -> false
  in
  if not cycle_ok then ok := false;
  let star_n = max 200 n in
  let star_set = Bcg.stable_alpha_set (Families.star star_n) in
  (* a large star is stable for every α ≥ 1: leaf-leaf additions gain
     exactly one unit of distance per endpoint, and severing a spoke
     disconnects the severing leaf *)
  let star_ok =
    Interval.mem (Rat.of_int 2) star_set
    &&
    match Interval.bounds star_set with
    | Some (_, _, Interval.Pos_inf, _) -> true
    | _ -> false
  in
  if not star_ok then ok := false;
  {
    id = "E22";
    title =
      Printf.sprintf
        "Large-n regime: Monte-Carlo PoA vs Proposition 4, exact families at n=%d..%d"
        cyc_n star_n;
    body =
      Table.render mc_table
      ^ Printf.sprintf
          "\n\
           C_%d: paper window (%s, %s]; exact stable set %s (stable above alpha=1: %b)\n\
           K_1,%d: exact stable set %s (contains alpha=2 and is unbounded: %b)\n\n\
           Sampled pairwise-stable states at these sizes sit far below the worst-case\n\
           PoA envelope: random better-response play lands on low-diameter, near-tree\n\
           networks, consistent with the paper's reading of Proposition 4 as a loose\n\
           upper bound.\n"
          cyc_n (Rat.to_string lo) (Rat.to_string hi) (Interval.to_string cycle_set)
          cycle_ok (star_n - 1) (Interval.to_string star_set) star_ok;
    ok = !ok;
  }

(* ---------------- per-game sweep (netform experiments --game) ---------------- *)

let game_sweep ~game ?(n = 6) () =
  let packed = Game_registry.find_exn game in
  let points = Figures.sweep_game packed ~n () in
  (* sanity, not paper claims: the sweep is nonempty and every PoA ratio
     is >= 1 wherever an equilibrium exists *)
  let ok =
    points <> []
    && List.for_all
         (fun p ->
           p.Figures.summary.Poa.count = 0 || p.Figures.summary.Poa.best >= 1. -. 1e-9)
         points
  in
  {
    id = "G:" ^ game;
    title = Printf.sprintf "single-game sweep: %s (n=%d, exhaustive)" game n;
    body = Figures.game_table points ^ "\n" ^ Figures.game_plot points;
    ok;
  }

let run_all ?(n = 6) () =
  let e1, e2 = e1_e2_figures ~n () in
  [
    e1;
    e2;
    e3_figure1_gallery ();
    e4_lemma4 ~n ();
    e5_lemma5 ~n ();
    e6_lemma6_cycles ();
    e7_prop3_moore ();
    e8_prop4_upper_bound ~n:(max n 7) ();
    e9_prop5_trees ~conjecture_n:(min n 6) ();
    e10_footnote5_cycles ();
    e11_footnote7_petersen ();
    e12_desargues ();
    e13_eq5_bound ~n ();
    e14_transfers ~n ();
    e15_dynamics_and_prop2 ();
    e16_shape_census ~n ();
    e17_distance_utilities ();
    e18_bcg_scaling ~max_n:(max n 7) ();
    e19_sampled_n10 ();
    e20_proper_equilibrium ();
    e21_stochastic_stability ();
    e22_large_n_monte_carlo ();
  ]
