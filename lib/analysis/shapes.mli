(** Structural census of equilibrium topologies.

    Section 5 of the paper explains the Figure 2 hump through the *shapes*
    admitted at each link cost — dense diameter-2 graphs at the low end,
    over-connected intermediates, and only trees once [α > n²].  This
    module classifies a set of graphs into the shape classes that
    discussion uses. *)

type shape =
  | Complete
  | Star
  | Path
  | Cycle
  | Tree  (** a tree that is neither a star nor a path *)
  | Diameter_two  (** diameter ≤ 2, not complete and not a star *)
  | Regular of int  (** k-regular, none of the above *)
  | Other

val classify : Nf_graph.Graph.t -> shape
(** The most specific class that applies (tested in the order above). *)

val shape_name : shape -> string

type census = (shape * int) list
(** Shape → multiplicity, most frequent first; omits empty classes. *)

val census : Nf_graph.Graph.t list -> census
val census_to_string : census -> string
(** e.g. ["tree:5 star:1 other:2"]. *)

val all_trees : Nf_graph.Graph.t list -> bool
(** Every graph is a tree (stars and paths count). *)
