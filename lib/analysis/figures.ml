module Rat = Nf_util.Rat
open Netform

type point = {
  total_link_cost : Rat.t;
  ucg : Poa.summary;
  bcg : Poa.summary;
}

let sweep_via ~bcg ~ucg ?(grid = Sweep.paper_grid) () =
  List.map
    (fun c ->
      let alpha_ucg = c
      and alpha_bcg = Rat.div c (Rat.of_int 2) in
      let ucg_graphs = ucg ~alpha:alpha_ucg in
      let bcg_graphs = bcg ~alpha:alpha_bcg in
      {
        total_link_cost = c;
        ucg = Poa.summarize Cost.Ucg ~alpha:(Rat.to_float alpha_ucg) ucg_graphs;
        bcg = Poa.summarize Cost.Bcg ~alpha:(Rat.to_float alpha_bcg) bcg_graphs;
      })
    grid

let sweep ~n ?grid () =
  sweep_via
    ~bcg:(fun ~alpha -> Equilibria.stable_graphs Game_registry.bcg ~n ~alpha)
    ~ucg:(fun ~alpha -> Equilibria.stable_graphs Game_registry.ucg ~n ~alpha)
    ?grid ()

(* ---- single-game sweeps (any registered game) ------------------------- *)

type game_point = {
  game : string;
  link_cost : Rat.t;
  alpha : Rat.t;
  summary : Poa.summary;
}

let sweep_game_via (Game.Any (module G)) ~stable ?(grid = Sweep.paper_grid) () =
  List.map
    (fun c ->
      let alpha = G.alpha_of_link_cost c in
      let graphs = stable ~alpha in
      {
        game = G.name;
        link_cost = c;
        alpha;
        summary = Poa.summarize G.cost_model ~alpha:(Rat.to_float alpha) graphs;
      })
    grid

let sweep_game (Game.Any game as packed) ~n ?grid () =
  sweep_game_via packed
    ~stable:(fun ~alpha -> Equilibria.stable_graphs game ~n ~alpha)
    ?grid ()

let fmt_or_dash v = if Float.is_nan v then "-" else Printf.sprintf "%.4f" v

let figure2_table points =
  let table =
    Nf_util.Table.create
      [ "link cost c"; "#UCG eq"; "avg PoA UCG"; "#BCG eq"; "avg PoA BCG"; "worst UCG"; "worst BCG" ]
  in
  List.iter
    (fun p ->
      Nf_util.Table.add_row table
        [
          Rat.to_string p.total_link_cost;
          string_of_int p.ucg.Poa.count;
          fmt_or_dash p.ucg.Poa.average;
          string_of_int p.bcg.Poa.count;
          fmt_or_dash p.bcg.Poa.average;
          fmt_or_dash p.ucg.Poa.worst;
          fmt_or_dash p.bcg.Poa.worst;
        ])
    points;
  Nf_util.Table.render table

let figure3_table points =
  let table =
    Nf_util.Table.create [ "link cost c"; "#UCG eq"; "avg links UCG"; "#BCG eq"; "avg links BCG" ]
  in
  List.iter
    (fun p ->
      Nf_util.Table.add_row table
        [
          Rat.to_string p.total_link_cost;
          string_of_int p.ucg.Poa.count;
          fmt_or_dash p.ucg.Poa.average_links;
          string_of_int p.bcg.Poa.count;
          fmt_or_dash p.bcg.Poa.average_links;
        ])
    points;
  Nf_util.Table.render table

let series_of points extract =
  List.filter_map
    (fun p ->
      let y = extract p in
      if Float.is_nan y then None
      else Some (Float.log (Rat.to_float p.total_link_cost) /. Float.log 2.0, y))
    points

let figure2_plot points =
  Nf_util.Ascii_plot.render ~x_label:"log2(total link cost)" ~y_label:"average PoA"
    ~title:"Figure 2: average price of anarchy of equilibrium networks"
    [
      { Nf_util.Ascii_plot.label = "UCG (Nash graphs)"; marker = 'u';
        points = series_of points (fun p -> p.ucg.Poa.average) };
      { Nf_util.Ascii_plot.label = "BCG (pairwise stable)"; marker = 'b';
        points = series_of points (fun p -> p.bcg.Poa.average) };
    ]

let figure3_plot points =
  Nf_util.Ascii_plot.render ~x_label:"log2(total link cost)" ~y_label:"average #links"
    ~title:"Figure 3: average number of links in equilibrium networks"
    [
      { Nf_util.Ascii_plot.label = "UCG (Nash graphs)"; marker = 'u';
        points = series_of points (fun p -> p.ucg.Poa.average_links) };
      { Nf_util.Ascii_plot.label = "BCG (pairwise stable)"; marker = 'b';
        points = series_of points (fun p -> p.bcg.Poa.average_links) };
    ]

let game_table points =
  let table =
    Nf_util.Table.create
      [ "link cost c"; "alpha"; "#eq"; "avg PoA"; "worst PoA"; "best PoA"; "avg links" ]
  in
  List.iter
    (fun p ->
      Nf_util.Table.add_row table
        [
          Rat.to_string p.link_cost;
          Rat.to_string p.alpha;
          string_of_int p.summary.Poa.count;
          fmt_or_dash p.summary.Poa.average;
          fmt_or_dash p.summary.Poa.worst;
          fmt_or_dash p.summary.Poa.best;
          fmt_or_dash p.summary.Poa.average_links;
        ])
    points;
  Nf_util.Table.render table

let game_series points extract =
  List.filter_map
    (fun p ->
      let y = extract p in
      if Float.is_nan y then None
      else Some (Float.log (Rat.to_float p.link_cost) /. Float.log 2.0, y))
    points

let game_plot points =
  let name = match points with p :: _ -> p.game | [] -> "?" in
  Nf_util.Ascii_plot.render ~x_label:"log2(total link cost)" ~y_label:"avg PoA / avg #links"
    ~title:(Printf.sprintf "Equilibrium sweep: %s" name)
    [
      { Nf_util.Ascii_plot.label = name ^ " avg PoA"; marker = 'p';
        points = game_series points (fun p -> p.summary.Poa.average) };
      { Nf_util.Ascii_plot.label = name ^ " avg #links"; marker = 'l';
        points = game_series points (fun p -> p.summary.Poa.average_links) };
    ]

let game_csv points =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "game,total_link_cost,alpha,count,avg_poa,worst_poa,best_poa,avg_links\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%s,%d,%f,%f,%f,%f\n" p.game
           (Rat.to_string p.link_cost) (Rat.to_string p.alpha)
           p.summary.Poa.count p.summary.Poa.average p.summary.Poa.worst
           p.summary.Poa.best p.summary.Poa.average_links))
    points;
  Buffer.contents buf

let to_csv points =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "total_link_cost,ucg_count,ucg_avg_poa,ucg_worst_poa,ucg_avg_links,bcg_count,bcg_avg_poa,bcg_worst_poa,bcg_avg_links\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%f,%f,%f,%d,%f,%f,%f\n"
           (Rat.to_string p.total_link_cost)
           p.ucg.Poa.count p.ucg.Poa.average p.ucg.Poa.worst p.ucg.Poa.average_links
           p.bcg.Poa.count p.bcg.Poa.average p.bcg.Poa.worst p.bcg.Poa.average_links))
    points;
  Buffer.contents buf
