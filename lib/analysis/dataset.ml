module Graph = Nf_graph.Graph
module Interval = Nf_util.Interval
module Rat = Nf_util.Rat

type entry = {
  graph : Graph.t;
  bcg_stable : Interval.t;
  ucg_nash : Interval.Union.t option;
}

let build ?with_ucg n =
  let with_ucg = Option.value ~default:(n <= 7) with_ucg in
  let bcg = Equilibria.bcg_annotated n in
  if with_ucg then
    (* both annotations enumerate the same class list in the same order *)
    List.map2
      (fun (g, stable) (g', nash) ->
        assert (Graph.equal g g');
        { graph = g; bcg_stable = stable; ucg_nash = Some nash })
      bcg (Equilibria.ucg_annotated n)
  else List.map (fun (g, stable) -> { graph = g; bcg_stable = stable; ucg_nash = None }) bcg

(* --- interval syntax ---------------------------------------------------- *)

let rat_to_string r =
  if Rat.is_integer r then string_of_int (Rat.num r)
  else Printf.sprintf "%d/%d" (Rat.num r) (Rat.den r)

let endpoint_to_string = function
  | Interval.Neg_inf -> "-inf"
  | Interval.Pos_inf -> "inf"
  | Interval.Finite r -> rat_to_string r

let interval_to_string i =
  match Interval.bounds i with
  | None -> "empty"
  | Some (lo, lo_closed, hi, hi_closed) ->
    Printf.sprintf "%c%s;%s%c"
      (if lo_closed then '[' else '(')
      (endpoint_to_string lo) (endpoint_to_string hi)
      (if hi_closed then ']' else ')')

let int_field what v =
  match int_of_string_opt v with
  | Some k -> k
  | None -> invalid_arg (Printf.sprintf "Dataset.rat_of_string: bad %s %S" what v)

let rat_of_string s =
  match String.index_opt s '/' with
  | Some k ->
    let num = int_field "numerator" (String.sub s 0 k)
    and den = int_field "denominator" (String.sub s (k + 1) (String.length s - k - 1)) in
    if den = 0 then invalid_arg (Printf.sprintf "Dataset.rat_of_string: zero denominator in %S" s);
    Rat.make num den
  | None -> Rat.of_int (int_field "integer" s)

let endpoint_of_string = function
  | "-inf" -> Interval.Neg_inf
  | "inf" | "+inf" -> Interval.Pos_inf
  | s -> Interval.Finite (rat_of_string s)

let interval_of_string s =
  if s = "empty" then Interval.empty
  else begin
    let len = String.length s in
    if len < 5 then invalid_arg "Dataset.interval_of_string: too short";
    let lo_closed =
      match s.[0] with
      | '[' -> true
      | '(' -> false
      | _ -> invalid_arg "Dataset.interval_of_string: bad opening bracket"
    in
    let hi_closed =
      match s.[len - 1] with
      | ']' -> true
      | ')' -> false
      | _ -> invalid_arg "Dataset.interval_of_string: bad closing bracket"
    in
    let body = String.sub s 1 (len - 2) in
    match String.split_on_char ';' body with
    | [ lo; hi ] ->
      Interval.make ~lo:(endpoint_of_string lo) ~lo_closed ~hi:(endpoint_of_string hi)
        ~hi_closed
    | _ -> invalid_arg "Dataset.interval_of_string: expected two endpoints"
  end

let union_to_string u =
  match Interval.Union.to_list u with
  | [] -> "empty"
  | pieces -> String.concat "|" (List.map interval_to_string pieces)

let union_of_string s =
  if s = "empty" then Interval.Union.empty
  else Interval.Union.of_list (List.map interval_of_string (String.split_on_char '|' s))

(* --- CSV ---------------------------------------------------------------- *)

let header = "graph6,n,m,bcg_stable,ucg_nash"

let to_csv entries =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%d,%s,%s\n"
           (Nf_graph.Graph6.encode e.graph)
           (Graph.order e.graph) (Graph.size e.graph)
           (interval_to_string e.bcg_stable)
           (match e.ucg_nash with
           | Some u -> union_to_string u
           | None -> "-")))
    entries;
  Buffer.contents buf

let of_csv text =
  match String.split_on_char '\n' (String.trim text) with
  | [] -> invalid_arg "Dataset.of_csv: empty"
  | first :: rows ->
    if first <> header then invalid_arg "Dataset.of_csv: bad header";
    List.map
      (fun row ->
        match String.split_on_char ',' row with
        | [ g6; _n; _m; stable; nash ] ->
          {
            graph = Nf_graph.Graph6.decode g6;
            bcg_stable = interval_of_string stable;
            ucg_nash = (if nash = "-" then None else Some (union_of_string nash));
          }
        | fields ->
          invalid_arg
            (Printf.sprintf "Dataset.of_csv: bad row (%d fields, expected 5): %s"
               (List.length fields) row))
      (List.filter (fun r -> String.trim r <> "") rows)

let save ~path entries =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv entries))

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_csv (really_input_string ic (in_channel_length ic)))
