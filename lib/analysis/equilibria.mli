(** Exhaustive equilibrium sets over all connected topologies on [n]
    vertices — the paper's §5 workload, for every registered game.

    One generic driver: {!annotated} takes any {!Netform.Game} instance
    and annotates each isomorphism class with that game's exact stable
    α-region; per-α queries are then region-membership lookups.
    Annotations are memoized per (game, [n]) in a single registry-wide
    cache.  The historical per-game entry points ([bcg_annotated], …)
    remain as thin wrappers over the registry's built-in instances and
    return bit-identical results.

    The enumeration streams out of
    {!Nf_enum.Unlabeled.iter_connected_chunked} and each chunk's per-graph
    annotation is fanned out across the default {!Nf_util.Pool}
    ([NETFORM_JOBS] controls the width, [NETFORM_JOBS=1] forces the
    sequential path); results are assembled in enumeration order, so the
    returned lists are identical whatever the pool width or chunking — and
    byte-identical to annotating the materialized graph list.  At [n >= 9]
    the graph level is never held in memory: the annotated list is built
    directly off the canonical-augmentation stream.

    {b Thread safety:} the cache is mutex-guarded, so every function here
    may be called from any domain.  Two domains racing on an uncached
    (game, [n]) may both compute the annotation (the deterministic result
    of the first insertion wins); the annotated lists handed out are
    immutable and safe to share. *)

val annotated : 'r Netform.Game.t -> int -> (Nf_graph.Graph.t * 'r) list
(** All connected isomorphism classes with the game's exact stable
    α-regions, memoized.  The cache is keyed by the game's [name]: two
    distinct games must not share one (the registry enforces this for
    registered games; ad-hoc {!Netform.Weighted_bcg.make} instances
    should pick fresh names). *)

val stable_graphs :
  'r Netform.Game.t -> n:int -> alpha:Nf_util.Rat.t -> Nf_graph.Graph.t list
(** The classes whose region contains [alpha], in enumeration order. *)

val stable_graphs_packed :
  Netform.Game.packed -> n:int -> alpha:Nf_util.Rat.t -> Nf_graph.Graph.t list
(** {!stable_graphs} for name-driven callers (CLI, scripts). *)

val annotated_regions :
  Netform.Game.packed -> int -> (Nf_graph.Graph.t * string) list
(** {!annotated} with regions rendered to strings (CSV export paths). *)

val bcg_annotated : int -> (Nf_graph.Graph.t * Nf_util.Interval.t) list
(** All connected isomorphism classes with their pairwise-stable α-sets.
    Practical for [n ≤ 8] interactively; [n = 9] (261 080 classes)
    completes in minutes off the streaming enumerator. *)

val ucg_annotated : int -> (Nf_graph.Graph.t * Nf_util.Interval.Union.t) list
(** All connected isomorphism classes with their Nash α-sets.  The
    orientation search grows with density; practical for [n ≤ 7]. *)

val bcg_stable_graphs : n:int -> alpha:Nf_util.Rat.t -> Nf_graph.Graph.t list
val ucg_nash_graphs : n:int -> alpha:Nf_util.Rat.t -> Nf_graph.Graph.t list

val bcg_ever_stable : int -> (Nf_graph.Graph.t * Nf_util.Interval.t) list
(** The classes whose stable set is nonempty, with the set. *)

val transfers_annotated : int -> (Nf_graph.Graph.t * Nf_util.Interval.t) list
(** As {!bcg_annotated} for pairwise stability with transfers
    ({!Netform.Transfers}). *)

val transfers_stable_graphs : n:int -> alpha:Nf_util.Rat.t -> Nf_graph.Graph.t list

val clear_cache : unit -> unit
(** Drop every cached annotation {e and} the per-(n, index) symmetry
    memo backing the orbit quotient — the caches are registry-wide, so
    this covers all games, including ones registered after this module
    was built, and leaves no stale orbit data behind. *)

val orbit_memo_size : unit -> int
(** Number of memoized per-graph symmetry entries (the subgroups the
    orbit-quotient sweeps share across games at one [n]).  Test hook:
    {!clear_cache} must drop it to zero. *)
