(** Exhaustive equilibrium sets over all connected topologies on [n]
    vertices — the paper's §5 workload.

    Each isomorphism class is annotated once with its exact BCG stable
    α-set and (separately, because it is much more expensive) its exact
    UCG Nash α-set; per-α queries are then interval-membership lookups.
    Annotations are memoized per [n].

    The enumeration streams out of
    {!Nf_enum.Unlabeled.iter_connected_chunked} and each chunk's per-graph
    annotation is fanned out across the default {!Nf_util.Pool}
    ([NETFORM_JOBS] controls the width, [NETFORM_JOBS=1] forces the
    sequential path); results are assembled in enumeration order, so the
    returned lists are identical whatever the pool width or chunking — and
    byte-identical to annotating the materialized graph list.  At [n >= 9]
    the graph level is never held in memory: the annotated list is built
    directly off the canonical-augmentation stream.

    {b Thread safety:} the per-[n] caches are mutex-guarded, so every
    function here may be called from any domain.  Two domains racing on an
    uncached [n] may both compute the annotation (the deterministic result
    of the first insertion wins); the annotated lists handed out are
    immutable and safe to share. *)

val bcg_annotated : int -> (Nf_graph.Graph.t * Nf_util.Interval.t) list
(** All connected isomorphism classes with their pairwise-stable α-sets.
    Practical for [n ≤ 8] interactively; [n = 9] (261 080 classes)
    completes in minutes off the streaming enumerator. *)

val ucg_annotated : int -> (Nf_graph.Graph.t * Nf_util.Interval.Union.t) list
(** All connected isomorphism classes with their Nash α-sets.  The
    orientation search grows with density; practical for [n ≤ 7]. *)

val bcg_stable_graphs : n:int -> alpha:Nf_util.Rat.t -> Nf_graph.Graph.t list
val ucg_nash_graphs : n:int -> alpha:Nf_util.Rat.t -> Nf_graph.Graph.t list

val bcg_ever_stable : int -> (Nf_graph.Graph.t * Nf_util.Interval.t) list
(** The classes whose stable set is nonempty, with the set. *)

val transfers_annotated : int -> (Nf_graph.Graph.t * Nf_util.Interval.t) list
(** As {!bcg_annotated} for pairwise stability with transfers
    ({!Netform.Transfers}). *)

val transfers_stable_graphs : n:int -> alpha:Nf_util.Rat.t -> Nf_graph.Graph.t list

val clear_cache : unit -> unit
