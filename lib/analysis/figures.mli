(** The paper's Figure 2 (average price of anarchy vs link cost) and
    Figure 3 (average number of links vs link cost).

    The paper plots the UCG at [log α] and the BCG at [log 2α], i.e. it
    aligns the two games at equal {e total} cost per link.  We reproduce
    that alignment: each grid point [c] is the total link cost; the UCG is
    evaluated at [α = c] and the BCG at [α = c/2]. *)

type point = {
  total_link_cost : Nf_util.Rat.t;  (** the grid value [c] *)
  ucg : Netform.Poa.summary;  (** over all UCG Nash graphs at [α = c] *)
  bcg : Netform.Poa.summary;  (** over all BCG stable graphs at [α = c/2] *)
}

val sweep : n:int -> ?grid:Nf_util.Rat.t list -> unit -> point list
(** Exhaustive equilibrium sweep on [n] players over the grid (default
    {!Sweep.paper_grid}). *)

val sweep_via :
  bcg:(alpha:Nf_util.Rat.t -> Nf_graph.Graph.t list) ->
  ucg:(alpha:Nf_util.Rat.t -> Nf_graph.Graph.t list) ->
  ?grid:Nf_util.Rat.t list ->
  unit ->
  point list
(** {!sweep} with the equilibrium sets supplied by the caller rather than
    recomputed — the hook a persistent equilibrium atlas (the [nf_store]
    query engine) uses to regenerate the figure curves without
    re-annotating.  The α convention is applied here: at grid value [c]
    the [ucg] provider is asked for [α = c] and the [bcg] provider for
    [α = c/2]. *)

val figure2_table : point list -> string
(** α, equilibrium counts, and average PoA per game, as an aligned
    table. *)

val figure3_table : point list -> string
val figure2_plot : point list -> string
(** ASCII rendering: average PoA vs [log₂] of the total link cost. *)

val figure3_plot : point list -> string

val to_csv : point list -> string
(** Machine-readable dump of the full sweep. *)

(** {2 Single-game sweeps}

    The same sweep for {e any} registered game ([netform sweep --game
    <name>]): the game's own α convention ({!Netform.Game.S.alpha_of_link_cost})
    and social-cost model are applied at each grid value. *)

type game_point = {
  game : string;  (** the game's registry name *)
  link_cost : Nf_util.Rat.t;  (** the grid value [c] (total cost per link) *)
  alpha : Nf_util.Rat.t;  (** the game's per-player α at [c] *)
  summary : Netform.Poa.summary;  (** over the game's equilibria at [α] *)
}

val sweep_game :
  Netform.Game.packed -> n:int -> ?grid:Nf_util.Rat.t list -> unit -> game_point list
(** Exhaustive single-game sweep on [n] players (annotation via
    {!Equilibria.annotated}, memoized). *)

val sweep_game_via :
  Netform.Game.packed ->
  stable:(alpha:Nf_util.Rat.t -> Nf_graph.Graph.t list) ->
  ?grid:Nf_util.Rat.t list ->
  unit ->
  game_point list
(** {!sweep_game} with the equilibrium sets supplied by the caller (atlas
    queries, tests). *)

val game_table : game_point list -> string
val game_plot : game_point list -> string
val game_csv : game_point list -> string
(** Header [game,total_link_cost,alpha,count,avg_poa,worst_poa,best_poa,avg_links]. *)
