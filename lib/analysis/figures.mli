(** The paper's Figure 2 (average price of anarchy vs link cost) and
    Figure 3 (average number of links vs link cost).

    The paper plots the UCG at [log α] and the BCG at [log 2α], i.e. it
    aligns the two games at equal {e total} cost per link.  We reproduce
    that alignment: each grid point [c] is the total link cost; the UCG is
    evaluated at [α = c] and the BCG at [α = c/2]. *)

type point = {
  total_link_cost : Nf_util.Rat.t;  (** the grid value [c] *)
  ucg : Netform.Poa.summary;  (** over all UCG Nash graphs at [α = c] *)
  bcg : Netform.Poa.summary;  (** over all BCG stable graphs at [α = c/2] *)
}

val sweep : n:int -> ?grid:Nf_util.Rat.t list -> unit -> point list
(** Exhaustive equilibrium sweep on [n] players over the grid (default
    {!Sweep.paper_grid}). *)

val sweep_via :
  bcg:(alpha:Nf_util.Rat.t -> Nf_graph.Graph.t list) ->
  ucg:(alpha:Nf_util.Rat.t -> Nf_graph.Graph.t list) ->
  ?grid:Nf_util.Rat.t list ->
  unit ->
  point list
(** {!sweep} with the equilibrium sets supplied by the caller rather than
    recomputed — the hook a persistent equilibrium atlas (the [nf_store]
    query engine) uses to regenerate the figure curves without
    re-annotating.  The α convention is applied here: at grid value [c]
    the [ucg] provider is asked for [α = c] and the [bcg] provider for
    [α = c/2]. *)

val figure2_table : point list -> string
(** α, equilibrium counts, and average PoA per game, as an aligned
    table. *)

val figure3_table : point list -> string
val figure2_plot : point list -> string
(** ASCII rendering: average PoA vs [log₂] of the total link cost. *)

val figure3_plot : point list -> string

val to_csv : point list -> string
(** Machine-readable dump of the full sweep. *)
