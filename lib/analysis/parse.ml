module Rat = Nf_util.Rat

let named_graphs =
  Nf_named.Gallery.all
  @ [
      ("k4", Nf_named.Families.complete 4);
      ("k5", Nf_named.Families.complete 5);
      ("k7", Nf_named.Families.complete 7);
      ("c4", Nf_named.Families.cycle 4);
      ("c5", Nf_named.Families.cycle 5);
      ("c8", Nf_named.Families.cycle 8);
      ("c12", Nf_named.Families.cycle 12);
      ("star6", Nf_named.Families.star 6);
      ("star10", Nf_named.Families.star 10);
      ("path6", Nf_named.Families.path 6);
      ("wheel7", Nf_named.Families.wheel 7);
      ("q3", Nf_named.Families.hypercube 3);
      ("q4", Nf_named.Families.hypercube 4);
      ("k33", Nf_named.Families.complete_bipartite 3 3);
    ]

(* Exact forms ("2", "7/2") go through Rat.of_string and never touch a
   float; only decimal literals ("0.5") take the dyadic float route. *)
let alpha_of_string s =
  let s = String.trim s in
  match Rat.of_string_opt s with
  | Some r -> Ok r
  | None -> (
    try Ok (Sweep.dyadic (float_of_string s))
    with _ -> Error (Printf.sprintf "bad link cost %S (use e.g. 2, 0.5 or 7/2)" s))

let graph_of_spec spec =
  match List.assoc_opt (String.lowercase_ascii spec) named_graphs with
  | Some g -> Ok g
  | None -> (
    try Ok (Nf_graph.Graph6.decode spec)
    with Invalid_argument msg ->
      Error
        (Printf.sprintf "unknown graph %S (not a gallery name, and graph6 failed: %s)" spec
           msg))
