(** Building (and crash-resuming) equilibrium-atlas stores.

    A build streams every connected isomorphism class on [n] vertices
    out of {!Nf_enum.Unlabeled.iter_connected_chunked}, annotates each
    chunk across the {!Nf_util.Pool} domains, and appends it through
    {!Writer}.  The default is the classic dual-region layout (exact BCG
    stable interval and, when [with_ucg], the UCG Nash α-set); passing
    [~game] instead builds a single-game store for any registered
    {!Netform.Game} — records then carry that game's region and the
    header carries its schema tag ([bcg]/[ucg] map back onto the classic
    layouts byte-identically).  Progress/throughput/ETA lines are
    emitted per chunk through the [report] callback via
    {!Nf_util.Stats.Progress}.

    {b Crash-resume parity.}  Chunk boundaries are fixed by the chunk
    size recorded in the header and both the enumeration order and the
    annotation are deterministic, so [resume] — which truncates the part
    file to its longest valid chunk prefix and re-enters the stream at
    the next chunk (reconstructing the annotator from the header's
    content tag alone) — produces a store byte-identical to an
    uninterrupted build, whatever the pool width and wherever the
    interruption fell. *)

type outcome = {
  path : string;
  n : int;
  game : string;  (** registry name of the annotating game *)
  with_ucg : bool;  (** classic layout with the UCG payload *)
  shard : (int * int) option;  (** shard volume [i/k], [None] when whole *)
  chunks : int;
  records : int;  (** total annotated classes in the finished store *)
  resumed_records : int;  (** of which were inherited from a part file *)
  seconds : float;  (** wall-clock time of this run *)
}

val build :
  ?game:string ->
  ?with_ucg:bool ->
  ?shard:int * int ->
  ?chunk:int ->
  ?force:bool ->
  ?report:(string -> unit) ->
  path:string ->
  n:int ->
  unit ->
  outcome
(** Build a fresh store at [path].  Without [~game], a classic store
    whose [with_ucg] defaults to [n <= 7] (matching
    {!Nf_analysis.Dataset.build}); with [~game], a store for that
    registered game ([with_ucg] must then be omitted).  [chunk] is the
    records-per-chunk fan-out unit (default 512).  Any stale part file
    is discarded.

    [~shard:(i, k)] builds shard volume [i] of a [k]-way split of the
    same parameters ({!Nf_enum.Unlabeled.iter_connected_sharded}): a
    pure function of [(n, game, chunk, i, k)], so the [k] volumes can
    be built by independent processes or machines and reassembled by
    {!Merge} into bytes identical to a single-process build.  Progress
    lines are prefixed [[i/k]] and metered against the shard's own
    expected size, and [~shard:(1, 1)] is exactly the unsharded build
    (bytes included).  A shard volume resumes like any other store.
    @raise Invalid_argument when [n] is outside [1..11], [chunk < 1],
    [~game] is unknown, both [~game] and [~with_ucg] are given, or the
    shard is outside [1 <= i <= k <= 16].
    @raise Failure when [path] already exists and [force] is not set. *)

val resume : ?report:(string -> unit) -> path:string -> unit -> outcome
(** Continue an interrupted build from [path ^ ".part"].
    @raise Failure when there is nothing to resume.
    @raise Layout.Corrupt when the part file's header is invalid. *)

(**/**)

val content_of_game : string -> Layout.content
(** The content descriptor [~game] maps to (exposed for Index/Query and
    tests). @raise Invalid_argument on an unknown name. *)

val game_of_content : Layout.content -> string
(** Registry name for a store's content (classic stores read as
    ["bcg"]/["ucg"]). *)
