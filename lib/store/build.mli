(** Building (and crash-resuming) equilibrium-atlas stores.

    A build streams every connected isomorphism class on [n] vertices
    out of {!Nf_enum.Unlabeled.iter_connected_chunked}, annotates each
    chunk across the {!Nf_util.Pool} domains with the exact BCG stable
    interval (and, when [with_ucg], the UCG Nash α-set), and appends it
    through {!Writer}.  Progress/throughput/ETA lines are emitted per
    chunk through the [report] callback via {!Nf_util.Stats.Progress}.

    {b Crash-resume parity.}  Chunk boundaries are fixed by the chunk
    size recorded in the header and both the enumeration order and the
    annotation are deterministic, so [resume] — which truncates the part
    file to its longest valid chunk prefix and re-enters the stream at
    the next chunk — produces a store byte-identical to an uninterrupted
    build, whatever the pool width and wherever the interruption fell. *)

type outcome = {
  path : string;
  n : int;
  with_ucg : bool;
  chunks : int;
  records : int;  (** total annotated classes in the finished store *)
  resumed_records : int;  (** of which were inherited from a part file *)
  seconds : float;  (** wall-clock time of this run *)
}

val build :
  ?with_ucg:bool ->
  ?chunk:int ->
  ?force:bool ->
  ?report:(string -> unit) ->
  path:string ->
  n:int ->
  unit ->
  outcome
(** Build a fresh store at [path].  [with_ucg] defaults to [n <= 7]
    (matching {!Nf_analysis.Dataset.build}); [chunk] is the records-per-
    chunk fan-out unit (default 512).  Any stale part file is discarded.
    @raise Invalid_argument when [n] is outside [1..11] or [chunk < 1].
    @raise Failure when [path] already exists and [force] is not set. *)

val resume : ?report:(string -> unit) -> path:string -> unit -> outcome
(** Continue an interrupted build from [path ^ ".part"].
    @raise Failure when there is nothing to resume.
    @raise Layout.Corrupt when the part file's header is invalid. *)
