(** Append-only store writer with crash-safe, atomic publication.

    Chunks stream to [path ^ ".part"], flushed per append; the final
    path only ever receives a complete store, via footer + fsync +
    atomic rename in {!finalize}.  A killed build is resumed by
    {!reopen}, which truncates the part file back to its longest valid
    chunk prefix (found by {!Reader.scan}) and appends from there —
    because the layout contains nothing machine- or time-dependent and
    chunk boundaries are deterministic, the resumed store is
    byte-identical to an uninterrupted one. *)

type t = {
  oc : out_channel;
  final_path : string;
  part : string;
  header : Layout.header;
  mutable chunks : int;
  mutable records : int;
  mutable closed : bool;
}

val part_path : string -> string
(** [path ^ ".part"], where in-progress builds live. *)

val create : path:string -> header:Layout.header -> t
(** Start a fresh part file (truncating any previous one) with the
    encoded header written and flushed. *)

val reopen : path:string -> t * Reader.scan
(** Resume an interrupted build: scan the part file, truncate the torn
    tail, and return a writer positioned after the last complete chunk
    plus the scan it resumed from.
    @raise Layout.Corrupt when the part file's header is invalid.
    @raise Sys_error when the part file cannot be read.
    @raise Invalid_argument when the part file is already complete. *)

val append_chunk : t -> Layout.record array -> unit
(** Frame, append and flush one chunk (records must respect the
    header's [with_ucg] flag).
    @raise Invalid_argument on an empty chunk or a closed writer. *)

val finalize : t -> unit
(** Footer, flush, fsync, atomic rename part → final path. *)

val abort : t -> unit
(** Close without publishing; the part file is left for a later
    {!reopen}.  Idempotent. *)
