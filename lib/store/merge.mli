(** Merging the volumes of a sharded build back into one canonical
    store.

    {!Nf_enum.Unlabeled.iter_connected_sharded} splits the enumeration
    stream into [k] contiguous ranges, so concatenating the shard
    volumes' record streams in shard order reproduces the unsharded
    stream exactly; re-chunking it at the family's chunk size then
    reproduces the single-process chunk framing, and the merged file is
    {e byte-identical} to a store built in one process (the shard bits
    are cleared from the header, the footer totals recomputed, every
    chunk re-CRC-framed).  Inputs are strictly verified before any
    output is written, and the merged store is verified again before
    the outcome is reported. *)

type outcome = {
  path : string;
  n : int;
  game : string;  (** registry name of the annotating game *)
  shards : int;  (** how many volumes were folded in *)
  chunks : int;
  records : int;
  seconds : float;
}

val volumes : dir:string -> (string * Layout.header) list
(** The shard volumes found directly in [dir] (files whose header
    decodes and carries shard metadata), sorted by file name.  [.part]
    files, subdirectories, unsharded stores and non-store files are
    ignored.
    @raise Failure when [dir] is not a directory. *)

val family : (string * Layout.header) list -> (string * Layout.header) list * Layout.header
(** Validate that the volumes form exactly one [k]-way split — same
    [n], content and chunk size throughout, shard indices covering
    [1..k] once each — and return them sorted by shard index together
    with the header the merged store carries (shard metadata cleared).
    @raise Failure naming the offending volume otherwise. *)

val merge :
  ?force:bool ->
  ?streaming:bool ->
  ?report:(string -> unit) ->
  paths:string list ->
  out:string ->
  unit ->
  outcome
(** Merge the shard volumes at [paths] into a canonical store at [out].
    With [~streaming:true] every pass — the up-front verification, the
    record fold, the final re-verification — runs off input channels via
    {!Reader.fold_chunks}, holding one decoded chunk per volume at a
    time instead of whole volumes as strings; the output bytes are
    identical either way.
    @raise Failure when the volumes do not form a complete family, any
    input fails strict verification, or [out] exists and [force] is not
    set. *)

val merge_dir :
  ?force:bool ->
  ?streaming:bool ->
  ?report:(string -> unit) ->
  dir:string ->
  out:string ->
  unit ->
  outcome
(** {!merge} over {!volumes}[ ~dir].
    @raise Failure additionally when [dir] holds no shard volumes. *)
