module Graph = Nf_graph.Graph
module Interval = Nf_util.Interval

type t = {
  path : string;
  header : Layout.header;
  entries : Layout.record array;
  mutable graphs : Graph.t array option;
}

(* A directory of shard volumes reads as the store their merge would
   produce: Merge.family proves the volumes form one complete split, and
   concatenating their records in shard index order IS the unsharded
   enumeration order (the shard split is contiguous), so every query
   downstream sees the same entries whether it was handed one merged
   file or the shard directory. *)
let load_dir ~dir =
  let sorted, header = Merge.family (Merge.volumes ~dir) in
  let entries = Array.concat (List.map (fun (p, _) -> snd (Reader.load ~path:p)) sorted) in
  { path = dir; header; entries; graphs = None }

let load ~path =
  if Sys.file_exists path && Sys.is_directory path then load_dir ~dir:path
  else
    let header, entries = Reader.load ~path in
    { path; header; entries; graphs = None }

let path t = t.path
let n t = t.header.Layout.n
let content t = t.header.Layout.content
let with_ucg t = Layout.content_with_ucg t.header.Layout.content
let game t = Build.game_of_content t.header.Layout.content
let shard t = t.header.Layout.shard
let length t = Array.length t.entries
let entries t = t.entries

(* decoded representatives, one array shared by every query — decoding
   261k graph6 strings at n = 9 is cheap but not free, so it happens at
   most once per loaded index, fanned across the pool *)
let graphs t =
  match t.graphs with
  | Some gs -> gs
  | None ->
    let gs =
      Nf_util.Pool.parallel_map_array (fun r -> Nf_graph.Graph6.decode r.Layout.graph6) t.entries
    in
    t.graphs <- Some gs;
    gs
