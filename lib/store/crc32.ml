(* CRC-32 (IEEE 802.3, polynomial 0xEDB88320 reflected), table-driven.
   The store keeps one checksum per chunk and per header/footer; this is
   the standard zlib/PNG variant so external tools can re-verify files. *)

let table =
  lazy
    (Array.init 256 (fun i ->
         let c = ref i in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update: substring out of bounds";
  let table = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for k = pos to pos + len - 1 do
    c := table.((!c lxor Char.code s.[k]) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let sub s ~pos ~len = update 0 s ~pos ~len
let string s = sub s ~pos:0 ~len:(String.length s)
