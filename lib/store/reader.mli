(** Reading, scanning and verifying store files.

    Two disciplines over the same bytes:

    - {!scan} is {e tolerant}: it identifies the longest valid
      [header; chunk 0 .. k-1] prefix and ignores whatever follows (a
      partially written chunk from a killed build, trailing garbage).
      This is what crash-resume builds on — every chunk in the reported
      prefix is CRC-verified and fully parsed.
    - {!verify} is {e strict}: every byte must be accounted for by a
      valid header, consecutively numbered CRC-clean chunks whose graphs
      decode to the header's order, and a footer with matching totals.
      A single flipped byte anywhere in the file yields [Error], and a
      failure inside the chunk run is pinned to the offending chunk
      index and the byte offset its frame starts at — so a damaged
      volume names the exact region to refetch or rebuild. *)

type scan = {
  header : Layout.header;
  chunks : int;  (** complete chunks in the valid prefix *)
  records : int;  (** records in those chunks *)
  data_end : int;  (** byte offset just past the last complete chunk *)
  complete : bool;  (** a valid footer with matching totals ends the file *)
}

val scan : path:string -> scan
(** Tolerant prefix scan.
    @raise Layout.Corrupt when even the header is invalid.
    @raise Sys_error when the file cannot be read. *)

val verify : path:string -> (scan, string) result
(** Strict whole-file verification; never raises. *)

val load : path:string -> Layout.header * Layout.record array
(** All records of a {e complete} store, in enumeration order.
    @raise Layout.Corrupt when the store is incomplete or invalid. *)

val scan_string : string -> scan
val verify_string : string -> (scan, string) result
(** In-memory variants, exposed for tests. *)
