(** Reading, scanning and verifying store files.

    Two disciplines over the same bytes:

    - {!scan} is {e tolerant}: it identifies the longest valid
      [header; chunk 0 .. k-1] prefix and ignores whatever follows (a
      partially written chunk from a killed build, trailing garbage).
      This is what crash-resume builds on — every chunk in the reported
      prefix is CRC-verified and fully parsed.
    - {!verify} is {e strict}: every byte must be accounted for by a
      valid header, consecutively numbered CRC-clean chunks whose graphs
      decode to the header's order, and a footer with matching totals.
      A single flipped byte anywhere in the file yields [Error], and a
      failure inside the chunk run is pinned to the offending chunk
      index and the byte offset its frame starts at — so a damaged
      volume names the exact region to refetch or rebuild. *)

type scan = {
  header : Layout.header;
  chunks : int;  (** complete chunks in the valid prefix *)
  records : int;  (** records in those chunks *)
  data_end : int;  (** byte offset just past the last complete chunk *)
  complete : bool;  (** a valid footer with matching totals ends the file *)
}

val scan : path:string -> scan
(** Tolerant prefix scan.
    @raise Layout.Corrupt when even the header is invalid.
    @raise Sys_error when the file cannot be read. *)

val verify : path:string -> (scan, string) result
(** Strict whole-file verification; never raises. *)

val load : path:string -> Layout.header * Layout.record array
(** All records of a {e complete} store, in enumeration order.
    @raise Layout.Corrupt when the store is incomplete or invalid. *)

val scan_string : string -> scan
val verify_string : string -> (scan, string) result
(** In-memory variants, exposed for tests. *)

(** {2 Streaming access}

    Constant-memory counterparts of the whole-file paths: the store is
    pulled through a channel one CRC-framed chunk at a time, so an
    n=10-scale volume merges or verifies without ever being resident as
    a string. *)

val fold_chunks :
  path:string ->
  init:'a ->
  (Layout.header -> 'a -> int -> Layout.record array -> 'a) ->
  Layout.header * 'a * int * int
(** [fold_chunks ~path ~init f] folds [f header acc index records] over
    the chunks of a {e complete} store in order, holding one decoded
    chunk at a time, and returns [(header, acc, chunks, records)].
    Strict like {!verify}: raises {!Layout.Corrupt} on any CRC or
    framing damage, a chunk out of sequence, a missing footer, footer
    totals that disagree with the stream, or trailing bytes.
    @raise Sys_error when the file cannot be read. *)

val verify_stream : path:string -> (scan, string) result
(** Strict whole-file verification with {!fold_chunks}' memory profile —
    the record-level checks of {!verify} (graph6 decodes, order matches
    the header) over one chunk at a time; never raises.  Corruption
    messages are pinned to the chunk index. *)
