module Interval = Nf_util.Interval
module Rat = Nf_util.Rat

(* On-disk layout of an equilibrium-atlas store (all integers little
   endian, fixed width; no timestamps or other machine-dependent bytes, so
   identical inputs always produce identical files):

     header   "NFATLAS1" | u16 schema | u16 n | u32 flags | u32 chunk
              | u32 crc(preceding 20 bytes)
     chunk*   "CHNK" | u32 index | u32 #records | u32 body_len | body
              | u32 crc(header+body)
     footer   "FEND" | u32 #chunks | u32 #records | u32 crc(preceding 12)

   flags bit 1 clear — a classic store (game schema tags 0/1):
     bit 0: records carry a UCG Nash α-set after the BCG interval.
     Flags 0 and 1 are exactly the pre-game-registry encodings, so
     BCG/UCG stores stay byte-identical.
   flags bit 1 set — a single-game store:
     bit 2: the region is an interval union (else a single interval);
     bits 8..23: the game's registry schema tag.  Bit 0 and bits 3..7
     must be clear.
   flags bits 24..31 — shard metadata (append-only, like the game tags):
     all clear for a whole (unsharded or merged) store — so every
     pre-shard NFATLAS1 file keeps its exact bytes — else bits 24..27
     hold the 1-based shard index minus one and bits 28..31 the shard
     count minus one (k in 2..16, 1 <= i <= k).  A shard volume holds
     shard i of the k-way parent-prefix split of the enumeration
     stream (Nf_enum.Unlabeled.iter_connected_sharded); concatenating
     the k volumes' records in index order is the unsharded stream.
   Record body:  u16 len | graph6 bytes | region, where the region is
                 interval | [union] for classic stores, and a single
                 interval or union (per flags bit 2) for game stores.
   Interval:     u8 0 (empty) or u8 1 | endpoint | u8 lo_closed
                 | endpoint | u8 hi_closed.
   Endpoint:     u8 0 (-inf) / 2 (+inf), or u8 1 | i64 num | i64 den.
   Union:        u16 #pieces | pieces (each a non-empty interval). *)

let magic = "NFATLAS1"
let chunk_magic = "CHNK"
let footer_magic = "FEND"
let schema_version = 1
let header_size = 24
let chunk_header_size = 16
let footer_size = 16

type content = Classic of { with_ucg : bool } | Game of { tag : int; union : bool }
type header = { n : int; content : content; chunk_size : int; shard : (int * int) option }
type record = { graph6 : string; bcg : Interval.t; ucg : Interval.Union.t option }

let content_with_ucg = function
  | Classic { with_ucg } -> with_ucg
  | Game _ -> false

let classic ~with_ucg = Classic { with_ucg }

exception Corrupt of string

let fail fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

(* --- primitive writes --------------------------------------------------- *)

let add_u16 buf v = Buffer.add_uint16_le buf v
let add_u32 buf v = Buffer.add_int32_le buf (Int32.of_int v)
let add_i64 buf v = Buffer.add_int64_le buf (Int64.of_int v)

(* --- primitive reads (bounds-checked: decoding must never walk off the
   end of a truncated or corrupted file, it must raise {!Corrupt}) -------- *)

let need s pos len what =
  if pos < 0 || len < 0 || pos + len > String.length s then
    fail "unexpected end of data reading %s at byte %d" what pos

let get_u8 s pos what =
  need s pos 1 what;
  Char.code s.[pos]

let get_u16 s pos what =
  need s pos 2 what;
  String.get_uint16_le s pos

let get_u32 s pos what =
  need s pos 4 what;
  Int32.to_int (String.get_int32_le s pos) land 0xFFFFFFFF

let get_i64 s pos what =
  need s pos 8 what;
  Int64.to_int (String.get_int64_le s pos)

(* --- intervals ---------------------------------------------------------- *)

let add_endpoint buf = function
  | Interval.Neg_inf -> Buffer.add_char buf '\000'
  | Interval.Finite r ->
    Buffer.add_char buf '\001';
    add_i64 buf (Rat.num r);
    add_i64 buf (Rat.den r)
  | Interval.Pos_inf -> Buffer.add_char buf '\002'

let get_endpoint s pos =
  match get_u8 s pos "endpoint tag" with
  | 0 -> (Interval.Neg_inf, pos + 1)
  | 2 -> (Interval.Pos_inf, pos + 1)
  | 1 ->
    let num = get_i64 s (pos + 1) "endpoint numerator" in
    let den = get_i64 s (pos + 9) "endpoint denominator" in
    if den <= 0 then fail "non-positive endpoint denominator at byte %d" (pos + 9);
    (Interval.Finite (Rat.make num den), pos + 17)
  | tag -> fail "bad endpoint tag %d at byte %d" tag pos

let add_interval buf i =
  match Interval.bounds i with
  | None -> Buffer.add_char buf '\000'
  | Some (lo, lo_closed, hi, hi_closed) ->
    Buffer.add_char buf '\001';
    add_endpoint buf lo;
    Buffer.add_char buf (if lo_closed then '\001' else '\000');
    add_endpoint buf hi;
    Buffer.add_char buf (if hi_closed then '\001' else '\000')

let get_bool s pos what =
  match get_u8 s pos what with
  | 0 -> false
  | 1 -> true
  | v -> fail "bad boolean %d for %s at byte %d" v what pos

let get_interval s pos =
  match get_u8 s pos "interval tag" with
  | 0 -> (Interval.empty, pos + 1)
  | 1 ->
    let lo, pos = get_endpoint s (pos + 1) in
    let lo_closed = get_bool s pos "lo_closed" in
    let hi, pos = get_endpoint s (pos + 1) in
    let hi_closed = get_bool s pos "hi_closed" in
    (Interval.make ~lo ~lo_closed ~hi ~hi_closed, pos + 1)
  | tag -> fail "bad interval tag %d at byte %d" tag pos

let add_union buf u =
  let pieces = Interval.Union.to_list u in
  add_u16 buf (List.length pieces);
  List.iter (add_interval buf) pieces

let get_union s pos =
  let count = get_u16 s pos "union piece count" in
  let pos = ref (pos + 2) in
  let pieces =
    List.init count (fun _ ->
        let i, next = get_interval s !pos in
        pos := next;
        i)
  in
  (Interval.Union.of_list pieces, !pos)

(* --- records ------------------------------------------------------------ *)

(* Region placement convention: classic records and interval-game records
   keep their interval in [bcg] ([ucg] carries the classic union when the
   flag is set); union-game records keep their union in [ucg = Some _]
   with [bcg] unused (Interval.empty, never serialized). *)
let add_record buf ~content r =
  if String.length r.graph6 > 0xFFFF then invalid_arg "Layout.add_record: graph6 too long";
  add_u16 buf (String.length r.graph6);
  Buffer.add_string buf r.graph6;
  match content with
  | Classic { with_ucg } -> (
    add_interval buf r.bcg;
    match (with_ucg, r.ucg) with
    | true, Some u -> add_union buf u
    | false, None -> ()
    | true, None -> invalid_arg "Layout.add_record: UCG payload required by header flags"
    | false, Some _ -> invalid_arg "Layout.add_record: unexpected UCG payload")
  | Game { union = false; _ } -> (
    add_interval buf r.bcg;
    match r.ucg with
    | None -> ()
    | Some _ -> invalid_arg "Layout.add_record: unexpected union payload in interval-game store")
  | Game { union = true; _ } -> (
    match r.ucg with
    | Some u -> add_union buf u
    | None -> invalid_arg "Layout.add_record: union payload required by header flags")

let get_record s pos ~content =
  let len = get_u16 s pos "graph6 length" in
  need s (pos + 2) len "graph6 string";
  let graph6 = String.sub s (pos + 2) len in
  if len = 0 then fail "empty graph6 string at byte %d" pos;
  let pos = pos + 2 + len in
  match content with
  | Classic { with_ucg } ->
    let bcg, pos = get_interval s pos in
    if with_ucg then
      let u, pos = get_union s pos in
      ({ graph6; bcg; ucg = Some u }, pos)
    else ({ graph6; bcg; ucg = None }, pos)
  | Game { union = false; _ } ->
    let bcg, pos = get_interval s pos in
    ({ graph6; bcg; ucg = None }, pos)
  | Game { union = true; _ } ->
    let u, pos = get_union s pos in
    ({ graph6; bcg = Interval.empty; ucg = Some u }, pos)

(* --- header ------------------------------------------------------------- *)

let flags_of_content = function
  | Classic { with_ucg } -> if with_ucg then 1 else 0
  | Game { tag; union } ->
    if tag < 0 || tag > 0xFFFF then invalid_arg "Layout: game schema tag out of range";
    0x2 lor (if union then 0x4 else 0) lor (tag lsl 8)

let content_of_flags flags =
  if flags land 0x2 = 0 then begin
    if flags land lnot 1 <> 0 then fail "unknown flag bits %x" flags;
    Classic { with_ucg = flags land 1 = 1 }
  end
  else begin
    if flags land lnot (0x2 lor 0x4 lor 0xFFFF00) <> 0 then
      fail "unknown flag bits %x" flags;
    Game { tag = (flags lsr 8) land 0xFFFF; union = flags land 0x4 <> 0 }
  end

let max_shards = 16

let shard_flag_bits = function
  | None -> 0
  | Some (i, k) ->
    if k < 2 || k > max_shards || i < 1 || i > k then
      invalid_arg
        (Printf.sprintf "Layout: shard %d/%d out of range (1 <= i <= k, 2 <= k <= %d)" i k
           max_shards);
    ((i - 1) lsl 24) lor ((k - 1) lsl 28)

let shard_of_flags flags =
  let bits = (flags lsr 24) land 0xFF in
  if bits = 0 then None
  else begin
    let i = (bits land 0xF) + 1 in
    let k = (bits lsr 4) + 1 in
    if k < 2 || i > k then fail "bad shard metadata %d/%d in flags %x" i k flags;
    Some (i, k)
  end

let encode_header h =
  if h.n < 1 || h.n > 62 then invalid_arg "Layout.encode_header: n out of range";
  if h.chunk_size < 1 then invalid_arg "Layout.encode_header: chunk_size < 1";
  let buf = Buffer.create header_size in
  Buffer.add_string buf magic;
  add_u16 buf schema_version;
  add_u16 buf h.n;
  add_u32 buf (flags_of_content h.content lor shard_flag_bits h.shard);
  add_u32 buf h.chunk_size;
  let body = Buffer.contents buf in
  add_u32 buf (Crc32.string body);
  Buffer.contents buf

let decode_header s =
  need s 0 header_size "header";
  if String.sub s 0 8 <> magic then fail "bad magic (not an nf_store file)";
  let stored_crc = get_u32 s 20 "header crc" in
  let actual_crc = Crc32.sub s ~pos:0 ~len:20 in
  if stored_crc <> actual_crc then
    fail "header crc mismatch (stored %08x, computed %08x)" stored_crc actual_crc;
  let schema = get_u16 s 8 "schema version" in
  if schema <> schema_version then fail "unsupported schema version %d" schema;
  let n = get_u16 s 10 "n" in
  if n < 1 || n > 62 then fail "n = %d out of range" n;
  let flags = get_u32 s 12 "flags" in
  let shard = shard_of_flags flags in
  let content = content_of_flags (flags land lnot 0xFF000000) in
  let chunk_size = get_u32 s 16 "chunk size" in
  if chunk_size < 1 then fail "chunk size %d < 1" chunk_size;
  { n; content; chunk_size; shard }

(* --- chunks ------------------------------------------------------------- *)

let encode_chunk ~index ~content records =
  let body = Buffer.create 4096 in
  Array.iter (add_record body ~content) records;
  let buf = Buffer.create (Buffer.length body + chunk_header_size + 4) in
  Buffer.add_string buf chunk_magic;
  add_u32 buf index;
  add_u32 buf (Array.length records);
  add_u32 buf (Buffer.length body);
  Buffer.add_buffer buf body;
  let framed = Buffer.contents buf in
  add_u32 buf (Crc32.string framed);
  Buffer.contents buf

let decode_chunk ~content s ~pos =
  need s pos chunk_header_size "chunk header";
  if String.sub s pos 4 <> chunk_magic then fail "bad chunk magic at byte %d" pos;
  let index = get_u32 s (pos + 4) "chunk index" in
  let count = get_u32 s (pos + 8) "chunk record count" in
  let body_len = get_u32 s (pos + 12) "chunk body length" in
  let framed_len = chunk_header_size + body_len in
  need s pos (framed_len + 4) "chunk body";
  let stored_crc = get_u32 s (pos + framed_len) "chunk crc" in
  let actual_crc = Crc32.sub s ~pos ~len:framed_len in
  if stored_crc <> actual_crc then
    fail "chunk %d crc mismatch at byte %d (stored %08x, computed %08x)" index pos stored_crc
      actual_crc;
  let body_end = pos + framed_len in
  let cursor = ref (pos + chunk_header_size) in
  let records =
    Array.init count (fun _ ->
        let r, next = get_record s !cursor ~content in
        cursor := next;
        r)
  in
  if !cursor <> body_end then
    fail "chunk %d body length mismatch (%d bytes of records, %d declared)" index
      (!cursor - pos - chunk_header_size) body_len;
  (index, records, body_end + 4)

(* --- footer ------------------------------------------------------------- *)

let encode_footer ~chunks ~records =
  let buf = Buffer.create footer_size in
  Buffer.add_string buf footer_magic;
  add_u32 buf chunks;
  add_u32 buf records;
  let body = Buffer.contents buf in
  add_u32 buf (Crc32.string body);
  Buffer.contents buf

let is_footer_at s pos = pos + 4 <= String.length s && String.sub s pos 4 = footer_magic

let decode_footer s ~pos =
  need s pos footer_size "footer";
  if String.sub s pos 4 <> footer_magic then fail "bad footer magic at byte %d" pos;
  let stored_crc = get_u32 s (pos + 12) "footer crc" in
  let actual_crc = Crc32.sub s ~pos ~len:12 in
  if stored_crc <> actual_crc then
    fail "footer crc mismatch (stored %08x, computed %08x)" stored_crc actual_crc;
  let chunks = get_u32 s (pos + 4) "footer chunk count" in
  let records = get_u32 s (pos + 8) "footer record count" in
  (chunks, records, pos + footer_size)
