(** CRC-32 checksums (IEEE 802.3 / zlib variant) for store integrity.

    Values are unsigned 32-bit checksums held in an OCaml [int]
    (always in [0, 2^32)). *)

val string : string -> int
(** Checksum of a whole string. *)

val sub : string -> pos:int -> len:int -> int
(** Checksum of a substring.
    @raise Invalid_argument when the range is out of bounds. *)

val update : int -> string -> pos:int -> len:int -> int
(** [update crc s ~pos ~len] extends a running checksum, so
    [update (sub a ...) b ...] equals the checksum of the
    concatenation. *)
