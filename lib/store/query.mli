(** α-queries and figure curves served from a loaded store — no
    stability interval or Nash α-set is ever recomputed here; the whole
    point of the atlas is that the expensive annotation is read, not
    re-derived.

    Exactness carries over: the stored regions have exact rational
    endpoints, so membership tests agree bit-for-bit with a fresh
    {!Nf_analysis.Equilibria} sweep. *)

val bcg_stable_graphs : Index.t -> alpha:Nf_util.Rat.t -> Nf_graph.Graph.t list
(** All classes pairwise stable at [alpha], in enumeration order —
    the store-backed [Equilibria.bcg_stable_graphs]. *)

val ucg_nash_graphs : Index.t -> alpha:Nf_util.Rat.t -> Nf_graph.Graph.t list
(** @raise Invalid_argument when the store carries no UCG annotations. *)

val game_stable_graphs :
  Index.t -> game:string -> alpha:Nf_util.Rat.t -> Nf_graph.Graph.t list
(** All classes stable at [alpha] for the named registered game.  The
    store must carry that game's annotations: classic stores serve
    ["bcg"] (and ["ucg"] when built with it); a single-game store serves
    exactly the game whose schema tag it was built with.
    @raise Invalid_argument when the store carries a different game, or
    the name is unknown. *)

val stable_entries : Index.t -> alpha:Nf_util.Rat.t -> int list
val nash_entries : Index.t -> alpha:Nf_util.Rat.t -> int list

val game_entries : Index.t -> game:string -> alpha:Nf_util.Rat.t -> int list
(** Entry indices rather than decoded graphs, for callers that want the
    stored payloads too. *)

val figure_points :
  Index.t -> ?grid:Nf_util.Rat.t list -> unit -> Nf_analysis.Figures.point list
(** The paper's Figure 2/3 series (default grid {!Nf_analysis.Sweep.paper_grid})
    regenerated straight from the store via {!Nf_analysis.Figures.sweep_via}. *)

val game_figure_points :
  Index.t -> ?grid:Nf_util.Rat.t list -> unit -> Nf_analysis.Figures.game_point list
(** Single-game sweep curves for the store's own game via
    {!Nf_analysis.Figures.sweep_game_via} — works on any store (classic
    stores sweep as ["bcg"]/["ucg"]). *)

val to_entries : Index.t -> Nf_analysis.Dataset.entry list
(** The store as a {!Nf_analysis.Dataset} atlas. *)

val to_csv : Index.t -> string
(** Byte-identical to [Dataset.to_csv] over the same annotation — the
    CSV interop format is shared, only the substrate differs. *)
