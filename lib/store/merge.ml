(* Reassembling a k-way sharded build into the canonical store.

   The shard split (Nf_enum.Unlabeled.iter_connected_sharded) partitions
   the enumeration stream into k contiguous ranges, so concatenating the
   volumes' record streams in shard order reproduces the unsharded
   stream exactly.  Re-chunking that stream at the family's chunk size
   from record zero then reproduces the single-process chunk framing —
   same boundaries, same indices, same CRCs — and the header (shard bits
   cleared) and footer (recomputed totals) match too, making the merged
   file byte-identical to a store built in one process.

   Every input is strictly verified before a byte of output is written,
   and the finished merge is verified again before it is reported. *)

type outcome = {
  path : string;
  n : int;
  game : string;
  shards : int;
  chunks : int;
  records : int;
  seconds : float;
}

let read_file path = In_channel.with_open_bin path In_channel.input_all

let header_of_file path =
  In_channel.with_open_bin path (fun ic ->
      match In_channel.really_input_string ic Layout.header_size with
      | Some s -> Layout.decode_header s
      | None -> raise (Layout.Corrupt (path ^ ": too short for a store header")))

let volumes ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    failwith (Printf.sprintf "Merge: %s is not a directory" dir);
  let names = Sys.readdir dir in
  Array.sort compare names;
  Array.to_list names
  |> List.filter_map (fun name ->
         let p = Filename.concat dir name in
         if Sys.is_directory p || Filename.check_suffix name ".part" then None
         else
           match header_of_file p with
           | { Layout.shard = Some _; _ } as h -> Some (p, h)
           | { Layout.shard = None; _ } -> None
           | exception (Layout.Corrupt _ | Sys_error _) -> None)

(* A merge family is exactly the k volumes of one split: same n, content
   and chunk size throughout, and shard indices covering 1..k once each.
   Returns the volumes sorted by shard index plus the header the merged
   store will carry (the same bits with the shard metadata cleared). *)
let family vols =
  match vols with
  | [] -> failwith "Merge: no shard volumes to merge"
  | (p0, h0) :: rest ->
    let shard_of p h =
      match h.Layout.shard with
      | Some s -> s
      | None -> failwith (Printf.sprintf "Merge: %s is not a shard volume (no shard metadata)" p)
    in
    let _, k = shard_of p0 h0 in
    List.iter
      (fun (p, h) ->
        if h.Layout.n <> h0.Layout.n then
          failwith
            (Printf.sprintf "Merge: %s is for n = %d but %s is for n = %d" p h.Layout.n p0
               h0.Layout.n);
        if h.Layout.content <> h0.Layout.content then
          failwith (Printf.sprintf "Merge: %s and %s hold different store content" p p0);
        if h.Layout.chunk_size <> h0.Layout.chunk_size then
          failwith (Printf.sprintf "Merge: %s and %s use different chunk sizes" p p0);
        let _, k' = shard_of p h in
        if k' <> k then
          failwith
            (Printf.sprintf "Merge: %s belongs to a %d-way split but %s to a %d-way one" p k' p0 k))
      rest;
    if List.length vols <> k then
      failwith (Printf.sprintf "Merge: %d-way split but %d volume(s) given" k (List.length vols));
    let sorted = List.sort (fun (_, a) (_, b) -> compare a.Layout.shard b.Layout.shard) vols in
    let rec check expect = function
      | [] -> ()
      | (p, h) :: tl ->
        let i, _ = shard_of p h in
        if i < expect then
          failwith (Printf.sprintf "Merge: shard %d/%d appears more than once (%s)" i k p)
        else if i > expect then failwith (Printf.sprintf "Merge: shard %d/%d is missing" expect k)
        else check (expect + 1) tl
    in
    check 1 sorted;
    (sorted, { h0 with Layout.shard = None })

let merge ?(force = false) ?(streaming = false) ?(report = ignore) ~paths ~out () =
  let start = Unix.gettimeofday () in
  let vols, header = family (List.map (fun p -> (p, header_of_file p)) paths) in
  let k = List.length vols in
  if Sys.file_exists out && not force then
    failwith (Printf.sprintf "%s already exists (pass force to overwrite)" out);
  (* strict per-volume verification up front: a damaged shard must name
     itself (with Reader.verify's chunk/byte pinpointing) before the
     output file is even created.  In streaming mode the same checks run
     off the channel, one chunk resident at a time. *)
  let verify path = if streaming then Reader.verify_stream ~path else Reader.verify ~path in
  List.iter
    (fun (p, _) ->
      match verify p with
      | Ok _ -> ()
      | Error msg -> failwith (Printf.sprintf "Merge: %s: %s" p msg))
    vols;
  let writer = Writer.create ~path:out ~header in
  match
    let chunk_size = header.Layout.chunk_size in
    let queue = Queue.create () in
    let emit () =
      Writer.append_chunk writer
        (Array.init (min chunk_size (Queue.length queue)) (fun _ -> Queue.pop queue))
    in
    (* only ever emit full chunks mid-stream; a short chunk is legal
       solely at the very end, exactly as in a live build *)
    let fold_in recs =
      Array.iter (fun r -> Queue.add r queue) recs;
      while Queue.length queue >= chunk_size do
        emit ()
      done
    in
    List.iter
      (fun (p, _) ->
        let records =
          if streaming then
            (* channel pull: one decoded chunk resident per step, never
               the volume as a string *)
            let _, (), _, records =
              Reader.fold_chunks ~path:p ~init:() (fun _ () _ recs -> fold_in recs)
            in
            records
          else begin
            let s = read_file p in
            let scan = Reader.scan_string s in
            let pos = ref Layout.header_size in
            for _ = 1 to scan.Reader.chunks do
              let _, recs, next = Layout.decode_chunk ~content:header.Layout.content s ~pos:!pos in
              pos := next;
              fold_in recs
            done;
            scan.Reader.records
          end
        in
        report (Printf.sprintf "%s: %d records folded in" p records))
      vols;
    if Queue.length queue > 0 then emit ();
    Writer.finalize writer
  with
  | () ->
    (match verify out with
    | Ok _ -> ()
    | Error msg -> failwith (Printf.sprintf "Merge: merged store %s failed verification: %s" out msg));
    {
      path = out;
      n = header.Layout.n;
      game = Build.game_of_content header.Layout.content;
      shards = k;
      chunks = writer.Writer.chunks;
      records = writer.Writer.records;
      seconds = Unix.gettimeofday () -. start;
    }
  | exception e ->
    Writer.abort writer;
    raise e

let merge_dir ?force ?streaming ?report ~dir ~out () =
  match volumes ~dir with
  | [] -> failwith (Printf.sprintf "Merge: no shard volumes found in %s" dir)
  | vols -> merge ?force ?streaming ?report ~paths:(List.map fst vols) ~out ()
