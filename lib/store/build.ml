module Graph = Nf_graph.Graph
module Pool = Nf_util.Pool
module Stats = Nf_util.Stats
open Netform

type outcome = {
  path : string;
  n : int;
  game : string;
  with_ucg : bool;
  shard : (int * int) option;
  chunks : int;
  records : int;
  resumed_records : int;
  seconds : float;
}

(* Map between store content descriptors and registered games.  The two
   classic layouts are the BCG (tag 0) and UCG (tag 1) stores the format
   has always produced — building "--game bcg"/"--game ucg" emits them
   byte-identically; any other registered game gets a single-region
   [Game] store keyed by its schema tag. *)
let content_of_game name =
  let (Game.Any (module G)) = Game_registry.find_exn name in
  match G.schema_tag with
  | 0 -> Layout.Classic { with_ucg = false }
  | 1 -> Layout.Classic { with_ucg = true }
  | tag ->
    let union =
      match G.region_kind with
      | Game.Region.Interval -> false
      | Game.Region.Union -> true
    in
    Layout.Game { tag; union }

let game_of_content = function
  | Layout.Classic { with_ucg } -> if with_ucg then "ucg" else "bcg"
  | Layout.Game { tag; union = _ } -> (
    match Game_registry.find_by_tag tag with
    | Some g -> Game.name g
    | None -> Printf.sprintf "unknown(tag %d)" tag)

(* One workspace borrow covers the whole record: the worker domain's
   resident kernel scratch is reused for every record it processes.  The
   classic annotator keeps its layout (BCG interval, plus the UCG union
   when flagged) but routes through the orbit-quotient dispatch — one
   sweep-tier detection covers both regions of a record, and quotiented
   regions are structurally identical to the plain loops' (the PR 5
   golden md5s pin the resulting bytes); game stores dispatch through the
   registry instance's annotator the same way. *)
let annotator_of_content = function
  | Layout.Classic { with_ucg } ->
    fun g ->
      Nf_graph.Kernel.with_ws (fun ws ->
          let sym = Game.sweep_symmetry g in
          {
            Layout.graph6 = Nf_graph.Graph6.encode g;
            bcg = Bcg.stable_alpha_set_sym_ws ws sym g;
            ucg = (if with_ucg then Some (Ucg.nash_alpha_set_sym_ws ws sym g) else None);
          })
  | Layout.Game { tag; union } -> (
    match Game_registry.find_by_tag tag with
    | None -> failwith (Printf.sprintf "no registered game has schema tag %d" tag)
    | Some (Game.Any ((module G) as game)) -> (
      match (G.region_kind, union) with
      | Game.Region.Interval, false ->
        fun g ->
          Nf_graph.Kernel.with_ws (fun ws ->
              {
                Layout.graph6 = Nf_graph.Graph6.encode g;
                bcg = Game.annotate_sym_ws game ws (Game.sweep_symmetry g) g;
                ucg = None;
              })
      | Game.Region.Union, true ->
        fun g ->
          Nf_graph.Kernel.with_ws (fun ws ->
              {
                Layout.graph6 = Nf_graph.Graph6.encode g;
                bcg = Nf_util.Interval.empty;
                ucg = Some (Game.annotate_sym_ws game ws (Game.sweep_symmetry g) g);
              })
      | (Game.Region.Interval | Game.Region.Union), _ ->
        failwith
          (Printf.sprintf "store region shape contradicts game %S (tag %d)" G.name tag)))

(* The sweep: stream connected classes in chunks off the enumeration
   engine (never materializing the level), annotate each chunk across the
   domain pool, and append it.  Chunk boundaries come from the header's
   chunk size, so a resumed run regenerates exactly the chunks the
   interrupted one would have written next — the enumeration order and
   the annotation are deterministic, which makes resume byte-exact. *)
let run ~writer ~skip_chunks ~report =
  let header = writer.Writer.header in
  let n = header.Layout.n
  and content = header.Layout.content
  and chunk = header.Layout.chunk_size
  and shard = header.Layout.shard in
  let annotate_record = annotator_of_content content in
  let start = Unix.gettimeofday () in
  let resumed_records = writer.Writer.records in
  (* shard builds meter against the shard's own expected size (exact at
     small n, scaled by the shard's parent count above the streaming
     boundary) — never the global level size, which would flatline the
     ETA at k times the truth — and prefix every line with [i/k] so
     interleaved per-shard logs stay attributable *)
  let total, prefix =
    match shard with
    | None -> (Nf_enum.Counts.connected_graphs n, "")
    | Some ((i, k) as shard) ->
      (Nf_enum.Unlabeled.shard_total ~shard n, Printf.sprintf "[%d/%d] " i k)
  in
  let meter = Stats.Progress.create ?total ~initial:resumed_records ~now:Unix.gettimeofday () in
  let iter_chunked =
    match shard with
    | None -> Nf_enum.Unlabeled.iter_connected_chunked ~chunk n
    | Some shard -> Nf_enum.Unlabeled.iter_connected_sharded ~chunk ~shard n
  in
  let ci = ref 0 in
  iter_chunked (fun graphs ->
      let i = !ci in
      incr ci;
      if i >= skip_chunks then begin
        let records = Pool.parallel_map_array annotate_record graphs in
        Writer.append_chunk writer records;
        Stats.Progress.tick meter (Array.length graphs);
        report
          (Printf.sprintf "%schunk %d: %d classes annotated  %s" prefix i (Array.length graphs)
             (Stats.Progress.line meter))
      end);
  Writer.finalize writer;
  {
    path = writer.Writer.final_path;
    n;
    game = game_of_content content;
    with_ucg = Layout.content_with_ucg content;
    shard;
    chunks = writer.Writer.chunks;
    records = writer.Writer.records;
    resumed_records;
    seconds = Unix.gettimeofday () -. start;
  }

let build ?game ?with_ucg ?shard ?(chunk = 512) ?(force = false) ?(report = ignore) ~path ~n () =
  if n < 1 || n > 11 then invalid_arg "Build.build: n out of range (1..11)";
  if chunk < 1 then invalid_arg "Build.build: chunk < 1";
  let shard =
    match shard with
    | None | Some (1, 1) -> None (* a 1-way shard IS the unsharded build, bytes included *)
    | Some (i, k) ->
      if k < 2 || k > Layout.max_shards || i < 1 || i > k then
        invalid_arg
          (Printf.sprintf "Build.build: shard %d/%d out of range (1 <= i <= k <= %d)" i k
             Layout.max_shards);
      Some (i, k)
  in
  let content =
    match game with
    | None -> Layout.Classic { with_ucg = Option.value ~default:(n <= 7) with_ucg }
    | Some name ->
      if Option.is_some with_ucg then
        invalid_arg "Build.build: pass either ~game or ~with_ucg, not both";
      content_of_game name
  in
  if Sys.file_exists path && not force then
    failwith (Printf.sprintf "%s already exists (pass force to rebuild)" path);
  let writer = Writer.create ~path ~header:{ Layout.n; content; chunk_size = chunk; shard } in
  match run ~writer ~skip_chunks:0 ~report with
  | outcome -> outcome
  | exception e ->
    Writer.abort writer;
    raise e

let resume ?(report = ignore) ~path () =
  let part = Writer.part_path path in
  if not (Sys.file_exists part) then
    if Sys.file_exists path then
      failwith (Printf.sprintf "%s is already a complete store (no part file to resume)" path)
    else failwith (Printf.sprintf "nothing to resume: neither %s nor %s exists" part path);
  let writer, scan = Writer.reopen ~path in
  report
    (Printf.sprintf "resuming %s: %d records in %d complete chunks survive" part
       scan.Reader.records scan.Reader.chunks);
  match run ~writer ~skip_chunks:scan.Reader.chunks ~report with
  | outcome -> outcome
  | exception e ->
    Writer.abort writer;
    raise e
